# Empty compiler generated dependencies file for md_campaign.
# This may be replaced when dependencies are built.
