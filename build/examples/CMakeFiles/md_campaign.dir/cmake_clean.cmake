file(REMOVE_RECURSE
  "CMakeFiles/md_campaign.dir/md_campaign.cpp.o"
  "CMakeFiles/md_campaign.dir/md_campaign.cpp.o.d"
  "md_campaign"
  "md_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
