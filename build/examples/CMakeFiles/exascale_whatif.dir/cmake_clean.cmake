file(REMOVE_RECURSE
  "CMakeFiles/exascale_whatif.dir/exascale_whatif.cpp.o"
  "CMakeFiles/exascale_whatif.dir/exascale_whatif.cpp.o.d"
  "exascale_whatif"
  "exascale_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exascale_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
