# Empty dependencies file for exascale_whatif.
# This may be replaced when dependencies are built.
