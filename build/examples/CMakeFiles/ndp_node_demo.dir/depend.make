# Empty dependencies file for ndp_node_demo.
# This may be replaced when dependencies are built.
