file(REMOVE_RECURSE
  "CMakeFiles/ndp_node_demo.dir/ndp_node_demo.cpp.o"
  "CMakeFiles/ndp_node_demo.dir/ndp_node_demo.cpp.o.d"
  "ndp_node_demo"
  "ndp_node_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndp_node_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
