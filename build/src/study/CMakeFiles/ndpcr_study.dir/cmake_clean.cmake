file(REMOVE_RECURSE
  "CMakeFiles/ndpcr_study.dir/compression_study.cpp.o"
  "CMakeFiles/ndpcr_study.dir/compression_study.cpp.o.d"
  "libndpcr_study.a"
  "libndpcr_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpcr_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
