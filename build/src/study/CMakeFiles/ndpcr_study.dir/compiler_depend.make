# Empty compiler generated dependencies file for ndpcr_study.
# This may be replaced when dependencies are built.
