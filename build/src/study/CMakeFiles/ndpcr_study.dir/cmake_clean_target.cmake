file(REMOVE_RECURSE
  "libndpcr_study.a"
)
