# Empty dependencies file for ndpcr_ndp.
# This may be replaced when dependencies are built.
