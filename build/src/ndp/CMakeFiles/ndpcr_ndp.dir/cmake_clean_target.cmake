file(REMOVE_RECURSE
  "libndpcr_ndp.a"
)
