file(REMOVE_RECURSE
  "CMakeFiles/ndpcr_ndp.dir/agent.cpp.o"
  "CMakeFiles/ndpcr_ndp.dir/agent.cpp.o.d"
  "CMakeFiles/ndpcr_ndp.dir/ndp.cpp.o"
  "CMakeFiles/ndpcr_ndp.dir/ndp.cpp.o.d"
  "libndpcr_ndp.a"
  "libndpcr_ndp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpcr_ndp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
