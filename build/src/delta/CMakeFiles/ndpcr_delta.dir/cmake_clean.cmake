file(REMOVE_RECURSE
  "CMakeFiles/ndpcr_delta.dir/delta.cpp.o"
  "CMakeFiles/ndpcr_delta.dir/delta.cpp.o.d"
  "libndpcr_delta.a"
  "libndpcr_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpcr_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
