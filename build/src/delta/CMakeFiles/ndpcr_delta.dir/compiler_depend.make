# Empty compiler generated dependencies file for ndpcr_delta.
# This may be replaced when dependencies are built.
