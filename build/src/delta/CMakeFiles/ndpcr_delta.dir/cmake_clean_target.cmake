file(REMOVE_RECURSE
  "libndpcr_delta.a"
)
