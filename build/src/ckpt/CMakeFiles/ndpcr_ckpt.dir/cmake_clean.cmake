file(REMOVE_RECURSE
  "CMakeFiles/ndpcr_ckpt.dir/file_store.cpp.o"
  "CMakeFiles/ndpcr_ckpt.dir/file_store.cpp.o.d"
  "CMakeFiles/ndpcr_ckpt.dir/image.cpp.o"
  "CMakeFiles/ndpcr_ckpt.dir/image.cpp.o.d"
  "CMakeFiles/ndpcr_ckpt.dir/multilevel.cpp.o"
  "CMakeFiles/ndpcr_ckpt.dir/multilevel.cpp.o.d"
  "CMakeFiles/ndpcr_ckpt.dir/nvm_store.cpp.o"
  "CMakeFiles/ndpcr_ckpt.dir/nvm_store.cpp.o.d"
  "CMakeFiles/ndpcr_ckpt.dir/reed_solomon.cpp.o"
  "CMakeFiles/ndpcr_ckpt.dir/reed_solomon.cpp.o.d"
  "CMakeFiles/ndpcr_ckpt.dir/region.cpp.o"
  "CMakeFiles/ndpcr_ckpt.dir/region.cpp.o.d"
  "CMakeFiles/ndpcr_ckpt.dir/stores.cpp.o"
  "CMakeFiles/ndpcr_ckpt.dir/stores.cpp.o.d"
  "libndpcr_ckpt.a"
  "libndpcr_ckpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpcr_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
