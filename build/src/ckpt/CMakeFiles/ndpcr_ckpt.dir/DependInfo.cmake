
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ckpt/file_store.cpp" "src/ckpt/CMakeFiles/ndpcr_ckpt.dir/file_store.cpp.o" "gcc" "src/ckpt/CMakeFiles/ndpcr_ckpt.dir/file_store.cpp.o.d"
  "/root/repo/src/ckpt/image.cpp" "src/ckpt/CMakeFiles/ndpcr_ckpt.dir/image.cpp.o" "gcc" "src/ckpt/CMakeFiles/ndpcr_ckpt.dir/image.cpp.o.d"
  "/root/repo/src/ckpt/multilevel.cpp" "src/ckpt/CMakeFiles/ndpcr_ckpt.dir/multilevel.cpp.o" "gcc" "src/ckpt/CMakeFiles/ndpcr_ckpt.dir/multilevel.cpp.o.d"
  "/root/repo/src/ckpt/nvm_store.cpp" "src/ckpt/CMakeFiles/ndpcr_ckpt.dir/nvm_store.cpp.o" "gcc" "src/ckpt/CMakeFiles/ndpcr_ckpt.dir/nvm_store.cpp.o.d"
  "/root/repo/src/ckpt/reed_solomon.cpp" "src/ckpt/CMakeFiles/ndpcr_ckpt.dir/reed_solomon.cpp.o" "gcc" "src/ckpt/CMakeFiles/ndpcr_ckpt.dir/reed_solomon.cpp.o.d"
  "/root/repo/src/ckpt/region.cpp" "src/ckpt/CMakeFiles/ndpcr_ckpt.dir/region.cpp.o" "gcc" "src/ckpt/CMakeFiles/ndpcr_ckpt.dir/region.cpp.o.d"
  "/root/repo/src/ckpt/stores.cpp" "src/ckpt/CMakeFiles/ndpcr_ckpt.dir/stores.cpp.o" "gcc" "src/ckpt/CMakeFiles/ndpcr_ckpt.dir/stores.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ndpcr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/ndpcr_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
