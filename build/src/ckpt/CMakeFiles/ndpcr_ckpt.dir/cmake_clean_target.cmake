file(REMOVE_RECURSE
  "libndpcr_ckpt.a"
)
