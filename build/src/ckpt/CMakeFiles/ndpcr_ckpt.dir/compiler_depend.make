# Empty compiler generated dependencies file for ndpcr_ckpt.
# This may be replaced when dependencies are built.
