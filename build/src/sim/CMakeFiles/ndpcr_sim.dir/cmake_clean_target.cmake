file(REMOVE_RECURSE
  "libndpcr_sim.a"
)
