file(REMOVE_RECURSE
  "CMakeFiles/ndpcr_sim.dir/timeline.cpp.o"
  "CMakeFiles/ndpcr_sim.dir/timeline.cpp.o.d"
  "libndpcr_sim.a"
  "libndpcr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpcr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
