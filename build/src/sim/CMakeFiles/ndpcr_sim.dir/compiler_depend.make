# Empty compiler generated dependencies file for ndpcr_sim.
# This may be replaced when dependencies are built.
