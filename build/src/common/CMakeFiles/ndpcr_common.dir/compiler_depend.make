# Empty compiler generated dependencies file for ndpcr_common.
# This may be replaced when dependencies are built.
