file(REMOVE_RECURSE
  "libndpcr_common.a"
)
