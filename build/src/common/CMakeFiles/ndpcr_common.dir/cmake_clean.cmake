file(REMOVE_RECURSE
  "CMakeFiles/ndpcr_common.dir/crc32.cpp.o"
  "CMakeFiles/ndpcr_common.dir/crc32.cpp.o.d"
  "CMakeFiles/ndpcr_common.dir/stats.cpp.o"
  "CMakeFiles/ndpcr_common.dir/stats.cpp.o.d"
  "CMakeFiles/ndpcr_common.dir/table.cpp.o"
  "CMakeFiles/ndpcr_common.dir/table.cpp.o.d"
  "libndpcr_common.a"
  "libndpcr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpcr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
