file(REMOVE_RECURSE
  "libndpcr_net.a"
)
