file(REMOVE_RECURSE
  "CMakeFiles/ndpcr_net.dir/nic.cpp.o"
  "CMakeFiles/ndpcr_net.dir/nic.cpp.o.d"
  "libndpcr_net.a"
  "libndpcr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpcr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
