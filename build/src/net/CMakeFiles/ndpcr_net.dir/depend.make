# Empty dependencies file for ndpcr_net.
# This may be replaced when dependencies are built.
