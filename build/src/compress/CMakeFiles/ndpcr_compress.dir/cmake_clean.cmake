file(REMOVE_RECURSE
  "CMakeFiles/ndpcr_compress.dir/bwt.cpp.o"
  "CMakeFiles/ndpcr_compress.dir/bwt.cpp.o.d"
  "CMakeFiles/ndpcr_compress.dir/bzip_style.cpp.o"
  "CMakeFiles/ndpcr_compress.dir/bzip_style.cpp.o.d"
  "CMakeFiles/ndpcr_compress.dir/chunked.cpp.o"
  "CMakeFiles/ndpcr_compress.dir/chunked.cpp.o.d"
  "CMakeFiles/ndpcr_compress.dir/codec.cpp.o"
  "CMakeFiles/ndpcr_compress.dir/codec.cpp.o.d"
  "CMakeFiles/ndpcr_compress.dir/deflate_style.cpp.o"
  "CMakeFiles/ndpcr_compress.dir/deflate_style.cpp.o.d"
  "CMakeFiles/ndpcr_compress.dir/huffman.cpp.o"
  "CMakeFiles/ndpcr_compress.dir/huffman.cpp.o.d"
  "CMakeFiles/ndpcr_compress.dir/lz4_style.cpp.o"
  "CMakeFiles/ndpcr_compress.dir/lz4_style.cpp.o.d"
  "CMakeFiles/ndpcr_compress.dir/matcher.cpp.o"
  "CMakeFiles/ndpcr_compress.dir/matcher.cpp.o.d"
  "CMakeFiles/ndpcr_compress.dir/registry.cpp.o"
  "CMakeFiles/ndpcr_compress.dir/registry.cpp.o.d"
  "CMakeFiles/ndpcr_compress.dir/simple_codecs.cpp.o"
  "CMakeFiles/ndpcr_compress.dir/simple_codecs.cpp.o.d"
  "CMakeFiles/ndpcr_compress.dir/suffix_array.cpp.o"
  "CMakeFiles/ndpcr_compress.dir/suffix_array.cpp.o.d"
  "CMakeFiles/ndpcr_compress.dir/xz_style.cpp.o"
  "CMakeFiles/ndpcr_compress.dir/xz_style.cpp.o.d"
  "libndpcr_compress.a"
  "libndpcr_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpcr_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
