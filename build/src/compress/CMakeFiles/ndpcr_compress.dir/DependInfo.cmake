
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/bwt.cpp" "src/compress/CMakeFiles/ndpcr_compress.dir/bwt.cpp.o" "gcc" "src/compress/CMakeFiles/ndpcr_compress.dir/bwt.cpp.o.d"
  "/root/repo/src/compress/bzip_style.cpp" "src/compress/CMakeFiles/ndpcr_compress.dir/bzip_style.cpp.o" "gcc" "src/compress/CMakeFiles/ndpcr_compress.dir/bzip_style.cpp.o.d"
  "/root/repo/src/compress/chunked.cpp" "src/compress/CMakeFiles/ndpcr_compress.dir/chunked.cpp.o" "gcc" "src/compress/CMakeFiles/ndpcr_compress.dir/chunked.cpp.o.d"
  "/root/repo/src/compress/codec.cpp" "src/compress/CMakeFiles/ndpcr_compress.dir/codec.cpp.o" "gcc" "src/compress/CMakeFiles/ndpcr_compress.dir/codec.cpp.o.d"
  "/root/repo/src/compress/deflate_style.cpp" "src/compress/CMakeFiles/ndpcr_compress.dir/deflate_style.cpp.o" "gcc" "src/compress/CMakeFiles/ndpcr_compress.dir/deflate_style.cpp.o.d"
  "/root/repo/src/compress/huffman.cpp" "src/compress/CMakeFiles/ndpcr_compress.dir/huffman.cpp.o" "gcc" "src/compress/CMakeFiles/ndpcr_compress.dir/huffman.cpp.o.d"
  "/root/repo/src/compress/lz4_style.cpp" "src/compress/CMakeFiles/ndpcr_compress.dir/lz4_style.cpp.o" "gcc" "src/compress/CMakeFiles/ndpcr_compress.dir/lz4_style.cpp.o.d"
  "/root/repo/src/compress/matcher.cpp" "src/compress/CMakeFiles/ndpcr_compress.dir/matcher.cpp.o" "gcc" "src/compress/CMakeFiles/ndpcr_compress.dir/matcher.cpp.o.d"
  "/root/repo/src/compress/registry.cpp" "src/compress/CMakeFiles/ndpcr_compress.dir/registry.cpp.o" "gcc" "src/compress/CMakeFiles/ndpcr_compress.dir/registry.cpp.o.d"
  "/root/repo/src/compress/simple_codecs.cpp" "src/compress/CMakeFiles/ndpcr_compress.dir/simple_codecs.cpp.o" "gcc" "src/compress/CMakeFiles/ndpcr_compress.dir/simple_codecs.cpp.o.d"
  "/root/repo/src/compress/suffix_array.cpp" "src/compress/CMakeFiles/ndpcr_compress.dir/suffix_array.cpp.o" "gcc" "src/compress/CMakeFiles/ndpcr_compress.dir/suffix_array.cpp.o.d"
  "/root/repo/src/compress/xz_style.cpp" "src/compress/CMakeFiles/ndpcr_compress.dir/xz_style.cpp.o" "gcc" "src/compress/CMakeFiles/ndpcr_compress.dir/xz_style.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ndpcr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
