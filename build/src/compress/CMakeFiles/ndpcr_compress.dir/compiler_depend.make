# Empty compiler generated dependencies file for ndpcr_compress.
# This may be replaced when dependencies are built.
