file(REMOVE_RECURSE
  "libndpcr_compress.a"
)
