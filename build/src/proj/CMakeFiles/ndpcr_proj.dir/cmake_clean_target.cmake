file(REMOVE_RECURSE
  "libndpcr_proj.a"
)
