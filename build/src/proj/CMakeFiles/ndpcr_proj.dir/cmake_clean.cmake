file(REMOVE_RECURSE
  "CMakeFiles/ndpcr_proj.dir/projection.cpp.o"
  "CMakeFiles/ndpcr_proj.dir/projection.cpp.o.d"
  "libndpcr_proj.a"
  "libndpcr_proj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpcr_proj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
