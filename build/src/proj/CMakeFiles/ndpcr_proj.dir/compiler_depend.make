# Empty compiler generated dependencies file for ndpcr_proj.
# This may be replaced when dependencies are built.
