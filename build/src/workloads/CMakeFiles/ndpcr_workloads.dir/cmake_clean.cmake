file(REMOVE_RECURSE
  "CMakeFiles/ndpcr_workloads.dir/apps.cpp.o"
  "CMakeFiles/ndpcr_workloads.dir/apps.cpp.o.d"
  "CMakeFiles/ndpcr_workloads.dir/array_state.cpp.o"
  "CMakeFiles/ndpcr_workloads.dir/array_state.cpp.o.d"
  "libndpcr_workloads.a"
  "libndpcr_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpcr_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
