file(REMOVE_RECURSE
  "libndpcr_workloads.a"
)
