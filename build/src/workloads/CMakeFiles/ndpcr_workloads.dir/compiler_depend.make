# Empty compiler generated dependencies file for ndpcr_workloads.
# This may be replaced when dependencies are built.
