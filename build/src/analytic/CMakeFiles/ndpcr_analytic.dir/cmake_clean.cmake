file(REMOVE_RECURSE
  "CMakeFiles/ndpcr_analytic.dir/daly.cpp.o"
  "CMakeFiles/ndpcr_analytic.dir/daly.cpp.o.d"
  "libndpcr_analytic.a"
  "libndpcr_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpcr_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
