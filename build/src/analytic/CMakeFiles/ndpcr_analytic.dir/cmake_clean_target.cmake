file(REMOVE_RECURSE
  "libndpcr_analytic.a"
)
