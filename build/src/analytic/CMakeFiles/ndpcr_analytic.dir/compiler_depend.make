# Empty compiler generated dependencies file for ndpcr_analytic.
# This may be replaced when dependencies are built.
