# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("analytic")
subdirs("proj")
subdirs("compress")
subdirs("workloads")
subdirs("ckpt")
subdirs("delta")
subdirs("net")
subdirs("ndp")
subdirs("sim")
subdirs("model")
subdirs("study")
subdirs("cluster")
