file(REMOVE_RECURSE
  "CMakeFiles/ndpcr_cluster.dir/cluster_sim.cpp.o"
  "CMakeFiles/ndpcr_cluster.dir/cluster_sim.cpp.o.d"
  "CMakeFiles/ndpcr_cluster.dir/failure_analysis.cpp.o"
  "CMakeFiles/ndpcr_cluster.dir/failure_analysis.cpp.o.d"
  "CMakeFiles/ndpcr_cluster.dir/ndp_cluster_sim.cpp.o"
  "CMakeFiles/ndpcr_cluster.dir/ndp_cluster_sim.cpp.o.d"
  "libndpcr_cluster.a"
  "libndpcr_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpcr_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
