
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster_sim.cpp" "src/cluster/CMakeFiles/ndpcr_cluster.dir/cluster_sim.cpp.o" "gcc" "src/cluster/CMakeFiles/ndpcr_cluster.dir/cluster_sim.cpp.o.d"
  "/root/repo/src/cluster/failure_analysis.cpp" "src/cluster/CMakeFiles/ndpcr_cluster.dir/failure_analysis.cpp.o" "gcc" "src/cluster/CMakeFiles/ndpcr_cluster.dir/failure_analysis.cpp.o.d"
  "/root/repo/src/cluster/ndp_cluster_sim.cpp" "src/cluster/CMakeFiles/ndpcr_cluster.dir/ndp_cluster_sim.cpp.o" "gcc" "src/cluster/CMakeFiles/ndpcr_cluster.dir/ndp_cluster_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ndpcr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ckpt/CMakeFiles/ndpcr_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/src/ndp/CMakeFiles/ndpcr_ndp.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ndpcr_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/ndpcr_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
