file(REMOVE_RECURSE
  "libndpcr_cluster.a"
)
