# Empty dependencies file for ndpcr_cluster.
# This may be replaced when dependencies are built.
