file(REMOVE_RECURSE
  "CMakeFiles/ndpcr_model.dir/analytic_multilevel.cpp.o"
  "CMakeFiles/ndpcr_model.dir/analytic_multilevel.cpp.o.d"
  "CMakeFiles/ndpcr_model.dir/evaluator.cpp.o"
  "CMakeFiles/ndpcr_model.dir/evaluator.cpp.o.d"
  "libndpcr_model.a"
  "libndpcr_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpcr_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
