# Empty compiler generated dependencies file for ndpcr_model.
# This may be replaced when dependencies are built.
