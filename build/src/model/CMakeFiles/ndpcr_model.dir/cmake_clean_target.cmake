file(REMOVE_RECURSE
  "libndpcr_model.a"
)
