file(REMOVE_RECURSE
  "CMakeFiles/ndp_agent_test.dir/ndp_agent_test.cpp.o"
  "CMakeFiles/ndp_agent_test.dir/ndp_agent_test.cpp.o.d"
  "ndp_agent_test"
  "ndp_agent_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndp_agent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
