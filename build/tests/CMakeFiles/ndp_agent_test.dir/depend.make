# Empty dependencies file for ndp_agent_test.
# This may be replaced when dependencies are built.
