file(REMOVE_RECURSE
  "CMakeFiles/compress_reference_test.dir/compress_reference_test.cpp.o"
  "CMakeFiles/compress_reference_test.dir/compress_reference_test.cpp.o.d"
  "compress_reference_test"
  "compress_reference_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
