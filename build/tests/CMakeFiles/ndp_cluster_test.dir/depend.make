# Empty dependencies file for ndp_cluster_test.
# This may be replaced when dependencies are built.
