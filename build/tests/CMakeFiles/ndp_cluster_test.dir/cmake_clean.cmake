file(REMOVE_RECURSE
  "CMakeFiles/ndp_cluster_test.dir/ndp_cluster_test.cpp.o"
  "CMakeFiles/ndp_cluster_test.dir/ndp_cluster_test.cpp.o.d"
  "ndp_cluster_test"
  "ndp_cluster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndp_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
