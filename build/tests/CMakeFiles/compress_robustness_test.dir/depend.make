# Empty dependencies file for compress_robustness_test.
# This may be replaced when dependencies are built.
