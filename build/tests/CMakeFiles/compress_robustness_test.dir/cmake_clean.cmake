file(REMOVE_RECURSE
  "CMakeFiles/compress_robustness_test.dir/compress_robustness_test.cpp.o"
  "CMakeFiles/compress_robustness_test.dir/compress_robustness_test.cpp.o.d"
  "compress_robustness_test"
  "compress_robustness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
