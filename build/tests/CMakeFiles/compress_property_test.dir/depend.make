# Empty dependencies file for compress_property_test.
# This may be replaced when dependencies are built.
