file(REMOVE_RECURSE
  "CMakeFiles/ndp_test.dir/ndp_test.cpp.o"
  "CMakeFiles/ndp_test.dir/ndp_test.cpp.o.d"
  "ndp_test"
  "ndp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
