# Empty compiler generated dependencies file for proj_test.
# This may be replaced when dependencies are built.
