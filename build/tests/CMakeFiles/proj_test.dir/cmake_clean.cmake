file(REMOVE_RECURSE
  "CMakeFiles/proj_test.dir/proj_test.cpp.o"
  "CMakeFiles/proj_test.dir/proj_test.cpp.o.d"
  "proj_test"
  "proj_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proj_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
