file(REMOVE_RECURSE
  "CMakeFiles/chunked_test.dir/chunked_test.cpp.o"
  "CMakeFiles/chunked_test.dir/chunked_test.cpp.o.d"
  "chunked_test"
  "chunked_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chunked_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
