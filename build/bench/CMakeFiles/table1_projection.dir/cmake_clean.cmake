file(REMOVE_RECURSE
  "CMakeFiles/table1_projection.dir/table1_projection.cpp.o"
  "CMakeFiles/table1_projection.dir/table1_projection.cpp.o.d"
  "table1_projection"
  "table1_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
