# Empty compiler generated dependencies file for table1_projection.
# This may be replaced when dependencies are built.
