# Empty compiler generated dependencies file for ablation_nic_contention.
# This may be replaced when dependencies are built.
