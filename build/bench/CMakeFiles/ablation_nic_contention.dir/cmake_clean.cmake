file(REMOVE_RECURSE
  "CMakeFiles/ablation_nic_contention.dir/ablation_nic_contention.cpp.o"
  "CMakeFiles/ablation_nic_contention.dir/ablation_nic_contention.cpp.o.d"
  "ablation_nic_contention"
  "ablation_nic_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nic_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
