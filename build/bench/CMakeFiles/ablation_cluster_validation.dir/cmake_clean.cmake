file(REMOVE_RECURSE
  "CMakeFiles/ablation_cluster_validation.dir/ablation_cluster_validation.cpp.o"
  "CMakeFiles/ablation_cluster_validation.dir/ablation_cluster_validation.cpp.o.d"
  "ablation_cluster_validation"
  "ablation_cluster_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cluster_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
