# Empty dependencies file for fig7_breakdown_4pct.
# This may be replaced when dependencies are built.
