file(REMOVE_RECURSE
  "CMakeFiles/fig7_breakdown_4pct.dir/fig7_breakdown_4pct.cpp.o"
  "CMakeFiles/fig7_breakdown_4pct.dir/fig7_breakdown_4pct.cpp.o.d"
  "fig7_breakdown_4pct"
  "fig7_breakdown_4pct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_breakdown_4pct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
