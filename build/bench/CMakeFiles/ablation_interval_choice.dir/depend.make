# Empty dependencies file for ablation_interval_choice.
# This may be replaced when dependencies are built.
