file(REMOVE_RECURSE
  "CMakeFiles/ablation_interval_choice.dir/ablation_interval_choice.cpp.o"
  "CMakeFiles/ablation_interval_choice.dir/ablation_interval_choice.cpp.o.d"
  "ablation_interval_choice"
  "ablation_interval_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_interval_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
