file(REMOVE_RECURSE
  "CMakeFiles/fig9_mtti_sensitivity.dir/fig9_mtti_sensitivity.cpp.o"
  "CMakeFiles/fig9_mtti_sensitivity.dir/fig9_mtti_sensitivity.cpp.o.d"
  "fig9_mtti_sensitivity"
  "fig9_mtti_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_mtti_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
