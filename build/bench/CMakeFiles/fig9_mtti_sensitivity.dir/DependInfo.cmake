
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig9_mtti_sensitivity.cpp" "bench/CMakeFiles/fig9_mtti_sensitivity.dir/fig9_mtti_sensitivity.cpp.o" "gcc" "bench/CMakeFiles/fig9_mtti_sensitivity.dir/fig9_mtti_sensitivity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/ndpcr_model.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/ndpcr_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ndpcr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ndp/CMakeFiles/ndpcr_ndp.dir/DependInfo.cmake"
  "/root/repo/build/src/ckpt/CMakeFiles/ndpcr_ckpt.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/ndpcr_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ndpcr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
