# Empty dependencies file for fig9_mtti_sensitivity.
# This may be replaced when dependencies are built.
