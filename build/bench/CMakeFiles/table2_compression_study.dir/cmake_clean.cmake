file(REMOVE_RECURSE
  "CMakeFiles/table2_compression_study.dir/table2_compression_study.cpp.o"
  "CMakeFiles/table2_compression_study.dir/table2_compression_study.cpp.o.d"
  "table2_compression_study"
  "table2_compression_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_compression_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
