file(REMOVE_RECURSE
  "CMakeFiles/ablation_ndp_pipeline.dir/ablation_ndp_pipeline.cpp.o"
  "CMakeFiles/ablation_ndp_pipeline.dir/ablation_ndp_pipeline.cpp.o.d"
  "ablation_ndp_pipeline"
  "ablation_ndp_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ndp_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
