# Empty compiler generated dependencies file for ablation_ndp_pipeline.
# This may be replaced when dependencies are built.
