# Empty compiler generated dependencies file for table3_ndp_config.
# This may be replaced when dependencies are built.
