file(REMOVE_RECURSE
  "CMakeFiles/fig8_size_sensitivity.dir/fig8_size_sensitivity.cpp.o"
  "CMakeFiles/fig8_size_sensitivity.dir/fig8_size_sensitivity.cpp.o.d"
  "fig8_size_sensitivity"
  "fig8_size_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_size_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
