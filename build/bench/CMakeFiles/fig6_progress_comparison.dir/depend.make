# Empty dependencies file for fig6_progress_comparison.
# This may be replaced when dependencies are built.
