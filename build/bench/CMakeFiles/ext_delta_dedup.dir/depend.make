# Empty dependencies file for ext_delta_dedup.
# This may be replaced when dependencies are built.
