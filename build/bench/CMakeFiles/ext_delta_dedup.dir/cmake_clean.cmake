file(REMOVE_RECURSE
  "CMakeFiles/ext_delta_dedup.dir/ext_delta_dedup.cpp.o"
  "CMakeFiles/ext_delta_dedup.dir/ext_delta_dedup.cpp.o.d"
  "ext_delta_dedup"
  "ext_delta_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_delta_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
