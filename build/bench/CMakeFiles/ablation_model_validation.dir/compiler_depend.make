# Empty compiler generated dependencies file for ablation_model_validation.
# This may be replaced when dependencies are built.
