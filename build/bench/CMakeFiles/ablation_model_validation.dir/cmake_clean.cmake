file(REMOVE_RECURSE
  "CMakeFiles/ablation_model_validation.dir/ablation_model_validation.cpp.o"
  "CMakeFiles/ablation_model_validation.dir/ablation_model_validation.cpp.o.d"
  "ablation_model_validation"
  "ablation_model_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_model_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
