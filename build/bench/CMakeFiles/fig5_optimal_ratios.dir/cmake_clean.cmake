file(REMOVE_RECURSE
  "CMakeFiles/fig5_optimal_ratios.dir/fig5_optimal_ratios.cpp.o"
  "CMakeFiles/fig5_optimal_ratios.dir/fig5_optimal_ratios.cpp.o.d"
  "fig5_optimal_ratios"
  "fig5_optimal_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_optimal_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
