# Empty compiler generated dependencies file for fig5_optimal_ratios.
# This may be replaced when dependencies are built.
