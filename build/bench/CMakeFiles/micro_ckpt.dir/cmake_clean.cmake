file(REMOVE_RECURSE
  "CMakeFiles/micro_ckpt.dir/micro_ckpt.cpp.o"
  "CMakeFiles/micro_ckpt.dir/micro_ckpt.cpp.o.d"
  "micro_ckpt"
  "micro_ckpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
