# Empty dependencies file for micro_ckpt.
# This may be replaced when dependencies are built.
