file(REMOVE_RECURSE
  "CMakeFiles/ablation_fullstack_validation.dir/ablation_fullstack_validation.cpp.o"
  "CMakeFiles/ablation_fullstack_validation.dir/ablation_fullstack_validation.cpp.o.d"
  "ablation_fullstack_validation"
  "ablation_fullstack_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fullstack_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
