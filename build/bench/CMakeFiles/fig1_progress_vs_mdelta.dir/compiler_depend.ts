# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig1_progress_vs_mdelta.
