# Empty compiler generated dependencies file for fig1_progress_vs_mdelta.
# This may be replaced when dependencies are built.
