file(REMOVE_RECURSE
  "CMakeFiles/fig1_progress_vs_mdelta.dir/fig1_progress_vs_mdelta.cpp.o"
  "CMakeFiles/fig1_progress_vs_mdelta.dir/fig1_progress_vs_mdelta.cpp.o.d"
  "fig1_progress_vs_mdelta"
  "fig1_progress_vs_mdelta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_progress_vs_mdelta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
