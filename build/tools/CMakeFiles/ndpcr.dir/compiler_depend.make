# Empty compiler generated dependencies file for ndpcr.
# This may be replaced when dependencies are built.
