file(REMOVE_RECURSE
  "CMakeFiles/ndpcr.dir/ndpcr_cli.cpp.o"
  "CMakeFiles/ndpcr.dir/ndpcr_cli.cpp.o.d"
  "ndpcr"
  "ndpcr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndpcr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
