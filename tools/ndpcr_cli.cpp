// ndpcr - command-line front end to the library.
//
//   ndpcr project                         Table-1 exascale projection
//   ndpcr evaluate [options]             progress rate + breakdown for a
//                                        C/R configuration on a scenario
//   ndpcr study [options]                compression study on one app
//   ndpcr sweep --param {mtti|size|plocal} [options]
//                                        sensitivity sweep for one config
//   ndpcr --faults <seed> [options]      run one seeded chaos fault
//                                        schedule through the multilevel
//                                        data path and print the health
//                                        report (also: ndpcr chaos ...)
//       --nodes <n> --commits <n> --scheme {copy|xor} --outage {0|1}
//       --transient/--torn/--bitflip/--stall <rate>  per-op fault rates
//       --io-codec {null|rle|lz4|deflate|bzip|xz}  IO-level codec
//       --io-threads <n>      chunk-compression workers (0 = pool size,
//                             1 = inline) --io-chunk <bytes>
//       --trace <file>        write a Chrome-trace-event JSON of the run
//                             (open in Perfetto; docs/OBSERVABILITY.md)
//       --metrics <file>      write a metrics snapshot (.json = JSON,
//                             else CSV, "-" = stdout)
//   ndpcr equiv [options]                crash-anywhere restart-equivalence
//                                        sweep (docs/EQUIVALENCE.md)
//       --kernel {cg|mg|ft}   --mode {full|delta|dedup}
//       --nodes <n> --iters <n> --cadence <n> --bytes <per-rank state>
//       --seed <s> --stride <k>          sweep every k-th crash point
//       --list-crash-points 1            print the canonical enumeration
//       --crash-point <k>                run a single crash point
//       --torn {0|1}          dying writes land torn (1) or vanish (0)
//       --transient/--torn-rate/--bitflip/--stall <rate>  seeded device
//                             faults layered under the crash gates
//       --io-root <dir>       file-backed IO level (real latest pointers)
//   ndpcr failures [options]             exascale failure simulator
//                                        (docs/SIM.md): P(recovery from
//                                        local), cascade/rack shares and
//                                        per-phase energy from the DES,
//                                        optionally as parallel replicas
//       --nodes <n> --failures <n> --seed <s>
//       --mttf-years <y>      per-node MTTF (default 5)
//       --rebuild-min <m>     partner rebuild window (default 10)
//       --distribution {exponential|weibull}  --weibull-shape <k>
//       --cascade <p>         correlated-burst trigger probability
//       --racks <size>        rack structure (0 = none) with outages
//       --rack-mttf-years <y> per-rack outage MTTF (default 250)
//       --placement {ring|cross-rack}  partner placement
//       --engine {auto|heap|calendar|superposition}
//       --energy {0|1}        per-phase energy accounting
//       --replicas <n>        independent replicas on the engine pool
//       --csv <file>          per-replica counters as CSV ("-" = stdout)
//   ndpcr serve [options]                seeded multi-tenant checkpoint
//                                        service demo (docs/SERVICE.md):
//                                        per-tenant admission/fairness
//                                        table, Jain indices, commit
//                                        latency, exit 1 on any
//                                        cross-tenant invariant violation
//       --tenants <n> --waves <n> --bytes <per-rank payload>
//       --faults {0|1}        seeded fault plans on odd tenants
//       --quota-every <n>     every n-th tenant gets a tight IO grant
//       --nvm-fraction <f>    shared-NVM budget (backpressure band)
//       --metrics <file>      per-tenant metrics snapshot ("-" = stdout)
//       --trace <file>        per-tenant scheduler event tracks
//
// Common options (defaults = the paper's Table 4 scenario):
//   --mtti <minutes>      --ckpt-gb <GB>       --local-gbps <GB/s>
//   --io-mbps <MB/s>      --cf <0..1>          --plocal <0..1>
//   --strategy {ndp|host|io-only}              --ratio <k>
//   --app <name>          --mb <megabytes>     --trials <n>
//   --threads <n>         execution-engine thread count (0 = auto)
//
// Examples:
//   ndpcr evaluate --strategy ndp --cf 0.73 --plocal 0.85
//   ndpcr sweep --param mtti --strategy host --cf 0.73
//   ndpcr study --app minife --mb 4

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "cluster/failure_analysis.hpp"
#include "cluster/replicates.hpp"
#include "common/breakdown_table.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "exec/reporter.hpp"
#include "exec/task_pool.hpp"
#include "faults/chaos.hpp"
#include "faults/fault_plan.hpp"
#include "faults/faulty_stores.hpp"
#include "ndp/agent.hpp"
#include "model/evaluator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "proj/projection.hpp"
#include "harness/equivalence.hpp"
#include "study/compression_study.hpp"
#include "svc/svc_chaos.hpp"

namespace {

using namespace ndpcr;
using namespace ndpcr::units;

struct Options {
  std::map<std::string, std::string> values;

  [[nodiscard]] double number(const std::string& key, double fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : std::strtod(it->second.c_str(),
                                                       nullptr);
  }
  [[nodiscard]] std::string text(const std::string& key,
                                 const std::string& fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
};

Options parse_options(int argc, char** argv, int first) {
  Options opts;
  for (int i = first; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", key.c_str());
      std::exit(2);
    }
    opts.values[key.substr(2)] = argv[i + 1];
  }
  return opts;
}

model::CrScenario scenario_from(const Options& opts) {
  model::CrScenario s;
  s.mtti = minutes(opts.number("mtti", 30.0));
  s.checkpoint_bytes = bytes_from_gb(opts.number("ckpt-gb", 112.0));
  s.local_bw = gbps(opts.number("local-gbps", 15.0));
  s.io_bw_per_node = mbps(opts.number("io-mbps", 100.0));
  return s;
}

model::CrConfig config_from(const Options& opts) {
  model::CrConfig cfg;
  const std::string strategy = opts.text("strategy", "ndp");
  if (strategy == "ndp") {
    cfg.kind = model::ConfigKind::kLocalIoNdp;
  } else if (strategy == "host") {
    cfg.kind = model::ConfigKind::kLocalIoHost;
  } else if (strategy == "io-only") {
    cfg.kind = model::ConfigKind::kIoOnly;
  } else {
    std::fprintf(stderr, "unknown strategy: %s\n", strategy.c_str());
    std::exit(2);
  }
  cfg.compression_factor = opts.number("cf", 0.0);
  cfg.p_local_recovery = opts.number("plocal", 0.85);
  return cfg;
}

model::Evaluation evaluate_config(const model::Evaluator& ev,
                                  const model::CrConfig& cfg,
                                  const Options& opts) {
  const double ratio = opts.number("ratio", 0.0);
  if (ratio > 0 && cfg.kind == model::ConfigKind::kLocalIoHost) {
    return ev.evaluate_at_ratio(cfg,
                                static_cast<std::uint32_t>(ratio));
  }
  return ev.evaluate(cfg);
}

int cmd_project() {
  const auto t = proj::titan();
  const auto e = proj::project_exascale(t);
  TextTable table({"Parameter", "Titan", "Exascale"});
  table.add_row({"nodes", fmt_fixed(t.node_count, 0),
                 fmt_fixed(e.node_count, 0)});
  table.add_row({"node peak", fmt_fixed(t.node_peak_flops / 1e12, 2) + " TF",
                 fmt_fixed(e.node_peak_flops / 1e12, 0) + " TF"});
  table.add_row({"node memory", fmt_si_bytes(t.node_memory_bytes),
                 fmt_si_bytes(e.node_memory_bytes)});
  table.add_row({"system memory", fmt_si_bytes(t.system_memory_bytes),
                 fmt_si_bytes(e.system_memory_bytes)});
  table.add_row({"I/O bandwidth", fmt_si_bytes(t.io_bandwidth) + "/s",
                 fmt_si_bytes(e.io_bandwidth) + "/s"});
  table.add_row({"MTTI", fmt_fixed(to_minutes(t.system_mtti), 0) + " min",
                 fmt_fixed(to_minutes(e.system_mtti), 0) + " min"});
  std::fputs(table.str().c_str(), stdout);
  const auto r = proj::derive_cr_requirements(e);
  std::printf("\n90%% progress needs: commit %.1f s, period %.0f s, "
              "%.2f GB/s per node\n",
              r.commit_time, r.checkpoint_period,
              r.per_node_bandwidth / 1e9);
  return 0;
}

int cmd_evaluate(const Options& opts) {
  model::SimOptions sim;
  sim.trials = static_cast<int>(opts.number("trials", 3));
  sim.total_work = opts.number("hours", 250.0) * 3600;
  const model::Evaluator ev(scenario_from(opts), sim);
  const auto cfg = config_from(opts);
  const auto e = evaluate_config(ev, cfg, opts);

  std::printf("%s\n\n", cfg.label().c_str());
  TextTable tbl(table::breakdown_header("Configuration"));
  tbl.add_row(table::breakdown_row(cfg.label(), e.result.breakdown));
  std::fputs(tbl.str().c_str(), stdout);
  std::printf("\nlocal:IO checkpoint ratio %u, interval %.0f s, "
              "%llu failures over %d trials (%.2f per trial)\n",
              e.io_every, e.interval,
              static_cast<unsigned long long>(e.result.failures),
              e.result.trials, e.result.mean_failures());
  return 0;
}

int cmd_study(const Options& opts) {
  study::StudyConfig cfg;
  cfg.bytes_per_app =
      static_cast<std::size_t>(opts.number("mb", 2.0) * 1e6);
  const std::string app = opts.text("app", "");
  if (!app.empty()) cfg.apps = {app};
  const auto results = study::run_compression_study(cfg);
  TextTable table({"App", "Codec", "Factor", "Speed", "Decomp"});
  for (const auto& m : results.rows) {
    table.add_row({m.app, m.codec, fmt_percent(m.factor, 1),
                   fmt_fixed(m.compress_bw / 1e6, 1) + " MB/s",
                   fmt_fixed(m.decompress_bw / 1e6, 1) + " MB/s"});
  }
  std::fputs(table.str().c_str(), stdout);
  return 0;
}

int cmd_sweep(const Options& opts) {
  const std::string param = opts.text("param", "mtti");
  model::SimOptions sim;
  sim.trials = static_cast<int>(opts.number("trials", 2));
  sim.total_work = opts.number("hours", 200.0) * 3600;
  const auto cfg = config_from(opts);

  TextTable table({param, "progress rate", "ratio"});
  auto run_point = [&](const std::string& label,
                       const model::CrScenario& scenario,
                       const model::CrConfig& point_cfg) {
    const model::Evaluator ev(scenario, sim);
    const auto e = evaluate_config(ev, point_cfg, opts);
    table.add_row({label, fmt_percent(e.progress_rate(), 1),
                   std::to_string(e.io_every)});
  };

  if (param == "mtti") {
    for (double m : {30.0, 60.0, 90.0, 120.0, 150.0}) {
      auto scenario = scenario_from(opts);
      scenario.mtti = minutes(m);
      run_point(fmt_fixed(m, 0) + " min", scenario, cfg);
    }
  } else if (param == "size") {
    for (double g : {14.0, 28.0, 56.0, 84.0, 112.0}) {
      auto scenario = scenario_from(opts);
      scenario.checkpoint_bytes = bytes_from_gb(g);
      run_point(fmt_fixed(g, 0) + " GB", scenario, cfg);
    }
  } else if (param == "plocal") {
    for (double p : {0.2, 0.4, 0.6, 0.8, 0.96}) {
      auto point = cfg;
      point.p_local_recovery = p;
      run_point(fmt_percent(p, 0), scenario_from(opts), point);
    }
  } else {
    std::fprintf(stderr, "unknown sweep parameter: %s\n", param.c_str());
    return 2;
  }
  std::fputs(table.str().c_str(), stdout);
  return 0;
}

int cmd_faults(const Options& opts) {
  faults::ChaosConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(opts.number("faults", 1));
  cfg.node_count = static_cast<std::uint32_t>(opts.number("nodes", 6));
  cfg.commits = static_cast<std::uint32_t>(opts.number("commits", 24));
  cfg.io_outage = opts.number("outage", 0) != 0;
  const std::string scheme = opts.text("scheme", "copy");
  if (scheme == "xor") {
    cfg.scheme = ckpt::PartnerScheme::kXorGroup;
  } else if (scheme != "copy") {
    std::fprintf(stderr, "unknown scheme: %s\n", scheme.c_str());
    return 2;
  }
  cfg.rates.transient = opts.number("transient", cfg.rates.transient);
  cfg.rates.torn = opts.number("torn", cfg.rates.torn);
  cfg.rates.bitflip = opts.number("bitflip", cfg.rates.bitflip);
  cfg.rates.stall = opts.number("stall", cfg.rates.stall);
  const std::string io_codec = opts.text("io-codec", "null");
  if (io_codec == "null") {
    cfg.io_codec = compress::CodecId::kNull;
  } else if (io_codec == "rle") {
    cfg.io_codec = compress::CodecId::kRle;
  } else if (io_codec == "lz4") {
    cfg.io_codec = compress::CodecId::kLz4Style;
  } else if (io_codec == "deflate") {
    cfg.io_codec = compress::CodecId::kDeflateStyle;
  } else if (io_codec == "bzip") {
    cfg.io_codec = compress::CodecId::kBzipStyle;
  } else if (io_codec == "xz") {
    cfg.io_codec = compress::CodecId::kXzStyle;
  } else {
    std::fprintf(stderr, "unknown io codec: %s\n", io_codec.c_str());
    return 2;
  }
  // 0 resolves to the engine pool's size inside the manager; the result
  // is thread-count-invariant either way.
  cfg.io_threads = static_cast<unsigned>(opts.number("io-threads", 0));
  cfg.io_chunk_bytes = static_cast<std::size_t>(
      opts.number("io-chunk", static_cast<double>(cfg.io_chunk_bytes)));
  if (cfg.io_chunk_bytes == 0) {
    std::fputs("io-chunk must be positive\n", stderr);
    return 2;
  }

  const std::string trace_path = opts.text("trace", "");
  const std::string metrics_path = opts.text("metrics", "");
  obs::Tracer tracer(!trace_path.empty());
  obs::MetricsRegistry metrics;
  if (!trace_path.empty()) cfg.trace = &tracer;
  if (!metrics_path.empty()) cfg.metrics = &metrics;

  const auto report = faults::run_chaos(cfg);

  // NDP drain leg: the agent drains one compressible image through a
  // fault-injecting IO store seeded from the same schedule, so the
  // trace also covers the drain/compress/wire stages and the health
  // table gets the drain-side row (docs/OBSERVABILITY.md). Entirely
  // serial on the virtual clock, so thread-count invariance holds.
  auto drain_plan = std::make_shared<faults::FaultPlan>(
      exec::sub_seed(cfg.seed, 0x6472u), cfg.rates);
  faults::FaultyKvStore drain_io(drain_plan, faults::io_target());
  ndp::AgentConfig ac;
  ac.uncompressed_capacity = 4ull << 20;
  ac.compressed_capacity = 4ull << 20;
  ac.codec = compress::CodecId::kDeflateStyle;
  ac.codec_level = 1;
  ac.compress_bw = 1e6;
  ac.io_bw = 0.5e6;
  if (!trace_path.empty()) {
    ac.trace = &tracer;
    ac.trace_track = 40;
    tracer.set_track_name(43, "drain io");
  }
  ndp::NdpAgent agent(ac, drain_io);
  if (obs::TraceBuffer* rb = tracer.root()) drain_io.set_trace(rb, 43);
  Bytes drain_image(256ull << 10);
  {
    Rng rng(exec::sub_seed(cfg.seed, 0x696fu));
    for (auto& b : drain_image) {
      b = static_cast<std::byte>(rng.next_below(5));
    }
  }
  (void)agent.host_commit(1, std::move(drain_image));
  const double drain_s = agent.pump(1e9);

  std::printf("chaos schedule seed %llu: %llu commits, %u nodes, "
              "scheme %s%s\n\n",
              static_cast<unsigned long long>(report.seed),
              static_cast<unsigned long long>(report.commits),
              cfg.node_count, scheme.c_str(),
              cfg.io_outage ? ", IO outage window" : "");

  TextTable table({"Level", "State", "Puts", "Retries", "Failures",
                   "VerifyFail", "Quarantined", "Repairs", "Backoff"});
  auto level_row = [&](const char* name, const ckpt::LevelHealth& h) {
    table.add_row({name, ckpt::to_string(h.state),
                   std::to_string(h.puts), std::to_string(h.put_retries),
                   std::to_string(h.put_failures),
                   std::to_string(h.verify_failures),
                   std::to_string(h.quarantined),
                   std::to_string(h.repairs),
                   fmt_fixed(h.backoff_seconds, 2) + " s"});
  };
  level_row("local", report.health.local);
  level_row("partner", report.health.partner);
  level_row("io", report.health.io);
  level_row("ndp-drain", agent.drain_health());
  std::fputs(table.str().c_str(), stdout);

  std::printf("\ncommits %llu (degraded %llu), recoveries %llu of %llu "
              "probes, unrecoverable %llu\n",
              static_cast<unsigned long long>(report.health.commits),
              static_cast<unsigned long long>(
                  report.health.degraded_commits),
              static_cast<unsigned long long>(report.recoveries),
              static_cast<unsigned long long>(report.recover_calls),
              static_cast<unsigned long long>(report.unrecoverable));
  std::printf("faults injected: %llu transient, %llu torn, %llu bitflip, "
              "%llu stall (%.2f s), %llu outage\n",
              static_cast<unsigned long long>(
                  report.faults.transient_errors),
              static_cast<unsigned long long>(report.faults.torn_writes),
              static_cast<unsigned long long>(report.faults.bit_flips),
              static_cast<unsigned long long>(report.faults.stalls),
              report.faults.stall_seconds,
              static_cast<unsigned long long>(report.faults.outage_errors));
  const auto& as = agent.stats();
  std::printf("ndp drain: %llu IO puts (%llu retries), %llu host "
              "fallbacks, %.2f virtual s\n",
              static_cast<unsigned long long>(as.io_put_attempts),
              static_cast<unsigned long long>(as.drain_put_retries),
              static_cast<unsigned long long>(as.host_fallbacks),
              drain_s);
  std::printf("fingerprint %08x, violations %llu\n", report.fingerprint,
              static_cast<unsigned long long>(report.violations));
  for (const auto& note : report.violation_notes) {
    std::printf("  violation: %s\n", note.c_str());
  }
  if (!trace_path.empty()) {
    tracer.write(trace_path);
    std::printf("trace: %s (%zu events, fingerprint %08x)\n",
                trace_path.c_str(), tracer.events().size(),
                tracer.fingerprint());
  }
  if (!metrics_path.empty()) {
    const ckpt::LevelHealth dh = agent.drain_health();
    metrics.counter("ndp.drain.puts").add(dh.puts);
    metrics.counter("ndp.drain.put_retries").add(dh.put_retries);
    metrics.counter("ndp.drain.put_failures").add(dh.put_failures);
    metrics.counter("ndp.drain.verify_failures").add(dh.verify_failures);
    metrics.counter("ndp.drain.quarantined").add(dh.quarantined);
    metrics.counter("ndp.drain.host_fallbacks").add(as.host_fallbacks);
    metrics.gauge("ndp.drain.backoff_seconds").set(dh.backoff_seconds);
    exec::RunMeta meta;
    meta.bench = "chaos";
    meta.seed = cfg.seed;
    meta.trials = 1;
    meta.threads = exec::global_thread_count();
    meta.config = "nodes=" + std::to_string(cfg.node_count) +
                  " commits=" + std::to_string(cfg.commits) +
                  " scheme=" + scheme;
    metrics.write(metrics_path, meta);
    std::printf("metrics: %s (fingerprint %08x)\n", metrics_path.c_str(),
                metrics.fingerprint());
  }
  return report.violations == 0 ? 0 : 1;
}

int cmd_failures(const Options& opts) {
  cluster::FailureAnalysisConfig cfg;
  cfg.node_count = static_cast<std::uint32_t>(opts.number("nodes", 100000));
  cfg.node_mttf = years(opts.number("mttf-years", 5.0));
  cfg.rebuild_time = minutes(opts.number("rebuild-min", 10.0));
  cfg.target_failures =
      static_cast<std::uint64_t>(opts.number("failures", 100000));
  cfg.seed = static_cast<std::uint64_t>(opts.number("seed", 1));
  cfg.weibull_shape = opts.number("weibull-shape", 0.7);

  const std::string dist = opts.text("distribution", "exponential");
  if (dist == "weibull") {
    cfg.distribution = cluster::FailureDistribution::kWeibull;
  } else if (dist != "exponential") {
    std::fprintf(stderr, "unknown distribution: %s\n", dist.c_str());
    return 2;
  }
  cfg.cascade.probability = opts.number("cascade", 0.0);
  cfg.racks.rack_size =
      static_cast<std::uint32_t>(opts.number("racks", 0));
  if (cfg.racks.rack_size > 0) {
    cfg.racks.outage_mttf = years(opts.number("rack-mttf-years", 250.0));
  }
  const std::string placement = opts.text("placement", "ring");
  if (placement == "cross-rack") {
    cfg.placement = cluster::PartnerPlacement::kCrossRack;
  } else if (placement != "ring") {
    std::fprintf(stderr, "unknown placement: %s\n", placement.c_str());
    return 2;
  }
  const std::string engine = opts.text("engine", "auto");
  if (engine == "heap") {
    cfg.engine = cluster::FailureEngine::kHeap;
  } else if (engine == "calendar") {
    cfg.engine = cluster::FailureEngine::kCalendar;
  } else if (engine == "superposition") {
    cfg.engine = cluster::FailureEngine::kSuperposition;
  } else if (engine != "auto") {
    std::fprintf(stderr, "unknown engine: %s\n", engine.c_str());
    return 2;
  }
  cfg.energy.enabled = opts.number("energy", 0) != 0;

  const int replicas =
      std::max(1, static_cast<int>(opts.number("replicas", 1)));
  const auto sum = cluster::run_failure_replicates(cfg, replicas);

  std::printf("failure simulator: %u nodes, %s renewals, %d replica%s "
              "(seed %llu)\n\n",
              cfg.node_count,
              dist == "weibull" ? "weibull" : "exponential", replicas,
              replicas == 1 ? "" : "s",
              static_cast<unsigned long long>(cfg.seed));

  TextTable table({"Metric", "Value"});
  table.add_row({"failures", std::to_string(sum.total_failures)});
  table.add_row({"local recoverable",
                 std::to_string(sum.total_local_recoverable)});
  table.add_row({"io required", std::to_string(sum.total_io_required)});
  table.add_row({"P(local)", fmt_percent(sum.p_local(), 3)});
  if (cfg.cascade.probability > 0.0) {
    table.add_row({"cascade failures",
                   std::to_string(sum.total_cascade_failures)});
    table.add_row({"P(cascade)", fmt_percent(sum.p_cascade(), 2)});
  }
  if (cfg.racks.rack_size > 0) {
    table.add_row({"rack outages", std::to_string(sum.total_rack_outages)});
    table.add_row({"rack node failures",
                   std::to_string(sum.total_rack_node_failures)});
    table.add_row({"P(rack)", fmt_percent(sum.p_rack(), 2)});
  }
  table.add_row({"system MTTI",
                 fmt_fixed(to_minutes(sum.mean_system_mtti()), 2) + " min"});
  table.add_row({"events processed",
                 std::to_string(sum.total_events_processed)});
  if (cfg.energy.enabled) {
    table.add_row({"energy (total)",
                   fmt_fixed(sum.total_energy_joules / 1e12, 3) + " TJ"});
  }
  std::fputs(table.str().c_str(), stdout);

  const std::string csv_path = opts.text("csv", "");
  if (!csv_path.empty()) {
    std::FILE* out = csv_path == "-" ? stdout
                                     : std::fopen(csv_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
      return 2;
    }
    if (csv_path == "-") std::fputs("\n", out);
    std::fputs("replica,failures,local_recoverable,io_required,"
               "cascade_failures,rack_outages,rack_node_failures,"
               "events_processed,elapsed_s,energy_j\n",
               out);
    for (std::size_t r = 0; r < sum.runs.size(); ++r) {
      const auto& run = sum.runs[r];
      std::fprintf(out, "%zu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%.6g,%.6g\n",
                   r, static_cast<unsigned long long>(run.failures),
                   static_cast<unsigned long long>(run.local_recoverable),
                   static_cast<unsigned long long>(run.io_required),
                   static_cast<unsigned long long>(run.cascade_failures),
                   static_cast<unsigned long long>(run.rack_outages),
                   static_cast<unsigned long long>(run.rack_node_failures),
                   static_cast<unsigned long long>(run.events_processed),
                   run.elapsed, run.energy.total_joules());
    }
    if (csv_path != "-") {
      std::fclose(out);
      std::printf("\ncsv: %s (%zu replicas)\n", csv_path.c_str(),
                  sum.runs.size());
    }
  }

  // Exact-counter invariant: every failure is classified exactly once.
  if (sum.total_failures !=
      sum.total_local_recoverable + sum.total_io_required) {
    std::fputs("\nINVARIANT VIOLATION: failures != local + io\n", stderr);
    return 1;
  }
  return 0;
}

int cmd_serve(const Options& opts) {
  svc::SvcChaosConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(opts.number("seed", 1));
  cfg.tenants = static_cast<std::uint32_t>(opts.number("tenants", 12));
  cfg.waves = static_cast<std::uint32_t>(opts.number("waves", 6));
  cfg.payload_bytes =
      static_cast<std::size_t>(opts.number("bytes", 1024));
  cfg.faults = opts.number("faults", 1) != 0;
  cfg.quota_every =
      static_cast<std::uint32_t>(opts.number("quota-every", 5));
  cfg.nvm_budget_fraction = opts.number("nvm-fraction", 0.30);
  const std::string trace_path = opts.text("trace", "");
  const std::string metrics_path = opts.text("metrics", "");
  obs::Tracer tracer(!trace_path.empty());
  if (!trace_path.empty()) cfg.trace = &tracer;
  obs::MetricsRegistry metrics;
  cfg.metrics = &metrics;

  const auto report = svc::run_svc_chaos(cfg);

  std::printf("checkpoint service: %u tenants, %u waves, seed %llu%s\n\n",
              report.tenants, cfg.waves,
              static_cast<unsigned long long>(report.seed),
              cfg.faults ? ", seeded faults on odd tenants" : "");

  TextTable table({"Tenant", "Weight", "Accepted", "Throttled", "Denied",
                   "Commits", "IO bytes", "p50", "p99", "Restores"});
  for (std::uint32_t t = 0; t < report.tenants; ++t) {
    char name[16];
    std::snprintf(name, sizeof name, "t%04u", t);
    const std::string p = std::string("svc.") + name;
    const auto denied =
        metrics.counter(p + ".denied_backpressure").value() +
        metrics.counter(p + ".denied_quota").value();
    table.add_row(
        {name, fmt_fixed(metrics.gauge(p + ".weight").value(), 0),
         std::to_string(metrics.counter(p + ".accepted").value()),
         std::to_string(metrics.counter(p + ".throttled").value()),
         std::to_string(denied),
         std::to_string(metrics.counter(p + ".commits").value()),
         std::to_string(metrics.counter(p + ".io_bytes").value()),
         fmt_fixed(metrics.gauge(p + ".latency_p50").value() * 1e3, 3) +
             " ms",
         fmt_fixed(metrics.gauge(p + ".latency_p99").value() * 1e3, 3) +
             " ms",
         std::to_string(metrics.counter(p + ".restarts").value())});
  }
  std::fputs(table.str().c_str(), stdout);

  std::printf("\nfairness: jain %.4f raw, %.4f weight-normalized; "
              "virtual time %.4f s\n",
              report.jain_io, report.jain_io_weighted,
              report.virtual_time);
  std::printf("admission: %llu staged, %llu throttled, %llu denied "
              "(backpressure), %llu denied (quota), %llu seam denials\n",
              static_cast<unsigned long long>(report.staged),
              static_cast<unsigned long long>(report.throttled),
              static_cast<unsigned long long>(report.denied_backpressure),
              static_cast<unsigned long long>(report.denied_quota),
              static_cast<unsigned long long>(report.quota_write_denials));
  std::printf("restores: %llu of %llu probes, %llu faults injected\n",
              static_cast<unsigned long long>(report.restored),
              static_cast<unsigned long long>(report.restarts),
              static_cast<unsigned long long>(report.fault_injections));
  std::printf("fingerprint %08x, violations %llu\n", report.fingerprint,
              static_cast<unsigned long long>(report.violations));
  for (const auto& note : report.violation_notes) {
    std::printf("  violation: %s\n", note.c_str());
  }
  if (!trace_path.empty()) {
    tracer.write(trace_path);
    std::printf("trace: %s (%zu events)\n", trace_path.c_str(),
                tracer.events().size());
  }
  if (!metrics_path.empty()) {
    exec::RunMeta meta;
    meta.bench = "serve";
    meta.seed = report.seed;
    meta.trials = 1;
    meta.threads = exec::global_thread_count();
    meta.config = "tenants=" + std::to_string(report.tenants) +
                  " waves=" + std::to_string(cfg.waves);
    metrics.write(metrics_path, meta);
    if (metrics_path != "-") {
      std::printf("metrics: %s (fingerprint %08x)\n", metrics_path.c_str(),
                  metrics.fingerprint());
    }
  }
  return report.violations == 0 ? 0 : 1;
}

int cmd_equiv(const Options& opts) {
  harness::EquivalenceConfig config;
  config.kernel = opts.text("kernel", "cg");
  config.mode = harness::payload_mode_from(opts.text("mode", "full"));
  config.node_count = static_cast<std::uint32_t>(opts.number("nodes", 3));
  config.iterations = static_cast<std::uint64_t>(opts.number("iters", 12));
  config.cadence = static_cast<std::uint64_t>(opts.number("cadence", 3));
  config.state_bytes =
      static_cast<std::size_t>(opts.number("bytes", 32 << 10));
  config.seed = static_cast<std::uint64_t>(opts.number("seed", 1));
  config.rates.transient = opts.number("transient", 0.0);
  config.rates.torn = opts.number("torn-rate", 0.0);
  config.rates.bitflip = opts.number("bitflip", 0.0);
  config.rates.stall = opts.number("stall", 0.0);
  config.fault_seed =
      static_cast<std::uint64_t>(opts.number("fault-seed", 1));
  config.torn = opts.number("torn", 1) != 0;
  const std::string io_root = opts.text("io-root", "");
  if (!io_root.empty()) config.io_root = io_root;

  if (opts.number("list-crash-points", 0) != 0) {
    const auto golden = harness::run_golden(config);
    for (std::size_t k = 0; k < golden.points.size(); ++k) {
      std::printf("%4zu  %s\n", k,
                  faults::describe(golden.points[k]).c_str());
    }
    std::printf("%zu crash points over %llu commits (%s payloads, "
                "kernel %s)\n",
                golden.points.size(),
                static_cast<unsigned long long>(golden.commits),
                harness::to_string(config.mode), config.kernel.c_str());
    return 0;
  }

  if (opts.values.count("crash-point") > 0) {
    const auto k =
        static_cast<std::size_t>(opts.number("crash-point", 0));
    const auto golden = harness::run_golden(config);
    if (k >= golden.points.size()) {
      std::fprintf(stderr, "crash point %zu out of range (0..%zu)\n", k,
                   golden.points.size() - 1);
      return 2;
    }
    const auto res = harness::run_crash_point(config, golden, k);
    std::printf("crash point %zu: %s\n", k,
                faults::describe(golden.points[k]).c_str());
    std::printf("  crashed:    %s\n", res.crashed ? "yes" : "no");
    if (res.recovered) {
      std::printf("  recovered:  checkpoint %llu\n",
                  static_cast<unsigned long long>(res.recovered_id));
    } else {
      std::printf("  recovered:  none (restarted from initial state)\n");
    }
    std::printf("  equivalent: %s\n", res.ok() ? "yes" : "NO");
    if (!res.failure.empty()) {
      std::printf("  failure:    %s\n", res.failure.c_str());
    }
    return res.ok() ? 0 : 1;
  }

  const auto stride = static_cast<std::size_t>(opts.number("stride", 1));
  const auto report = harness::run_sweep(config, stride);
  std::printf("equivalence sweep: kernel %s, %s payloads, %u nodes\n",
              config.kernel.c_str(), harness::to_string(config.mode),
              config.node_count);
  std::printf("  crash points:  %zu (ran %zu, stride %zu)\n",
              report.points_total, report.points_run,
              std::max<std::size_t>(1, stride));
  std::printf("  failures:      %zu\n", report.failures);
  std::printf("  fingerprint:   %08x\n", report.fingerprint);
  for (const auto& f : report.failed) {
    std::printf("  FAILED point %zu: %s\n      %s\n", f.point,
                faults::describe(report.golden.points[f.point]).c_str(),
                f.failure.c_str());
  }
  return report.ok() ? 0 : 1;
}

void usage() {
  std::puts("usage: ndpcr {project|evaluate|study|sweep|chaos|equiv|"
            "failures|serve} [--key value ...]");
  std::puts("       ndpcr --faults <seed> [--nodes n --commits n "
            "--scheme copy|xor --outage 0|1]");
  std::puts("       ndpcr --faults <seed> --trace out.json "
            "--metrics metrics.json   (observability outputs)");
  std::puts("see the comment block in tools/ndpcr_cli.cpp for options");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  // `ndpcr --faults <seed> ...` is flag-led: everything is options.
  const bool flag_led = command.rfind("--", 0) == 0;
  const Options opts = parse_options(argc, argv, flag_led ? 1 : 2);
  const auto threads = static_cast<unsigned>(opts.number("threads", 0));
  if (threads > 0) ndpcr::exec::set_global_threads(threads);
  if (flag_led) {
    if (opts.values.count("faults") > 0) return cmd_faults(opts);
    usage();
    return 2;
  }
  if (command == "project") return cmd_project();
  if (command == "evaluate") return cmd_evaluate(opts);
  if (command == "study") return cmd_study(opts);
  if (command == "sweep") return cmd_sweep(opts);
  if (command == "chaos") return cmd_faults(opts);
  if (command == "equiv") return cmd_equiv(opts);
  if (command == "failures") return cmd_failures(opts);
  if (command == "serve") return cmd_serve(opts);
  usage();
  return 2;
}
