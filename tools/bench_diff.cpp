// bench_diff: compare two BENCH_*.json reports section by section.
//
//   bench_diff OLD.json NEW.json [--threshold PCT] [--fail-on-regress PCT]
//
// Rows are matched within each section by their non-numeric (key) cells,
// falling back to row index when keys collide or vanish; every numeric
// column prints old -> new with the relative change. Rows whose change
// exceeds the threshold (default 10%) are flagged WARN. The tool is
// warn-only by default: bench numbers on shared CI hosts are noisy, so
// out of the box it never fails a build - it exists to make a perf
// regression visible in the PR conversation. A pipeline that does want a
// gate opts in with --fail-on-regress PCT: any row whose relative change
// reaches that (usually looser) bound flags FAIL and the exit status
// becomes 1. Exit status is otherwise 0 unless the inputs cannot be
// parsed (2).

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader - just enough for the flat shape bench_util emits:
// objects, arrays, strings and numbers (no escapes beyond \" and \\,
// which the writer never produces for bench content anyway).

struct Json {
  enum class Kind { kNull, kNumber, kString, kArray, kObject } kind =
      Kind::kNull;
  double number = 0.0;
  std::string str;
  std::vector<Json> items;
  std::map<std::string, Json> fields;

  [[nodiscard]] const Json* find(const std::string& key) const {
    const auto it = fields.find(key);
    return it == fields.end() ? nullptr : &it->second;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool parse(Json& out) { return value(out) && (skip_ws(), pos_ == text_.size()); }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool string(std::string& out) {
    if (text_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      out.push_back(text_[pos_++]);
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool value(Json& out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out.kind = Json::Kind::kObject;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '}') return ++pos_, true;
      for (;;) {
        skip_ws();
        std::string key;
        if (!string(key)) return false;
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_++] != ':') return false;
        Json child;
        if (!value(child)) return false;
        out.fields.emplace(std::move(key), std::move(child));
        skip_ws();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        return text_[pos_++] == '}';
      }
    }
    if (c == '[') {
      ++pos_;
      out.kind = Json::Kind::kArray;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ']') return ++pos_, true;
      for (;;) {
        Json child;
        if (!value(child)) return false;
        out.items.push_back(std::move(child));
        skip_ws();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        return text_[pos_++] == ']';
      }
    }
    if (c == '"') {
      out.kind = Json::Kind::kString;
      return string(out.str);
    }
    if (literal("null")) return true;
    if (literal("true")) {
      out.kind = Json::Kind::kNumber;
      out.number = 1.0;
      return true;
    }
    if (literal("false")) {
      out.kind = Json::Kind::kNumber;
      return true;
    }
    char* end = nullptr;
    out.number = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) return false;
    out.kind = Json::Kind::kNumber;
    pos_ = static_cast<std::size_t>(end - text_.c_str());
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

struct Section {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

using Report = std::map<std::string, Section>;

bool numeric(const std::string& cell, double& out) {
  if (cell.empty()) return false;
  char* end = nullptr;
  out = std::strtod(cell.c_str(), &end);
  return end == cell.c_str() + cell.size();
}

std::string row_key(const std::vector<std::string>& row) {
  // Non-numeric cells identify the configuration (codec names, modes,
  // thread counts are numeric but positional - keep integers too when
  // they look like labels: pool_threads etc. are part of the key).
  std::string key;
  for (const auto& cell : row) {
    double v = 0.0;
    const bool is_num = numeric(cell, v);
    const bool integral = is_num && v == std::floor(v) &&
                          cell.find('.') == std::string::npos;
    if (!is_num || integral) {
      key += cell;
      key += '\x1f';
    }
  }
  return key;
}

bool load_report(const char* path, Report& report, std::string& meta) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path);
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  Json root;
  if (!Parser(text).parse(root) || root.kind != Json::Kind::kObject) {
    std::fprintf(stderr, "bench_diff: %s is not valid JSON\n", path);
    return false;
  }
  if (const Json* m = root.find("meta")) {
    if (const Json* b = m->find("bench")) meta = b->str;
    if (const Json* cfg = m->find("config")) meta += " config=" + cfg->str;
  }
  const Json* sections = root.find("sections");
  if (!sections || sections->kind != Json::Kind::kArray) {
    std::fprintf(stderr, "bench_diff: %s has no sections array\n", path);
    return false;
  }
  for (const Json& s : sections->items) {
    const Json* name = s.find("name");
    const Json* header = s.find("header");
    const Json* rows = s.find("rows");
    if (!name || !header || !rows) continue;
    Section section;
    for (const Json& h : header->items) section.header.push_back(h.str);
    for (const Json& r : rows->items) {
      std::vector<std::string> row;
      for (const Json& cell : r.items) {
        row.push_back(cell.kind == Json::Kind::kString
                          ? cell.str
                          : std::to_string(cell.number));
      }
      section.rows.push_back(std::move(row));
    }
    report.emplace(name->str, std::move(section));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 10.0;
  double fail_threshold = -1.0;  // < 0 = warn-only (the default)
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--fail-on-regress") == 0 &&
               i + 1 < argc) {
      fail_threshold = std::strtod(argv[++i], nullptr);
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff OLD.json NEW.json [--threshold PCT] "
                 "[--fail-on-regress PCT]\n");
    return 2;
  }
  Report before;
  Report after;
  std::string meta_a;
  std::string meta_b;
  if (!load_report(files[0], before, meta_a) ||
      !load_report(files[1], after, meta_b)) {
    return 2;
  }
  std::printf("bench_diff: %s (%s) vs %s (%s), warn at %.0f%%\n", files[0],
              meta_a.c_str(), files[1], meta_b.c_str(), threshold);
  if (fail_threshold >= 0.0) {
    std::printf("gating: fail at %.0f%%\n", fail_threshold);
  }

  int warnings = 0;
  int failures = 0;
  for (const auto& [name, sec_b] : after) {
    const auto it = before.find(name);
    if (it == before.end()) {
      std::printf("\n[%s] new section (%zu rows)\n", name.c_str(),
                  sec_b.rows.size());
      continue;
    }
    const Section& sec_a = it->second;
    std::printf("\n[%s]\n", name.c_str());
    // Index the old rows by key for stable matching.
    std::map<std::string, const std::vector<std::string>*> old_rows;
    for (const auto& row : sec_a.rows) old_rows[row_key(row)] = &row;
    for (std::size_t i = 0; i < sec_b.rows.size(); ++i) {
      const auto& row = sec_b.rows[i];
      const auto match = old_rows.find(row_key(row));
      const std::vector<std::string>* old_row = nullptr;
      if (match != old_rows.end()) {
        old_row = match->second;
      } else if (i < sec_a.rows.size() &&
                 row_key(sec_a.rows[i]) == row_key(row)) {
        old_row = &sec_a.rows[i];
      }
      std::string label;
      std::string deltas;
      bool warned = false;
      bool failed = false;
      for (std::size_t c = 0; c < row.size() && c < sec_b.header.size();
           ++c) {
        double nv = 0.0;
        const bool is_num =
            numeric(row[c], nv) && row[c].find('.') != std::string::npos;
        if (!is_num) {
          if (!label.empty()) label += ' ';
          label += row[c];
          continue;
        }
        if (!old_row || c >= old_row->size()) continue;
        double ov = 0.0;
        if (!numeric((*old_row)[c], ov)) continue;
        const double pct = ov == 0.0 ? 0.0 : (nv - ov) / ov * 100.0;
        char buf[160];
        std::snprintf(buf, sizeof buf, "  %s %s->%s (%+.1f%%)",
                      sec_b.header[c].c_str(), (*old_row)[c].c_str(),
                      row[c].c_str(), pct);
        deltas += buf;
        if (std::fabs(pct) >= threshold) warned = true;
        if (fail_threshold >= 0.0 && std::fabs(pct) >= fail_threshold) {
          failed = true;
        }
      }
      if (!old_row) {
        std::printf("  %-28s (new row)\n", label.c_str());
      } else if (!deltas.empty()) {
        std::printf("%s %-28s%s\n",
                    failed ? "FAIL" : (warned ? "WARN" : "    "),
                    label.c_str(), deltas.c_str());
        warnings += warned ? 1 : 0;
        failures += failed ? 1 : 0;
      }
    }
  }
  for (const auto& [name, sec] : before) {
    if (after.find(name) == after.end()) {
      std::printf("\n[%s] section removed (%zu rows)\n", name.c_str(),
                  sec.rows.size());
    }
  }
  if (fail_threshold >= 0.0) {
    std::printf("\n%d warning(s), %d row(s) past the fail bound; exit %d\n",
                warnings, failures, failures > 0 ? 1 : 0);
    return failures > 0 ? 1 : 0;
  }
  std::printf("\n%d warning(s); warn-only, exit 0\n", warnings);
  return 0;
}
