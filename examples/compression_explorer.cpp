// Domain scenario: pick a checkpoint codec for an application. Runs the
// compression study on one mini-app's checkpoints and reports, per codec,
// the measured factor/speed and the NDP budget it implies (cores needed to
// saturate the IO link, achievable IO checkpoint interval) - the section
// 5.3 selection procedure, runnable on your own parameters.
//
//   build/examples/compression_explorer [app] [megabytes]
// Apps: comd hpccg minife minimd minismac miniaero phpccg

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.hpp"
#include "common/units.hpp"
#include "ndp/ndp.hpp"
#include "study/compression_study.hpp"

int main(int argc, char** argv) {
  using namespace ndpcr;
  using namespace ndpcr::units;
  using namespace ndpcr::study;

  const std::string app = argc > 1 ? argv[1] : "minife";
  const double megabytes = argc > 2 ? std::strtod(argv[2], nullptr) : 4.0;

  StudyConfig cfg;
  cfg.apps = {app};
  cfg.bytes_per_app = static_cast<std::size_t>(megabytes * 1e6);

  std::printf("Compression study: %s checkpoints, %.1f MB, %d snapshots\n\n",
              app.c_str(), megabytes, cfg.checkpoints_per_app);
  const StudyResults results = run_compression_study(cfg);

  const double ckpt_bytes = bytes_from_gb(112);
  const double io_bw = mbps(100);

  TextTable table({"Codec", "Factor", "Speed", "Decomp speed", "NDP cores",
                   "IO interval"});
  for (const auto& spec : compress::paper_codec_suite()) {
    const auto* m = results.find(app, spec.display_name);
    const auto sizing =
        ndp::derive_sizing(m->factor, m->compress_bw, ckpt_bytes, io_bw);
    table.add_row({spec.display_name, fmt_percent(m->factor, 1),
                   fmt_fixed(m->compress_bw / 1e6, 1) + " MB/s",
                   fmt_fixed(m->decompress_bw / 1e6, 1) + " MB/s",
                   fmt_fixed(sizing.cores, 0),
                   fmt_fixed(sizing.io_interval, 0) + " s"});
  }
  std::fputs(table.str().c_str(), stdout);

  std::puts("\nReading the table (section 5.3): pick the codec with the");
  std::puts("smallest IO interval whose core count fits your NDP budget -");
  std::puts("the paper picks the gzip(1) class (4 cores) over lz4 (1 core,");
  std::puts("longer interval) and bzip2/xz (tens of cores).");
  return 0;
}
