// Single-node walkthrough of the NDP pipeline (sections 4.2-4.3) with the
// functional agent: the host commits checkpoints of a running mini-app to
// the NVM's uncompressed partition; the NDP compresses them with a real
// codec and streams them to the IO store in the background; a node loss
// then recovers from the newest checkpoint that reached IO.
//
//   build/examples/ndp_node_demo

#include <cstdio>

#include "ckpt/stores.hpp"
#include "ndp/agent.hpp"
#include "workloads/miniapp.hpp"

int main() {
  using namespace ndpcr;

  auto app = workloads::make_miniapp("minife", 512 * 1024, 2024);

  ckpt::KvStore io_store;  // the parallel file system
  ndp::AgentConfig cfg;
  cfg.uncompressed_capacity = 4u << 20;
  cfg.compressed_capacity = 1u << 20;
  cfg.codec = compress::CodecId::kDeflateStyle;
  cfg.codec_level = 1;
  cfg.compress_bw = 4e6;  // deliberately slow: drains span several commits
  cfg.io_bw = 1e6;
  ndp::NdpAgent agent(cfg, io_store);

  std::puts("step  commit  NDP-busy  newest-on-IO  uncmp-buf  drained");
  const double compute_seconds_per_interval = 0.5;
  std::uint64_t ckpt_id = 0;
  for (int interval = 1; interval <= 12; ++interval) {
    // Compute phase: the app advances while the NDP pumps in the
    // background (this is the whole point - the drain is off the
    // critical path).
    app->step();
    agent.pump(compute_seconds_per_interval);

    // Coordinated local checkpoint: host owns the NVM, the NDP pauses
    // (no pump during the commit).
    ++ckpt_id;
    const bool accepted = agent.host_commit(ckpt_id, app->checkpoint());

    std::printf("%4d  %3llu %s  %-8s  %-12s  %6zu KB  %llu\n", interval,
                static_cast<unsigned long long>(ckpt_id),
                accepted ? "ok  " : "FULL",
                agent.busy() ? "yes" : "no",
                agent.newest_on_io()
                    ? std::to_string(*agent.newest_on_io()).c_str()
                    : "-",
                agent.uncompressed_partition().used_bytes() / 1024,
                static_cast<unsigned long long>(
                    agent.stats().drains_completed));
  }

  std::printf("\nNDP totals: %llu commits seen, %llu drained, %llu skipped "
              "(superseded), %.1f s busy, %.1f MB compressed -> %.1f MB "
              "to IO\n",
              static_cast<unsigned long long>(agent.stats().commits_seen),
              static_cast<unsigned long long>(
                  agent.stats().drains_completed),
              static_cast<unsigned long long>(agent.stats().drains_skipped),
              agent.stats().busy_seconds,
              static_cast<double>(agent.stats().bytes_compressed) / 1e6,
              static_cast<double>(agent.stats().bytes_to_io) / 1e6);

  // Node loss: NVM gone; restore from the newest checkpoint on IO.
  std::puts("\nnode lost - recovering from the IO store...");
  agent.reset();
  const auto newest = io_store.newest_id(0);
  if (!newest) {
    std::puts("nothing reached IO!");
    return 1;
  }
  const auto packed = io_store.get(0, *newest);
  const auto codec = compress::make_codec(cfg.codec, cfg.codec_level);
  const Bytes image = codec->decompress(*packed);
  app->restore(image);
  std::printf("restored checkpoint %llu -> app back at step %llu\n",
              static_cast<unsigned long long>(*newest),
              static_cast<unsigned long long>(app->step_count()));
  return 0;
}
