// Quickstart: checkpoint a tiny application through the multilevel C/R
// library, kill a node, and restart.
//
//   build/examples/quickstart
//
// Walks the core public API: RegionRegistry (what to save),
// MultilevelManager (where it goes: local NVM / partner / global IO with
// compression), and recovery (newest restorable checkpoint, per-rank
// level fallback).

#include <cstdio>
#include <vector>

#include "ckpt/multilevel.hpp"
#include "ckpt/region.hpp"

int main() {
  using namespace ndpcr;
  using namespace ndpcr::ckpt;

  // The "application": every rank owns a field it updates each step.
  constexpr std::uint32_t kRanks = 4;
  std::vector<std::vector<double>> fields(kRanks,
                                          std::vector<double>(1024, 0.0));
  std::vector<RegionRegistry> registries(kRanks);
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    registries[r].register_vector("field", fields[r]);
  }

  // Multilevel store: every checkpoint to local NVM and the partner node,
  // every 2nd to global IO, compressed with the DEFLATE-family codec.
  MultilevelConfig config;
  config.node_count = kRanks;
  config.nvm_capacity_bytes = 64 * 1024;  // tight: exercises FIFO eviction
  config.partner_every = 1;
  config.io_every = 2;
  config.io_codec = compress::CodecId::kDeflateStyle;
  config.io_codec_level = 1;
  MultilevelManager manager(config);

  auto step = [&](int s) {
    for (std::uint32_t r = 0; r < kRanks; ++r) {
      for (auto& x : fields[r]) x += 0.5 * (r + 1) + s;
    }
  };
  auto commit = [&] {
    std::vector<Bytes> payloads;
    std::vector<ByteSpan> views;
    payloads.reserve(kRanks);
    for (auto& reg : registries) payloads.push_back(reg.capture());
    for (const auto& p : payloads) views.emplace_back(p);
    return manager.commit(views);
  };

  for (int s = 1; s <= 6; ++s) {
    step(s);
    const auto id = commit();
    std::printf("step %d -> checkpoint %llu committed\n", s,
                static_cast<unsigned long long>(id));
  }
  const double progress_marker = fields[2][0];

  // Disaster: node 2 dies (its NVM and the partner copy it hosted vanish),
  // and the application keeps computing past the last checkpoint.
  step(7);
  manager.fail_node(2);
  std::puts("\nnode 2 failed; recovering...");

  const auto recovery = manager.recover();
  if (!recovery) {
    std::puts("no recoverable checkpoint - giving up");
    return 1;
  }
  std::printf("recovered checkpoint %llu\n",
              static_cast<unsigned long long>(recovery->checkpoint_id));
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    registries[r].restore(recovery->payloads[r]);
    std::printf("  rank %u restored from %-7s (%zu bytes)\n", r,
                to_string(recovery->levels[r]),
                recovery->payloads[r].size());
  }

  if (fields[2][0] == progress_marker) {
    std::puts("\nstate verified: rank 2 is back at the last checkpoint");
    return 0;
  }
  std::puts("\nstate mismatch after restore!");
  return 1;
}
