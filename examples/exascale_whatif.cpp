// Domain scenario: capacity planning for a projected machine. Given the
// machine's MTTI, checkpoint size, storage bandwidths and an expected
// compression factor, compare the C/R strategies and size the NDP - the
// decision the paper's evaluation supports.
//
//   build/examples/exascale_whatif [mtti_minutes] [ckpt_gb] [io_MBps]
//                                  [compression_factor] [p_local]
// Defaults reproduce the paper's Table 4 scenario.

#include <cstdio>
#include <cstdlib>

#include "common/table.hpp"
#include "common/units.hpp"
#include "model/evaluator.hpp"
#include "ndp/ndp.hpp"

int main(int argc, char** argv) {
  using namespace ndpcr;
  using namespace ndpcr::model;
  using namespace ndpcr::units;

  CrScenario scenario;
  double cf = 0.728;
  double p_local = 0.85;
  if (argc > 1) scenario.mtti = minutes(std::strtod(argv[1], nullptr));
  if (argc > 2) {
    scenario.checkpoint_bytes = bytes_from_gb(std::strtod(argv[2], nullptr));
  }
  if (argc > 3) {
    scenario.io_bw_per_node = mbps(std::strtod(argv[3], nullptr));
  }
  if (argc > 4) cf = std::strtod(argv[4], nullptr);
  if (argc > 5) p_local = std::strtod(argv[5], nullptr);

  std::printf("Scenario: MTTI %.0f min, %.0f GB checkpoints, local NVM "
              "%.1f GB/s, IO %.0f MB/s per node, cf %.0f%%, P(local) "
              "%.0f%%\n\n",
              to_minutes(scenario.mtti), gb(scenario.checkpoint_bytes),
              scenario.local_bw / 1e9, scenario.io_bw_per_node / 1e6,
              cf * 100, p_local * 100);

  SimOptions opt;
  opt.total_work = 250.0 * 3600;
  opt.trials = 3;
  Evaluator ev(scenario, opt);

  TextTable table({"Strategy", "Progress rate", "Local:IO ratio",
                   "Speedup vs IO-only"});
  const CrConfig configs[] = {
      {.kind = ConfigKind::kIoOnly, .compression_factor = cf},
      {.kind = ConfigKind::kLocalIoHost, .compression_factor = 0.0,
       .p_local_recovery = p_local},
      {.kind = ConfigKind::kLocalIoHost, .compression_factor = cf,
       .p_local_recovery = p_local},
      {.kind = ConfigKind::kLocalIoNdp, .compression_factor = 0.0,
       .p_local_recovery = p_local},
      {.kind = ConfigKind::kLocalIoNdp, .compression_factor = cf,
       .p_local_recovery = p_local},
  };
  double baseline = 0.0;
  for (const auto& cfg : configs) {
    const Evaluation e = ev.evaluate(cfg);
    const double rate = e.progress_rate();
    if (baseline == 0.0) baseline = rate;
    table.add_row({cfg.label(), fmt_percent(rate, 1),
                   std::to_string(e.io_every),
                   fmt_fixed(rate / baseline, 2) + "x"});
  }
  std::fputs(table.str().c_str(), stdout);

  // NDP sizing for this scenario at ngzip(1)-class compression.
  const auto sizing = ndp::derive_sizing(cf, mbps(110.1),
                                         scenario.checkpoint_bytes,
                                         scenario.io_bw_per_node);
  std::printf("\nNDP sizing (ngzip(1)-class cores at 110.1 MB/s):\n"
              "  required compression rate: %.0f MB/s -> %d cores\n"
              "  smallest IO checkpoint interval: %.0f s\n",
              sizing.required_rate / 1e6, sizing.cores, sizing.io_interval);
  return 0;
}
