// Domain scenario: a molecular-dynamics campaign (the CoMD-style proxy)
// running on a small cluster with aggressive failure injection - the
// workload class the paper's introduction motivates. Real state moves
// through the multilevel store: local NVM circular buffers, ring-partner
// copies, compressed IO-level checkpoints; every recovery restores exact
// state.
//
//   build/examples/md_campaign [steps] [nodes]

#include <cstdio>
#include <cstdlib>

#include "cluster/cluster_sim.hpp"

int main(int argc, char** argv) {
  using namespace ndpcr::cluster;

  ClusterSimConfig cfg;
  cfg.app = "comd";
  cfg.node_count = argc > 2 ? static_cast<std::uint32_t>(
                                  std::strtoul(argv[2], nullptr, 10))
                            : 8;
  cfg.total_steps = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;
  cfg.state_bytes_per_rank = 256 * 1024;
  cfg.node_mttf = 1500.0;           // roughly one failure per 190 steps
  cfg.steps_per_checkpoint = 10;
  cfg.partner_every = 1;
  cfg.io_every = 5;
  cfg.io_codec = ndpcr::compress::CodecId::kDeflateStyle;
  cfg.io_codec_level = 1;

  std::printf("MD campaign: %llu steps on %u nodes, MTTF %.0f s/node, "
              "checkpoint every %u steps (IO every %u checkpoints)\n\n",
              static_cast<unsigned long long>(cfg.total_steps),
              cfg.node_count, cfg.node_mttf, cfg.steps_per_checkpoint,
              cfg.io_every);

  const ClusterSimResult r = ClusterSim(cfg).run();

  std::printf("failures:            %llu\n",
              static_cast<unsigned long long>(r.failures));
  std::printf("recoveries:          %llu (unrecoverable: %llu)\n",
              static_cast<unsigned long long>(r.recoveries),
              static_cast<unsigned long long>(r.unrecoverable));
  std::printf("rank-level recoveries: local %llu, partner %llu, io %llu\n",
              static_cast<unsigned long long>(r.local_level_ranks),
              static_cast<unsigned long long>(r.partner_level_ranks),
              static_cast<unsigned long long>(r.io_level_ranks));
  std::printf("checkpoints:         %llu\n",
              static_cast<unsigned long long>(r.checkpoints));
  std::printf("steps executed:      %llu (%llu re-executed, %.1f%% rerun "
              "overhead)\n",
              static_cast<unsigned long long>(r.steps_completed),
              static_cast<unsigned long long>(r.steps_rerun),
              100.0 * static_cast<double>(r.steps_rerun) /
                  static_cast<double>(cfg.total_steps));
  std::printf("final state:         %s\n",
              r.state_verified ? "verified" : "CORRUPT");
  return r.state_verified ? 0 : 1;
}
