// Microbenchmark for the parallel checkpoint data path (docs/PERF.md):
//
//   crc32             slicing-by-8 vs a byte-at-a-time reference
//   codec_kernels     whole-payload compress/decompress throughput for
//                     every registered codec, with ratio and vs-baseline
//                     columns against the pre-overhaul kernels
//   chunked_compress  ChunkedCodec worker sweep on one payload, plain and
//                     accelerated, compress and decompress legs
//   commit / recover  MultilevelManager wall throughput across pool sizes
//   drain             NdpAgent chunk pipeline: wall throughput at
//                     unbounded virtual bandwidth, plus the virtual-time
//                     overlap win at paper-like bandwidths
//
// Every configuration produces the same bytes (thread-invariance is
// pinned by the test suite); this harness measures only wall time. On a
// single-core host the pool sweeps show ~1x - the speedup column is
// honest, not modelled.
//
//   obs_overhead      the same commit loop with tracing off vs on: the
//                     off row is the <1% disabled-cost budget of
//                     docs/OBSERVABILITY.md, the on row the real price
//
//   equiv_overhead    the same commit loop against plain stores vs a
//                     recording CrashSimulator (docs/EQUIVALENCE.md):
//                     what the crash-point gates cost the data path
//
//   --smoke 1     tiny sizes (CI); also the `perf` ctest label
//   --csv PATH    structured output (default BENCH_datapath.json)
//   --trace PATH  write the traced commit loop's Chrome trace JSON

#include <chrono>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "ckpt/multilevel.hpp"
#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "compress/chunked.hpp"
#include "compress/lz4_style.hpp"
#include "compress/scratch.hpp"
#include "exec/task_pool.hpp"
#include "faults/crash.hpp"
#include "ndp/agent.hpp"
#include "obs/trace.hpp"

using namespace ndpcr;

namespace {

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

std::string fmt(double v, int digits = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

Bytes mixed_payload(std::size_t size, std::uint64_t seed) {
  // Half-compressible: small-alphabet runs with random breaks, so the
  // codecs do real match-finding work.
  Rng rng(seed);
  Bytes data(size);
  for (auto& b : data) {
    b = static_cast<std::byte>(rng.next_below(2) ? rng.next_below(8)
                                                 : rng.next_below(256));
  }
  return data;
}

// Reference CRC-32: the classic one-table, one-byte-per-iteration loop
// the sliced kernel replaced.
std::uint32_t crc32_bytewise(const Bytes& data) {
  static const auto table = [] {
    std::vector<std::uint32_t> t(256);
    for (std::uint32_t b = 0; b < 256; ++b) {
      std::uint32_t c = b;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[b] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::byte b : data) {
    crc = table[(crc ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args;
  if (!args.parse(argc, argv)) return 2;
  const bool smoke = args.number("smoke", 0) != 0;
  if (args.csv.empty()) args.csv = "BENCH_datapath.json";
  const std::uint64_t seed = args.seed_or(20260806);

  bench::BenchReport out("micro_datapath", args, seed, smoke ? 1 : 3,
                         smoke ? "smoke" : "full");

  const std::vector<unsigned> pool_sizes = {1, 2, 4, 8};

  // --- crc32: dispatched kernel vs byte-wise reference ----------------
  {
    // Crc32::compute picks the best kernel at runtime (sliced8, then the
    // PCLMUL / VPCLMULQDQ folds when the CPU has them), so this row times
    // whatever the data path actually runs on this host.
    const std::size_t bytes = smoke ? (4ull << 20) : (32ull << 20);
    const int reps = smoke ? 1 : 3;
    const Bytes data = mixed_payload(bytes, seed);
    std::uint32_t sliced_value = 0;
    std::uint32_t ref_value = 0;
    const double sliced_s = seconds_of([&] {
      for (int r = 0; r < reps; ++r) sliced_value = Crc32::compute(data);
    });
    const double ref_s = seconds_of([&] {
      for (int r = 0; r < reps; ++r) ref_value = crc32_bytewise(data);
    });
    if (sliced_value != ref_value) {
      std::fprintf(stderr, "FAIL: crc mismatch %08x vs %08x\n",
                   sliced_value, ref_value);
      return 1;
    }
    const double total_mb =
        static_cast<double>(bytes) * reps / (1024.0 * 1024.0);
    out.add_section("crc32", {"impl", "mib_per_s", "speedup"});
    out.add_row({"bytewise", fmt(total_mb / ref_s, 1), "1.00"});
    out.add_row(
        {"dispatched", fmt(total_mb / sliced_s, 1), fmt(ref_s / sliced_s)});
  }

  // --- per-codec kernel throughput ------------------------------------
  {
    // Whole-payload compress/decompress for every registered codec, on the
    // same half-compressible payload family the rest of the harness uses
    // (seed pinned so the vs-baseline columns compare identical bytes).
    // The baseline constants are the pre-overhaul kernels measured on the
    // reference host (docs/PERF.md); sizes shrink for the slow coders so a
    // full run stays interactive.
    struct KernelCfg {
      const char* name;
      int level;
      bool accel;
      std::size_t full_mib;
      int reps;
      double comp_base;    // pre-overhaul MiB/s, reference host
      double decomp_base;
    };
    const std::vector<KernelCfg> cfgs = {
        {"null", 0, false, 8, 4, 694.0, 1136.1},
        {"rle", 0, false, 8, 4, 218.7, 560.6},
        {"nlz4", 1, false, 8, 3, 49.0, 664.4},
        {"nlz4-accel", 1, true, 8, 3, 49.0, 664.4},
        {"ngzip", 6, false, 2, 2, 31.8, 120.5},
        {"nbzip2", 9, false, 1, 1, 6.0, 19.5},
        {"nxz", 1, false, 1, 1, 3.6, 16.6},
    };
    out.add_section("codec_kernels",
                    {"codec", "level", "comp_mib_s", "comp_vs_base",
                     "decomp_mib_s", "decomp_vs_base", "ratio"});
    compress::CodecScratch scratch;
    for (const auto& cfg : cfgs) {
      const std::size_t bytes =
          smoke ? (256ull << 10) : (cfg.full_mib << 20);
      const int comp_reps = smoke ? 1 : cfg.reps;
      const int decomp_reps = smoke ? 1 : cfg.reps * 4;
      const Bytes data = mixed_payload(bytes, 2026);
      const std::unique_ptr<compress::Codec> codec =
          cfg.accel ? std::make_unique<compress::Lz4StyleCodec>(
                          cfg.level, /*accelerate=*/true)
                    : compress::make_codec(cfg.name, cfg.level);
      Bytes packed;
      const double comp_s = seconds_of([&] {
        for (int r = 0; r < comp_reps; ++r) {
          packed = codec->compress(data, scratch);
        }
      });
      Bytes back;
      const double decomp_s = seconds_of([&] {
        for (int r = 0; r < decomp_reps; ++r) {
          back = codec->decompress(packed, scratch);
        }
      });
      if (back != data) {
        std::fprintf(stderr, "FAIL: %s kernel round-trip\n", cfg.name);
        return 1;
      }
      const double mib = static_cast<double>(bytes) / (1024.0 * 1024.0);
      const double comp = mib * comp_reps / comp_s;
      const double decomp = mib * decomp_reps / decomp_s;
      out.add_row({cfg.name, std::to_string(cfg.level), fmt(comp, 1),
                   fmt(comp / cfg.comp_base), fmt(decomp, 1),
                   fmt(decomp / cfg.decomp_base),
                   fmt(static_cast<double>(packed.size()) /
                           static_cast<double>(bytes),
                       3)});
    }
  }

  // --- chunked compression / decompression worker sweep ---------------
  {
    const std::size_t bytes = smoke ? (512ull << 10) : (8ull << 20);
    const Bytes data = mixed_payload(bytes, seed + 1);
    // Pre-overhaul single-thread chunked nlz4 on the reference host:
    // compress 55.3 MiB/s (committed BENCH_datapath.json), decompress
    // 453.1 MiB/s (same payload through the old whole-stream kernel).
    constexpr double kCompBase = 55.3;
    constexpr double kDecompBase = 453.1;
    out.add_section("chunked_compress",
                    {"codec", "mode", "threads", "comp_mib_s",
                     "comp_vs_base", "decomp_mib_s", "decomp_vs_base",
                     "ratio"});
    for (const bool accel : {false, true}) {
      for (const unsigned threads : pool_sizes) {
        const compress::ChunkedCodec codec(compress::CodecId::kLz4Style, 1,
                                           64ull << 10, threads, accel);
        const int comp_reps = accel ? (smoke ? 2 : 8) : 1;
        const int decomp_reps = smoke ? 2 : 8;
        Bytes packed;
        const double comp_s = seconds_of([&] {
          for (int r = 0; r < comp_reps; ++r) {
            packed = codec.compress(data);
          }
        });
        Bytes back;
        const double decomp_s = seconds_of([&] {
          for (int r = 0; r < decomp_reps; ++r) {
            back = codec.decompress(packed);
          }
        });
        if (back != data) {
          std::fprintf(stderr, "FAIL: chunked round-trip\n");
          return 1;
        }
        const double mib = static_cast<double>(bytes) / (1024.0 * 1024.0);
        out.add_row({"nlz4", accel ? "accel" : "plain",
                     std::to_string(threads),
                     fmt(mib * comp_reps / comp_s, 1),
                     fmt(mib * comp_reps / comp_s / kCompBase),
                     fmt(mib * decomp_reps / decomp_s, 1),
                     fmt(mib * decomp_reps / decomp_s / kDecompBase),
                     fmt(static_cast<double>(packed.size()) /
                             static_cast<double>(bytes),
                         3)});
      }
    }
  }

  // --- multilevel commit / recover across pool sizes ------------------
  {
    const std::uint32_t ranks = 8;
    const std::size_t per_rank = smoke ? (64ull << 10) : (512ull << 10);
    const int commits = smoke ? 2 : 4;
    std::vector<std::vector<std::string>> commit_rows;
    std::vector<std::vector<std::string>> recover_rows;
    struct IoCodec {
      const char* name;
      compress::CodecId id;
    };
    for (const IoCodec io_codec :
         {IoCodec{"null", compress::CodecId::kNull},
          IoCodec{"nlz4", compress::CodecId::kLz4Style}}) {
      double base_s = 0.0;
      for (const unsigned threads : pool_sizes) {
        exec::TaskPool pool(threads);
        ckpt::MultilevelConfig mc;
        mc.node_count = ranks;
        mc.nvm_capacity_bytes = (per_rank + 4096) * (commits + 1);
        mc.partner_every = 1;
        mc.io_every = 1;
        mc.io_codec = io_codec.id;
        mc.io_codec_level =
            io_codec.id == compress::CodecId::kNull ? 0 : 1;
        mc.io_chunk_bytes = 64ull << 10;
        mc.pool = &pool;
        ckpt::MultilevelManager manager(mc);

        std::vector<Bytes> payloads;
        for (std::uint32_t r = 0; r < ranks; ++r) {
          payloads.push_back(mixed_payload(per_rank, seed + 2 + r));
        }
        const std::vector<ByteSpan> views(payloads.begin(),
                                          payloads.end());
        const double commit_s = seconds_of([&] {
          for (int c = 0; c < commits; ++c) (void)manager.commit(views);
        });
        if (threads == 1) base_s = commit_s;
        const double total_gib = static_cast<double>(per_rank) * ranks *
                                 commits / (1024.0 * 1024.0 * 1024.0);
        commit_rows.push_back({io_codec.name, std::to_string(threads),
                               fmt(total_gib / commit_s, 3),
                               fmt(base_s / commit_s)});

        std::optional<ckpt::MultilevelManager::Recovery> recovery;
        const double recover_s =
            seconds_of([&] { recovery = manager.recover(); });
        if (!recovery || recovery->payloads != payloads) {
          std::fprintf(stderr, "FAIL: recover mismatch\n");
          return 1;
        }
        recover_rows.push_back(
            {io_codec.name, std::to_string(threads),
             fmt(static_cast<double>(per_rank) * ranks /
                     (1024.0 * 1024.0 * 1024.0) / recover_s,
                 3)});
      }
    }
    out.add_section("commit",
                    {"codec", "pool_threads", "gib_per_s", "speedup"});
    for (auto& row : commit_rows) out.add_row(std::move(row));
    out.add_section("recover", {"codec", "pool_threads", "gib_per_s"});
    for (auto& row : recover_rows) out.add_row(std::move(row));
  }

  // --- pipelined commit breakdown (docs/PERF.md) ----------------------
  {
    // Per-phase wall cost of one IO-bound commit - serialize (image
    // build + CRC), chunk compression, raw store writes - against the
    // pipelined end-to-end commit, at two image sizes. overlap_ratio is
    // (serialize+compress+write)/pipelined: above 1.0 the stages
    // genuinely overlapped. writer_speedup is the same commit with the
    // async writer off (io_writer_depth 0) vs on - the double-buffering
    // win in isolation; ~1x on a single-core host, honestly.
    const std::uint32_t ranks = 8;
    const int commits = smoke ? 2 : 4;
    const std::vector<std::size_t> image_sizes =
        smoke ? std::vector<std::size_t>{16ull << 10, 64ull << 10}
              : std::vector<std::size_t>{256ull << 10, 1ull << 20};
    out.add_section("commit_pipeline",
                    {"image_kib", "pool_threads", "serialize_s",
                     "compress_s", "write_s", "pipelined_s",
                     "overlap_ratio", "writer_speedup"});
    for (const std::size_t per_rank : image_sizes) {
      for (const unsigned threads : pool_sizes) {
        exec::TaskPool pool(threads);
        std::vector<Bytes> payloads;
        for (std::uint32_t r = 0; r < ranks; ++r) {
          payloads.push_back(mixed_payload(per_rank, seed + 40 + r));
        }
        const std::vector<ByteSpan> views(payloads.begin(),
                                          payloads.end());

        // Phase legs, standalone.
        std::vector<Bytes> images(ranks);
        const double serialize_s = seconds_of([&] {
          for (int c = 0; c < commits; ++c) {
            pool.parallel_for(ranks, [&](std::size_t r) {
              ckpt::CheckpointMeta meta;
              meta.rank = static_cast<std::uint32_t>(r);
              meta.checkpoint_id = static_cast<std::uint64_t>(c) + 1;
              images[r] = ckpt::CheckpointImage::build(meta, views[r]);
            });
          }
        });
        compress::ChunkedCodec codec(compress::CodecId::kLz4Style, 1,
                                     64ull << 10, threads);
        std::vector<Bytes> packed(ranks);
        const double compress_s = seconds_of([&] {
          for (int c = 0; c < commits; ++c) {
            for (std::uint32_t r = 0; r < ranks; ++r) {
              packed[r] = codec.compress(images[r]);
            }
          }
        });
        ckpt::KvStore raw_store;
        const double write_s = seconds_of([&] {
          for (int c = 0; c < commits; ++c) {
            for (std::uint32_t r = 0; r < ranks; ++r) {
              (void)raw_store.put(
                  r, static_cast<std::uint64_t>(c) + 1, Bytes(packed[r]));
            }
          }
        });

        // End-to-end, writer on vs off.
        const auto run_commits = [&](std::size_t writer_depth) {
          ckpt::MultilevelConfig mc;
          mc.node_count = ranks;
          mc.nvm_capacity_bytes = (per_rank + 4096) * (commits + 1);
          mc.partner_every = 0;
          mc.io_every = 1;
          mc.io_codec = compress::CodecId::kLz4Style;
          mc.io_codec_level = 1;
          mc.io_chunk_bytes = 64ull << 10;
          mc.io_writer_depth = writer_depth;
          mc.pool = &pool;
          ckpt::MultilevelManager manager(mc);
          return seconds_of([&] {
            for (int c = 0; c < commits; ++c) (void)manager.commit(views);
          });
        };
        const double pipelined_s = run_commits(2);
        const double serial_s = run_commits(0);
        out.add_row({std::to_string(per_rank >> 10),
                     std::to_string(threads), fmt(serialize_s, 4),
                     fmt(compress_s, 4), fmt(write_s, 4),
                     fmt(pipelined_s, 4),
                     fmt((serialize_s + compress_s + write_s) /
                         pipelined_s),
                     fmt(serial_s / pipelined_s)});
      }
    }
  }

  // --- incremental commit path (docs/DELTA.md) ------------------------
  {
    // A sparse-update workload (each rank rewrites one contiguous ~0.5%
    // region per commit) through the integrated delta-chain + IO-dedup
    // path vs plain full images: commit wall throughput and the bytes
    // that actually reach the IO level. Recovery is verified on every
    // configuration, so the delta rows pay for chain replay too.
    const std::uint32_t ranks = 8;
    const std::size_t per_rank = smoke ? (64ull << 10) : (512ull << 10);
    const int commits = smoke ? 4 : 10;
    std::vector<std::vector<Bytes>> history;
    {
      Rng rng(seed + 500);
      std::vector<Bytes> state;
      for (std::uint32_t r = 0; r < ranks; ++r) {
        state.push_back(mixed_payload(per_rank, seed + 501 + r));
      }
      for (int c = 0; c < commits; ++c) {
        for (auto& p : state) {
          const std::size_t span = per_rank / 200;
          const std::size_t at = rng.next_below(per_rank - span);
          for (std::size_t i = 0; i < span; ++i) {
            p[at + i] = static_cast<std::byte>(rng.next_below(256));
          }
        }
        history.push_back(state);
      }
    }
    out.add_section("delta", {"mode", "pool_threads", "gib_per_s",
                              "io_mib", "io_reduction", "delta_factor",
                              "dedup_hit"});
    double full_io_bytes = 0.0;
    for (const bool incremental : {false, true}) {
      for (const unsigned threads : pool_sizes) {
        exec::TaskPool pool(threads);
        ckpt::MultilevelConfig mc;
        mc.node_count = ranks;
        mc.nvm_capacity_bytes = (per_rank + 4096) * (commits + 1);
        mc.partner_every = 0;
        mc.io_every = 1;
        mc.pool = &pool;
        if (incremental) {
          mc.delta.enabled = true;
          mc.delta.chain_length = commits - 1;
          mc.delta.block_bytes = 4096;
          mc.delta.io_dedup = true;
          mc.delta.cdc = {2048, 4096, 8192};
        }
        ckpt::MultilevelManager manager(mc);
        const double commit_s = seconds_of([&] {
          for (const auto& payloads : history) {
            const std::vector<ByteSpan> views(payloads.begin(),
                                              payloads.end());
            (void)manager.commit(views);
          }
        });
        std::optional<ckpt::MultilevelManager::Recovery> recovery;
        const double recover_s =
            seconds_of([&] { recovery = manager.recover(); });
        (void)recover_s;
        if (!recovery || recovery->payloads != history.back()) {
          std::fprintf(stderr, "FAIL: delta recover mismatch\n");
          return 1;
        }
        const auto& d = manager.data_path();
        const double io_bytes = static_cast<double>(d.io_bytes_written);
        if (!incremental && threads == 1) full_io_bytes = io_bytes;
        const double total_gib = static_cast<double>(per_rank) * ranks *
                                 commits / (1024.0 * 1024.0 * 1024.0);
        out.add_row({incremental ? "delta+dedup" : "full",
                     std::to_string(threads), fmt(total_gib / commit_s, 3),
                     fmt(io_bytes / (1024.0 * 1024.0), 1),
                     full_io_bytes > 0 ? fmt(full_io_bytes / io_bytes, 1)
                                       : "1.0",
                     fmt(d.delta_factor(), 3),
                     fmt(d.dedup_hit_rate(), 3)});
      }
    }
  }

  // --- NDP drain pipeline ---------------------------------------------
  {
    const std::size_t bytes = smoke ? (1ull << 20) : (8ull << 20);
    const Bytes image = mixed_payload(bytes, seed + 99);
    out.add_section("drain", {"mode", "wall_mib_per_s", "virtual_s"});
    for (const bool overlap : {true, false}) {
      // Wall throughput: virtual bandwidths far above real speed, so the
      // pump's cost is the pipeline's actual compression work.
      ckpt::KvStore io;
      ndp::AgentConfig cfg;
      cfg.uncompressed_capacity = bytes * 2;
      cfg.compressed_capacity = bytes * 2;
      cfg.codec = compress::CodecId::kLz4Style;
      cfg.chunk_bytes = 256ull << 10;
      cfg.compress_bw = 1e15;
      cfg.io_bw = 1e15;
      cfg.overlap = overlap;
      ndp::NdpAgent agent(cfg, io);
      if (!agent.host_commit(1, image)) {
        std::fprintf(stderr, "FAIL: host_commit\n");
        return 1;
      }
      const double wall_s = seconds_of([&] { agent.pump(1e9); });

      // Virtual overlap win at paper-like rates (compress 2x the wire).
      ckpt::KvStore io2;
      cfg.compress_bw = 1e6;
      cfg.io_bw = 0.5e6;
      ndp::NdpAgent timed(cfg, io2);
      (void)timed.host_commit(1, image);
      const double virtual_s = timed.pump(1e9);

      out.add_row({overlap ? "overlap" : "serial",
                   fmt(static_cast<double>(bytes) / (1024.0 * 1024.0) /
                           wall_s,
                       1),
                   fmt(virtual_s, 3)});
    }
  }

  // --- observability overhead -----------------------------------------
  {
    const std::uint32_t ranks = 4;
    const std::size_t per_rank = smoke ? (64ull << 10) : (256ull << 10);
    const int commits = smoke ? 4 : 8;
    obs::Tracer tracer;
    auto run_commits = [&](obs::Tracer* trace) {
      exec::TaskPool pool(2);
      ckpt::MultilevelConfig mc;
      mc.node_count = ranks;
      mc.nvm_capacity_bytes = (per_rank + 4096) * (commits + 1);
      mc.partner_every = 1;
      mc.io_every = 1;
      mc.io_codec = compress::CodecId::kLz4Style;
      mc.io_codec_level = 1;
      mc.io_chunk_bytes = 64ull << 10;
      mc.pool = &pool;
      mc.trace = trace;
      ckpt::MultilevelManager manager(mc);
      std::vector<Bytes> payloads;
      for (std::uint32_t r = 0; r < ranks; ++r) {
        payloads.push_back(mixed_payload(per_rank, seed + 200 + r));
      }
      const std::vector<ByteSpan> views(payloads.begin(), payloads.end());
      return seconds_of([&] {
        for (int c = 0; c < commits; ++c) (void)manager.commit(views);
      });
    };
    const double off_s = run_commits(nullptr);
    const double on_s = run_commits(&tracer);
    out.add_section("obs_overhead", {"tracing", "commit_s", "ratio"});
    out.add_row({"off", fmt(off_s, 4), "1.00"});
    out.add_row({"on", fmt(on_s, 4), fmt(on_s / off_s)});
    if (!args.trace.empty()) tracer.write(args.trace);
  }

  // --- equivalence-harness overhead -----------------------------------
  {
    // The same commit loop against plain in-process stores vs stores
    // owned by a recording CrashSimulator: every durable mutation then
    // passes a MutationGate and is logged as a crash point. The ratio is
    // the price a golden run pays over an ungated run.
    const std::uint32_t ranks = 4;
    const std::size_t per_rank = smoke ? (64ull << 10) : (256ull << 10);
    const int commits = smoke ? 4 : 8;
    std::vector<Bytes> payloads;
    for (std::uint32_t r = 0; r < ranks; ++r) {
      payloads.push_back(mixed_payload(per_rank, seed + 300 + r));
    }
    const std::vector<ByteSpan> views(payloads.begin(), payloads.end());
    const std::size_t capacity = (per_rank + 4096) * (commits + 1);
    auto run_commits = [&](faults::CrashSimulator* sim) {
      ckpt::MultilevelConfig mc;
      mc.node_count = ranks;
      mc.nvm_capacity_bytes = capacity;
      mc.partner_every = 1;
      mc.io_every = 1;
      if (sim) sim->attach(mc);
      ckpt::MultilevelManager manager(mc);
      return seconds_of([&] {
        for (int c = 0; c < commits; ++c) {
          if (sim) sim->begin_commit(manager.last_checkpoint_id() + 1);
          (void)manager.commit(views);
        }
      });
    };
    const double plain_s = run_commits(nullptr);
    faults::CrashSimConfig sc;
    sc.node_count = ranks;
    sc.nvm_capacity_bytes = capacity;
    faults::CrashSimulator sim(sc);
    sim.record();
    const double gated_s = run_commits(&sim);
    const std::size_t points = sim.canonical_points().size();
    out.add_section("equiv_overhead",
                    {"stores", "commit_s", "ratio", "crash_points"});
    out.add_row({"plain", fmt(plain_s, 4), "1.00", "0"});
    out.add_row({"recording", fmt(gated_s, 4), fmt(gated_s / plain_s),
                 std::to_string(points)});
  }

  out.finish();
  return 0;
}
