// Table 3: the NDP sizing derived from the compression study - required
// compression speed (to saturate the per-node IO link), NDP core count,
// and the smallest possible checkpoint interval to global IO.
//
// Derived from the paper's Table 2 constants and, side by side, from our
// measured codec study. Section 5.3's worked example: gzip(1) needs 4
// cores and reaches a 305 s interval, which is why the paper (and our
// default scenario) configure the NDP with 4 cores of gzip(1).

#include <cstdio>

#include "common/table.hpp"
#include "common/units.hpp"
#include "ndp/ndp.hpp"
#include "study/compression_study.hpp"

int main() {
  using namespace ndpcr;
  using namespace ndpcr::units;
  using namespace ndpcr::study;

  const double ckpt_bytes = bytes_from_gb(112);
  const double io_bw = mbps(100);
  const auto suite = compress::paper_codec_suite();

  std::puts("Table 3 (from paper Table 2 constants)\n");
  {
    TextTable table({"Utility (level)", "Required Compression Speed",
                     "Number of Cores", "Checkpoint Interval"});
    for (std::size_t c = 0; c < suite.size(); ++c) {
      const auto s = ndp::derive_sizing(paper_average_factor(c),
                                        mbps(paper_average_speed_mbps(c)),
                                        ckpt_bytes, io_bw);
      table.add_row({suite[c].display_name,
                     fmt_fixed(s.required_rate / 1e6, 0) + " MB/s",
                     fmt_fixed(s.cores, 0),
                     fmt_fixed(s.io_interval, 0) + " s"});
    }
    std::fputs(table.str().c_str(), stdout);
  }

  std::puts("\nTable 3 (from our measured study)\n");
  {
    StudyConfig cfg;
    cfg.bytes_per_app = 2ull << 20;
    const StudyResults results = run_compression_study(cfg);
    TextTable table({"Utility (level)", "Required Compression Speed",
                     "Number of Cores", "Checkpoint Interval"});
    for (const auto& spec : suite) {
      const double factor = results.average_factor(spec.display_name);
      const double bw = results.average_compress_bw(spec.display_name);
      const auto s = ndp::derive_sizing(factor, bw, ckpt_bytes, io_bw);
      table.add_row({spec.display_name,
                     fmt_fixed(s.required_rate / 1e6, 0) + " MB/s",
                     fmt_fixed(s.cores, 0),
                     fmt_fixed(s.io_interval, 0) + " s"});
    }
    std::fputs(table.str().c_str(), stdout);
  }

  std::puts("\nSection 5.3 worked example (paper constants, gzip(1)):");
  const auto gz = ndp::derive_sizing(paper_average_factor(0), mbps(110.1),
                                     ckpt_bytes, io_bw);
  std::printf("  %d cores at 110.1 MB/s -> %.1f MB/s >= required "
              "%.0f MB/s; 112 GB -> %.1f GB compressed -> %.0f s "
              "(%.2f min) to IO\n",
              gz.cores, gz.cores * 110.1, gz.required_rate / 1e6,
              gb(ckpt_bytes) * (1.0 - paper_average_factor(0)),
              gz.io_interval, to_minutes(gz.io_interval));
  return 0;
}
