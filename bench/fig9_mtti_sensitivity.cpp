// Figure 9: progress rate for five C/R configurations as the system MTTI
// grows from 30 to 150 minutes. Checkpoint size fixed at 112 GB/node,
// P(local) = 85%, cf = 73%. Same configuration set as Figure 8.
//
// Engine flags: --trials/--seed/--threads/--csv (see bench_util.hpp).

#include <cstdio>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "model/evaluator.hpp"

int main(int argc, char** argv) {
  using namespace ndpcr;
  using namespace ndpcr::model;
  using namespace ndpcr::units;

  bench::BenchArgs args;
  if (!args.parse(argc, argv)) return 2;

  const double p = 0.85;
  const double cf = 0.73;

  SimOptions opt;
  opt.total_work = 250.0 * 3600;
  opt.trials = args.trials_or(2);
  opt.seed = args.seed_or(opt.seed);

  struct Variant {
    const char* label;
    double local_bw;
    ConfigKind kind;
    double compression;
  };
  const Variant variants[] = {
      {"L-15GBps + I/O-HC", gbps(15), ConfigKind::kLocalIoHost, cf},
      {"L-15GBps + I/O-N", gbps(15), ConfigKind::kLocalIoNdp, 0.0},
      {"L-15GBps + I/O-NC", gbps(15), ConfigKind::kLocalIoNdp, cf},
      {"L-2GBps + I/O-N", gbps(2), ConfigKind::kLocalIoNdp, 0.0},
      {"L-2GBps + I/O-NC", gbps(2), ConfigKind::kLocalIoNdp, cf},
  };

  const double mttis[] = {30, 60, 90, 120, 150};
  std::vector<std::string> header = {"Configuration"};
  for (double m : mttis) header.push_back(fmt_fixed(m, 0) + " min");

  bench::BenchReport report("fig9_mtti_sensitivity", args, opt.seed,
                            opt.trials,
                            "112 GB checkpoints, P(local)=85%, cf=73%");
  report.add_section(
      "Figure 9: progress rate vs system MTTI (112 GB checkpoints, "
      "P(local) = 85%, cf = 73%)",
      header);

  for (const auto& v : variants) {
    std::vector<std::string> cells = {v.label};
    for (double m : mttis) {
      CrScenario scenario;
      scenario.mtti = minutes(m);
      scenario.local_bw = v.local_bw;
      Evaluator ev(scenario, opt);
      CrConfig cfg{.kind = v.kind,
                   .compression_factor = v.compression,
                   .p_local_recovery = p};
      cells.push_back(fmt_percent(ev.evaluate(cfg).progress_rate(), 1));
    }
    report.add_row(cells);
  }
  report.finish();

  std::puts("\nShape check: all curves rise with MTTI and the NDP advantage");
  std::puts("over multilevel + compression shrinks as failures get rarer;");
  std::puts("2 GB/s local storage with NDP matches 15 GB/s without it.");
  return 0;
}
