// Table 1: the exascale system projection scaled from the Titan Cray XK7,
// plus the derived C/R requirements of section 3.3.

#include <cstdio>

#include "common/table.hpp"
#include "common/units.hpp"
#include "proj/projection.hpp"

int main() {
  using namespace ndpcr;
  using namespace ndpcr::units;
  using proj::MachineSpec;

  const MachineSpec t = proj::titan();
  const MachineSpec e = proj::project_exascale(t);

  std::puts("Table 1: exascale system projection scaled from Titan Cray XK7\n");
  TextTable table({"Parameter", "Titan Cray XK7", "Exascale Projection",
                   "Factor change"});
  auto row = [&](const char* name, const std::string& a, const std::string& b,
                 double factor) {
    table.add_row({name, a, b, fmt_fixed(factor, 2) + "x"});
  };
  row("Node Count", fmt_fixed(t.node_count, 0), fmt_fixed(e.node_count, 0),
      e.node_count / t.node_count);
  row("System Peak", fmt_fixed(t.system_peak_flops / 1e15, 0) + " petaflops",
      fmt_fixed(e.system_peak_flops / 1e18, 0) + " exaflops",
      e.system_peak_flops / t.system_peak_flops);
  row("Node Peak", fmt_fixed(t.node_peak_flops / 1e12, 2) + " teraflops",
      fmt_fixed(e.node_peak_flops / 1e12, 0) + " teraflops",
      e.node_peak_flops / t.node_peak_flops);
  row("System Memory", fmt_fixed(tb(t.system_memory_bytes), 0) + " TB",
      fmt_fixed(pb(e.system_memory_bytes), 0) + " PB",
      e.system_memory_bytes / t.system_memory_bytes);
  row("Node Memory", fmt_fixed(gb(t.node_memory_bytes), 0) + " GB",
      fmt_fixed(gb(e.node_memory_bytes), 0) + " GB",
      e.node_memory_bytes / t.node_memory_bytes);
  row("Interconnect BW", fmt_fixed(t.interconnect_bw / 1e9, 0) + " GB/s",
      fmt_fixed(e.interconnect_bw / 1e9, 0) + " GB/s",
      e.interconnect_bw / t.interconnect_bw);
  row("I/O Bandwidth", fmt_fixed(t.io_bandwidth / 1e9, 0) + " GB/s",
      fmt_fixed(e.io_bandwidth / 1e12, 0) + " TB/s",
      e.io_bandwidth / t.io_bandwidth);
  row("System MTTI", fmt_fixed(to_minutes(t.system_mtti), 0) + " minutes",
      fmt_fixed(to_minutes(e.system_mtti), 0) + " minutes",
      e.system_mtti / t.system_mtti);
  std::fputs(table.str().c_str(), stdout);

  const double raw_mtti = proj::system_mtti_from_node_mttf(years(5),
                                                           e.node_count);
  std::printf("\nMTTI from 5-year node MTTF over %.0f nodes: %.2f minutes "
              "(rounded to 30, section 3.2)\n",
              e.node_count, to_minutes(raw_mtti));

  const auto r = proj::derive_cr_requirements(e);
  std::puts("\nSection 3.3: C/R requirements for 90% progress rate");
  std::printf("  checkpoint size:       %.0f GB/node (80%% of memory), "
              "%.1f PB system\n",
              gb(r.checkpoint_bytes_per_node),
              pb(r.checkpoint_bytes_per_node * e.node_count));
  std::printf("  commit time:           %.1f s (~MTTI/200)\n", r.commit_time);
  std::printf("  checkpoint period:     %.0f s (~MTTI/10)\n",
              r.checkpoint_period);
  std::printf("  required bandwidth:    %.2f GB/s per node, %.3f PB/s "
              "system\n",
              r.per_node_bandwidth / 1e9, pb(r.system_bandwidth));
  std::printf("  vs projected global I/O: %.0f TB/s (%.0fx short)\n",
              e.io_bandwidth / 1e12, r.system_bandwidth / e.io_bandwidth);
  std::printf("  per-node share of global I/O: %.0f MB/s -> %.2f minutes "
              "per 112 GB checkpoint\n",
              e.io_bandwidth_per_node() / 1e6,
              to_minutes(r.checkpoint_bytes_per_node /
                         e.io_bandwidth_per_node()));
  return 0;
}
