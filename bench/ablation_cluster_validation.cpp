// Validation: where does the paper's P(recovery from local) input come
// from? The failure-analysis DES derives it from first principles (double
// failures within a partner pair during the rebuild window), and the
// functional cluster simulation exercises the real byte-moving data path
// under the same failure process.

#include <cstdio>

#include "cluster/cluster_sim.hpp"
#include "cluster/failure_analysis.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

int main() {
  using namespace ndpcr;
  using namespace ndpcr::cluster;
  using namespace ndpcr::units;

  std::puts("P(local recovery) from the failure process: 100k nodes,");
  std::puts("5-year node MTTF, ring partner scheme\n");
  TextTable table({"Rebuild window", "System MTTI", "P(local)",
                   "IO recoveries"});
  for (double rebuild_minutes : {1.0, 10.0, 30.0, 60.0, 180.0, 600.0}) {
    FailureAnalysisConfig cfg;
    cfg.node_count = 100000;
    cfg.node_mttf = years(5);
    cfg.rebuild_time = minutes(rebuild_minutes);
    cfg.target_failures = 200000;
    const auto r = analyze_failures(cfg);
    table.add_row({fmt_fixed(rebuild_minutes, 0) + " min",
                   fmt_fixed(to_minutes(r.observed_system_mtti), 1) + " min",
                   fmt_percent(r.p_local(), 3),
                   std::to_string(r.io_required)});
  }
  std::fputs(table.str().c_str(), stdout);
  std::puts("\nNote: with independent exponential failures the ring-partner");
  std::puts("double-failure window alone yields P(local) >> 96%; the");
  std::puts("paper's 85% (Moody et al.) reflects correlated and multi-node");
  std::puts("failures, which is why the model keeps P(local) an input.");

  std::puts("\nPartner-scheme comparison (functional, 8 nodes): full");
  std::puts("copies vs XOR groups of 4 - same single-loss protection at a");
  std::puts("quarter of the redundancy space:\n");
  {
    TextTable cmp({"Scheme", "partner recoveries", "io recoveries",
                   "scratch", "verified"});
    for (auto scheme : {ckpt::PartnerScheme::kCopy,
                        ckpt::PartnerScheme::kXorGroup}) {
      ClusterSimConfig c;
      c.node_count = 8;
      c.state_bytes_per_rank = 64 * 1024;
      c.node_mttf = 2500.0;
      c.total_steps = 2000;
      c.io_every = 4;
      c.partner_scheme = scheme;
      c.xor_group_size = 4;
      const auto res = ClusterSim(c).run();
      cmp.add_row({scheme == ckpt::PartnerScheme::kCopy ? "copy"
                                                        : "xor-group(4)",
                   std::to_string(res.partner_level_ranks),
                   std::to_string(res.io_level_ranks),
                   std::to_string(res.unrecoverable),
                   res.state_verified ? "yes" : "NO"});
    }
    std::fputs(cmp.str().c_str(), stdout);
  }

  std::puts("\nFunctional cluster run (real bytes through the multilevel");
  std::puts("store, 8 nodes, aggressive failure rate):\n");
  ClusterSimConfig cfg;
  cfg.node_count = 8;
  cfg.state_bytes_per_rank = 128 * 1024;
  cfg.node_mttf = 2000.0;
  cfg.total_steps = 3000;
  cfg.io_every = 4;
  const auto r = ClusterSim(cfg).run();
  TextTable run({"Metric", "Value"});
  run.add_row({"failures", std::to_string(r.failures)});
  run.add_row({"recoveries", std::to_string(r.recoveries)});
  run.add_row({"rank-recoveries from local",
               std::to_string(r.local_level_ranks)});
  run.add_row({"rank-recoveries from partner",
               std::to_string(r.partner_level_ranks)});
  run.add_row({"rank-recoveries from IO", std::to_string(r.io_level_ranks)});
  run.add_row({"unrecoverable (scratch restarts)",
               std::to_string(r.unrecoverable)});
  run.add_row({"checkpoints committed", std::to_string(r.checkpoints)});
  run.add_row({"steps executed", std::to_string(r.steps_completed)});
  run.add_row({"steps re-executed", std::to_string(r.steps_rerun)});
  run.add_row({"state verified", r.state_verified ? "yes" : "NO"});
  std::fputs(run.str().c_str(), stdout);
  return 0;
}
