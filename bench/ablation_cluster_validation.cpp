// Validation: where does the paper's P(recovery from local) input come
// from? The failure-analysis DES derives it from first principles (double
// failures within a partner pair during the rebuild window), and the
// functional cluster simulation exercises the real byte-moving data path
// under the same failure process. The functional runs fan out as
// independent replicates on the execution engine (seed = sub_seed(base,
// r)), so the summary statistics are stable under --threads.
//
// Engine flags: --trials (= replicates) /--seed/--threads/--csv.

#include <cstdio>

#include "bench_util.hpp"
#include "cluster/failure_analysis.hpp"
#include "cluster/replicates.hpp"
#include "common/units.hpp"
#include "exec/task_pool.hpp"

int main(int argc, char** argv) {
  using namespace ndpcr;
  using namespace ndpcr::cluster;
  using namespace ndpcr::units;

  bench::BenchArgs args;
  if (!args.parse(argc, argv)) return 2;
  const int replicates = args.trials_or(4);
  const std::uint64_t seed = args.seed_or(7);

  bench::BenchReport report(
      "ablation_cluster_validation", args, seed, replicates,
      "100k-node failure DES + 8-node functional replicates");

  {
    report.add_section(
        "P(local recovery) from the failure process: 100k nodes, 5-year "
        "node MTTF, ring partner scheme",
        {"Rebuild window", "System MTTI", "P(local)", "IO recoveries"});
    for (double rebuild_minutes : {1.0, 10.0, 30.0, 60.0, 180.0, 600.0}) {
      FailureAnalysisConfig cfg;
      cfg.node_count = 100000;
      cfg.node_mttf = years(5);
      cfg.rebuild_time = minutes(rebuild_minutes);
      cfg.target_failures = 200000;
      cfg.seed = seed;
      const auto r = analyze_failures(cfg);
      report.add_row({fmt_fixed(rebuild_minutes, 0) + " min",
                      fmt_fixed(to_minutes(r.observed_system_mtti), 1) +
                          " min",
                      fmt_percent(r.p_local(), 3),
                      std::to_string(r.io_required)});
    }
  }

  {
    report.add_section(
        "Rack outages vs partner placement: 100k nodes in racks of 64, "
        "rack MTTF 250 node-lifetimes, ring vs cross-rack partners",
        {"Placement", "Rack outages", "Mean outage width", "P(rack)",
         "P(local)", "IO recoveries"});
    for (auto placement :
         {PartnerPlacement::kRing, PartnerPlacement::kCrossRack}) {
      FailureAnalysisConfig cfg;
      cfg.node_count = 100000;
      cfg.node_mttf = years(5);
      cfg.rebuild_time = minutes(30);
      cfg.target_failures = 200000;
      cfg.seed = seed;
      cfg.placement = placement;
      cfg.racks.rack_size = 64;
      cfg.racks.outage_mttf = 50.0 * years(5);
      const auto r = analyze_failures(cfg);
      report.add_row({placement == PartnerPlacement::kRing ? "ring"
                                                           : "cross-rack",
                      std::to_string(r.rack_outages),
                      fmt_fixed(r.mean_outage_width(), 1),
                      fmt_percent(r.p_rack(), 2), fmt_percent(r.p_local(), 3),
                      std::to_string(r.io_required)});
    }
  }

  {
    // Replicated failure DES: the aggregation sums exact integer
    // counters, so serial and pooled legs must agree to the last event.
    FailureAnalysisConfig base;
    base.node_count = 100000;
    base.node_mttf = years(5);
    base.rebuild_time = minutes(30);
    base.target_failures = 100000;
    base.seed = seed;
    base.cascade.probability = 0.05;
    exec::TaskPool serial(1);
    const auto s = run_failure_replicates(base, replicates, &serial);
    const auto p = run_failure_replicates(base, replicates, nullptr);
    const bool identical =
        s.total_failures == p.total_failures &&
        s.total_local_recoverable == p.total_local_recoverable &&
        s.total_io_required == p.total_io_required &&
        s.total_cascade_failures == p.total_cascade_failures &&
        s.total_events_processed == p.total_events_processed;
    report.add_section(
        "Failure-DES replicates, serial pool vs engine pool (" +
            std::to_string(replicates) +
            " replicates, 100k nodes, 5% cascades): integer-counter "
            "aggregation is pool-invariant",
        {"Aggregate", "Serial", "Pool"});
    report.add_row({"failures", std::to_string(s.total_failures),
                    std::to_string(p.total_failures)});
    report.add_row({"local recoverable",
                    std::to_string(s.total_local_recoverable),
                    std::to_string(p.total_local_recoverable)});
    report.add_row({"io required", std::to_string(s.total_io_required),
                    std::to_string(p.total_io_required)});
    report.add_row({"cascade failures",
                    std::to_string(s.total_cascade_failures),
                    std::to_string(p.total_cascade_failures)});
    report.add_row({"events processed",
                    std::to_string(s.total_events_processed),
                    std::to_string(p.total_events_processed)});
    report.add_row({"P(local)", fmt_percent(s.p_local(), 4),
                    fmt_percent(p.p_local(), 4)});
    report.add_row({"bit-identical", identical ? "yes" : "NO",
                    identical ? "yes" : "NO"});
  }

  {
    // Per-phase energy (Moran et al.): joules derive from the exact
    // counters after the run, so the split is as deterministic as the
    // counters themselves.
    report.add_section(
        "Per-phase energy at 100k nodes (165/185/140/175 W phases, "
        "hourly checkpoints): checkpointing dominates, recovery is noise",
        {"Rebuild window", "Compute GWh", "Checkpoint GWh", "Rebuild GWh",
         "Restart GWh", "Overhead", "GJ/failure"});
    for (double rebuild_minutes : {10.0, 60.0, 600.0}) {
      FailureAnalysisConfig cfg;
      cfg.node_count = 100000;
      cfg.node_mttf = years(5);
      cfg.rebuild_time = minutes(rebuild_minutes);
      cfg.target_failures = 200000;
      cfg.seed = seed;
      cfg.energy.enabled = true;
      const auto r = analyze_failures(cfg);
      const auto& e = r.energy;
      constexpr double kGWh = 3.6e12;  // joules per gigawatt-hour
      report.add_row(
          {fmt_fixed(rebuild_minutes, 0) + " min",
           fmt_fixed(e.compute_joules / kGWh, 1),
           fmt_fixed(e.checkpoint_joules / kGWh, 1),
           fmt_fixed(e.rebuild_joules / kGWh, 4),
           fmt_fixed(e.restart_joules / kGWh, 4),
           fmt_percent(e.overhead_fraction(), 2),
           fmt_fixed(r.energy_per_failure() / 1e9, 1)});
    }
  }

  {
    report.add_section(
        "Partner-scheme comparison (functional, 8 nodes, " +
            std::to_string(replicates) +
            " replicates each): full copies vs XOR groups of 4",
        {"Scheme", "mean partner recoveries", "mean io recoveries",
         "scratch (total)", "verified"});
    for (auto scheme : {ckpt::PartnerScheme::kCopy,
                        ckpt::PartnerScheme::kXorGroup}) {
      ClusterSimConfig c;
      c.node_count = 8;
      c.state_bytes_per_rank = 64 * 1024;
      c.node_mttf = 2500.0;
      c.total_steps = 2000;
      c.io_every = 4;
      c.partner_scheme = scheme;
      c.xor_group_size = 4;
      c.seed = seed;
      const auto sum = run_cluster_replicates(c, replicates);
      report.add_row({scheme == ckpt::PartnerScheme::kCopy ? "copy"
                                                           : "xor-group(4)",
                      fmt_fixed(sum.mean_partner_level_ranks, 2),
                      fmt_fixed(sum.mean_io_level_ranks, 2),
                      std::to_string(sum.total_unrecoverable),
                      sum.all_verified ? "yes" : "NO"});
    }
  }

  {
    ClusterSimConfig cfg;
    cfg.node_count = 8;
    cfg.state_bytes_per_rank = 128 * 1024;
    cfg.node_mttf = 2000.0;
    cfg.total_steps = 3000;
    cfg.io_every = 4;
    cfg.seed = seed;
    const auto sum = run_cluster_replicates(cfg, replicates);
    report.add_section(
        "Functional cluster replicates (real bytes through the multilevel "
        "store, 8 nodes, aggressive failure rate, " +
            std::to_string(replicates) + " replicates)",
        {"Metric", "Value"});
    report.add_row({"replicates", std::to_string(sum.runs.size())});
    report.add_row({"failures (total)", std::to_string(sum.total_failures)});
    report.add_row({"failures (mean/replicate)",
                    fmt_fixed(sum.mean_failures, 2)});
    report.add_row({"rank-recoveries from local (mean)",
                    fmt_fixed(sum.mean_local_level_ranks, 2)});
    report.add_row({"rank-recoveries from partner (mean)",
                    fmt_fixed(sum.mean_partner_level_ranks, 2)});
    report.add_row({"rank-recoveries from IO (mean)",
                    fmt_fixed(sum.mean_io_level_ranks, 2)});
    report.add_row({"unrecoverable (total scratch restarts)",
                    std::to_string(sum.total_unrecoverable)});
    report.add_row({"steps re-executed (mean)",
                    fmt_fixed(sum.mean_steps_rerun, 2)});
    report.add_row({"state verified (all replicates)",
                    sum.all_verified ? "yes" : "NO"});
  }
  report.finish();

  std::puts("\nNote: with independent exponential failures the ring-partner");
  std::puts("double-failure window alone yields P(local) >> 96%; the");
  std::puts("paper's 85% (Moody et al.) reflects correlated and multi-node");
  std::puts("failures, which is why the model keeps P(local) an input.");
  return 0;
}
