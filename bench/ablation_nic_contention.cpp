// Ablation: NIC back-pressure policy under application network traffic
// (section 4.2.2: pause compression vs spill to NVM). One compressed
// checkpoint (30.2 GB: 112 GB at cf 73%) streams through the NIC while
// the application claims bursts of the link.

#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "net/nic.hpp"

int main() {
  using namespace ndpcr;
  using namespace ndpcr::net;
  using namespace ndpcr::units;

  const double compressed_bytes = bytes_from_gb(112) * (1.0 - 0.73);
  const double producer_bw = mbps(440.4);  // NDP compression output ceiling

  NicConfig nic;
  nic.link_bw = mbps(100);  // the per-node IO share is the real bottleneck
  nic.buffer_bytes = 4 << 20;
  nic.nvm_spill_bw = gbps(15);

  std::puts("NIC back-pressure under contention: one 30.2 GB compressed");
  std::puts("checkpoint at 100 MB/s effective IO, 4 MiB NIC buffer\n");

  TextTable table({"App traffic pattern", "Policy", "Stream time",
                   "Compressor stall", "Spilled"});
  struct Pattern {
    const char* name;
    std::vector<ContentionPhase> phases;
  };
  const Pattern patterns[] = {
      {"idle link", {}},
      {"30% steady", {{1e9, 0.3}}},
      {"bursts: 60s full every 120s",
       {{60, 1.0}, {60, 0.0}, {60, 1.0}, {60, 0.0}, {60, 1.0}, {60, 0.0},
        {1e9, 0.0}}},
      {"collective-heavy: 90% for 200s", {{200, 0.9}, {1e9, 0.1}}},
  };
  for (const auto& pattern : patterns) {
    for (auto policy : {BackpressurePolicy::kPauseProducer,
                        BackpressurePolicy::kSpillToNvm}) {
      const auto r = simulate_stream(compressed_bytes, producer_bw, nic,
                                     pattern.phases, policy);
      table.add_row(
          {pattern.name,
           policy == BackpressurePolicy::kPauseProducer ? "pause" : "spill",
           fmt_fixed(r.seconds, 0) + " s",
           fmt_fixed(r.producer_stall_seconds, 0) + " s",
           fmt_si_bytes(r.spilled_bytes)});
    }
  }
  std::fputs(table.str().c_str(), stdout);

  std::puts("\nShape check: stream completion time is set by the link");
  std::puts("capacity left over by the application either way; spilling");
  std::puts("frees the compressor (no stall) at the cost of NVM traffic,");
  std::puts("pausing costs compressor time but no extra NVM bandwidth -");
  std::puts("exactly the trade-off section 4.2.2 describes.");
  return 0;
}
