// Validation capstone: the full-stack functional NDP cluster (real codec
// bytes, per-node NDP agents, shared PFS, coordinated commits) against
// the statistical timeline model on matched parameters. The two
// implementations share no code on their hot paths; agreeing progress
// rates mean the paper-level model and the byte-level mechanisms tell the
// same story.

#include <cstdio>

#include "cluster/ndp_cluster_sim.hpp"
#include "common/table.hpp"
#include "sim/timeline.hpp"

int main() {
  using namespace ndpcr;

  std::puts("Full-stack NDP cluster vs statistical timeline model");
  std::puts("(matched parameters, scaled-down scenario)\n");

  // A scaled scenario both implementations can express: checkpoint
  // 128 kB/rank at step granularity.
  cluster::NdpClusterConfig fc;
  fc.node_count = 4;
  fc.state_bytes_per_rank = 128 * 1024;
  fc.total_steps = 4000;
  fc.steps_per_checkpoint = 10;   // interval: 10 s of work
  fc.step_time = 1.0;
  fc.local_commit_time = 0.5;
  fc.local_restore_time = 0.5;
  fc.ndp_compress_bw = 512e3;
  fc.aggregate_io_bw = 4 * 64e3;  // 64 kB/s per node
  fc.codec = compress::CodecId::kLz4Style;

  TextTable table({"MTTF/node", "P(local)", "full-stack", "timeline model",
                   "gap"});
  for (double mttf : {1500.0, 3000.0, 6000.0}) {
    for (double p : {0.85, 0.96}) {
      auto fcc = fc;
      fcc.node_mttf = mttf;
      fcc.p_local_recovery = p;
      const auto full = cluster::NdpClusterSim(fcc).run();

      // The equivalent timeline configuration. The functional run tells
      // us the realized compression factor; the model needs it as input.
      const double image_bytes = 128.0 * 1024;
      sim::TimelineConfig tc;
      tc.strategy = sim::Strategy::kLocalIoNdp;
      tc.mtti = mttf / fc.node_count;
      tc.checkpoint_bytes = image_bytes;
      tc.local_bw = image_bytes / fc.local_commit_time;
      tc.io_bw = fc.aggregate_io_bw / fc.node_count;
      tc.local_interval = fc.steps_per_checkpoint * fc.step_time;
      // lz4-class factor on this workload, measured by the agents:
      tc.compression_factor = 0.5;
      tc.ndp_compress_bw = fc.ndp_compress_bw;
      tc.p_local_recovery = p;
      tc.total_work = 20000.0;
      const auto model = sim::TimelineSimulator::run_trials(tc, 5, 3);

      table.add_row({fmt_fixed(mttf, 0) + " s", fmt_percent(p, 0),
                     fmt_percent(full.progress_rate(), 1),
                     fmt_percent(model.progress_rate(), 1),
                     fmt_percent(std::abs(full.progress_rate() -
                                          model.progress_rate()),
                                 1)});
    }
  }
  std::fputs(table.str().c_str(), stdout);

  std::puts("\nReading: the byte-moving cluster and the statistical model");
  std::puts("land within a few points of each other across failure rates");
  std::puts("- the modeling assumptions (static IO share, newest-first");
  std::puts("drains, level-split recovery) hold on a real data path.");
  return 0;
}
