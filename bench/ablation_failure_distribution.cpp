// Ablation: the exponential-interrupt assumption. The paper (following
// Daly) assumes exponentially distributed interrupts; Schroeder & Gibson
// [4] measured Weibull inter-arrivals with shape ~0.7-0.8 on petascale
// systems (failures cluster). This harness re-runs the Figure-7
// configurations with Weibull interrupts of the same mean and sweeps the
// shape, isolating what burstiness does to the C/R comparison - then
// asks the same question of the 100k-node failure DES (docs/SIM.md):
// does burstiness (Weibull renewals, explicit cascades) move the
// double-failure window enough to change P(recovery from local)?

#include <cstdio>

#include "cluster/failure_analysis.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "sim/timeline.hpp"

int main() {
  using namespace ndpcr;
  using namespace ndpcr::sim;

  std::puts("Progress rate under Weibull interrupts (mean fixed at the");
  std::puts("30-minute MTTI; shape 1.0 = the paper's exponential):\n");

  struct Config {
    const char* label;
    Strategy strategy;
    double cf;
    std::uint32_t io_every;
  };
  const Config configs[] = {
      {"Local + I/O-H  (ratio 39)", Strategy::kLocalIoHost, 0.0, 39},
      {"Local + I/O-HC (ratio 28)", Strategy::kLocalIoHost, 0.73, 28},
      {"Local + I/O-N", Strategy::kLocalIoNdp, 0.0, 0},
      {"Local + I/O-NC", Strategy::kLocalIoNdp, 0.73, 0},
  };
  const double shapes[] = {0.5, 0.7, 0.85, 1.0, 1.5};

  std::vector<std::string> header = {"Configuration"};
  for (double s : shapes) header.push_back("shape " + fmt_fixed(s, 2));
  TextTable table(header);

  for (const auto& c : configs) {
    std::vector<std::string> cells = {c.label};
    for (double shape : shapes) {
      TimelineConfig cfg;
      cfg.strategy = c.strategy;
      cfg.compression_factor = c.cf;
      cfg.io_every = c.io_every;
      cfg.p_local_recovery = 0.96;
      cfg.failure_shape = shape;
      cfg.total_work = 400.0 * 3600;
      const auto r = TimelineSimulator::run_trials(cfg, 3, 41);
      cells.push_back(fmt_percent(r.progress_rate(), 1));
    }
    table.add_row(cells);
  }
  std::fputs(table.str().c_str(), stdout);

  std::puts("\nReading: at fixed mean, bursty failures (shape < 1) mildly");
  std::puts("*raise* every configuration's progress - clustered failures");
  std::puts("strike mostly-already-lost work while the long quiet gaps");
  std::puts("let work complete untaxed - and the configuration ordering");
  std::puts("and the NDP advantage are unchanged. The paper's exponential");
  std::puts("assumption is therefore mildly conservative but safe.");

  // ---- the same ablation at cluster scale, through the failure DES ----
  {
    using namespace ndpcr::cluster;
    using namespace ndpcr::units;

    std::puts("\nP(recovery from local) under Weibull renewals (failure");
    std::puts("DES, 100k nodes, 5-year node MTTF, 30-minute rebuild,");
    std::puts("200k failures; shape 1.0 = exponential):\n");

    TextTable des({"Shape", "Engine", "System MTTI", "P(local)",
                   "IO recoveries"});
    for (double shape : shapes) {
      FailureAnalysisConfig cfg;
      cfg.node_count = 100000;
      cfg.node_mttf = years(5);
      cfg.rebuild_time = minutes(30);
      cfg.target_failures = 200000;
      cfg.seed = 41;
      if (shape != 1.0) {
        cfg.distribution = cluster::FailureDistribution::kWeibull;
        cfg.weibull_shape = shape;
      }
      const auto r = analyze_failures(cfg);
      des.add_row({fmt_fixed(shape, 2),
                   cfg.memoryless() ? "superposition" : "calendar",
                   fmt_fixed(to_minutes(r.observed_system_mtti), 1) + " min",
                   fmt_percent(r.p_local(), 3),
                   std::to_string(r.io_required)});
    }
    std::fputs(des.str().c_str(), stdout);

    std::puts("\nReading: shape < 1 front-loads each node's renewals, so");
    std::puts("the observed system MTTI shortens and failures cluster -");
    std::puts("yet a partner pair is still almost never caught inside one");
    std::puts("rebuild window, because the clustering is *temporal*, not");
    std::puts("spatial. Independent burstiness alone cannot explain the");
    std::puts("paper's 85% P(local) input; spatially correlated failures");
    std::puts("(cascades) are the stronger lever:\n");

    TextTable casc({"P(cascade trigger)", "P(cascade)", "P(local)",
                    "IO recoveries"});
    for (double p : {0.0, 0.05, 0.1, 0.2}) {
      FailureAnalysisConfig cfg;
      cfg.node_count = 100000;
      cfg.node_mttf = years(5);
      cfg.rebuild_time = minutes(30);
      cfg.target_failures = 200000;
      cfg.seed = 41;
      cfg.cascade.probability = p;
      const auto r = analyze_failures(cfg);
      casc.add_row({fmt_fixed(p, 2), fmt_percent(r.p_cascade(), 2),
                    fmt_percent(r.p_local(), 3),
                    std::to_string(r.io_required)});
    }
    std::fputs(casc.str().c_str(), stdout);

    std::puts("\nReading: cascade victims are ring-neighbours of the origin");
    std::puts("inside the rebuild window, which is exactly the partner");
    std::puts("scheme's blind spot - a few percent of correlated failures");
    std::puts("erode P(local) far faster than any renewal-shape change,");
    std::puts("matching why Moody et al. measured 85% rather than ~100%.");
  }
  return 0;
}
