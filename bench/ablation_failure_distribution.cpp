// Ablation: the exponential-interrupt assumption. The paper (following
// Daly) assumes exponentially distributed interrupts; Schroeder & Gibson
// [4] measured Weibull inter-arrivals with shape ~0.7-0.8 on petascale
// systems (failures cluster). This harness re-runs the Figure-7
// configurations with Weibull interrupts of the same mean and sweeps the
// shape, isolating what burstiness does to the C/R comparison.

#include <cstdio>

#include "common/table.hpp"
#include "sim/timeline.hpp"

int main() {
  using namespace ndpcr;
  using namespace ndpcr::sim;

  std::puts("Progress rate under Weibull interrupts (mean fixed at the");
  std::puts("30-minute MTTI; shape 1.0 = the paper's exponential):\n");

  struct Config {
    const char* label;
    Strategy strategy;
    double cf;
    std::uint32_t io_every;
  };
  const Config configs[] = {
      {"Local + I/O-H  (ratio 39)", Strategy::kLocalIoHost, 0.0, 39},
      {"Local + I/O-HC (ratio 28)", Strategy::kLocalIoHost, 0.73, 28},
      {"Local + I/O-N", Strategy::kLocalIoNdp, 0.0, 0},
      {"Local + I/O-NC", Strategy::kLocalIoNdp, 0.73, 0},
  };
  const double shapes[] = {0.5, 0.7, 0.85, 1.0, 1.5};

  std::vector<std::string> header = {"Configuration"};
  for (double s : shapes) header.push_back("shape " + fmt_fixed(s, 2));
  TextTable table(header);

  for (const auto& c : configs) {
    std::vector<std::string> cells = {c.label};
    for (double shape : shapes) {
      TimelineConfig cfg;
      cfg.strategy = c.strategy;
      cfg.compression_factor = c.cf;
      cfg.io_every = c.io_every;
      cfg.p_local_recovery = 0.96;
      cfg.failure_shape = shape;
      cfg.total_work = 400.0 * 3600;
      const auto r = TimelineSimulator::run_trials(cfg, 3, 41);
      cells.push_back(fmt_percent(r.progress_rate(), 1));
    }
    table.add_row(cells);
  }
  std::fputs(table.str().c_str(), stdout);

  std::puts("\nReading: at fixed mean, bursty failures (shape < 1) mildly");
  std::puts("*raise* every configuration's progress - clustered failures");
  std::puts("strike mostly-already-lost work while the long quiet gaps");
  std::puts("let work complete untaxed - and the configuration ordering");
  std::puts("and the NDP advantage are unchanged. The paper's exponential");
  std::puts("assumption is therefore mildly conservative but safe.");
  return 0;
}
