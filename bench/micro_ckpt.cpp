// Microbenchmarks: checkpoint library hot paths - image framing + CRC,
// region capture, NVM store puts with eviction, XOR parity.

#include <benchmark/benchmark.h>

#include <vector>

#include "ckpt/image.hpp"
#include "ckpt/nvm_store.hpp"
#include "ckpt/region.hpp"
#include "ckpt/stores.hpp"
#include "common/rng.hpp"

namespace {

using namespace ndpcr;
using namespace ndpcr::ckpt;

Bytes random_payload(std::size_t size) {
  Rng rng(7);
  Bytes data(size);
  for (auto& b : data) b = static_cast<std::byte>(rng.next_below(256));
  return data;
}

void image_build(benchmark::State& state) {
  const Bytes payload = random_payload(static_cast<std::size_t>(state.range(0)));
  CheckpointMeta meta{.app_id = 1, .rank = 0, .checkpoint_id = 1, .step = 1};
  for (auto _ : state) {
    Bytes image = CheckpointImage::build(meta, payload);
    benchmark::DoNotOptimize(image.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(image_build)->Arg(64 << 10)->Arg(1 << 20)->Arg(8 << 20);

void image_parse(benchmark::State& state) {
  const Bytes payload = random_payload(static_cast<std::size_t>(state.range(0)));
  const Bytes raw = CheckpointImage::build(CheckpointMeta{}, payload);
  for (auto _ : state) {
    CheckpointImage image = CheckpointImage::parse(raw);
    benchmark::DoNotOptimize(image.payload().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(image_parse)->Arg(64 << 10)->Arg(1 << 20)->Arg(8 << 20);

void region_capture(benchmark::State& state) {
  std::vector<double> a(static_cast<std::size_t>(state.range(0)) / 8);
  std::vector<double> b(a.size());
  RegionRegistry reg;
  reg.register_vector("a", a);
  reg.register_vector("b", b);
  for (auto _ : state) {
    Bytes snap = reg.capture();
    benchmark::DoNotOptimize(snap.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 2);
}
BENCHMARK(region_capture)->Arg(1 << 20);

void nvm_store_put(benchmark::State& state) {
  const Bytes payload = random_payload(256 << 10);
  NvmStore store(4u << 20);  // forces steady-state eviction
  std::uint64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.put(++id, Bytes(payload)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
  state.counters["evictions"] = static_cast<double>(store.eviction_count());
}
BENCHMARK(nvm_store_put);

void xor_parity_bench(benchmark::State& state) {
  std::vector<Bytes> buffers(8, random_payload(1 << 20));
  for (auto _ : state) {
    Bytes parity = xor_parity(buffers);
    benchmark::DoNotOptimize(parity.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          (8 << 20));
}
BENCHMARK(xor_parity_bench);

}  // namespace

BENCHMARK_MAIN();
