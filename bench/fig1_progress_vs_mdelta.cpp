// Figure 1: progress rate of a system with C/R as a function of M/delta
// (MTTI over checkpoint commit time), at the Daly-optimal checkpoint
// interval with restore time equal to commit time.

#include <cstdio>

#include "analytic/daly.hpp"
#include "common/table.hpp"

int main() {
  using namespace ndpcr;
  std::puts("Figure 1: progress rate vs M/delta (restart = commit,");
  std::puts("checkpoint interval at Daly's optimum)\n");

  TextTable table({"M/delta", "progress rate", "optimal interval (x delta)"});
  for (double ratio : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
                       1000.0, 2000.0, 5000.0, 10000.0}) {
    const double eff = analytic::efficiency_vs_m_over_delta(ratio);
    const double tau = analytic::daly_optimal_interval(1.0, ratio);
    table.add_row({fmt_fixed(ratio, 0), fmt_percent(eff, 1),
                   fmt_fixed(tau, 1)});
  }
  std::fputs(table.str().c_str(), stdout);

  std::puts("\nAnchors: ~90% progress needs M/delta ~200 (section 3.3);");
  std::printf("required commit time for 90%% at M = 30 min: %.1f s\n",
              analytic::required_commit_time(1800.0, 0.90));
  return 0;
}
