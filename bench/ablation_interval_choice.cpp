// Ablation: the local checkpoint interval. The paper fixes it at 150 s
// (Table 4) - roughly Daly's optimum for the 7.47 s local commit. This
// harness sweeps the interval for the NDP and host configurations and
// reports the empirical optimum, quantifying how sensitive the headline
// results are to that choice.

#include <cstdio>

#include "analytic/daly.hpp"
#include "common/table.hpp"
#include "model/evaluator.hpp"

int main() {
  using namespace ndpcr;
  using namespace ndpcr::model;

  CrScenario scenario;
  SimOptions opt;
  opt.total_work = 300.0 * 3600;
  opt.trials = 3;
  Evaluator ev(scenario, opt);

  const CrConfig ndp{.kind = ConfigKind::kLocalIoNdp,
                     .compression_factor = 0.73,
                     .p_local_recovery = 0.85};
  const CrConfig host{.kind = ConfigKind::kLocalIoHost,
                      .compression_factor = 0.73,
                      .p_local_recovery = 0.85};
  const std::uint32_t host_ratio = 25;

  std::puts("Progress rate vs local checkpoint interval (cf 73%,");
  std::puts("P(local) = 85%):\n");
  TextTable table({"Interval", "Local + I/O-NDP",
                   "Local + I/O-Host (ratio 25)"});
  for (double tau : {40.0, 80.0, 120.0, 150.0, 200.0, 300.0, 500.0,
                     900.0}) {
    table.add_row({fmt_fixed(tau, 0) + " s",
                   fmt_percent(ev.rate_at_interval(ndp, 0, tau), 1),
                   fmt_percent(ev.rate_at_interval(host, host_ratio, tau),
                               1)});
  }
  std::fputs(table.str().c_str(), stdout);

  const double local_commit =
      scenario.checkpoint_bytes / scenario.local_bw;
  const double daly =
      analytic::daly_optimal_interval(local_commit, scenario.mtti);
  const double best_ndp = ev.optimal_local_interval(ndp, 0);
  std::printf("\nDaly optimum for the %.2f s local commit: %.0f s\n",
              local_commit, daly);
  std::printf("Empirical optimum (NDP config): %.0f s -> %s (150 s gives "
              "%s)\n",
              best_ndp,
              fmt_percent(ev.rate_at_interval(ndp, 0, best_ndp), 1).c_str(),
              fmt_percent(ev.rate_at_interval(ndp, 0, 150.0), 1).c_str());
  std::puts("\nReading: the objective is flat around the optimum - the");
  std::puts("paper's 150 s sits within a fraction of a point of the best");
  std::puts("achievable, so none of its conclusions hinge on the choice.");
  return 0;
}
