// Figure 7: C/R overhead breakdown for the four multilevel configurations
// when only 4% of failures need recovery from global IO (P(local) = 96%)
// and the compression factor is 73% (the seven-app average).
//
//   Local + I/O-H   multilevel, host-managed IO
//   Local + I/O-HC  multilevel + compression
//   Local + I/O-N   NDP, no compression
//   Local + I/O-NC  NDP + compression
//
// The paper's observations to reproduce: "Rerun I/O" dominates the host
// configurations despite only 4% of recoveries using IO; compression
// roughly halves it; the NDP configurations have no "Checkpoint I/O"
// component at all and drive "Rerun I/O" to ~1% or less.
//
// Engine flags: --trials/--seed/--threads/--csv (see bench_util.hpp).

#include <cstdio>

#include "bench_util.hpp"
#include "model/evaluator.hpp"

int main(int argc, char** argv) {
  using namespace ndpcr;
  using namespace ndpcr::model;

  bench::BenchArgs args;
  if (!args.parse(argc, argv)) return 2;

  CrScenario scenario;
  SimOptions opt;
  opt.total_work = 400.0 * 3600;
  opt.trials = args.trials_or(3);
  opt.seed = args.seed_or(opt.seed);
  Evaluator ev(scenario, opt);

  const double p = 0.96;
  const double cf = 0.73;

  struct Row {
    const char* label;
    CrConfig cfg;
  };
  const Row rows[] = {
      {"Local + I/O-H",
       {.kind = ConfigKind::kLocalIoHost, .compression_factor = 0.0,
        .p_local_recovery = p}},
      {"Local + I/O-HC",
       {.kind = ConfigKind::kLocalIoHost, .compression_factor = cf,
        .p_local_recovery = p}},
      {"Local + I/O-N",
       {.kind = ConfigKind::kLocalIoNdp, .compression_factor = 0.0,
        .p_local_recovery = p}},
      {"Local + I/O-NC",
       {.kind = ConfigKind::kLocalIoNdp, .compression_factor = cf,
        .p_local_recovery = p}},
  };

  std::puts("Figure 7: overhead breakdown at P(local) = 96%, cf = 73%");
  std::puts("(host rows run a ratio optimization on the engine)\n");

  bench::BenchReport report("fig7_breakdown_4pct", args, opt.seed,
                            opt.trials, "P(local)=96%, cf=73%");
  std::vector<Evaluation> evals;
  std::vector<std::string> labels;
  for (const auto& row : rows) {
    const Evaluation e = ev.evaluate(row.cfg);
    evals.push_back(e);
    labels.push_back(std::string(row.label) + " (ratio " +
                     std::to_string(e.io_every) + ")");
  }
  report.add_section("Left plot (normalized to compute time)",
                     bench::normalized_header("Configuration"));
  for (std::size_t i = 0; i < evals.size(); ++i) {
    report.add_row(
        bench::normalized_row(labels[i], evals[i].result.breakdown));
  }
  report.add_section("Right plot (% of total execution time)",
                     bench::breakdown_header("Configuration"));
  for (std::size_t i = 0; i < evals.size(); ++i) {
    report.add_row(
        bench::breakdown_row(labels[i], evals[i].result.breakdown));
  }
  report.finish();

  std::puts("\nShape check: CkptIO = 0 for the NDP rows; RerunIO shrinks");
  std::puts("from I/O-H to I/O-HC and nearly vanishes for I/O-N(C); the");
  std::puts("NDP + compression progress rate approaches the 90% target.");
  return 0;
}
