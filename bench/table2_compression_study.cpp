// Table 2: checkpoint compression factors and single-thread compression
// speeds for the seven mini-apps across the codec suite.
//
// Printed twice: the paper's measured constants (gzip/bzip2/xz/lz4 on the
// authors' testbed) and our end-to-end measurement (the from-scratch
// codecs over the mini-app proxies' checkpoints on this machine).
// Pass --bytes-per-app N to change the per-app checkpoint volume.
//
// Engine flags: --seed/--threads/--csv (see bench_util.hpp). With
// --threads > 1 the app x codec grid compresses concurrently; factors are
// deterministic, measured speeds share the machine like any timing.

#include <cstdio>

#include "bench_util.hpp"
#include "study/compression_study.hpp"
#include "workloads/miniapp.hpp"
#include "workloads/proxy_kernels.hpp"

int main(int argc, char** argv) {
  using namespace ndpcr;
  using namespace ndpcr::study;

  bench::BenchArgs args;
  if (!args.parse(argc, argv)) return 2;
  const auto bytes_per_app =
      static_cast<std::size_t>(args.number("bytes-per-app", 3 << 20));

  const auto suite = compress::paper_codec_suite();
  StudyConfig cfg;
  cfg.bytes_per_app = bytes_per_app;
  cfg.seed = args.seed_or(cfg.seed);

  bench::BenchReport report(
      "table2_compression_study", args, cfg.seed, cfg.checkpoints_per_app,
      "bytes_per_app=" + std::to_string(bytes_per_app));

  {
    std::vector<std::string> header = {"Mini-app", "Data"};
    for (const auto& c : suite) header.push_back(c.display_name);
    report.add_section(
        "Table 2 (paper constants): compression factor / speed (MB/s)",
        header);
    for (const auto& row : paper_table2()) {
      std::vector<std::string> cells = {row.app,
                                        fmt_fixed(row.data_gb, 2) + " GB"};
      for (std::size_t c = 0; c < suite.size(); ++c) {
        cells.push_back(fmt_percent(row.factor[c], 1) + " @" +
                        fmt_fixed(row.speed_mbps[c], 1));
      }
      report.add_row(cells);
    }
    std::vector<std::string> avg = {"Average", ""};
    for (std::size_t c = 0; c < suite.size(); ++c) {
      avg.push_back(fmt_percent(paper_average_factor(c), 1) + " @" +
                    fmt_fixed(paper_average_speed_mbps(c), 1));
    }
    report.add_row(avg);
  }

  const StudyResults results = run_compression_study(cfg);
  {
    std::vector<std::string> header = {"Mini-app", "Data"};
    for (const auto& c : suite) header.push_back(c.display_name);
    report.add_section(
        "Table 2 (measured): our codecs over mini-app proxy checkpoints, " +
            fmt_fixed(static_cast<double>(bytes_per_app) / 1e6, 1) + " MB/app",
        header);
    for (const auto& app : workloads::miniapp_names()) {
      const auto* first = results.find(app, suite.front().display_name);
      std::vector<std::string> cells = {
          app, fmt_fixed(static_cast<double>(first->input_bytes) / 1e6, 1) +
                   " MB"};
      for (const auto& c : suite) {
        const auto* m = results.find(app, c.display_name);
        cells.push_back(fmt_percent(m->factor, 1) + " @" +
                        fmt_fixed(m->compress_bw / 1e6, 1));
      }
      report.add_row(cells);
    }
    std::vector<std::string> avg = {"Average", ""};
    for (const auto& c : suite) {
      avg.push_back(fmt_percent(results.average_factor(c.display_name), 1) +
                    " @" +
                    fmt_fixed(results.average_compress_bw(c.display_name) /
                                  1e6,
                              1));
    }
    report.add_row(avg);
  }

  // Section 5.2's production-app comparison: Ibtesham et al. measured
  // 91.6% (zip) / 92.7% (pbzip2) on LAMMPS and ~83% / ~85% on CTH.
  {
    StudyConfig pcfg;
    pcfg.bytes_per_app = bytes_per_app;
    pcfg.seed = cfg.seed;
    pcfg.apps = workloads::production_app_names();
    pcfg.codecs = {{compress::CodecId::kDeflateStyle, 1, "ngzip(1)"},
                   {compress::CodecId::kBzipStyle, 1, "nbzip2(1)"}};
    const StudyResults prod = run_compression_study(pcfg);
    report.add_section(
        "Production-app proxies (section 5.2 cross-check; paper cites "
        "LAMMPS 91.6% zip / 92.7% pbzip2, CTH ~83% / ~85%)",
        {"App", "ngzip(1)", "nbzip2(1)"});
    for (const auto& app : pcfg.apps) {
      report.add_row(
          {app, fmt_percent(prod.find(app, "ngzip(1)")->factor, 1),
           fmt_percent(prod.find(app, "nbzip2(1)")->factor, 1)});
    }
  }

  // The crash-equivalence harness's NPB-style proxy kernels (cg/mg/ft,
  // docs/EQUIVALENCE.md) are MiniApps too; their checkpoints go through
  // the same study so their compressibility sits next to the paper's
  // seven.
  {
    StudyConfig kcfg;
    kcfg.bytes_per_app = bytes_per_app;
    kcfg.seed = cfg.seed;
    kcfg.apps = workloads::proxy_kernel_names();
    const StudyResults kern = run_compression_study(kcfg);
    std::vector<std::string> header = {"Kernel", "Data"};
    for (const auto& c : suite) header.push_back(c.display_name);
    report.add_section(
        "NPB-style proxy kernels (restart-equivalence harness workloads)",
        header);
    for (const auto& app : kcfg.apps) {
      const auto* first = kern.find(app, suite.front().display_name);
      std::vector<std::string> cells = {
          app, fmt_fixed(static_cast<double>(first->input_bytes) / 1e6, 1) +
                   " MB"};
      for (const auto& c : suite) {
        const auto* m = kern.find(app, c.display_name);
        cells.push_back(fmt_percent(m->factor, 1) + " @" +
                        fmt_fixed(m->compress_bw / 1e6, 1));
      }
      report.add_row(cells);
    }
  }
  report.finish();

  std::puts("\nCells are: compression factor @ single-thread speed (MB/s).");
  std::puts("Expected shape: lz4-family fastest / weakest, xz-family");
  std::puts("slowest / strongest; minismac compresses worst, the CG apps");
  std::puts("and comd best; production proxies compress at least as well");
  std::puts("as the mini-apps (the paper's section 5.2 observation).");
  return 0;
}
