// Figure 3: the operational timeline of two-level checkpointing without
// (a) and with (b) NDP, rendered as ASCII lanes. Each column is one
// virtual time slot; the lanes show what the HOST, the NVM/NDP, and the
// IO link are doing - the paper's picture of the IO drain moving off the
// host's critical path.
//
//   HOST lane: c = compute, L = writing local checkpoint, I = writing IO
//              checkpoint (host-managed only)
//   NDP  lane: # = compressing/streaming, . = paused (host owns the NVM),
//              (blank) = idle
//   IO   lane: digits = checkpoint id currently arriving at global IO

#include <cstdio>
#include <string>

namespace {

struct Lanes {
  std::string host;
  std::string ndp;
  std::string io;
};

// Small synchronous simulation in slot units. Local interval = 6 slots,
// local commit = 1 slot, host IO commit = 8 slots, NDP drain = 8 slots.
constexpr int kInterval = 6;
constexpr int kLocalCommit = 1;
constexpr int kIoSlots = 8;
constexpr int kSlots = 64;

Lanes run_host(int io_every) {
  Lanes lanes;
  int phase = 0;       // position within the compute interval
  int commit_left = 0;
  int io_left = 0;
  int ckpt = 0;
  int io_ckpt = 0;
  for (int t = 0; t < kSlots; ++t) {
    if (io_left > 0) {
      lanes.host += 'I';
      lanes.ndp += ' ';
      lanes.io += std::to_string(io_ckpt % 10);
      --io_left;
      continue;
    }
    if (commit_left > 0) {
      lanes.host += 'L';
      lanes.ndp += ' ';
      lanes.io += ' ';
      if (--commit_left == 0) {
        ++ckpt;
        if (io_every > 0 && ckpt % io_every == 0) {
          io_left = kIoSlots;
          io_ckpt = ckpt;
        }
      }
      continue;
    }
    lanes.host += 'c';
    lanes.ndp += ' ';
    lanes.io += ' ';
    if (++phase == kInterval) {
      phase = 0;
      commit_left = kLocalCommit;
    }
  }
  return lanes;
}

Lanes run_ndp() {
  Lanes lanes;
  int phase = 0;
  int commit_left = 0;
  int ckpt = 0;
  int drain_left = 0;
  int drain_ckpt = 0;
  int pending = 0;
  for (int t = 0; t < kSlots; ++t) {
    const bool host_commit = commit_left > 0;
    if (host_commit) {
      lanes.host += 'L';
      if (--commit_left == 0) {
        ++ckpt;
        pending = ckpt;  // notify the NDP; newest wins
      }
    } else {
      lanes.host += 'c';
      if (++phase == kInterval) {
        phase = 0;
        commit_left = kLocalCommit;
      }
    }
    // NDP lane: paused while the host writes; otherwise drains.
    if (drain_left == 0 && pending > 0) {
      drain_ckpt = pending;
      pending = 0;
      drain_left = kIoSlots;
    }
    if (drain_left > 0) {
      if (host_commit) {
        lanes.ndp += '.';  // NVM bandwidth yielded to the host
        lanes.io += ' ';
      } else {
        lanes.ndp += '#';
        lanes.io += std::to_string(drain_ckpt % 10);
        --drain_left;
      }
    } else {
      lanes.ndp += ' ';
      lanes.io += ' ';
    }
  }
  return lanes;
}

void print(const char* title, const Lanes& lanes, const char* middle) {
  std::printf("%s\n", title);
  std::printf("  HOST %s\n", lanes.host.c_str());
  std::printf("  %s %s\n", middle, lanes.ndp.c_str());
  std::printf("  I/O  %s\n\n", lanes.io.c_str());
}

}  // namespace

int main() {
  std::puts("Figure 3: time-line of two-level checkpointing (one column =");
  std::puts("one slot; local interval 6, local commit 1, IO drain 8)\n");

  print("(a) without NDP - the host stalls on every IO checkpoint:",
        run_host(/*io_every=*/3), "    ");
  print("(b) with NDP - the drain overlaps compute; the host only ever\n"
        "    pauses for the 1-slot local commits:",
        run_ndp(), "NDP ");

  std::puts("Read: in (a) the HOST lane shows 8-slot 'I' stalls; in (b)");
  std::puts("the same IO traffic appears on the NDP/I-O lanes while the");
  std::puts("HOST lane stays on 'c'/'L' - checkpoints still reach IO, at");
  std::puts("the same link rate, without interrupting the application.");
  return 0;
}
