// Microbenchmarks: codec throughput on mini-app checkpoint data (google-
// benchmark). Reports bytes/second for compression and decompression per
// codec/level, the numbers that feed the Table 3 core-count sizing.

#include <benchmark/benchmark.h>

#include "compress/codec.hpp"
#include "workloads/miniapp.hpp"

namespace {

using ndpcr::Bytes;

const Bytes& checkpoint_data() {
  static const Bytes data = [] {
    auto app = ndpcr::workloads::make_miniapp("minife", 1u << 20, 42);
    app->step();
    return app->checkpoint();
  }();
  return data;
}

void compress_bench(benchmark::State& state, const char* name, int level) {
  const auto codec = ndpcr::compress::make_codec(name, level);
  const Bytes& data = checkpoint_data();
  std::size_t compressed = 0;
  for (auto _ : state) {
    Bytes out = codec->compress(data);
    compressed = out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
  state.counters["factor"] =
      ndpcr::compress::Codec::compression_factor(data.size(), compressed);
}

void decompress_bench(benchmark::State& state, const char* name, int level) {
  const auto codec = ndpcr::compress::make_codec(name, level);
  const Bytes& data = checkpoint_data();
  const Bytes packed = codec->compress(data);
  for (auto _ : state) {
    Bytes out = codec->decompress(packed);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}

}  // namespace

#define NDPCR_CODEC_BENCH(name, level)                               \
  BENCHMARK_CAPTURE(compress_bench, name##_l##level, #name, level);  \
  BENCHMARK_CAPTURE(decompress_bench, name##_l##level, #name, level)

NDPCR_CODEC_BENCH(nlz4, 1);
NDPCR_CODEC_BENCH(ngzip, 1);
NDPCR_CODEC_BENCH(ngzip, 6);
NDPCR_CODEC_BENCH(nbzip2, 1);
NDPCR_CODEC_BENCH(nxz, 1);
BENCHMARK_CAPTURE(compress_bench, rle_l1, "rle", 1);
BENCHMARK_CAPTURE(compress_bench, null_l0, "null", 0);

BENCHMARK_MAIN();
