// Microbenchmark for the failure/cluster simulator (docs/SIM.md):
//
//   failure_engine   event throughput at N in {1k, 10k, 100k, 1M} nodes
//                    for the pre-PR heap baseline (kept verbatim below),
//                    the shared DES on the binary heap, the DES on the
//                    calendar queue, and the memoryless superposition
//                    fast path; speedup is vs the pinned baseline at the
//                    same N
//   scenario         the widened scenario space at 100k nodes through
//                    the calendar engine: Weibull inter-arrivals,
//                    cascades, rack outages under both partner
//                    placements
//   replicates       run_failure_replicates serial vs the engine pool
//                    (honest ~1x on a single-core host), with the
//                    pool-invariant aggregate printed from each leg
//   guard            host-relative throughput ratios - the rows
//                    tools/bench_diff gates with --fail-on-regress so
//                    future PRs can't silently regress the simulator
//
//   --smoke 1   tiny sizes (CI); also the `perf` ctest label
//   --guard 1   re-measure only the guard ratios (quick) - the ctest
//               regression pair diffs this against BENCH_cluster.json
//   --csv PATH  structured output (default BENCH_cluster.json)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/failure_analysis.hpp"
#include "cluster/replicates.hpp"
#include "common/rng.hpp"
#include "exec/task_pool.hpp"

using namespace ndpcr;
using namespace ndpcr::cluster;

namespace {

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double best_seconds(int trials, const std::function<void()>& fn) {
  double best = 1e300;
  for (int t = 0; t < std::max(trials, 1); ++t) {
    best = std::min(best, seconds_of(fn));
  }
  return best;
}

// Best-of-N with the candidates interleaved per round, so every engine
// samples the same sequence of machine states (turbo/throttle drift on
// a shared host skews a ratio when the two sides run minutes apart).
// Each timed run is preceded by >=5ms of untimed warmup passes: the
// engines evict each other's working sets and flip the core's AVX
// frequency license, and those transitions take milliseconds to settle
// - a sub-millisecond kernel timed right after a scalar neighbour
// otherwise never reaches steady state. The rows compare steady-state
// throughput, not the neighbour's pollution.
std::vector<double> best_seconds_interleaved(
    int trials, const std::vector<std::function<void()>>& fns) {
  std::vector<double> best(fns.size(), 1e300);
  for (int t = 0; t < std::max(trials, 1); ++t) {
    for (std::size_t i = 0; i < fns.size(); ++i) {
      const auto w0 = std::chrono::steady_clock::now();
      do {
        fns[i]();
      } while (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             w0)
                   .count() < 5e-3);
      // Three timed samples per round: the later ones run deep in the
      // warmed state, and the min survives.
      for (int k = 0; k < 3; ++k) {
        best[i] = std::min(best[i], seconds_of(fns[i]));
      }
    }
  }
  return best;
}

// The pre-PR analyze_failures, verbatim (std::priority_queue over AoS
// events, log1p exponentials): the pinned baseline the >=50x acceptance
// criterion is measured against. Do not modernize this copy.
struct BaselineResult {
  std::uint64_t failures = 0;
  std::uint64_t local_recoverable = 0;
  std::uint64_t io_required = 0;
};

BaselineResult heap_baseline(std::uint32_t node_count, double node_mttf,
                             double rebuild_time,
                             std::uint64_t target_failures,
                             std::uint64_t seed) {
  Rng rng(seed);
  const std::uint32_t n = node_count;
  struct Event {
    double time;
    std::uint32_t node;
    bool operator>(const Event& o) const { return time > o.time; }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  for (std::uint32_t i = 0; i < n; ++i) {
    events.push({rng.exponential(node_mttf), i});
  }
  std::vector<double> rebuilding_until(n, 0.0);
  BaselineResult result;
  double now = 0.0;
  while (result.failures < target_failures) {
    const Event ev = events.top();
    events.pop();
    now = ev.time;
    ++result.failures;
    const std::uint32_t partner = (ev.node + 1) % n;
    if (rebuilding_until[partner] > now) {
      ++result.io_required;
    } else {
      ++result.local_recoverable;
    }
    rebuilding_until[ev.node] = now + rebuild_time;
    events.push({now + rng.exponential(node_mttf), ev.node});
  }
  return result;
}

constexpr double kMttf = 5.0 * 365.25 * 86400;

FailureAnalysisConfig base_config(std::uint32_t nodes,
                                  std::uint64_t failures,
                                  std::uint64_t seed) {
  FailureAnalysisConfig cfg;
  cfg.node_count = nodes;
  cfg.node_mttf = kMttf;
  cfg.rebuild_time = 600.0;
  cfg.target_failures = failures;
  cfg.seed = seed;
  return cfg;
}

std::string fmt(const char* spec, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, spec, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args;
  if (!args.parse(argc, argv)) return 2;
  const bool smoke = args.number("smoke", 0) > 0;
  const bool guard_only = args.number("guard", 0) > 0;
  const std::uint64_t seed = args.seed_or(20260808);
  const int trials = args.trials_or(smoke || guard_only ? 1 : 3);
  if (args.csv.empty()) args.csv = "BENCH_cluster.json";

  bench::BenchReport report("micro_cluster", args, seed, trials,
                            smoke ? "smoke" : guard_only ? "guard" : "full");

  // ---- guard ratios: measured in every mode (cheap) -------------------
  // Host-relative, so the regression gate survives machine changes: each
  // row is (this engine's failures/sec) / (pre-PR baseline failures/sec)
  // at guard scale. bench_diff --fail-on-regress trips when a ratio
  // moves by more than the bound in either direction.
  {
    const std::uint32_t nodes = smoke ? 10'000 : 100'000;
    const std::uint64_t fails = smoke ? 20'000 : 100'000;
    auto cal_cfg = base_config(nodes, fails, seed);
    cal_cfg.engine = FailureEngine::kCalendar;
    auto sup_cfg = base_config(nodes, fails, seed);
    sup_cfg.engine = FailureEngine::kSuperposition;
    const auto walls = best_seconds_interleaved(
        std::max(trials, 3),
        {[&] { heap_baseline(nodes, kMttf, 600.0, fails, seed); },
         [&] { analyze_failures(cal_cfg); },
         [&] { analyze_failures(sup_cfg); }});
    report.add_section("guard", {"ratio", "value"});
    report.add_row({"calendar_vs_heap", fmt("%.2f", walls[0] / walls[1])});
    report.add_row({"super_vs_heap", fmt("%.2f", walls[0] / walls[2])});
  }

  if (guard_only) {
    report.finish();
    return 0;
  }

  // ---- failure_engine: throughput sweep -------------------------------
  {
    report.add_section("failure_engine", {"nodes", "engine", "wall_s",
                                          "fails_per_s", "speedup"});
    std::vector<std::uint32_t> sizes = smoke
                                           ? std::vector<std::uint32_t>{1'000}
                                           : std::vector<std::uint32_t>{
                                                 1'000, 10'000, 100'000,
                                                 1'000'000};
    for (const std::uint32_t nodes : sizes) {
      const std::uint64_t fails = smoke ? 10'000 : 100'000;
      auto heap_cfg = base_config(nodes, fails, seed);
      heap_cfg.engine = FailureEngine::kHeap;
      auto cal_cfg = base_config(nodes, fails, seed);
      cal_cfg.engine = FailureEngine::kCalendar;
      auto sup_cfg = base_config(nodes, fails, seed);
      sup_cfg.engine = FailureEngine::kSuperposition;
      const auto walls = best_seconds_interleaved(
          trials,
          {[&] { heap_baseline(nodes, kMttf, 600.0, fails, seed); },
           [&] { analyze_failures(heap_cfg); },
           [&] { analyze_failures(cal_cfg); },
           [&] { analyze_failures(sup_cfg); }});
      const char* names[] = {"heap_baseline", "heap_des", "calendar",
                             "superposition"};
      for (std::size_t i = 0; i < 4; ++i) {
        report.add_row({std::to_string(nodes), names[i],
                        fmt("%.4f", walls[i]),
                        fmt("%.0f", static_cast<double>(fails) / walls[i]),
                        fmt("%.2f", walls[0] / walls[i])});
      }
    }
  }

  // ---- scenario: the widened space at scale ---------------------------
  {
    report.add_section("scenario",
                       {"scenario", "failures", "p_local", "p_cascade",
                        "rack_outages", "wall_s", "fails_per_s"});
    const std::uint32_t nodes = smoke ? 1'000 : 100'000;
    const std::uint64_t fails = smoke ? 10'000 : 100'000;
    auto add = [&](const char* name, FailureAnalysisConfig cfg) {
      FailureAnalysisResult r;
      const double wall = best_seconds(trials, [&] {
        r = analyze_failures(cfg);
      });
      report.add_row({name, std::to_string(r.failures),
                      fmt("%.4f", r.p_local()), fmt("%.4f", r.p_cascade()),
                      std::to_string(r.rack_outages), fmt("%.4f", wall),
                      fmt("%.0f", static_cast<double>(r.failures) / wall)});
    };
    add("exponential", base_config(nodes, fails, seed));
    {
      auto cfg = base_config(nodes, fails, seed);
      cfg.distribution = FailureDistribution::kWeibull;
      cfg.weibull_shape = 0.7;
      add("weibull_0.7", cfg);
    }
    {
      auto cfg = base_config(nodes, fails, seed);
      cfg.cascade.probability = 0.1;
      add("cascade_0.1", cfg);
    }
    {
      auto cfg = base_config(nodes, fails, seed);
      cfg.racks.rack_size = 64;
      cfg.racks.outage_mttf = 50.0 * kMttf;
      add("racks_ring", cfg);
      cfg.placement = PartnerPlacement::kCrossRack;
      add("racks_cross", cfg);
    }
  }

  // ---- replicates: serial vs engine pool ------------------------------
  {
    report.add_section("replicates", {"mode", "replicates", "total_failures",
                                      "p_local", "wall_s"});
    auto base = base_config(smoke ? 1'000 : 100'000,
                            smoke ? 5'000 : 100'000, seed);
    const int replicates = smoke ? 2 : 8;
    exec::TaskPool serial(1);
    FailureReplicateSummary sum;
    const double serial_wall = best_seconds(trials, [&] {
      sum = run_failure_replicates(base, replicates, &serial);
    });
    report.add_row({"serial", std::to_string(replicates),
                    std::to_string(sum.total_failures),
                    fmt("%.4f", sum.p_local()), fmt("%.4f", serial_wall)});
    const double pool_wall = best_seconds(trials, [&] {
      sum = run_failure_replicates(base, replicates, nullptr);
    });
    report.add_row({"pool", std::to_string(replicates),
                    std::to_string(sum.total_failures),
                    fmt("%.4f", sum.p_local()), fmt("%.4f", pool_wall)});
  }

  report.finish();
  return 0;
}
