#pragma once

// Shared helpers for the figure-reproduction harnesses: the common
// command-line surface (--trials/--seed/--threads/--csv), a stopwatch for
// run metadata, and re-exports of the breakdown table rows that now live
// in common/breakdown_table.hpp (kept here so harnesses keep writing
// bench::breakdown_row).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/breakdown_table.hpp"
#include "common/table.hpp"
#include "exec/reporter.hpp"
#include "exec/task_pool.hpp"

namespace ndpcr::bench {

using table::breakdown_header;
using table::breakdown_row;
using table::normalized_header;
using table::normalized_row;

// The engine flags every figure binary understands:
//   --trials N    Monte-Carlo trials per point (harness default if absent)
//   --seed S      base RNG seed
//   --threads T   engine threads (0/absent = NDPCR_THREADS or hardware)
//   --csv PATH    write the Reporter's structured output ("-" = stdout;
//                 a .json suffix selects JSON, anything else CSV)
//   --trace PATH  harnesses that support tracing write a Chrome-trace
//                 JSON here (docs/OBSERVABILITY.md); ignored elsewhere
//   --metrics PATH  likewise for a metrics snapshot (Reporter semantics)
// Unknown "--key value" pairs are collected for harness-specific options
// (e.g. table2's --bytes-per-app).
struct BenchArgs {
  int trials = 0;  // 0 = keep the harness default
  std::uint64_t seed = 0;
  bool has_seed = false;
  unsigned threads = 0;
  std::string csv;
  std::string trace;
  std::string metrics;
  std::map<std::string, std::string> extra;

  // Parses argv; on --help (or a stray non-flag token) prints usage and
  // returns false. Applies --threads to the global engine pool.
  bool parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string key = argv[i];
      if (key == "--help" || key == "-h" || key.rfind("--", 0) != 0 ||
          i + 1 >= argc) {
        std::fprintf(stderr,
                     "usage: %s [--trials N] [--seed S] [--threads T] "
                     "[--csv PATH] [--trace PATH] [--metrics PATH] "
                     "[--<harness-option> VALUE ...]\n",
                     argv[0]);
        return false;
      }
      const std::string value = argv[++i];
      if (key == "--trials") {
        trials = std::atoi(value.c_str());
      } else if (key == "--seed") {
        seed = std::strtoull(value.c_str(), nullptr, 0);
        has_seed = true;
      } else if (key == "--threads") {
        threads = static_cast<unsigned>(std::strtoul(value.c_str(),
                                                     nullptr, 10));
      } else if (key == "--csv") {
        csv = value;
      } else if (key == "--trace") {
        trace = value;
      } else if (key == "--metrics") {
        metrics = value;
      } else {
        extra[key.substr(2)] = value;
      }
    }
    if (threads > 0) exec::set_global_threads(threads);
    return true;
  }

  [[nodiscard]] int trials_or(int fallback) const {
    return trials > 0 ? trials : fallback;
  }
  [[nodiscard]] std::uint64_t seed_or(std::uint64_t fallback) const {
    return has_seed ? seed : fallback;
  }
  [[nodiscard]] double number(const std::string& key, double fallback) const {
    const auto it = extra.find(key);
    return it == extra.end() ? fallback
                             : std::strtod(it->second.c_str(), nullptr);
  }
};

// A Reporter pre-stamped with the run metadata, plus the finish() step
// that prints the ASCII tables and writes the structured form.
class BenchReport {
 public:
  BenchReport(std::string bench_name, const BenchArgs& args,
              std::uint64_t seed, int trials, std::string config)
      : reporter_({std::move(bench_name), seed, trials,
                   exec::global_pool().thread_count(), std::move(config)}),
        csv_(args.csv),
        start_(std::chrono::steady_clock::now()) {}

  exec::Reporter& reporter() { return reporter_; }
  void add_section(std::string name, std::vector<std::string> header) {
    reporter_.add_section(std::move(name), std::move(header));
  }
  void add_row(std::vector<std::string> cells) {
    reporter_.add_row(std::move(cells));
  }

  // Print every section as the classic fixed-width tables and, when
  // --csv was given, emit the structured rows as well. An unwritable
  // --csv path must not abort the process after a long run: the ASCII
  // output above already reached the user, so report and exit cleanly.
  void finish() {
    reporter_.set_wall_seconds(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count());
    std::fputs(reporter_.ascii().c_str(), stdout);
    if (csv_.empty()) return;
    try {
      reporter_.write(csv_);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      std::exit(1);
    }
  }

 private:
  exec::Reporter reporter_;
  std::string csv_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ndpcr::bench
