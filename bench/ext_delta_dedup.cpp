// Extension (conclusion of the paper): NDP comparing consecutive
// checkpoints and neighboring ranks' checkpoints. Two sections:
//
//   1. Per-mini-app ingredients: the delta factor between consecutive
//      checkpoints (incremental checkpointing, [22]), delta composed with
//      ngzip(1), and the cross-rank CDC dedup factor over a 4-rank
//      coordinated checkpoint ([23, 24]).
//
//   2. The integrated commit path (docs/DELTA.md): a 10-commit 4-rank
//      sparse-update workload driven through MultilevelManager twice -
//      full images vs delta chains + IO block dedup - comparing the bytes
//      that actually reach the IO level, plus each mini-app through the
//      same two managers.
//
// The model what-if at the end shows what the measured delta factor does
// to the NDP configuration's progress rate as an effective IO reduction.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/dedup_level.hpp"
#include "ckpt/multilevel.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "compress/codec.hpp"
#include "delta/delta.hpp"
#include "model/evaluator.hpp"
#include "workloads/miniapp.hpp"

using namespace ndpcr;

namespace {

ckpt::MultilevelConfig manager_config(bool incremental) {
  ckpt::MultilevelConfig mc;
  mc.node_count = 4;
  mc.nvm_capacity_bytes = 64ull << 20;
  mc.partner_every = 0;
  mc.io_every = 1;
  if (incremental) {
    mc.delta.enabled = true;
    mc.delta.chain_length = 9;  // one full anchor per 10-commit window
    mc.delta.block_bytes = 4096;
    mc.delta.io_dedup = true;
    mc.delta.cdc = {2048, 4096, 8192};
  }
  return mc;
}

// Commit one 10-step history through managers with the incremental path
// off and on; returns {off_io_bytes, on_io_bytes, on_stats}.
struct PathComparison {
  std::size_t off_bytes = 0;
  std::size_t on_bytes = 0;
  ckpt::DataPathStats on;
};

PathComparison compare_paths(const std::vector<std::vector<Bytes>>& history) {
  ckpt::MultilevelManager off(manager_config(false));
  ckpt::MultilevelManager on(manager_config(true));
  for (const auto& payloads : history) {
    const std::vector<ByteSpan> views(payloads.begin(), payloads.end());
    off.commit(views);
    on.commit(views);
  }
  return {off.data_path().io_bytes_written, on.data_path().io_bytes_written,
          on.data_path()};
}

// Sparse-update workload: each rank rewrites one contiguous ~0.5% region
// per commit - the checkpoint regime incremental checkpointing targets.
std::vector<std::vector<Bytes>> sparse_history(std::size_t bytes,
                                               std::uint32_t commits) {
  Rng rng(4242);
  std::vector<Bytes> state;
  for (std::uint32_t r = 0; r < 4; ++r) {
    Bytes p(bytes);
    for (auto& b : p) b = static_cast<std::byte>(rng.next_below(256));
    state.push_back(std::move(p));
  }
  std::vector<std::vector<Bytes>> history;
  for (std::uint32_t c = 0; c < commits; ++c) {
    for (auto& p : state) {
      const std::size_t span = bytes / 200;
      const std::size_t at = rng.next_below(bytes - span);
      for (std::size_t i = 0; i < span; ++i) {
        p[at + i] = static_cast<std::byte>(rng.next_below(256));
      }
    }
    history.push_back(state);
  }
  return history;
}

std::vector<std::vector<Bytes>> miniapp_history(const std::string& name,
                                                std::uint32_t commits) {
  std::vector<std::unique_ptr<workloads::MiniApp>> apps;
  for (std::uint32_t r = 0; r < 4; ++r) {
    apps.push_back(workloads::make_miniapp(name, 256 * 1024, 300 + r));
  }
  std::vector<std::vector<Bytes>> history;
  for (std::uint32_t c = 0; c < commits; ++c) {
    std::vector<Bytes> payloads;
    for (auto& app : apps) {
      app->step();
      payloads.push_back(app->checkpoint());
    }
    history.push_back(std::move(payloads));
  }
  return history;
}

}  // namespace

int main() {
  using namespace ndpcr::delta;

  const auto gzip1 = compress::make_codec("ngzip", 1);
  DeltaCodec codec(4096);

  std::puts("Consecutive-checkpoint delta factors (block 4 KiB):\n");
  TextTable table({"Mini-app", "Delta factor", "Delta+ngzip(1)",
                   "ngzip(1) alone", "Cross-rank dedup"});
  double avg_combined = 0.0;
  for (const auto& name : workloads::miniapp_names()) {
    auto app = workloads::make_miniapp(name, 1 << 20, 101);
    app->step();
    const Bytes first = app->checkpoint();
    app->step();
    const Bytes second = app->checkpoint();

    DeltaStats stats;
    const Bytes delta_stream = codec.encode(first, second, &stats);
    const Bytes delta_gz = gzip1->compress(delta_stream);
    const double combined =
        1.0 - static_cast<double>(delta_gz.size()) /
                  static_cast<double>(second.size());
    const Bytes plain_gz = gzip1->compress(second);
    const double plain =
        compress::Codec::compression_factor(second.size(), plain_gz.size());

    // Cross-rank dedup: 4 ranks of the same app, one coordinated
    // checkpoint planned through the integrated CDC block index.
    ckpt::DedupIndex dedup(CdcParams{2048, 4096, 8192});
    for (std::uint32_t r = 0; r < 4; ++r) {
      auto rank_app = workloads::make_miniapp(name, 256 * 1024, 200 + r);
      rank_app->step();
      const Bytes image = rank_app->checkpoint();
      dedup.admit(dedup.plan(image), r, 1);
    }
    const double dedup_factor =
        dedup.logical_bytes() == 0
            ? 0.0
            : 1.0 - static_cast<double>(dedup.stored_bytes()) /
                        static_cast<double>(dedup.logical_bytes());

    table.add_row({name, fmt_percent(stats.delta_factor(), 1),
                   fmt_percent(combined, 1), fmt_percent(plain, 1),
                   fmt_percent(dedup_factor, 1)});
    avg_combined += combined / 7.0;
  }
  std::fputs(table.str().c_str(), stdout);

  // Integrated commit path: bytes reaching the IO level over a 10-commit
  // 4-rank run, full images vs delta chains + IO block dedup.
  std::puts("\nIntegrated path, 10 commits x 4 ranks (docs/DELTA.md):\n");
  TextTable integ({"Workload", "IO bytes (full)", "IO bytes (delta+dedup)",
                   "Reduction", "Delta factor", "Dedup hits"});
  {
    const auto history = sparse_history(1 << 20, 10);
    const auto cmp = compare_paths(history);
    integ.add_row({"sparse 0.5%", fmt_si_bytes((double)cmp.off_bytes),
                   fmt_si_bytes((double)cmp.on_bytes),
                   fmt_fixed(static_cast<double>(cmp.off_bytes) /
                           static_cast<double>(cmp.on_bytes),
                       1) + "x",
                   fmt_percent(cmp.on.delta_factor(), 1),
                   fmt_percent(cmp.on.dedup_hit_rate(), 1)});
  }
  for (const auto& name : workloads::miniapp_names()) {
    const auto cmp = compare_paths(miniapp_history(name, 10));
    integ.add_row({name, fmt_si_bytes((double)cmp.off_bytes), fmt_si_bytes((double)cmp.on_bytes),
                   fmt_fixed(static_cast<double>(cmp.off_bytes) /
                           static_cast<double>(cmp.on_bytes),
                       1) + "x",
                   fmt_percent(cmp.on.delta_factor(), 1),
                   fmt_percent(cmp.on.dedup_hit_rate(), 1)});
  }
  std::fputs(integ.str().c_str(), stdout);

  // Model what-if: effective IO reduction = measured delta+gzip factor.
  model::CrScenario scenario;
  model::SimOptions opt;
  opt.total_work = 200.0 * 3600;
  opt.trials = 2;
  model::Evaluator ev(scenario, opt);
  const model::CrConfig gzip_only{.kind = model::ConfigKind::kLocalIoNdp,
                                  .compression_factor = 0.73,
                                  .p_local_recovery = 0.85};
  const model::CrConfig with_delta{.kind = model::ConfigKind::kLocalIoNdp,
                                   .compression_factor = avg_combined,
                                   .p_local_recovery = 0.85};
  std::printf("\nNDP progress rate with plain compression (cf 73%%): %s\n",
              fmt_percent(ev.evaluate(gzip_only).progress_rate(), 1).c_str());
  std::printf("NDP progress rate with delta+compression (cf %s): %s\n",
              fmt_percent(avg_combined, 1).c_str(),
              fmt_percent(ev.evaluate(with_delta).progress_rate(), 1).c_str());
  std::puts("\nShape check: consecutive checkpoints are highly redundant");
  std::puts("for the solver apps (index structures and slowly-moving");
  std::puts("state), so the integrated delta+dedup commit path moves a");
  std::puts("fraction of the full-image bytes to IO - the gain the");
  std::puts("paper's conclusion anticipates from NDP dedup.");
  return 0;
}
