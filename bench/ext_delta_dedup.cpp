// Extension (conclusion of the paper): NDP comparing consecutive
// checkpoints and neighboring ranks' checkpoints. Measures, per mini-app:
//   * the delta factor between consecutive checkpoints (incremental
//     checkpointing, [22]),
//   * delta composed with ngzip(1) (the NDP would run both),
//   * the cross-rank dedup factor over a 4-rank coordinated checkpoint
//     ([23, 24]),
// and shows what the measured delta factor would do to the NDP
// configuration's progress rate if used as the effective IO reduction.

#include <cstdio>

#include "common/table.hpp"
#include "compress/codec.hpp"
#include "delta/delta.hpp"
#include "model/evaluator.hpp"
#include "workloads/miniapp.hpp"

int main() {
  using namespace ndpcr;
  using namespace ndpcr::delta;

  const auto gzip1 = compress::make_codec("ngzip", 1);
  DeltaCodec codec(4096);

  std::puts("Consecutive-checkpoint delta factors (block 4 KiB):\n");
  TextTable table({"Mini-app", "Delta factor", "Delta+ngzip(1)",
                   "ngzip(1) alone", "Cross-rank dedup"});
  double avg_combined = 0.0;
  for (const auto& name : workloads::miniapp_names()) {
    auto app = workloads::make_miniapp(name, 1 << 20, 101);
    app->step();
    const Bytes first = app->checkpoint();
    app->step();
    const Bytes second = app->checkpoint();

    DeltaStats stats;
    const Bytes delta_stream = codec.encode(first, second, &stats);
    const Bytes delta_gz = gzip1->compress(delta_stream);
    const double combined =
        1.0 - static_cast<double>(delta_gz.size()) /
                  static_cast<double>(second.size());
    const Bytes plain_gz = gzip1->compress(second);
    const double plain =
        compress::Codec::compression_factor(second.size(), plain_gz.size());

    // Cross-rank dedup: 4 ranks of the same app, one coordinated
    // checkpoint into the dedup store.
    DedupStore dedup(4096);
    for (std::uint32_t r = 0; r < 4; ++r) {
      auto rank_app = workloads::make_miniapp(name, 256 * 1024, 200 + r);
      rank_app->step();
      const Bytes image = rank_app->checkpoint();
      dedup.put(r, 1, image);
    }

    table.add_row({name, fmt_percent(stats.delta_factor(), 1),
                   fmt_percent(combined, 1), fmt_percent(plain, 1),
                   fmt_percent(dedup.dedup_factor(), 1)});
    avg_combined += combined / 7.0;
  }
  std::fputs(table.str().c_str(), stdout);

  // Model what-if: effective IO reduction = measured delta+gzip factor.
  model::CrScenario scenario;
  model::SimOptions opt;
  opt.total_work = 200.0 * 3600;
  opt.trials = 2;
  model::Evaluator ev(scenario, opt);
  const model::CrConfig gzip_only{.kind = model::ConfigKind::kLocalIoNdp,
                                  .compression_factor = 0.73,
                                  .p_local_recovery = 0.85};
  const model::CrConfig with_delta{.kind = model::ConfigKind::kLocalIoNdp,
                                   .compression_factor = avg_combined,
                                   .p_local_recovery = 0.85};
  std::printf("\nNDP progress rate with plain compression (cf 73%%): %s\n",
              fmt_percent(ev.evaluate(gzip_only).progress_rate(), 1).c_str());
  std::printf("NDP progress rate with delta+compression (cf %s): %s\n",
              fmt_percent(avg_combined, 1).c_str(),
              fmt_percent(ev.evaluate(with_delta).progress_rate(), 1).c_str());
  std::puts("\nShape check: consecutive checkpoints are highly redundant");
  std::puts("for the solver apps (index structures and slowly-moving");
  std::puts("state), so delta+compression beats compression alone - the");
  std::puts("gain the paper's conclusion anticipates from NDP dedup.");
  return 0;
}
