// Chaos soak: hundreds of seeded fault schedules through the multilevel
// C/R data path, spanning both partner schemes, several IO codecs and
// IO-outage windows, parallelised across the engine pool. The harness
// fails (exit 1) if any schedule violates a recovery invariant (see
// docs/FAULTS.md) or if the suite fingerprint differs between a 1-thread
// and an N-thread execution of the same schedules.
//
// A trace-validation pass reruns a handful of schedules with a Tracer
// attached and fails the harness if any produced trace is not parseable
// JSON (the exporter's output is part of the contract, docs/OBSERVABILITY.md).
//
// An equivalence leg closes the soak: a rotation of crash-anywhere
// restart-equivalence sweeps (docs/EQUIVALENCE.md) across the proxy
// kernels and payload modes, half of them under seeded device faults.
// Any crash point that fails to restart bit-identically fails the
// harness.
//
//   --schedules N   seeded schedules to run (default 240)
//   --seed S        base seed (schedule k uses sub_seed(S, k))
//   --commits N     commits per schedule (default 24)
//   --equiv N       equivalence sweeps to run (default 6)
//   --svc N         multi-tenant service soak leg (docs/SERVICE.md): N
//                   interleaved tenant sessions under seeded faults, at
//                   pool sizes 1/2/8 with bit-identical reports required
//                   (default 0 = off; CI uses --svc 256)
//   --csv PATH      per-schedule structured rows
//   --trace PATH    write the first validation schedule's Chrome trace

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/json.hpp"
#include "exec/task_pool.hpp"
#include "faults/chaos.hpp"
#include "harness/equivalence.hpp"
#include "obs/trace.hpp"
#include "svc/svc_chaos.hpp"

using namespace ndpcr;

namespace {

std::vector<faults::ChaosConfig> build_schedules(std::uint64_t base_seed,
                                                 std::size_t count,
                                                 std::uint32_t commits) {
  // Rotate the grid dimensions by index so every (scheme, codec, outage)
  // combination appears throughout the seed range.
  const compress::CodecId codecs[] = {
      compress::CodecId::kNull, compress::CodecId::kRle,
      compress::CodecId::kLz4Style, compress::CodecId::kDeflateStyle};
  std::vector<faults::ChaosConfig> configs;
  configs.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    faults::ChaosConfig cfg;
    cfg.seed = exec::sub_seed(base_seed, k);
    cfg.commits = commits;
    cfg.scheme = (k % 2 == 0) ? ckpt::PartnerScheme::kCopy
                              : ckpt::PartnerScheme::kXorGroup;
    cfg.io_codec = codecs[(k / 2) % 4];
    cfg.io_outage = (k % 5) == 4;
    configs.push_back(cfg);
  }
  return configs;
}

const char* scheme_name(ckpt::PartnerScheme scheme) {
  return scheme == ckpt::PartnerScheme::kCopy ? "copy" : "xor";
}

const char* codec_name(compress::CodecId id) {
  switch (id) {
    case compress::CodecId::kNull:
      return "null";
    case compress::CodecId::kRle:
      return "rle";
    case compress::CodecId::kLz4Style:
      return "nlz4";
    case compress::CodecId::kDeflateStyle:
      return "ngzip";
    default:
      return "?";
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args;
  if (!args.parse(argc, argv)) return 2;
  const std::uint64_t seed = args.seed_or(20170101);
  const auto schedules =
      static_cast<std::size_t>(args.number("schedules", 240));
  const auto commits =
      static_cast<std::uint32_t>(args.number("commits", 24));

  const auto configs = build_schedules(seed, schedules, commits);
  auto& pool = exec::global_pool();
  const auto reports = faults::run_chaos_suite(configs, pool);
  const std::uint32_t fingerprint = faults::suite_fingerprint(reports);

  // Thread-count invariance: the same schedules on a single thread must
  // produce the identical suite fingerprint.
  exec::TaskPool serial(1);
  const auto serial_reports = faults::run_chaos_suite(configs, serial);
  const std::uint32_t serial_fingerprint =
      faults::suite_fingerprint(serial_reports);

  bench::BenchReport out(
      "chaos_soak", args, seed, static_cast<int>(schedules),
      "commits=" + std::to_string(commits));
  out.add_section("schedules",
                  {"seed", "scheme", "codec", "outage", "recoveries",
                   "unrecoverable", "quarantined", "repairs", "injected",
                   "violations"});
  std::uint64_t total_violations = 0;
  std::uint64_t total_injected = 0;
  std::uint64_t total_recoveries = 0;
  std::uint64_t total_unrecoverable = 0;
  for (std::size_t k = 0; k < reports.size(); ++k) {
    const auto& r = reports[k];
    total_violations += r.violations;
    total_injected += r.faults.injected();
    total_recoveries += r.recoveries;
    total_unrecoverable += r.unrecoverable;
    out.add_row({std::to_string(r.seed), scheme_name(configs[k].scheme),
                 codec_name(configs[k].io_codec),
                 configs[k].io_outage ? "yes" : "no",
                 std::to_string(r.recoveries),
                 std::to_string(r.unrecoverable),
                 std::to_string(r.health.local.quarantined +
                                r.health.partner.quarantined +
                                r.health.io.quarantined),
                 std::to_string(r.health.partner.repairs +
                                r.health.io.repairs),
                 std::to_string(r.faults.injected()),
                 std::to_string(r.violations)});
    for (const auto& note : r.violation_notes) {
      std::fprintf(stderr, "violation: %s\n", note.c_str());
    }
  }
  out.finish();

  std::printf("\n%zu schedules, %" PRIu64 " faults injected, %" PRIu64
              " recoveries, %" PRIu64 " unrecoverable, %" PRIu64
              " violations\n",
              reports.size(), total_injected, total_recoveries,
              total_unrecoverable, total_violations);
  std::printf("suite fingerprint %08x (%u threads) vs %08x (1 thread)\n",
              fingerprint, pool.thread_count(), serial_fingerprint);

  if (total_violations > 0) {
    std::fprintf(stderr, "FAIL: recovery invariants violated\n");
    return 1;
  }
  if (fingerprint != serial_fingerprint) {
    std::fprintf(stderr, "FAIL: fingerprint differs across thread counts\n");
    return 1;
  }

  // Trace-validation pass: a few schedules rerun serially (run_chaos_suite
  // stays untraced) with a Tracer attached; every export must be valid
  // JSON, and the traced rerun must not perturb the schedule's report.
  const std::size_t traced = std::min<std::size_t>(configs.size(), 6);
  for (std::size_t k = 0; k < traced; ++k) {
    obs::Tracer tracer;
    faults::ChaosConfig cfg = configs[k];
    cfg.trace = &tracer;
    const auto report = faults::run_chaos(cfg);
    if (report.fingerprint != reports[k].fingerprint) {
      std::fprintf(stderr,
                   "FAIL: tracing perturbed schedule seed %" PRIu64
                   " (%08x vs %08x)\n",
                   report.seed, report.fingerprint, reports[k].fingerprint);
      return 1;
    }
    const std::string json = tracer.chrome_json();
    if (!json_valid(json)) {
      std::fprintf(stderr,
                   "FAIL: schedule seed %" PRIu64
                   " produced an unparseable trace (%zu bytes)\n",
                   report.seed, json.size());
      return 1;
    }
    if (k == 0 && !args.trace.empty()) tracer.write(args.trace);
  }
  std::printf("trace validation: %zu schedules exported valid JSON\n",
              traced);

  // Equivalence leg: crash-anywhere sweeps rotating kernel and payload
  // mode; odd sweeps add a seeded device-fault schedule under the gates.
  const auto equiv_count = static_cast<std::size_t>(args.number("equiv", 6));
  const char* kernels[] = {"cg", "mg", "ft"};
  const harness::PayloadMode modes[] = {harness::PayloadMode::kFull,
                                        harness::PayloadMode::kDelta,
                                        harness::PayloadMode::kDedup};
  std::size_t equiv_points = 0;
  std::size_t equiv_failures = 0;
  for (std::size_t k = 0; k < equiv_count; ++k) {
    harness::EquivalenceConfig ec;
    ec.kernel = kernels[k % 3];
    ec.mode = modes[(k / 3) % 3];
    ec.node_count = 3;
    ec.iterations = 6;
    ec.cadence = 2;
    ec.state_bytes = 8 << 10;
    ec.seed = exec::sub_seed(seed ^ 0xE001ull, k);
    if (k % 2 == 1) {
      ec.rates.transient = 0.03;
      ec.rates.torn = 0.02;
      ec.rates.bitflip = 0.01;
      ec.fault_seed = exec::sub_seed(seed ^ 0xE002ull, k);
    }
    const auto report = harness::run_sweep(ec, 2);
    equiv_points += report.points_run;
    equiv_failures += report.failures;
    for (const auto& f : report.failed) {
      std::fprintf(stderr,
                   "equivalence violation: sweep %zu (%s/%s) point %zu: "
                   "%s\n",
                   k, ec.kernel.c_str(), harness::to_string(ec.mode),
                   f.point, f.failure.c_str());
    }
  }
  std::printf("equivalence: %zu sweeps, %zu crash points, %zu failures\n",
              equiv_count, equiv_points, equiv_failures);
  if (equiv_failures > 0) {
    std::fprintf(stderr, "FAIL: restart-equivalence violated\n");
    return 1;
  }

  // Service leg (docs/SERVICE.md): --svc N drives N interleaved tenant
  // sessions - heterogeneous QoS weights, quotas, codecs and delta
  // chains, half the tenants under seeded fault plans - through one
  // CheckpointService, at pool sizes 1, 2 and 8. Any cross-tenant
  // corruption (a tenant restarting bytes it never committed), any
  // report fingerprint differing across pool sizes, fails the harness.
  const auto svc_tenants = static_cast<std::uint32_t>(args.number("svc", 0));
  if (svc_tenants > 0) {
    std::uint32_t base_fingerprint = 0;
    svc::SvcChaosReport last;
    const std::size_t pools[] = {1, 2, 8};
    for (std::size_t i = 0; i < 3; ++i) {
      exec::TaskPool svc_pool(pools[i]);
      svc::SvcChaosConfig scfg;
      scfg.seed = exec::sub_seed(seed ^ 0x53C0ull, 0);
      scfg.tenants = svc_tenants;
      scfg.pool = &svc_pool;
      const auto report = svc::run_svc_chaos(scfg);
      for (const auto& note : report.violation_notes) {
        std::fprintf(stderr, "service violation: %s\n", note.c_str());
      }
      if (report.violations > 0) {
        std::fprintf(stderr,
                     "FAIL: %" PRIu64
                     " cross-tenant invariant violations (%u tenants, "
                     "%zu threads)\n",
                     report.violations, svc_tenants, pools[i]);
        return 1;
      }
      if (i == 0) {
        base_fingerprint = report.fingerprint;
      } else if (report.fingerprint != base_fingerprint) {
        std::fprintf(stderr,
                     "FAIL: service fingerprint differs at pool size %zu "
                     "(%08x vs %08x)\n",
                     pools[i], report.fingerprint, base_fingerprint);
        return 1;
      }
      last = report;
    }
    std::printf(
        "service: %u tenants x3 pool sizes, %" PRIu64 " staged, %" PRIu64
        " committed, %" PRIu64 " throttled, %" PRIu64 " denied, %" PRIu64
        "/%" PRIu64 " restores, %" PRIu64
        " faults injected, jain %.4f, fingerprint %08x\n",
        svc_tenants, last.staged, last.committed, last.throttled,
        last.denied_backpressure + last.denied_quota, last.restored,
        last.restarts, last.fault_injections, last.jain_io,
        base_fingerprint);
  }

  std::puts("all invariants held");
  return 0;
}
