// Figure 8: progress rate for five C/R configurations as the checkpoint
// size grows from 10% to 80% of node memory (14 -> 112 GB). MTTI fixed at
// 30 minutes, P(local) = 85%, cf = 73%.
//
//   L-15GBps + I/O-HC  multilevel + compression, 15 GB/s local NVM
//   L-15GBps + I/O-N   NDP, no compression, 15 GB/s
//   L-15GBps + I/O-NC  NDP + compression, 15 GB/s
//   L-2GBps  + I/O-N   NDP, no compression, 2 GB/s local NVM
//   L-2GBps  + I/O-NC  NDP + compression, 2 GB/s
//
// Engine flags: --trials/--seed/--threads/--csv (see bench_util.hpp).

#include <cstdio>

#include "bench_util.hpp"
#include "common/units.hpp"
#include "model/evaluator.hpp"

int main(int argc, char** argv) {
  using namespace ndpcr;
  using namespace ndpcr::model;
  using namespace ndpcr::units;

  bench::BenchArgs args;
  if (!args.parse(argc, argv)) return 2;

  const double p = 0.85;
  const double cf = 0.73;
  const double node_memory = bytes_from_gb(140);

  SimOptions opt;
  opt.total_work = 250.0 * 3600;
  opt.trials = args.trials_or(2);
  opt.seed = args.seed_or(opt.seed);

  struct Variant {
    const char* label;
    double local_bw;
    ConfigKind kind;
    double compression;
  };
  const Variant variants[] = {
      {"L-15GBps + I/O-HC", gbps(15), ConfigKind::kLocalIoHost, cf},
      {"L-15GBps + I/O-N", gbps(15), ConfigKind::kLocalIoNdp, 0.0},
      {"L-15GBps + I/O-NC", gbps(15), ConfigKind::kLocalIoNdp, cf},
      {"L-2GBps + I/O-N", gbps(2), ConfigKind::kLocalIoNdp, 0.0},
      {"L-2GBps + I/O-NC", gbps(2), ConfigKind::kLocalIoNdp, cf},
  };

  std::vector<std::string> header = {"Configuration"};
  const double fractions[] = {0.1, 0.2, 0.4, 0.6, 0.8};
  for (double f : fractions) {
    header.push_back(fmt_fixed(gb(node_memory * f), 0) + " GB (" +
                     fmt_percent(f, 0) + ")");
  }

  bench::BenchReport report("fig8_size_sensitivity", args, opt.seed,
                            opt.trials, "MTTI 30 min, P(local)=85%, cf=73%");
  report.add_section(
      "Figure 8: progress rate vs checkpoint size (MTTI 30 min, "
      "P(local) = 85%, cf = 73%)",
      header);

  for (const auto& v : variants) {
    std::vector<std::string> cells = {v.label};
    for (double f : fractions) {
      CrScenario scenario;
      scenario.checkpoint_bytes = node_memory * f;
      scenario.local_bw = v.local_bw;
      Evaluator ev(scenario, opt);
      CrConfig cfg{.kind = v.kind,
                   .compression_factor = v.compression,
                   .p_local_recovery = p};
      cells.push_back(fmt_percent(ev.evaluate(cfg).progress_rate(), 1));
    }
    report.add_row(cells);
  }
  report.finish();

  std::puts("\nShape check: every curve falls with checkpoint size; the");
  std::puts("NDP-with-compression gain over multilevel-with-compression");
  std::puts("widens as checkpoints grow; 2 GB/s local storage with NDP");
  std::puts("keeps up with (or beats) 15 GB/s storage without it.");
  return 0;
}
