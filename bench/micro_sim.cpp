// Microbenchmarks: performance-model throughput. The figure harnesses run
// thousands of timeline simulations (ratio optimization especially); this
// tracks the cost of one simulated campaign.

#include <benchmark/benchmark.h>

#include "model/evaluator.hpp"
#include "sim/timeline.hpp"

namespace {

using namespace ndpcr;

void timeline_host(benchmark::State& state) {
  sim::TimelineConfig cfg;
  cfg.strategy = sim::Strategy::kLocalIoHost;
  cfg.io_every = 30;
  cfg.compression_factor = 0.73;
  cfg.total_work = 200.0 * 3600;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const auto r = sim::TimelineSimulator(cfg, ++seed).run();
    benchmark::DoNotOptimize(r.breakdown.compute);
  }
}
BENCHMARK(timeline_host);

void timeline_ndp(benchmark::State& state) {
  sim::TimelineConfig cfg;
  cfg.strategy = sim::Strategy::kLocalIoNdp;
  cfg.compression_factor = 0.73;
  cfg.total_work = 200.0 * 3600;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const auto r = sim::TimelineSimulator(cfg, ++seed).run();
    benchmark::DoNotOptimize(r.breakdown.compute);
  }
}
BENCHMARK(timeline_ndp);

void ratio_optimization(benchmark::State& state) {
  model::CrScenario scenario;
  model::SimOptions opt;
  opt.total_work = 100.0 * 3600;
  opt.trials = 1;
  const model::Evaluator ev(scenario, opt);
  const model::CrConfig cfg{.kind = model::ConfigKind::kLocalIoHost,
                            .compression_factor = 0.73,
                            .p_local_recovery = 0.85};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ev.optimal_io_every(cfg));
  }
}
BENCHMARK(ratio_optimization);

}  // namespace

BENCHMARK_MAIN();
