// Figure 5: the ratio of locally-saved to IO-saved checkpoints for
// different configurations and compression factors. Host configurations
// use the empirically optimal ratio (which falls as compression makes IO
// checkpoints cheaper and rises with P(local recovery)); the NDP
// configuration has one derived ratio per compression factor - it saves
// to IO as frequently as the drain pipeline allows, independent of
// P(local recovery).
//
// Engine flags: --trials/--seed/--threads/--csv (see bench_util.hpp).

#include <cstdio>

#include "bench_util.hpp"
#include "model/evaluator.hpp"

int main(int argc, char** argv) {
  using namespace ndpcr;
  using namespace ndpcr::model;

  bench::BenchArgs args;
  if (!args.parse(argc, argv)) return 2;

  CrScenario scenario;
  SimOptions opt;
  opt.total_work = 250.0 * 3600;
  opt.trials = args.trials_or(2);
  opt.seed = args.seed_or(opt.seed);
  Evaluator ev(scenario, opt);

  const double factors[] = {0.0, 0.35, 0.57, 0.73, 0.85};
  const double p_locals[] = {0.2, 0.4, 0.6, 0.8, 0.96};

  bench::BenchReport report("fig5_optimal_ratios", args, opt.seed,
                            opt.trials, "paper Table 4 scenario");
  {
    std::vector<std::string> header = {"Compression factor"};
    for (double p : p_locals) {
      header.push_back("P(local)=" + fmt_percent(p, 0));
    }
    report.add_section(
        "Figure 5: Local + I/O-Host locally-saved : IO-saved ratio "
        "(empirical optimum per P(local))",
        header);
    for (double cf : factors) {
      std::vector<std::string> cells = {fmt_percent(cf, 0)};
      for (double p : p_locals) {
        CrConfig cfg{.kind = ConfigKind::kLocalIoHost,
                     .compression_factor = cf,
                     .p_local_recovery = p};
        cells.push_back(std::to_string(ev.optimal_io_every(cfg)));
      }
      report.add_row(cells);
    }
  }

  report.add_section(
      "Local + I/O-NDP (derived from the drain pipeline; one value per "
      "compression factor, independent of P(local))",
      {"Compression factor", "Ratio"});
  for (double cf : factors) {
    CrConfig cfg{.kind = ConfigKind::kLocalIoNdp, .compression_factor = cf};
    report.add_row({fmt_percent(cf, 0),
                    std::to_string(ev.ndp_effective_ratio(cfg))});
  }
  report.finish();

  std::puts("\nShape check: host ratios fall with compression factor and");
  std::puts("rise with P(local); NDP ratios are small and fall with");
  std::puts("compression (ratio 2 at cf 73%, 8 uncompressed).");
  return 0;
}
