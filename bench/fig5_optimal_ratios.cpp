// Figure 5: the ratio of locally-saved to IO-saved checkpoints for
// different configurations and compression factors. Host configurations
// use the empirically optimal ratio (which falls as compression makes IO
// checkpoints cheaper and rises with P(local recovery)); the NDP
// configuration has one derived ratio per compression factor - it saves
// to IO as frequently as the drain pipeline allows, independent of
// P(local recovery).

#include <cstdio>

#include "common/table.hpp"
#include "model/evaluator.hpp"

int main() {
  using namespace ndpcr;
  using namespace ndpcr::model;

  CrScenario scenario;
  SimOptions opt;
  opt.total_work = 250.0 * 3600;
  opt.trials = 2;
  Evaluator ev(scenario, opt);

  const double factors[] = {0.0, 0.35, 0.57, 0.73, 0.85};
  const double p_locals[] = {0.2, 0.4, 0.6, 0.8, 0.96};

  std::puts("Figure 5: locally-saved : IO-saved checkpoint ratio\n");
  std::puts("Local + I/O-Host (empirical optimum per P(local)):\n");
  {
    std::vector<std::string> header = {"Compression factor"};
    for (double p : p_locals) {
      header.push_back("P(local)=" + fmt_percent(p, 0));
    }
    TextTable table(header);
    for (double cf : factors) {
      std::vector<std::string> cells = {fmt_percent(cf, 0)};
      for (double p : p_locals) {
        CrConfig cfg{.kind = ConfigKind::kLocalIoHost,
                     .compression_factor = cf,
                     .p_local_recovery = p};
        cells.push_back(std::to_string(ev.optimal_io_every(cfg)));
      }
      table.add_row(cells);
    }
    std::fputs(table.str().c_str(), stdout);
  }

  std::puts("\nLocal + I/O-NDP (derived from the drain pipeline; one value");
  std::puts("per compression factor, independent of P(local)):\n");
  {
    TextTable table({"Compression factor", "Ratio"});
    for (double cf : factors) {
      CrConfig cfg{.kind = ConfigKind::kLocalIoNdp,
                   .compression_factor = cf};
      table.add_row({fmt_percent(cf, 0),
                     std::to_string(ev.ndp_effective_ratio(cfg))});
    }
    std::fputs(table.str().c_str(), stdout);
  }

  std::puts("\nShape check: host ratios fall with compression factor and");
  std::puts("rise with P(local); NDP ratios are small and fall with");
  std::puts("compression (ratio 2 at cf 73%, 8 uncompressed).");
  return 0;
}
