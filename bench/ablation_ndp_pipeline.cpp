// Ablation: the NDP pipeline design choices of section 4.2.
//
//   overlap      - compress and IO-write overlapped in DMA-sized blocks
//                  (4.2.2) vs fully serial compress-then-write
//   pause        - NDP yields NVM bandwidth during host local commits
//                  (4.2.1) vs stealing bandwidth (idealized)
//   abort        - failures kill in-flight drains even when the NVM
//                  survives, vs resuming after local recoveries
//
// Also quantifies the NDP compression-rate requirement of section 4.4 by
// sweeping the NDP core count (compression rate) at fixed IO bandwidth.

#include <cstdio>

#include "common/table.hpp"
#include "sim/timeline.hpp"

int main() {
  using namespace ndpcr;
  using namespace ndpcr::sim;

  TimelineConfig base;
  base.strategy = Strategy::kLocalIoNdp;
  base.compression_factor = 0.73;
  base.p_local_recovery = 0.85;
  base.total_work = 400.0 * 3600;

  std::puts("Ablation: NDP pipeline switches (cf 73%, P(local) = 85%)\n");
  TextTable table({"Variant", "Progress", "IO ckpts/hour", "RerunIO %"});
  auto run = [&](const char* label, TimelineConfig cfg) {
    const TimelineResult r = TimelineSimulator::run_trials(cfg, 3, 5);
    const double wall_hours = r.breakdown.total() / 3600.0;
    table.add_row(
        {label, fmt_percent(r.progress_rate(), 1),
         fmt_fixed(static_cast<double>(r.io_checkpoints) / 3.0 / wall_hours,
                   2),
         fmt_percent(r.breakdown.rerun_io / r.breakdown.total(), 2)});
  };

  run("baseline (overlap, pause, resume)", base);
  {
    TimelineConfig c = base;
    c.ndp_overlap = false;
    run("serial compress-then-write", c);
  }
  {
    TimelineConfig c = base;
    c.ndp_pause_on_host_write = false;
    run("no pause on host NVM writes", c);
  }
  {
    TimelineConfig c = base;
    c.ndp_abort_on_failure = true;
    run("abort drains on every failure", c);
  }
  {
    TimelineConfig c = base;
    c.ndp_overlap = false;
    c.ndp_abort_on_failure = true;
    run("serial + abort (worst case)", c);
  }
  std::fputs(table.str().c_str(), stdout);

  std::puts("\nNDP compression-rate sweep (cores x 110.1 MB/s of ngzip(1));");
  std::puts("section 4.4: below ~100 MB/s compression hurts, above the");
  std::puts("saturating rate (~370 MB/s at cf 73%) extra cores are idle:\n");
  TextTable sweep({"NDP cores", "Compression rate", "Drain time",
                   "Progress"});
  for (int cores : {1, 2, 3, 4, 6, 8, 16}) {
    TimelineConfig c = base;
    c.ndp_compress_bw = cores * 110.1e6;
    TimelineSimulator probe(c, 0);
    const TimelineResult r = TimelineSimulator::run_trials(c, 3, 5);
    sweep.add_row({fmt_fixed(cores, 0),
                   fmt_fixed(c.ndp_compress_bw / 1e6, 0) + " MB/s",
                   fmt_fixed(probe.ndp_drain_time(), 0) + " s",
                   fmt_percent(r.progress_rate(), 1)});
  }
  std::fputs(sweep.str().c_str(), stdout);
  return 0;
}
