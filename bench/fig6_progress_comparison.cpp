// Figure 6: progress-rate comparison between the C/R configurations for
// three of the mini-apps plus the seven-app average. The first group is
// uncompressed; the rest use each app's gzip(1) compression factor from
// Table 2. P(local recovery) varies from 20% to 80% for the multilevel
// configurations.
//
// Also prints the section 6.3 headline: the average progress rate of
// multilevel + compression vs NDP + compression over the four P(local)
// values (the paper's 51% -> 78%).
//
// Engine flags: --trials/--seed/--threads/--csv (see bench_util.hpp).

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "model/evaluator.hpp"
#include "study/compression_study.hpp"

int main(int argc, char** argv) {
  using namespace ndpcr;
  using namespace ndpcr::model;

  bench::BenchArgs args;
  if (!args.parse(argc, argv)) return 2;

  CrScenario scenario;
  SimOptions opt;
  opt.total_work = 250.0 * 3600;
  opt.trials = args.trials_or(3);
  opt.seed = args.seed_or(opt.seed);
  Evaluator ev(scenario, opt);

  const double p_locals[] = {0.2, 0.4, 0.6, 0.8};
  const std::vector<std::string> shown_apps = {"comd", "minismac", "phpccg"};

  struct Column {
    std::string name;
    double cf;
  };
  std::vector<Column> columns = {{"none", 0.0}};
  for (const auto& app : shown_apps) {
    columns.push_back({app, study::paper_gzip1_factor(app)});
  }
  // The seven-app average gzip(1) factor.
  columns.push_back({"average", study::paper_average_factor(0)});

  std::vector<std::string> header = {"Configuration"};
  for (const auto& c : columns) {
    header.push_back(c.name + " (cf " + fmt_percent(c.cf, 0) + ")");
  }

  bench::BenchReport report("fig6_progress_comparison", args, opt.seed,
                            opt.trials,
                            "paper Table 4 scenario, per-app gzip(1) cf");
  report.add_section(
      "Figure 6: progress rate per configuration and compression factor",
      header);

  auto add_config_row = [&](const std::string& label, ConfigKind kind,
                            double p) {
    std::vector<std::string> cells = {label};
    for (const auto& col : columns) {
      CrConfig cfg{.kind = kind,
                   .compression_factor = col.cf,
                   .p_local_recovery = p};
      cells.push_back(fmt_percent(ev.evaluate(cfg).progress_rate(), 1));
    }
    report.add_row(cells);
  };

  std::puts("Figure 6 (each host cell runs a ratio optimization; candidate");
  std::puts("ratios evaluate concurrently on the engine)\n");

  {
    std::vector<std::string> cells = {"I/O Only"};
    for (const auto& col : columns) {
      CrConfig cfg{.kind = ConfigKind::kIoOnly,
                   .compression_factor = col.cf};
      cells.push_back(fmt_percent(ev.evaluate(cfg).progress_rate(), 1));
    }
    report.add_row(cells);
  }
  for (double p : p_locals) {
    add_config_row("Local(" + fmt_percent(p, 0) + ") + I/O-Host",
                   ConfigKind::kLocalIoHost, p);
  }
  for (double p : p_locals) {
    add_config_row("Local(" + fmt_percent(p, 0) + ") + I/O-NDP",
                   ConfigKind::kLocalIoNdp, p);
  }

  // Headline: averages over the four P(local) values at the average
  // compression factor.
  double host_avg = 0.0;
  double ndp_avg = 0.0;
  for (double p : p_locals) {
    CrConfig host{.kind = ConfigKind::kLocalIoHost,
                  .compression_factor = study::paper_average_factor(0),
                  .p_local_recovery = p};
    CrConfig ndp{.kind = ConfigKind::kLocalIoNdp,
                 .compression_factor = study::paper_average_factor(0),
                 .p_local_recovery = p};
    host_avg += ev.evaluate(host).progress_rate() / 4.0;
    ndp_avg += ev.evaluate(ndp).progress_rate() / 4.0;
  }
  report.add_section("Section 6.3 headline (paper: 51% -> 78%)",
                     {"Multilevel + compression", "NDP + compression",
                      "Speedup"});
  report.add_row({fmt_percent(host_avg, 1), fmt_percent(ndp_avg, 1),
                  fmt_percent(ndp_avg / host_avg - 1.0, 0)});
  report.finish();
  return 0;
}
