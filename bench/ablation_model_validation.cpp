// Validation: the first-order analytic multilevel model vs the Monte
// Carlo timeline simulator across configurations. The analytic model is
// used for cheap exploration; this harness quantifies where its
// first-order approximations (no failure cascades beyond loaded-rerun
// pricing) start to bite.
//
// Also validates the simulator itself against Daly's closed form in the
// single-level limit, where the answer is exact.

#include <cstdio>

#include "analytic/daly.hpp"
#include "common/table.hpp"
#include "model/analytic_multilevel.hpp"
#include "model/evaluator.hpp"

int main() {
  using namespace ndpcr;
  using namespace ndpcr::model;

  std::puts("Simulator vs Daly's closed form (single-level limit):\n");
  {
    TextTable table({"Commit time", "Daly efficiency", "Simulated",
                     "Abs. error"});
    for (double delta : {3.0, 9.0, 30.0, 90.0}) {
      const analytic::CrParams p{.mtti = 1800.0, .commit = delta,
                                 .restart = delta};
      const double tau = analytic::daly_optimal_interval(delta, 1800.0);
      sim::TimelineConfig cfg;
      cfg.strategy = sim::Strategy::kIoOnly;
      cfg.checkpoint_bytes = 112e9;
      cfg.io_bw = 112e9 / delta;
      cfg.local_interval = tau;
      cfg.total_work = 1500.0 * 3600;
      const double simulated =
          sim::TimelineSimulator::run_trials(cfg, 3, 7).progress_rate();
      const double closed = analytic::efficiency(tau, p);
      table.add_row({fmt_fixed(delta, 0) + " s", fmt_percent(closed, 2),
                     fmt_percent(simulated, 2),
                     fmt_percent(std::abs(closed - simulated), 2)});
    }
    std::fputs(table.str().c_str(), stdout);
  }

  std::puts("\nAnalytic multilevel model vs simulator (Local + I/O-Host):\n");
  {
    CrScenario scenario;
    SimOptions opt;
    opt.total_work = 400.0 * 3600;
    opt.trials = 3;
    Evaluator ev(scenario, opt);

    TextTable table({"cf", "P(local)", "ratio", "Analytic", "Simulated",
                     "Abs. error"});
    for (double cf : {0.0, 0.73}) {
      for (double p : {0.5, 0.85, 0.96}) {
        for (std::uint32_t k : {10u, 40u}) {
          CrConfig cfg{.kind = ConfigKind::kLocalIoHost,
                       .compression_factor = cf,
                       .p_local_recovery = p};
          const double simulated =
              ev.evaluate_at_ratio(cfg, k).progress_rate();

          const auto tc = ev.timeline_config(cfg, k);
          const sim::TimelineSimulator probe(tc, 0);
          AnalyticInputs in;
          in.mtti = scenario.mtti;
          in.local_interval = scenario.local_interval;
          in.local_commit = probe.local_commit_time();
          in.io_commit = probe.host_io_commit_time();
          in.local_restore = probe.local_restore_time();
          in.io_restore = probe.io_restore_time();
          in.io_every = k;
          in.p_local = p;
          const double analytic_rate =
              analytic_multilevel(in).progress_rate();

          table.add_row({fmt_percent(cf, 0), fmt_percent(p, 0),
                         std::to_string(k), fmt_percent(analytic_rate, 1),
                         fmt_percent(simulated, 1),
                         fmt_percent(std::abs(analytic_rate - simulated),
                                     1)});
        }
      }
    }
    std::fputs(table.str().c_str(), stdout);
  }

  std::puts("\nReading: agreement is within a few points at moderate");
  std::puts("overheads and degrades where failure cascades compound (low");
  std::puts("P(local) with expensive IO restores) - the regime where only");
  std::puts("the simulator is trustworthy.");
  return 0;
}
