// Figure 4: C/R overhead breakdown for Local + I/O-Host as the ratio of
// locally-saved to IO-saved checkpoints increases. (a) components
// normalized to compute time; (b) percentage breakdown of total execution
// time. Checkpoint-time falls and rerun-time grows with the ratio; total
// overhead has an interior minimum.

#include <cstdio>

#include "bench_util.hpp"
#include "model/evaluator.hpp"

int main() {
  using namespace ndpcr;
  using namespace ndpcr::model;

  CrScenario scenario;
  SimOptions opt;
  opt.total_work = 400.0 * 3600;
  opt.trials = 3;
  Evaluator ev(scenario, opt);

  // The configuration of the Figure 4 sweep: host-managed IO level with
  // compression at the average factor, 85% local recovery.
  CrConfig cfg{.kind = ConfigKind::kLocalIoHost,
               .compression_factor = 0.73,
               .p_local_recovery = 0.85};

  const std::uint32_t ratios[] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512};

  std::puts("Figure 4a: overhead breakdown normalized to compute time");
  std::puts("(Local + I/O-Host, cf 73%, P(local) = 85%)\n");
  TextTable norm(bench::normalized_header("Local:IO ratio"));
  std::vector<Evaluation> evals;
  for (const auto k : ratios) {
    evals.push_back(ev.evaluate_at_ratio(cfg, k));
    norm.add_row(bench::normalized_row(std::to_string(k),
                                       evals.back().result.breakdown));
  }
  std::fputs(norm.str().c_str(), stdout);

  std::puts("\nFigure 4b: % breakdown of total execution time\n");
  TextTable pct(bench::breakdown_header("Local:IO ratio"));
  for (std::size_t i = 0; i < std::size(ratios); ++i) {
    pct.add_row(bench::breakdown_row(std::to_string(ratios[i]),
                                     evals[i].result.breakdown));
  }
  std::fputs(pct.str().c_str(), stdout);

  const auto best = ev.optimal_io_every(cfg);
  std::printf("\nEmpirical optimal ratio: %u (progress %s)\n", best,
              fmt_percent(ev.evaluate_at_ratio(cfg, best).progress_rate(), 1)
                  .c_str());
  std::puts("Shape check: CkptIO decreases and RerunIO increases with the");
  std::puts("ratio; total overhead is minimized at an interior ratio.");
  return 0;
}
