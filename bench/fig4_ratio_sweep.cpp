// Figure 4: C/R overhead breakdown for Local + I/O-Host as the ratio of
// locally-saved to IO-saved checkpoints increases. (a) components
// normalized to compute time; (b) percentage breakdown of total execution
// time. Checkpoint-time falls and rerun-time grows with the ratio; total
// overhead has an interior minimum.
//
// Engine flags: --trials/--seed/--threads/--csv (see bench_util.hpp).

#include <cstdio>

#include "bench_util.hpp"
#include "model/evaluator.hpp"

int main(int argc, char** argv) {
  using namespace ndpcr;
  using namespace ndpcr::model;

  bench::BenchArgs args;
  if (!args.parse(argc, argv)) return 2;

  CrScenario scenario;
  SimOptions opt;
  opt.total_work = 400.0 * 3600;
  opt.trials = args.trials_or(3);
  opt.seed = args.seed_or(opt.seed);
  Evaluator ev(scenario, opt);

  // The configuration of the Figure 4 sweep: host-managed IO level with
  // compression at the average factor, 85% local recovery.
  CrConfig cfg{.kind = ConfigKind::kLocalIoHost,
               .compression_factor = 0.73,
               .p_local_recovery = 0.85};

  bench::BenchReport report("fig4_ratio_sweep", args, opt.seed, opt.trials,
                            cfg.label());
  const std::vector<std::uint32_t> ratios = {1,  2,  4,   8,   16,
                                             32, 64, 128, 256, 512};

  std::puts("Figure 4: Local + I/O-Host, cf 73%, P(local) = 85%\n");
  report.add_section(
      "Figure 4a: overhead breakdown normalized to compute time",
      bench::normalized_header("Local:IO ratio"));
  std::vector<Evaluation> evals;
  for (const auto k : ratios) {
    evals.push_back(ev.evaluate_at_ratio(cfg, k));
    report.add_row(bench::normalized_row(std::to_string(k),
                                         evals.back().result.breakdown));
  }

  report.add_section("Figure 4b: % breakdown of total execution time",
                     bench::breakdown_header("Local:IO ratio"));
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    report.add_row(bench::breakdown_row(std::to_string(ratios[i]),
                                        evals[i].result.breakdown));
  }

  const auto best = ev.optimal_io_every(cfg);
  report.add_section("Empirical optimal ratio", {"Ratio", "Progress"});
  report.add_row(
      {std::to_string(best),
       fmt_percent(ev.evaluate_at_ratio(cfg, best).progress_rate(), 1)});
  report.finish();
  std::puts("\nShape check: CkptIO decreases and RerunIO increases with the");
  std::puts("ratio; total overhead is minimized at an interior ratio.");
  return 0;
}
