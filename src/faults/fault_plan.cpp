#include "faults/fault_plan.hpp"

#include "ckpt/stores.hpp"

namespace ndpcr::faults {
namespace {

// Distinct target-id spaces so a rank's NVM and a host's partner space
// never alias.
constexpr std::uint32_t kLocalBase = 0x1000'0000u;
constexpr std::uint32_t kPartnerBase = 0x2000'0000u;
constexpr std::uint32_t kIoBase = 0x3000'0000u;

// Pure hash of one operation's coordinates into [0, 1).
double unit_hash(std::uint64_t seed, Target target, StoreOp op,
                 std::uint64_t op_index) {
  using ckpt::splitmix64;
  std::uint64_t h = splitmix64(seed ^ (std::uint64_t{target.id} << 32));
  h = splitmix64(h ^ op_index);
  h = splitmix64(h ^ static_cast<std::uint64_t>(op));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kTorn:
      return "torn";
    case FaultKind::kBitFlip:
      return "bitflip";
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kOutage:
      return "outage";
  }
  return "?";
}

Target local_target(std::uint32_t rank) { return Target{kLocalBase + rank}; }

Target partner_target(std::uint32_t host) {
  return Target{kPartnerBase + host};
}

Target io_target() { return Target{kIoBase}; }

FaultPlan::FaultPlan(std::uint64_t seed, FaultRates default_rates)
    : seed_(seed), default_rates_(default_rates) {}

void FaultPlan::set_rates(Target target, FaultRates rates) {
  per_target_rates_[target] = rates;
}

void FaultPlan::add_outage(Target target, std::uint64_t first_op,
                           std::uint64_t last_op) {
  outages_[target].push_back(Outage{first_op, last_op});
}

void FaultPlan::force(Target target, std::uint64_t op_index,
                      FaultKind kind) {
  forced_[{target.id, op_index}] = kind;
}

const FaultRates& FaultPlan::rates_for(Target target) const {
  const auto it = per_target_rates_.find(target);
  return it != per_target_rates_.end() ? it->second : default_rates_;
}

FaultKind FaultPlan::decide(Target target, StoreOp op,
                            std::uint64_t op_index) const {
  if (const auto it = forced_.find({target.id, op_index});
      it != forced_.end()) {
    return it->second;
  }
  if (const auto it = outages_.find(target); it != outages_.end()) {
    for (const Outage& o : it->second) {
      if (op_index >= o.first_op && op_index <= o.last_op) {
        return FaultKind::kOutage;
      }
    }
  }
  const FaultRates& rates = rates_for(target);
  if (!rates.any()) return FaultKind::kNone;
  const double u = unit_hash(seed_, target, op, op_index);
  double edge = rates.transient;
  if (u < edge) return FaultKind::kTransient;
  if (op == StoreOp::kPut) {
    edge += rates.torn;
    if (u < edge) return FaultKind::kTorn;
  }
  edge += rates.bitflip;
  if (u < edge) return FaultKind::kBitFlip;
  edge += rates.stall;
  if (u < edge) return FaultKind::kStall;
  return FaultKind::kNone;
}

std::uint64_t FaultPlan::salt(Target target, std::uint64_t op_index) const {
  using ckpt::splitmix64;
  return splitmix64(seed_ ^ splitmix64((std::uint64_t{target.id} << 24) ^
                                       (op_index * 0x9E3779B97F4A7C15ull)));
}

}  // namespace ndpcr::faults
