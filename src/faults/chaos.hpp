#pragma once

// Chaos soak harness: drive a MultilevelManager through a seeded fault
// schedule plus random node failures and silent corruption, and check the
// recovery invariants after every probe:
//
//   1. Every recovered payload is byte-identical to what was committed
//      under that checkpoint id (implies CRC-valid).
//   2. recover() never returns a checkpoint newer than the last commit.
//   3. Health counters are monotone; a level leaves the degraded state
//      only through a counted repair.
//
// A run is a pure function of its ChaosConfig (fingerprint included), so
// soaks parallelised across seeds with exec::TaskPool reproduce
// bit-identically at any thread count.

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/multilevel.hpp"
#include "common/rng.hpp"
#include "compress/codec.hpp"
#include "exec/task_pool.hpp"
#include "faults/faulty_stores.hpp"

namespace ndpcr::obs {
class MetricsRegistry;
class Tracer;
}  // namespace ndpcr::obs

namespace ndpcr::faults {

struct ChaosConfig {
  std::uint64_t seed = 1;
  std::uint32_t node_count = 6;
  ckpt::PartnerScheme scheme = ckpt::PartnerScheme::kCopy;
  std::uint32_t xor_group_size = 3;
  compress::CodecId io_codec = compress::CodecId::kNull;
  std::uint32_t partner_every = 1;
  std::uint32_t io_every = 2;
  std::uint32_t commits = 24;
  std::size_t payload_bytes = 2048;
  // Fault rates applied to every device (local NVM sees torn/bitflip only).
  FaultRates rates{0.02, 0.01, 0.01, 0.01};
  double p_fail_node = 0.05;  // per-commit chance of losing a node
  double p_corrupt = 0.10;    // per-commit chance of one silent corruption
  double p_recover = 0.25;    // per-commit chance of a recovery probe
  // Schedule a permanent IO outage over the middle third of the run's
  // expected IO operations (cleared afterwards, so repair is observable).
  bool io_outage = false;
  // Incremental commit path (docs/DELTA.md): delta_chain > 0 enables
  // delta images with that many links between full anchors; io_dedup
  // layers CDC block dedup under the IO level (CDC parameters scaled to
  // the small chaos payloads). The DataPathStats counters join the run
  // fingerprint, so thread-invariance covers the incremental path too.
  std::uint32_t delta_chain = 0;
  std::size_t delta_block_bytes = 512;
  bool io_dedup = false;
  // Sparse-update workload: ranks keep persistent state and each commit
  // rewrites ~update_fraction of each rank's bytes (instead of fully
  // random payloads) - the regime where delta/dedup actually save bytes.
  bool sparse_updates = false;
  double update_fraction = 0.05;
  // IO-level ChunkedCodec parameters forwarded to the manager (chunk size
  // is format-visible; threads are an execution detail).
  std::size_t io_chunk_bytes = 1ull << 20;
  unsigned io_threads = 1;
  // Pool for the manager's parallel data path (null = global_pool()).
  // Thread count must not change the report - that is the invariant the
  // thread-invariance tests pin.
  exec::TaskPool* pool = nullptr;
  // Optional observability (docs/OBSERVABILITY.md). `trace` threads
  // through to the manager and gives every faulty store its own event
  // buffer (spliced in store-creation order at run end), so injections
  // line up with the commit/recover spans they perturb. Only single runs
  // take a tracer; run_chaos_suite shares one pool across schedules and
  // stays untraced. `metrics` receives the end-of-run HealthReport and
  // chaos counters under the "chaos." prefix.
  obs::Tracer* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

struct ChaosReport {
  std::uint64_t seed = 0;
  std::uint64_t commits = 0;
  std::uint64_t recover_calls = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t unrecoverable = 0;
  std::uint64_t node_failures = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t violations = 0;
  std::vector<std::string> violation_notes;  // first few, for diagnostics
  ckpt::HealthReport health;                 // manager health at run end
  ckpt::DataPathStats data;                  // byte-movement accounting
  FaultStats faults;                         // aggregated injections
  std::uint32_t fingerprint = 0;             // CRC32 of the run's outcomes
};

// Execute one seeded chaos schedule. Deterministic: same config, same
// report (fingerprint included), on any machine and at any thread count.
ChaosReport run_chaos(const ChaosConfig& config);

// Run many schedules across the pool (one task per config; each run is
// self-contained, so the engine's index-ownership contract makes the
// result vector thread-count-invariant).
std::vector<ChaosReport> run_chaos_suite(
    const std::vector<ChaosConfig>& configs, exec::TaskPool& pool);

// Order-sensitive combination of the suite's fingerprints: one word that
// must match across reruns and thread counts.
std::uint32_t suite_fingerprint(const std::vector<ChaosReport>& reports);

// CRC32 over every HealthReport counter (floating-point backoff included,
// bit-for-bit): the thread-invariance tests compare these across pool
// sizes instead of spelling out each field.
std::uint32_t health_fingerprint(const ckpt::HealthReport& health);

// Seeded workload generators shared by the chaos runners (including the
// service-layer soak in src/svc). chaos_payload draws a fresh payload of
// base_size plus up to 255 jitter bytes; chaos_sparse_update rewrites
// ~fraction of an existing payload at seeded positions (size unchanged),
// the regime where delta/dedup layers save bytes. Both consume the Rng
// deterministically.
Bytes chaos_payload(Rng& rng, std::size_t base_size);
void chaos_sparse_update(Rng& rng, Bytes& payload, double fraction);

}  // namespace ndpcr::faults
