#include "faults/faulty_stores.hpp"

#include <mutex>
#include <utility>

#include "obs/trace.hpp"

namespace ndpcr::faults {
namespace {

ckpt::StoreError transient_error(Target target, std::uint64_t op) {
  return ckpt::StoreError{
      ckpt::StoreErrorKind::kTransient,
      "injected transient fault (target " + std::to_string(target.id) +
          ", op " + std::to_string(op) + ")"};
}

ckpt::StoreError outage_error(Target target, std::uint64_t op) {
  return ckpt::StoreError{
      ckpt::StoreErrorKind::kPermanent,
      "injected outage (target " + std::to_string(target.id) + ", op " +
          std::to_string(op) + ")"};
}

// Length of the prefix that survives a torn write: deterministic from the
// salt, always strictly shorter than the full payload.
std::size_t torn_length(std::size_t full, std::uint64_t salt) {
  if (full <= 1) return 0;
  return ckpt::splitmix64(salt) % full;
}

const char* fault_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTransient: return "fault_transient";
    case FaultKind::kOutage: return "fault_outage";
    case FaultKind::kTorn: return "fault_torn";
    case FaultKind::kBitFlip: return "fault_bitflip";
    case FaultKind::kStall: return "fault_stall";
    case FaultKind::kNone: break;
  }
  return "";
}

// Instant event per injected fault; rides the store's serialization rule
// (op numbering already requires one operation at a time per store).
void note_fault(obs::TraceBuffer* buf, std::uint32_t track, FaultKind kind,
                Target target, StoreOp op_kind, std::uint64_t op) {
  if (buf == nullptr || kind == FaultKind::kNone) return;
  buf->instant(fault_name(kind), "fault", track,
               {obs::u64("target", target.id), obs::u64("op", op),
                obs::str("dir", op_kind == StoreOp::kPut ? "put" : "get")});
}

}  // namespace

FaultStats& FaultStats::operator+=(const FaultStats& other) {
  ops += other.ops;
  transient_errors += other.transient_errors;
  torn_writes += other.torn_writes;
  bit_flips += other.bit_flips;
  stalls += other.stalls;
  outage_errors += other.outage_errors;
  stall_seconds += other.stall_seconds;
  return *this;
}

FaultyKvStore::FaultyKvStore(std::shared_ptr<const FaultPlan> plan,
                             Target target)
    : plan_(std::move(plan)), target_(target) {}

ckpt::StoreStatus FaultyKvStore::put(std::uint32_t rank,
                                     std::uint64_t checkpoint_id,
                                     Bytes data) {
  const std::uint64_t op = op_counter_++;
  ++stats_.ops;
  const FaultKind kind = plan_->decide(target_, StoreOp::kPut, op);
  note_fault(trace_buf_, trace_track_, kind, target_, StoreOp::kPut, op);
  switch (kind) {
    case FaultKind::kTransient:
      ++stats_.transient_errors;
      return transient_error(target_, op);
    case FaultKind::kOutage:
      ++stats_.outage_errors;
      return outage_error(target_, op);
    case FaultKind::kTorn: {
      ++stats_.torn_writes;
      data.resize(torn_length(data.size(), plan_->salt(target_, op)));
      return KvStore::put(rank, checkpoint_id, std::move(data));
    }
    case FaultKind::kBitFlip:
      ++stats_.bit_flips;
      ckpt::corrupt_in_place(MutableByteSpan(data),
                             plan_->salt(target_, op));
      return KvStore::put(rank, checkpoint_id, std::move(data));
    case FaultKind::kStall:
      ++stats_.stalls;
      stats_.stall_seconds += kStallSeconds;
      [[fallthrough]];
    case FaultKind::kNone:
      break;
  }
  return KvStore::put(rank, checkpoint_id, std::move(data));
}

ckpt::StoreResult<Bytes> FaultyKvStore::get(
    std::uint32_t rank, std::uint64_t checkpoint_id) const {
  const std::uint64_t op = op_counter_++;
  ++stats_.ops;
  const FaultKind kind = plan_->decide(target_, StoreOp::kGet, op);
  note_fault(trace_buf_, trace_track_, kind, target_, StoreOp::kGet, op);
  switch (kind) {
    case FaultKind::kTransient:
      ++stats_.transient_errors;
      return transient_error(target_, op);
    case FaultKind::kOutage:
      ++stats_.outage_errors;
      return outage_error(target_, op);
    case FaultKind::kBitFlip: {
      ++stats_.bit_flips;
      auto got = KvStore::get(rank, checkpoint_id);
      if (got.ok()) {
        // Corrupt the returned copy; the stored entry stays intact.
        ckpt::corrupt_in_place(MutableByteSpan(*got),
                               plan_->salt(target_, op));
      }
      return got;
    }
    case FaultKind::kStall:
      ++stats_.stalls;
      stats_.stall_seconds += kStallSeconds;
      break;
    case FaultKind::kTorn:  // puts only; decide() never returns it for gets
    case FaultKind::kNone:
      break;
  }
  return KvStore::get(rank, checkpoint_id);
}

FaultyFileStore::FaultyFileStore(std::filesystem::path root,
                                 std::shared_ptr<const FaultPlan> plan,
                                 Target target)
    : ckpt::FileStore(std::move(root)),
      plan_(std::move(plan)),
      target_(target) {}

ckpt::StoreStatus FaultyFileStore::put(std::uint32_t rank,
                                       std::uint64_t checkpoint_id,
                                       ByteSpan data) {
  const std::uint64_t op = op_counter_++;
  ++stats_.ops;
  const FaultKind kind = plan_->decide(target_, StoreOp::kPut, op);
  note_fault(trace_buf_, trace_track_, kind, target_, StoreOp::kPut, op);
  switch (kind) {
    case FaultKind::kTransient:
      ++stats_.transient_errors;
      return transient_error(target_, op);
    case FaultKind::kOutage:
      ++stats_.outage_errors;
      return outage_error(target_, op);
    case FaultKind::kTorn: {
      ++stats_.torn_writes;
      const std::size_t n =
          torn_length(data.size(), plan_->salt(target_, op));
      return FileStore::put(rank, checkpoint_id, data.subspan(0, n));
    }
    case FaultKind::kBitFlip: {
      ++stats_.bit_flips;
      Bytes flipped(data.begin(), data.end());
      ckpt::corrupt_in_place(MutableByteSpan(flipped),
                             plan_->salt(target_, op));
      return FileStore::put(rank, checkpoint_id, ByteSpan(flipped));
    }
    case FaultKind::kStall:
      ++stats_.stalls;
      stats_.stall_seconds += kStallSeconds;
      [[fallthrough]];
    case FaultKind::kNone:
      break;
  }
  return FileStore::put(rank, checkpoint_id, data);
}

ckpt::StoreResult<Bytes> FaultyFileStore::get(
    std::uint32_t rank, std::uint64_t checkpoint_id) const {
  const std::uint64_t op = op_counter_++;
  ++stats_.ops;
  const FaultKind kind = plan_->decide(target_, StoreOp::kGet, op);
  note_fault(trace_buf_, trace_track_, kind, target_, StoreOp::kGet, op);
  switch (kind) {
    case FaultKind::kTransient:
      ++stats_.transient_errors;
      return transient_error(target_, op);
    case FaultKind::kOutage:
      ++stats_.outage_errors;
      return outage_error(target_, op);
    case FaultKind::kBitFlip: {
      ++stats_.bit_flips;
      auto got = FileStore::get(rank, checkpoint_id);
      if (got.ok()) {
        ckpt::corrupt_in_place(MutableByteSpan(*got),
                               plan_->salt(target_, op));
      }
      return got;
    }
    case FaultKind::kStall:
      ++stats_.stalls;
      stats_.stall_seconds += kStallSeconds;
      break;
    case FaultKind::kTorn:
    case FaultKind::kNone:
      break;
  }
  return FileStore::get(rank, checkpoint_id);
}

FaultyStoreProxy::FaultyStoreProxy(std::shared_ptr<const FaultPlan> plan,
                                   Target target,
                                   std::unique_ptr<ckpt::KvStore> inner)
    : plan_(std::move(plan)), target_(target), inner_(std::move(inner)) {}

ckpt::StoreStatus FaultyStoreProxy::put(std::uint32_t rank,
                                        std::uint64_t checkpoint_id,
                                        Bytes data) {
  if (plan_ == nullptr) {
    return inner_->put(rank, checkpoint_id, std::move(data));
  }
  const std::uint64_t op = op_counter_++;
  ++stats_.ops;
  switch (plan_->decide(target_, StoreOp::kPut, op)) {
    case FaultKind::kTransient:
      ++stats_.transient_errors;
      return transient_error(target_, op);
    case FaultKind::kOutage:
      ++stats_.outage_errors;
      return outage_error(target_, op);
    case FaultKind::kTorn:
      ++stats_.torn_writes;
      data.resize(torn_length(data.size(), plan_->salt(target_, op)));
      return inner_->put(rank, checkpoint_id, std::move(data));
    case FaultKind::kBitFlip:
      ++stats_.bit_flips;
      ckpt::corrupt_in_place(MutableByteSpan(data),
                             plan_->salt(target_, op));
      return inner_->put(rank, checkpoint_id, std::move(data));
    case FaultKind::kStall:
      ++stats_.stalls;
      stats_.stall_seconds += kStallSeconds;
      [[fallthrough]];
    case FaultKind::kNone:
      break;
  }
  return inner_->put(rank, checkpoint_id, std::move(data));
}

ckpt::StoreResult<Bytes> FaultyStoreProxy::get(
    std::uint32_t rank, std::uint64_t checkpoint_id) const {
  if (plan_ == nullptr) return inner_->get(rank, checkpoint_id);
  const std::uint64_t op = op_counter_++;
  ++stats_.ops;
  switch (plan_->decide(target_, StoreOp::kGet, op)) {
    case FaultKind::kTransient:
      ++stats_.transient_errors;
      return transient_error(target_, op);
    case FaultKind::kOutage:
      ++stats_.outage_errors;
      return outage_error(target_, op);
    case FaultKind::kBitFlip: {
      ++stats_.bit_flips;
      auto got = inner_->get(rank, checkpoint_id);
      if (got.ok()) {
        ckpt::corrupt_in_place(MutableByteSpan(*got),
                               plan_->salt(target_, op));
      }
      return got;
    }
    case FaultKind::kStall:
      ++stats_.stalls;
      stats_.stall_seconds += kStallSeconds;
      break;
    case FaultKind::kTorn:  // puts only; decide() never returns it for gets
    case FaultKind::kNone:
      break;
  }
  return inner_->get(rank, checkpoint_id);
}

bool FaultyStoreProxy::contains(std::uint32_t rank,
                                std::uint64_t checkpoint_id) const {
  return inner_->contains(rank, checkpoint_id);
}

std::optional<std::uint64_t> FaultyStoreProxy::newest_id(
    std::uint32_t rank) const {
  return inner_->newest_id(rank);
}

std::vector<std::uint64_t> FaultyStoreProxy::list(std::uint32_t rank) const {
  return inner_->list(rank);
}

void FaultyStoreProxy::erase(std::uint32_t rank,
                             std::uint64_t checkpoint_id) {
  inner_->erase(rank, checkpoint_id);
}

void FaultyStoreProxy::clear() { inner_->clear(); }

std::function<void(std::uint32_t, std::uint64_t, Bytes&)>
make_local_write_hook(std::shared_ptr<const FaultPlan> plan,
                      std::shared_ptr<FaultStats> stats) {
  // The parallel commit path invokes the hook from pool workers (one rank
  // per task); the shared FaultStats needs a lock. The counters are plain
  // order-independent sums, so totals stay thread-count-invariant. Fault
  // decisions derive from (per-rank target, per-rank op_index) alone -
  // scheduling cannot perturb them.
  auto mutex = std::make_shared<std::mutex>();
  return [plan = std::move(plan), stats = std::move(stats),
          mutex = std::move(mutex)](std::uint32_t rank,
                                    std::uint64_t op_index, Bytes& image) {
    const Target target = local_target(rank);
    const std::lock_guard<std::mutex> lock(*mutex);
    if (stats) ++stats->ops;
    switch (plan->decide(target, StoreOp::kPut, op_index)) {
      case FaultKind::kTorn:
        if (stats) ++stats->torn_writes;
        image.resize(torn_length(image.size(), plan->salt(target, op_index)));
        break;
      case FaultKind::kBitFlip:
        if (stats) ++stats->bit_flips;
        ckpt::corrupt_in_place(MutableByteSpan(image),
                               plan->salt(target, op_index));
        break;
      default:
        break;  // transient/outage/stall: meaningless for a local memcpy
    }
  };
}

}  // namespace ndpcr::faults
