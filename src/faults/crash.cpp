#include "faults/crash.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "faults/faulty_stores.hpp"

namespace ndpcr::faults {
namespace {

constexpr std::uint32_t kLocalBase = 0x1000'0000u;
constexpr std::uint32_t kPartnerBase = 0x2000'0000u;
constexpr std::uint32_t kIoBase = 0x3000'0000u;

// Canonical phase order within an epoch: the commit pipeline writes
// partner spaces, then the IO store, then local NVM.
int phase_of(std::uint32_t target_id) {
  if (target_id >= kIoBase) return 1;
  if (target_id >= kPartnerBase) return 0;
  return 2;
}

// View of a backing KvStore owned by the simulator: the manager holds
// (and destroys) the view, the bytes survive in the backing store. The
// backing store's own MutationGate sees every write that comes through.
class ForwardingKvStore final : public ckpt::KvStore {
 public:
  explicit ForwardingKvStore(ckpt::KvStore* backing) : backing_(backing) {}

  ckpt::StoreStatus put(std::uint32_t rank, std::uint64_t checkpoint_id,
                        Bytes data) override {
    return backing_->put(rank, checkpoint_id, std::move(data));
  }
  [[nodiscard]] ckpt::StoreResult<Bytes> get(
      std::uint32_t rank, std::uint64_t checkpoint_id) const override {
    return backing_->get(rank, checkpoint_id);
  }
  [[nodiscard]] bool contains(std::uint32_t rank,
                              std::uint64_t checkpoint_id) const override {
    return backing_->contains(rank, checkpoint_id);
  }
  [[nodiscard]] std::optional<std::uint64_t> newest_id(
      std::uint32_t rank) const override {
    return backing_->newest_id(rank);
  }
  [[nodiscard]] std::vector<std::uint64_t> list(
      std::uint32_t rank) const override {
    return backing_->list(rank);
  }
  void erase(std::uint32_t rank, std::uint64_t checkpoint_id) override {
    backing_->erase(rank, checkpoint_id);
  }
  void clear() override { backing_->clear(); }

 private:
  ckpt::KvStore* backing_;
};

// KvStore view of a FileStore, so the IO level can live on a real
// filesystem (latest-pointer updates included) behind the manager's
// KvStore interface. Ranks kDedupBlockRank etc. map to directories like
// any other rank.
class FileKvAdapter final : public ckpt::KvStore {
 public:
  explicit FileKvAdapter(ckpt::FileStore* backing) : backing_(backing) {}

  ckpt::StoreStatus put(std::uint32_t rank, std::uint64_t checkpoint_id,
                        Bytes data) override {
    return backing_->put(rank, checkpoint_id, ByteSpan(data));
  }
  [[nodiscard]] ckpt::StoreResult<Bytes> get(
      std::uint32_t rank, std::uint64_t checkpoint_id) const override {
    return backing_->get(rank, checkpoint_id);
  }
  [[nodiscard]] bool contains(std::uint32_t rank,
                              std::uint64_t checkpoint_id) const override {
    return backing_->contains(rank, checkpoint_id);
  }
  [[nodiscard]] std::optional<std::uint64_t> newest_id(
      std::uint32_t rank) const override {
    return backing_->newest_id(rank);
  }
  [[nodiscard]] std::vector<std::uint64_t> list(
      std::uint32_t rank) const override {
    return backing_->list(rank);
  }
  void erase(std::uint32_t rank, std::uint64_t checkpoint_id) override {
    backing_->erase(rank, checkpoint_id);
  }
  void clear() override {}  // unused by the harness; directories persist

 private:
  ckpt::FileStore* backing_;
};

}  // namespace

std::string device_name(std::uint32_t target_id) {
  if (target_id >= kIoBase) return "io";
  if (target_id >= kPartnerBase) {
    return "partner[" + std::to_string(target_id - kPartnerBase) + "]";
  }
  return "local[" + std::to_string(target_id - kLocalBase) + "]";
}

std::string describe(const CrashPoint& point) {
  std::string out = "epoch=" + std::to_string(point.epoch) + " " +
                    device_name(point.device) + " op=" +
                    std::to_string(point.op) + " " +
                    ckpt::to_string(point.site.op) +
                    " rank=" + std::to_string(point.site.rank) +
                    " key=" + std::to_string(point.site.key) + " " +
                    std::to_string(point.site.size) + "B";
  return out;
}

CrashSimulator::CrashSimulator(const CrashSimConfig& config)
    : config_(config) {
  if (config.node_count == 0) {
    throw std::invalid_argument("node_count must be positive");
  }
  if (config.rates.any()) {
    auto plan = std::make_shared<FaultPlan>(config.fault_seed);
    // Local NVM faults arrive through the local_write_hook (attach()),
    // not a store decorator, matching the chaos harness's wiring.
    plan->set_rates(io_target(), config.rates);
    for (std::uint32_t h = 0; h < config.node_count; ++h) {
      plan->set_rates(partner_target(h), config.rates);
      plan->set_rates(local_target(h), config.rates);
    }
    plan_ = std::move(plan);
  }
  local_.reserve(config.node_count);
  partner_.reserve(config.node_count);
  for (std::uint32_t r = 0; r < config.node_count; ++r) {
    local_.push_back(std::make_shared<ckpt::NvmStore>(
        config.nvm_capacity_bytes, config.nvm_dedup_block_bytes));
    if (plan_) {
      partner_.push_back(
          std::make_unique<FaultyKvStore>(plan_, partner_target(r)));
    } else {
      partner_.push_back(std::make_unique<ckpt::KvStore>());
    }
  }
  if (!config.io_root.empty()) {
    if (plan_) {
      io_file_ = std::make_unique<FaultyFileStore>(config.io_root, plan_,
                                                   io_target());
    } else {
      io_file_ = std::make_unique<ckpt::FileStore>(config.io_root);
    }
    io_adapter_ = std::make_unique<FileKvAdapter>(io_file_.get());
  } else if (plan_) {
    io_kv_ = std::make_unique<FaultyKvStore>(plan_, io_target());
  } else {
    io_kv_ = std::make_unique<ckpt::KvStore>();
  }
  devices_.resize(2 * config.node_count + 1);
  for (std::uint32_t h = 0; h < config.node_count; ++h) {
    devices_[h].id = partner_target(h).id;
  }
  devices_[config.node_count].id = io_target().id;
  for (std::uint32_t r = 0; r < config.node_count; ++r) {
    devices_[config.node_count + 1 + r].id = local_target(r).id;
  }
  install_gates();
}

CrashSimulator::~CrashSimulator() {
  // Gates capture `this`; make sure no store outlives the simulator with
  // a dangling gate (local_ are shared_ptrs a caller could hold).
  for (auto& store : local_) store->set_mutation_gate(nullptr);
}

ckpt::KvStore* CrashSimulator::io_view() const {
  return io_adapter_ ? io_adapter_.get() : io_kv_.get();
}

void CrashSimulator::install_gates() {
  for (std::uint32_t h = 0; h < config_.node_count; ++h) {
    partner_[h]->set_mutation_gate(
        [this, h](const ckpt::MutationSite& site) { return gate(h, site); });
  }
  const std::size_t io_index = config_.node_count;
  if (io_file_) {
    io_file_->set_mutation_gate([this, io_index](
                                    const ckpt::MutationSite& site) {
      return gate(io_index, site);
    });
  } else {
    io_kv_->set_mutation_gate([this, io_index](
                                  const ckpt::MutationSite& site) {
      return gate(io_index, site);
    });
  }
  for (std::uint32_t r = 0; r < config_.node_count; ++r) {
    const std::size_t idx = config_.node_count + 1 + r;
    local_[r]->set_mutation_gate(
        [this, idx](const ckpt::MutationSite& site) {
          return gate(idx, site);
        });
  }
}

void CrashSimulator::attach(ckpt::MultilevelConfig& config) const {
  if (config.node_count != config_.node_count) {
    throw std::invalid_argument(
        "manager/simulator node_count mismatch");
  }
  config.nvm_capacity_bytes = config_.nvm_capacity_bytes;
  config.delta.nvm_dedup_block_bytes = config_.nvm_dedup_block_bytes;
  config.nvm_factory = [this](std::uint32_t rank) {
    return local_.at(rank);
  };
  config.store_factory =
      [this](ckpt::StoreLevel level,
             std::uint32_t host) -> std::unique_ptr<ckpt::KvStore> {
    if (level == ckpt::StoreLevel::kPartner) {
      return std::make_unique<ForwardingKvStore>(partner_.at(host).get());
    }
    return std::make_unique<ForwardingKvStore>(io_view());
  };
  if (plan_) {
    config.local_write_hook = make_local_write_hook(plan_);
  }
}

void CrashSimulator::begin_commit(std::uint64_t id) {
  epoch_.store(id, std::memory_order_relaxed);
}

void CrashSimulator::record() {
  mode_ = Mode::kRecord;
  crashed_.store(false, std::memory_order_relaxed);
  for (Device& dev : devices_) {
    dev.events.clear();
    dev.ops = 0;
  }
}

void CrashSimulator::arm(const std::vector<CrashPoint>& golden,
                         std::size_t k, bool torn,
                         std::uint64_t torn_salt) {
  if (k >= golden.size()) {
    throw std::out_of_range("crash point index past the golden run");
  }
  mode_ = Mode::kArmed;
  crashed_.store(false, std::memory_order_relaxed);
  for (Device& dev : devices_) {
    dev.events.clear();
    dev.ops = 0;
    dev.cutoff = 0;
    dev.torn_at_cutoff = false;
    dev.torn_salt = torn_salt;
  }
  // Per-device cutoff: how many of the device's mutations happen strictly
  // before the crash in canonical order. Everything at or past the cutoff
  // is after death - except the crash device's cutoff op itself, which
  // may land torn instead of vanishing.
  auto device_by_id = [&](std::uint32_t id) -> Device& {
    for (Device& dev : devices_) {
      if (dev.id == id) return dev;
    }
    throw std::invalid_argument("crash point names an unknown device");
  };
  for (std::size_t i = 0; i < k; ++i) {
    ++device_by_id(golden[i].device).cutoff;
  }
  device_by_id(golden[k].device).torn_at_cutoff = torn;
}

void CrashSimulator::disarm() {
  mode_ = Mode::kIdle;
  // The armed run's verdict is consumed before restart; clear it so the
  // restarted life reads clean.
  crashed_.store(false, std::memory_order_relaxed);
}

ckpt::MutationDecision CrashSimulator::gate(std::size_t device_index,
                                            ckpt::MutationSite site) {
  Device& dev = devices_[device_index];
  const std::uint64_t op = dev.ops++;
  switch (mode_) {
    case Mode::kIdle:
      return {};
    case Mode::kRecord: {
      CrashPoint point;
      point.epoch = epoch_.load(std::memory_order_relaxed);
      point.device = dev.id;
      point.op = op;
      if (dev.id >= kLocalBase && dev.id < kPartnerBase) {
        // NvmStore does not know its rank; name it for the listing.
        site.rank = dev.id - kLocalBase;
      }
      point.site = site;
      dev.events.push_back(point);
      return {};
    }
    case Mode::kArmed: {
      if (op < dev.cutoff) return {};
      ckpt::MutationDecision decision;
      if (op == dev.cutoff && dev.torn_at_cutoff &&
          site.op == ckpt::MutationOp::kPut) {
        // The dying write lands as a salt-chosen prefix.
        decision.torn = true;
        decision.keep_bytes =
            site.size == 0
                ? 0
                : ckpt::splitmix64(dev.torn_salt ^ (op * 0x9E3779B97F4A7C15ull)) %
                      site.size;
      } else {
        decision.drop = true;
      }
      crashed_.store(true, std::memory_order_relaxed);
      return decision;
    }
  }
  return {};
}

std::vector<CrashPoint> CrashSimulator::canonical_points() const {
  std::vector<CrashPoint> all;
  for (const Device& dev : devices_) {
    all.insert(all.end(), dev.events.begin(), dev.events.end());
  }
  std::sort(all.begin(), all.end(),
            [](const CrashPoint& a, const CrashPoint& b) {
              if (a.epoch != b.epoch) return a.epoch < b.epoch;
              const int pa = phase_of(a.device);
              const int pb = phase_of(b.device);
              if (pa != pb) return pa < pb;
              if (a.device != b.device) return a.device < b.device;
              return a.op < b.op;
            });
  return all;
}

}  // namespace ndpcr::faults
