#pragma once

// Deterministic fault schedules for the checkpoint data path.
//
// A FaultPlan is a pure function of (seed, target, operation, op index):
// nothing is sampled at injection time, so a schedule replays
// bit-identically across runs, thread counts and machines. Faults model
// the failure classes the paper's multilevel design defends against:
//
//   kTransient - retryable I/O error (dropped request, timeout)
//   kTorn      - a write that lands truncated but reports success
//   kBitFlip   - silent corruption of the stored/returned bytes
//   kStall     - the operation succeeds but costs extra (virtual) latency
//   kOutage    - permanent device loss for a window of operations
//
// Targets identify a device: each rank's local NVM, each node's partner
// space, and the shared IO (PFS) store. The decorator stores in
// faulty_stores.hpp consult the plan on every operation; consumers never
// see the plan, only the typed StoreErrors it produces.

#include <cstdint>
#include <map>
#include <vector>

namespace ndpcr::faults {

enum class FaultKind : std::uint8_t {
  kNone,
  kTransient,
  kTorn,
  kBitFlip,
  kStall,
  kOutage,
};

const char* to_string(FaultKind kind);

enum class StoreOp : std::uint8_t { kPut, kGet };

// A fault-injection target (one simulated device).
struct Target {
  std::uint32_t id = 0;

  friend bool operator<(Target a, Target b) { return a.id < b.id; }
  friend bool operator==(Target a, Target b) { return a.id == b.id; }
};

// Rank r's local NVM device.
Target local_target(std::uint32_t rank);
// The partner space hosted by node `host`.
Target partner_target(std::uint32_t host);
// The shared IO (PFS) store.
Target io_target();

// Per-operation fault probabilities. Torn writes apply to puts only
// (reads of a torn entry see the truncation, they do not cause it).
struct FaultRates {
  double transient = 0.0;
  double torn = 0.0;
  double bitflip = 0.0;
  double stall = 0.0;

  [[nodiscard]] bool any() const {
    return transient > 0 || torn > 0 || bitflip > 0 || stall > 0;
  }
};

class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed, FaultRates default_rates = {});

  // Override the rates for one target (e.g. make only the IO store flaky).
  void set_rates(Target target, FaultRates rates);

  // Permanent outage: every operation on `target` with op index in
  // [first_op, last_op] fails kOutage. Models a device that is down for a
  // while and then comes back (bounded window) or forever (last_op =
  // UINT64_MAX).
  void add_outage(Target target, std::uint64_t first_op,
                  std::uint64_t last_op);

  // Force a specific fault at one (target, op index); overrides rates and
  // outages. Test hook for exact scenarios.
  void force(Target target, std::uint64_t op_index, FaultKind kind);

  // The scheduled fault for this operation. Pure: same arguments, same
  // answer, forever.
  [[nodiscard]] FaultKind decide(Target target, StoreOp op,
                                 std::uint64_t op_index) const;

  // Deterministic per-operation salt for corruption/truncation positions.
  [[nodiscard]] std::uint64_t salt(Target target,
                                   std::uint64_t op_index) const;

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  struct Outage {
    std::uint64_t first_op;
    std::uint64_t last_op;
  };

  [[nodiscard]] const FaultRates& rates_for(Target target) const;

  std::uint64_t seed_;
  FaultRates default_rates_;
  std::map<Target, FaultRates> per_target_rates_;
  std::map<Target, std::vector<Outage>> outages_;
  std::map<std::pair<std::uint32_t, std::uint64_t>, FaultKind> forced_;
};

}  // namespace ndpcr::faults
