#include "faults/chaos.hpp"

#include <cstring>
#include <deque>
#include <map>
#include <string>
#include <utility>

#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ndpcr::faults {
namespace {

void feed_u64(Crc32& crc, std::uint64_t v) { crc.update(&v, sizeof v); }

void feed_double(Crc32& crc, double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof bits);
  feed_u64(crc, bits);
}

void feed_level(Crc32& crc, const ckpt::LevelHealth& h) {
  feed_u64(crc, static_cast<std::uint64_t>(h.state));
  feed_u64(crc, h.puts);
  feed_u64(crc, h.put_retries);
  feed_u64(crc, h.put_failures);
  feed_u64(crc, h.verify_failures);
  feed_u64(crc, h.quarantined);
  feed_u64(crc, h.read_retries);
  feed_u64(crc, h.degraded_commits);
  feed_u64(crc, h.repairs);
  feed_double(crc, h.backoff_seconds);
}

void violation(ChaosReport& report, std::string note) {
  ++report.violations;
  if (report.violation_notes.size() < 8) {
    report.violation_notes.push_back("seed " +
                                     std::to_string(report.seed) + ": " +
                                     std::move(note));
  }
}

// Counters may only grow, and a level may leave the degraded state only
// through a counted repair.
void check_level_monotone(ChaosReport& report, const char* name,
                          const ckpt::LevelHealth& prev,
                          const ckpt::LevelHealth& now) {
  const bool decreased =
      now.puts < prev.puts || now.put_retries < prev.put_retries ||
      now.put_failures < prev.put_failures ||
      now.verify_failures < prev.verify_failures ||
      now.quarantined < prev.quarantined ||
      now.read_retries < prev.read_retries ||
      now.degraded_commits < prev.degraded_commits ||
      now.repairs < prev.repairs ||
      now.backoff_seconds < prev.backoff_seconds;
  if (decreased) {
    violation(report, std::string(name) + " level counter decreased");
  }
  if (prev.degraded() && !now.degraded() && now.repairs <= prev.repairs) {
    violation(report, std::string(name) +
                          " level left degraded without a repair");
  }
}

void check_health_monotone(ChaosReport& report,
                           const ckpt::HealthReport& prev,
                           const ckpt::HealthReport& now) {
  check_level_monotone(report, "local", prev.local, now.local);
  check_level_monotone(report, "partner", prev.partner, now.partner);
  check_level_monotone(report, "io", prev.io, now.io);
  if (now.commits < prev.commits ||
      now.degraded_commits < prev.degraded_commits) {
    violation(report, "global health counter decreased");
  }
}

void feed_data_path(Crc32& crc, const ckpt::DataPathStats& d) {
  feed_u64(crc, d.commits_full);
  feed_u64(crc, d.commits_delta);
  feed_u64(crc, d.payload_bytes_in);
  feed_u64(crc, d.delta_input_bytes);
  feed_u64(crc, d.delta_encoded_bytes);
  feed_u64(crc, d.local_bytes_written);
  feed_u64(crc, d.partner_bytes_written);
  feed_u64(crc, d.io_logical_bytes);
  feed_u64(crc, d.io_bytes_written);
  feed_u64(crc, d.dedup_new_bytes);
  feed_u64(crc, d.dedup_dup_bytes);
  feed_u64(crc, d.chain_links);
  feed_u64(crc, d.chain_replays);
}

}  // namespace

Bytes chaos_payload(Rng& rng, std::size_t base_size) {
  Bytes payload(base_size + rng.next_below(256));
  std::size_t i = 0;
  while (i < payload.size()) {
    const std::uint64_t word = rng.next_u64();
    const std::size_t n = std::min(sizeof word, payload.size() - i);
    std::memcpy(payload.data() + i, &word, n);
    i += n;
  }
  return payload;
}

// Rewrite ~fraction of the payload at seeded positions: the sparse-update
// workload that gives the delta/dedup layers something to save.
void chaos_sparse_update(Rng& rng, Bytes& payload, double fraction) {
  if (payload.empty()) return;
  const auto touches = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             static_cast<double>(payload.size()) * fraction));
  for (std::uint64_t t = 0; t < touches; ++t) {
    const std::size_t pos = rng.next_below(payload.size());
    payload[pos] = static_cast<std::byte>(rng.next_below(256));
  }
}

ChaosReport run_chaos(const ChaosConfig& config) {
  ChaosReport report;
  report.seed = config.seed;

  auto plan = std::make_shared<FaultPlan>(config.seed, config.rates);
  if (config.io_outage) {
    // Blanket the middle third of the IO store's expected operation count
    // (puts + verify readbacks), so the run shows degradation and repair.
    const std::uint64_t io_commits =
        config.io_every > 0 ? config.commits / config.io_every : 0;
    const std::uint64_t expected_ops =
        2ull * config.node_count * std::max<std::uint64_t>(io_commits, 1);
    plan->add_outage(io_target(), expected_ops / 3,
                     2 * expected_ops / 3);
  }

  auto local_stats = std::make_shared<FaultStats>();
  std::vector<const FaultyKvStore*> tracked;

  // Per-store injection buffers: a deque for stable addresses (stores
  // keep raw pointers), spliced into the tracer in creation order after
  // the run. Tracks 32+ keep fault rows clear of the manager's ranks.
  obs::Tracer* tracer = config.trace;
  const bool tracing = tracer != nullptr && tracer->enabled();
  std::deque<obs::TraceBuffer> fault_bufs;

  ckpt::MultilevelConfig mc;
  mc.node_count = config.node_count;
  mc.nvm_capacity_bytes = (config.payload_bytes + 4096) * 4;
  mc.partner_every = config.partner_every;
  mc.io_every = config.io_every;
  mc.partner_scheme = config.scheme;
  mc.xor_group_size = config.xor_group_size;
  mc.io_codec = config.io_codec;
  mc.io_codec_level = config.io_codec == compress::CodecId::kNull ? 0 : 1;
  mc.io_chunk_bytes = config.io_chunk_bytes;
  mc.io_threads = config.io_threads;
  mc.pool = config.pool;
  mc.trace = config.trace;
  if (config.delta_chain > 0) {
    mc.delta.enabled = true;
    mc.delta.chain_length = config.delta_chain;
    mc.delta.block_bytes = config.delta_block_bytes;
  }
  if (config.io_dedup) {
    mc.delta.io_dedup = true;
    // CDC parameters scaled to the KB-sized chaos payloads.
    mc.delta.cdc = {256, 512, 1024};
  }
  mc.store_factory = [&](ckpt::StoreLevel level, std::uint32_t host) {
    const Target target = level == ckpt::StoreLevel::kIo
                              ? io_target()
                              : partner_target(host);
    auto store = std::make_unique<FaultyKvStore>(plan, target);
    if (tracing) {
      const auto track = static_cast<std::uint32_t>(32 + fault_bufs.size());
      tracer->set_track_name(
          track, std::string(level == ckpt::StoreLevel::kIo ? "fault io h"
                                                            : "fault partner h") +
                     std::to_string(host));
      fault_bufs.emplace_back();
      store->set_trace(&fault_bufs.back(), track);
    }
    tracked.push_back(store.get());
    return store;
  };
  mc.local_write_hook = make_local_write_hook(plan, local_stats);
  ckpt::MultilevelManager manager(mc);

  Rng rng(exec::sub_seed(config.seed, 0xC4A05));
  std::map<std::uint64_t, std::vector<Bytes>> committed;
  std::uint64_t last_committed = 0;
  ckpt::HealthReport prev_health;
  Crc32 crc;

  auto probe_recovery = [&] {
    ++report.recover_calls;
    const auto recovery = manager.recover();
    check_health_monotone(report, prev_health, manager.health());
    prev_health = manager.health();
    if (!recovery) {
      ++report.unrecoverable;
      feed_u64(crc, 0);
      return;
    }
    ++report.recoveries;
    feed_u64(crc, recovery->checkpoint_id);
    if (recovery->checkpoint_id > last_committed) {
      violation(report, "recovered id " +
                            std::to_string(recovery->checkpoint_id) +
                            " newer than last committed " +
                            std::to_string(last_committed));
    }
    const auto it = committed.find(recovery->checkpoint_id);
    if (it == committed.end()) {
      violation(report, "recovered an id that was never committed");
      return;
    }
    for (std::uint32_t rank = 0; rank < config.node_count; ++rank) {
      feed_u64(crc, static_cast<std::uint64_t>(recovery->levels[rank]));
      if (recovery->payloads[rank] != it->second[rank]) {
        violation(report, "rank " + std::to_string(rank) +
                              " payload mismatch at id " +
                              std::to_string(recovery->checkpoint_id));
      }
    }
  };

  // Sparse-update mode: persistent per-rank state, perturbed a little
  // each commit (sizes stay fixed so consecutive checkpoints align).
  std::vector<Bytes> state;
  if (config.sparse_updates) {
    state.reserve(config.node_count);
    for (std::uint32_t rank = 0; rank < config.node_count; ++rank) {
      state.push_back(chaos_payload(rng, config.payload_bytes));
    }
  }

  for (std::uint32_t i = 0; i < config.commits; ++i) {
    std::vector<Bytes> payloads;
    payloads.reserve(config.node_count);
    for (std::uint32_t rank = 0; rank < config.node_count; ++rank) {
      if (config.sparse_updates) {
        chaos_sparse_update(rng, state[rank], config.update_fraction);
        payloads.push_back(state[rank]);
      } else {
        payloads.push_back(chaos_payload(rng, config.payload_bytes));
      }
    }
    std::vector<ByteSpan> views(payloads.begin(), payloads.end());
    const std::uint64_t id = manager.commit(views);
    ++report.commits;
    last_committed = id;
    committed.emplace(id, std::move(payloads));
    check_health_monotone(report, prev_health, manager.health());
    prev_health = manager.health();

    if (rng.next_double() < config.p_fail_node) {
      const auto victim =
          static_cast<std::uint32_t>(rng.next_below(config.node_count));
      manager.fail_node(victim);
      ++report.node_failures;
      if (tracing) {
        tracer->instant("node_failure", "chaos", 0,
                        {obs::u64("rank", victim), obs::u64("commit", i)});
      }
    }
    if (rng.next_double() < config.p_corrupt) {
      const auto level = rng.next_below(3);
      const auto rank =
          static_cast<std::uint32_t>(rng.next_below(config.node_count));
      const bool did = level == 0   ? manager.corrupt_local(rank)
                       : level == 1 ? manager.corrupt_partner(rank)
                                    : manager.corrupt_io(rank);
      if (did) ++report.corruptions;
      if (tracing) {
        tracer->instant(
            "silent_corruption", "chaos", 0,
            {obs::str("level", level == 0   ? "local"
                               : level == 1 ? "partner"
                                            : "io"),
             obs::u64("rank", rank), obs::u64("hit", did ? 1 : 0)});
      }
    }
    if (rng.next_double() < config.p_recover) probe_recovery();
  }
  probe_recovery();  // every run ends with a full recovery check

  report.health = manager.health();
  report.data = manager.data_path();
  report.faults = *local_stats;
  for (const FaultyKvStore* store : tracked) {
    report.faults += store->stats();
  }

  if (tracing) {
    // Fault rows land after the commit/recover spans; within a row the
    // events keep the store's deterministic op order.
    if (obs::TraceBuffer* rb = tracer->root()) {
      for (obs::TraceBuffer& buf : fault_bufs) rb->append(std::move(buf));
    }
  }
  if (config.metrics != nullptr) {
    obs::MetricsRegistry& m = *config.metrics;
    ckpt::record_health(m, report.health, "chaos");
    ckpt::record_data_path(m, report.data, "chaos.data");
    ckpt::record_pipeline(m, manager.pipeline(), "chaos.pipeline");
    m.counter("chaos.run.commits").add(report.commits);
    m.counter("chaos.run.recover_calls").add(report.recover_calls);
    m.counter("chaos.run.recoveries").add(report.recoveries);
    m.counter("chaos.run.unrecoverable").add(report.unrecoverable);
    m.counter("chaos.run.node_failures").add(report.node_failures);
    m.counter("chaos.run.corruptions").add(report.corruptions);
    m.counter("chaos.run.violations").add(report.violations);
    m.counter("chaos.faults.ops").add(report.faults.ops);
    m.counter("chaos.faults.injected").add(report.faults.injected());
    m.gauge("chaos.faults.stall_seconds").set(report.faults.stall_seconds);
  }

  feed_u64(crc, report.commits);
  feed_u64(crc, report.recover_calls);
  feed_u64(crc, report.recoveries);
  feed_u64(crc, report.unrecoverable);
  feed_u64(crc, report.node_failures);
  feed_u64(crc, report.corruptions);
  feed_u64(crc, report.violations);
  feed_level(crc, report.health.local);
  feed_level(crc, report.health.partner);
  feed_level(crc, report.health.io);
  feed_u64(crc, report.health.commits);
  feed_u64(crc, report.health.degraded_commits);
  feed_data_path(crc, report.data);
  feed_u64(crc, report.faults.ops);
  feed_u64(crc, report.faults.injected());
  feed_double(crc, report.faults.stall_seconds);
  report.fingerprint = crc.value();
  return report;
}

std::vector<ChaosReport> run_chaos_suite(
    const std::vector<ChaosConfig>& configs, exec::TaskPool& pool) {
  return pool.parallel_map(configs.size(), [&](std::size_t i) {
    return run_chaos(configs[i]);
  });
}

std::uint32_t health_fingerprint(const ckpt::HealthReport& health) {
  Crc32 crc;
  feed_level(crc, health.local);
  feed_level(crc, health.partner);
  feed_level(crc, health.io);
  feed_u64(crc, health.commits);
  feed_u64(crc, health.degraded_commits);
  return crc.value();
}

std::uint32_t suite_fingerprint(const std::vector<ChaosReport>& reports) {
  Crc32 crc;
  for (const ChaosReport& report : reports) {
    feed_u64(crc, report.fingerprint);
    feed_u64(crc, report.violations);
  }
  return crc.value();
}

}  // namespace ndpcr::faults
