#pragma once

// Fault-injecting decorators over the checkpoint stores. Each decorator
// numbers its operations (puts and gets share one counter per store) and
// asks the FaultPlan what happens:
//
//   kTransient / kOutage - the operation fails with a typed StoreError
//                          (transient resp. permanent); nothing is stored.
//   kTorn                - put: a truncated prefix is stored and success
//                          is reported. Only write-verify readback or CRC
//                          validation can catch it.
//   kBitFlip             - put: one byte of the stored copy is flipped;
//                          get: one byte of the returned copy is flipped
//                          (the stored entry stays intact).
//   kStall               - the operation succeeds, but virtual latency is
//                          charged to the stats.
//
// The decorators are the only code that consults the plan; consumers just
// see StoreStatus/StoreResult and the self-healing layers react.

#include <cstdint>
#include <functional>
#include <memory>

#include "ckpt/file_store.hpp"
#include "ckpt/stores.hpp"
#include "faults/fault_plan.hpp"

namespace ndpcr::obs {
class TraceBuffer;
}  // namespace ndpcr::obs

namespace ndpcr::faults {

// Virtual seconds charged per kStall fault.
inline constexpr double kStallSeconds = 0.05;

struct FaultStats {
  std::uint64_t ops = 0;               // store operations observed
  std::uint64_t transient_errors = 0;  // kTransient injections
  std::uint64_t torn_writes = 0;       // kTorn injections
  std::uint64_t bit_flips = 0;         // kBitFlip injections
  std::uint64_t stalls = 0;            // kStall injections
  std::uint64_t outage_errors = 0;     // kOutage injections
  double stall_seconds = 0.0;          // virtual latency charged

  [[nodiscard]] std::uint64_t injected() const {
    return transient_errors + torn_writes + bit_flips + stalls +
           outage_errors;
  }

  FaultStats& operator+=(const FaultStats& other);
};

// KvStore (partner / IO level) with seeded fault injection. Inherits the
// plain store's state; overrides route through the plan first.
class FaultyKvStore final : public ckpt::KvStore {
 public:
  FaultyKvStore(std::shared_ptr<const FaultPlan> plan, Target target);

  ckpt::StoreStatus put(std::uint32_t rank, std::uint64_t checkpoint_id,
                        Bytes data) override;
  [[nodiscard]] ckpt::StoreResult<Bytes> get(
      std::uint32_t rank, std::uint64_t checkpoint_id) const override;

  [[nodiscard]] const FaultStats& stats() const { return stats_; }
  [[nodiscard]] Target target() const { return target_; }

  // Optional trace attachment (docs/OBSERVABILITY.md): every injected
  // fault becomes an instant event on `track`, stamped with the store's
  // op index. The op counter is already unsynchronized, so callers must
  // serialize operations per store; the buffer rides the same rule.
  void set_trace(obs::TraceBuffer* buf, std::uint32_t track) {
    trace_buf_ = buf;
    trace_track_ = track;
  }

 private:
  std::shared_ptr<const FaultPlan> plan_;
  Target target_;
  obs::TraceBuffer* trace_buf_ = nullptr;
  std::uint32_t trace_track_ = 0;
  // get() is logically const; operation numbering and stats are not.
  mutable std::uint64_t op_counter_ = 0;
  mutable FaultStats stats_;
};

// FileStore with the same decoration, for fault-injecting real-filesystem
// paths (e.g. the integration example's PFS directory).
class FaultyFileStore final : public ckpt::FileStore {
 public:
  FaultyFileStore(std::filesystem::path root,
                  std::shared_ptr<const FaultPlan> plan, Target target);

  ckpt::StoreStatus put(std::uint32_t rank, std::uint64_t checkpoint_id,
                        ByteSpan data) override;
  [[nodiscard]] ckpt::StoreResult<Bytes> get(
      std::uint32_t rank, std::uint64_t checkpoint_id) const override;

  [[nodiscard]] const FaultStats& stats() const { return stats_; }

  // Same contract as FaultyKvStore::set_trace.
  void set_trace(obs::TraceBuffer* buf, std::uint32_t track) {
    trace_buf_ = buf;
    trace_track_ = track;
  }

 private:
  std::shared_ptr<const FaultPlan> plan_;
  Target target_;
  obs::TraceBuffer* trace_buf_ = nullptr;
  std::uint32_t trace_track_ = 0;
  mutable std::uint64_t op_counter_ = 0;
  mutable FaultStats stats_;
};

// Forwarding fault decorator over a store the caller does NOT own.
// FaultyKvStore above *is* the device (it inherits the entry map), which
// is right when each manager gets a private store - but the service layer
// (src/svc) shares one IO device across tenants, and each tenant needs
// its own fault schedule over its own window of that device. The proxy
// holds no entries: it numbers operations, consults the plan, and
// forwards to `inner` (typically a ckpt::TenantStoreView). Injection
// semantics match FaultyKvStore exactly; a null plan forwards everything
// untouched.
//
// Like every fault store, operations must be serialized per proxy (the op
// counter and stats are unsynchronized) - the manager's data path already
// guarantees that for remote stores.
class FaultyStoreProxy final : public ckpt::KvStore {
 public:
  FaultyStoreProxy(std::shared_ptr<const FaultPlan> plan, Target target,
                   std::unique_ptr<ckpt::KvStore> inner);

  ckpt::StoreStatus put(std::uint32_t rank, std::uint64_t checkpoint_id,
                        Bytes data) override;
  [[nodiscard]] ckpt::StoreResult<Bytes> get(
      std::uint32_t rank, std::uint64_t checkpoint_id) const override;
  [[nodiscard]] bool contains(std::uint32_t rank,
                              std::uint64_t checkpoint_id) const override;
  [[nodiscard]] std::optional<std::uint64_t> newest_id(
      std::uint32_t rank) const override;
  [[nodiscard]] std::vector<std::uint64_t> list(
      std::uint32_t rank) const override;
  void erase(std::uint32_t rank, std::uint64_t checkpoint_id) override;
  void clear() override;

  [[nodiscard]] const FaultStats& stats() const { return stats_; }
  [[nodiscard]] ckpt::KvStore& inner() { return *inner_; }

 private:
  std::shared_ptr<const FaultPlan> plan_;  // may be null (clean tenant)
  Target target_;
  std::unique_ptr<ckpt::KvStore> inner_;
  mutable std::uint64_t op_counter_ = 0;
  mutable FaultStats stats_;
};

// Local-NVM write hook for MultilevelConfig::local_write_hook: consults
// the plan under local_target(rank) and mutates the staged image for
// kTorn / kBitFlip faults (transients and outages do not apply to a local
// memory write). The commit path's verify readback catches the damage.
// Stats (if non-null) accumulate across all ranks.
std::function<void(std::uint32_t, std::uint64_t, Bytes&)>
make_local_write_hook(std::shared_ptr<const FaultPlan> plan,
                      std::shared_ptr<FaultStats> stats = nullptr);

}  // namespace ndpcr::faults
