#pragma once

// Deterministic crash-point injection for the restart-equivalence harness
// (docs/EQUIVALENCE.md).
//
// A CrashSimulator owns the durable state of one simulated job - the
// per-rank NVM devices, the partner spaces, and the IO store (in-memory,
// or a real FileStore directory) - and hands MultilevelManagers *views*
// of it: the manager dies, the bytes survive, exactly like a process
// crash under a real NVDIMM and file system. MutationGates installed on
// the backing stores see every durable-state mutation (puts, erases,
// latest-pointer updates) and drive three modes:
//
//   record - a golden run: every mutation is logged as a numbered event.
//   armed  - a crash run: the k-th event of the golden run's *canonical
//            order* is the point of death. The dying mutation is either
//            dropped or lands torn (a truncated prefix); every mutation
//            canonically after it is dropped. Dropped mutations report
//            success - a dead process does not observe its own failed
//            writes, and the dying manager's in-memory state is discarded
//            anyway.
//   idle   - gates pass everything through (the restart manager's life).
//
// The canonical order sorts events by (epoch, phase, device, op) where
// phase follows the commit pipeline - partner spaces, then IO, then local
// NVM - and `op` is the device's own mutation counter. Because each
// device's mutation sequence is deterministic (stores are driven serially
// per device, and fault schedules are pure functions of op index), the
// per-device cutoffs derived from a golden run select the same surviving
// bytes at any thread-pool size: crashing is a per-device-local decision,
// never a question of cross-device timing.

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/file_store.hpp"
#include "ckpt/multilevel.hpp"
#include "ckpt/mutation_gate.hpp"
#include "ckpt/nvm_store.hpp"
#include "ckpt/stores.hpp"
#include "faults/fault_plan.hpp"

namespace ndpcr::faults {

// One durable-state mutation observed during a recorded (golden) run -
// equivalently, one point at which a crash run can die.
struct CrashPoint {
  std::uint64_t epoch = 0;  // commit id the mutation belongs to
  std::uint32_t device = 0; // faults::Target id (local/partner/io spaces)
  std::uint64_t op = 0;     // the device's own mutation index
  ckpt::MutationSite site;  // what the mutation was
};

// "local[2]" / "partner[0]" / "io" for a Target id.
std::string device_name(std::uint32_t target_id);

// One-line description for `ndpcr equiv --list-crash-points`.
std::string describe(const CrashPoint& point);

struct CrashSimConfig {
  std::uint32_t node_count = 1;
  std::size_t nvm_capacity_bytes = 64ull << 20;
  std::size_t nvm_dedup_block_bytes = 0;
  // Seeded IO-fault schedule layered *under* the crash gates (the same
  // FaultyKvStore decorators the chaos harness uses), so crash points can
  // land inside retry/quarantine sequences. Zero rates = clean devices.
  FaultRates rates;
  std::uint64_t fault_seed = 1;
  // Non-empty: back the IO level with a real FileStore rooted here, which
  // puts the latest-pointer updates (and their crash atomicity) into the
  // sweep. Empty: in-memory IO store.
  std::filesystem::path io_root;
};

class CrashSimulator {
 public:
  explicit CrashSimulator(const CrashSimConfig& config);
  ~CrashSimulator();

  CrashSimulator(const CrashSimulator&) = delete;
  CrashSimulator& operator=(const CrashSimulator&) = delete;

  // Point `config` at this simulator's durable stores: nvm_factory hands
  // out the shared NVM devices, store_factory forwarding views over the
  // partner/IO stores, and (when fault rates are set) local_write_hook
  // the seeded NVM-write mangler. node_count must match.
  void attach(ckpt::MultilevelConfig& config) const;

  // Subsequent mutations belong to commit `id` (call before each commit).
  void begin_commit(std::uint64_t id);

  // Enter golden-run mode: log every mutation, pass everything through.
  void record();

  // Enter crash-run mode: die at `golden[k]`. The dying mutation lands
  // torn (a salt-derived prefix) when `torn`, else vanishes; every
  // mutation canonically after it is dropped. `golden` must be the
  // canonical_points() of a golden run over an identically-seeded
  // simulator.
  void arm(const std::vector<CrashPoint>& golden, std::size_t k, bool torn,
           std::uint64_t torn_salt);

  // Leave gating (restart mode): mutations pass through unlogged.
  void disarm();

  // The recorded golden run in canonical order: epoch, then commit phase
  // (partner -> io -> local), then device, then the device's op index.
  [[nodiscard]] std::vector<CrashPoint> canonical_points() const;

  // Whether an armed run actually reached its crash point.
  [[nodiscard]] bool crashed() const {
    return crashed_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint32_t node_count() const {
    return config_.node_count;
  }

 private:
  enum class Mode : std::uint8_t { kIdle, kRecord, kArmed };

  struct Device {
    std::uint32_t id = 0;            // faults::Target id
    std::vector<CrashPoint> events;  // record mode log
    std::uint64_t ops = 0;           // mutations seen this run
    std::uint64_t cutoff = 0;        // armed: ops >= cutoff are dead
    bool torn_at_cutoff = false;     // armed: the op AT cutoff lands torn
    std::uint64_t torn_salt = 0;
  };

  [[nodiscard]] ckpt::KvStore* io_view() const;
  ckpt::MutationDecision gate(std::size_t device_index,
                              ckpt::MutationSite site);
  void install_gates();

  CrashSimConfig config_;
  std::shared_ptr<const FaultPlan> plan_;  // null when rates are zero
  std::vector<std::shared_ptr<ckpt::NvmStore>> local_;
  std::vector<std::unique_ptr<ckpt::KvStore>> partner_;
  std::unique_ptr<ckpt::KvStore> io_kv_;        // in-memory IO backing
  std::unique_ptr<ckpt::FileStore> io_file_;    // file-backed IO backing
  std::unique_ptr<ckpt::KvStore> io_adapter_;   // KvStore view of io_file_
  // devices_[0..N-1] partner hosts, [N] io, [N+1..2N] local ranks.
  std::vector<Device> devices_;
  Mode mode_ = Mode::kIdle;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<bool> crashed_{false};
};

}  // namespace ndpcr::faults
