#pragma once

// Crash-anywhere restart-equivalence harness (docs/EQUIVALENCE.md).
//
// The proof obligation: for EVERY durable-state mutation a checkpointed
// run performs, a process that dies exactly there - losing its in-flight
// buffers, possibly leaving the dying write as a torn prefix - and then
// restarts from whatever checkpoint level survives, finishes the
// computation with BIT-IDENTICAL final state to the run that never
// crashed.
//
// The harness proves it by construction:
//
//   1. Golden run: NPB-style proxy kernels (one per rank) iterate and
//      checkpoint on a cadence through a MultilevelManager whose durable
//      stores live in a CrashSimulator recording every mutation. The
//      final per-rank state fingerprints and every committed payload's
//      CRC are the reference.
//   2. Crash-point sweep: for each canonical mutation index k, a fresh,
//      identically-seeded simulator is armed to die at k; the run is
//      replayed until the crash fires, the manager is destroyed (process
//      death), and a new manager is built over the surviving bytes with
//      adopt_existing. recover() picks the newest restorable checkpoint,
//      the kernels restore and run to completion, and the final
//      fingerprints must equal the golden run's.
//   3. Invariants checked along the way: the recovered id never exceeds
//      the id being committed at death, recovered payloads match the
//      golden run's committed payload CRCs bit-for-bit, all ranks agree
//      on the resume iteration, and every post-restart iteration passes
//      the kernel's residual verify().
//
// Everything is a pure function of the config (seeds included), so a
// sweep replays identically across machines and thread counts; the
// sweep fingerprint pins that in tests at pool sizes 1/2/8.

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "faults/crash.hpp"
#include "faults/fault_plan.hpp"

namespace ndpcr::exec {
class TaskPool;
}  // namespace ndpcr::exec

namespace ndpcr::harness {

// Which commit-path flavor the managers run.
enum class PayloadMode { kFull, kDelta, kDedup };

const char* to_string(PayloadMode mode);
PayloadMode payload_mode_from(const std::string& name);  // throws on junk

struct EquivalenceConfig {
  std::string kernel = "cg";  // workloads::proxy_kernel_names()
  PayloadMode mode = PayloadMode::kFull;
  std::uint32_t node_count = 3;
  std::uint64_t iterations = 12;  // solver iterations per rank
  std::uint64_t cadence = 3;      // checkpoint every `cadence` iterations
  std::size_t state_bytes = 32 << 10;  // per-rank kernel state target
  std::uint32_t partner_every = 1;
  std::uint32_t io_every = 2;
  std::uint64_t seed = 1;
  // Online per-rank codec selection on the IO level (docs/PERF.md). The
  // sweep proves the probe's choices - recorded in each stream's
  // container header - survive any crash point: restart managers decode
  // whatever codec the dying run picked.
  bool io_codec_adaptive = false;
  // Async IO writer depth (MultilevelConfig::io_writer_depth): the
  // default 2 sweeps the pipelined commit path; 0 pins the serial
  // reference.
  std::size_t io_writer_depth = 2;
  // Seeded device-fault schedule under the crash gates (clean when zero).
  faults::FaultRates rates;
  std::uint64_t fault_seed = 1;
  bool torn = true;  // dying writes land as torn prefixes (vs vanish)
  // Optional file-backed IO level: each run gets its own subdirectory.
  std::filesystem::path io_root;
  exec::TaskPool* pool = nullptr;  // null = the process-wide pool
};

struct GoldenRun {
  std::vector<faults::CrashPoint> points;  // canonical crash enumeration
  std::vector<std::uint64_t> rank_fingerprints;
  std::uint64_t final_fingerprint = 0;  // rank fingerprints folded
  // CRC32 of every committed payload, keyed (rank, checkpoint id): the
  // bit-equivalence reference for recovered payloads.
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint32_t>
      payload_crcs;
  std::uint64_t commits = 0;
};

struct CrashRunResult {
  std::size_t point = 0;     // canonical index k
  bool crashed = false;      // the armed run reached its point
  bool recovered = false;    // restart found a restorable checkpoint
  std::uint64_t recovered_id = 0;  // 0 when !recovered
  bool equivalent = false;   // final fingerprints match the golden run
  bool invariants_ok = false;
  std::string failure;  // empty iff equivalent && invariants_ok

  [[nodiscard]] bool ok() const { return equivalent && invariants_ok; }
};

struct SweepReport {
  GoldenRun golden;
  std::size_t points_total = 0;
  std::size_t points_run = 0;
  std::size_t failures = 0;
  std::vector<CrashRunResult> failed;  // failing points, in k order
  // CRC32 over every run point's (k, crashed, recovered_id, ok) stream:
  // one word that must agree across thread counts and machines.
  std::uint32_t fingerprint = 0;

  [[nodiscard]] bool ok() const { return failures == 0; }
};

// Run the golden (crash-free) reference for `config`.
[[nodiscard]] GoldenRun run_golden(const EquivalenceConfig& config);

// Replay with a crash at canonical point k, restart, run to completion,
// and compare against `golden`. k must be < golden.points.size().
[[nodiscard]] CrashRunResult run_crash_point(const EquivalenceConfig& config,
                                             const GoldenRun& golden,
                                             std::size_t k);

// Golden run + crash sweep over every `stride`-th canonical point
// (stride 1 = every durable mutation).
[[nodiscard]] SweepReport run_sweep(const EquivalenceConfig& config,
                                    std::size_t stride = 1);

}  // namespace ndpcr::harness
