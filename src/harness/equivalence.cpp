#include "harness/equivalence.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "ckpt/multilevel.hpp"
#include "common/crc32.hpp"
#include "exec/task_pool.hpp"
#include "workloads/proxy_kernels.hpp"

namespace ndpcr::harness {
namespace {

using Kernels = std::vector<std::unique_ptr<workloads::ProxyKernel>>;

std::uint32_t crc_of(ByteSpan data) {
  Crc32 crc;
  crc.update(data);
  return crc.value();
}

faults::CrashSimConfig sim_config(const EquivalenceConfig& config,
                                  const std::string& run_name) {
  faults::CrashSimConfig sc;
  sc.node_count = config.node_count;
  // Generous circular-buffer headroom: old checkpoints may evict, the
  // current one must always fit.
  sc.nvm_capacity_bytes =
      std::max<std::size_t>(1u << 20, config.state_bytes * 16);
  sc.rates = config.rates;
  sc.fault_seed = config.fault_seed;
  if (!config.io_root.empty()) sc.io_root = config.io_root / run_name;
  return sc;
}

ckpt::MultilevelConfig manager_config(const EquivalenceConfig& config) {
  ckpt::MultilevelConfig mc;
  mc.app_id = 7;
  mc.node_count = config.node_count;
  mc.partner_every = config.partner_every;
  mc.io_every = config.io_every;
  mc.io_codec_adaptive = config.io_codec_adaptive;
  mc.io_writer_depth = config.io_writer_depth;
  mc.io_chunk_bytes = 4096;  // several chunks per rank at smoke scale
  mc.pool = config.pool;
  switch (config.mode) {
    case PayloadMode::kFull:
      break;
    case PayloadMode::kDelta:
      mc.delta.enabled = true;
      mc.delta.chain_length = 3;
      mc.delta.block_bytes = 1024;
      break;
    case PayloadMode::kDedup:
      mc.delta.io_dedup = true;
      break;
  }
  return mc;
}

Kernels make_kernels(const EquivalenceConfig& config) {
  Kernels kernels;
  kernels.reserve(config.node_count);
  for (std::uint32_t r = 0; r < config.node_count; ++r) {
    kernels.push_back(workloads::make_proxy_kernel(
        config.kernel, config.state_bytes,
        exec::sub_seed(config.seed, r)));
  }
  return kernels;
}

struct DriveResult {
  bool crashed = false;
  std::uint64_t crash_commit_id = 0;  // the commit the crash fired in
  std::string error;                  // verify() violation, if any
};

// Advance the kernels from iteration `from` (exclusive) to
// config.iterations, committing every cadence-th iteration through `mgr`.
// Stops right after the commit in which the armed simulator fired. When
// `golden_out` is set, records every committed payload's CRC.
DriveResult drive(const EquivalenceConfig& config,
                  faults::CrashSimulator& sim, ckpt::MultilevelManager& mgr,
                  Kernels& kernels, std::uint64_t from,
                  GoldenRun* golden_out) {
  DriveResult result;
  const std::uint64_t cadence = std::max<std::uint64_t>(1, config.cadence);
  for (std::uint64_t iter = from + 1; iter <= config.iterations; ++iter) {
    for (auto& kernel : kernels) kernel->iterate();
    for (std::uint32_t r = 0; r < config.node_count; ++r) {
      if (!kernels[r]->verify()) {
        result.error = "kernel verify() failed at iteration " +
                       std::to_string(iter) + " rank " + std::to_string(r);
        return result;
      }
    }
    if (iter % cadence != 0) continue;
    std::vector<Bytes> payloads;
    payloads.reserve(config.node_count);
    for (auto& kernel : kernels) {
      payloads.push_back(kernel->registry().capture());
    }
    std::vector<ByteSpan> spans;
    spans.reserve(payloads.size());
    for (const Bytes& p : payloads) spans.emplace_back(p);
    sim.begin_commit(mgr.last_checkpoint_id() + 1);
    const std::uint64_t id = mgr.commit(spans);
    if (golden_out) {
      for (std::uint32_t r = 0; r < config.node_count; ++r) {
        golden_out->payload_crcs[{r, id}] = crc_of(ByteSpan(payloads[r]));
      }
      ++golden_out->commits;
    }
    if (sim.crashed()) {
      // Process death: the caller destroys the manager; whatever the
      // gates let through is the surviving durable state.
      result.crashed = true;
      result.crash_commit_id = id;
      return result;
    }
  }
  return result;
}

std::uint64_t fold_fingerprints(const std::vector<std::uint64_t>& prints) {
  Bytes buf;
  for (const std::uint64_t fp : prints) append_le<std::uint64_t>(buf, fp);
  return crc_of(ByteSpan(buf));
}

}  // namespace

const char* to_string(PayloadMode mode) {
  switch (mode) {
    case PayloadMode::kFull:
      return "full";
    case PayloadMode::kDelta:
      return "delta";
    case PayloadMode::kDedup:
      return "dedup";
  }
  return "?";
}

PayloadMode payload_mode_from(const std::string& name) {
  if (name == "full") return PayloadMode::kFull;
  if (name == "delta") return PayloadMode::kDelta;
  if (name == "dedup") return PayloadMode::kDedup;
  throw std::invalid_argument("unknown payload mode: " + name);
}

GoldenRun run_golden(const EquivalenceConfig& config) {
  faults::CrashSimulator sim(sim_config(config, "golden"));
  Kernels kernels = make_kernels(config);
  GoldenRun golden;
  sim.record();
  {
    ckpt::MultilevelConfig mc = manager_config(config);
    sim.attach(mc);
    ckpt::MultilevelManager mgr(mc);
    const DriveResult dr =
        drive(config, sim, mgr, kernels, 0, &golden);
    if (!dr.error.empty()) {
      throw std::runtime_error("golden run failed: " + dr.error);
    }
  }
  golden.points = sim.canonical_points();
  golden.rank_fingerprints.reserve(config.node_count);
  for (const auto& kernel : kernels) {
    golden.rank_fingerprints.push_back(kernel->fingerprint());
  }
  golden.final_fingerprint = fold_fingerprints(golden.rank_fingerprints);
  return golden;
}

CrashRunResult run_crash_point(const EquivalenceConfig& config,
                               const GoldenRun& golden, std::size_t k) {
  CrashRunResult result;
  result.point = k;
  auto fail = [&](std::string why) {
    result.invariants_ok = false;
    result.failure = std::move(why);
    return result;
  };

  faults::CrashSimulator sim(
      sim_config(config, "point-" + std::to_string(k)));
  sim.arm(golden.points, k, config.torn,
          exec::sub_seed(config.seed ^ 0xC4A54ull, k));

  // Life 1: replay until the crash fires. The manager's destruction at
  // scope exit is the process death; in-memory state (delta references,
  // dedup index, id counter) dies with it.
  DriveResult life1;
  {
    ckpt::MultilevelConfig mc = manager_config(config);
    sim.attach(mc);
    ckpt::MultilevelManager mgr(mc);
    Kernels kernels = make_kernels(config);
    life1 = drive(config, sim, mgr, kernels, 0, nullptr);
  }
  if (!life1.error.empty()) return fail("pre-crash " + life1.error);
  result.crashed = sim.crashed();
  if (!result.crashed) {
    return fail("armed run never reached canonical point " +
                std::to_string(k));
  }
  sim.disarm();

  // Life 2: a fresh manager adopts the surviving bytes and recovers.
  ckpt::MultilevelConfig mc = manager_config(config);
  sim.attach(mc);
  mc.adopt_existing = true;
  ckpt::MultilevelManager mgr(mc);
  const auto recovery = mgr.recover();
  Kernels kernels = make_kernels(config);
  std::uint64_t resume = 0;
  const std::uint64_t cadence = std::max<std::uint64_t>(1, config.cadence);
  if (recovery) {
    result.recovered = true;
    result.recovered_id = recovery->checkpoint_id;
    if (recovery->checkpoint_id > life1.crash_commit_id) {
      return fail("recovered checkpoint " +
                  std::to_string(recovery->checkpoint_id) +
                  " is newer than the crashing commit " +
                  std::to_string(life1.crash_commit_id));
    }
    for (std::uint32_t r = 0; r < config.node_count; ++r) {
      const auto it =
          golden.payload_crcs.find({r, recovery->checkpoint_id});
      if (it == golden.payload_crcs.end()) {
        return fail("recovered an id the golden run never committed");
      }
      if (crc_of(ByteSpan(recovery->payloads[r])) != it->second) {
        return fail("recovered payload for rank " + std::to_string(r) +
                    " id " + std::to_string(recovery->checkpoint_id) +
                    " differs from the committed bytes");
      }
      kernels[r]->registry().restore(ByteSpan(recovery->payloads[r]));
    }
    resume = kernels[0]->iteration();
    for (std::uint32_t r = 1; r < config.node_count; ++r) {
      if (kernels[r]->iteration() != resume) {
        return fail("ranks disagree on the resume iteration");
      }
    }
    if (resume != recovery->checkpoint_id * cadence) {
      return fail("restored iteration " + std::to_string(resume) +
                  " does not match checkpoint id " +
                  std::to_string(recovery->checkpoint_id));
    }
  }
  // No recovery: the crash predates any restorable checkpoint - restart
  // from initial conditions (kernels are freshly constructed already).

  const DriveResult life2 = drive(config, sim, mgr, kernels, resume, nullptr);
  if (life2.crashed) return fail("crash fired after disarm");
  if (!life2.error.empty()) return fail("post-restart " + life2.error);

  result.invariants_ok = true;
  result.equivalent = true;
  for (std::uint32_t r = 0; r < config.node_count; ++r) {
    if (kernels[r]->fingerprint() != golden.rank_fingerprints[r]) {
      result.equivalent = false;
      result.failure = "final state of rank " + std::to_string(r) +
                       " differs from the crash-free run";
      break;
    }
  }
  return result;
}

SweepReport run_sweep(const EquivalenceConfig& config, std::size_t stride) {
  SweepReport report;
  report.golden = run_golden(config);
  report.points_total = report.golden.points.size();
  const std::size_t step = std::max<std::size_t>(1, stride);
  Crc32 fp;
  Bytes buf;
  for (std::size_t k = 0; k < report.points_total; k += step) {
    const CrashRunResult res = run_crash_point(config, report.golden, k);
    ++report.points_run;
    buf.clear();
    append_le<std::uint64_t>(buf, k);
    append_le<std::uint8_t>(buf, res.crashed ? 1 : 0);
    append_le<std::uint64_t>(buf, res.recovered_id);
    append_le<std::uint8_t>(buf, res.ok() ? 1 : 0);
    fp.update(ByteSpan(buf));
    if (!res.ok()) {
      ++report.failures;
      report.failed.push_back(res);
    }
  }
  report.fingerprint = fp.value();
  return report;
}

}  // namespace ndpcr::harness
