#pragma once

// Discrete-event failure analysis for partner-redundant multilevel C/R.
//
// The paper takes P(recovery from local/partner) as an input (85%, or 96%
// after improvements, citing Moody et al.). This module derives that
// probability from first principles: nodes fail under a renewal process
// (exponential, or Weibull with shape < 1 for the clustered failures
// Schroeder & Gibson measured); a failed node's state is rebuilt from its
// partner copy over a rebuild window; a failure is *not* recoverable from
// the partner level when the partner's copy is itself unavailable - the
// partner died first and is still rebuilding (the classic double-failure
// window), the same cascade or rack outage took both, or the partner sits
// in the same downed rack.
//
// Three engines run the same process (docs/SIM.md):
//
//   kHeap           the pre-PR binary-heap DES, kept as the pinned
//                   baseline and as the reference for the calendar
//                   engine's behavior-preservation tests
//   kCalendar       the same DES on sim::CalendarQueue with
//                   struct-of-arrays node state - O(1) amortized
//                   scheduling, and the only engine for cascades, rack
//                   outages and Weibull inter-arrivals
//   kSuperposition  exact fast path for the memoryless case (exponential
//                   inter-arrivals, no cascades, no rack outages): the
//                   union of N independent Poisson processes is one
//                   Poisson process of rate N/mttf with a uniform victim,
//                   so the event loop needs no queue at all
//
// kAuto picks kSuperposition when the configuration is memoryless and
// kCalendar otherwise. Engines are individually deterministic in the
// seed but sample *different* (equally valid) failure paths for the same
// seed; heap and calendar consume the RNG identically and produce
// bit-identical results (pinned by tests).

#include <cstdint>

#include "common/rng.hpp"

namespace ndpcr::obs {
class MetricsRegistry;
}  // namespace ndpcr::obs

namespace ndpcr::cluster {

enum class FailureDistribution : std::uint8_t {
  kExponential,
  kWeibull,  // renewal process; shape < 1 over-disperses (bursty)
};

// Where node n's partner copy lives. Ring keeps it on n+1 - usually the
// same rack, so a rack outage takes both copies. CrossRack places it on
// the same slot of the next rack (n + rack_size), trading rack-outage
// immunity for cross-rack rebuild traffic.
enum class PartnerPlacement : std::uint8_t { kRing, kCrossRack };

enum class FailureEngine : std::uint8_t {
  kAuto,
  kHeap,
  kCalendar,
  kSuperposition,
};

// A failure triggers a correlated burst: with `probability`, between 1
// and `max_fanout` victims within `radius` ring-positions of the origin
// have their next failure pulled forward into (now, now + window].
// Secondary failures do not re-trigger (no chain explosions).
struct CascadeModel {
  double probability = 0.0;
  std::uint32_t max_fanout = 8;
  std::uint32_t radius = 16;
  double window = 120.0;  // seconds
};

// Rack-level outages: racks of `rack_size` consecutive nodes fail
// together under their own exponential process. Every node of the rack
// counts as failed, stays dark for `outage_duration`, then rebuilds for
// the usual rebuild window.
struct RackModel {
  std::uint32_t rack_size = 0;  // 0 = no rack structure
  double outage_mttf = 0.0;     // per-rack, seconds; 0 = no outages
  double outage_duration = 900.0;
};

// Per-phase energy accounting (Moran et al.: C/R phases draw measurably
// different power). Joules are derived *after* the run from the exact
// event counters and closed-form phase durations - no per-event float
// accumulation, so replica merge order cannot drift the totals.
struct EnergyModel {
  bool enabled = false;
  double compute_watts = 165.0;
  double checkpoint_watts = 185.0;
  double rebuild_watts = 140.0;
  double restart_watts = 175.0;
  double checkpoint_interval = 3600.0;   // per-node cadence, seconds
  double checkpoint_write_time = 60.0;   // seconds per checkpoint
  double restart_time_local = 90.0;      // restart from the partner copy
  double restart_time_io = 1500.0;       // restart from the IO level
};

struct FailureAnalysisConfig {
  std::uint32_t node_count = 1000;
  double node_mttf = 5.0 * 365.25 * 86400;  // 5 years, seconds
  double rebuild_time = 600.0;   // partner copy rebuild window (s)
  double sim_duration = 0.0;     // 0 = run until `target_failures` observed
  std::uint64_t target_failures = 100000;
  std::uint64_t seed = 1;

  FailureDistribution distribution = FailureDistribution::kExponential;
  double weibull_shape = 0.7;    // used when distribution == kWeibull
  PartnerPlacement placement = PartnerPlacement::kRing;
  CascadeModel cascade;
  RackModel racks;
  EnergyModel energy;
  FailureEngine engine = FailureEngine::kAuto;

  // Optional snapshot sink: counters and per-phase energy gauges under
  // "cluster.*" (docs/OBSERVABILITY.md).
  obs::MetricsRegistry* metrics = nullptr;

  [[nodiscard]] bool memoryless() const {
    return distribution == FailureDistribution::kExponential &&
           cascade.probability <= 0.0 &&
           (racks.rack_size == 0 || racks.outage_mttf <= 0.0);
  }
};

struct EnergyReport {
  double compute_joules = 0.0;
  double checkpoint_joules = 0.0;
  double rebuild_joules = 0.0;
  double restart_joules = 0.0;

  [[nodiscard]] double total_joules() const {
    return compute_joules + checkpoint_joules + rebuild_joules +
           restart_joules;
  }
  // C/R + recovery share of total energy; 0 when nothing was consumed.
  [[nodiscard]] double overhead_fraction() const {
    const double total = total_joules();
    return total > 0.0 ? (total - compute_joules) / total : 0.0;
  }
};

struct FailureAnalysisResult {
  // Exact event counters. failures == local_recoverable + io_required;
  // replicate aggregation sums these integers, never float shares.
  std::uint64_t failures = 0;
  std::uint64_t local_recoverable = 0;  // partner copy was available
  std::uint64_t io_required = 0;        // partner copy unavailable
  std::uint64_t cascade_failures = 0;   // pulled forward by a burst
  std::uint64_t rack_outages = 0;       // whole-rack outage events
  std::uint64_t rack_node_failures = 0;  // node failures from outages
  std::uint64_t events_processed = 0;   // engine events incl. stale pops

  double elapsed = 0.0;                 // simulated wall covered
  double observed_system_mtti = 0.0;    // elapsed / failures
  EnergyReport energy;                  // zeros unless energy.enabled

  [[nodiscard]] double p_local() const {
    return failures ? static_cast<double>(local_recoverable) /
                          static_cast<double>(failures)
                    : 0.0;
  }
  [[nodiscard]] double p_cascade() const {
    return failures ? static_cast<double>(cascade_failures) /
                          static_cast<double>(failures)
                    : 0.0;
  }
  [[nodiscard]] double p_rack() const {
    return failures ? static_cast<double>(rack_node_failures) /
                          static_cast<double>(failures)
                    : 0.0;
  }
  [[nodiscard]] double mean_outage_width() const {
    return rack_outages ? static_cast<double>(rack_node_failures) /
                              static_cast<double>(rack_outages)
                        : 0.0;
  }
  [[nodiscard]] double energy_per_failure() const {
    return failures ? energy.total_joules() / static_cast<double>(failures)
                    : 0.0;
  }
};

// Node n's partner under `config` (flattened into a vector by the DES
// engines; computed inline by the superposition path).
[[nodiscard]] std::uint32_t partner_of(const FailureAnalysisConfig& config,
                                       std::uint32_t node);

// Run the failure process with the configured engine.
FailureAnalysisResult analyze_failures(const FailureAnalysisConfig& config);

}  // namespace ndpcr::cluster
