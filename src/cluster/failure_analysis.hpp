#pragma once

// Discrete-event failure analysis for partner-redundant multilevel C/R.
//
// The paper takes P(recovery from local/partner) as an input (85%, or 96%
// after improvements, citing Moody et al.). This module derives that
// probability from first principles: nodes fail independently
// (exponential, per-node MTTF); a failed node's state is rebuilt from its
// partner copy, which takes a rebuild window; a failure is *not*
// recoverable from the partner level when its partner's copy is itself
// unavailable - the partner died first and is still being rebuilt, or dies
// during the rebuild (the classic double-failure window).

#include <cstdint>

#include "common/rng.hpp"

namespace ndpcr::cluster {

struct FailureAnalysisConfig {
  std::uint32_t node_count = 1000;
  double node_mttf = 5.0 * 365.25 * 86400;  // 5 years, seconds
  double rebuild_time = 600.0;   // partner copy rebuild window (s)
  double sim_duration = 0.0;     // 0 = run until `target_failures` observed
  std::uint64_t target_failures = 100000;
  std::uint64_t seed = 1;
};

struct FailureAnalysisResult {
  std::uint64_t failures = 0;
  std::uint64_t local_recoverable = 0;  // partner copy was available
  std::uint64_t io_required = 0;        // double-failure in the window
  double observed_system_mtti = 0.0;    // simulated wall / failures

  [[nodiscard]] double p_local() const {
    return failures ? static_cast<double>(local_recoverable) /
                          static_cast<double>(failures)
                    : 0.0;
  }
};

// Run the failure process. Partner topology is a ring: node n's copy
// lives on node (n+1) % N.
FailureAnalysisResult analyze_failures(const FailureAnalysisConfig& config);

}  // namespace ndpcr::cluster
