#include "cluster/cluster_sim.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"
#include "faults/faulty_stores.hpp"
#include "obs/trace.hpp"

namespace ndpcr::cluster {
namespace {

// Virtual-clock trace row for the simulation's own events (the manager
// keeps tracks 0..node_count for the data path).
constexpr std::uint32_t kSimTrack = 30;

}  // namespace

ClusterSim::ClusterSim(const ClusterSimConfig& config) : cfg_(config) {
  if (cfg_.node_count == 0 || cfg_.total_steps == 0) {
    throw std::invalid_argument("node_count and total_steps must be > 0");
  }
}

ClusterSimResult ClusterSim::run() {
  ClusterSimResult result;
  Rng rng(cfg_.seed);
  obs::Tracer& tracer =
      cfg_.trace != nullptr ? *cfg_.trace : obs::Tracer::null();
  if (tracer.enabled()) tracer.set_track_name(kSimTrack, "cluster");

  // One mini-app instance per rank (distinct seeds: ranks hold different
  // subdomains).
  std::vector<std::unique_ptr<workloads::MiniApp>> ranks;
  ranks.reserve(cfg_.node_count);
  for (std::uint32_t r = 0; r < cfg_.node_count; ++r) {
    ranks.push_back(workloads::make_miniapp(cfg_.app,
                                            cfg_.state_bytes_per_rank,
                                            cfg_.seed * 1000 + r));
  }

  ckpt::MultilevelConfig mc;
  mc.trace = cfg_.trace;
  mc.node_count = cfg_.node_count;
  mc.nvm_capacity_bytes = cfg_.nvm_capacity_bytes;
  mc.partner_every = cfg_.partner_every;
  mc.partner_scheme = cfg_.partner_scheme;
  mc.xor_group_size = cfg_.xor_group_size;
  mc.io_every = cfg_.io_every;
  mc.io_codec = cfg_.io_codec;
  mc.io_codec_level = cfg_.io_codec_level;
  if (cfg_.partner_faults.any() || cfg_.io_faults.any()) {
    // Decorate the remote stores with a seeded fault plan; the manager's
    // retry/verify/degrade machinery absorbs what it can and reports the
    // rest through `result.health`.
    const std::uint64_t fault_seed =
        cfg_.fault_seed != 0 ? cfg_.fault_seed : cfg_.seed * 0x9E37 + 1;
    auto plan = std::make_shared<faults::FaultPlan>(fault_seed);
    for (std::uint32_t host = 0; host < cfg_.node_count; ++host) {
      plan->set_rates(faults::partner_target(host), cfg_.partner_faults);
    }
    plan->set_rates(faults::io_target(), cfg_.io_faults);
    mc.store_factory = [plan](ckpt::StoreLevel level, std::uint32_t host) {
      const faults::Target target = level == ckpt::StoreLevel::kIo
                                        ? faults::io_target()
                                        : faults::partner_target(host);
      return std::make_unique<faults::FaultyKvStore>(plan, target);
    };
  }
  ckpt::MultilevelManager manager(mc);

  // Virtual-time failure schedule: next failure instant for the whole
  // system (superposition of per-node exponentials), with the victim node
  // drawn uniformly.
  const double system_mttf =
      cfg_.node_mttf / static_cast<double>(cfg_.node_count);
  double now = 0.0;
  double next_failure = rng.exponential(system_mttf);

  std::uint64_t step = 0;
  while (step < cfg_.total_steps) {
    // Advance one checkpoint period (or to completion).
    const std::uint64_t burst = std::min<std::uint64_t>(
        cfg_.steps_per_checkpoint, cfg_.total_steps - step);
    bool failed = false;
    for (std::uint64_t s = 0; s < burst; ++s) {
      now += cfg_.step_time;
      if (now >= next_failure) {
        failed = true;
        next_failure = now + rng.exponential(system_mttf);
        break;
      }
      for (auto& rank : ranks) rank->step();
      ++step;
      ++result.steps_completed;
    }

    if (failed) {
      ++result.failures;
      const auto victim =
          static_cast<std::uint32_t>(rng.next_below(cfg_.node_count));
      manager.fail_node(victim);
      tracer.instant_at(now, "node_failure", "cluster", kSimTrack,
                        {obs::u64("rank", victim), obs::u64("step", step)});

      const auto recovery = manager.recover();
      if (!recovery) {
        // Nothing recoverable anywhere: restart the run from step 0.
        ++result.unrecoverable;
        tracer.instant_at(now, "scratch_restart", "cluster", kSimTrack,
                          {obs::u64("steps_lost", step)});
        for (std::uint32_t r = 0; r < cfg_.node_count; ++r) {
          ranks[r] = workloads::make_miniapp(cfg_.app,
                                             cfg_.state_bytes_per_rank,
                                             cfg_.seed * 1000 + r);
        }
        result.steps_rerun += step;
        step = 0;
        continue;
      }
      ++result.recoveries;
      for (std::uint32_t r = 0; r < cfg_.node_count; ++r) {
        ranks[r]->restore(recovery->payloads[r]);
        switch (recovery->levels[r]) {
          case ckpt::RecoveryLevel::kLocal:
            ++result.local_level_ranks;
            break;
          case ckpt::RecoveryLevel::kPartner:
            ++result.partner_level_ranks;
            break;
          case ckpt::RecoveryLevel::kIo:
            ++result.io_level_ranks;
            break;
        }
      }
      const auto restored_step = ranks[0]->step_count();
      result.steps_rerun += step - restored_step;
      tracer.instant_at(now, "rollback", "cluster", kSimTrack,
                        {obs::u64("from_step", step),
                         obs::u64("to_step", restored_step)});
      step = restored_step;
      continue;
    }

    if (step >= cfg_.total_steps) break;

    // Coordinated checkpoint: capture every rank, commit through the
    // multilevel manager.
    std::vector<Bytes> images;
    images.reserve(cfg_.node_count);
    for (auto& rank : ranks) images.push_back(rank->checkpoint());
    std::vector<ByteSpan> views;
    views.reserve(images.size());
    for (const auto& img : images) views.emplace_back(img);
    const std::uint64_t ckpt_id = manager.commit(views);
    ++result.checkpoints;
    tracer.instant_at(now, "checkpoint", "cluster", kSimTrack,
                      {obs::u64("id", ckpt_id), obs::u64("step", step)});
    // Checkpoint commit also takes virtual time.
    now += 0.1 * cfg_.step_time;
  }

  // Validate: all ranks agree on the step count and their digests are
  // reproducible through a checkpoint/restore round trip.
  result.state_verified = true;
  for (auto& rank : ranks) {
    if (rank->step_count() != ranks[0]->step_count()) {
      result.state_verified = false;
    }
    const auto digest_before = rank->state_digest();
    const Bytes image = rank->checkpoint();
    rank->restore(image);
    if (rank->state_digest() != digest_before) result.state_verified = false;
  }
  result.health = manager.health();
  return result;
}

}  // namespace ndpcr::cluster
