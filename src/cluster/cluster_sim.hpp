#pragma once

// Functional multi-node C/R simulation: drives the real data path
// (MultilevelManager moving real checkpoint bytes for every rank) under a
// virtual-time failure process. Small scale by design - it validates that
// the byte-level machinery survives the failure patterns the statistical
// models assume, and that recovered application state is exact.

#include <cstdint>
#include <memory>
#include <vector>

#include "ckpt/multilevel.hpp"
#include "faults/fault_plan.hpp"
#include "workloads/miniapp.hpp"

namespace ndpcr::obs {
class Tracer;
}  // namespace ndpcr::obs

namespace ndpcr::cluster {

struct ClusterSimConfig {
  std::uint32_t node_count = 8;
  std::size_t state_bytes_per_rank = 256 * 1024;
  std::string app = "comd";        // the workload every rank runs
  double node_mttf = 20000.0;      // per-node MTTF in virtual seconds
  double step_time = 1.0;          // virtual seconds per app step
  std::uint32_t steps_per_checkpoint = 10;
  std::uint32_t partner_every = 1;
  ckpt::PartnerScheme partner_scheme = ckpt::PartnerScheme::kCopy;
  std::uint32_t xor_group_size = 4;
  std::uint32_t io_every = 5;
  compress::CodecId io_codec = compress::CodecId::kLz4Style;
  int io_codec_level = 1;
  std::size_t nvm_capacity_bytes = 8ull << 20;
  std::uint64_t total_steps = 2000;  // virtual application steps to finish
  std::uint64_t seed = 7;
  // Seeded store-fault injection (zero rates leave the data path
  // fault-free and the results bit-identical to the pre-fault build).
  faults::FaultRates partner_faults;
  faults::FaultRates io_faults;
  std::uint64_t fault_seed = 0;  // 0 derives from `seed`
  // Optional tracer (docs/OBSERVABILITY.md): failure / recovery /
  // checkpoint instants on the virtual clock (track 30), plus the
  // manager's commit and recover spans.
  obs::Tracer* trace = nullptr;
};

struct ClusterSimResult {
  std::uint64_t failures = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t local_level_ranks = 0;    // per-rank recovery-level counts
  std::uint64_t partner_level_ranks = 0;
  std::uint64_t io_level_ranks = 0;
  std::uint64_t unrecoverable = 0;        // restarts from step 0
  std::uint64_t steps_completed = 0;
  std::uint64_t steps_rerun = 0;
  std::uint64_t checkpoints = 0;
  bool state_verified = false;  // all ranks' digests consistent at the end
  ckpt::HealthReport health;    // multilevel data-path health at run end
};

class ClusterSim {
 public:
  explicit ClusterSim(const ClusterSimConfig& config);
  ClusterSimResult run();

 private:
  ClusterSimConfig cfg_;
};

}  // namespace ndpcr::cluster
