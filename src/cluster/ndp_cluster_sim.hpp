#pragma once

// Full-stack NDP cluster simulation: N nodes, each running a mini-app
// rank and a functional NdpAgent (real codec, real bytes), coordinated
// local checkpoints, background drains sharing the global IO bandwidth,
// and per-node failures in virtual time.
//
// This is the integration capstone: the statistical timeline model
// (sim/), the byte-level NDP pipeline (ndp/), the multi-rank coordination
// (ckpt/) and the workloads all run together, and the simulation verifies
// exact state recovery while reporting the same progress-rate metric the
// model predicts.
//
// IO bandwidth sharing: the configured aggregate IO bandwidth is divided
// evenly among agents with an active drain each tick (a fair-share
// approximation of the parallel file system).

#include <cstdint>
#include <string>

#include "compress/codec.hpp"
#include "faults/fault_plan.hpp"

namespace ndpcr::obs {
class Tracer;
}  // namespace ndpcr::obs

namespace ndpcr::cluster {

struct NdpClusterConfig {
  std::uint32_t node_count = 4;
  std::string app = "hpccg";
  std::size_t state_bytes_per_rank = 128 * 1024;

  double step_time = 1.0;                 // virtual seconds per app step
  std::uint32_t steps_per_checkpoint = 8;
  double local_commit_time = 0.5;         // host-blocking local write
  double local_restore_time = 0.5;

  // Per-agent pipeline rates (bytes of uncompressed input per virtual
  // second) and the aggregate IO bandwidth shared by all drains.
  double ndp_compress_bw = 256e3;
  double aggregate_io_bw = 256e3;
  compress::CodecId codec = compress::CodecId::kLz4Style;
  int codec_level = 1;
  // Drain pipeline chunk size (input bytes): chunk j+1 compresses while
  // chunk j is on the IO wire, and the IO copy is a ChunkedCodec
  // container keyed by this size.
  std::size_t ndp_chunk_bytes = 32ull << 10;
  std::size_t nvm_capacity_bytes = 4ull << 20;

  double node_mttf = 3000.0;   // per-node, virtual seconds
  double p_local_recovery = 0.85;  // failures that keep the NVM usable
  std::uint64_t total_steps = 1500;
  std::uint64_t seed = 13;
  // Seeded fault injection on the shared IO store (zero rates keep the
  // run bit-identical to the fault-free build). Drains that cannot land
  // retry with backoff, then fall back to the host write path.
  faults::FaultRates io_fault_rates;
  std::uint64_t fault_seed = 0;  // 0 derives from `seed`
  // Optional tracer (docs/OBSERVABILITY.md): simulation events (commits,
  // failures, recoveries, fallbacks) as virtual-clock instants on track 0,
  // and each agent's drain pipeline on tracks 1+3r (drain/compress/wire).
  obs::Tracer* trace = nullptr;
};

struct NdpClusterResult {
  std::uint64_t failures = 0;
  std::uint64_t local_recoveries = 0;
  std::uint64_t io_recoveries = 0;
  std::uint64_t scratch_restarts = 0;
  std::uint64_t checkpoints = 0;     // coordinated local commits
  std::uint64_t io_checkpoints = 0;  // checkpoint generations fully on IO
  std::uint64_t steps_rerun = 0;
  double virtual_seconds = 0.0;
  double compute_seconds = 0.0;  // first-time work
  bool state_verified = false;
  std::uint64_t drain_put_retries = 0;   // agent IO writes retried
  std::uint64_t drain_put_failures = 0;  // drains handed to the host path
  std::uint64_t host_fallback_writes = 0;  // fallbacks landed by the host
  std::uint64_t host_fallback_drops = 0;   // fallbacks lost (IO down)
  // Aggregated agent drain-health counters (AgentStats / drain_health()).
  std::uint64_t io_put_attempts = 0;     // agent IO puts incl. retries
  std::uint64_t io_verify_failures = 0;  // drain readback mismatches
  std::uint64_t io_quarantined = 0;      // torn IO entries erased by agents
  std::uint64_t host_fallbacks = 0;      // fallback handoffs staged

  [[nodiscard]] double progress_rate() const {
    return virtual_seconds > 0 ? compute_seconds / virtual_seconds : 0.0;
  }
};

class NdpClusterSim {
 public:
  explicit NdpClusterSim(const NdpClusterConfig& config);
  NdpClusterResult run();

 private:
  NdpClusterConfig cfg_;
};

}  // namespace ndpcr::cluster
