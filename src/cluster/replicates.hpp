#pragma once

// Parallel multi-replicate drivers for the cluster simulations: run N
// independent replicates of a ClusterSim / NdpClusterSim configuration on
// the execution engine (exec::TaskPool) and aggregate. Replicate r runs
// with seed exec::sub_seed(base_seed, r), so the replicate set is a pure
// function of the base seed - the same for any thread count - and
// replicates never share RNG streams even for adjacent base seeds.

#include <cstdint>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "cluster/failure_analysis.hpp"
#include "cluster/ndp_cluster_sim.hpp"

namespace ndpcr::exec {
class TaskPool;
}  // namespace ndpcr::exec

namespace ndpcr::cluster {

struct ClusterReplicateSummary {
  std::vector<ClusterSimResult> runs;  // index = replicate, deterministic

  std::uint64_t total_failures = 0;
  std::uint64_t total_unrecoverable = 0;
  double mean_failures = 0.0;
  double mean_steps_rerun = 0.0;
  double mean_local_level_ranks = 0.0;
  double mean_partner_level_ranks = 0.0;
  double mean_io_level_ranks = 0.0;
  bool all_verified = false;  // every replicate ended state-consistent
};

struct NdpClusterReplicateSummary {
  std::vector<NdpClusterResult> runs;

  std::uint64_t total_failures = 0;
  double mean_failures = 0.0;
  double mean_progress_rate = 0.0;  // mean of per-replicate progress rates
  double mean_io_checkpoints = 0.0;
  bool all_verified = false;
};

// Replicated analyze_failures. Aggregation is exact: the totals are
// sums of the per-replicate integer counters (no float accumulation, so
// the summary is bit-identical for any pool size), and every probability
// below is *derived* from those totals on demand.
struct FailureReplicateSummary {
  std::vector<FailureAnalysisResult> runs;  // index = replicate

  std::uint64_t total_failures = 0;
  std::uint64_t total_local_recoverable = 0;
  std::uint64_t total_io_required = 0;
  std::uint64_t total_cascade_failures = 0;
  std::uint64_t total_rack_outages = 0;
  std::uint64_t total_rack_node_failures = 0;
  std::uint64_t total_events_processed = 0;
  double total_elapsed = 0.0;        // index-order sum (fixed order)
  double total_energy_joules = 0.0;  // index-order sum of per-run totals

  [[nodiscard]] double p_local() const {
    return total_failures ? static_cast<double>(total_local_recoverable) /
                                static_cast<double>(total_failures)
                          : 0.0;
  }
  [[nodiscard]] double p_cascade() const {
    return total_failures ? static_cast<double>(total_cascade_failures) /
                                static_cast<double>(total_failures)
                          : 0.0;
  }
  [[nodiscard]] double p_rack() const {
    return total_failures ? static_cast<double>(total_rack_node_failures) /
                                static_cast<double>(total_failures)
                          : 0.0;
  }
  [[nodiscard]] double mean_system_mtti() const {
    return total_failures ? total_elapsed /
                                static_cast<double>(total_failures)
                          : 0.0;
  }
  [[nodiscard]] double mean_failures() const {
    return runs.empty() ? 0.0
                        : static_cast<double>(total_failures) /
                              static_cast<double>(runs.size());
  }
};

// Run `replicates` independent ClusterSim / NdpClusterSim instances of
// `base` (seed = sub_seed(base.seed, r)) across `pool`; nullptr = the
// global engine pool, or serial when called from inside a pool task.
ClusterReplicateSummary run_cluster_replicates(
    const ClusterSimConfig& base, int replicates,
    exec::TaskPool* pool = nullptr);

NdpClusterReplicateSummary run_ndp_cluster_replicates(
    const NdpClusterConfig& base, int replicates,
    exec::TaskPool* pool = nullptr);

// Replicated failure analysis. Each replicate drops `base.metrics`
// (registries are single-writer); pass a registry in `base` only if you
// also keep replicates == 1.
FailureReplicateSummary run_failure_replicates(
    const FailureAnalysisConfig& base, int replicates,
    exec::TaskPool* pool = nullptr);

}  // namespace ndpcr::cluster
