#pragma once

// Parallel multi-replicate drivers for the cluster simulations: run N
// independent replicates of a ClusterSim / NdpClusterSim configuration on
// the execution engine (exec::TaskPool) and aggregate. Replicate r runs
// with seed exec::sub_seed(base_seed, r), so the replicate set is a pure
// function of the base seed - the same for any thread count - and
// replicates never share RNG streams even for adjacent base seeds.

#include <cstdint>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "cluster/ndp_cluster_sim.hpp"

namespace ndpcr::exec {
class TaskPool;
}  // namespace ndpcr::exec

namespace ndpcr::cluster {

struct ClusterReplicateSummary {
  std::vector<ClusterSimResult> runs;  // index = replicate, deterministic

  std::uint64_t total_failures = 0;
  std::uint64_t total_unrecoverable = 0;
  double mean_failures = 0.0;
  double mean_steps_rerun = 0.0;
  double mean_local_level_ranks = 0.0;
  double mean_partner_level_ranks = 0.0;
  double mean_io_level_ranks = 0.0;
  bool all_verified = false;  // every replicate ended state-consistent
};

struct NdpClusterReplicateSummary {
  std::vector<NdpClusterResult> runs;

  std::uint64_t total_failures = 0;
  double mean_failures = 0.0;
  double mean_progress_rate = 0.0;  // mean of per-replicate progress rates
  double mean_io_checkpoints = 0.0;
  bool all_verified = false;
};

// Run `replicates` independent ClusterSim / NdpClusterSim instances of
// `base` (seed = sub_seed(base.seed, r)) across `pool`; nullptr = the
// global engine pool, or serial when called from inside a pool task.
ClusterReplicateSummary run_cluster_replicates(
    const ClusterSimConfig& base, int replicates,
    exec::TaskPool* pool = nullptr);

NdpClusterReplicateSummary run_ndp_cluster_replicates(
    const NdpClusterConfig& base, int replicates,
    exec::TaskPool* pool = nullptr);

}  // namespace ndpcr::cluster
