#include "cluster/failure_analysis.hpp"

#include <algorithm>
#include <cstddef>
#include <queue>
#include <stdexcept>
#include <vector>

#include "common/batch_rng.hpp"
#include "common/ziggurat.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#endif
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"

namespace ndpcr::cluster {
namespace {

void validate(const FailureAnalysisConfig& config) {
  if (config.node_count < 2) {
    throw std::invalid_argument("failure analysis needs at least 2 nodes");
  }
  if (config.node_mttf <= 0 || config.rebuild_time < 0) {
    throw std::invalid_argument("mttf must be positive, rebuild >= 0");
  }
  if (config.distribution == FailureDistribution::kWeibull &&
      config.weibull_shape <= 0) {
    throw std::invalid_argument("weibull shape must be positive");
  }
  if (config.cascade.probability < 0 || config.cascade.probability > 1) {
    throw std::invalid_argument("cascade probability must be in [0, 1]");
  }
  if (config.cascade.probability > 0 &&
      (config.cascade.max_fanout == 0 || config.cascade.radius == 0 ||
       config.cascade.window <= 0)) {
    throw std::invalid_argument(
        "cascade needs fanout >= 1, radius >= 1, window > 0");
  }
  if (config.racks.rack_size > 0 && config.racks.outage_mttf > 0 &&
      config.racks.outage_duration < 0) {
    throw std::invalid_argument("rack outage duration must be >= 0");
  }
  if (config.placement == PartnerPlacement::kCrossRack &&
      (config.racks.rack_size == 0 ||
       config.racks.rack_size >= config.node_count)) {
    throw std::invalid_argument(
        "cross-rack placement needs 0 < rack_size < node_count");
  }
  if (config.engine == FailureEngine::kSuperposition && !config.memoryless()) {
    throw std::invalid_argument(
        "superposition engine is exact only for exponential arrivals "
        "without cascades or rack outages");
  }
  if (config.energy.enabled && (config.energy.checkpoint_interval <= 0 ||
                                config.energy.checkpoint_write_time < 0 ||
                                config.energy.restart_time_local < 0 ||
                                config.energy.restart_time_io < 0)) {
    throw std::invalid_argument(
        "energy model needs interval > 0 and non-negative phase times");
  }
}

// Joules from the exact event counters and closed-form phase durations.
// Rack outage downtime is dead time: not compute, not any C/R phase.
void finish_energy(const FailureAnalysisConfig& config,
                   FailureAnalysisResult& result) {
  if (!config.energy.enabled) return;
  const EnergyModel& em = config.energy;
  const double nodes = static_cast<double>(config.node_count);
  const std::uint64_t checkpoints =
      static_cast<std::uint64_t>(result.elapsed / em.checkpoint_interval) *
      config.node_count;
  const double checkpoint_s =
      static_cast<double>(checkpoints) * em.checkpoint_write_time;
  const double rebuild_s =
      static_cast<double>(result.failures) * config.rebuild_time;
  const double restart_s =
      static_cast<double>(result.local_recoverable) * em.restart_time_local +
      static_cast<double>(result.io_required) * em.restart_time_io;
  const double outage_s = static_cast<double>(result.rack_node_failures) *
                          config.racks.outage_duration;
  const double compute_s = std::max(
      0.0, nodes * result.elapsed - checkpoint_s - rebuild_s - restart_s -
               outage_s);
  result.energy.compute_joules = compute_s * em.compute_watts;
  result.energy.checkpoint_joules = checkpoint_s * em.checkpoint_watts;
  result.energy.rebuild_joules = rebuild_s * em.rebuild_watts;
  result.energy.restart_joules = restart_s * em.restart_watts;
}

void publish_metrics(const FailureAnalysisConfig& config,
                     const FailureAnalysisResult& result) {
  if (config.metrics == nullptr) return;
  obs::MetricsRegistry& m = *config.metrics;
  m.counter("cluster.failures").add(result.failures);
  m.counter("cluster.local_recoverable").add(result.local_recoverable);
  m.counter("cluster.io_required").add(result.io_required);
  m.counter("cluster.cascade_failures").add(result.cascade_failures);
  m.counter("cluster.rack_outages").add(result.rack_outages);
  m.counter("cluster.rack_node_failures").add(result.rack_node_failures);
  m.counter("cluster.events_processed").add(result.events_processed);
  m.gauge("cluster.p_local").set(result.p_local());
  m.gauge("cluster.observed_system_mtti").set(result.observed_system_mtti);
  if (config.energy.enabled) {
    m.gauge("cluster.energy.compute_joules")
        .set(result.energy.compute_joules);
    m.gauge("cluster.energy.checkpoint_joules")
        .set(result.energy.checkpoint_joules);
    m.gauge("cluster.energy.rebuild_joules")
        .set(result.energy.rebuild_joules);
    m.gauge("cluster.energy.restart_joules")
        .set(result.energy.restart_joules);
    m.gauge("cluster.energy.overhead_fraction")
        .set(result.energy.overhead_fraction());
  }
}

// std::priority_queue behind the CalendarQueue's interface and *exact*
// tie-break order, so run_des<HeapQueue> and run_des<CalendarAdapter>
// pop identical sequences and consume the RNG identically - the
// bit-identity the behavior-preservation tests pin.
struct HeapQueue {
  struct Greater {
    bool operator()(const sim::SimEvent& a, const sim::SimEvent& b) const {
      return sim::event_less(b, a);
    }
  };
  std::priority_queue<sim::SimEvent, std::vector<sim::SimEvent>, Greater> q;

  HeapQueue(std::size_t /*expected*/, double /*width_hint*/) {}
  void push(const sim::SimEvent& event) { q.push(event); }
  sim::SimEvent pop() {
    const sim::SimEvent out = q.top();
    q.pop();
    return out;
  }
  [[nodiscard]] bool empty() const { return q.empty(); }
};

struct CalendarAdapter {
  sim::CalendarQueue q;

  CalendarAdapter(std::size_t expected, double width_hint)
      : q(expected, width_hint) {}
  void push(const sim::SimEvent& event) { q.push(event); }
  sim::SimEvent pop() { return q.pop(); }
  [[nodiscard]] bool empty() const { return q.empty(); }
};

// The general discrete-event engine, written once over the queue type.
// Struct-of-arrays node state; cascade pull-forwards use lazy
// invalidation (per-node generation counter in SimEvent::seq) instead of
// deleting from the queue.
//
// kWide selects the full scenario machinery (cascades and/or rack
// outages). The narrow instantiation is the hot one at exascale node
// counts: without pull-forwards or outages no event is ever
// invalidated, so the generation/next-time/cascade arrays - three
// random-access streams per event - disappear entirely and the partner
// comes from one add instead of a table load. Both queue types
// instantiate both variants, so the heap/calendar bit-identity contract
// is per-variant and unchanged.
template <typename Queue, bool kWide>
FailureAnalysisResult run_des(const FailureAnalysisConfig& config) {
  const std::uint32_t n = config.node_count;
  const bool weibull = config.distribution == FailureDistribution::kWeibull;
  Rng rng(config.seed);
  const auto draw_gap = [&]() {
    return weibull
               ? rng.weibull_by_mean(config.weibull_shape, config.node_mttf)
               : ziggurat_exp(rng, config.node_mttf);
  };

  // SoA node state (the invalidation arrays only exist in the wide
  // variant).
  std::vector<double> rebuild_until(n, 0.0);
  std::vector<double> next_time;  // currently scheduled failure
  std::vector<std::uint32_t> gen;  // valid iff event.seq == gen
  std::vector<std::uint32_t> partner;
  std::vector<std::uint8_t> is_cascade;
  if constexpr (kWide) {
    next_time.assign(n, 0.0);
    gen.assign(n, 0);
    partner.resize(n);
    is_cascade.assign(n, 0);
    for (std::uint32_t i = 0; i < n; ++i) partner[i] = partner_of(config, i);
  }
  const std::uint32_t partner_step =
      config.placement == PartnerPlacement::kCrossRack
          ? config.racks.rack_size
          : 1;

  const bool rack_outages = config.racks.rack_size > 0 &&
                            config.racks.outage_mttf > 0;
  const std::uint32_t rack_size = config.racks.rack_size;
  const std::uint32_t nracks =
      rack_outages ? (n + rack_size - 1) / rack_size : 0;

  Queue queue(static_cast<std::size_t>(n) + nracks, config.node_mttf / n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const double t = draw_gap();
    if constexpr (kWide) next_time[i] = t;
    queue.push({t, i, 0});
  }
  for (std::uint32_t r = 0; r < nracks; ++r) {
    queue.push({rng.exponential(config.racks.outage_mttf), n + r, 0});
  }

  FailureAnalysisResult result;
  double now = 0.0;
  const double duration = config.sim_duration;
  while (true) {
    if (duration > 0 && now >= duration) break;
    if (duration <= 0 && result.failures >= config.target_failures) break;
    if (queue.empty()) break;
    const sim::SimEvent ev = queue.pop();
    ++result.events_processed;

    if constexpr (!kWide) {
      // No invalidation, no cascades, no rack events: every pop is a
      // live node failure.
      const std::uint32_t v = ev.id;
      now = ev.time;
      ++result.failures;
      std::uint32_t p = v + partner_step;
      if (p >= n) p -= n;
      if (rebuild_until[p] > now) {
        ++result.io_required;
      } else {
        ++result.local_recoverable;
      }
      rebuild_until[v] = now + config.rebuild_time;
      queue.push({now + draw_gap(), v, 0});
    } else if (ev.id < n) {
      const std::uint32_t v = ev.id;
      if (ev.seq != gen[v]) continue;  // invalidated by cascade/outage
      now = ev.time;

      ++result.failures;
      const bool cascade_victim = is_cascade[v] != 0;
      if (cascade_victim) {
        ++result.cascade_failures;
        is_cascade[v] = 0;
      }
      const std::uint32_t p = partner[v];
      if (rebuild_until[p] > now) {
        ++result.io_required;
      } else {
        ++result.local_recoverable;
      }
      rebuild_until[v] = now + config.rebuild_time;

      gen[v] += 1;
      const double next = now + draw_gap();
      next_time[v] = next;
      queue.push({next, v, gen[v]});

      // Primary failures may trigger a correlated burst; cascade
      // victims never re-trigger.
      if (!cascade_victim && config.cascade.probability > 0 &&
          rng.next_double() < config.cascade.probability) {
        const std::uint32_t fanout =
            1 + static_cast<std::uint32_t>(
                    rng.next_below(config.cascade.max_fanout));
        for (std::uint32_t k = 0; k < fanout; ++k) {
          const std::uint32_t delta =
              1 + static_cast<std::uint32_t>(
                      rng.next_below(config.cascade.radius));
          const bool left = (rng.next_u64() & 1u) != 0;
          const std::uint32_t victim =
              left ? (v + n - delta % n) % n : (v + delta) % n;
          const double pulled =
              now + config.cascade.window * rng.next_double();
          if (victim == v || pulled >= next_time[victim]) continue;
          gen[victim] += 1;
          is_cascade[victim] = 1;
          next_time[victim] = pulled;
          queue.push({pulled, victim, gen[victim]});
        }
      }
    } else {
      // Whole-rack outage: every node of the rack fails at once, stays
      // dark for outage_duration, then rebuilds. Classify all victims
      // against pre-outage state first so simultaneity is order-free.
      now = ev.time;
      const std::uint32_t r = ev.id - n;
      const std::uint32_t start = r * rack_size;
      const std::uint32_t end = std::min(start + rack_size, n);
      ++result.rack_outages;
      for (std::uint32_t v = start; v < end; ++v) {
        ++result.failures;
        ++result.rack_node_failures;
        const std::uint32_t p = partner[v];
        const bool partner_in_rack = p >= start && p < end;
        if (partner_in_rack || rebuild_until[p] > now) {
          ++result.io_required;
        } else {
          ++result.local_recoverable;
        }
      }
      const double back_up = now + config.racks.outage_duration;
      for (std::uint32_t v = start; v < end; ++v) {
        rebuild_until[v] = back_up + config.rebuild_time;
        gen[v] += 1;
        is_cascade[v] = 0;
        const double next = back_up + draw_gap();
        next_time[v] = next;
        queue.push({next, v, gen[v]});
      }
      queue.push({now + rng.exponential(config.racks.outage_mttf), ev.id, 0});
    }
  }
  result.elapsed = now;
  result.observed_system_mtti =
      result.failures ? now / static_cast<double>(result.failures) : 0.0;
  return result;
}

// Scalar failure classification: for each event, did the victim's
// partner finish rebuilding (local recovery) or not (I/O restart)?
// Returns the batch's io_required count and records each victim's
// failure time in last[].
std::uint64_t classify_scalar(const double* times,
                              const std::uint32_t* victims, std::size_t count,
                              double* last, std::uint32_t n,
                              std::uint32_t step, double rebuild) {
  constexpr std::size_t kAhead = 8;  // prefetch distance
  std::uint64_t io = 0;
  for (std::size_t k = 0; k < count; ++k) {
#if defined(__GNUC__)
    if (k + kAhead < count) {
      std::uint32_t pre = victims[k + kAhead] + step;
      if (pre >= n) pre -= n;
      __builtin_prefetch(&last[victims[k + kAhead]], 1);
      __builtin_prefetch(&last[pre], 0);
    }
#endif
    const std::uint32_t v = victims[k];
    std::uint32_t p = v + step;
    if (p >= n) p -= n;
    const double when = times[k];
    io += (when - last[p] < rebuild) ? 1 : 0;
    last[v] = when;
  }
  return io;
}

#if defined(__x86_64__) && defined(__GNUC__)

// Vector classification: gather last[p], compare, popcount the mask,
// scatter last[v] = when. Sequential semantics require that lane k see
// lane j's write (j < k) when p_k == v_j; _mm512_conflict_epi32 over
// the 16-lane (v..., p...) vector detects any such read-after-write
// pair (conservatively - also the harmless j > k direction), and those
// rare blocks (~n^-1 of them) fall back to the scalar loop. Duplicate
// victims are safe in vector form: scatter commits lanes in order, so
// the highest lane wins, exactly like the scalar loop's last store.
__attribute__((target("avx512f,avx512dq,avx512cd,avx512vl"))) std::uint64_t
classify_avx512(const double* times, const std::uint32_t* victims,
                std::size_t count, double* last, std::uint32_t n,
                std::uint32_t step, double rebuild) {
  std::uint64_t io = 0;
  const __m256i vn = _mm256_set1_epi32(static_cast<int>(n));
  const __m256i vstep = _mm256_set1_epi32(static_cast<int>(step));
  const __m512d vrebuild = _mm512_set1_pd(rebuild);
  std::size_t k = 0;
  for (; k + 8 <= count; k += 8) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(victims + k));
    __m256i p = _mm256_add_epi32(v, vstep);
    // p >= n  =>  p -= n (values stay in [0, n), n < 2^31).
    const __mmask8 wrap = _mm256_cmpge_epu32_mask(p, vn);
    p = _mm256_mask_sub_epi32(p, wrap, p, vn);
    // Combine (v | p) into one 16-lane vector via masked broadcasts:
    // gcc 12's _mm512_inserti64x4 / _mm512_zextsi256_si512 expand
    // through an undefined pass-through operand and trip
    // -Wmaybe-uninitialized, so avoid them.
    const __m512i both = _mm512_mask_broadcast_i64x4(
        _mm512_maskz_broadcast_i64x4(0x0F, v), 0xF0, p);
    const __m512i conflicts = _mm512_conflict_epi32(both);
    // Partner lanes (8..15) colliding with any victim lane (0..7).
    const __mmask16 hazard = _mm512_test_epi32_mask(
        conflicts, _mm512_set1_epi32(0xFF));
    if (hazard >> 8) {
      io += classify_scalar(times + k, victims + k, 8, last, n, step,
                            rebuild);
      continue;
    }
    const __m512d when = _mm512_loadu_pd(times + k);
    const __m512d lastp =
        _mm512_mask_i32gather_pd(_mm512_setzero_pd(), 0xFF, p, last, 8);
    const __mmask8 is_io = _mm512_cmp_pd_mask(
        _mm512_sub_pd(when, lastp), vrebuild, _CMP_LT_OQ);
    io += static_cast<unsigned>(__builtin_popcount(is_io));
    _mm512_i32scatter_pd(last, v, when, 8);
  }
  if (k < count) {
    io += classify_scalar(times + k, victims + k, count - k, last, n, step,
                          rebuild);
  }
  return io;
}

#endif  // x86_64

std::uint64_t classify_batch(const double* times, const std::uint32_t* victims,
                             std::size_t count, double* last, std::uint32_t n,
                             std::uint32_t step, double rebuild) {
#if defined(__x86_64__) && defined(__GNUC__)
  static const bool vec = __builtin_cpu_supports("avx512f") &&
                          __builtin_cpu_supports("avx512dq") &&
                          __builtin_cpu_supports("avx512cd") &&
                          __builtin_cpu_supports("avx512vl");
  if (vec && n <= (1u << 30)) {
    return classify_avx512(times, victims, count, last, n, step, rebuild);
  }
#endif
  return classify_scalar(times, victims, count, last, n, step, rebuild);
}

// Memoryless fast path. The union of N independent Poisson processes of
// rate 1/mttf is one Poisson process of rate N/mttf with a uniform
// victim - exactly the distribution the DES samples, with no queue at
// all. Batched through BatchRng (8-lane vectorized gaps prefix-summed
// into absolute times, then victims), then classification against a
// last-failure-time array (now - last[p] < rebuild  <=>  the partner is
// still rebuilding) with the partner's slot prefetched.
FailureAnalysisResult run_superposition(const FailureAnalysisConfig& config) {
  const std::uint32_t n = config.node_count;
  BatchRng rng(config.seed);
  const double gap_mean = config.node_mttf / n;
  const double rebuild = config.rebuild_time;
  const std::uint32_t step = config.placement == PartnerPlacement::kCrossRack
                                 ? config.racks.rack_size
                                 : 1;
  // Thread-local scratch reused across calls: a fresh 800KB+ allocation
  // per run is served by mmap and the page faults cost more than the
  // whole event loop at moderate target_failures. assign() still
  // reinitializes every slot, so runs stay independent.
  static thread_local std::vector<double> last;
  static thread_local std::vector<double> times;
  static thread_local std::vector<std::uint32_t> victims;
  last.assign(n, -1.0e300);

  FailureAnalysisResult result;
  double now = 0.0;
  double carry = 0.0;  // running absolute time across batches
  const double duration = config.sim_duration;
  constexpr std::size_t kBatch = 4096;
  times.resize(kBatch);
  victims.resize(kBatch);

  bool done = false;
  while (!done) {
    std::size_t batch = kBatch;
    if (duration <= 0) {
      const std::uint64_t remaining =
          config.target_failures - result.failures;
      if (remaining == 0) break;
      batch = static_cast<std::size_t>(
          std::min<std::uint64_t>(kBatch, remaining));
    }
    // Phase 1: absolute event times. Like the DES, an event is
    // processed while the *previous* event time is inside the window.
    rng.fill_exp_times(times.data(), batch, gap_mean, carry);
    std::size_t count = batch;
    if (duration > 0) {
      for (std::size_t k = 0; k < batch; ++k) {
        const double prev = k == 0 ? now : times[k - 1];
        if (prev >= duration) {
          count = k;
          done = true;
          break;
        }
      }
    }
    if (count == 0) break;
    // Phase 2: victims.
    rng.fill_below(victims.data(), count, n);
    // Phase 3: classification.
    const std::uint64_t io = classify_batch(times.data(), victims.data(),
                                            count, last.data(), n, step,
                                            rebuild);
    result.io_required += io;
    result.local_recoverable += count - io;
    result.failures += count;
    now = times[count - 1];
  }
  result.events_processed = result.failures;
  result.elapsed = now;
  result.observed_system_mtti =
      result.failures ? now / static_cast<double>(result.failures) : 0.0;
  return result;
}

}  // namespace

std::uint32_t partner_of(const FailureAnalysisConfig& config,
                         std::uint32_t node) {
  const std::uint32_t n = config.node_count;
  const std::uint32_t step = config.placement == PartnerPlacement::kCrossRack
                                 ? config.racks.rack_size
                                 : 1;
  const std::uint32_t p = node + step;
  return p >= n ? p - n : p;
}

FailureAnalysisResult analyze_failures(const FailureAnalysisConfig& config) {
  validate(config);
  FailureEngine engine = config.engine;
  if (engine == FailureEngine::kAuto) {
    engine = config.memoryless() ? FailureEngine::kSuperposition
                                 : FailureEngine::kCalendar;
  }
  // The wide DES variant is only needed when events can be invalidated
  // (cascade pull-forwards) or injected in bulk (rack outages).
  const bool wide = config.cascade.probability > 0 ||
                    (config.racks.rack_size > 0 &&
                     config.racks.outage_mttf > 0);
  FailureAnalysisResult result;
  switch (engine) {
    case FailureEngine::kHeap:
      result = wide ? run_des<HeapQueue, true>(config)
                    : run_des<HeapQueue, false>(config);
      break;
    case FailureEngine::kCalendar:
      result = wide ? run_des<CalendarAdapter, true>(config)
                    : run_des<CalendarAdapter, false>(config);
      break;
    default:
      result = run_superposition(config);
      break;
  }
  finish_energy(config, result);
  publish_metrics(config, result);
  return result;
}

}  // namespace ndpcr::cluster
