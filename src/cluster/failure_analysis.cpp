#include "cluster/failure_analysis.hpp"

#include <queue>
#include <stdexcept>
#include <vector>

namespace ndpcr::cluster {

FailureAnalysisResult analyze_failures(const FailureAnalysisConfig& config) {
  if (config.node_count < 2) {
    throw std::invalid_argument("failure analysis needs at least 2 nodes");
  }
  if (config.node_mttf <= 0 || config.rebuild_time < 0) {
    throw std::invalid_argument("mttf must be positive, rebuild >= 0");
  }

  Rng rng(config.seed);
  const std::uint32_t n = config.node_count;

  // Event queue of node failures. Each node fails as an independent
  // Poisson process; after a failure the node is rebuilt (rebuild_time)
  // and resumes with a fresh exponential clock.
  struct Event {
    double time;
    std::uint32_t node;
    bool operator>(const Event& o) const { return time > o.time; }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  for (std::uint32_t i = 0; i < n; ++i) {
    events.push({rng.exponential(config.node_mttf), i});
  }

  // rebuilding_until[i]: wall time until which node i's stored data
  // (its own checkpoint slice and the partner copy it hosts) is
  // unavailable because the node is being rebuilt.
  std::vector<double> rebuilding_until(n, 0.0);

  FailureAnalysisResult result;
  double now = 0.0;
  while (true) {
    if (config.sim_duration > 0 && now >= config.sim_duration) break;
    if (config.sim_duration <= 0 &&
        result.failures >= config.target_failures) {
      break;
    }
    const Event ev = events.top();
    events.pop();
    now = ev.time;

    ++result.failures;
    // The failed node's local NVM is gone; recovery needs the partner
    // copy hosted on (node+1) % N. That copy is unavailable while the
    // partner itself is down/rebuilding.
    const std::uint32_t partner = (ev.node + 1) % n;
    if (rebuilding_until[partner] > now) {
      ++result.io_required;
    } else {
      ++result.local_recoverable;
    }

    rebuilding_until[ev.node] = now + config.rebuild_time;
    events.push({now + rng.exponential(config.node_mttf), ev.node});
  }
  result.observed_system_mtti =
      result.failures ? now / static_cast<double>(result.failures) : 0.0;
  return result;
}

}  // namespace ndpcr::cluster
