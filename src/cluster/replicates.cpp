#include "cluster/replicates.hpp"

#include <algorithm>

#include "exec/task_pool.hpp"

namespace ndpcr::cluster {
namespace {

exec::TaskPool* resolve_pool(exec::TaskPool* pool) {
  if (pool != nullptr) return pool;
  return exec::TaskPool::in_worker() ? nullptr : &exec::global_pool();
}

template <typename Result, typename RunFn>
std::vector<Result> run_replicated(int replicates, exec::TaskPool* pool,
                                   const RunFn& run_one) {
  const auto n = static_cast<std::size_t>(std::max(replicates, 0));
  pool = resolve_pool(pool);
  if (pool == nullptr || n <= 1) {
    std::vector<Result> runs;
    runs.reserve(n);
    for (std::size_t r = 0; r < n; ++r) runs.push_back(run_one(r));
    return runs;
  }
  return pool->parallel_map(n, run_one);
}

}  // namespace

ClusterReplicateSummary run_cluster_replicates(const ClusterSimConfig& base,
                                               int replicates,
                                               exec::TaskPool* pool) {
  ClusterReplicateSummary s;
  s.runs = run_replicated<ClusterSimResult>(replicates, pool,
                                            [&](std::size_t r) {
                                              ClusterSimConfig cfg = base;
                                              cfg.seed =
                                                  exec::sub_seed(base.seed, r);
                                              return ClusterSim(cfg).run();
                                            });
  if (s.runs.empty()) return s;
  s.all_verified = true;
  for (const auto& r : s.runs) {
    s.total_failures += r.failures;
    s.total_unrecoverable += r.unrecoverable;
    s.mean_failures += static_cast<double>(r.failures);
    s.mean_steps_rerun += static_cast<double>(r.steps_rerun);
    s.mean_local_level_ranks += static_cast<double>(r.local_level_ranks);
    s.mean_partner_level_ranks += static_cast<double>(r.partner_level_ranks);
    s.mean_io_level_ranks += static_cast<double>(r.io_level_ranks);
    s.all_verified = s.all_verified && r.state_verified;
  }
  const auto n = static_cast<double>(s.runs.size());
  s.mean_failures /= n;
  s.mean_steps_rerun /= n;
  s.mean_local_level_ranks /= n;
  s.mean_partner_level_ranks /= n;
  s.mean_io_level_ranks /= n;
  return s;
}

NdpClusterReplicateSummary run_ndp_cluster_replicates(
    const NdpClusterConfig& base, int replicates, exec::TaskPool* pool) {
  NdpClusterReplicateSummary s;
  s.runs = run_replicated<NdpClusterResult>(replicates, pool,
                                            [&](std::size_t r) {
                                              NdpClusterConfig cfg = base;
                                              cfg.seed =
                                                  exec::sub_seed(base.seed, r);
                                              return NdpClusterSim(cfg).run();
                                            });
  if (s.runs.empty()) return s;
  s.all_verified = true;
  for (const auto& r : s.runs) {
    s.total_failures += r.failures;
    s.mean_failures += static_cast<double>(r.failures);
    s.mean_progress_rate += r.progress_rate();
    s.mean_io_checkpoints += static_cast<double>(r.io_checkpoints);
    s.all_verified = s.all_verified && r.state_verified;
  }
  const auto n = static_cast<double>(s.runs.size());
  s.mean_failures /= n;
  s.mean_progress_rate /= n;
  s.mean_io_checkpoints /= n;
  return s;
}

FailureReplicateSummary run_failure_replicates(
    const FailureAnalysisConfig& base, int replicates,
    exec::TaskPool* pool) {
  FailureReplicateSummary s;
  s.runs = run_replicated<FailureAnalysisResult>(
      replicates, pool, [&](std::size_t r) {
        FailureAnalysisConfig cfg = base;
        cfg.seed = exec::sub_seed(base.seed, r);
        cfg.metrics = nullptr;  // single-writer; never shared across tasks
        return analyze_failures(cfg);
      });
  for (const auto& r : s.runs) {
    s.total_failures += r.failures;
    s.total_local_recoverable += r.local_recoverable;
    s.total_io_required += r.io_required;
    s.total_cascade_failures += r.cascade_failures;
    s.total_rack_outages += r.rack_outages;
    s.total_rack_node_failures += r.rack_node_failures;
    s.total_events_processed += r.events_processed;
    s.total_elapsed += r.elapsed;
    s.total_energy_joules += r.energy.total_joules();
  }
  return s;
}

}  // namespace ndpcr::cluster
