#include "cluster/ndp_cluster_sim.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "ckpt/stores.hpp"
#include "common/rng.hpp"
#include "compress/chunked.hpp"
#include "faults/faulty_stores.hpp"
#include "ndp/agent.hpp"
#include "obs/trace.hpp"
#include "workloads/miniapp.hpp"

namespace ndpcr::cluster {

NdpClusterSim::NdpClusterSim(const NdpClusterConfig& config) : cfg_(config) {
  if (cfg_.node_count == 0 || cfg_.total_steps == 0) {
    throw std::invalid_argument("node_count and total_steps must be > 0");
  }
  if (cfg_.aggregate_io_bw <= 0 || cfg_.ndp_compress_bw <= 0) {
    throw std::invalid_argument("bandwidths must be positive");
  }
}

NdpClusterResult NdpClusterSim::run() {
  NdpClusterResult result;
  Rng rng(cfg_.seed);
  const auto n = cfg_.node_count;
  obs::Tracer& tracer =
      cfg_.trace != nullptr ? *cfg_.trace : obs::Tracer::null();
  if (tracer.enabled()) tracer.set_track_name(0, "cluster");

  auto make_rank = [&](std::uint32_t r) {
    return workloads::make_miniapp(cfg_.app, cfg_.state_bytes_per_rank,
                                   cfg_.seed * 977 + r);
  };
  std::vector<std::unique_ptr<workloads::MiniApp>> ranks;
  for (std::uint32_t r = 0; r < n; ++r) ranks.push_back(make_rank(r));

  // One shared IO store (the PFS), optionally decorated with a seeded
  // fault plan; each agent gets the paper's static per-node share of the
  // aggregate IO bandwidth.
  std::unique_ptr<ckpt::KvStore> io_store;
  if (cfg_.io_fault_rates.any()) {
    const std::uint64_t fault_seed =
        cfg_.fault_seed != 0 ? cfg_.fault_seed : cfg_.seed * 0x9E37 + 5;
    auto plan = std::make_shared<faults::FaultPlan>(fault_seed);
    plan->set_rates(faults::io_target(), cfg_.io_fault_rates);
    io_store = std::make_unique<faults::FaultyKvStore>(std::move(plan),
                                                       faults::io_target());
  } else {
    io_store = std::make_unique<ckpt::KvStore>();
  }
  ckpt::KvStore& io = *io_store;
  std::vector<std::unique_ptr<ndp::NdpAgent>> agents;
  for (std::uint32_t r = 0; r < n; ++r) {
    ndp::AgentConfig ac;
    ac.uncompressed_capacity = cfg_.nvm_capacity_bytes;
    ac.compressed_capacity = cfg_.nvm_capacity_bytes / 4;
    ac.codec = cfg_.codec;
    ac.codec_level = cfg_.codec_level;
    ac.chunk_bytes = cfg_.ndp_chunk_bytes;
    ac.compress_bw = cfg_.ndp_compress_bw;
    ac.io_bw = cfg_.aggregate_io_bw / n;
    ac.rank = r;
    ac.trace = cfg_.trace;
    ac.trace_track = 1 + 3 * r;  // track 0 is the simulation's own row
    agents.push_back(std::make_unique<ndp::NdpAgent>(ac, io));
  }
  // Agents ship ChunkedCodec containers to IO (the raw image when the
  // codec is null); unpack accordingly, treating anything corrupt as
  // missing.
  std::optional<compress::ChunkedCodec> codec;
  if (cfg_.codec != compress::CodecId::kNull) {
    codec.emplace(cfg_.codec, cfg_.codec_level);
  }
  auto unpack = [&](const Bytes& packed) -> std::optional<Bytes> {
    if (!codec) return packed;
    try {
      return codec->decompress(packed);
    } catch (const compress::CodecError&) {
      return std::nullopt;
    }
  };

  const double system_mttf = cfg_.node_mttf / static_cast<double>(n);
  double now = 0.0;
  double next_failure = rng.exponential(system_mttf);

  std::uint64_t step = 0;
  std::uint64_t high_water = 0;
  std::uint64_t ckpt_id = 0;

  // Newest checkpoint generation fully landed on IO across all ranks.
  // Consults the store, not agent memory (a reset agent forgets, the PFS
  // does not); drains may skip generations, so walk down from the
  // smallest per-rank newest until one is present everywhere.
  auto newest_common_on_io = [&]() -> std::uint64_t {
    std::uint64_t upper = ~0ull;
    for (std::uint32_t r = 0; r < n; ++r) {
      const auto newest = io.newest_id(r);
      if (!newest) return 0;
      upper = std::min(upper, *newest);
    }
    for (std::uint64_t g = upper; g > 0; --g) {
      bool everywhere = true;
      for (std::uint32_t r = 0; r < n && everywhere; ++r) {
        everywhere = io.contains(r, g);
      }
      if (everywhere) return g;
    }
    return 0;
  };

  auto pump_all = [&](double seconds) {
    for (auto& agent : agents) {
      // `now` was already advanced past this pump window; align each
      // agent's virtual clock with the window start so drain spans land
      // on the simulation timeline.
      agent->sync_clock(now - seconds);
      agent->pump(seconds);
    }
  };

  // Drains the agents abandoned (IO permanently down or retries
  // exhausted) fall back to a synchronous host write - verified, with its
  // own small retry budget - so a flaky PFS costs host time instead of
  // losing the generation.
  auto collect_fallbacks = [&] {
    for (std::uint32_t r = 0; r < n; ++r) {
      auto fallback = agents[r]->take_host_fallback();
      if (!fallback) continue;
      bool landed = false;
      for (int attempt = 0; attempt < 3 && !landed; ++attempt) {
        const auto status =
            io.put(r, fallback->checkpoint_id, Bytes(fallback->compressed));
        if (!status.ok()) {
          if (status.error().permanent()) break;
          continue;
        }
        const auto readback = io.get(r, fallback->checkpoint_id);
        if (readback.ok() && *readback == fallback->compressed) {
          landed = true;
        } else if (readback.ok()) {
          io.erase(r, fallback->checkpoint_id);
        }
      }
      if (landed) {
        now += static_cast<double>(fallback->compressed.size()) /
               (cfg_.aggregate_io_bw / n);
        ++result.host_fallback_writes;
        tracer.instant_at(now, "host_fallback_write", "cluster", 0,
                          {obs::u64("rank", r),
                           obs::u64("id", fallback->checkpoint_id)});
      } else {
        ++result.host_fallback_drops;
        tracer.instant_at(now, "host_fallback_drop", "cluster", 0,
                          {obs::u64("rank", r),
                           obs::u64("id", fallback->checkpoint_id)});
      }
    }
  };

  auto handle_failure = [&] {
    ++result.failures;
    next_failure = now + rng.exponential(system_mttf);
    const bool transient = rng.next_double() < cfg_.p_local_recovery;
    tracer.instant_at(now, "failure", "cluster", 0,
                      {obs::u64("step", step),
                       obs::u64("transient", transient ? 1 : 0)});

    if (transient) {
      // NVM (and pipelines) survive; roll back to the newest committed
      // generation, which every rank still holds locally.
      if (ckpt_id == 0) {
        ++result.scratch_restarts;
        tracer.instant_at(now, "scratch_restart", "cluster", 0,
                          {obs::u64("steps_lost", step)});
        for (std::uint32_t r = 0; r < n; ++r) ranks[r] = make_rank(r);
        result.steps_rerun += step;
        step = 0;
        return;
      }
      now += cfg_.local_restore_time;
      std::uint64_t restored_step = 0;
      for (std::uint32_t r = 0; r < n; ++r) {
        auto image = agents[r]->restore_local(ckpt_id);
        if (!image) {
          // Evicted locally (drain fell behind and the buffer cycled):
          // fall back to the IO copy if it made it there.
          const auto packed = io.get(r, ckpt_id);
          if (!packed) {
            image.reset();
          } else {
            image = unpack(*packed);
          }
        }
        if (!image) {
          // This generation is gone for rank r; a real system would walk
          // back further - count it as an IO-era rollback below.
          break;
        }
        ranks[r]->restore(*image);
        restored_step = ranks[r]->step_count();
        if (r == n - 1) {
          ++result.local_recoveries;
          result.steps_rerun += step - restored_step;
          tracer.instant_at(now, "local_recovery", "cluster", 0,
                            {obs::u64("id", ckpt_id),
                             obs::u64("to_step", restored_step)});
          step = restored_step;
          return;
        }
      }
      // Fall through to an IO recovery if local restore failed mid-way.
    }

    // Node loss (or failed local recovery): the victim's NVM is gone;
    // everyone rolls back to the newest generation fully on IO.
    const auto victim = static_cast<std::uint32_t>(rng.next_below(n));
    agents[victim]->reset();

    // Fetch a complete generation *before* restoring any rank: with a
    // faulty store, restoring ranks one by one could leave the app half
    // rolled back when a later rank's read fails. Reads retry transient
    // errors; a corrupt or unreadable copy walks the target down.
    struct Generation {
      std::vector<Bytes> images;
      std::size_t victim_packed = 0;  // compressed bytes read for victim
    };
    auto fetch_generation =
        [&](std::uint64_t target) -> std::optional<Generation> {
      Generation gen;
      gen.images.resize(n);
      for (std::uint32_t r = 0; r < n; ++r) {
        if (auto local = agents[r]->restore_local(target)) {
          gen.images[r] = std::move(*local);
          continue;
        }
        auto packed = io.get(r, target);
        for (int attempt = 1;
             attempt < 4 && !packed.ok() && packed.error().transient();
             ++attempt) {
          packed = io.get(r, target);
        }
        if (!packed.ok()) return std::nullopt;
        auto image = unpack(*packed);
        if (!image) return std::nullopt;
        gen.images[r] = std::move(*image);
        if (r == victim) gen.victim_packed = packed->size();
      }
      return gen;
    };

    std::uint64_t target = newest_common_on_io();
    std::optional<Generation> gen;
    while (target > 0 && !(gen = fetch_generation(target))) --target;
    if (target == 0) {
      ++result.scratch_restarts;
      tracer.instant_at(now, "scratch_restart", "cluster", 0,
                        {obs::u64("steps_lost", step)});
      for (std::uint32_t r = 0; r < n; ++r) ranks[r] = make_rank(r);
      result.steps_rerun += step;
      step = 0;
      return;
    }
    // Coordinated restore time: the compressed read through the victim's
    // IO share dominates.
    now += std::max(cfg_.local_restore_time,
                    static_cast<double>(gen->victim_packed) /
                        (cfg_.aggregate_io_bw / n));
    std::uint64_t restored_step = 0;
    for (std::uint32_t r = 0; r < n; ++r) {
      ranks[r]->restore(gen->images[r]);
      restored_step = ranks[r]->step_count();
    }
    ++result.io_recoveries;
    result.steps_rerun += step - restored_step;
    tracer.instant_at(now, "io_recovery", "cluster", 0,
                      {obs::u64("id", target), obs::u64("victim", victim),
                       obs::u64("to_step", restored_step)});
    step = restored_step;
  };

  while (step < cfg_.total_steps) {
    // Compute burst: the app advances while every NDP pumps.
    const std::uint64_t burst = std::min<std::uint64_t>(
        cfg_.steps_per_checkpoint, cfg_.total_steps - step);
    bool failed = false;
    for (std::uint64_t s = 0; s < burst; ++s) {
      now += cfg_.step_time;
      pump_all(cfg_.step_time);
      collect_fallbacks();
      if (now >= next_failure) {
        failed = true;
        break;
      }
      for (auto& rank : ranks) rank->step();
      ++step;
      if (step > high_water) {
        high_water = step;
        result.compute_seconds += cfg_.step_time;
      }
    }
    if (failed) {
      handle_failure();
      continue;
    }
    if (step >= cfg_.total_steps) break;

    // Coordinated local commit: the host owns the NVM (no pumping).
    now += cfg_.local_commit_time;
    ++ckpt_id;
    tracer.instant_at(now, "local_commit", "cluster", 0,
                      {obs::u64("id", ckpt_id), obs::u64("step", step)});
    for (std::uint32_t r = 0; r < n; ++r) {
      // If the agent's buffer is wedged behind a locked drain, let the
      // drain finish first (the host stall the paper describes).
      while (!agents[r]->host_commit(ckpt_id, ranks[r]->checkpoint())) {
        agents[r]->sync_clock(now);
        const double drained = agents[r]->pump(cfg_.step_time);
        now += drained > 0 ? drained : cfg_.step_time;
      }
    }
    ++result.checkpoints;
    collect_fallbacks();
  }

  result.io_checkpoints = newest_common_on_io();
  result.virtual_seconds = now;
  for (const auto& agent : agents) {
    result.drain_put_retries += agent->stats().drain_put_retries;
    result.drain_put_failures += agent->stats().drain_put_failures;
    result.io_put_attempts += agent->stats().io_put_attempts;
    result.io_verify_failures += agent->stats().io_verify_failures;
    result.io_quarantined += agent->stats().io_quarantined;
    result.host_fallbacks += agent->stats().host_fallbacks;
  }

  result.state_verified = true;
  for (auto& rank : ranks) {
    if (rank->step_count() != ranks[0]->step_count()) {
      result.state_verified = false;
    }
    const auto digest = rank->state_digest();
    const Bytes image = rank->checkpoint();
    rank->restore(image);
    if (rank->state_digest() != digest) result.state_verified = false;
  }
  return result;
}

}  // namespace ndpcr::cluster
