#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/crc32.hpp"
#include "common/stats.hpp"
#include "exec/reporter.hpp"

namespace ndpcr::obs {
namespace {

std::string fmt(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::size_t bucket_of(double value) {
  if (!(value > Histogram::kFloor)) return 0;
  // ilogb of the ratio: pure exponent arithmetic, no boundary rounding.
  const int exp = std::ilogb(value / Histogram::kFloor);
  const std::size_t idx = static_cast<std::size_t>(exp < 0 ? 0 : exp) + 1;
  return std::min(idx, Histogram::kBuckets - 1);
}

double bucket_lo(std::size_t idx) {
  if (idx == 0) return 0.0;
  return Histogram::kFloor * std::ldexp(1.0, static_cast<int>(idx) - 1);
}

double bucket_hi(std::size_t idx) {
  return Histogram::kFloor * std::ldexp(1.0, static_cast<int>(idx));
}

}  // namespace

void Histogram::record(double value) {
  if (!std::isfinite(value)) return;
  if (value < 0.0) value = 0.0;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[bucket_of(value)];
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t idx = 0; idx < kBuckets; ++idx) {
    if (buckets_[idx] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += buckets_[idx];
    if (static_cast<double>(seen) < rank) continue;
    // Geometric interpolation inside the landing bucket matches the
    // logarithmic bucket widths.
    const double frac =
        std::clamp((rank - before) / static_cast<double>(buckets_[idx]),
                   0.0, 1.0);
    const double lo = std::max(bucket_lo(idx), min_);
    const double hi = std::min(bucket_hi(idx), std::max(max_, kFloor));
    double value;
    if (idx == 0 || lo <= 0.0) {
      value = lo + (hi - lo) * frac;
    } else {
      value = lo * std::pow(hi / lo, frac);
    }
    return std::clamp(value, min_, max_);
  }
  return max_;
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  double sum = 0.0;
  s.min = s.max = samples.front();
  for (const double v : samples) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(samples.size());
  s.p50 = percentile(samples, 50.0);
  s.p95 = percentile(samples, 95.0);
  s.p99 = percentile(std::move(samples), 99.0);
  return s;
}

double jain_index(const std::vector<double>& shares) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : shares) {
    sum += x;
    sum_sq += x * x;
  }
  if (shares.empty() || sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(shares.size()) * sum_sq);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::string(name), Histogram{}).first->second;
}

void MetricsRegistry::add_to(exec::Reporter& reporter) const {
  if (!counters_.empty()) {
    reporter.add_section("metrics.counters", {"name", "value"});
    for (const auto& [name, counter] : counters_) {
      reporter.add_row({name, std::to_string(counter.value())});
    }
  }
  if (!gauges_.empty()) {
    reporter.add_section("metrics.gauges", {"name", "value"});
    for (const auto& [name, gauge] : gauges_) {
      reporter.add_row({name, fmt(gauge.value())});
    }
  }
  if (!histograms_.empty()) {
    reporter.add_section("metrics.histograms",
                         {"name", "count", "mean", "min", "max", "p50",
                          "p95", "p99", "sum"});
    for (const auto& [name, h] : histograms_) {
      reporter.add_row({name, std::to_string(h.count()), fmt(h.mean()),
                        fmt(h.min()), fmt(h.max()), fmt(h.p50()),
                        fmt(h.p95()), fmt(h.p99()), fmt(h.sum())});
    }
  }
}

void MetricsRegistry::write(const std::string& path,
                            const exec::RunMeta& meta) const {
  exec::Reporter reporter(meta);
  add_to(reporter);
  reporter.write(path);
}

std::uint32_t MetricsRegistry::fingerprint() const {
  Crc32 crc;
  const auto feed_u64 = [&](std::uint64_t v) {
    std::uint8_t raw[8];
    for (int i = 0; i < 8; ++i) raw[i] = static_cast<std::uint8_t>(v >> (8 * i));
    crc.update(raw, sizeof raw);
  };
  const auto feed_f64 = [&](double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    feed_u64(bits);
  };
  const auto feed_str = [&](std::string_view s) {
    feed_u64(s.size());
    crc.update(s.data(), s.size());
  };
  feed_u64(counters_.size());
  for (const auto& [name, counter] : counters_) {
    feed_str(name);
    feed_u64(counter.value());
  }
  feed_u64(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    feed_str(name);
    feed_f64(gauge.value());
  }
  feed_u64(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    feed_str(name);
    feed_u64(h.count());
    feed_f64(h.sum());
    feed_f64(h.min());
    feed_f64(h.max());
    for (const std::uint64_t b : h.buckets()) feed_u64(b);
  }
  return crc.value();
}

}  // namespace ndpcr::obs
