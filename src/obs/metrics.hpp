#pragma once

// Metrics for the C/R stack (docs/OBSERVABILITY.md): counters, gauges
// and log-bucketed latency histograms with p50/p95/p99, collected in a
// MetricsRegistry and exported through exec::Reporter so snapshots share
// the CSV/JSON/ASCII pipeline (and metadata stamping) of every bench
// table in the tree.
//
// Everything here is deterministic: histograms bucket by the binary
// exponent of the sample (std::ilogb - integer math on the double's
// exponent, no rounding ambiguity), registries export in name order
// (std::map), and fingerprint() hashes the exact stored state. Like the
// tracer, a registry is single-writer: parallel sections record into
// per-task registries or plain per-task arrays and merge in task-index
// order.

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ndpcr::exec {
class Reporter;
struct RunMeta;
}  // namespace ndpcr::exec

namespace ndpcr::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double value) { value_ = value; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Log-bucketed histogram: bucket 0 holds samples <= kFloor, bucket k
// holds (kFloor * 2^(k-1), kFloor * 2^k]. With kFloor = 1e-9 and 64
// buckets the range covers nanoseconds to ~10^10 in units of the caller's
// choosing. Exact count/sum/min/max are kept alongside the buckets;
// quantiles interpolate geometrically inside the landing bucket.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;
  static constexpr double kFloor = 1e-9;

  void record(double value);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

  // q in [0, 1]; 0 on an empty histogram. Bucket-resolution estimate
  // (within a factor of 2), clamped to the observed [min, max].
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p95() const { return quantile(0.95); }
  [[nodiscard]] double p99() const { return quantile(0.99); }

  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

// Exact-percentile summary of a sample vector - the shared helper the
// bench harnesses use instead of each keeping a private percentile
// implementation (built on common/stats.hpp percentile()).
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

[[nodiscard]] Summary summarize(std::vector<double> samples);

// Jain's fairness index over per-party allocations: (sum x)^2 / (n * sum
// x^2), in (0, 1] with 1 = perfectly even. The service layer reports it
// over per-tenant IO bytes (raw, and normalized by QoS weight so a
// weighted-fair schedule scores ~1). Empty or all-zero input counts as
// fair: 1.
[[nodiscard]] double jain_index(const std::vector<double>& shares);

// Named metric store. Lookup creates on first use; export is name-sorted
// and therefore deterministic.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  // Append "metrics.counters" / "metrics.gauges" / "metrics.histograms"
  // sections (only the non-empty ones) to an existing Reporter.
  void add_to(exec::Reporter& reporter) const;

  // Standalone snapshot through a fresh Reporter: "-" = stdout, ".json"
  // suffix = JSON, anything else CSV (exec::Reporter::write semantics).
  void write(const std::string& path, const exec::RunMeta& meta) const;

  // CRC32 over names and stored values; bit-identical across runs and
  // TaskPool sizes when the recording sites follow the merge rule.
  [[nodiscard]] std::uint32_t fingerprint() const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace ndpcr::obs
