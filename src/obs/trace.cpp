#include "obs/trace.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "common/crc32.hpp"
#include "common/json.hpp"

namespace ndpcr::obs {
namespace {

constexpr double kUsPerSecond = 1e6;

std::uint64_t us_of(double seconds) {
  if (!(seconds > 0.0)) return 0;
  return static_cast<std::uint64_t>(std::llround(seconds * kUsPerSecond));
}

std::string render_u64(std::uint64_t v) { return std::to_string(v); }

std::string render_f64(double v) {
  if (!std::isfinite(v)) return v > 0 ? "1e308" : (v < 0 ? "-1e308" : "0");
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::vector<TraceEvent::RenderedArg> render_args(
    std::initializer_list<Arg> args) {
  std::vector<TraceEvent::RenderedArg> out;
  out.reserve(args.size());
  for (const Arg& a : args) {
    TraceEvent::RenderedArg r;
    r.key.assign(a.key);
    switch (a.kind) {
      case Arg::Kind::kU64:
        r.value = render_u64(a.u);
        r.numeric = true;
        break;
      case Arg::Kind::kF64:
        r.value = render_f64(a.f);
        r.numeric = true;
        break;
      case Arg::Kind::kText:
        r.value.assign(a.text);
        r.numeric = false;
        break;
    }
    out.push_back(std::move(r));
  }
  return out;
}

// Chrome trace pids: one process per clock domain so rows never mix
// timebases inside the viewer.
std::uint32_t pid_of(Clock clock) {
  switch (clock) {
    case Clock::kLogical: return 1;
    case Clock::kVirtual: return 2;
    case Clock::kWall: return 3;
  }
  return 1;
}

const char* process_name_of(Clock clock) {
  switch (clock) {
    case Clock::kLogical: return "data path (logical ticks)";
    case Clock::kVirtual: return "simulator (virtual time)";
    case Clock::kWall: return "wall clock";
  }
  return "?";
}

}  // namespace

NullSink& NullSink::instance() {
  static NullSink sink;
  return sink;
}

// ---------------------------------------------------------------------------
// TraceBuffer

TraceBuffer::Span& TraceBuffer::Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    close();
    buf_ = other.buf_;
    name_ = std::move(other.name_);
    cat_ = std::move(other.cat_);
    track_ = other.track_;
    other.buf_ = nullptr;
  }
  return *this;
}

void TraceBuffer::Span::close() {
  if (buf_ == nullptr) return;
  TraceBuffer* buf = buf_;
  buf_ = nullptr;
  buf->push(name_, cat_, Phase::kEnd, Clock::kLogical, track_, 0, {});
}

TraceBuffer::Span TraceBuffer::span(std::string_view name,
                                    std::string_view cat,
                                    std::uint32_t track,
                                    std::initializer_list<Arg> args) {
  if (!live_) return {};
  push(name, cat, Phase::kBegin, Clock::kLogical, track, 0, args);
  return Span(this, std::string(name), std::string(cat), track);
}

void TraceBuffer::instant(std::string_view name, std::string_view cat,
                          std::uint32_t track,
                          std::initializer_list<Arg> args) {
  if (!live_) return;
  push(name, cat, Phase::kInstant, Clock::kLogical, track, 0, args);
}

void TraceBuffer::instant_at(double t_seconds, std::string_view name,
                             std::string_view cat, std::uint32_t track,
                             std::initializer_list<Arg> args) {
  if (!live_) return;
  push(name, cat, Phase::kInstant, Clock::kVirtual, track, us_of(t_seconds),
       args);
}

void TraceBuffer::span_at(double t0_seconds, double t1_seconds,
                          std::string_view name, std::string_view cat,
                          std::uint32_t track,
                          std::initializer_list<Arg> args) {
  if (!live_) return;
  const std::uint64_t t0 = us_of(t0_seconds);
  std::uint64_t t1 = us_of(t1_seconds);
  if (t1 < t0) t1 = t0;
  push(name, cat, Phase::kBegin, Clock::kVirtual, track, t0, args);
  push(name, cat, Phase::kEnd, Clock::kVirtual, track, t1, {});
}

void TraceBuffer::emit(TraceEvent event) {
  if (!live_) {
    NullSink::instance().emit(std::move(event));
    return;
  }
  events_.push_back(std::move(event));
}

void TraceBuffer::append(TraceBuffer&& other) {
  if (!live_ || other.events_.empty()) return;
  events_.reserve(events_.size() + other.events_.size());
  for (auto& ev : other.events_) events_.push_back(std::move(ev));
  other.events_.clear();
}

void TraceBuffer::push(std::string_view name, std::string_view cat,
                       Phase phase, Clock clock, std::uint32_t track,
                       std::uint64_t ts_us,
                       std::initializer_list<Arg> args) {
  TraceEvent ev;
  ev.name.assign(name);
  ev.cat.assign(cat);
  ev.phase = phase;
  ev.clock = clock;
  ev.track = track;
  ev.ts_us = ts_us;
  ev.args = render_args(args);
  emit(std::move(ev));
}

// ---------------------------------------------------------------------------
// Tracer

Tracer::Tracer(bool enabled)
    : enabled_(enabled),
      root_(enabled),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::null() {
  static Tracer tracer(false);
  return tracer;
}

std::vector<TraceBuffer> Tracer::task_buffers(std::size_t n) const {
  if (!enabled_) return {};
  return std::vector<TraceBuffer>(n, TraceBuffer(true));
}

void Tracer::splice(std::vector<TraceBuffer>& parts) {
  if (!enabled_) return;
  for (TraceBuffer& part : parts) root_.append(std::move(part));
}

void Tracer::set_track_name(std::uint32_t track, std::string name) {
  if (!enabled_) return;
  track_names_[track] = std::move(name);
}

TraceBuffer::Span Tracer::span(std::string_view name, std::string_view cat,
                               std::uint32_t track,
                               std::initializer_list<Arg> args) {
  if (!enabled_) return {};
  return root_.span(name, cat, track, args);
}

void Tracer::instant(std::string_view name, std::string_view cat,
                     std::uint32_t track, std::initializer_list<Arg> args) {
  if (!enabled_) return;
  root_.instant(name, cat, track, args);
}

void Tracer::instant_at(double t_seconds, std::string_view name,
                        std::string_view cat, std::uint32_t track,
                        std::initializer_list<Arg> args) {
  if (!enabled_) return;
  root_.instant_at(t_seconds, name, cat, track, args);
}

void Tracer::span_at(double t0_seconds, double t1_seconds,
                     std::string_view name, std::string_view cat,
                     std::uint32_t track, std::initializer_list<Arg> args) {
  if (!enabled_) return;
  root_.span_at(t0_seconds, t1_seconds, name, cat, track, args);
}

Tracer::WallSpan& Tracer::WallSpan::operator=(WallSpan&& other) noexcept {
  if (this != &other) {
    close();
    tracer_ = other.tracer_;
    name_ = std::move(other.name_);
    cat_ = std::move(other.cat_);
    track_ = other.track_;
    t0_us_ = other.t0_us_;
    other.tracer_ = nullptr;
  }
  return *this;
}

void Tracer::WallSpan::close() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  std::uint64_t t1 = tracer->wall_now_us();
  if (t1 < t0_us_) t1 = t0_us_;
  TraceEvent begin;
  begin.name = name_;
  begin.cat = cat_;
  begin.phase = Phase::kBegin;
  begin.clock = Clock::kWall;
  begin.track = track_;
  begin.ts_us = t0_us_;
  TraceEvent end = begin;
  end.phase = Phase::kEnd;
  end.ts_us = t1;
  tracer->root_.emit(std::move(begin));
  tracer->root_.emit(std::move(end));
}

Tracer::WallSpan Tracer::wall_span(std::string_view name,
                                   std::string_view cat,
                                   std::uint32_t track) {
  WallSpan span;
  if (!enabled_) return span;
  span.tracer_ = this;
  span.name_.assign(name);
  span.cat_.assign(cat);
  span.track_ = track;
  span.t0_us_ = wall_now_us();
  return span;
}

std::uint64_t Tracer::wall_now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::string Tracer::chrome_json() const {
  std::string out;
  out.reserve(256 + root_.events().size() * 96);
  out += "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out += ',';
    first = false;
  };

  // Metadata: process names per clock domain in use, thread (track)
  // names everywhere a named track has events.
  bool clock_used[3] = {false, false, false};
  for (const TraceEvent& ev : root_.events()) {
    clock_used[static_cast<int>(ev.clock)] = true;
  }
  for (const Clock clock :
       {Clock::kLogical, Clock::kVirtual, Clock::kWall}) {
    if (!clock_used[static_cast<int>(clock)]) continue;
    const std::uint32_t pid = pid_of(clock);
    comma();
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":0,\"args\":{\"name\":";
    out += json_escape(process_name_of(clock));
    out += "}}";
    for (const auto& [track, name] : track_names_) {
      comma();
      out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":";
      out += std::to_string(pid);
      out += ",\"tid\":";
      out += std::to_string(track);
      out += ",\"args\":{\"name\":";
      out += json_escape(name);
      out += "}}";
    }
  }

  // Events. Logical timestamps are export-order ticks: structure is the
  // signal, and ticks keep nesting visible in the viewer.
  std::uint64_t logical_tick = 0;
  for (const TraceEvent& ev : root_.events()) {
    const std::uint64_t ts =
        ev.clock == Clock::kLogical ? logical_tick++ : ev.ts_us;
    comma();
    out += "{\"name\":";
    out += json_escape(ev.name);
    if (!ev.cat.empty()) {
      out += ",\"cat\":";
      out += json_escape(ev.cat);
    }
    out += ",\"ph\":\"";
    switch (ev.phase) {
      case Phase::kBegin: out += 'B'; break;
      case Phase::kEnd: out += 'E'; break;
      case Phase::kInstant: out += 'i'; break;
    }
    out += "\",\"ts\":";
    out += std::to_string(ts);
    out += ",\"pid\":";
    out += std::to_string(pid_of(ev.clock));
    out += ",\"tid\":";
    out += std::to_string(ev.track);
    if (ev.phase == Phase::kInstant) out += ",\"s\":\"t\"";
    if (!ev.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& arg : ev.args) {
        if (!first_arg) out += ',';
        first_arg = false;
        out += json_escape(arg.key);
        out += ':';
        out += arg.numeric ? arg.value : json_escape(arg.value);
      }
      out += '}';
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::uint32_t Tracer::fingerprint() const {
  Crc32 crc;
  const auto feed_u8 = [&](std::uint8_t v) { crc.update(&v, 1); };
  const auto feed_u32 = [&](std::uint32_t v) {
    std::uint8_t raw[4];
    for (int i = 0; i < 4; ++i) raw[i] = static_cast<std::uint8_t>(v >> (8 * i));
    crc.update(raw, sizeof raw);
  };
  const auto feed_u64 = [&](std::uint64_t v) {
    std::uint8_t raw[8];
    for (int i = 0; i < 8; ++i) raw[i] = static_cast<std::uint8_t>(v >> (8 * i));
    crc.update(raw, sizeof raw);
  };
  const auto feed_str = [&](std::string_view s) {
    feed_u64(s.size());
    crc.update(s.data(), s.size());
  };
  for (const TraceEvent& ev : root_.events()) {
    if (ev.clock == Clock::kWall) continue;  // never deterministic
    feed_u8(static_cast<std::uint8_t>(ev.phase));
    feed_u8(static_cast<std::uint8_t>(ev.clock));
    feed_u32(ev.track);
    feed_u64(ev.clock == Clock::kVirtual ? ev.ts_us : 0);
    feed_str(ev.name);
    feed_str(ev.cat);
    feed_u64(ev.args.size());
    for (const auto& arg : ev.args) {
      feed_str(arg.key);
      feed_str(arg.value);
      feed_u8(arg.numeric ? 1 : 0);
    }
  }
  return crc.value();
}

void Tracer::write(const std::string& path) const {
  const std::string body = chrome_json();
  if (path == "-") {
    std::fwrite(body.data(), 1, body.size(), stdout);
    std::fputc('\n', stdout);
    return;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("obs: cannot open trace file " + path);
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  out.put('\n');
  if (!out) throw std::runtime_error("obs: short write to " + path);
}

}  // namespace ndpcr::obs
