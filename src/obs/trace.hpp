#pragma once

// Deterministic tracing for the C/R stack (docs/OBSERVABILITY.md).
//
// A Tracer records nested spans and instant events and exports them as
// Chrome-trace-event JSON (loadable in Perfetto / chrome://tracing).
// Three clocks coexist in one trace, kept apart as separate trace pids:
//
//   kLogical - a tick counter assigned at export time from event order.
//              The data-path layers (MultilevelManager, chaos runner)
//              have no meaningful wall or virtual clock of their own;
//              their span *structure* is the signal.
//   kVirtual - simulator time in microseconds, supplied by the emitter
//              (NdpAgent pipeline stages, the cluster sims' failure and
//              recovery events).
//   kWall    - steady_clock time relative to the Tracer's epoch, for
//              bench harnesses. Wall events are excluded from the
//              fingerprint: they are never deterministic.
//
// Determinism contract (mirrors docs/ENGINE.md): events emitted from
// pool workers go to per-task TraceBuffers - one buffer per task index,
// nothing shared - and are spliced into the Tracer in index order after
// the batch barrier. Under that rule fingerprint() is bit-identical at
// any TaskPool size, which obs_test pins at pool sizes 1/2/8.
//
// Disabled cost: instrumented layers that get no Tracer bind to
// Tracer::null(), whose events terminate in the NullSink; every emit
// helper checks enabled()/live() before building strings, so the hot
// path pays one predictable branch (micro_datapath's obs section
// measures the commit path with tracing off vs on).

#include <cstdint>
#include <chrono>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ndpcr::obs {

enum class Phase : std::uint8_t { kBegin, kEnd, kInstant };
enum class Clock : std::uint8_t { kLogical, kVirtual, kWall };

// Lazily-rendered span/instant argument: cheap to construct even when
// tracing is off (no string formatting until an event is recorded).
struct Arg {
  enum class Kind : std::uint8_t { kU64, kF64, kText };
  std::string_view key;
  Kind kind = Kind::kU64;
  std::uint64_t u = 0;
  double f = 0.0;
  std::string_view text;
};

inline Arg u64(std::string_view key, std::uint64_t v) {
  Arg a;
  a.key = key;
  a.kind = Arg::Kind::kU64;
  a.u = v;
  return a;
}

inline Arg f64(std::string_view key, double v) {
  Arg a;
  a.key = key;
  a.kind = Arg::Kind::kF64;
  a.f = v;
  return a;
}

inline Arg str(std::string_view key, std::string_view v) {
  Arg a;
  a.key = key;
  a.kind = Arg::Kind::kText;
  a.text = v;
  return a;
}

struct TraceEvent {
  struct RenderedArg {
    std::string key;
    std::string value;   // raw JSON token when numeric, else plain text
    bool numeric = false;
  };

  std::string name;
  std::string cat;
  Phase phase = Phase::kInstant;
  Clock clock = Clock::kLogical;
  std::uint32_t track = 0;     // chrome tid: one row per track
  std::uint64_t ts_us = 0;     // kVirtual/kWall only; kLogical gets export ticks
  std::vector<RenderedArg> args;
};

// Receives finished events. The two terminals are TraceBuffer (records)
// and NullSink (drops) - instrumentation never branches on which one it
// holds beyond the single live()/enabled() check.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(TraceEvent event) = 0;
};

// Swallows everything: the disabled path. Tracer::null() routes here.
class NullSink final : public TraceSink {
 public:
  void emit(TraceEvent) override {}
  static NullSink& instance();
};

// An ordered event list. Per-task buffers are plain TraceBuffers handed
// out by Tracer::task_buffers(); a dead buffer (live() == false) records
// nothing and costs one branch per emit call.
class TraceBuffer final : public TraceSink {
 public:
  explicit TraceBuffer(bool live = true) : live_(live) {}

  [[nodiscard]] bool live() const { return live_; }

  // RAII guard closing a span() with the matching kEnd event.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { close(); }
    void close();

   private:
    friend class TraceBuffer;
    Span(TraceBuffer* buf, std::string name, std::string cat,
         std::uint32_t track)
        : buf_(buf), name_(std::move(name)), cat_(std::move(cat)),
          track_(track) {}
    TraceBuffer* buf_ = nullptr;
    std::string name_;
    std::string cat_;
    std::uint32_t track_ = 0;
  };

  // Nested span on the logical clock; destruction of the guard ends it.
  [[nodiscard]] Span span(std::string_view name, std::string_view cat,
                          std::uint32_t track = 0,
                          std::initializer_list<Arg> args = {});

  // Instant event on the logical clock.
  void instant(std::string_view name, std::string_view cat,
               std::uint32_t track = 0,
               std::initializer_list<Arg> args = {});

  // Instant event at an explicit virtual-clock time (seconds).
  void instant_at(double t_seconds, std::string_view name,
                  std::string_view cat, std::uint32_t track = 0,
                  std::initializer_list<Arg> args = {});

  // Completed span [t0, t1] (virtual seconds): a kBegin/kEnd pair with
  // explicit timestamps, for emitters that only know the interval once
  // it ends (the NDP drain stages).
  void span_at(double t0_seconds, double t1_seconds, std::string_view name,
               std::string_view cat, std::uint32_t track = 0,
               std::initializer_list<Arg> args = {});

  void emit(TraceEvent event) override;

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  // Splice another buffer's events onto the end of this one. The caller
  // is responsible for a deterministic splice order (task index order).
  void append(TraceBuffer&& other);

 private:
  void push(std::string_view name, std::string_view cat, Phase phase,
            Clock clock, std::uint32_t track, std::uint64_t ts_us,
            std::initializer_list<Arg> args);

  bool live_;
  std::vector<TraceEvent> events_;
};

// The tracer: a root TraceBuffer for serial emission, task buffers for
// parallel sections, track naming, and the exporters.
class Tracer {
 public:
  explicit Tracer(bool enabled = true);

  // Shared disabled instance (NullSink-backed): instrumented layers with
  // no tracer configured bind here so their guards stay one branch.
  static Tracer& null();

  [[nodiscard]] bool enabled() const { return enabled_; }

  // The serial-emission buffer; nullptr when disabled, so call sites
  // guard with `if (auto* rb = trace->root())`.
  [[nodiscard]] TraceBuffer* root() {
    return enabled_ ? &root_ : nullptr;
  }

  // One live buffer per task index (empty vector when disabled: the
  // parallel section then skips per-task emission entirely).
  [[nodiscard]] std::vector<TraceBuffer> task_buffers(std::size_t n) const;

  // Merge per-task buffers into the root in index order - the rule that
  // makes the trace TaskPool-size-invariant.
  void splice(std::vector<TraceBuffer>& parts);

  // Names a chrome tid row ("rank 3", "ndp.wire", ...). Idempotent.
  void set_track_name(std::uint32_t track, std::string name);

  // Convenience forwarders to the root buffer (no-ops when disabled).
  [[nodiscard]] TraceBuffer::Span span(std::string_view name,
                                       std::string_view cat,
                                       std::uint32_t track = 0,
                                       std::initializer_list<Arg> args = {});
  void instant(std::string_view name, std::string_view cat,
               std::uint32_t track = 0,
               std::initializer_list<Arg> args = {});
  void instant_at(double t_seconds, std::string_view name,
                  std::string_view cat, std::uint32_t track = 0,
                  std::initializer_list<Arg> args = {});
  void span_at(double t0_seconds, double t1_seconds, std::string_view name,
               std::string_view cat, std::uint32_t track = 0,
               std::initializer_list<Arg> args = {});

  // Wall-clock span for bench harnesses: records steady_clock times
  // relative to the tracer's construction epoch. Excluded from the
  // fingerprint (wall time is never deterministic).
  class WallSpan {
   public:
    WallSpan() = default;
    WallSpan(WallSpan&& other) noexcept { *this = std::move(other); }
    WallSpan& operator=(WallSpan&& other) noexcept;
    WallSpan(const WallSpan&) = delete;
    WallSpan& operator=(const WallSpan&) = delete;
    ~WallSpan() { close(); }
    void close();

   private:
    friend class Tracer;
    Tracer* tracer_ = nullptr;
    std::string name_;
    std::string cat_;
    std::uint32_t track_ = 0;
    std::uint64_t t0_us_ = 0;
  };
  [[nodiscard]] WallSpan wall_span(std::string_view name,
                                   std::string_view cat,
                                   std::uint32_t track = 0);

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return root_.events();
  }

  // Chrome trace-event JSON: {"traceEvents": [...]}. Logical events get
  // sequential tick timestamps; clocks map to separate pids so mixed
  // timebases never share a row.
  [[nodiscard]] std::string chrome_json() const;

  // CRC32 over the deterministic event stream (names, categories,
  // phases, tracks, virtual timestamps, rendered args; wall events
  // skipped). Bit-identical across runs and TaskPool sizes.
  [[nodiscard]] std::uint32_t fingerprint() const;

  // Write chrome_json() to `path` ("-" = stdout). Throws
  // std::runtime_error on IO failure.
  void write(const std::string& path) const;

 private:
  std::uint64_t wall_now_us() const;

  bool enabled_;
  TraceBuffer root_;
  std::map<std::uint32_t, std::string> track_names_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace ndpcr::obs
