#pragma once

// Exascale system projection (paper section 3).
//
// Scales the Titan Cray XK7 petascale system to exaflops performance using
// the paper's stated assumptions, reproducing Table 1 and the derived C/R
// requirements of sections 3.3-3.4.

#include <string>

namespace ndpcr::proj {

// A machine description carrying the Table-1 columns.
struct MachineSpec {
  std::string name;
  double node_count = 0.0;
  double system_peak_flops = 0.0;     // flop/s
  double node_peak_flops = 0.0;       // flop/s
  double node_memory_bytes = 0.0;     // per node
  double system_memory_bytes = 0.0;   // aggregate
  double interconnect_bw = 0.0;       // per-node injection bandwidth, B/s
  double io_bandwidth = 0.0;          // aggregate file-system bandwidth, B/s
  double system_mtti = 0.0;           // seconds

  // Effective per-node share of the global I/O bandwidth.
  [[nodiscard]] double io_bandwidth_per_node() const {
    return io_bandwidth / node_count;
  }
};

// Titan Cray XK7 as described in section 3.1 (18,688 nodes, 1.44 TF/node,
// 38 GB/node, 20 GB/s interconnect, 1000 GB/s file system, MTTI 160 min).
MachineSpec titan();

// The scaling assumptions of sections 3.1-3.2.
struct ScalingAssumptions {
  double target_system_flops = 1e18;  // 1 exaflops
  double node_flops = 10e12;          // 10 TF/node [34]
  int cpu_cores = 64;                 // 16 -> 64 cores
  double memory_per_core_bytes = 2e9; // 2 GB/core maintained
  double gpu_memory_bytes = 12e9;     // GPU memory doubled, 6 -> 12 GB
  double interconnect_bw = 50e9;      // 50 GB/s [28]
  double io_bandwidth = 10e12;        // 10 TB/s
  double node_mttf_years = 5.0;       // Schroeder & Gibson [4]
  double mtti_round_to_minutes = 30;  // optimistic rounding of section 3.2
};

// Apply the scaling assumptions to a base machine, producing the projected
// exascale spec of Table 1 (100,000 nodes, 14 PB, 30 minutes MTTI, ...).
MachineSpec project_exascale(const MachineSpec& base,
                             const ScalingAssumptions& a = {});

// System MTTF for `node_count` nodes with independent exponentially
// distributed node failures of the given per-node MTTF (seconds).
double system_mtti_from_node_mttf(double node_mttf, double node_count);

// Derived C/R requirements of section 3.3 for a machine, at a target
// progress rate (the paper uses 90% throughout).
struct CrRequirements {
  double checkpoint_bytes_per_node = 0.0;  // 80% of node memory
  double commit_time = 0.0;                // required commit/restore time (s)
  double checkpoint_period = 0.0;          // Daly-optimal interval (s)
  double per_node_bandwidth = 0.0;         // B/s needed to hit commit_time
  double system_bandwidth = 0.0;           // aggregate B/s
};

CrRequirements derive_cr_requirements(const MachineSpec& machine,
                                      double memory_fraction = 0.8,
                                      double target_efficiency = 0.9);

}  // namespace ndpcr::proj
