#include "proj/projection.hpp"

#include <cmath>
#include <stdexcept>

#include "analytic/daly.hpp"
#include "common/units.hpp"

namespace ndpcr::proj {

using namespace ndpcr::units;

MachineSpec titan() {
  MachineSpec m;
  m.name = "Titan Cray XK7";
  m.node_count = 18688;
  m.node_peak_flops = 1.44e12;
  m.system_peak_flops = 27e15;
  m.node_memory_bytes = bytes_from_gb(38);  // 32 GB CPU + 6 GB GPU
  m.system_memory_bytes = m.node_memory_bytes * m.node_count;  // ~710 TB
  m.interconnect_bw = gbps(20);
  m.io_bandwidth = gbps(1000);
  m.system_mtti = minutes(160);  // 9 failures/day [25]
  return m;
}

MachineSpec project_exascale(const MachineSpec& base,
                             const ScalingAssumptions& a) {
  if (a.node_flops <= 0 || a.target_system_flops <= 0) {
    throw std::invalid_argument("flops targets must be positive");
  }
  MachineSpec m;
  m.name = "Projected exascale";
  m.node_peak_flops = a.node_flops;
  // Section 3.1 rounds 37x/7x to "a 5.3x increase in node count ... leads
  // to 100,000 compute nodes". We follow the paper and round the node count
  // up to the nearest 100,000 when within 10% (matching its arithmetic),
  // otherwise keep the exact quotient rounded to an integer.
  const double exact_nodes = a.target_system_flops / a.node_flops;
  const double rounded = std::ceil(exact_nodes / 1e5) * 1e5;
  m.node_count = (rounded / exact_nodes <= 1.1) ? rounded
                                                : std::round(exact_nodes);
  m.system_peak_flops = m.node_count * m.node_peak_flops;
  m.node_memory_bytes =
      a.cpu_cores * a.memory_per_core_bytes + a.gpu_memory_bytes;  // 140 GB
  m.system_memory_bytes = m.node_memory_bytes * m.node_count;      // 14 PB
  m.interconnect_bw = a.interconnect_bw;
  m.io_bandwidth = a.io_bandwidth;

  const double node_mttf = years(a.node_mttf_years);
  double mtti = system_mtti_from_node_mttf(node_mttf, m.node_count);
  if (a.mtti_round_to_minutes > 0) {
    // The paper rounds ~26.28 minutes up to an optimistic 30 minutes.
    mtti = minutes(a.mtti_round_to_minutes);
  }
  m.system_mtti = mtti;
  (void)base;  // the projection is anchored on the assumptions; the base
               // machine documents provenance and provides Table 1's
               // "factor change" column in the benchmark harness.
  return m;
}

double system_mtti_from_node_mttf(double node_mttf, double node_count) {
  if (node_mttf <= 0 || node_count <= 0) {
    throw std::invalid_argument("mttf and node count must be positive");
  }
  // Independent exponential node failures: system failure rate is the sum
  // of node rates.
  return node_mttf / node_count;
}

CrRequirements derive_cr_requirements(const MachineSpec& machine,
                                      double memory_fraction,
                                      double target_efficiency) {
  CrRequirements r;
  r.checkpoint_bytes_per_node = memory_fraction * machine.node_memory_bytes;
  r.commit_time =
      analytic::required_commit_time(machine.system_mtti, target_efficiency);
  r.checkpoint_period =
      analytic::daly_optimal_interval(r.commit_time, machine.system_mtti);
  r.per_node_bandwidth = r.checkpoint_bytes_per_node / r.commit_time;
  r.system_bandwidth = r.per_node_bandwidth * machine.node_count;
  return r;
}

}  // namespace ndpcr::proj
