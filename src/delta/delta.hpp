#pragma once

// Incremental checkpointing and checkpoint deduplication - the paper's
// conclusion flags both as natural NDP extensions ("NDP is well suited to
// compare data for consecutive checkpoints and checkpoints of neighboring
// MPI rank"), citing libhashckpt-style incremental checkpointing [22] and
// checkpoint dedup [23, 24].
//
// DeltaCodec encodes a checkpoint against a reference (the previous
// checkpoint of the same rank): unchanged blocks become references,
// changed blocks are stored literally. Block-level and hash-based, like
// libhashckpt, so it composes with the byte codecs (delta first, then
// e.g. ngzip over the literals-heavy delta stream).

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "common/bytes.hpp"

namespace ndpcr::delta {

class DeltaError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// 64-bit content hash used for block identity (FNV-1a; collisions are
// guarded by a full byte comparison before any block is reused).
std::uint64_t block_hash(ByteSpan block);

// Reusable encoder workspace. Encoding indexes every reference block in a
// hash table; on the multilevel commit path that happens once per rank per
// checkpoint, so the table (and the page faults behind a fresh allocation)
// would dominate sparse-update deltas. The open-addressed index keeps
// duplicate contents and resolves lookups in insertion order, so the
// encoded stream is identical whether or not a scratch is reused.
struct DeltaScratch {
  // Open-addressed reference index: slot -> block index + 1 (0 = empty),
  // keys[] carries the hash for the occupied slots. Linear probing.
  std::vector<std::uint64_t> keys;
  std::vector<std::uint32_t> slots;
  std::size_t mask = 0;
  // Staging buffer for callers that frame the delta (e.g. the NDP drain's
  // wire frames); the codec itself does not touch it.
  Bytes staging;

  // Size the index for `blocks` reference blocks and clear it.
  void reset(std::size_t blocks);
};

// A mutex-guarded freelist of DeltaScratch instances, the same shape as
// compress::ScratchPool: acquire() pops (or creates) a workspace, the
// Lease returns it on destruction, so N concurrent encoders converge on N
// live workspaces.
class DeltaScratchPool {
 public:
  class Lease {
   public:
    explicit Lease(DeltaScratchPool& pool)
        : pool_(&pool), scratch_(pool.take()) {}
    ~Lease() {
      if (scratch_) pool_->give(std::move(scratch_));
    }
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), scratch_(std::move(other.scratch_)) {}
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;

    [[nodiscard]] DeltaScratch& operator*() const { return *scratch_; }
    [[nodiscard]] DeltaScratch* operator->() const { return scratch_.get(); }

   private:
    DeltaScratchPool* pool_;
    std::unique_ptr<DeltaScratch> scratch_;
  };

  [[nodiscard]] Lease acquire() { return Lease(*this); }

  // Pre-create workspaces so the first parallel batch does not serialize
  // on first-touch allocation.
  void warm(std::size_t count);

 private:
  std::unique_ptr<DeltaScratch> take();
  void give(std::unique_ptr<DeltaScratch> scratch);

  std::mutex mutex_;
  std::vector<std::unique_ptr<DeltaScratch>> free_;
};

// Content-defined chunking (gear hash). Boundaries depend only on the
// bytes, so an insertion early in an image shifts chunk boundaries with
// the data instead of re-keying every fixed block after it - that is what
// makes cross-rank and cross-commit dedup effective on shifted state.
struct CdcParams {
  std::size_t min_bytes = 2048;
  std::size_t avg_bytes = 4096;  // must be a power of two
  std::size_t max_bytes = 8192;
};

// End offsets of each chunk, covering [0, data.size()). The final offset
// is always data.size(); empty input yields no chunks. Deterministic: a
// pure function of the bytes and the parameters.
std::vector<std::size_t> cdc_boundaries(ByteSpan data,
                                        const CdcParams& params = {});

struct DeltaStats {
  std::size_t input_bytes = 0;
  std::size_t unchanged_blocks = 0;  // same content, same position
  std::size_t moved_blocks = 0;      // content found elsewhere in reference
  std::size_t literal_blocks = 0;    // new content, stored raw
  std::size_t encoded_bytes = 0;

  // 1 - encoded/input, the same convention as compression factor.
  [[nodiscard]] double delta_factor() const {
    return input_bytes == 0
               ? 0.0
               : 1.0 - static_cast<double>(encoded_bytes) /
                           static_cast<double>(input_bytes);
  }
};

class DeltaCodec {
 public:
  explicit DeltaCodec(std::size_t block_size = 4096);

  // Encode `current` against `reference`. The reference may be empty (all
  // blocks become literals). Returns the delta stream; stats, if
  // provided, receive the block accounting.
  [[nodiscard]] Bytes encode(ByteSpan reference, ByteSpan current,
                             DeltaStats* stats = nullptr) const;

  // Allocation-reusing variant: the reference index lives in `scratch`,
  // which grows to the largest reference it has seen and is reused across
  // calls. Emits exactly the same stream as the plain overload (which
  // delegates here with a throwaway scratch).
  [[nodiscard]] Bytes encode(ByteSpan reference, ByteSpan current,
                             DeltaScratch& scratch,
                             DeltaStats* stats = nullptr) const;

  // Block size recorded in a delta stream's header; lets a reader build a
  // matching codec without out-of-band configuration. Throws on malformed
  // streams.
  static std::size_t stream_block_size(ByteSpan delta);

  // Reconstruct the current image from the reference and the delta.
  // Throws DeltaError on malformed deltas or a reference digest mismatch
  // (applying a delta against the wrong reference is detected, not
  // silently corrupted).
  [[nodiscard]] Bytes decode(ByteSpan reference, ByteSpan delta) const;

  [[nodiscard]] std::size_t block_size() const { return block_size_; }

 private:
  std::size_t block_size_;
};

// ---------------------------------------------------------------------------
// Content-addressed deduplicating store across ranks and checkpoints
// (the [23, 24] direction): blocks shared between neighboring ranks'
// checkpoints (halo regions, constant tables, index structures) are
// stored once, with per-image recipes.

struct DedupPutStats {
  std::size_t raw_bytes = 0;
  std::size_t new_block_bytes = 0;  // unique payload added by this image
  std::size_t recipe_bytes = 0;
};

class DedupStore {
 public:
  explicit DedupStore(std::size_t block_size = 4096);

  DedupPutStats put(std::uint32_t rank, std::uint64_t checkpoint_id,
                    ByteSpan image);

  // Reassemble an image. Returns nullopt for unknown keys; throws
  // DeltaError if a referenced block has been evicted (store corruption).
  [[nodiscard]] std::optional<Bytes> get(std::uint32_t rank,
                                         std::uint64_t checkpoint_id) const;

  // Drop an image and release its block references (blocks are
  // refcounted; shared blocks survive).
  void erase(std::uint32_t rank, std::uint64_t checkpoint_id);

  [[nodiscard]] std::size_t stored_block_bytes() const {
    return stored_block_bytes_;
  }
  [[nodiscard]] std::size_t logical_bytes() const { return logical_bytes_; }
  [[nodiscard]] std::size_t unique_blocks() const { return blocks_.size(); }

  // Aggregate dedup factor: 1 - physical/logical.
  [[nodiscard]] double dedup_factor() const {
    return logical_bytes_ == 0
               ? 0.0
               : 1.0 - static_cast<double>(stored_block_bytes_) /
                           static_cast<double>(logical_bytes_);
  }

 private:
  struct Block {
    Bytes data;
    std::size_t refs = 0;
  };
  struct Recipe {
    std::vector<std::uint64_t> block_keys;
    std::size_t image_size = 0;
  };

  std::size_t block_size_;
  std::size_t stored_block_bytes_ = 0;
  std::size_t logical_bytes_ = 0;
  std::map<std::uint64_t, Block> blocks_;  // key: content hash (validated)
  std::map<std::pair<std::uint32_t, std::uint64_t>, Recipe> recipes_;
};

}  // namespace ndpcr::delta
