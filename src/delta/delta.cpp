#include "delta/delta.hpp"

#include <cstring>
#include <unordered_map>

namespace ndpcr::delta {
namespace {

constexpr std::uint32_t kMagic = 0x4E44444C;  // "NDDL"
constexpr std::uint8_t kOpSame = 0;
constexpr std::uint8_t kOpMoved = 1;
constexpr std::uint8_t kOpLiteral = 2;

bool spans_equal(ByteSpan a, ByteSpan b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

}  // namespace

std::uint64_t block_hash(ByteSpan block) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::byte b : block) {
    h ^= static_cast<std::uint8_t>(b);
    h *= 0x100000001b3ull;
  }
  return h;
}

DeltaCodec::DeltaCodec(std::size_t block_size) : block_size_(block_size) {
  if (block_size == 0) {
    throw DeltaError("delta block size must be positive");
  }
}

Bytes DeltaCodec::encode(ByteSpan reference, ByteSpan current,
                         DeltaStats* stats) const {
  DeltaStats local_stats;
  local_stats.input_bytes = current.size();

  // Index the reference blocks by content hash. Only full-size blocks are
  // indexed for moves; the (possibly short) tail block still matches via
  // the same-position check.
  std::unordered_multimap<std::uint64_t, std::uint32_t> ref_index;
  const std::size_t ref_full_blocks = reference.size() / block_size_;
  ref_index.reserve(ref_full_blocks);
  for (std::size_t b = 0; b < ref_full_blocks; ++b) {
    ref_index.emplace(
        block_hash(reference.subspan(b * block_size_, block_size_)),
        static_cast<std::uint32_t>(b));
  }

  Bytes out;
  out.reserve(current.size() / 8 + 64);
  append_le<std::uint32_t>(out, kMagic);
  append_le<std::uint32_t>(out, static_cast<std::uint32_t>(block_size_));
  append_le<std::uint64_t>(out, current.size());
  append_le<std::uint64_t>(out, block_hash(reference));

  for (std::size_t pos = 0; pos < current.size(); pos += block_size_) {
    const std::size_t len = std::min(block_size_, current.size() - pos);
    const ByteSpan block = current.subspan(pos, len);

    // Same-position match (covers the tail block too).
    if (pos + len <= reference.size() &&
        spans_equal(block, reference.subspan(pos, len))) {
      out.push_back(static_cast<std::byte>(kOpSame));
      ++local_stats.unchanged_blocks;
      continue;
    }
    // Moved match: full blocks only.
    if (len == block_size_) {
      const auto [lo, hi] = ref_index.equal_range(block_hash(block));
      bool matched = false;
      for (auto it = lo; it != hi; ++it) {
        const ByteSpan cand =
            reference.subspan(it->second * block_size_, block_size_);
        if (spans_equal(block, cand)) {
          out.push_back(static_cast<std::byte>(kOpMoved));
          append_le<std::uint32_t>(out, it->second);
          ++local_stats.moved_blocks;
          matched = true;
          break;
        }
      }
      if (matched) continue;
    }
    // Literal.
    out.push_back(static_cast<std::byte>(kOpLiteral));
    out.insert(out.end(), block.begin(), block.end());
    ++local_stats.literal_blocks;
  }

  local_stats.encoded_bytes = out.size();
  if (stats != nullptr) *stats = local_stats;
  return out;
}

Bytes DeltaCodec::decode(ByteSpan reference, ByteSpan delta) const {
  if (delta.size() < 24) throw DeltaError("delta stream truncated");
  if (read_le<std::uint32_t>(delta, 0) != kMagic) {
    throw DeltaError("not a delta stream");
  }
  const auto block_size = read_le<std::uint32_t>(delta, 4);
  if (block_size != block_size_) {
    throw DeltaError("delta block size mismatch");
  }
  const auto current_size = read_le<std::uint64_t>(delta, 8);
  if (read_le<std::uint64_t>(delta, 16) != block_hash(reference)) {
    throw DeltaError("delta applied against the wrong reference");
  }

  Bytes out;
  out.reserve(current_size);
  std::size_t pos = 24;
  auto need = [&](std::size_t n) {
    if (pos + n > delta.size()) throw DeltaError("delta stream truncated");
  };
  while (out.size() < current_size) {
    const std::size_t len =
        std::min<std::size_t>(block_size_, current_size - out.size());
    need(1);
    const auto op = static_cast<std::uint8_t>(delta[pos++]);
    switch (op) {
      case kOpSame: {
        const std::size_t src = out.size();
        if (src + len > reference.size()) {
          throw DeltaError("delta same-block outside reference");
        }
        out.insert(out.end(), reference.begin() + src,
                   reference.begin() + src + len);
        break;
      }
      case kOpMoved: {
        need(4);
        const auto idx = read_le<std::uint32_t>(delta, pos);
        pos += 4;
        const std::size_t src = std::size_t{idx} * block_size_;
        if (len != block_size_ || src + len > reference.size()) {
          throw DeltaError("delta moved-block outside reference");
        }
        out.insert(out.end(), reference.begin() + src,
                   reference.begin() + src + len);
        break;
      }
      case kOpLiteral: {
        need(len);
        out.insert(out.end(), delta.begin() + pos, delta.begin() + pos + len);
        pos += len;
        break;
      }
      default:
        throw DeltaError("unknown delta op");
    }
  }
  if (pos != delta.size()) {
    throw DeltaError("trailing bytes in delta stream");
  }
  return out;
}

// ---------------------------------------------------------------------------

DedupStore::DedupStore(std::size_t block_size) : block_size_(block_size) {
  if (block_size == 0) {
    throw DeltaError("dedup block size must be positive");
  }
}

DedupPutStats DedupStore::put(std::uint32_t rank,
                              std::uint64_t checkpoint_id, ByteSpan image) {
  DedupPutStats stats;
  stats.raw_bytes = image.size();

  Recipe recipe;
  recipe.image_size = image.size();
  recipe.block_keys.reserve(image.size() / block_size_ + 1);

  for (std::size_t pos = 0; pos < image.size(); pos += block_size_) {
    const std::size_t len = std::min(block_size_, image.size() - pos);
    const ByteSpan block = image.subspan(pos, len);
    // Content-addressed key with linear probing on (vanishingly rare)
    // hash collisions: the stored bytes are always compared before reuse.
    std::uint64_t key = block_hash(block);
    while (true) {
      auto it = blocks_.find(key);
      if (it == blocks_.end()) {
        Block entry;
        entry.data.assign(block.begin(), block.end());
        entry.refs = 1;
        stored_block_bytes_ += len;
        stats.new_block_bytes += len;
        blocks_.emplace(key, std::move(entry));
        break;
      }
      if (spans_equal(ByteSpan(it->second.data), block)) {
        ++it->second.refs;
        break;
      }
      ++key;  // collision: probe the next slot
    }
    recipe.block_keys.push_back(key);
  }
  stats.recipe_bytes = recipe.block_keys.size() * sizeof(std::uint64_t);
  logical_bytes_ += image.size();

  const auto map_key = std::make_pair(rank, checkpoint_id);
  if (recipes_.count(map_key) > 0) {
    erase(rank, checkpoint_id);  // re-put replaces the previous image
  }
  recipes_.emplace(map_key, std::move(recipe));
  return stats;
}

std::optional<Bytes> DedupStore::get(std::uint32_t rank,
                                     std::uint64_t checkpoint_id) const {
  const auto it = recipes_.find(std::make_pair(rank, checkpoint_id));
  if (it == recipes_.end()) return std::nullopt;
  Bytes out;
  out.reserve(it->second.image_size);
  for (const auto key : it->second.block_keys) {
    const auto block = blocks_.find(key);
    if (block == blocks_.end()) {
      throw DeltaError("dedup store corruption: missing block");
    }
    out.insert(out.end(), block->second.data.begin(),
               block->second.data.end());
  }
  if (out.size() != it->second.image_size) {
    throw DeltaError("dedup store corruption: size mismatch");
  }
  return out;
}

void DedupStore::erase(std::uint32_t rank, std::uint64_t checkpoint_id) {
  const auto it = recipes_.find(std::make_pair(rank, checkpoint_id));
  if (it == recipes_.end()) return;
  for (const auto key : it->second.block_keys) {
    auto block = blocks_.find(key);
    if (block == blocks_.end()) continue;
    if (--block->second.refs == 0) {
      stored_block_bytes_ -= block->second.data.size();
      blocks_.erase(block);
    }
  }
  logical_bytes_ -= it->second.image_size;
  recipes_.erase(it);
}

}  // namespace ndpcr::delta
