#include "delta/delta.hpp"

#include <algorithm>
#include <array>
#include <cstring>

namespace ndpcr::delta {
namespace {

constexpr std::uint32_t kMagic = 0x4E44444C;  // "NDDL"
constexpr std::uint8_t kOpSame = 0;
constexpr std::uint8_t kOpMoved = 1;
constexpr std::uint8_t kOpLiteral = 2;

bool spans_equal(ByteSpan a, ByteSpan b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
}

// Local splitmix64 for the gear table (common/ has no header for it and
// ckpt/stores.hpp would invert the dependency direction).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// 256-entry gear table, fixed for the format's lifetime: chunk boundaries
// are part of the dedup recipe wire format, so the table may never change.
const std::array<std::uint64_t, 256>& gear_table() {
  static const std::array<std::uint64_t, 256> table = [] {
    std::array<std::uint64_t, 256> t{};
    for (std::size_t i = 0; i < t.size(); ++i) {
      t[i] = mix64(0x4E445043ull + i);  // "NDPC" + byte value
    }
    return t;
  }();
  return table;
}

}  // namespace

void DeltaScratch::reset(std::size_t blocks) {
  // Load factor <= 0.5: capacity is the next power of two >= 2 * blocks.
  std::size_t cap = 16;
  while (cap < blocks * 2) cap <<= 1;
  if (slots.size() != cap) {
    keys.assign(cap, 0);
    slots.assign(cap, 0);
  } else {
    std::fill(slots.begin(), slots.end(), 0);
  }
  mask = cap - 1;
}

void DeltaScratchPool::warm(std::size_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  while (free_.size() < count) {
    free_.push_back(std::make_unique<DeltaScratch>());
  }
}

std::unique_ptr<DeltaScratch> DeltaScratchPool::take() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      auto scratch = std::move(free_.back());
      free_.pop_back();
      return scratch;
    }
  }
  return std::make_unique<DeltaScratch>();
}

void DeltaScratchPool::give(std::unique_ptr<DeltaScratch> scratch) {
  std::lock_guard<std::mutex> lock(mutex_);
  free_.push_back(std::move(scratch));
}

std::vector<std::size_t> cdc_boundaries(ByteSpan data,
                                        const CdcParams& params) {
  if (params.min_bytes == 0 || params.avg_bytes == 0 ||
      (params.avg_bytes & (params.avg_bytes - 1)) != 0 ||
      params.min_bytes > params.max_bytes ||
      params.avg_bytes > params.max_bytes) {
    throw DeltaError("invalid CDC parameters");
  }
  const auto& gear = gear_table();
  const std::uint64_t boundary_mask = params.avg_bytes - 1;
  std::vector<std::size_t> out;
  out.reserve(data.size() / params.avg_bytes + 1);
  std::size_t start = 0;
  std::uint64_t h = 0;
  for (std::size_t pos = 0; pos < data.size(); ++pos) {
    h = (h << 1) + gear[static_cast<std::uint8_t>(data[pos])];
    const std::size_t len = pos - start + 1;
    if ((len >= params.min_bytes && (h & boundary_mask) == 0) ||
        len >= params.max_bytes) {
      out.push_back(pos + 1);
      start = pos + 1;
      h = 0;
    }
  }
  if (start < data.size()) out.push_back(data.size());
  return out;
}

std::uint64_t block_hash(ByteSpan block) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::byte b : block) {
    h ^= static_cast<std::uint8_t>(b);
    h *= 0x100000001b3ull;
  }
  return h;
}

DeltaCodec::DeltaCodec(std::size_t block_size) : block_size_(block_size) {
  if (block_size == 0) {
    throw DeltaError("delta block size must be positive");
  }
}

Bytes DeltaCodec::encode(ByteSpan reference, ByteSpan current,
                         DeltaStats* stats) const {
  DeltaScratch scratch;
  return encode(reference, current, scratch, stats);
}

Bytes DeltaCodec::encode(ByteSpan reference, ByteSpan current,
                         DeltaScratch& scratch, DeltaStats* stats) const {
  DeltaStats local_stats;
  local_stats.input_bytes = current.size();

  // Index the reference blocks by content hash in the scratch's
  // open-addressed table. Only full-size blocks are indexed for moves; the
  // (possibly short) tail block still matches via the same-position check.
  // Duplicates all get a slot; linear probing resolves lookups in
  // insertion order, so the lowest matching block index always wins and
  // the stream is deterministic.
  const std::size_t ref_full_blocks = reference.size() / block_size_;
  scratch.reset(ref_full_blocks);
  for (std::size_t b = 0; b < ref_full_blocks; ++b) {
    const std::uint64_t h =
        block_hash(reference.subspan(b * block_size_, block_size_));
    std::size_t slot = h & scratch.mask;
    while (scratch.slots[slot] != 0) slot = (slot + 1) & scratch.mask;
    scratch.keys[slot] = h;
    scratch.slots[slot] = static_cast<std::uint32_t>(b) + 1;
  }

  Bytes out;
  out.reserve(current.size() / 8 + 64);
  append_le<std::uint32_t>(out, kMagic);
  append_le<std::uint32_t>(out, static_cast<std::uint32_t>(block_size_));
  append_le<std::uint64_t>(out, current.size());
  append_le<std::uint64_t>(out, block_hash(reference));

  for (std::size_t pos = 0; pos < current.size(); pos += block_size_) {
    const std::size_t len = std::min(block_size_, current.size() - pos);
    const ByteSpan block = current.subspan(pos, len);

    // Same-position match (covers the tail block too).
    if (pos + len <= reference.size() &&
        spans_equal(block, reference.subspan(pos, len))) {
      out.push_back(static_cast<std::byte>(kOpSame));
      ++local_stats.unchanged_blocks;
      continue;
    }
    // Moved match: full blocks only.
    if (len == block_size_ && ref_full_blocks > 0) {
      const std::uint64_t h = block_hash(block);
      bool matched = false;
      for (std::size_t slot = h & scratch.mask; scratch.slots[slot] != 0;
           slot = (slot + 1) & scratch.mask) {
        if (scratch.keys[slot] != h) continue;
        const std::uint32_t b = scratch.slots[slot] - 1;
        const ByteSpan cand =
            reference.subspan(std::size_t{b} * block_size_, block_size_);
        if (spans_equal(block, cand)) {
          out.push_back(static_cast<std::byte>(kOpMoved));
          append_le<std::uint32_t>(out, b);
          ++local_stats.moved_blocks;
          matched = true;
          break;
        }
      }
      if (matched) continue;
    }
    // Literal.
    out.push_back(static_cast<std::byte>(kOpLiteral));
    out.insert(out.end(), block.begin(), block.end());
    ++local_stats.literal_blocks;
  }

  local_stats.encoded_bytes = out.size();
  if (stats != nullptr) *stats = local_stats;
  return out;
}

std::size_t DeltaCodec::stream_block_size(ByteSpan delta) {
  if (delta.size() < 24 || read_le<std::uint32_t>(delta, 0) != kMagic) {
    throw DeltaError("not a delta stream");
  }
  return read_le<std::uint32_t>(delta, 4);
}

Bytes DeltaCodec::decode(ByteSpan reference, ByteSpan delta) const {
  if (delta.size() < 24) throw DeltaError("delta stream truncated");
  if (read_le<std::uint32_t>(delta, 0) != kMagic) {
    throw DeltaError("not a delta stream");
  }
  const auto block_size = read_le<std::uint32_t>(delta, 4);
  if (block_size != block_size_) {
    throw DeltaError("delta block size mismatch");
  }
  const auto current_size = read_le<std::uint64_t>(delta, 8);
  if (read_le<std::uint64_t>(delta, 16) != block_hash(reference)) {
    throw DeltaError("delta applied against the wrong reference");
  }

  Bytes out;
  out.reserve(current_size);
  std::size_t pos = 24;
  auto need = [&](std::size_t n) {
    if (pos + n > delta.size()) throw DeltaError("delta stream truncated");
  };
  while (out.size() < current_size) {
    const std::size_t len =
        std::min<std::size_t>(block_size_, current_size - out.size());
    need(1);
    const auto op = static_cast<std::uint8_t>(delta[pos++]);
    switch (op) {
      case kOpSame: {
        const std::size_t src = out.size();
        if (src + len > reference.size()) {
          throw DeltaError("delta same-block outside reference");
        }
        out.insert(out.end(), reference.begin() + src,
                   reference.begin() + src + len);
        break;
      }
      case kOpMoved: {
        need(4);
        const auto idx = read_le<std::uint32_t>(delta, pos);
        pos += 4;
        const std::size_t src = std::size_t{idx} * block_size_;
        if (len != block_size_ || src + len > reference.size()) {
          throw DeltaError("delta moved-block outside reference");
        }
        out.insert(out.end(), reference.begin() + src,
                   reference.begin() + src + len);
        break;
      }
      case kOpLiteral: {
        need(len);
        out.insert(out.end(), delta.begin() + pos, delta.begin() + pos + len);
        pos += len;
        break;
      }
      default:
        throw DeltaError("unknown delta op");
    }
  }
  if (pos != delta.size()) {
    throw DeltaError("trailing bytes in delta stream");
  }
  return out;
}

// ---------------------------------------------------------------------------

DedupStore::DedupStore(std::size_t block_size) : block_size_(block_size) {
  if (block_size == 0) {
    throw DeltaError("dedup block size must be positive");
  }
}

DedupPutStats DedupStore::put(std::uint32_t rank,
                              std::uint64_t checkpoint_id, ByteSpan image) {
  DedupPutStats stats;
  stats.raw_bytes = image.size();

  Recipe recipe;
  recipe.image_size = image.size();
  recipe.block_keys.reserve(image.size() / block_size_ + 1);

  for (std::size_t pos = 0; pos < image.size(); pos += block_size_) {
    const std::size_t len = std::min(block_size_, image.size() - pos);
    const ByteSpan block = image.subspan(pos, len);
    // Content-addressed key with linear probing on (vanishingly rare)
    // hash collisions: the stored bytes are always compared before reuse.
    std::uint64_t key = block_hash(block);
    while (true) {
      auto it = blocks_.find(key);
      if (it == blocks_.end()) {
        Block entry;
        entry.data.assign(block.begin(), block.end());
        entry.refs = 1;
        stored_block_bytes_ += len;
        stats.new_block_bytes += len;
        blocks_.emplace(key, std::move(entry));
        break;
      }
      if (spans_equal(ByteSpan(it->second.data), block)) {
        ++it->second.refs;
        break;
      }
      ++key;  // collision: probe the next slot
    }
    recipe.block_keys.push_back(key);
  }
  stats.recipe_bytes = recipe.block_keys.size() * sizeof(std::uint64_t);
  logical_bytes_ += image.size();

  const auto map_key = std::make_pair(rank, checkpoint_id);
  if (recipes_.count(map_key) > 0) {
    erase(rank, checkpoint_id);  // re-put replaces the previous image
  }
  recipes_.emplace(map_key, std::move(recipe));
  return stats;
}

std::optional<Bytes> DedupStore::get(std::uint32_t rank,
                                     std::uint64_t checkpoint_id) const {
  const auto it = recipes_.find(std::make_pair(rank, checkpoint_id));
  if (it == recipes_.end()) return std::nullopt;
  Bytes out;
  out.reserve(it->second.image_size);
  for (const auto key : it->second.block_keys) {
    const auto block = blocks_.find(key);
    if (block == blocks_.end()) {
      throw DeltaError("dedup store corruption: missing block");
    }
    out.insert(out.end(), block->second.data.begin(),
               block->second.data.end());
  }
  if (out.size() != it->second.image_size) {
    throw DeltaError("dedup store corruption: size mismatch");
  }
  return out;
}

void DedupStore::erase(std::uint32_t rank, std::uint64_t checkpoint_id) {
  const auto it = recipes_.find(std::make_pair(rank, checkpoint_id));
  if (it == recipes_.end()) return;
  for (const auto key : it->second.block_keys) {
    auto block = blocks_.find(key);
    if (block == blocks_.end()) continue;
    if (--block->second.refs == 0) {
      stored_block_bytes_ -= block->second.data.size();
      blocks_.erase(block);
    }
  }
  logical_bytes_ -= it->second.image_size;
  recipes_.erase(it);
}

}  // namespace ndpcr::delta
