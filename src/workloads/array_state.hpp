#pragma once

// Shared state container for the mini-app proxies: a set of named double
// and int32 arrays with uniform serialization, digesting, and a mantissa
// quantization knob.

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace ndpcr::workloads {

// Zero the low (52 - keep_bits) mantissa bits of a double. keep_bits >= 52
// leaves the value untouched. This models the effective entropy of a
// field: physical state in real checkpoints is rarely full-entropy in the
// mantissa tail (integration steps, bounded ranges, repeated lattice
// geometry), and the knob lets each proxy match its namesake's measured
// compressibility.
double quantize_mantissa(double value, int keep_bits);

class ArrayState {
 public:
  // Registers arrays; returns the index used for access.
  std::size_t add_doubles(std::string name, std::size_t count,
                          int mantissa_keep_bits = 52);
  std::size_t add_ints(std::string name, std::size_t count);

  std::vector<double>& doubles(std::size_t idx) { return dbl_[idx].data; }
  const std::vector<double>& doubles(std::size_t idx) const {
    return dbl_[idx].data;
  }
  std::vector<std::int32_t>& ints(std::size_t idx) { return int_[idx].data; }
  const std::vector<std::int32_t>& ints(std::size_t idx) const {
    return int_[idx].data;
  }

  // Applies each double array's quantization knob in place. Called by the
  // apps after each step so the in-memory state is what gets serialized.
  void quantize();

  [[nodiscard]] std::size_t total_bytes() const;

  // Serialization: magic, step counter, per-array payloads with name and
  // length checks on restore.
  void serialize(Bytes& out, std::uint64_t step_count) const;
  // Returns the restored step counter. Throws std::runtime_error if the
  // image does not match the registered layout.
  std::uint64_t deserialize(ByteSpan image);

  [[nodiscard]] std::uint64_t digest() const;

 private:
  struct DoubleArray {
    std::string name;
    int keep_bits;
    std::vector<double> data;
  };
  struct IntArray {
    std::string name;
    std::vector<std::int32_t> data;
  };
  std::vector<DoubleArray> dbl_;
  std::vector<IntArray> int_;
};

}  // namespace ndpcr::workloads
