#pragma once

// NPB-style proxy kernels for the restart-equivalence harness
// (docs/EQUIVALENCE.md). Where the mini-app proxies (miniapp.hpp) model
// checkpoint *content* for the compression study, these model checkpoint
// *semantics*: each kernel is a small, genuinely iterative solver whose
// complete state lives in registered regions (ckpt::RegionRegistry), so a
// checkpoint taken at iteration k and restored later continues to
// bit-identical results - the property the equivalence sweep proves.
//
// Three NAS-parallel-benchmark flavors:
//
//   cg - conjugate gradient on a seeded SPD tridiagonal system (NPB CG):
//        solver vectors x/r/p churn every iteration, the matrix diagonal
//        and right-hand side never change (delta- and dedup-friendly).
//   mg - two-level V-cycles on a 1D Poisson problem (NPB MG): smoothed
//        fine grid + constant right-hand side.
//   ft - spectral evolution of a complex field (NPB FT): the spectrum
//        advances by a constant phase table each step, with an NPB-style
//        probe checksum folded into the scalar state.
//
// Determinism contract: iterate() is single-threaded with a fixed
// floating-point evaluation order, all content derives from the seed, and
// every word of mutable state (the iteration counter included) is in a
// registered region. Same seed + same iteration count => bit-identical
// fingerprint(), whether the run was continuous or crash-restarted.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/region.hpp"
#include "workloads/miniapp.hpp"

namespace ndpcr::workloads {

class ProxyKernel {
 public:
  virtual ~ProxyKernel() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  // Advance one solver iteration.
  virtual void iterate() = 0;

  // Iterations completed (part of the registered state: restore rewinds
  // it).
  [[nodiscard]] virtual std::uint64_t iteration() const = 0;

  // The kernel's convergence/evolution metric after the last iteration.
  [[nodiscard]] virtual double residual() const = 0;

  // Iteration-level sanity check: the residual is finite and within the
  // kernel's expected envelope. A restart that resumed from damaged state
  // fails this before any fingerprint comparison runs.
  [[nodiscard]] virtual bool verify() const = 0;

  // Order-sensitive digest over every registered region's bytes. Pure -
  // unlike RegionRegistry::capture() it does not advance dirty tracking.
  [[nodiscard]] virtual std::uint64_t fingerprint() const = 0;

  // The regions that constitute the restartable state. capture() feeds
  // MultilevelManager::commit; restore() is the restart path.
  [[nodiscard]] ckpt::RegionRegistry& registry() { return registry_; }
  [[nodiscard]] const ckpt::RegionRegistry& registry() const {
    return registry_;
  }

 protected:
  ckpt::RegionRegistry registry_;
};

// `name` is one of proxy_kernel_names(); `target_bytes` sizes the state
// so a full capture is approximately that large; `seed` determines all
// content.
std::unique_ptr<ProxyKernel> make_proxy_kernel(const std::string& name,
                                               std::size_t target_bytes,
                                               std::uint64_t seed);

// {"cg", "mg", "ft"}.
const std::vector<std::string>& proxy_kernel_names();

// MiniApp adapter so the compression study and its tooling
// (table2_compression_study --apps) can run the proxy kernels alongside
// the Mantevo proxies. step() iterates, checkpoint()/restore() go through
// the kernel's RegionRegistry.
std::unique_ptr<MiniApp> make_proxy_kernel_miniapp(const std::string& name,
                                                   std::size_t target_bytes,
                                                   std::uint64_t seed);

}  // namespace ndpcr::workloads
