// The seven mini-app proxies. Each runs a small kernel with the same
// computational pattern (and checkpoint-content character) as its Mantevo
// namesake. See miniapp.hpp for how the entropy knobs relate to Table 2.

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "workloads/array_state.hpp"
#include "workloads/miniapp.hpp"
#include "workloads/proxy_kernels.hpp"

namespace ndpcr::workloads {
namespace {

// Common MiniApp plumbing over an ArrayState.
class ProxyBase : public MiniApp {
 public:
  void step() final {
    do_step();
    state_.quantize();
    ++steps_;
  }

  [[nodiscard]] Bytes checkpoint() const final {
    Bytes out;
    state_.serialize(out, steps_);
    return out;
  }

  void restore(ByteSpan image) final { steps_ = state_.deserialize(image); }

  [[nodiscard]] std::size_t state_bytes() const final {
    return state_.total_bytes();
  }

  [[nodiscard]] std::uint64_t state_digest() const final {
    return state_.digest();
  }

  [[nodiscard]] std::uint64_t step_count() const final { return steps_; }

 protected:
  virtual void do_step() = 0;

  ArrayState state_;
  std::uint64_t steps_ = 0;
};

// ---------------------------------------------------------------------------
// comd: classical molecular dynamics on a perturbed cubic lattice
// (positions / velocities / forces; velocity-Verlet with a harmonic
// restoring force toward the lattice site). Lattice structure keeps the
// position mantissas highly regular.
class ComdProxy final : public ProxyBase {
 public:
  ComdProxy(std::size_t target_bytes, std::uint64_t seed) {
    n_ = std::max<std::size_t>(64, target_bytes / (9 * sizeof(double)));
    pos_ = state_.add_doubles("pos", 3 * n_, /*keep=*/8);
    vel_ = state_.add_doubles("vel", 3 * n_, /*keep=*/6);
    force_ = state_.add_doubles("force", 3 * n_, /*keep=*/6);
    side_ = static_cast<std::size_t>(std::cbrt(static_cast<double>(n_))) + 1;
    Rng rng(seed);
    auto& pos = state_.doubles(pos_);
    auto& vel = state_.doubles(vel_);
    for (std::size_t i = 0; i < n_; ++i) {
      const double x = static_cast<double>(i % side_);
      const double y = static_cast<double>((i / side_) % side_);
      const double z = static_cast<double>(i / (side_ * side_));
      pos[3 * i + 0] = x + 0.01 * rng.normal();
      pos[3 * i + 1] = y + 0.01 * rng.normal();
      pos[3 * i + 2] = z + 0.01 * rng.normal();
      for (int d = 0; d < 3; ++d) vel[3 * i + d] = 0.05 * rng.normal();
    }
    state_.quantize();
  }

  [[nodiscard]] std::string name() const override { return "comd"; }

 private:
  void do_step() override {
    auto& pos = state_.doubles(pos_);
    auto& vel = state_.doubles(vel_);
    auto& force = state_.doubles(force_);
    constexpr double dt = 0.01;
    constexpr double k = 1.0;  // harmonic constant toward lattice site
    for (std::size_t i = 0; i < n_; ++i) {
      const double lx = static_cast<double>(i % side_);
      const double ly = static_cast<double>((i / side_) % side_);
      const double lz = static_cast<double>(i / (side_ * side_));
      const double site[3] = {lx, ly, lz};
      for (int d = 0; d < 3; ++d) {
        force[3 * i + d] = -k * (pos[3 * i + d] - site[d]);
        vel[3 * i + d] += dt * force[3 * i + d];
        pos[3 * i + d] += dt * vel[3 * i + d];
      }
    }
  }

  std::size_t n_ = 0;
  std::size_t side_ = 0;
  std::size_t pos_ = 0, vel_ = 0, force_ = 0;
};

// ---------------------------------------------------------------------------
// Conjugate-gradient solver over an implicit 27-point stencil, the HPCCG /
// pHPCCG / miniFE pattern: solver vectors plus (for miniFE) element data.
// The matrix sparsity pattern is stored explicitly as column indices, as
// the real apps' CSR structures are, and is extremely regular.
class CgProxyBase : public ProxyBase {
 public:
  CgProxyBase(std::size_t target_bytes, std::uint64_t seed,
              std::size_t bytes_per_point, int vec_keep_bits)
      : rng_(seed) {
    n_ = std::max<std::size_t>(512, target_bytes / bytes_per_point);
    nx_ = static_cast<std::size_t>(std::cbrt(static_cast<double>(n_))) + 1;
    n_ = nx_ * nx_ * nx_;
    x_ = state_.add_doubles("x", n_, vec_keep_bits);
    b_ = state_.add_doubles("b", n_, vec_keep_bits);
    r_ = state_.add_doubles("r", n_, vec_keep_bits);
    p_ = state_.add_doubles("p", n_, vec_keep_bits);
    ap_ = state_.add_doubles("Ap", n_, vec_keep_bits);
    cols_ = state_.add_ints("cols", 27 * n_);
    init_pattern();
    auto& b = state_.doubles(b_);
    auto& r = state_.doubles(r_);
    auto& p = state_.doubles(p_);
    for (std::size_t i = 0; i < n_; ++i) {
      b[i] = 1.0 + 0.125 * rng_.normal();
      r[i] = b[i];
      p[i] = r[i];
    }
    state_.quantize();
  }

 protected:
  void do_step() override {
    // One CG iteration against the implicit 27-point operator
    // (A = 26 I - sum of neighbors).
    auto& x = state_.doubles(x_);
    auto& r = state_.doubles(r_);
    auto& p = state_.doubles(p_);
    auto& ap = state_.doubles(ap_);
    const auto& cols = state_.ints(cols_);
    double p_ap = 0.0;
    double rr = 0.0;
    for (std::size_t i = 0; i < n_; ++i) rr += r[i] * r[i];
    for (std::size_t i = 0; i < n_; ++i) {
      double sum = 26.0 * p[i];
      for (int k = 0; k < 27; ++k) {
        const std::int32_t j = cols[27 * i + k];
        if (j >= 0 && static_cast<std::size_t>(j) != i) {
          sum -= p[static_cast<std::size_t>(j)];
        }
      }
      ap[i] = sum;
      p_ap += p[i] * sum;
    }
    if (std::abs(p_ap) < 1e-30 || rr < 1e-30) {
      // Converged (or degenerate): restart from a perturbed RHS, as the
      // real apps' outer loops do between solves.
      auto& b = state_.doubles(b_);
      for (std::size_t i = 0; i < n_; ++i) {
        b[i] += 1e-3 * rng_.normal();
        r[i] = b[i];
        p[i] = r[i];
      }
      return;
    }
    const double alpha = rr / p_ap;
    double rr_new = 0.0;
    for (std::size_t i = 0; i < n_; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
      rr_new += r[i] * r[i];
    }
    const double beta = rr_new / rr;
    for (std::size_t i = 0; i < n_; ++i) p[i] = r[i] + beta * p[i];
  }

  std::size_t n_ = 0;
  std::size_t nx_ = 0;
  std::size_t x_ = 0, b_ = 0, r_ = 0, p_ = 0, ap_ = 0, cols_ = 0;
  Rng rng_;

 private:
  void init_pattern() {
    auto& cols = state_.ints(cols_);
    const auto nx = static_cast<std::int64_t>(nx_);
    for (std::int64_t iz = 0; iz < nx; ++iz) {
      for (std::int64_t iy = 0; iy < nx; ++iy) {
        for (std::int64_t ix = 0; ix < nx; ++ix) {
          const std::size_t i =
              static_cast<std::size_t>((iz * nx + iy) * nx + ix);
          int k = 0;
          for (std::int64_t dz = -1; dz <= 1; ++dz) {
            for (std::int64_t dy = -1; dy <= 1; ++dy) {
              for (std::int64_t dx = -1; dx <= 1; ++dx) {
                const std::int64_t jx = ix + dx;
                const std::int64_t jy = iy + dy;
                const std::int64_t jz = iz + dz;
                const bool inside = jx >= 0 && jx < nx && jy >= 0 &&
                                    jy < nx && jz >= 0 && jz < nx;
                cols[27 * i + k++] =
                    inside ? static_cast<std::int32_t>((jz * nx + jy) * nx +
                                                       jx)
                           : -1;
              }
            }
          }
        }
      }
    }
  }
};

class HpccgProxy final : public CgProxyBase {
 public:
  HpccgProxy(std::size_t target_bytes, std::uint64_t seed)
      : CgProxyBase(target_bytes, seed,
                    /*bytes_per_point=*/5 * 8 + 27 * 4, /*vec_keep=*/8) {}
  [[nodiscard]] std::string name() const override { return "hpccg"; }
};

class PhpccgProxy final : public CgProxyBase {
 public:
  PhpccgProxy(std::size_t target_bytes, std::uint64_t seed)
      : CgProxyBase(target_bytes, seed,
                    /*bytes_per_point=*/5 * 8 + 27 * 4, /*vec_keep=*/7) {}
  [[nodiscard]] std::string name() const override { return "phpccg"; }
};

// miniFE adds per-element stiffness data with moderate entropy on top of
// the CG pattern.
class MiniFeProxy final : public CgProxyBase {
 public:
  MiniFeProxy(std::size_t target_bytes, std::uint64_t seed)
      : CgProxyBase(target_bytes, seed,
                    /*bytes_per_point=*/5 * 8 + 27 * 4 + 8 * 8,
                    /*vec_keep=*/14) {
    elem_ = state_.add_doubles("elem_stiffness", 8 * n_, /*keep=*/22);
    auto& elem = state_.doubles(elem_);
    for (std::size_t i = 0; i < elem.size(); ++i) {
      elem[i] = 1.0 + 0.3 * rng_.normal();
    }
    state_.quantize();
  }
  [[nodiscard]] std::string name() const override { return "minife"; }

 private:
  std::size_t elem_ = 0;
};

// ---------------------------------------------------------------------------
// minimd: Lennard-Jones molecular dynamics with neighbor lists; warmer
// system than comd (more velocity entropy), plus per-particle neighbor
// indices.
class MiniMdProxy final : public ProxyBase {
 public:
  MiniMdProxy(std::size_t target_bytes, std::uint64_t seed) {
    constexpr std::size_t kNeighbors = 16;
    const std::size_t bytes_per_particle =
        9 * sizeof(double) + kNeighbors * sizeof(std::int32_t);
    n_ = std::max<std::size_t>(64, target_bytes / bytes_per_particle);
    pos_ = state_.add_doubles("pos", 3 * n_, /*keep=*/28);
    vel_ = state_.add_doubles("vel", 3 * n_, /*keep=*/26);
    force_ = state_.add_doubles("force", 3 * n_, /*keep=*/26);
    neigh_ = state_.add_ints("neighbors", kNeighbors * n_);
    side_ = static_cast<std::size_t>(std::cbrt(static_cast<double>(n_))) + 1;
    Rng rng(seed);
    auto& pos = state_.doubles(pos_);
    auto& vel = state_.doubles(vel_);
    auto& neigh = state_.ints(neigh_);
    for (std::size_t i = 0; i < n_; ++i) {
      pos[3 * i + 0] = static_cast<double>(i % side_) + 0.2 * rng.normal();
      pos[3 * i + 1] =
          static_cast<double>((i / side_) % side_) + 0.2 * rng.normal();
      pos[3 * i + 2] =
          static_cast<double>(i / (side_ * side_)) + 0.2 * rng.normal();
      for (int d = 0; d < 3; ++d) vel[3 * i + d] = 0.5 * rng.normal();
      // Neighbor list: mostly nearby indices, semi-sorted like a real
      // binned neighbor build.
      for (std::size_t k = 0; k < kNeighbors; ++k) {
        const auto offset =
            static_cast<std::int64_t>(rng.next_below(2 * kNeighbors)) -
            static_cast<std::int64_t>(kNeighbors);
        auto j = static_cast<std::int64_t>(i) + offset;
        j = std::clamp<std::int64_t>(j, 0,
                                     static_cast<std::int64_t>(n_) - 1);
        neigh[kNeighbors * i + k] = static_cast<std::int32_t>(j);
      }
    }
    state_.quantize();
  }

  [[nodiscard]] std::string name() const override { return "minimd"; }

 private:
  void do_step() override {
    constexpr std::size_t kNeighbors = 16;
    constexpr double dt = 0.004;
    auto& pos = state_.doubles(pos_);
    auto& vel = state_.doubles(vel_);
    auto& force = state_.doubles(force_);
    const auto& neigh = state_.ints(neigh_);
    for (std::size_t i = 0; i < n_; ++i) {
      double f[3] = {0, 0, 0};
      for (std::size_t k = 0; k < kNeighbors; ++k) {
        const auto j = static_cast<std::size_t>(neigh[kNeighbors * i + k]);
        if (j == i) continue;
        double dr[3];
        double r2 = 1e-6;
        for (int d = 0; d < 3; ++d) {
          dr[d] = pos[3 * i + d] - pos[3 * j + d];
          r2 += dr[d] * dr[d];
        }
        // Truncated, softened LJ force magnitude.
        const double inv2 = 1.0 / r2;
        const double inv6 = inv2 * inv2 * inv2;
        const double mag = std::clamp(24.0 * inv6 * (2.0 * inv6 - 1.0) * inv2,
                                      -10.0, 10.0);
        for (int d = 0; d < 3; ++d) f[d] += mag * dr[d];
      }
      for (int d = 0; d < 3; ++d) {
        force[3 * i + d] = f[d];
        vel[3 * i + d] += dt * f[d];
        pos[3 * i + d] += dt * vel[3 * i + d];
      }
    }
  }

  std::size_t n_ = 0;
  std::size_t side_ = 0;
  std::size_t pos_ = 0, vel_ = 0, force_ = 0, neigh_ = 0;
};

// ---------------------------------------------------------------------------
// minismac: 2D structured-grid incompressible flow (the least compressible
// checkpoint of the suite - fully developed fields with near-full mantissa
// entropy).
class MiniSmacProxy final : public ProxyBase {
 public:
  MiniSmacProxy(std::size_t target_bytes, std::uint64_t seed) : rng_(seed) {
    const std::size_t points =
        std::max<std::size_t>(256, target_bytes / (5 * sizeof(double)));
    nx_ = static_cast<std::size_t>(std::sqrt(static_cast<double>(points))) + 1;
    const std::size_t n = nx_ * nx_;
    u_ = state_.add_doubles("u", n, /*keep=*/34);
    v_ = state_.add_doubles("v", n, /*keep=*/34);
    p_ = state_.add_doubles("pressure", n, /*keep=*/34);
    t_ = state_.add_doubles("temperature", n, /*keep=*/34);
    w_ = state_.add_doubles("vorticity", n, /*keep=*/34);
    for (std::size_t f : {u_, v_, p_, t_, w_}) {
      auto& field = state_.doubles(f);
      for (auto& x : field) x = rng_.uniform(-1.0, 1.0);
    }
    state_.quantize();
  }

  [[nodiscard]] std::string name() const override { return "minismac"; }

 private:
  void do_step() override {
    // Explicit smoothing plus forcing noise: keeps the fields evolving at
    // sustained (turbulence-like) entropy instead of diffusing to zero.
    for (std::size_t f : {u_, v_, p_, t_, w_}) {
      auto& field = state_.doubles(f);
      for (std::size_t j = 1; j + 1 < nx_; ++j) {
        for (std::size_t i = 1; i + 1 < nx_; ++i) {
          const std::size_t c = j * nx_ + i;
          const double lap = field[c - 1] + field[c + 1] + field[c - nx_] +
                             field[c + nx_] - 4.0 * field[c];
          field[c] += 0.05 * lap + 0.02 * rng_.uniform(-1.0, 1.0);
        }
      }
    }
  }

  std::size_t nx_ = 0;
  std::size_t u_ = 0, v_ = 0, p_ = 0, t_ = 0, w_ = 0;
  Rng rng_;
};

// ---------------------------------------------------------------------------
// miniaero: explicit unstructured-mesh Navier-Stokes; conservative state
// per cell plus face connectivity.
class MiniAeroProxy final : public ProxyBase {
 public:
  MiniAeroProxy(std::size_t target_bytes, std::uint64_t seed) {
    constexpr std::size_t kFacesPerCell = 4;
    const std::size_t bytes_per_cell =
        5 * sizeof(double) + kFacesPerCell * sizeof(std::int32_t);
    n_ = std::max<std::size_t>(128, target_bytes / bytes_per_cell);
    q_ = state_.add_doubles("conserved", 5 * n_, /*keep=*/7);
    faces_ = state_.add_ints("faces", kFacesPerCell * n_);
    Rng rng(seed);
    auto& q = state_.doubles(q_);
    auto& faces = state_.ints(faces_);
    for (std::size_t i = 0; i < n_; ++i) {
      // Free-stream initial condition with small perturbations.
      q[5 * i + 0] = 1.0 + 0.01 * rng.normal();   // rho
      q[5 * i + 1] = 0.5 + 0.01 * rng.normal();   // rho*u
      q[5 * i + 2] = 0.01 * rng.normal();         // rho*v
      q[5 * i + 3] = 0.01 * rng.normal();         // rho*w
      q[5 * i + 4] = 2.5 + 0.01 * rng.normal();   // rho*E
      for (std::size_t k = 0; k < kFacesPerCell; ++k) {
        auto j = static_cast<std::int64_t>(i) +
                 static_cast<std::int64_t>(rng.next_below(9)) - 4;
        j = std::clamp<std::int64_t>(j, 0,
                                     static_cast<std::int64_t>(n_) - 1);
        faces[kFacesPerCell * i + k] = static_cast<std::int32_t>(j);
      }
    }
    state_.quantize();
  }

  [[nodiscard]] std::string name() const override { return "miniaero"; }

 private:
  void do_step() override {
    constexpr std::size_t kFacesPerCell = 4;
    auto& q = state_.doubles(q_);
    const auto& faces = state_.ints(faces_);
    // First-order flux exchange across faces (Rusanov-flavored averaging).
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t k = 0; k < kFacesPerCell; ++k) {
        const auto j = static_cast<std::size_t>(faces[kFacesPerCell * i + k]);
        for (int c = 0; c < 5; ++c) {
          const double flux = 0.02 * (q[5 * j + c] - q[5 * i + c]);
          q[5 * i + c] += flux;
        }
      }
    }
  }

  std::size_t n_ = 0;
  std::size_t q_ = 0, faces_ = 0;
};

// ---------------------------------------------------------------------------
// lammps: production-scale MD proxy - comd's pattern plus molecular
// topology (bond lists) and per-atom type/charge data. Ibtesham et al.
// measured ~92% compression on real LAMMPS checkpoints; the heavy
// structure (topology, lattice positions, discrete charges) is why.
class LammpsProxy final : public ProxyBase {
 public:
  LammpsProxy(std::size_t target_bytes, std::uint64_t seed) {
    constexpr std::size_t kBondsPerAtom = 4;
    const std::size_t bytes_per_atom =
        10 * sizeof(double) + (kBondsPerAtom + 1) * sizeof(std::int32_t);
    n_ = std::max<std::size_t>(64, target_bytes / bytes_per_atom);
    pos_ = state_.add_doubles("pos", 3 * n_, /*keep=*/4);
    vel_ = state_.add_doubles("vel", 3 * n_, /*keep=*/3);
    force_ = state_.add_doubles("force", 3 * n_, /*keep=*/3);
    charge_ = state_.add_doubles("charge", n_, /*keep=*/2);
    type_ = state_.add_ints("type", n_);
    bonds_ = state_.add_ints("bonds", kBondsPerAtom * n_);
    side_ = static_cast<std::size_t>(std::cbrt(static_cast<double>(n_))) + 1;
    Rng rng(seed);
    auto& pos = state_.doubles(pos_);
    auto& vel = state_.doubles(vel_);
    auto& charge = state_.doubles(charge_);
    auto& type = state_.ints(type_);
    auto& bonds = state_.ints(bonds_);
    for (std::size_t i = 0; i < n_; ++i) {
      pos[3 * i + 0] = static_cast<double>(i % side_) + 0.005 * rng.normal();
      pos[3 * i + 1] =
          static_cast<double>((i / side_) % side_) + 0.005 * rng.normal();
      pos[3 * i + 2] =
          static_cast<double>(i / (side_ * side_)) + 0.005 * rng.normal();
      for (int d = 0; d < 3; ++d) vel[3 * i + d] = 0.02 * rng.normal();
      // A few discrete charge/type species, as in molecular force fields.
      type[i] = static_cast<std::int32_t>(rng.next_below(4));
      charge[i] = (type[i] % 2 == 0) ? 0.5 : -0.5;
      // Bonds to lattice neighbors: near-regular topology.
      for (std::size_t b = 0; b < kBondsPerAtom; ++b) {
        auto j = static_cast<std::int64_t>(i) +
                 static_cast<std::int64_t>(b) - 2;
        j = std::clamp<std::int64_t>(j, 0,
                                     static_cast<std::int64_t>(n_) - 1);
        bonds[kBondsPerAtom * i + b] = static_cast<std::int32_t>(j);
      }
    }
    state_.quantize();
  }

  [[nodiscard]] std::string name() const override { return "lammps"; }

 private:
  void do_step() override {
    constexpr std::size_t kBondsPerAtom = 4;
    constexpr double dt = 0.005;
    auto& pos = state_.doubles(pos_);
    auto& vel = state_.doubles(vel_);
    auto& force = state_.doubles(force_);
    const auto& bonds = state_.ints(bonds_);
    for (std::size_t i = 0; i < n_; ++i) {
      double f[3] = {0, 0, 0};
      for (std::size_t b = 0; b < kBondsPerAtom; ++b) {
        const auto j =
            static_cast<std::size_t>(bonds[kBondsPerAtom * i + b]);
        if (j == i) continue;
        for (int d = 0; d < 3; ++d) {
          f[d] += 0.1 * (pos[3 * j + d] - pos[3 * i + d]);
        }
      }
      for (int d = 0; d < 3; ++d) {
        force[3 * i + d] = f[d];
        vel[3 * i + d] += dt * f[d];
        pos[3 * i + d] += dt * vel[3 * i + d];
      }
    }
  }

  std::size_t n_ = 0;
  std::size_t side_ = 0;
  std::size_t pos_ = 0, vel_ = 0, force_ = 0, charge_ = 0;
  std::size_t type_ = 0, bonds_ = 0;
};

// ---------------------------------------------------------------------------
// cth: shock-hydrodynamics proxy - structured mesh with piecewise-smooth
// fields separated by a moving shock front and integer material ids
// (Ibtesham et al. measured ~83-85% on real CTH checkpoints).
class CthProxy final : public ProxyBase {
 public:
  CthProxy(std::size_t target_bytes, std::uint64_t seed) : rng_(seed) {
    const std::size_t bytes_per_cell =
        4 * sizeof(double) + sizeof(std::int32_t);
    const std::size_t cells =
        std::max<std::size_t>(256, target_bytes / bytes_per_cell);
    nx_ = static_cast<std::size_t>(std::sqrt(static_cast<double>(cells))) + 1;
    const std::size_t n = nx_ * nx_;
    rho_ = state_.add_doubles("density", n, /*keep=*/22);
    e_ = state_.add_doubles("energy", n, /*keep=*/22);
    u_ = state_.add_doubles("velocity", n, /*keep=*/22);
    p_ = state_.add_doubles("pressure", n, /*keep=*/22);
    mat_ = state_.add_ints("material", n);
    shock_col_ = nx_ / 4;
    auto& rho = state_.doubles(rho_);
    auto& e = state_.doubles(e_);
    auto& mat = state_.ints(mat_);
    for (std::size_t j = 0; j < nx_; ++j) {
      for (std::size_t i = 0; i < nx_; ++i) {
        const std::size_t c = j * nx_ + i;
        const bool shocked = i < shock_col_;
        rho[c] = shocked ? 4.0 : 1.0;
        e[c] = shocked ? 2.5 : 1.0;
        mat[c] = i < nx_ / 2 ? 1 : 2;  // two material regions
      }
    }
    state_.quantize();
  }

  [[nodiscard]] std::string name() const override { return "cth"; }

 private:
  void do_step() override {
    // Advance the shock one column and relax the fields behind it.
    shock_col_ = std::min(shock_col_ + 1, nx_ - 2);
    auto& rho = state_.doubles(rho_);
    auto& e = state_.doubles(e_);
    auto& u = state_.doubles(u_);
    auto& p = state_.doubles(p_);
    for (std::size_t j = 0; j < nx_; ++j) {
      for (std::size_t i = 0; i < nx_; ++i) {
        const std::size_t c = j * nx_ + i;
        const bool shocked = i < shock_col_;
        rho[c] += 0.2 * ((shocked ? 4.0 : 1.0) - rho[c]) +
                  0.02 * rng_.normal();
        e[c] += 0.2 * ((shocked ? 2.5 : 1.0) - e[c]);
        u[c] = shocked ? 0.8 : 0.0;
        p[c] = 0.4 * rho[c] * e[c];
      }
    }
  }

  std::size_t nx_ = 0;
  std::size_t shock_col_ = 0;
  std::size_t rho_ = 0, e_ = 0, u_ = 0, p_ = 0, mat_ = 0;
  Rng rng_;
};

}  // namespace

std::unique_ptr<MiniApp> make_miniapp(const std::string& name,
                                      std::size_t target_bytes,
                                      std::uint64_t seed) {
  if (name == "comd") return std::make_unique<ComdProxy>(target_bytes, seed);
  if (name == "hpccg") {
    return std::make_unique<HpccgProxy>(target_bytes, seed);
  }
  if (name == "minife") {
    return std::make_unique<MiniFeProxy>(target_bytes, seed);
  }
  if (name == "minimd") {
    return std::make_unique<MiniMdProxy>(target_bytes, seed);
  }
  if (name == "minismac") {
    return std::make_unique<MiniSmacProxy>(target_bytes, seed);
  }
  if (name == "miniaero") {
    return std::make_unique<MiniAeroProxy>(target_bytes, seed);
  }
  if (name == "phpccg") {
    return std::make_unique<PhpccgProxy>(target_bytes, seed);
  }
  if (name == "lammps") {
    return std::make_unique<LammpsProxy>(target_bytes, seed);
  }
  if (name == "cth") return std::make_unique<CthProxy>(target_bytes, seed);
  // NPB-style proxy kernels (proxy_kernels.hpp): real iterative solvers
  // whose state lives in region registries, adapted to the MiniApp
  // interface so the compression study can measure them too.
  for (const auto& kernel : proxy_kernel_names()) {
    if (name == kernel) {
      return make_proxy_kernel_miniapp(name, target_bytes, seed);
    }
  }
  throw std::runtime_error("unknown mini-app: " + name);
}

const std::vector<std::string>& miniapp_names() {
  static const std::vector<std::string> names = {
      "comd", "hpccg", "minife", "minimd", "minismac", "miniaero", "phpccg"};
  return names;
}

const std::vector<std::string>& production_app_names() {
  static const std::vector<std::string> names = {"lammps", "cth"};
  return names;
}

}  // namespace ndpcr::workloads
