#include "workloads/array_state.hpp"

#include <cstring>
#include <stdexcept>

namespace ndpcr::workloads {
namespace {

constexpr std::uint32_t kMagic = 0x4E445057;  // "NDPW"

void append_string(Bytes& out, const std::string& s) {
  append_le<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  for (char c : s) out.push_back(static_cast<std::byte>(c));
}

std::string read_string(ByteSpan in, std::size_t& pos) {
  if (pos + 4 > in.size()) throw std::runtime_error("truncated image");
  const auto len = read_le<std::uint32_t>(in, pos);
  pos += 4;
  if (pos + len > in.size()) throw std::runtime_error("truncated image");
  std::string s(len, '\0');
  std::memcpy(s.data(), in.data() + pos, len);
  pos += len;
  return s;
}

}  // namespace

double quantize_mantissa(double value, int keep_bits) {
  if (keep_bits >= 52) return value;
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const std::uint64_t mask = ~((std::uint64_t{1} << (52 - keep_bits)) - 1);
  bits &= mask;
  std::memcpy(&value, &bits, sizeof(bits));
  return value;
}

std::size_t ArrayState::add_doubles(std::string name, std::size_t count,
                                    int mantissa_keep_bits) {
  dbl_.push_back({std::move(name), mantissa_keep_bits,
                  std::vector<double>(count, 0.0)});
  return dbl_.size() - 1;
}

std::size_t ArrayState::add_ints(std::string name, std::size_t count) {
  int_.push_back({std::move(name), std::vector<std::int32_t>(count, 0)});
  return int_.size() - 1;
}

void ArrayState::quantize() {
  for (auto& arr : dbl_) {
    if (arr.keep_bits >= 52) continue;
    for (auto& v : arr.data) v = quantize_mantissa(v, arr.keep_bits);
  }
}

std::size_t ArrayState::total_bytes() const {
  std::size_t total = 0;
  for (const auto& arr : dbl_) total += arr.data.size() * sizeof(double);
  for (const auto& arr : int_) total += arr.data.size() * sizeof(std::int32_t);
  return total;
}

void ArrayState::serialize(Bytes& out, std::uint64_t step_count) const {
  out.reserve(out.size() + total_bytes() + 256);
  append_le<std::uint32_t>(out, kMagic);
  append_le<std::uint64_t>(out, step_count);
  append_le<std::uint32_t>(out, static_cast<std::uint32_t>(dbl_.size()));
  append_le<std::uint32_t>(out, static_cast<std::uint32_t>(int_.size()));
  for (const auto& arr : dbl_) {
    append_string(out, arr.name);
    append_le<std::uint64_t>(out, arr.data.size());
    const std::size_t offset = out.size();
    out.resize(offset + arr.data.size() * sizeof(double));
    std::memcpy(out.data() + offset, arr.data.data(),
                arr.data.size() * sizeof(double));
  }
  for (const auto& arr : int_) {
    append_string(out, arr.name);
    append_le<std::uint64_t>(out, arr.data.size());
    const std::size_t offset = out.size();
    out.resize(offset + arr.data.size() * sizeof(std::int32_t));
    std::memcpy(out.data() + offset, arr.data.data(),
                arr.data.size() * sizeof(std::int32_t));
  }
}

std::uint64_t ArrayState::deserialize(ByteSpan image) {
  std::size_t pos = 0;
  if (image.size() < 20 || read_le<std::uint32_t>(image, 0) != kMagic) {
    throw std::runtime_error("not a mini-app checkpoint image");
  }
  const auto step_count = read_le<std::uint64_t>(image, 4);
  const auto n_dbl = read_le<std::uint32_t>(image, 12);
  const auto n_int = read_le<std::uint32_t>(image, 16);
  pos = 20;
  if (n_dbl != dbl_.size() || n_int != int_.size()) {
    throw std::runtime_error("checkpoint image layout mismatch");
  }
  for (auto& arr : dbl_) {
    const std::string name = read_string(image, pos);
    if (name != arr.name) throw std::runtime_error("array name mismatch");
    if (pos + 8 > image.size()) throw std::runtime_error("truncated image");
    const auto count = read_le<std::uint64_t>(image, pos);
    pos += 8;
    if (count != arr.data.size()) {
      throw std::runtime_error("array size mismatch");
    }
    if (pos + count * sizeof(double) > image.size()) {
      throw std::runtime_error("truncated image");
    }
    std::memcpy(arr.data.data(), image.data() + pos, count * sizeof(double));
    pos += count * sizeof(double);
  }
  for (auto& arr : int_) {
    const std::string name = read_string(image, pos);
    if (name != arr.name) throw std::runtime_error("array name mismatch");
    if (pos + 8 > image.size()) throw std::runtime_error("truncated image");
    const auto count = read_le<std::uint64_t>(image, pos);
    pos += 8;
    if (count != arr.data.size()) {
      throw std::runtime_error("array size mismatch");
    }
    if (pos + count * sizeof(std::int32_t) > image.size()) {
      throw std::runtime_error("truncated image");
    }
    std::memcpy(arr.data.data(), image.data() + pos,
                count * sizeof(std::int32_t));
    pos += count * sizeof(std::int32_t);
  }
  if (pos != image.size()) {
    throw std::runtime_error("trailing bytes in checkpoint image");
  }
  return step_count;
}

std::uint64_t ArrayState::digest() const {
  // FNV-1a over all array payloads.
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      h ^= p[i];
      h *= 0x100000001b3ull;
    }
  };
  for (const auto& arr : dbl_) {
    mix(arr.data.data(), arr.data.size() * sizeof(double));
  }
  for (const auto& arr : int_) {
    mix(arr.data.data(), arr.data.size() * sizeof(std::int32_t));
  }
  return h;
}

}  // namespace ndpcr::workloads
