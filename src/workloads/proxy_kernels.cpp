#include "workloads/proxy_kernels.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/crc32.hpp"

namespace ndpcr::workloads {
namespace {

// SplitMix64 - local copy so the kernels depend only on their seed, not
// on another library's hashing choices.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Uniform double in [0, 1) from a (seed, index) pair.
double unit(std::uint64_t seed, std::uint64_t index) {
  return static_cast<double>(mix64(seed ^ index) >> 11) * 0x1.0p-53;
}

// Order-sensitive CRC over a list of regions - the shared fingerprint
// primitive. Scalars participate as raw bytes too: two states that differ
// only in the iteration counter must not collide.
class Digest {
 public:
  void add(const void* data, std::size_t size) {
    crc_.update(ByteSpan(static_cast<const std::byte*>(data), size));
  }
  template <typename T>
  void add_vector(const std::vector<T>& v) {
    add(v.data(), v.size() * sizeof(T));
  }
  [[nodiscard]] std::uint64_t value() const {
    return (static_cast<std::uint64_t>(crc_.value()) << 32) | crc_.value();
  }

 private:
  Crc32 crc_;
};

// ---------------------------------------------------------------------
// cg: conjugate gradient on a seeded SPD tridiagonal system.

class CgKernel final : public ProxyKernel {
 public:
  CgKernel(std::size_t target_bytes, std::uint64_t seed) {
    // Five n-sized double regions: diag, b, x, r, p.
    n_ = std::max<std::size_t>(64, target_bytes / (5 * sizeof(double)));
    diag_.resize(n_);
    b_.resize(n_);
    x_.assign(n_, 0.0);
    r_.resize(n_);
    p_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      // Diagonally dominant: off-diagonals are -1, so diag in [4, 6).
      diag_[i] = 4.0 + 2.0 * unit(seed, i);
      b_[i] = unit(seed ^ 0x5CA1AB1Eull, i) - 0.5;
    }
    // x = 0, r = b, p = r.
    r_ = b_;
    p_ = r_;
    s_.rho = dot(r_, r_);
    s_.initial_residual = std::sqrt(s_.rho);
    registry_.register_vector("cg.diag", diag_);
    registry_.register_vector("cg.b", b_);
    registry_.register_vector("cg.x", x_);
    registry_.register_vector("cg.r", r_);
    registry_.register_vector("cg.p", p_);
    registry_.register_region("cg.scalars", &s_, sizeof(s_));
  }

  [[nodiscard]] std::string name() const override { return "cg"; }

  void iterate() override {
    // q = A p with A = tridiag(-1, diag, -1); fixed evaluation order.
    std::vector<double> q(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      double v = diag_[i] * p_[i];
      if (i > 0) v -= p_[i - 1];
      if (i + 1 < n_) v -= p_[i + 1];
      q[i] = v;
    }
    const double pq = dot(p_, q);
    const double alpha = s_.rho / pq;
    for (std::size_t i = 0; i < n_; ++i) x_[i] += alpha * p_[i];
    for (std::size_t i = 0; i < n_; ++i) r_[i] -= alpha * q[i];
    const double rho_next = dot(r_, r_);
    const double beta = rho_next / s_.rho;
    for (std::size_t i = 0; i < n_; ++i) p_[i] = r_[i] + beta * p_[i];
    s_.rho = rho_next;
    ++s_.iteration;
    registry_.mark_dirty("cg.x");
    registry_.mark_dirty("cg.r");
    registry_.mark_dirty("cg.p");
    registry_.mark_dirty("cg.scalars");
  }

  [[nodiscard]] std::uint64_t iteration() const override {
    return s_.iteration;
  }
  [[nodiscard]] double residual() const override {
    return std::sqrt(s_.rho);
  }
  [[nodiscard]] bool verify() const override {
    // CG on an SPD system: the residual is finite and never blows up
    // past its start (diagonal dominance keeps the iteration stable).
    return std::isfinite(s_.rho) && s_.rho >= 0.0 &&
           residual() <= s_.initial_residual * 1e3 + 1e-12;
  }
  [[nodiscard]] std::uint64_t fingerprint() const override {
    Digest d;
    d.add_vector(diag_);
    d.add_vector(b_);
    d.add_vector(x_);
    d.add_vector(r_);
    d.add_vector(p_);
    d.add(&s_, sizeof(s_));
    return d.value();
  }

 private:
  static double dot(const std::vector<double>& a,
                    const std::vector<double>& b) {
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
    return sum;
  }

  struct Scalars {
    std::uint64_t iteration = 0;
    double rho = 0.0;
    double initial_residual = 0.0;
  };

  std::size_t n_ = 0;
  std::vector<double> diag_, b_, x_, r_, p_;
  Scalars s_;
};

// ---------------------------------------------------------------------
// mg: two-level V-cycles on a 1D Poisson problem -u'' = f, h = 1.

class MgKernel final : public ProxyKernel {
 public:
  MgKernel(std::size_t target_bytes, std::uint64_t seed) {
    // Two n-sized double regions: u, f. n even for the 2:1 coarsening.
    n_ = std::max<std::size_t>(128, target_bytes / (2 * sizeof(double)));
    n_ &= ~std::size_t{1};
    u_.assign(n_, 0.0);
    f_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      f_[i] = unit(seed, i) - 0.5;
    }
    s_.initial_residual = residual_norm();
    registry_.register_vector("mg.u", u_);
    registry_.register_vector("mg.f", f_);
    registry_.register_region("mg.scalars", &s_, sizeof(s_));
  }

  [[nodiscard]] std::string name() const override { return "mg"; }

  void iterate() override {
    smooth(2);
    // Restrict the fine residual to the coarse grid (full weighting),
    // relax there, prolong the correction back (injection + average).
    const std::size_t nc = n_ / 2;
    std::vector<double> rc(nc, 0.0);
    for (std::size_t i = 0; i < nc; ++i) {
      const std::size_t j = 2 * i;
      const double r0 = point_residual(j);
      const double r1 = point_residual(j + 1);
      rc[i] = 0.5 * (r0 + r1);
    }
    std::vector<double> ec(nc, 0.0);
    for (int sweep = 0; sweep < 4; ++sweep) {
      for (std::size_t i = 0; i < nc; ++i) {
        const double left = i > 0 ? ec[i - 1] : 0.0;
        const double right = i + 1 < nc ? ec[i + 1] : 0.0;
        // Coarse operator: h doubles, so the stencil scale is 1/4.
        ec[i] = (4.0 * rc[i] + left + right) * 0.5;
      }
    }
    for (std::size_t i = 0; i < nc; ++i) {
      u_[2 * i] += ec[i];
      u_[2 * i + 1] += ec[i];
    }
    smooth(2);
    s_.residual = residual_norm();
    ++s_.iteration;
    registry_.mark_dirty("mg.u");
    registry_.mark_dirty("mg.scalars");
  }

  [[nodiscard]] std::uint64_t iteration() const override {
    return s_.iteration;
  }
  [[nodiscard]] double residual() const override {
    return s_.iteration == 0 ? s_.initial_residual : s_.residual;
  }
  [[nodiscard]] bool verify() const override {
    return std::isfinite(residual()) &&
           residual() <= s_.initial_residual * 1e3 + 1e-12;
  }
  [[nodiscard]] std::uint64_t fingerprint() const override {
    Digest d;
    d.add_vector(u_);
    d.add_vector(f_);
    d.add(&s_, sizeof(s_));
    return d.value();
  }

 private:
  // -u'' with Dirichlet zero boundaries: (2u_i - u_{i-1} - u_{i+1}).
  [[nodiscard]] double point_residual(std::size_t i) const {
    const double left = i > 0 ? u_[i - 1] : 0.0;
    const double right = i + 1 < n_ ? u_[i + 1] : 0.0;
    return f_[i] - (2.0 * u_[i] - left - right);
  }

  void smooth(int sweeps) {
    // Weighted Jacobi, omega = 2/3, fixed order via a staging buffer.
    std::vector<double> next(n_);
    for (int s = 0; s < sweeps; ++s) {
      for (std::size_t i = 0; i < n_; ++i) {
        const double left = i > 0 ? u_[i - 1] : 0.0;
        const double right = i + 1 < n_ ? u_[i + 1] : 0.0;
        const double jacobi = (f_[i] + left + right) * 0.5;
        next[i] = u_[i] + (2.0 / 3.0) * (jacobi - u_[i]);
      }
      u_.swap(next);
    }
  }

  [[nodiscard]] double residual_norm() const {
    double max = 0.0;
    for (std::size_t i = 0; i < n_; ++i) {
      max = std::max(max, std::abs(point_residual(i)));
    }
    return max;
  }

  struct Scalars {
    std::uint64_t iteration = 0;
    double residual = 0.0;
    double initial_residual = 0.0;
  };

  std::size_t n_ = 0;
  std::vector<double> u_, f_;
  Scalars s_;
};

// ---------------------------------------------------------------------
// ft: spectral evolution of a complex field under a constant phase
// table, with an NPB-FT-style probe checksum.

class FtKernel final : public ProxyKernel {
 public:
  FtKernel(std::size_t target_bytes, std::uint64_t seed) {
    // Two 2n-sized double regions: the interleaved (re, im) spectrum and
    // the constant phase table.
    n_ = std::max<std::size_t>(64, target_bytes / (4 * sizeof(double)));
    spectrum_.resize(2 * n_);
    phase_.resize(2 * n_);
    for (std::size_t k = 0; k < n_; ++k) {
      spectrum_[2 * k] = unit(seed, k) - 0.5;
      spectrum_[2 * k + 1] = unit(seed ^ 0xF0F0F0F0ull, k) - 0.5;
      // exp(i theta_k) * mild decay: unitary-ish evolution that neither
      // blows up nor collapses over the harness's horizon.
      const double theta =
          6.283185307179586 * unit(seed ^ 0x7E57ull, k);
      const double decay = 1.0 - 1e-4 * unit(seed ^ 0xDECAull, k);
      phase_[2 * k] = decay * std::cos(theta);
      phase_[2 * k + 1] = decay * std::sin(theta);
    }
    s_.checksum_re = probe_re();
    registry_.register_vector("ft.spectrum", spectrum_);
    registry_.register_vector("ft.phase", phase_);
    registry_.register_region("ft.scalars", &s_, sizeof(s_));
  }

  [[nodiscard]] std::string name() const override { return "ft"; }

  void iterate() override {
    for (std::size_t k = 0; k < n_; ++k) {
      const double re = spectrum_[2 * k];
      const double im = spectrum_[2 * k + 1];
      const double pr = phase_[2 * k];
      const double pi = phase_[2 * k + 1];
      spectrum_[2 * k] = re * pr - im * pi;
      spectrum_[2 * k + 1] = re * pi + im * pr;
    }
    // NPB FT folds a probe checksum into the verification stream: sample
    // a deterministic stride of modes.
    s_.checksum_re = probe_re();
    ++s_.iteration;
    registry_.mark_dirty("ft.spectrum");
    registry_.mark_dirty("ft.scalars");
  }

  [[nodiscard]] std::uint64_t iteration() const override {
    return s_.iteration;
  }
  [[nodiscard]] double residual() const override {
    return std::abs(s_.checksum_re);
  }
  [[nodiscard]] bool verify() const override {
    // The evolution is (sub-)unitary: the probe sum stays bounded by the
    // number of probed modes times the max initial magnitude (~0.71).
    return std::isfinite(s_.checksum_re) &&
           std::abs(s_.checksum_re) <= static_cast<double>(kProbes);
  }
  [[nodiscard]] std::uint64_t fingerprint() const override {
    Digest d;
    d.add_vector(spectrum_);
    d.add_vector(phase_);
    d.add(&s_, sizeof(s_));
    return d.value();
  }

 private:
  static constexpr std::size_t kProbes = 17;

  [[nodiscard]] double probe_re() const {
    double sum = 0.0;
    for (std::size_t p = 0; p < kProbes; ++p) {
      sum += spectrum_[2 * ((p * n_) / kProbes)];
    }
    return sum;
  }

  struct Scalars {
    std::uint64_t iteration = 0;
    double checksum_re = 0.0;
  };

  std::size_t n_ = 0;
  std::vector<double> spectrum_, phase_;
  Scalars s_;
};

// ---------------------------------------------------------------------
// MiniApp adapter.

class ProxyKernelMiniApp final : public MiniApp {
 public:
  explicit ProxyKernelMiniApp(std::unique_ptr<ProxyKernel> kernel)
      : kernel_(std::move(kernel)) {}

  [[nodiscard]] std::string name() const override { return kernel_->name(); }
  void step() override { kernel_->iterate(); }
  [[nodiscard]] Bytes checkpoint() const override {
    return kernel_->registry().capture();
  }
  void restore(ByteSpan image) override {
    kernel_->registry().restore(image);
  }
  [[nodiscard]] std::size_t state_bytes() const override {
    return kernel_->registry().total_bytes();
  }
  [[nodiscard]] std::uint64_t state_digest() const override {
    return kernel_->fingerprint();
  }
  [[nodiscard]] std::uint64_t step_count() const override {
    return kernel_->iteration();
  }

 private:
  std::unique_ptr<ProxyKernel> kernel_;
};

}  // namespace

std::unique_ptr<ProxyKernel> make_proxy_kernel(const std::string& name,
                                               std::size_t target_bytes,
                                               std::uint64_t seed) {
  if (name == "cg") return std::make_unique<CgKernel>(target_bytes, seed);
  if (name == "mg") return std::make_unique<MgKernel>(target_bytes, seed);
  if (name == "ft") return std::make_unique<FtKernel>(target_bytes, seed);
  throw std::runtime_error("unknown proxy kernel: " + name);
}

const std::vector<std::string>& proxy_kernel_names() {
  static const std::vector<std::string> names = {"cg", "mg", "ft"};
  return names;
}

std::unique_ptr<MiniApp> make_proxy_kernel_miniapp(
    const std::string& name, std::size_t target_bytes, std::uint64_t seed) {
  return std::make_unique<ProxyKernelMiniApp>(
      make_proxy_kernel(name, target_bytes, seed));
}

}  // namespace ndpcr::workloads
