#pragma once

// Mini-application proxies standing in for the Mantevo suite used by the
// paper's compression study (section 5.1.1): CoMD, HPCCG, miniAero, miniFE,
// miniMD, miniSMAC2D and pHPCCG.
//
// Each proxy runs a genuine (small) kernel of the same computational
// pattern as its namesake and exposes its full simulation state for
// checkpointing. Checkpoint *content* is what matters here: the study only
// consumes the compressibility and volume of the serialized state, and each
// proxy reproduces the kind of data its namesake checkpoints (lattice
// particle arrays, CSR-structured solver vectors, structured-grid flow
// fields, ...).
//
// Where the real apps' state entropy comes from physics we cannot afford to
// run at scale, the proxies use a documented mantissa-quantization knob
// (see ArrayState) that stands in for each app's natural checkpoint
// entropy; the knob values were chosen so the *spread* of compression
// factors across apps matches Table 2 (CoMD/HPCCG/pHPCCG highly
// compressible ... miniSMAC2D barely compressible).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace ndpcr::workloads {

class MiniApp {
 public:
  virtual ~MiniApp() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  // Advance the simulation by one time step / solver iteration.
  virtual void step() = 0;

  // Serialize the complete restartable state.
  [[nodiscard]] virtual Bytes checkpoint() const = 0;

  // Restore state from a checkpoint image. Throws std::runtime_error on a
  // malformed image.
  virtual void restore(ByteSpan image) = 0;

  // Approximate in-memory state footprint in bytes.
  [[nodiscard]] virtual std::size_t state_bytes() const = 0;

  // Deterministic digest of the state, for restore validation in tests.
  [[nodiscard]] virtual std::uint64_t state_digest() const = 0;

  // Current step count (restored along with the state).
  [[nodiscard]] virtual std::uint64_t step_count() const = 0;
};

// Factory. `name` is one of miniapp_names(); `target_bytes` sizes the
// problem so the checkpoint is approximately that large; `seed` controls
// all pseudo-random content.
std::unique_ptr<MiniApp> make_miniapp(const std::string& name,
                                      std::size_t target_bytes,
                                      std::uint64_t seed);

// The seven proxies, in the paper's Table 2 order:
// comd, hpccg, minife, minimd, minismac, miniaero, phpccg.
const std::vector<std::string>& miniapp_names();

// Production-application proxies (section 5.2 cites Ibtesham et al.'s
// LAMMPS and CTH checkpoint measurements): "lammps" (large-scale MD with
// molecular topology, ~92% gzip factor) and "cth" (shock hydrodynamics
// with material interfaces, ~83%). Accepted by make_miniapp; kept out of
// miniapp_names() so the Table-2 suite stays the paper's seven.
const std::vector<std::string>& production_app_names();

}  // namespace ndpcr::workloads
