#include "compress/deflate_style.hpp"

#include <algorithm>
#include <array>

#include "compress/huffman.hpp"
#include "compress/kernels.hpp"
#include "compress/matcher.hpp"
#include "compress/scratch.hpp"

namespace ndpcr::compress {
namespace {

constexpr std::uint32_t kWindow = 32768;
constexpr std::uint32_t kMinMatch = 3;
constexpr std::uint32_t kMaxMatch = 258;
constexpr std::size_t kBlockSize = 256 * 1024;

constexpr std::uint32_t kEndOfBlock = 256;
constexpr std::size_t kLitLenSymbols = 286;
constexpr std::size_t kDistSymbols = 30;

// DEFLATE length code tables (symbols 257..285 map to index 0..28).
constexpr std::array<std::uint16_t, 29> kLenBase = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::array<std::uint8_t, 29> kLenExtra = {
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2,
    2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};

// DEFLATE distance code tables (symbols 0..29).
constexpr std::array<std::uint32_t, 30> kDistBase = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,    25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,   769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr std::array<std::uint8_t, 30> kDistExtra = {
    0, 0, 0, 0, 1, 1, 2, 2, 3,  3,  4,  4,  5,  5,  6,
    6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

std::uint32_t length_symbol(std::uint32_t len) {
  // Largest bucket whose base is <= len.
  auto it = std::upper_bound(kLenBase.begin(), kLenBase.end(), len);
  return static_cast<std::uint32_t>(it - kLenBase.begin()) - 1;
}

std::uint32_t distance_symbol(std::uint32_t dist) {
  auto it = std::upper_bound(kDistBase.begin(), kDistBase.end(), dist);
  return static_cast<std::uint32_t>(it - kDistBase.begin()) - 1;
}

// One parsed LZSS item, packed into a u64 so the per-block item vector can
// live in CodecScratch: literal in bits 0..7, match length (0 = literal,
// else 3..258) in bits 8..19, distance (<= 32768) in bits 20 and up.
constexpr std::uint64_t pack_literal(std::uint8_t lit) { return lit; }
constexpr std::uint64_t pack_match(std::uint32_t length,
                                   std::uint32_t distance) {
  return (static_cast<std::uint64_t>(length) << 8) |
         (static_cast<std::uint64_t>(distance) << 20);
}
constexpr std::uint8_t item_literal(std::uint64_t item) {
  return static_cast<std::uint8_t>(item & 0xFF);
}
constexpr std::uint32_t item_length(std::uint64_t item) {
  return static_cast<std::uint32_t>((item >> 8) & 0xFFF);
}
constexpr std::uint32_t item_distance(std::uint64_t item) {
  return static_cast<std::uint32_t>(item >> 20);
}

std::uint32_t chain_depth_for_level(int level) {
  static constexpr std::array<std::uint32_t, 10> depth = {
      0, 4, 8, 16, 32, 64, 96, 128, 192, 256};
  return depth[level];
}

void write_code_lengths(BitWriter& bw,
                        const std::vector<std::uint8_t>& lengths) {
  for (auto l : lengths) bw.write(l, 4);
}

void read_code_lengths(BitReader& br, std::size_t n,
                       std::vector<std::uint8_t>& lengths) {
  lengths.resize(n);
  for (auto& l : lengths) l = static_cast<std::uint8_t>(br.read(4));
}

}  // namespace

DeflateStyleCodec::DeflateStyleCodec(int level) : level_(level) {
  if (level < 1 || level > 9) {
    throw CodecError("ngzip level must be in [1, 9]");
  }
}

void DeflateStyleCodec::compress_payload(ByteSpan input, Bytes& out,
                                         CodecScratch& scratch) const {
  // Typical text/state compresses ~2:1 or better; reserving half the input
  // up front keeps the hot BitWriter appends from reallocating mid-block.
  out.reserve(out.size() + input.size() / 2 + 64);
  // One match finder across the whole input so matches can cross block
  // boundaries (the window is what bounds distances).
  MatchFinder finder(input, kWindow, kMinMatch, kMaxMatch,
                     chain_depth_for_level(level_), scratch.match_head,
                     scratch.match_prev);
  const bool lazy = level_ >= 4;

  BitWriter bw(out);
  std::size_t pos = 0;
  do {
    const std::size_t block_end =
        std::min(input.size(), pos + kBlockSize);

    // Parse the block into literals and matches. The lazy parse probes
    // find(pos + 1) before committing pos, so find and insert stay split
    // (find_and_insert would link pos into the chains too early).
    std::vector<std::uint64_t>& items = scratch.items;
    items.clear();
    items.reserve(block_end - pos);
    while (pos < block_end) {
      Match m = finder.find(pos);
      if (lazy && m.length >= kMinMatch && pos + 1 < block_end &&
          m.length < kMaxMatch) {
        // Defer by one byte if the next position has a longer match.
        const Match next = finder.find(pos + 1);
        if (next.length > m.length) m.length = 0;
      }
      if (m.length >= kMinMatch) {
        items.push_back(pack_match(m.length, m.distance));
        const std::size_t end = pos + m.length;
        for (std::size_t p = pos; p < end; ++p) finder.insert(p);
        pos = end;
      } else {
        items.push_back(pack_literal(static_cast<std::uint8_t>(input[pos])));
        finder.insert(pos);
        ++pos;
      }
    }

    // The final match of a block may run past block_end (matches are
    // bounded by the input, not the block), so whether this block is the
    // last one is only known after the parse: a boundary-crossing match
    // can swallow the entire remainder of the input.
    bw.write(pos >= input.size() ? 1 : 0, 1);

    // Build per-block Huffman tables.
    std::vector<std::uint64_t> lit_freq(kLitLenSymbols, 0);
    std::vector<std::uint64_t> dist_freq(kDistSymbols, 0);
    lit_freq[kEndOfBlock] = 1;
    for (const auto item : items) {
      if (item_length(item) == 0) {
        ++lit_freq[item_literal(item)];
      } else {
        ++lit_freq[257 + length_symbol(item_length(item))];
        ++dist_freq[distance_symbol(item_distance(item))];
      }
    }
    const HuffmanEncoder lit_enc(huffman_code_lengths(lit_freq));
    const HuffmanEncoder dist_enc(huffman_code_lengths(dist_freq));
    write_code_lengths(bw, lit_enc.lengths());
    write_code_lengths(bw, dist_enc.lengths());

    // Emit the symbol stream.
    for (const auto item : items) {
      if (item_length(item) == 0) {
        lit_enc.encode(bw, item_literal(item));
      } else {
        const std::uint32_t ls = length_symbol(item_length(item));
        lit_enc.encode(bw, 257 + ls);
        bw.write(item_length(item) - kLenBase[ls], kLenExtra[ls]);
        const std::uint32_t ds = distance_symbol(item_distance(item));
        dist_enc.encode(bw, ds);
        bw.write(item_distance(item) - kDistBase[ds], kDistExtra[ds]);
      }
    }
    lit_enc.encode(bw, kEndOfBlock);
  } while (pos < input.size());
  bw.finish();
}

std::size_t DeflateStyleCodec::decompress_payload(
    ByteSpan payload, std::byte* dst, std::size_t original_size,
    CodecScratch& scratch) const {
  if (original_size == 0) return 0;
  BitReader br(payload);
  std::size_t written = 0;
  bool final_block = false;
  while (!final_block) {
    final_block = br.read(1) != 0;
    read_code_lengths(br, kLitLenSymbols, scratch.code_lengths);
    scratch.lit_decoder.init(scratch.code_lengths);
    read_code_lengths(br, kDistSymbols, scratch.code_lengths);
    scratch.dist_decoder.init(scratch.code_lengths);
    while (true) {
      const std::uint32_t sym = scratch.lit_decoder.decode(br);
      if (sym == kEndOfBlock) break;
      if (sym < 256) {
        if (written >= original_size) {
          throw CodecError("ngzip output overflows declared size");
        }
        dst[written++] = static_cast<std::byte>(sym);
        continue;
      }
      const std::uint32_t ls = sym - 257;
      if (ls >= kLenBase.size()) {
        throw CodecError("invalid ngzip length symbol");
      }
      const std::uint32_t len = kLenBase[ls] + br.read(kLenExtra[ls]);
      const std::uint32_t ds = scratch.dist_decoder.decode(br);
      if (ds >= kDistBase.size()) {
        throw CodecError("invalid ngzip distance symbol");
      }
      const std::uint32_t dist = kDistBase[ds] + br.read(kDistExtra[ds]);
      if (dist == 0 || dist > written) {
        throw CodecError("invalid ngzip match distance");
      }
      if (len > original_size - written) {
        throw CodecError("ngzip match overflows declared size");
      }
      copy_match(dst + written, dist, len);
      written += len;
    }
  }
  return written;
}

}  // namespace ndpcr::compress
