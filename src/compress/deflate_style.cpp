#include "compress/deflate_style.hpp"

#include <algorithm>
#include <array>

#include "compress/huffman.hpp"
#include "compress/matcher.hpp"

namespace ndpcr::compress {
namespace {

constexpr std::uint32_t kWindow = 32768;
constexpr std::uint32_t kMinMatch = 3;
constexpr std::uint32_t kMaxMatch = 258;
constexpr std::size_t kBlockSize = 256 * 1024;

constexpr std::uint32_t kEndOfBlock = 256;
constexpr std::size_t kLitLenSymbols = 286;
constexpr std::size_t kDistSymbols = 30;

// DEFLATE length code tables (symbols 257..285 map to index 0..28).
constexpr std::array<std::uint16_t, 29> kLenBase = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::array<std::uint8_t, 29> kLenExtra = {
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2,
    2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};

// DEFLATE distance code tables (symbols 0..29).
constexpr std::array<std::uint32_t, 30> kDistBase = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,    25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,   769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr std::array<std::uint8_t, 30> kDistExtra = {
    0, 0, 0, 0, 1, 1, 2, 2, 3,  3,  4,  4,  5,  5,  6,
    6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

std::uint32_t length_symbol(std::uint32_t len) {
  // Largest bucket whose base is <= len.
  auto it = std::upper_bound(kLenBase.begin(), kLenBase.end(), len);
  return static_cast<std::uint32_t>(it - kLenBase.begin()) - 1;
}

std::uint32_t distance_symbol(std::uint32_t dist) {
  auto it = std::upper_bound(kDistBase.begin(), kDistBase.end(), dist);
  return static_cast<std::uint32_t>(it - kDistBase.begin()) - 1;
}

// One parsed LZSS item: a literal (length == 0) or a match.
struct Item {
  std::uint8_t literal = 0;
  std::uint32_t length = 0;
  std::uint32_t distance = 0;
};

std::uint32_t chain_depth_for_level(int level) {
  static constexpr std::array<std::uint32_t, 10> depth = {
      0, 4, 8, 16, 32, 64, 96, 128, 192, 256};
  return depth[level];
}

void write_code_lengths(BitWriter& bw,
                        const std::vector<std::uint8_t>& lengths) {
  for (auto l : lengths) bw.write(l, 4);
}

std::vector<std::uint8_t> read_code_lengths(BitReader& br, std::size_t n) {
  std::vector<std::uint8_t> lengths(n);
  for (auto& l : lengths) l = static_cast<std::uint8_t>(br.read(4));
  return lengths;
}

}  // namespace

DeflateStyleCodec::DeflateStyleCodec(int level) : level_(level) {
  if (level < 1 || level > 9) {
    throw CodecError("ngzip level must be in [1, 9]");
  }
}

void DeflateStyleCodec::compress_payload(ByteSpan input, Bytes& out) const {
  // Typical text/state compresses ~2:1 or better; reserving half the input
  // up front keeps the hot BitWriter appends from reallocating mid-block.
  out.reserve(out.size() + input.size() / 2 + 64);
  // One match finder across the whole input so matches can cross block
  // boundaries (the window is what bounds distances).
  MatchFinder finder(input, kWindow, kMinMatch, kMaxMatch,
                     chain_depth_for_level(level_));
  const bool lazy = level_ >= 4;

  BitWriter bw(out);
  std::size_t pos = 0;
  do {
    const std::size_t block_end =
        std::min(input.size(), pos + kBlockSize);
    const bool final_block = block_end == input.size();
    bw.write(final_block ? 1 : 0, 1);

    // Parse the block into literals and matches.
    std::vector<Item> items;
    items.reserve(block_end - pos);
    while (pos < block_end) {
      Match m = finder.find(pos);
      if (lazy && m.length >= kMinMatch && pos + 1 < block_end &&
          m.length < kMaxMatch) {
        // Defer by one byte if the next position has a longer match.
        const Match next = finder.find(pos + 1);
        if (next.length > m.length) m.length = 0;
      }
      if (m.length >= kMinMatch) {
        items.push_back(Item{0, m.length, m.distance});
        const std::size_t end = pos + m.length;
        for (std::size_t p = pos; p < end; ++p) finder.insert(p);
        pos = end;
      } else {
        items.push_back(
            Item{static_cast<std::uint8_t>(input[pos]), 0, 0});
        finder.insert(pos);
        ++pos;
      }
    }

    // Build per-block Huffman tables.
    std::vector<std::uint64_t> lit_freq(kLitLenSymbols, 0);
    std::vector<std::uint64_t> dist_freq(kDistSymbols, 0);
    lit_freq[kEndOfBlock] = 1;
    for (const auto& item : items) {
      if (item.length == 0) {
        ++lit_freq[item.literal];
      } else {
        ++lit_freq[257 + length_symbol(item.length)];
        ++dist_freq[distance_symbol(item.distance)];
      }
    }
    const HuffmanEncoder lit_enc(huffman_code_lengths(lit_freq));
    const HuffmanEncoder dist_enc(huffman_code_lengths(dist_freq));
    write_code_lengths(bw, lit_enc.lengths());
    write_code_lengths(bw, dist_enc.lengths());

    // Emit the symbol stream.
    for (const auto& item : items) {
      if (item.length == 0) {
        lit_enc.encode(bw, item.literal);
      } else {
        const std::uint32_t ls = length_symbol(item.length);
        lit_enc.encode(bw, 257 + ls);
        bw.write(item.length - kLenBase[ls], kLenExtra[ls]);
        const std::uint32_t ds = distance_symbol(item.distance);
        dist_enc.encode(bw, ds);
        bw.write(item.distance - kDistBase[ds], kDistExtra[ds]);
      }
    }
    lit_enc.encode(bw, kEndOfBlock);
  } while (pos < input.size());
  bw.finish();
}

void DeflateStyleCodec::decompress_payload(ByteSpan payload,
                                           std::size_t original_size,
                                           Bytes& out) const {
  if (original_size == 0) return;
  BitReader br(payload);
  bool final_block = false;
  while (!final_block) {
    final_block = br.read(1) != 0;
    const HuffmanDecoder lit_dec(read_code_lengths(br, kLitLenSymbols));
    const HuffmanDecoder dist_dec(read_code_lengths(br, kDistSymbols));
    while (true) {
      const std::uint32_t sym = lit_dec.decode(br);
      if (sym == kEndOfBlock) break;
      if (sym < 256) {
        if (out.size() >= original_size) {
          throw CodecError("ngzip output overflows declared size");
        }
        out.push_back(static_cast<std::byte>(sym));
        continue;
      }
      const std::uint32_t ls = sym - 257;
      if (ls >= kLenBase.size()) {
        throw CodecError("invalid ngzip length symbol");
      }
      const std::uint32_t len = kLenBase[ls] + br.read(kLenExtra[ls]);
      const std::uint32_t ds = dist_dec.decode(br);
      if (ds >= kDistBase.size()) {
        throw CodecError("invalid ngzip distance symbol");
      }
      const std::uint32_t dist = kDistBase[ds] + br.read(kDistExtra[ds]);
      if (dist == 0 || dist > out.size()) {
        throw CodecError("invalid ngzip match distance");
      }
      if (out.size() + len > original_size) {
        throw CodecError("ngzip match overflows declared size");
      }
      std::size_t src = out.size() - dist;
      for (std::uint32_t k = 0; k < len; ++k) out.push_back(out[src + k]);
    }
  }
}

}  // namespace ndpcr::compress
