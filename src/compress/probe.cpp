#include "compress/probe.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace ndpcr::compress {
namespace {

// Sample layout: up to kWindows windows of kWindowBytes each, spread
// evenly across the payload so a header-only structure cannot fool the
// probe. Small payloads are sampled whole.
constexpr std::size_t kWindows = 16;
constexpr std::size_t kWindowBytes = 4096;

// 4-gram repetition hash table: 2^12 entries of the gram value itself.
// A hit means the same 4 bytes recurred within the table's reach - the
// cheapest possible proxy for "an LZ match finder will find work here".
constexpr std::size_t kTableBits = 12;

std::uint32_t load32(const std::byte* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

CodecChoice codec_candidate(std::size_t index) {
  switch (index) {
    case 0:
      return {CodecId::kLz4Style, 1, false};
    case 1:
      return {CodecId::kLz4Style, 1, true};
    case 2:
      return {CodecId::kDeflateStyle, 6, false};
    default:
      throw std::out_of_range("codec_candidate index");
  }
}

CodecChoice choose_codec(ByteSpan payload, ProbeStats* stats) {
  std::array<std::uint32_t, 256> hist{};
  std::array<std::uint32_t, 1u << kTableBits> table{};
  table.fill(0xFFFFFFFFu);  // sentinel: no gram seen in this slot yet

  std::size_t sampled = 0;
  std::uint64_t grams = 0;
  std::uint64_t hits = 0;

  const std::size_t n = payload.size();
  const std::size_t window =
      n <= kWindows * kWindowBytes ? n : kWindowBytes;
  const std::size_t windows =
      window == n ? 1 : std::min(kWindows, n / kWindowBytes);
  for (std::size_t w = 0; w < windows; ++w) {
    // Even spread, first window at 0, last ending at n: offsets are a
    // pure function of (n, w), never of timing.
    const std::size_t offset =
        windows == 1 ? 0 : (n - window) * w / (windows - 1);
    const std::byte* p = payload.data() + offset;
    for (std::size_t i = 0; i < window; ++i) {
      ++hist[static_cast<std::uint8_t>(p[i])];
    }
    sampled += window;
    if (window >= 4) {
      for (std::size_t i = 0; i + 4 <= window; i += 4) {
        const std::uint32_t gram = load32(p + i);
        const std::uint32_t slot =
            (gram * 2654435761u) >> (32 - kTableBits);
        hits += table[slot] == gram ? 1 : 0;
        table[slot] = gram;
        ++grams;
      }
    }
  }

  double entropy = 0.0;
  if (sampled > 0) {
    const double inv = 1.0 / static_cast<double>(sampled);
    for (const std::uint32_t c : hist) {
      if (c == 0) continue;
      const double p = static_cast<double>(c) * inv;
      entropy -= p * std::log2(p);
    }
  }
  const double match =
      grams == 0 ? 0.0
                 : static_cast<double>(hits) / static_cast<double>(grams);
  if (stats) {
    stats->entropy_bits = entropy;
    stats->match_fraction = match;
    stats->sampled_bytes = sampled;
  }

  // Thresholds: near-uniform bytes with no short-range repeats are not
  // worth a match finder's time; strong structure pays for the entropy
  // coder; the middle ground takes the balanced default.
  if (entropy > 7.2 && match < 0.05) return codec_candidate(1);
  if (entropy < 5.5 || match > 0.35) return codec_candidate(2);
  return codec_candidate(0);
}

}  // namespace ndpcr::compress
