#include "compress/xz_style.hpp"

#include <algorithm>
#include <bit>
#include <memory>

#include "compress/kernels.hpp"
#include "compress/matcher.hpp"
#include "compress/range_coder.hpp"
#include "compress/scratch.hpp"

namespace ndpcr::compress {
namespace {

constexpr std::uint32_t kMinMatch = 3;
constexpr std::uint32_t kMaxMatch = 273;
constexpr std::uint32_t kWindow = 1u << 22;  // 4 MiB
constexpr int kLiteralContexts = 8;          // previous byte >> 5

std::uint32_t chain_depth_for_level(int level) {
  // Deep searches even at level 1: nxz is the "slow but strong" codec.
  return 24u << std::min(level - 1, 5);
}

// Probability model shared by encoder and decoder construction. Large
// (the literal trees dominate), so heap-allocated by the codec entry
// points rather than kept per call frame.
struct Model {
  BitProb is_match;
  BitTree<8> literal[kLiteralContexts];
  // Length coding: choice bits select 8 / 16 / 247 buckets.
  BitProb len_choice1;
  BitProb len_choice2;
  BitTree<3> len_low;
  BitTree<4> len_mid;
  BitTree<8> len_high;
  BitTree<6> dist_slot;
};

void encode_length(RangeEncoder& rc, Model& m, std::uint32_t len) {
  std::uint32_t l = len - kMinMatch;  // 0..270
  if (l < 8) {
    rc.encode_bit(m.len_choice1, 0);
    m.len_low.encode(rc, l);
  } else if (l < 8 + 16) {
    rc.encode_bit(m.len_choice1, 1);
    rc.encode_bit(m.len_choice2, 0);
    m.len_mid.encode(rc, l - 8);
  } else {
    rc.encode_bit(m.len_choice1, 1);
    rc.encode_bit(m.len_choice2, 1);
    m.len_high.encode(rc, l - 24);
  }
}

std::uint32_t decode_length(RangeDecoder& rc, Model& m) {
  if (rc.decode_bit(m.len_choice1) == 0) {
    return kMinMatch + m.len_low.decode(rc);
  }
  if (rc.decode_bit(m.len_choice2) == 0) {
    return kMinMatch + 8 + m.len_mid.decode(rc);
  }
  return kMinMatch + 24 + m.len_high.decode(rc);
}

// LZMA-style distance slots over the zero-based distance d = distance - 1:
// slots 0-3 are the distances themselves; above that the slot encodes the
// bit length and one extra significant bit, with the remainder sent as
// direct bits.
std::uint32_t distance_slot(std::uint32_t d) {
  if (d < 4) return d;
  const int bits = 32 - std::countl_zero(d);  // position of the MSB, 1-based
  return static_cast<std::uint32_t>(2 * (bits - 1) + ((d >> (bits - 2)) & 1));
}

void encode_distance(RangeEncoder& rc, Model& m, std::uint32_t distance) {
  const std::uint32_t d = distance - 1;
  const std::uint32_t slot = distance_slot(d);
  m.dist_slot.encode(rc, slot);
  if (slot >= 4) {
    const int direct = static_cast<int>(slot / 2 - 1);
    const std::uint32_t base = (2u | (slot & 1u)) << direct;
    rc.encode_direct(d - base, direct);
  }
}

std::uint32_t decode_distance(RangeDecoder& rc, Model& m) {
  const std::uint32_t slot = m.dist_slot.decode(rc);
  if (slot < 4) return slot + 1;
  const int direct = static_cast<int>(slot / 2 - 1);
  const std::uint32_t base = (2u | (slot & 1u)) << direct;
  return base + rc.decode_direct(direct) + 1;
}

}  // namespace

XzStyleCodec::XzStyleCodec(int level) : level_(level) {
  if (level < 1 || level > 9) {
    throw CodecError("nxz level must be in [1, 9]");
  }
}

void XzStyleCodec::compress_payload(ByteSpan input, Bytes& out,
                                    CodecScratch& scratch) const {
  auto model = std::make_unique<Model>();
  RangeEncoder rc(out);
  // Lazy matching probes find(pos + 1) before committing pos, so find and
  // insert must stay split (no find_and_insert here).
  MatchFinder finder(input, kWindow, kMinMatch, kMaxMatch,
                     chain_depth_for_level(level_), scratch.match_head,
                     scratch.match_prev);

  std::size_t pos = 0;
  std::uint8_t prev_byte = 0;
  while (pos < input.size()) {
    Match m = finder.find(pos);
    if (m.length >= kMinMatch && m.length < kMaxMatch &&
        pos + 1 < input.size()) {
      // Lazy matching: prefer a longer match starting one byte later.
      const Match next = finder.find(pos + 1);
      if (next.length > m.length) m.length = 0;
    }
    if (m.length >= kMinMatch) {
      rc.encode_bit(model->is_match, 1);
      encode_length(rc, *model, m.length);
      encode_distance(rc, *model, m.distance);
      const std::size_t end = pos + m.length;
      for (std::size_t p = pos; p < end; ++p) finder.insert(p);
      pos = end;
      prev_byte = static_cast<std::uint8_t>(input[pos - 1]);
    } else {
      rc.encode_bit(model->is_match, 0);
      const auto byte = static_cast<std::uint8_t>(input[pos]);
      model->literal[prev_byte >> 5].encode(rc, byte);
      finder.insert(pos);
      ++pos;
      prev_byte = byte;
    }
  }
  rc.finish();
}

std::size_t XzStyleCodec::decompress_payload(ByteSpan payload, std::byte* dst,
                                             std::size_t original_size,
                                             CodecScratch&) const {
  if (original_size == 0) return 0;
  auto model = std::make_unique<Model>();
  RangeDecoder rc(payload);
  std::size_t written = 0;
  std::uint8_t prev_byte = 0;
  while (written < original_size) {
    if (rc.overrun() > 16) {
      // Only the 5-byte flush slack may legitimately read past the end; a
      // persistent overrun means the declared size or the stream is
      // corrupt (and decoding zero padding would otherwise never stop).
      throw CodecError("nxz stream exhausted before declared size");
    }
    if (rc.decode_bit(model->is_match) == 0) {
      const std::uint32_t byte = model->literal[prev_byte >> 5].decode(rc);
      dst[written++] = static_cast<std::byte>(byte);
      prev_byte = static_cast<std::uint8_t>(byte);
    } else {
      const std::uint32_t len = decode_length(rc, *model);
      const std::uint32_t distance = decode_distance(rc, *model);
      if (distance == 0 || distance > written) {
        throw CodecError("invalid nxz match distance");
      }
      if (len > original_size - written) {
        throw CodecError("nxz match overflows declared size");
      }
      copy_match(dst + written, distance, len);
      written += len;
      prev_byte = static_cast<std::uint8_t>(dst[written - 1]);
    }
  }
  return written;
}

}  // namespace ndpcr::compress
