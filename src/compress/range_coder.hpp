#pragma once

// Adaptive binary range coder in the LZMA style: 32-bit range, 11-bit
// adaptive bit probabilities with shift-5 update, carry-propagating
// encoder. Used by the nxz codec.

#include <cstdint>

#include "common/bytes.hpp"
#include "compress/codec.hpp"

namespace ndpcr::compress {

// Adaptive probability of a zero bit, in [1, 2047] out of 2048.
struct BitProb {
  std::uint16_t p = 1024;
};

class RangeEncoder {
 public:
  explicit RangeEncoder(Bytes& out) : out_(out) {}

  void encode_bit(BitProb& prob, std::uint32_t bit) {
    const std::uint32_t bound = (range_ >> 11) * prob.p;
    if (bit == 0) {
      range_ = bound;
      prob.p += (2048 - prob.p) >> 5;
    } else {
      low_ += bound;
      range_ -= bound;
      prob.p -= prob.p >> 5;
    }
    while (range_ < (1u << 24)) {
      shift_low();
      range_ <<= 8;
    }
  }

  // Encode `count` equiprobable bits of `value`, MSB first.
  void encode_direct(std::uint32_t value, int count) {
    for (int i = count - 1; i >= 0; --i) {
      range_ >>= 1;
      if ((value >> i) & 1u) low_ += range_;
      while (range_ < (1u << 24)) {
        shift_low();
        range_ <<= 8;
      }
    }
  }

  // Must be called exactly once; emits the remaining low bytes.
  void finish() {
    for (int i = 0; i < 5; ++i) shift_low();
  }

 private:
  void shift_low() {
    if (static_cast<std::uint32_t>(low_) < 0xFF000000u || (low_ >> 32) != 0) {
      std::uint8_t carry = static_cast<std::uint8_t>(low_ >> 32);
      std::uint8_t byte = cache_;
      do {
        out_.push_back(static_cast<std::byte>(byte + carry));
        byte = 0xFF;
      } while (--cache_size_ != 0);
      cache_ = static_cast<std::uint8_t>(low_ >> 24);
    }
    ++cache_size_;
    low_ = (low_ & 0x00FFFFFFu) << 8;
  }

  Bytes& out_;
  std::uint64_t low_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
  std::uint8_t cache_ = 0;
  std::uint64_t cache_size_ = 1;
};

class RangeDecoder {
 public:
  explicit RangeDecoder(ByteSpan data) : data_(data) {
    // The first emitted byte is always 0 (the initial cache); skip it and
    // load 4 code bytes.
    next_byte();
    for (int i = 0; i < 4; ++i) code_ = (code_ << 8) | next_byte();
  }

  std::uint32_t decode_bit(BitProb& prob) {
    const std::uint32_t bound = (range_ >> 11) * prob.p;
    std::uint32_t bit;
    if (code_ < bound) {
      range_ = bound;
      prob.p += (2048 - prob.p) >> 5;
      bit = 0;
    } else {
      code_ -= bound;
      range_ -= bound;
      prob.p -= prob.p >> 5;
      bit = 1;
    }
    while (range_ < (1u << 24)) {
      range_ <<= 8;
      code_ = (code_ << 8) | next_byte();
    }
    return bit;
  }

  std::uint32_t decode_direct(int count) {
    std::uint32_t value = 0;
    for (int i = 0; i < count; ++i) {
      range_ >>= 1;
      std::uint32_t bit = 0;
      if (code_ >= range_) {
        code_ -= range_;
        bit = 1;
      }
      value = (value << 1) | bit;
      while (range_ < (1u << 24)) {
        range_ <<= 8;
        code_ = (code_ << 8) | next_byte();
      }
    }
    return value;
  }

  // Bytes consumed past the end of the input. A well-formed stream never
  // overruns by more than the coder's 5-byte flush slack; a corrupted
  // declared size would otherwise make the decoder spin on zero padding
  // until memory runs out, so callers must bound this.
  [[nodiscard]] std::size_t overrun() const { return overrun_; }

 private:
  std::uint32_t next_byte() {
    if (pos_ >= data_.size()) {
      ++overrun_;
      return 0;
    }
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  ByteSpan data_;
  std::size_t pos_ = 0;
  std::size_t overrun_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
  std::uint32_t code_ = 0;
};

// Fixed-size binary tree of adaptive bits coding an m-bit symbol MSB-first,
// as in LZMA's bit-tree coders.
template <int Bits>
class BitTree {
 public:
  void encode(RangeEncoder& rc, std::uint32_t symbol) {
    std::uint32_t node = 1;
    for (int i = Bits - 1; i >= 0; --i) {
      const std::uint32_t bit = (symbol >> i) & 1u;
      rc.encode_bit(probs_[node], bit);
      node = (node << 1) | bit;
    }
  }

  std::uint32_t decode(RangeDecoder& rc) {
    std::uint32_t node = 1;
    for (int i = 0; i < Bits; ++i) {
      node = (node << 1) | rc.decode_bit(probs_[node]);
    }
    return node - (1u << Bits);
  }

 private:
  BitProb probs_[std::size_t{1} << Bits];
};

}  // namespace ndpcr::compress
