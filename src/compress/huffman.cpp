#include "compress/huffman.hpp"

#include <algorithm>
#include <numeric>

namespace ndpcr::compress {
namespace {

// Bit-reverse the low `bits` bits of `code`.
std::uint32_t reverse_bits(std::uint32_t code, int bits) {
  std::uint32_t out = 0;
  for (int i = 0; i < bits; ++i) {
    out = (out << 1) | (code & 1u);
    code >>= 1;
  }
  return out;
}

}  // namespace

std::vector<std::uint8_t> huffman_code_lengths(
    const std::vector<std::uint64_t>& freqs, int max_bits) {
  const std::size_t n = freqs.size();
  std::vector<std::uint8_t> lengths(n, 0);

  std::vector<std::uint32_t> active;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (freqs[i] > 0) active.push_back(i);
  }
  if (active.empty()) return lengths;
  if (active.size() == 1) {
    lengths[active[0]] = 1;
    return lengths;
  }
  if ((1u << max_bits) < active.size()) {
    throw CodecError("alphabet too large for the code length limit");
  }

  // Package-merge. Coins are (weight, covered-symbols) pairs; at each of
  // max_bits levels we merge pairs from the previous level with the
  // original symbol coins, keeping lists sorted by weight. After the final
  // level, the first 2*(k-1) items of the list determine code lengths: each
  // time a symbol appears in a selected package its length increases by 1.
  struct Coin {
    std::uint64_t weight;
    std::vector<std::uint32_t> symbols;
  };

  std::vector<Coin> symbol_coins;
  symbol_coins.reserve(active.size());
  for (auto s : active) {
    symbol_coins.push_back({freqs[s], {s}});
  }
  std::sort(symbol_coins.begin(), symbol_coins.end(),
            [](const Coin& a, const Coin& b) { return a.weight < b.weight; });

  std::vector<Coin> prev;  // packages from the previous level
  for (int level = 0; level < max_bits; ++level) {
    // Merge symbol coins with previous-level packages (both sorted).
    std::vector<Coin> merged;
    merged.reserve(symbol_coins.size() + prev.size());
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < symbol_coins.size() || j < prev.size()) {
      const bool take_symbol =
          j >= prev.size() ||
          (i < symbol_coins.size() &&
           symbol_coins[i].weight <= prev[j].weight);
      merged.push_back(take_symbol ? symbol_coins[i++] : std::move(prev[j++]));
    }
    if (level + 1 == max_bits) {
      // Select the cheapest 2*(k-1) coins of the final row.
      const std::size_t take = 2 * (active.size() - 1);
      for (std::size_t t = 0; t < take && t < merged.size(); ++t) {
        for (auto s : merged[t].symbols) ++lengths[s];
      }
      break;
    }
    // Package pairs for the next level.
    prev.clear();
    for (std::size_t t = 0; t + 1 < merged.size(); t += 2) {
      Coin pkg;
      pkg.weight = merged[t].weight + merged[t + 1].weight;
      pkg.symbols = std::move(merged[t].symbols);
      pkg.symbols.insert(pkg.symbols.end(), merged[t + 1].symbols.begin(),
                         merged[t + 1].symbols.end());
      prev.push_back(std::move(pkg));
    }
  }
  return lengths;
}

std::vector<std::uint32_t> canonical_codes(
    const std::vector<std::uint8_t>& lengths) {
  int max_len = 0;
  for (auto l : lengths) max_len = std::max(max_len, static_cast<int>(l));

  std::vector<std::uint32_t> count(max_len + 1, 0);
  for (auto l : lengths) {
    if (l > 0) ++count[l];
  }
  std::vector<std::uint32_t> next(max_len + 1, 0);
  std::uint32_t code = 0;
  for (int len = 1; len <= max_len; ++len) {
    code = (code + count[len - 1]) << 1;
    next[len] = code;
  }
  std::vector<std::uint32_t> codes(lengths.size(), 0);
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] > 0) {
      codes[s] = reverse_bits(next[lengths[s]]++, lengths[s]);
    }
  }
  return codes;
}

HuffmanEncoder::HuffmanEncoder(const std::vector<std::uint8_t>& lengths)
    : lengths_(lengths), codes_(canonical_codes(lengths)) {}

void HuffmanDecoder::init(const std::vector<std::uint8_t>& lengths) {
  max_len_ = 1;
  for (auto l : lengths) max_len_ = std::max(max_len_, static_cast<int>(l));
  if (max_len_ > kMaxHuffmanBits) {
    throw CodecError("Huffman code length exceeds limit");
  }

  // Validate the Kraft sum for multi-symbol codes.
  std::uint64_t kraft = 0;
  std::size_t coded = 0;
  for (auto l : lengths) {
    if (l > 0) {
      kraft += 1ull << (max_len_ - l);
      ++coded;
    }
  }
  root_bits_ = std::min(kRootBits, max_len_);
  root_mask_ = (1u << root_bits_) - 1u;
  sub_.clear();
  if (coded == 0) {
    // An empty table is legal to build (e.g. the distance table of a block
    // with no matches); decode() will reject any read through it.
    max_len_ = 1;
    root_bits_ = 1;
    root_mask_ = 1;
    root_.assign(2, Entry{});
    return;
  }
  if (coded > 1 && kraft != (1ull << max_len_)) {
    throw CodecError("invalid Huffman code length table");
  }

  const auto codes = canonical_codes(lengths);
  root_.assign(std::size_t{1} << root_bits_, Entry{});

  // Codes that fit the root resolve in one lookup: fill every root slot
  // whose low `len` bits match the (bit-reversed) code.
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    const int len = lengths[s];
    if (len == 0 || len > root_bits_) continue;
    const std::size_t step = std::size_t{1} << len;
    for (std::size_t w = codes[s]; w < root_.size(); w += step) {
      root_[w] = Entry{static_cast<std::uint16_t>(s),
                       static_cast<std::uint8_t>(len), 0};
    }
  }
  if (max_len_ <= root_bits_) return;

  // Longer codes share a root slot per low-root_bits_ prefix; each such
  // prefix gets a contiguous sub-table indexed by the next
  // (bucket max length - root_bits_) bits.
  bucket_bits_.assign(root_.size(), 0);
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    const int len = lengths[s];
    if (len <= root_bits_) continue;
    const std::uint32_t prefix = codes[s] & root_mask_;
    bucket_bits_[prefix] = std::max<std::uint8_t>(
        bucket_bits_[prefix], static_cast<std::uint8_t>(len - root_bits_));
  }
  for (std::size_t prefix = 0; prefix < bucket_bits_.size(); ++prefix) {
    if (bucket_bits_[prefix] == 0) continue;
    // Offsets fit u16: buckets hold at most 2^(15-10) entries and the
    // alphabets here stay well under 2^10 long codes.
    const std::size_t offset = sub_.size();
    sub_.resize(offset + (std::size_t{1} << bucket_bits_[prefix]), Entry{});
    root_[prefix] = Entry{static_cast<std::uint16_t>(offset), kSubTable,
                          bucket_bits_[prefix]};
  }
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    const int len = lengths[s];
    if (len <= root_bits_) continue;
    const Entry& slot = root_[codes[s] & root_mask_];
    const std::uint32_t high = codes[s] >> root_bits_;
    const std::size_t step = std::size_t{1} << (len - root_bits_);
    const std::size_t size = std::size_t{1} << slot.sub_bits;
    for (std::size_t w = high; w < size; w += step) {
      sub_[slot.symbol + w] = Entry{static_cast<std::uint16_t>(s),
                                    static_cast<std::uint8_t>(len), 0};
    }
  }
}

}  // namespace ndpcr::compress
