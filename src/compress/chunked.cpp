#include "compress/chunked.hpp"

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "compress/lz4_style.hpp"
#include "exec/task_pool.hpp"

namespace ndpcr::compress {
namespace {

constexpr std::uint32_t kMagic = 0x4E44434B;  // "NDCK"
constexpr std::size_t kHeaderSize = 4 + 1 + 1 + 4 + 8;

// Run `work(i)` for i in [0, count) on up to `threads` workers. Exceptions
// from workers are rethrown on the caller thread (first one wins).
template <typename Fn>
void parallel_for(std::size_t count, unsigned threads, Fn&& work) {
  if (threads <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) work(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count || failed.load(std::memory_order_relaxed)) return;
      try {
        work(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::jthread> pool;
  const unsigned n = std::min<unsigned>(threads, static_cast<unsigned>(count));
  pool.reserve(n);
  for (unsigned w = 0; w < n; ++w) pool.emplace_back(worker);
  pool.clear();  // join
  if (error) std::rethrow_exception(error);
}

}  // namespace

ChunkedCodec::ChunkedCodec(CodecId id, int level, std::size_t chunk_size,
                           unsigned threads, bool accelerate)
    : id_(id),
      level_(level),
      chunk_size_(chunk_size),
      threads_(threads),
      codec_(make_codec(id, level)),  // validates id/level eagerly
      scratch_(std::make_unique<ScratchPool>()) {
  if (chunk_size == 0) {
    throw CodecError("chunk size must be positive");
  }
  if (accelerate) {
    if (id != CodecId::kLz4Style) {
      throw CodecError("acceleration is only available for nlz4");
    }
    codec_ = std::make_unique<Lz4StyleCodec>(level, /*accelerate=*/true);
  }
}

void ChunkedCodec::warm(std::size_t count) const { scratch_->warm(count); }

std::size_t ChunkedCodec::chunk_count(std::size_t input_size) const {
  return input_size == 0 ? 0 : (input_size + chunk_size_ - 1) / chunk_size_;
}

std::pair<std::size_t, std::size_t> ChunkedCodec::chunk_extent(
    std::size_t input_size, std::size_t index) const {
  const std::size_t offset = index * chunk_size_;
  if (offset >= input_size) {
    throw CodecError("chunk index out of range");
  }
  return {offset, std::min(chunk_size_, input_size - offset)};
}

Bytes ChunkedCodec::compress_chunk(ByteSpan input, std::size_t index) const {
  // Codecs are stateless across calls; all per-call mutable state lives in
  // the leased workspace, so concurrent callers stay fully independent.
  const auto lease = scratch_->acquire();
  const auto [offset, len] = chunk_extent(input.size(), index);
  return codec_->compress(input.subspan(offset, len), *lease);
}

Bytes ChunkedCodec::assemble(std::size_t original_size,
                             const std::vector<Bytes>& chunks,
                             std::size_t first, std::size_t count) const {
  if (count == SIZE_MAX) count = chunks.size() - first;
  if (count != chunk_count(original_size)) {
    throw CodecError("chunk count does not match original size");
  }
  Bytes out;
  std::size_t total = header_bytes(count);
  for (std::size_t i = 0; i < count; ++i) total += chunks[first + i].size();
  out.reserve(total);
  append_le<std::uint32_t>(out, kMagic);
  out.push_back(static_cast<std::byte>(id_));
  out.push_back(static_cast<std::byte>(level_));
  append_le<std::uint32_t>(out, static_cast<std::uint32_t>(count));
  append_le<std::uint64_t>(out, original_size);
  for (std::size_t i = 0; i < count; ++i) {
    append_le<std::uint64_t>(out, chunks[first + i].size());
  }
  for (std::size_t i = 0; i < count; ++i) {
    const Bytes& c = chunks[first + i];
    out.insert(out.end(), c.begin(), c.end());
  }
  return out;
}

std::size_t ChunkedCodec::header_bytes(std::size_t chunk_count) {
  return kHeaderSize + chunk_count * 8;
}

std::optional<ChunkedCodec::Header> ChunkedCodec::peek(ByteSpan framed) {
  if (framed.size() < kHeaderSize) return std::nullopt;
  if (read_le<std::uint32_t>(framed, 0) != kMagic) return std::nullopt;
  const auto id_byte = static_cast<std::uint8_t>(framed[4]);
  if (id_byte > static_cast<std::uint8_t>(CodecId::kXzStyle)) {
    return std::nullopt;
  }
  Header h;
  h.id = static_cast<CodecId>(id_byte);
  h.level = static_cast<int>(static_cast<std::uint8_t>(framed[5]));
  h.chunk_count = read_le<std::uint32_t>(framed, 6);
  h.original_size = read_le<std::uint64_t>(framed, 10);
  return h;
}

Bytes ChunkedCodec::compress(ByteSpan input) const {
  const std::size_t chunks = chunk_count(input.size());
  std::vector<Bytes> compressed(chunks);

  // Inside an exec::TaskPool worker nested parallelism is rejected, so the
  // internal pool degrades to inline execution (same bytes either way).
  const unsigned threads = exec::TaskPool::in_worker() ? 1 : threads_;
  parallel_for(chunks, threads, [&](std::size_t i) {
    compressed[i] = compress_chunk(input, i);
  });

  return assemble(input.size(), compressed);
}

Bytes ChunkedCodec::decompress(ByteSpan framed) const {
  if (framed.size() < kHeaderSize) {
    throw CodecError("chunked stream truncated");
  }
  if (read_le<std::uint32_t>(framed, 0) != kMagic) {
    throw CodecError("not a chunked stream");
  }
  if (framed[4] != static_cast<std::byte>(id_)) {
    throw CodecError("chunked stream codec mismatch");
  }
  const auto chunks = read_le<std::uint32_t>(framed, 6);
  const auto original_size = read_le<std::uint64_t>(framed, 10);
  if (framed.size() < kHeaderSize + std::size_t{chunks} * 8) {
    throw CodecError("chunked stream truncated");
  }

  std::vector<std::pair<std::size_t, std::size_t>> extents(chunks);
  std::size_t offset = kHeaderSize + std::size_t{chunks} * 8;
  for (std::uint32_t i = 0; i < chunks; ++i) {
    const auto size = read_le<std::uint64_t>(framed, kHeaderSize + i * 8);
    if (offset + size > framed.size()) {
      throw CodecError("chunked stream truncated");
    }
    extents[i] = {offset, size};
    offset += size;
  }
  if (offset != framed.size()) {
    throw CodecError("trailing bytes in chunked stream");
  }

  // The chunk count doubles as a validator for the declared size: both
  // must agree before the output buffer is allocated eagerly, which also
  // bounds the allocation a corrupted header can request (the size table
  // already had to fit in the stream).
  if (chunks != chunk_count(original_size)) {
    throw CodecError("chunked stream size mismatch");
  }

  // Workers decode straight into their chunk's window of the final buffer:
  // no per-chunk output vectors and no serial reassembly copy.
  Bytes out(original_size);
  const unsigned threads = exec::TaskPool::in_worker() ? 1 : threads_;
  parallel_for(chunks, threads, [&](std::size_t i) {
    const auto [chunk_offset, chunk_len] = chunk_extent(original_size, i);
    const auto lease = scratch_->acquire();
    codec_->decompress_into(
        framed.subspan(extents[i].first, extents[i].second),
        out.data() + chunk_offset, chunk_len, *lease);
  });
  return out;
}

}  // namespace ndpcr::compress
