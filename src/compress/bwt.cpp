#include "compress/bwt.hpp"

#include <array>

#include "compress/codec.hpp"
#include "compress/suffix_array.hpp"

namespace ndpcr::compress {

BwtResult bwt_forward(ByteSpan block) {
  BwtResult result;
  const std::size_t n = block.size();
  if (n == 0) return result;

  const auto sa = suffix_array(block);
  result.data.reserve(n);
  // Conceptual rows of the sorted rotations of block+$: row 0 is the
  // sentinel suffix, whose last character is block[n-1]; row i (i >= 1)
  // corresponds to suffix sa[i-1], whose preceding character is the output
  // unless the suffix starts at 0 (that row precedes the sentinel, which is
  // removed and its position recorded).
  result.data.push_back(block[n - 1]);
  for (std::size_t i = 0; i < n; ++i) {
    if (sa[i] == 0) {
      result.primary_index = static_cast<std::uint32_t>(i + 1);
    } else {
      result.data.push_back(block[sa[i] - 1]);
    }
  }
  return result;
}

Bytes bwt_inverse(ByteSpan l_column, std::uint32_t primary_index) {
  Bytes out(l_column.size());
  std::vector<std::uint32_t> occ;
  bwt_inverse_into(l_column, primary_index, out.data(), occ);
  return out;
}

void bwt_inverse_into(ByteSpan l_column, std::uint32_t primary_index,
                      std::byte* out,
                      std::vector<std::uint32_t>& occ_scratch) {
  const std::size_t n = l_column.size();
  if (n == 0) return;
  if (primary_index > n || primary_index == 0) {
    throw CodecError("BWT primary index out of range");
  }

  // Reconstruct over the virtual column L' of length n+1 where
  // L'[primary_index] is the sentinel and the remaining rows are l_column
  // in order. LF(i) = C[c] + rank_c(i); the sentinel is the unique
  // smallest character.
  auto l_at = [&](std::size_t i) -> int {
    if (i == primary_index) return -1;  // sentinel
    return static_cast<int>(
        static_cast<std::uint8_t>(l_column[i - (i > primary_index)]));
  };

  // occ[i]: occurrences of L'[i] in L'[0..i); C[c]: rows whose last char is
  // smaller than c (sentinel contributes 1 to every byte's C).
  std::vector<std::uint32_t>& occ = occ_scratch;
  occ.resize(n + 1);
  std::array<std::uint32_t, 256> count{};
  for (std::size_t i = 0; i <= n; ++i) {
    const int c = l_at(i);
    if (c < 0) {
      occ[i] = 0;
    } else {
      occ[i] = count[static_cast<std::size_t>(c)]++;
    }
  }
  std::array<std::uint32_t, 256> c_below{};
  std::uint32_t running = 1;  // the sentinel row
  for (std::size_t c = 0; c < 256; ++c) {
    c_below[c] = running;
    running += count[c];
  }

  std::size_t row = 0;
  for (std::size_t k = n; k-- > 0;) {
    const int c = l_at(row);
    if (c < 0) {
      throw CodecError("corrupt BWT stream: premature sentinel");
    }
    out[k] = static_cast<std::byte>(c);
    row = c_below[static_cast<std::size_t>(c)] + occ[row];
  }
}

}  // namespace ndpcr::compress
