#include "compress/bzip_style.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <numeric>

#include "compress/bitstream.hpp"
#include "compress/bwt.hpp"
#include "compress/huffman.hpp"
#include "compress/scratch.hpp"

namespace ndpcr::compress {
namespace {

constexpr std::uint32_t kEob = 256;
constexpr std::size_t kAlphabet = 257;

// Move-to-front transform over the byte alphabet. The recency list is a
// flat 256-byte array: the symbol search is a memchr and the to-front
// rotation a memmove, both of which stay cheap because MTF output is
// front-loaded (typical indices are tiny after a BWT).
void mtf_forward(ByteSpan data, Bytes& out) {
  std::array<std::uint8_t, 256> order;
  std::iota(order.begin(), order.end(), 0);
  out.clear();
  out.reserve(data.size());
  for (std::byte b : data) {
    const auto value = static_cast<std::uint8_t>(b);
    const auto* hit = static_cast<const std::uint8_t*>(
        std::memchr(order.data(), value, order.size()));
    const auto idx = static_cast<std::size_t>(hit - order.data());
    out.push_back(static_cast<std::byte>(idx));
    std::memmove(order.data() + 1, order.data(), idx);
    order[0] = value;
  }
}

void mtf_inverse(ByteSpan data, Bytes& out) {
  std::array<std::uint8_t, 256> order;
  std::iota(order.begin(), order.end(), 0);
  out.clear();
  out.reserve(data.size());
  for (std::byte b : data) {
    const auto idx = static_cast<std::uint8_t>(b);
    const std::uint8_t value = order[idx];
    out.push_back(static_cast<std::byte>(value));
    std::memmove(order.data() + 1, order.data(), idx);
    order[0] = value;
  }
}

// 4-bit-chunk varint: 3 data bits + 1 continuation bit per chunk.
void write_runlen(BitWriter& bw, std::uint64_t value) {
  do {
    const std::uint32_t chunk = value & 0x7;
    value >>= 3;
    bw.write(chunk | (value ? 0x8 : 0x0), 4);
  } while (value);
}

std::uint64_t read_runlen(BitReader& br) {
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    const std::uint32_t chunk = br.read(4);
    value |= static_cast<std::uint64_t>(chunk & 0x7) << shift;
    if (!(chunk & 0x8)) break;
    shift += 3;
    if (shift > 60) throw CodecError("nbzip2 run length too large");
  }
  return value;
}

}  // namespace

BzipStyleCodec::BzipStyleCodec(int level) : level_(level) {
  if (level < 1 || level > 9) {
    throw CodecError("nbzip2 level must be in [1, 9]");
  }
}

void BzipStyleCodec::compress_payload(ByteSpan input, Bytes& out,
                                      CodecScratch& scratch) const {
  out.reserve(out.size() + input.size() / 2 + 64);
  BitWriter bw(out);
  std::size_t pos = 0;
  do {
    const std::size_t len = std::min(block_size(), input.size() - pos);
    const ByteSpan block = input.subspan(pos, len);
    pos += len;
    const bool final_block = pos == input.size();
    bw.write(final_block ? 1 : 0, 1);
    bw.write(static_cast<std::uint32_t>(len), 32);

    const BwtResult bwt = bwt_forward(block);
    bw.write(bwt.primary_index, 32);
    Bytes& mtf = scratch.staging;
    mtf_forward(bwt.data, mtf);

    // Symbol stream: MTF bytes with zero runs collapsed, plus EOB.
    // First pass: frequencies.
    std::vector<std::uint64_t> freq(kAlphabet, 0);
    freq[kEob] = 1;
    for (std::size_t i = 0; i < mtf.size();) {
      const auto v = static_cast<std::uint8_t>(mtf[i]);
      if (v == 0) {
        ++freq[0];
        while (i < mtf.size() && mtf[i] == std::byte{0}) ++i;
      } else {
        ++freq[v];
        ++i;
      }
    }
    const HuffmanEncoder enc(huffman_code_lengths(freq));
    for (auto l : enc.lengths()) bw.write(l, 4);

    // Second pass: emit.
    for (std::size_t i = 0; i < mtf.size();) {
      const auto v = static_cast<std::uint8_t>(mtf[i]);
      if (v == 0) {
        std::size_t run = 0;
        while (i < mtf.size() && mtf[i] == std::byte{0}) {
          ++run;
          ++i;
        }
        enc.encode(bw, 0);
        write_runlen(bw, run);
      } else {
        enc.encode(bw, v);
        ++i;
      }
    }
    enc.encode(bw, kEob);
  } while (pos < input.size());
  bw.finish();
}

std::size_t BzipStyleCodec::decompress_payload(ByteSpan payload,
                                               std::byte* dst,
                                               std::size_t original_size,
                                               CodecScratch& scratch) const {
  if (original_size == 0) return 0;
  BitReader br(payload);
  std::size_t written = 0;
  bool final_block = false;
  while (!final_block) {
    final_block = br.read(1) != 0;
    const std::uint32_t block_len = br.read(32);
    const std::uint32_t primary = br.read(32);
    if (block_len > 9 * 100'000) {
      // No level produces blocks beyond level 9's 900 kB; a larger value
      // is header corruption and must not drive allocations.
      throw CodecError("nbzip2 block length exceeds format maximum");
    }
    if (block_len > original_size - written) {
      throw CodecError("nbzip2 block overflows declared size");
    }

    std::vector<std::uint8_t>& lengths = scratch.code_lengths;
    lengths.resize(kAlphabet);
    for (auto& l : lengths) l = static_cast<std::uint8_t>(br.read(4));
    scratch.lit_decoder.init(lengths);

    Bytes& mtf = scratch.staging;
    mtf.clear();
    mtf.reserve(std::min<std::size_t>(block_len, 2 * block_size()));
    while (true) {
      const std::uint32_t sym = scratch.lit_decoder.decode(br);
      if (sym == kEob) break;
      if (sym == 0) {
        const std::uint64_t run = read_runlen(br);
        if (mtf.size() + run > block_len) {
          throw CodecError("nbzip2 zero run overflows block");
        }
        mtf.insert(mtf.end(), run, std::byte{0});
      } else {
        if (mtf.size() >= block_len) {
          throw CodecError("nbzip2 symbols overflow block");
        }
        mtf.push_back(static_cast<std::byte>(sym));
      }
    }
    if (mtf.size() != block_len) {
      throw CodecError("nbzip2 block length mismatch");
    }
    mtf_inverse(mtf, scratch.staging2);
    bwt_inverse_into(scratch.staging2, primary, dst + written,
                     scratch.u32_tmp);
    written += block_len;
  }
  return written;
}

}  // namespace ndpcr::compress
