#pragma once

// Canonical, length-limited Huffman coding shared by the DEFLATE-style and
// bzip2-style codecs.
//
// Code lengths are computed with the package-merge algorithm, which yields
// an optimal code under a maximum-length constraint (we use 15 bits, as
// DEFLATE does). Codes are canonical: within a length, codes are assigned
// in increasing symbol order, so only the lengths need to be serialized.

#include <cstdint>
#include <vector>

#include "compress/bitstream.hpp"

namespace ndpcr::compress {

inline constexpr int kMaxHuffmanBits = 15;

// Compute length-limited code lengths for the given symbol frequencies.
// Symbols with zero frequency get length 0 (no code). If only one symbol
// has nonzero frequency it is assigned length 1. Throws CodecError if the
// alphabet cannot be coded within max_bits (impossible for alphabets up to
// 2^15 symbols).
std::vector<std::uint8_t> huffman_code_lengths(
    const std::vector<std::uint64_t>& freqs, int max_bits = kMaxHuffmanBits);

// Canonical code assignment from lengths. codes[i] holds the code for
// symbol i, stored bit-reversed so it can be written LSB-first.
std::vector<std::uint32_t> canonical_codes(
    const std::vector<std::uint8_t>& lengths);

// Encoder: writes symbols through a BitWriter.
class HuffmanEncoder {
 public:
  explicit HuffmanEncoder(const std::vector<std::uint8_t>& lengths);

  void encode(BitWriter& out, std::uint32_t symbol) const {
    out.write(codes_[symbol], lengths_[symbol]);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& lengths() const {
    return lengths_;
  }

 private:
  std::vector<std::uint8_t> lengths_;
  std::vector<std::uint32_t> codes_;
};

// Two-level table decoder: codes up to kRootBits long resolve with one
// lookup of the peeked window; longer codes hit a root entry that points
// at a per-prefix sub-table indexed by the remaining bits. The root table
// is 1 KiB of entries instead of the 128 KiB a flat 15-bit table would
// need, so rebuilding it per block is cheap and it stays cache-resident.
class HuffmanDecoder {
 public:
  // A default-constructed decoder holds no tables; call init() before
  // decode(). This is the reusable-workspace path (CodecScratch): init()
  // rebuilds the tables in place without reallocating in steady state.
  HuffmanDecoder() = default;

  // Throws CodecError if the lengths do not describe a valid prefix code
  // (over- or under-subscribed Kraft sum), except for the degenerate cases
  // of zero or one coded symbol, which are handled like DEFLATE handles
  // them (a single symbol decodes on a 1-bit code).
  explicit HuffmanDecoder(const std::vector<std::uint8_t>& lengths) {
    init(lengths);
  }

  // (Re)build the decode tables for a new length table. Same validation
  // and error semantics as the constructor.
  void init(const std::vector<std::uint8_t>& lengths);

  std::uint32_t decode(BitReader& in) const {
    const std::uint32_t window = in.peek(max_len_);
    Entry e = root_[window & root_mask_];
    if (e.length == kSubTable) {
      e = sub_[e.symbol +
               ((window >> root_bits_) & ((1u << e.sub_bits) - 1u))];
    }
    if (e.length == 0) {
      throw CodecError("invalid Huffman code in stream");
    }
    in.consume(e.length);
    return e.symbol;
  }

 private:
  static constexpr int kRootBits = 10;
  static constexpr std::uint8_t kSubTable = 0xFF;  // length marker

  struct Entry {
    std::uint16_t symbol = 0;   // symbol, or offset into sub_
    std::uint8_t length = 0;    // code length; kSubTable marks a pointer
    std::uint8_t sub_bits = 0;  // index width of the pointed-to sub-table
  };
  int max_len_ = 1;
  int root_bits_ = 1;
  std::uint32_t root_mask_ = 1;
  std::vector<Entry> root_;
  std::vector<Entry> sub_;
  std::vector<std::uint8_t> bucket_bits_;
};

}  // namespace ndpcr::compress
