#pragma once

// Online codec selection for the checkpoint IO path (docs/PERF.md).
//
// The `study` grid measures the app x codec tradeoff offline; commits
// cannot afford that. This probe spends a few microseconds sampling the
// payload and picks a codec per region from a small closed candidate
// set:
//
//   - incompressible arrays (high byte entropy, no short-range repeats,
//     the FT-style random-phase state): accelerated nlz4 - near-memcpy
//     throughput, and a real compressor would not have won bytes anyway.
//   - repetitive / structured bytes (CSR index arrays, zero-padded
//     grids, low entropy or dense 4-gram repeats): ngzip at a real
//     level - the bytes are there to win and the entropy coder earns
//     its CPU.
//   - everything in between: plain nlz4 level 1, the balanced default.
//
// The decision is a pure function of the payload bytes (fixed-stride
// sampling, no clocks, no RNG), so a commit replays the same choice at
// any thread count and the stored stream stays deterministic. The chosen
// codec travels in the ChunkedCodec container header (ChunkedCodec::peek),
// so recovery needs no side channel.

#include <cstddef>

#include "compress/codec.hpp"

namespace ndpcr::compress {

// One candidate the probe can pick.
struct CodecChoice {
  CodecId id = CodecId::kLz4Style;
  int level = 1;
  bool accelerate = false;

  [[nodiscard]] bool operator==(const CodecChoice& o) const {
    return id == o.id && level == o.level && accelerate == o.accelerate;
  }
};

// The closed candidate set, in a fixed order callers can pre-instantiate
// (MultilevelManager builds one ChunkedCodec per entry up front so the
// commit path never allocates codec tables).
// [0] balanced: nlz4 level 1
// [1] incompressible: nlz4 level 1, accelerated
// [2] structured: ngzip level 6
constexpr std::size_t kCodecCandidates = 3;
CodecChoice codec_candidate(std::size_t index);

// What the probe measured; returned for tests/telemetry.
struct ProbeStats {
  double entropy_bits = 0.0;    // byte entropy of the sample, [0, 8]
  double match_fraction = 0.0;  // 4-gram repeat hits / grams hashed
  std::size_t sampled_bytes = 0;
};

// Pick a codec for `payload`. Deterministic: fixed-stride windows (at
// most ~64 KiB sampled), byte-histogram entropy, and a tiny 4-gram hash
// table for short-range repetition. `stats` (optional) receives the raw
// measurements.
CodecChoice choose_codec(ByteSpan payload, ProbeStats* stats = nullptr);

}  // namespace ndpcr::compress
