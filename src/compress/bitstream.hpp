#pragma once

// LSB-first bit-level I/O over byte buffers (the DEFLATE bit order). Shared
// by the Huffman-based codecs. Both sides buffer whole 32-bit words in a
// 64-bit accumulator instead of shuffling single bytes through it; the byte
// streams produced/consumed are identical to the byte-at-a-time versions.

#include <bit>
#include <cstdint>
#include <cstring>

#include "common/bytes.hpp"
#include "compress/codec.hpp"

namespace ndpcr::compress {

class BitWriter {
 public:
  explicit BitWriter(Bytes& out) : out_(out) {}

  // Write the low `count` bits of `bits`, LSB first. count in [0, 32].
  void write(std::uint32_t bits, int count) {
    acc_ |= static_cast<std::uint64_t>(bits & mask(count)) << filled_;
    filled_ += count;
    // filled_ was <= 31 on entry and count <= 32, so at most one whole
    // word is ready; flush it in one resize instead of a push_back loop.
    if (filled_ >= 32) {
      const auto word = static_cast<std::uint32_t>(acc_);
      const std::size_t n = out_.size();
      out_.resize(n + 4);
      out_[n] = static_cast<std::byte>(word & 0xFF);
      out_[n + 1] = static_cast<std::byte>((word >> 8) & 0xFF);
      out_[n + 2] = static_cast<std::byte>((word >> 16) & 0xFF);
      out_[n + 3] = static_cast<std::byte>((word >> 24) & 0xFF);
      acc_ >>= 32;
      filled_ -= 32;
    }
  }

  // Flush remaining whole and partial bytes (zero padded). Call exactly
  // once at the end.
  void finish() {
    while (filled_ > 0) {
      out_.push_back(static_cast<std::byte>(acc_ & 0xFF));
      acc_ >>= 8;
      filled_ -= 8;
    }
    acc_ = 0;
    filled_ = 0;
  }

 private:
  static std::uint32_t mask(int count) {
    return count >= 32 ? 0xFFFFFFFFu : ((1u << count) - 1u);
  }
  Bytes& out_;
  std::uint64_t acc_ = 0;
  int filled_ = 0;
};

class BitReader {
 public:
  explicit BitReader(ByteSpan data) : data_(data) {}

  // Read `count` bits, LSB first. Throws CodecError past end of stream.
  std::uint32_t read(int count) {
    if (filled_ < count) {
      refill(count);
      if (filled_ < count) {
        throw CodecError("bit stream truncated");
      }
    }
    const auto bits = static_cast<std::uint32_t>(
        acc_ & (count >= 32 ? ~0ull : ((1ull << count) - 1)));
    acc_ >>= count;
    filled_ -= count;
    return bits;
  }

  std::uint32_t read_bit() { return read(1); }

  // Peek up to `count` bits without consuming; missing tail bits read as 0
  // (needed by table-based Huffman decoding near end of stream).
  std::uint32_t peek(int count) {
    if (filled_ < count) refill(count);
    return static_cast<std::uint32_t>(
        acc_ & (count >= 32 ? ~0ull : ((1ull << count) - 1)));
  }

  // Consume `count` bits previously peeked. Throws if fewer are buffered.
  void consume(int count) {
    if (filled_ < count) {
      throw CodecError("bit stream truncated");
    }
    acc_ >>= count;
    filled_ -= count;
  }

 private:
  // Top the accumulator up to at least `count` bits. While 8+ input bytes
  // remain this is a single branchless 64-bit load: OR the next word in
  // above the buffered bits, then count only the whole bytes that fit
  // (pos_ advances by (63 - filled_) / 8 and filled_ jumps to 56..63). The
  // word's top bytes fall off the shift uncounted, but pos_ still points at
  // them, so the next refill re-ORs the identical bits - the accumulator
  // bits above filled_ always mirror the stream bytes at pos_. The tail
  // (< 8 bytes left) goes byte-wise, preserving peek()'s read-as-zero
  // semantics past the end. count <= 32 and filled_ < count on entry.
  void refill(int count) {
    if (data_.size() - pos_ >= 8) {
      std::uint64_t word;
      std::memcpy(&word, data_.data() + pos_, 8);
      if constexpr (std::endian::native == std::endian::big) {
        word = __builtin_bswap64(word);
      }
      acc_ |= word << filled_;
      pos_ += static_cast<std::size_t>(63 - filled_) >> 3;
      filled_ |= 56;
      return;
    }
    while (filled_ < count && pos_ < data_.size()) {
      acc_ |= static_cast<std::uint64_t>(
                  static_cast<std::uint8_t>(data_[pos_++]))
              << filled_;
      filled_ += 8;
    }
  }

  ByteSpan data_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  int filled_ = 0;
};

}  // namespace ndpcr::compress
