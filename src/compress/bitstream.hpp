#pragma once

// LSB-first bit-level I/O over byte buffers (the DEFLATE bit order). Shared
// by the Huffman-based codecs.

#include <cstdint>

#include "common/bytes.hpp"
#include "compress/codec.hpp"

namespace ndpcr::compress {

class BitWriter {
 public:
  explicit BitWriter(Bytes& out) : out_(out) {}

  // Write the low `count` bits of `bits`, LSB first. count in [0, 32].
  void write(std::uint32_t bits, int count) {
    acc_ |= static_cast<std::uint64_t>(bits & mask(count)) << filled_;
    filled_ += count;
    while (filled_ >= 8) {
      out_.push_back(static_cast<std::byte>(acc_ & 0xFF));
      acc_ >>= 8;
      filled_ -= 8;
    }
  }

  // Flush any partial byte (zero padded). Call exactly once at the end.
  void finish() {
    if (filled_ > 0) {
      out_.push_back(static_cast<std::byte>(acc_ & 0xFF));
      acc_ = 0;
      filled_ = 0;
    }
  }

 private:
  static std::uint32_t mask(int count) {
    return count >= 32 ? 0xFFFFFFFFu : ((1u << count) - 1u);
  }
  Bytes& out_;
  std::uint64_t acc_ = 0;
  int filled_ = 0;
};

class BitReader {
 public:
  explicit BitReader(ByteSpan data) : data_(data) {}

  // Read `count` bits, LSB first. Throws CodecError past end of stream.
  std::uint32_t read(int count) {
    while (filled_ < count) {
      if (pos_ >= data_.size()) {
        throw CodecError("bit stream truncated");
      }
      acc_ |= static_cast<std::uint64_t>(
                  static_cast<std::uint8_t>(data_[pos_++]))
              << filled_;
      filled_ += 8;
    }
    const auto bits = static_cast<std::uint32_t>(
        acc_ & (count >= 32 ? ~0ull : ((1ull << count) - 1)));
    acc_ >>= count;
    filled_ -= count;
    return bits;
  }

  std::uint32_t read_bit() { return read(1); }

  // Peek up to `count` bits without consuming; missing tail bits read as 0
  // (needed by table-based Huffman decoding near end of stream).
  std::uint32_t peek(int count) {
    while (filled_ < count && pos_ < data_.size()) {
      acc_ |= static_cast<std::uint64_t>(
                  static_cast<std::uint8_t>(data_[pos_++]))
              << filled_;
      filled_ += 8;
    }
    return static_cast<std::uint32_t>(
        acc_ & (count >= 32 ? ~0ull : ((1ull << count) - 1)));
  }

  // Consume `count` bits previously peeked. Throws if fewer are buffered.
  void consume(int count) {
    if (filled_ < count) {
      throw CodecError("bit stream truncated");
    }
    acc_ >>= count;
    filled_ -= count;
  }

 private:
  ByteSpan data_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  int filled_ = 0;
};

}  // namespace ndpcr::compress
