#include "compress/bzip_style.hpp"
#include "compress/codec.hpp"
#include "compress/deflate_style.hpp"
#include "compress/lz4_style.hpp"
#include "compress/simple_codecs.hpp"
#include "compress/xz_style.hpp"

namespace ndpcr::compress {

std::unique_ptr<Codec> make_codec(CodecId id, int level) {
  switch (id) {
    case CodecId::kNull:
      return std::make_unique<NullCodec>();
    case CodecId::kRle:
      return std::make_unique<RleCodec>();
    case CodecId::kLz4Style:
      return std::make_unique<Lz4StyleCodec>(level);
    case CodecId::kDeflateStyle:
      return std::make_unique<DeflateStyleCodec>(level);
    case CodecId::kBzipStyle:
      return std::make_unique<BzipStyleCodec>(level);
    case CodecId::kXzStyle:
      return std::make_unique<XzStyleCodec>(level);
  }
  throw CodecError("unknown codec id");
}

std::unique_ptr<Codec> make_codec(const std::string& name, int level) {
  if (name == "null") return make_codec(CodecId::kNull, level);
  if (name == "rle") return make_codec(CodecId::kRle, level);
  if (name == "nlz4") return make_codec(CodecId::kLz4Style, level);
  if (name == "ngzip") return make_codec(CodecId::kDeflateStyle, level);
  if (name == "nbzip2") return make_codec(CodecId::kBzipStyle, level);
  if (name == "nxz") return make_codec(CodecId::kXzStyle, level);
  throw CodecError("unknown codec name: " + name);
}

std::vector<CodecSpec> paper_codec_suite() {
  return {
      {CodecId::kDeflateStyle, 1, "ngzip(1)"},
      {CodecId::kDeflateStyle, 6, "ngzip(6)"},
      {CodecId::kBzipStyle, 1, "nbzip2(1)"},
      {CodecId::kBzipStyle, 9, "nbzip2(9)"},
      {CodecId::kXzStyle, 1, "nxz(1)"},
      {CodecId::kXzStyle, 6, "nxz(6)"},
      {CodecId::kLz4Style, 1, "nlz4(1)"},
  };
}

}  // namespace ndpcr::compress
