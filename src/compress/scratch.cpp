#include "compress/scratch.hpp"

namespace ndpcr::compress {

void ScratchPool::warm(std::size_t count) {
  const std::lock_guard<std::mutex> lock(mutex_);
  while (free_.size() < count) {
    free_.push_back(std::make_unique<CodecScratch>());
  }
}

std::unique_ptr<CodecScratch> ScratchPool::take() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      auto scratch = std::move(free_.back());
      free_.pop_back();
      return scratch;
    }
  }
  return std::make_unique<CodecScratch>();
}

void ScratchPool::give(std::unique_ptr<CodecScratch> scratch) {
  const std::lock_guard<std::mutex> lock(mutex_);
  free_.push_back(std::move(scratch));
}

}  // namespace ndpcr::compress
