#pragma once

// nbzip2: block-sorting compressor in the bzip2 family.
//
// Pipeline per block: BWT (suffix-array based) -> move-to-front ->
// zero-run-length coding -> canonical Huffman. The block size is
// level * 100 kB, exactly bzip2's level semantics, which is where its
// speed/ratio trade-off lives.
//
// Block payload layout (bit stream, LSB first):
//   final-block flag (1 bit)
//   block length (32 bits) and BWT primary index (32 bits)
//   257 Huffman code lengths (4 bits each; symbol 256 = end of block)
//   Huffman-coded MTF symbols; symbol 0 is followed by a 4-bit-chunk
//   varint zero-run length.

#include "compress/codec.hpp"

namespace ndpcr::compress {

class BzipStyleCodec final : public Codec {
 public:
  explicit BzipStyleCodec(int level);

  [[nodiscard]] std::string name() const override { return "nbzip2"; }
  [[nodiscard]] CodecId id() const override { return CodecId::kBzipStyle; }
  [[nodiscard]] int level() const override { return level_; }

  [[nodiscard]] std::size_t block_size() const {
    return static_cast<std::size_t>(level_) * 100'000;
  }

 protected:
  void compress_payload(ByteSpan input, Bytes& out,
                        CodecScratch& scratch) const override;
  std::size_t decompress_payload(ByteSpan payload, std::byte* dst,
                                 std::size_t original_size,
                                 CodecScratch& scratch) const override;

 private:
  int level_;
};

}  // namespace ndpcr::compress
