#pragma once

// nxz: large-window LZ77 with an adaptive binary range coder, in the
// LZMA/xz family: slowest of the suite, strongest ratios.
//
// Per-position symbol structure:
//   is_match bit (adaptive)
//   literal: 8-bit bit-tree, context = top 3 bits of the previous byte
//   match:   length (3..273) via a 3-range choice tree (8/16/247 buckets),
//            then distance as an LZMA-style slot (6-bit bit-tree) plus
//            direct bits.
//
// Levels control the match-finder chain depth (and therefore time spent
// searching); the format is level-independent.

#include "compress/codec.hpp"

namespace ndpcr::compress {

class XzStyleCodec final : public Codec {
 public:
  explicit XzStyleCodec(int level);

  [[nodiscard]] std::string name() const override { return "nxz"; }
  [[nodiscard]] CodecId id() const override { return CodecId::kXzStyle; }
  [[nodiscard]] int level() const override { return level_; }

 protected:
  void compress_payload(ByteSpan input, Bytes& out,
                        CodecScratch& scratch) const override;
  std::size_t decompress_payload(ByteSpan payload, std::byte* dst,
                                 std::size_t original_size,
                                 CodecScratch& scratch) const override;

 private:
  int level_;
};

}  // namespace ndpcr::compress
