#include "compress/suffix_array.hpp"

#include <algorithm>
#include <numeric>

namespace ndpcr::compress {

std::vector<std::int32_t> suffix_array(ByteSpan s) {
  const std::int32_t n = static_cast<std::int32_t>(s.size());
  if (n == 0) return {};

  // rank[i] is the equivalence class of suffix i by its first k chars; the
  // virtual suffix at index n has rank 0 (the sentinel). Ranks start from
  // the byte values shifted by 1 so rank 0 stays reserved.
  std::vector<std::int32_t> rank(n + 1), next_rank(n + 1), sa(n + 1),
      tmp(n + 1), count;
  for (std::int32_t i = 0; i < n; ++i) {
    rank[i] = static_cast<std::int32_t>(static_cast<std::uint8_t>(s[i])) + 1;
  }
  rank[n] = 0;
  std::iota(sa.begin(), sa.end(), 0);

  for (std::int32_t k = 1;; k *= 2) {
    const std::int32_t classes = 1 + *std::max_element(rank.begin(),
                                                       rank.end());
    auto second = [&](std::int32_t i) {
      return i + k <= n ? rank[i + k] : 0;
    };

    // Stable counting sort by the second key...
    count.assign(classes + 1, 0);
    for (std::int32_t i = 0; i <= n; ++i) ++count[second(i) + 1];
    for (std::size_t c = 1; c < count.size(); ++c) count[c] += count[c - 1];
    for (std::int32_t i = 0; i <= n; ++i) tmp[count[second(i)]++] = i;
    // ...then stably by the first key.
    count.assign(classes + 1, 0);
    for (std::int32_t i = 0; i <= n; ++i) ++count[rank[i] + 1];
    for (std::size_t c = 1; c < count.size(); ++c) count[c] += count[c - 1];
    for (std::int32_t i = 0; i <= n; ++i) sa[count[rank[tmp[i]]]++] = tmp[i];

    // Re-rank.
    next_rank[sa[0]] = 0;
    std::int32_t r = 0;
    for (std::int32_t i = 1; i <= n; ++i) {
      const std::int32_t a = sa[i - 1];
      const std::int32_t b = sa[i];
      if (rank[a] != rank[b] || second(a) != second(b)) ++r;
      next_rank[b] = r;
    }
    rank.swap(next_rank);
    if (r == n) break;  // all suffixes distinct
  }

  // Drop the sentinel suffix (always sa[0]).
  return {sa.begin() + 1, sa.end()};
}

std::vector<std::int32_t> suffix_array_naive(ByteSpan s) {
  std::vector<std::int32_t> sa(s.size());
  std::iota(sa.begin(), sa.end(), 0);
  std::sort(sa.begin(), sa.end(), [&](std::int32_t a, std::int32_t b) {
    const auto sub_a = s.subspan(a);
    const auto sub_b = s.subspan(b);
    return std::lexicographical_compare(
        sub_a.begin(), sub_a.end(), sub_b.begin(), sub_b.end(),
        [](std::byte x, std::byte y) {
          return static_cast<std::uint8_t>(x) < static_cast<std::uint8_t>(y);
        });
  });
  return sa;
}

}  // namespace ndpcr::compress
