#pragma once

// Word-wide byte kernels shared by the LZ-family codecs: match-length
// scanning via 64-bit XOR + count-trailing-zeros, and the overlap-aware
// match copy used by every LZ decoder. Both are exact: they never read or
// write outside the ranges the caller hands them, which keeps the decode
// paths provable against the declared output size (and sanitizer-clean).

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace ndpcr::compress {

// Length of the common prefix of `a` and `b`, capped at `limit`. Compares
// 8 bytes per step; the first differing byte falls out of the XOR as a
// trailing (on little-endian: lowest-addressed) zero count.
inline std::size_t match_extent(const std::byte* a, const std::byte* b,
                                std::size_t limit) {
  std::size_t len = 0;
  while (len + 8 <= limit) {
    std::uint64_t va;
    std::uint64_t vb;
    std::memcpy(&va, a + len, 8);
    std::memcpy(&vb, b + len, 8);
    if (const std::uint64_t diff = va ^ vb; diff != 0) {
      if constexpr (std::endian::native == std::endian::little) {
        return len + (static_cast<std::size_t>(std::countr_zero(diff)) >> 3);
      } else {
        return len + (static_cast<std::size_t>(std::countl_zero(diff)) >> 3);
      }
    }
    len += 8;
  }
  while (len < limit && a[len] == b[len]) ++len;
  return len;
}

// Copy `length` bytes from `dst - distance` to `dst`, replicating the
// pattern when the ranges overlap (distance < length) exactly as the
// byte-at-a-time loop would. Writes only [dst, dst + length): overlapping
// copies double the already-present period with exact tails instead of
// wild-copying past the end, so the caller's declared-size bound is a hard
// bound.
inline void copy_match(std::byte* dst, std::size_t distance,
                       std::size_t length) {
  std::byte* const base = dst - distance;
  if (distance >= length) {
    std::memcpy(dst, base, length);
    return;
  }
  if (distance == 1) {
    std::memset(dst, std::to_integer<int>(*base), length);
    return;
  }
  std::size_t filled = distance;
  const std::size_t total = distance + length;
  while (filled < total) {
    const std::size_t n = std::min(filled, total - filled);
    std::memcpy(base + filled, base, n);
    filled += n;
  }
}

}  // namespace ndpcr::compress
