#pragma once

// Suffix-array construction for the BWT stage of the bzip2-style codec.
//
// Manber-Myers prefix doubling with counting sorts: O(n log n), fully
// deterministic, and far less error-prone than linear-time constructions.
// The comparison treats the end of the string as a virtual sentinel smaller
// than every byte, which is exactly what the BWT needs.

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

namespace ndpcr::compress {

// Returns the suffix array of `s`: a permutation of [0, n) such that the
// suffix starting at sa[i] is lexicographically i-th smallest (shorter
// prefixes sort before their extensions).
std::vector<std::int32_t> suffix_array(ByteSpan s);

// Reference O(n^2 log n) construction used by the tests to validate the
// doubling implementation on small inputs.
std::vector<std::int32_t> suffix_array_naive(ByteSpan s);

}  // namespace ndpcr::compress
