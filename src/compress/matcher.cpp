#include "compress/matcher.hpp"

#include <algorithm>

namespace ndpcr::compress {

MatchFinder::MatchFinder(ByteSpan data, std::uint32_t window,
                         std::uint32_t min_match, std::uint32_t max_match,
                         std::uint32_t max_chain)
    : window_(window),
      min_match_(min_match),
      max_match_(max_match),
      use_prev_(max_chain > 1),
      max_chain_(max_chain),
      head_(&owned_head_),
      prev_(&owned_prev_) {
  reset(data);
}

MatchFinder::MatchFinder(ByteSpan data, std::uint32_t window,
                         std::uint32_t min_match, std::uint32_t max_match,
                         std::uint32_t max_chain,
                         std::vector<std::uint32_t>& head_storage,
                         std::vector<std::uint32_t>& prev_storage)
    : window_(window),
      min_match_(min_match),
      max_match_(max_match),
      use_prev_(max_chain > 1),
      max_chain_(max_chain),
      head_(&head_storage),
      prev_(&prev_storage) {
  reset(data);
}

void MatchFinder::reset(ByteSpan data) {
  data_ = data;
  head_->assign(std::size_t{1} << kHashBits, kNoPos);
  // Stale prev entries are unreachable (see the header comment), so the
  // chain table only ever needs to grow.
  if (use_prev_ && prev_->size() < data.size()) {
    prev_->resize(data.size());
  }
}

}  // namespace ndpcr::compress
