#include "compress/matcher.hpp"

#include <algorithm>
#include <cstring>

namespace ndpcr::compress {

MatchFinder::MatchFinder(ByteSpan data, std::uint32_t window,
                         std::uint32_t min_match, std::uint32_t max_match,
                         std::uint32_t max_chain)
    : data_(data),
      window_(window),
      min_match_(min_match),
      max_match_(max_match),
      max_chain_(max_chain),
      head_(std::size_t{1} << kHashBits, kNoPos),
      prev_(data.size(), kNoPos) {}

Match MatchFinder::find(std::size_t pos) const {
  Match best;
  if (pos + 4 > data_.size()) return best;
  const std::size_t limit =
      std::min<std::size_t>(data_.size() - pos, max_match_);
  if (limit < min_match_) return best;

  const std::byte* cur = data_.data() + pos;
  std::uint32_t candidate = head_[hash_at(pos)];
  std::uint32_t chain = max_chain_;
  while (candidate != kNoPos && chain-- > 0) {
    const std::size_t cand_pos = candidate;
    if (cand_pos >= pos || pos - cand_pos > window_) break;
    const std::byte* prev_data = data_.data() + cand_pos;
    // Cheap rejection: a longer match must extend past the current best.
    if (best.length == 0 || prev_data[best.length] == cur[best.length]) {
      std::size_t len = 0;
      while (len < limit && prev_data[len] == cur[len]) ++len;
      if (len >= min_match_ && len > best.length) {
        best.length = static_cast<std::uint32_t>(len);
        best.distance = static_cast<std::uint32_t>(pos - cand_pos);
        if (len == limit) break;
      }
    }
    candidate = prev_[cand_pos];
  }
  return best;
}

void MatchFinder::insert(std::size_t pos) {
  if (pos + 4 > data_.size()) return;
  const std::uint32_t h = hash_at(pos);
  prev_[pos] = head_[h];
  head_[h] = static_cast<std::uint32_t>(pos);
}

}  // namespace ndpcr::compress
