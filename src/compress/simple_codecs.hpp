#pragma once

// The trivial codecs: Null (memcpy) and byte-level RLE. Null measures pure
// framing/copy overhead and doubles as the "no compression" configuration
// in the C/R model; RLE is a diagnostic baseline for highly repetitive
// checkpoint pages (e.g. zero-initialized allocations).

#include "compress/codec.hpp"

namespace ndpcr::compress {

class NullCodec final : public Codec {
 public:
  [[nodiscard]] std::string name() const override { return "null"; }
  [[nodiscard]] CodecId id() const override { return CodecId::kNull; }
  [[nodiscard]] int level() const override { return 0; }

 protected:
  void compress_payload(ByteSpan input, Bytes& out,
                        CodecScratch& scratch) const override;
  std::size_t decompress_payload(ByteSpan payload, std::byte* dst,
                                 std::size_t original_size,
                                 CodecScratch& scratch) const override;
};

// RLE format: runs of 4+ identical bytes are encoded as
//   ESC value count_varint
// where ESC = 0xA5. A literal ESC byte is encoded as ESC ESC 0 (a
// zero-length run is the escape-escape marker). Runs shorter than 4 bytes
// are emitted verbatim.
class RleCodec final : public Codec {
 public:
  [[nodiscard]] std::string name() const override { return "rle"; }
  [[nodiscard]] CodecId id() const override { return CodecId::kRle; }
  [[nodiscard]] int level() const override { return 1; }

 protected:
  void compress_payload(ByteSpan input, Bytes& out,
                        CodecScratch& scratch) const override;
  std::size_t decompress_payload(ByteSpan payload, std::byte* dst,
                                 std::size_t original_size,
                                 CodecScratch& scratch) const override;
};

}  // namespace ndpcr::compress
