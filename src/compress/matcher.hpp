#pragma once

// Hash-chain LZ77 match finder shared by the LZ77-family codecs (nlz4,
// ngzip, nxz). Finds the longest previous occurrence of the bytes at the
// current position within a sliding window, with a configurable chain-walk
// budget (the compression-level knob).
//
// The finder can own its hash tables (standalone use, tests) or borrow
// them from a CodecScratch via the storage-taking constructor, in which
// case reset() re-arms the tables in place for a new input without
// reallocating: the 64 K-entry head table is re-filled, and the per-byte
// prev chain is only grown (stale entries are unreachable once head is
// cleared, because insert() writes prev[pos] before linking pos into a
// chain).

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "compress/kernels.hpp"

namespace ndpcr::compress {

struct Match {
  std::uint32_t length = 0;    // 0 means no match found
  std::uint32_t distance = 0;  // backwards distance, >= 1
};

class MatchFinder {
 public:
  // `window` and `max_match` bound distances and lengths; `max_chain` is
  // the number of chain links examined per query. Owns its tables.
  MatchFinder(ByteSpan data, std::uint32_t window, std::uint32_t min_match,
              std::uint32_t max_match, std::uint32_t max_chain);

  // Same, but borrowing table storage (typically from a CodecScratch) so
  // repeated per-chunk construction reuses one allocation.
  MatchFinder(ByteSpan data, std::uint32_t window, std::uint32_t min_match,
              std::uint32_t max_match, std::uint32_t max_chain,
              std::vector<std::uint32_t>& head_storage,
              std::vector<std::uint32_t>& prev_storage);

  MatchFinder(const MatchFinder&) = delete;
  MatchFinder& operator=(const MatchFinder&) = delete;

  // Re-arm the finder for a new input buffer, reusing table storage.
  void reset(ByteSpan data);

  // Longest match at `pos`, at least min_match long, or {0,0}. Does not
  // advance the finder.
  [[nodiscard]] Match find(std::size_t pos) const {
    if (pos + 4 > data_.size()) return Match{};
    return search(pos, (*head_)[hash_at(pos)]);
  }

  // Insert position `pos` into the hash chains. Every position that the
  // compressor steps over (matched or literal) must be inserted, in order.
  void insert(std::size_t pos) {
    if (pos + 4 > data_.size()) return;
    const std::uint32_t h = hash_at(pos);
    if (use_prev_) (*prev_)[pos] = (*head_)[h];
    (*head_)[h] = static_cast<std::uint32_t>(pos);
  }

  // find(pos) immediately followed by insert(pos), hashing only once.
  // Equivalent to the split calls for greedy parses; lazy parses that probe
  // find(pos + 1) before committing insert(pos) must keep the calls split.
  [[nodiscard]] Match find_and_insert(std::size_t pos) {
    if (pos + 4 > data_.size()) return Match{};
    const std::uint32_t h = hash_at(pos);
    const std::uint32_t candidate = (*head_)[h];
    const Match best = search(pos, candidate);
    if (use_prev_) (*prev_)[pos] = candidate;
    (*head_)[h] = static_cast<std::uint32_t>(pos);
    return best;
  }

  [[nodiscard]] std::uint32_t min_match() const { return min_match_; }
  [[nodiscard]] std::uint32_t max_match() const { return max_match_; }

 private:
  static constexpr std::uint32_t kHashBits = 16;
  static constexpr std::uint32_t kNoPos = 0xFFFFFFFFu;

  [[nodiscard]] std::uint32_t hash_at(std::size_t pos) const {
    // Multiplicative hash of 4 bytes (positions near the end hash fewer
    // bytes and simply miss; find() rejects those).
    std::uint32_t v;
    __builtin_memcpy(&v, data_.data() + pos, 4);
    return (v * 2654435761u) >> (32 - kHashBits);
  }

  // Walk the chain starting at `candidate`. The budget check sits before
  // the prev load, so the final link never touches prev_ - which is why a
  // max_chain == 1 finder needs no prev table at all.
  [[nodiscard]] Match search(std::size_t pos, std::uint32_t candidate) const {
    Match best;
    const std::size_t limit =
        std::min<std::size_t>(data_.size() - pos, max_match_);
    if (limit < min_match_) return best;

    const std::byte* cur = data_.data() + pos;
    std::uint32_t chain = max_chain_;
    while (candidate != kNoPos) {
      const std::size_t cand_pos = candidate;
      if (cand_pos >= pos || pos - cand_pos > window_) break;
      const std::byte* cand = data_.data() + cand_pos;
      // Cheap rejection: a longer match must extend past the current best.
      if (best.length == 0 || cand[best.length] == cur[best.length]) {
        const std::size_t len = match_extent(cand, cur, limit);
        if (len >= min_match_ && len > best.length) {
          best.length = static_cast<std::uint32_t>(len);
          best.distance = static_cast<std::uint32_t>(pos - cand_pos);
          if (len == limit) break;
        }
      }
      if (--chain == 0) break;
      candidate = (*prev_)[cand_pos];
      if (candidate != kNoPos) {
        __builtin_prefetch(data_.data() + candidate);
      }
    }
    return best;
  }

  ByteSpan data_;
  std::uint32_t window_;
  std::uint32_t min_match_;
  std::uint32_t max_match_;
  bool use_prev_;
  std::uint32_t max_chain_;
  std::vector<std::uint32_t> owned_head_;
  std::vector<std::uint32_t> owned_prev_;
  std::vector<std::uint32_t>* head_;
  std::vector<std::uint32_t>* prev_;
};

}  // namespace ndpcr::compress
