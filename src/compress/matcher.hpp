#pragma once

// Hash-chain LZ77 match finder shared by the LZ77-family codecs (nlz4,
// ngzip, nxz). Finds the longest previous occurrence of the bytes at the
// current position within a sliding window, with a configurable chain-walk
// budget (the compression-level knob).

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

namespace ndpcr::compress {

struct Match {
  std::uint32_t length = 0;    // 0 means no match found
  std::uint32_t distance = 0;  // backwards distance, >= 1
};

class MatchFinder {
 public:
  // `window` and `max_match` bound distances and lengths; `max_chain` is
  // the number of chain links examined per query.
  MatchFinder(ByteSpan data, std::uint32_t window, std::uint32_t min_match,
              std::uint32_t max_match, std::uint32_t max_chain);

  // Longest match at `pos`, at least min_match long, or {0,0}. Does not
  // advance the finder.
  [[nodiscard]] Match find(std::size_t pos) const;

  // Insert position `pos` into the hash chains. Every position that the
  // compressor steps over (matched or literal) must be inserted, in order.
  void insert(std::size_t pos);

  [[nodiscard]] std::uint32_t min_match() const { return min_match_; }
  [[nodiscard]] std::uint32_t max_match() const { return max_match_; }

 private:
  static constexpr std::uint32_t kHashBits = 16;
  static constexpr std::uint32_t kNoPos = 0xFFFFFFFFu;

  [[nodiscard]] std::uint32_t hash_at(std::size_t pos) const {
    // Multiplicative hash of 4 bytes (positions near the end hash fewer
    // bytes and simply miss; find() rejects those).
    std::uint32_t v;
    __builtin_memcpy(&v, data_.data() + pos, 4);
    return (v * 2654435761u) >> (32 - kHashBits);
  }

  ByteSpan data_;
  std::uint32_t window_;
  std::uint32_t min_match_;
  std::uint32_t max_match_;
  std::uint32_t max_chain_;
  std::vector<std::uint32_t> head_;
  std::vector<std::uint32_t> prev_;
};

}  // namespace ndpcr::compress
