#pragma once

// ngzip: LZSS + canonical Huffman in the DEFLATE family.
//
// Input is split into blocks (256 KiB of input each). Every block carries
// its own Huffman tables and is coded with DEFLATE's alphabets:
//   * literal/length symbols 0..285 (0..255 literal, 256 end-of-block,
//     257..285 length buckets with DEFLATE's extra-bit tables)
//   * distance symbols 0..29 (DEFLATE's distance buckets, 32 KiB window)
// Table descriptions are serialized as raw 4-bit code lengths - simpler
// than DEFLATE's code-length coding, same information content.
//
// Levels 1-9 control match-finder chain depth and lazy matching, matching
// zlib's speed/ratio trade-off shape.

#include "compress/codec.hpp"

namespace ndpcr::compress {

class DeflateStyleCodec final : public Codec {
 public:
  explicit DeflateStyleCodec(int level);

  [[nodiscard]] std::string name() const override { return "ngzip"; }
  [[nodiscard]] CodecId id() const override { return CodecId::kDeflateStyle; }
  [[nodiscard]] int level() const override { return level_; }

 protected:
  void compress_payload(ByteSpan input, Bytes& out,
                        CodecScratch& scratch) const override;
  std::size_t decompress_payload(ByteSpan payload, std::byte* dst,
                                 std::size_t original_size,
                                 CodecScratch& scratch) const override;

 private:
  int level_;
};

}  // namespace ndpcr::compress
