#include "compress/simple_codecs.hpp"

namespace ndpcr::compress {
namespace {

constexpr std::byte kEsc{0xA5};

void append_varint(Bytes& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::byte>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<std::byte>(value));
}

std::uint64_t read_varint(ByteSpan data, std::size_t& pos) {
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    if (pos >= data.size() || shift > 63) {
      throw CodecError("truncated varint in RLE stream");
    }
    const auto b = static_cast<std::uint8_t>(data[pos++]);
    value |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
  }
  return value;
}

}  // namespace

void NullCodec::compress_payload(ByteSpan input, Bytes& out) const {
  out.insert(out.end(), input.begin(), input.end());
}

void NullCodec::decompress_payload(ByteSpan payload,
                                   std::size_t original_size,
                                   Bytes& out) const {
  if (payload.size() != original_size) {
    throw CodecError("null codec payload size mismatch");
  }
  out.insert(out.end(), payload.begin(), payload.end());
}

void RleCodec::compress_payload(ByteSpan input, Bytes& out) const {
  std::size_t i = 0;
  while (i < input.size()) {
    std::size_t run = 1;
    while (i + run < input.size() && input[i + run] == input[i]) ++run;
    if (run >= 4) {
      out.push_back(kEsc);
      out.push_back(input[i]);
      append_varint(out, run);
      i += run;
    } else {
      for (std::size_t k = 0; k < run; ++k) {
        if (input[i] == kEsc) {
          out.push_back(kEsc);
          out.push_back(kEsc);
          append_varint(out, 0);
        } else {
          out.push_back(input[i]);
        }
      }
      i += run;
    }
  }
}

void RleCodec::decompress_payload(ByteSpan payload, std::size_t original_size,
                                  Bytes& out) const {
  std::size_t pos = 0;
  while (pos < payload.size()) {
    const std::byte b = payload[pos++];
    if (b != kEsc) {
      out.push_back(b);
      continue;
    }
    if (pos >= payload.size()) {
      throw CodecError("truncated RLE escape");
    }
    const std::byte value = payload[pos++];
    const std::uint64_t run = read_varint(payload, pos);
    if (run == 0) {
      out.push_back(kEsc);
    } else {
      if (out.size() + run > original_size) {
        throw CodecError("RLE run overflows declared size");
      }
      out.insert(out.end(), run, value);
    }
  }
}

}  // namespace ndpcr::compress
