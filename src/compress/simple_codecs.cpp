#include "compress/simple_codecs.hpp"

#include <cstring>

#include "compress/kernels.hpp"

namespace ndpcr::compress {
namespace {

constexpr std::byte kEsc{0xA5};

void append_varint(Bytes& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::byte>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<std::byte>(value));
}

std::uint64_t read_varint(ByteSpan data, std::size_t& pos) {
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    if (pos >= data.size() || shift > 63) {
      throw CodecError("truncated varint in RLE stream");
    }
    const auto b = static_cast<std::uint8_t>(data[pos++]);
    value |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
  }
  return value;
}

}  // namespace

void NullCodec::compress_payload(ByteSpan input, Bytes& out,
                                 CodecScratch&) const {
  out.insert(out.end(), input.begin(), input.end());
}

std::size_t NullCodec::decompress_payload(ByteSpan payload, std::byte* dst,
                                          std::size_t original_size,
                                          CodecScratch&) const {
  if (payload.size() != original_size) {
    throw CodecError("null codec payload size mismatch");
  }
  if (!payload.empty()) {
    std::memcpy(dst, payload.data(), payload.size());
  }
  return payload.size();
}

void RleCodec::compress_payload(ByteSpan input, Bytes& out,
                                CodecScratch&) const {
  const std::byte* const data = input.data();
  const std::size_t n = input.size();
  std::size_t i = 0;
  std::size_t lit_start = 0;
  // Emit [lit_start, lit_end) literally, bulk-copying between escape bytes.
  const auto flush_literals = [&](std::size_t lit_end) {
    std::size_t p = lit_start;
    while (p < lit_end) {
      const auto* esc = static_cast<const std::byte*>(std::memchr(
          data + p, std::to_integer<int>(kEsc), lit_end - p));
      const std::size_t span =
          (esc ? static_cast<std::size_t>(esc - data) : lit_end) - p;
      out.insert(out.end(), input.begin() + p, input.begin() + p + span);
      p += span;
      while (p < lit_end && data[p] == kEsc) {
        out.push_back(kEsc);
        out.push_back(kEsc);
        append_varint(out, 0);
        ++p;
      }
    }
  };
  while (i < n) {
    // Cheap guard: only positions that open a run of >= 4 pay for the
    // word-wide scan; everything else rides the literal span.
    if (i + 4 <= n && data[i + 1] == data[i] && data[i + 2] == data[i] &&
        data[i + 3] == data[i]) {
      // Run length via the word-wide kernel: a run of N equal bytes is the
      // longest self-overlapping match between the buffer and itself
      // shifted by one, plus the first byte.
      const std::size_t run =
          1 + match_extent(data + i, data + i + 1, n - i - 1);
      flush_literals(i);
      out.push_back(kEsc);
      out.push_back(data[i]);
      append_varint(out, run);
      i += run;
      lit_start = i;
    } else {
      ++i;
    }
  }
  flush_literals(n);
}

std::size_t RleCodec::decompress_payload(ByteSpan payload, std::byte* dst,
                                         std::size_t original_size,
                                         CodecScratch&) const {
  std::size_t pos = 0;
  std::size_t written = 0;
  while (pos < payload.size()) {
    // Bulk-copy the literal span up to the next escape.
    const auto* esc = static_cast<const std::byte*>(
        std::memchr(payload.data() + pos, std::to_integer<int>(kEsc),
                    payload.size() - pos));
    const std::size_t lit_len =
        (esc ? static_cast<std::size_t>(esc - payload.data())
             : payload.size()) -
        pos;
    if (lit_len > 0) {
      if (lit_len > original_size - written) {
        throw CodecError("RLE output overflows declared size");
      }
      std::memcpy(dst + written, payload.data() + pos, lit_len);
      written += lit_len;
      pos += lit_len;
    }
    if (esc == nullptr) break;
    ++pos;  // consume the escape byte
    if (pos >= payload.size()) {
      throw CodecError("truncated RLE escape");
    }
    const std::byte value = payload[pos++];
    const std::uint64_t run = read_varint(payload, pos);
    if (run == 0) {
      if (written >= original_size) {
        throw CodecError("RLE output overflows declared size");
      }
      dst[written++] = kEsc;
    } else {
      if (run > original_size - written) {
        throw CodecError("RLE run overflows declared size");
      }
      std::memset(dst + written, std::to_integer<int>(value), run);
      written += run;
    }
  }
  return written;
}

}  // namespace ndpcr::compress
