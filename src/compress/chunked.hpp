#pragma once

// Chunked, parallel (de)compression. The paper's host-side compression
// path runs one compression thread per core (64 threads, section 3.5) and
// its restore path decompresses independent pages on different cores
// (section 4.3). Both need a container that splits the payload into
// independently-coded chunks:
//
//   [u32 magic][u8 codec id][u8 level][u32 chunk_count][u64 original size]
//   [u64 compressed chunk size] x chunk_count
//   chunk payloads (each a complete framed stream of the inner codec)
//
// Chunk boundaries are fixed by `chunk_size` over the *input*, so the
// compressed output is bit-identical regardless of the thread count -
// parallelism is an execution detail, not a format detail.
//
// Two ways to parallelize:
//   - compress()/decompress() spin up to `threads` internal workers. When
//     the caller is already an exec::TaskPool worker (which rejects nested
//     parallelism) they silently run inline instead.
//   - Callers that own an executor schedule chunk tasks themselves through
//     the chunk-level interface: chunk_count() + compress_chunk() per
//     index, then assemble() in index order. MultilevelManager::commit
//     hoists every rank's chunks into one flat TaskPool batch this way.

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "compress/codec.hpp"
#include "compress/scratch.hpp"

namespace ndpcr::compress {

class ChunkedCodec {
 public:
  // `threads` <= 1 runs inline. Chunk size must be positive. `accelerate`
  // opts the nlz4 compressor into its skip-stride fast path: the emitted
  // bytes differ (worse ratio, much higher throughput) but stay valid
  // streams for the unchanged decoder, so the container format and
  // restore path are unaffected. Only meaningful for CodecId::kLz4Style.
  ChunkedCodec(CodecId id, int level, std::size_t chunk_size = 4ull << 20,
               unsigned threads = 1, bool accelerate = false);

  [[nodiscard]] Bytes compress(ByteSpan input) const;
  [[nodiscard]] Bytes decompress(ByteSpan framed) const;

  // Pre-create `count` codec workspaces so the first parallel batch does
  // not pay first-touch allocation inside the workers. Long-lived owners
  // (MultilevelManager's IO leg, NdpAgent's drain) warm to their worker
  // count at construction.
  void warm(std::size_t count) const;

  // --- chunk-level interface (caller-scheduled parallelism) ---

  // Number of chunks an input of `input_size` bytes splits into.
  [[nodiscard]] std::size_t chunk_count(std::size_t input_size) const;
  // Input byte range {offset, length} of chunk `index`.
  [[nodiscard]] std::pair<std::size_t, std::size_t> chunk_extent(
      std::size_t input_size, std::size_t index) const;
  // Compress chunk `index` of the full payload `input`. Pure: safe to call
  // concurrently for distinct indices.
  [[nodiscard]] Bytes compress_chunk(ByteSpan input, std::size_t index) const;
  // Build the container from per-chunk streams produced by compress_chunk,
  // in index order. Bit-identical to compress(input).
  [[nodiscard]] Bytes assemble(std::size_t original_size,
                               const std::vector<Bytes>& chunks,
                               std::size_t first = 0,
                               std::size_t count = SIZE_MAX) const;
  // Container bytes that are not chunk payload (header + size table).
  [[nodiscard]] static std::size_t header_bytes(std::size_t chunk_count);

  // What the container header declares, without touching chunk payloads.
  // The codec id/level make stored streams self-describing: a reader
  // peeks, then decompresses with a matching codec - the adaptive
  // per-region selection in MultilevelManager depends on this, since the
  // store may hold a different codec per rank per checkpoint.
  struct Header {
    CodecId id = CodecId::kNull;
    int level = 0;
    std::uint32_t chunk_count = 0;
    std::uint64_t original_size = 0;
  };
  // Nullopt when `framed` is not a chunked container (wrong magic or too
  // short) or its declared codec id is not a registered codec. A valid
  // header does not guarantee intact payloads - decompress still throws
  // CodecError on damage.
  [[nodiscard]] static std::optional<Header> peek(ByteSpan framed);

  [[nodiscard]] CodecId id() const { return id_; }
  [[nodiscard]] int level() const { return level_; }
  [[nodiscard]] std::size_t chunk_size() const { return chunk_size_; }
  [[nodiscard]] unsigned threads() const { return threads_; }

 private:
  CodecId id_;
  int level_;
  std::size_t chunk_size_;
  unsigned threads_;
  // One long-lived codec instance (codecs are stateless and const-callable
  // from any thread) plus a pool of reusable workspaces, so the per-chunk
  // cost is a workspace lease instead of a codec + table allocation.
  std::unique_ptr<Codec> codec_;
  std::unique_ptr<ScratchPool> scratch_;
};

}  // namespace ndpcr::compress
