#pragma once

// Chunked, parallel (de)compression. The paper's host-side compression
// path runs one compression thread per core (64 threads, section 3.5) and
// its restore path decompresses independent pages on different cores
// (section 4.3). Both need a container that splits the payload into
// independently-coded chunks:
//
//   [u32 magic][u8 codec id][u8 level][u32 chunk_count][u64 original size]
//   [u64 compressed chunk size] x chunk_count
//   chunk payloads (each a complete framed stream of the inner codec)
//
// Chunk boundaries are fixed by `chunk_size` over the *input*, so the
// compressed output is bit-identical regardless of the thread count -
// parallelism is an execution detail, not a format detail.

#include <cstdint>
#include <memory>

#include "compress/codec.hpp"

namespace ndpcr::compress {

class ChunkedCodec {
 public:
  // `threads` <= 1 runs inline. Chunk size must be positive.
  ChunkedCodec(CodecId id, int level, std::size_t chunk_size = 4ull << 20,
               unsigned threads = 1);

  [[nodiscard]] Bytes compress(ByteSpan input) const;
  [[nodiscard]] Bytes decompress(ByteSpan framed) const;

  [[nodiscard]] std::size_t chunk_size() const { return chunk_size_; }
  [[nodiscard]] unsigned threads() const { return threads_; }

 private:
  CodecId id_;
  int level_;
  std::size_t chunk_size_;
  unsigned threads_;
};

}  // namespace ndpcr::compress
