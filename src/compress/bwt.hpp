#pragma once

// Burrows-Wheeler transform with a virtual sentinel, plus its inverse.
// The transform sorts the suffixes of the block (equivalent to sorting the
// rotations of block+sentinel); the sentinel itself is not emitted, so the
// output has the same length as the input and carries a primary index.

#include <cstdint>

#include "common/bytes.hpp"

namespace ndpcr::compress {

struct BwtResult {
  Bytes data;                      // the L column, sentinel removed
  std::uint32_t primary_index = 0; // row at which the sentinel was removed
};

BwtResult bwt_forward(ByteSpan block);

// Inverse transform. Throws CodecError if primary_index is out of range.
Bytes bwt_inverse(ByteSpan l_column, std::uint32_t primary_index);

}  // namespace ndpcr::compress
