#pragma once

// Burrows-Wheeler transform with a virtual sentinel, plus its inverse.
// The transform sorts the suffixes of the block (equivalent to sorting the
// rotations of block+sentinel); the sentinel itself is not emitted, so the
// output has the same length as the input and carries a primary index.

#include <cstdint>

#include "common/bytes.hpp"

namespace ndpcr::compress {

struct BwtResult {
  Bytes data;                      // the L column, sentinel removed
  std::uint32_t primary_index = 0; // row at which the sentinel was removed
};

BwtResult bwt_forward(ByteSpan block);

// Inverse transform. Throws CodecError if primary_index is out of range.
Bytes bwt_inverse(ByteSpan l_column, std::uint32_t primary_index);

// Inverse transform into a caller-owned buffer of l_column.size() bytes,
// reusing `occ_scratch` for the rank table so per-block decodes do not
// reallocate. Same validation as bwt_inverse.
void bwt_inverse_into(ByteSpan l_column, std::uint32_t primary_index,
                      std::byte* out, std::vector<std::uint32_t>& occ_scratch);

}  // namespace ndpcr::compress
