#include "compress/codec.hpp"

#include "common/crc32.hpp"

namespace ndpcr::compress {

Bytes Codec::compress(ByteSpan input) const {
  Bytes out;
  out.reserve(kFrameHeaderSize + input.size() / 2);
  out.push_back(static_cast<std::byte>('N'));
  out.push_back(static_cast<std::byte>(id()));
  out.push_back(static_cast<std::byte>(level()));
  append_le<std::uint64_t>(out, input.size());
  append_le<std::uint32_t>(out, Crc32::compute(input));
  compress_payload(input, out);
  return out;
}

Bytes Codec::decompress(ByteSpan framed) const {
  if (framed.size() < kFrameHeaderSize) {
    throw CodecError("compressed stream truncated: missing frame header");
  }
  if (framed[0] != static_cast<std::byte>('N')) {
    throw CodecError("bad magic byte in compressed stream");
  }
  if (framed[1] != static_cast<std::byte>(id())) {
    throw CodecError("codec id mismatch: stream was produced by a different "
                     "codec");
  }
  const auto original_size = read_le<std::uint64_t>(framed, 3);
  const auto expected_crc = read_le<std::uint32_t>(framed, 11);

  Bytes out;
  // Bound the speculative reservation: original_size comes from the (not
  // yet validated) stream, and a corrupted header must not trigger a
  // pathological allocation. The vector grows amortized past this.
  out.reserve(std::min<std::uint64_t>(original_size, 16u << 20));
  decompress_payload(framed.subspan(kFrameHeaderSize), original_size, out);
  if (out.size() != original_size) {
    throw CodecError("decompressed size mismatch");
  }
  if (Crc32::compute(out) != expected_crc) {
    throw CodecError("CRC mismatch: corrupted compressed stream");
  }
  return out;
}

double Codec::compression_factor(std::size_t uncompressed,
                                 std::size_t compressed) {
  if (uncompressed == 0) return 0.0;
  return 1.0 - static_cast<double>(compressed) /
                   static_cast<double>(uncompressed);
}

}  // namespace ndpcr::compress
