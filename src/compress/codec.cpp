#include "compress/codec.hpp"

#include "common/crc32.hpp"
#include "compress/scratch.hpp"

namespace ndpcr::compress {
namespace {

// Guard for the eager output allocation in decompress(): the declared size
// comes from a not-yet-validated header, and a corrupted size field must
// raise CodecError rather than attempt a pathological (possibly TiB-scale)
// allocation. No codec in this library expands better than ~4096x (RLE run
// coding tops out near 2^12 output bytes per payload byte), so any stream
// declaring more than kMaxPlausibleExpansion bytes per payload byte is
// corrupt. Only applied above kEagerDecodeLimit so small streams never pay
// the check and legitimate ratios are unaffected.
constexpr std::uint64_t kEagerDecodeLimit = 64ull << 20;
constexpr std::uint64_t kMaxPlausibleExpansion = 4096;

struct FrameHeader {
  std::uint64_t original_size;
  std::uint32_t expected_crc;
};

FrameHeader parse_frame_header(ByteSpan framed, CodecId id) {
  if (framed.size() < kFrameHeaderSize) {
    throw CodecError("compressed stream truncated: missing frame header");
  }
  if (framed[0] != static_cast<std::byte>('N')) {
    throw CodecError("bad magic byte in compressed stream");
  }
  if (framed[1] != static_cast<std::byte>(id)) {
    throw CodecError("codec id mismatch: stream was produced by a different "
                     "codec");
  }
  FrameHeader header{};
  header.original_size = read_le<std::uint64_t>(framed, 3);
  header.expected_crc = read_le<std::uint32_t>(framed, 11);
  if (header.original_size > kEagerDecodeLimit &&
      header.original_size / kMaxPlausibleExpansion > framed.size()) {
    throw CodecError("implausible declared size in compressed stream");
  }
  return header;
}

}  // namespace

Bytes Codec::compress(ByteSpan input) const {
  CodecScratch scratch;
  return compress(input, scratch);
}

Bytes Codec::compress(ByteSpan input, CodecScratch& scratch) const {
  Bytes out;
  out.reserve(kFrameHeaderSize + input.size() / 2);
  out.push_back(static_cast<std::byte>('N'));
  out.push_back(static_cast<std::byte>(id()));
  out.push_back(static_cast<std::byte>(level()));
  append_le<std::uint64_t>(out, input.size());
  append_le<std::uint32_t>(out, Crc32::compute(input));
  compress_payload(input, out, scratch);
  return out;
}

Bytes Codec::decompress(ByteSpan framed) const {
  CodecScratch scratch;
  return decompress(framed, scratch);
}

Bytes Codec::decompress(ByteSpan framed, CodecScratch& scratch) const {
  const FrameHeader header = parse_frame_header(framed, id());
  // The plausibility guard above makes this eager allocation safe, and the
  // pre-sized buffer lets codecs decode with pointer stores and bulk copies
  // instead of push_back.
  Bytes out(header.original_size);
  const std::size_t written = decompress_payload(
      framed.subspan(kFrameHeaderSize), out.data(), out.size(), scratch);
  if (written != out.size()) {
    throw CodecError("decompressed size mismatch");
  }
  if (Crc32::compute(out) != header.expected_crc) {
    throw CodecError("CRC mismatch: corrupted compressed stream");
  }
  return out;
}

void Codec::decompress_into(ByteSpan framed, std::byte* dst,
                            std::size_t expected_size,
                            CodecScratch& scratch) const {
  const FrameHeader header = parse_frame_header(framed, id());
  if (header.original_size != expected_size) {
    throw CodecError("decompressed size mismatch");
  }
  const std::size_t written = decompress_payload(
      framed.subspan(kFrameHeaderSize), dst, expected_size, scratch);
  if (written != expected_size) {
    throw CodecError("decompressed size mismatch");
  }
  if (Crc32::compute(dst, expected_size) != header.expected_crc) {
    throw CodecError("CRC mismatch: corrupted compressed stream");
  }
}

double Codec::compression_factor(std::size_t uncompressed,
                                 std::size_t compressed) {
  if (uncompressed == 0) return 0.0;
  return 1.0 - static_cast<double>(compressed) /
                   static_cast<double>(uncompressed);
}

}  // namespace ndpcr::compress
