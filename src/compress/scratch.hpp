#pragma once

// Reusable codec workspaces. Every codec allocates the same few large
// structures per call - MatchFinder hash tables, Huffman decode tables,
// staging buffers - and on the chunked data path those calls happen once
// per chunk, so the allocations (and the page faults behind them) used to
// dominate the fast codecs. CodecScratch keeps them alive across calls:
// codecs reset or resize in place and reallocate only when a larger input
// arrives. ScratchPool hands workspaces to concurrent workers; ChunkedCodec
// (and through it MultilevelManager's IO leg and NdpAgent's drain) holds a
// pool warmed to its worker count.

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/bytes.hpp"
#include "compress/huffman.hpp"

namespace ndpcr::compress {

struct CodecScratch {
  // MatchFinder storage: head is re-filled per use, prev only resized
  // (stale entries are unreachable once head is cleared).
  std::vector<std::uint32_t> match_head;
  std::vector<std::uint32_t> match_prev;
  // Parsed LZSS items, packed literal | length << 8 | distance << 20.
  std::vector<std::uint64_t> items;
  // Huffman decode tables, rebuilt in place per block via init().
  HuffmanDecoder lit_decoder;
  HuffmanDecoder dist_decoder;
  std::vector<std::uint8_t> code_lengths;
  // Block staging buffers (bzip2-style MTF stream and L column).
  Bytes staging;
  Bytes staging2;
  std::vector<std::uint32_t> u32_tmp;
};

// A mutex-guarded freelist of CodecScratch instances. acquire() pops one
// (or creates it on a miss) and the returned Lease gives it back on
// destruction, so a pool serving N concurrent workers converges on N live
// workspaces regardless of how many chunks pass through.
class ScratchPool {
 public:
  class Lease {
   public:
    explicit Lease(ScratchPool& pool) : pool_(&pool), scratch_(pool.take()) {}
    ~Lease() {
      if (scratch_) pool_->give(std::move(scratch_));
    }
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), scratch_(std::move(other.scratch_)) {}
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;

    [[nodiscard]] CodecScratch& operator*() const { return *scratch_; }
    [[nodiscard]] CodecScratch* operator->() const { return scratch_.get(); }

   private:
    ScratchPool* pool_;
    std::unique_ptr<CodecScratch> scratch_;
  };

  [[nodiscard]] Lease acquire() { return Lease(*this); }

  // Pre-create workspaces up to `count` so the first parallel batch does
  // not serialize on first-touch allocation.
  void warm(std::size_t count);

 private:
  std::unique_ptr<CodecScratch> take();
  void give(std::unique_ptr<CodecScratch> scratch);

  std::mutex mutex_;
  std::vector<std::unique_ptr<CodecScratch>> free_;
};

}  // namespace ndpcr::compress
