#include "compress/lz4_style.hpp"

#include <algorithm>
#include <cstring>

#include "compress/matcher.hpp"

namespace ndpcr::compress {
namespace {

constexpr std::uint32_t kMinMatch = 4;
constexpr std::uint32_t kWindow = 0xFFFF;  // 16-bit offsets

void write_length(Bytes& out, std::size_t len) {
  // 255-block continuation, as in LZ4.
  while (len >= 255) {
    out.push_back(std::byte{255});
    len -= 255;
  }
  out.push_back(static_cast<std::byte>(len));
}

std::size_t read_length(ByteSpan in, std::size_t& pos, std::size_t base) {
  std::size_t len = base;
  if (base == 15) {
    while (true) {
      if (pos >= in.size()) throw CodecError("truncated nlz4 length");
      const auto b = static_cast<std::uint8_t>(in[pos++]);
      len += b;
      if (b != 255) break;
    }
  }
  return len;
}

void emit_sequence(Bytes& out, ByteSpan literals, std::uint32_t match_len,
                   std::uint32_t distance) {
  const std::size_t lit_len = literals.size();
  const std::size_t match_code = match_len ? match_len - kMinMatch : 0;
  const std::uint8_t token =
      static_cast<std::uint8_t>(std::min<std::size_t>(lit_len, 15) << 4 |
                                std::min<std::size_t>(match_code, 15));
  out.push_back(static_cast<std::byte>(token));
  if (lit_len >= 15) write_length(out, lit_len - 15);
  out.insert(out.end(), literals.begin(), literals.end());
  if (match_len == 0) return;  // terminal literals-only sequence
  out.push_back(static_cast<std::byte>(distance & 0xFF));
  out.push_back(static_cast<std::byte>(distance >> 8));
  if (match_code >= 15) write_length(out, match_code - 15);
}

std::uint32_t chain_depth_for_level(int level) {
  switch (level) {
    case 1:
      return 1;
    case 2:
      return 4;
    case 3:
      return 8;
    default:
      return 16u << std::min(level - 4, 5);
  }
}

}  // namespace

Lz4StyleCodec::Lz4StyleCodec(int level) : level_(level) {
  if (level < 1 || level > 9) {
    throw CodecError("nlz4 level must be in [1, 9]");
  }
}

void Lz4StyleCodec::compress_payload(ByteSpan input, Bytes& out) const {
  // Byte-oriented format: incompressible input expands slightly (token +
  // length bytes per sequence), so reserve a whisker over the input size.
  out.reserve(out.size() + input.size() + input.size() / 16 + 16);
  MatchFinder finder(input, kWindow, kMinMatch, /*max_match=*/65535,
                     chain_depth_for_level(level_));
  std::size_t pos = 0;
  std::size_t literal_start = 0;
  while (pos < input.size()) {
    const Match m = finder.find(pos);
    if (m.length >= kMinMatch) {
      emit_sequence(out,
                    input.subspan(literal_start, pos - literal_start),
                    m.length, m.distance);
      // Insert the positions the match covers so later data can refer into
      // it. Cap insertions for speed at low levels (LZ4-style skipping).
      const std::size_t end = pos + m.length;
      const std::size_t stride = level_ >= 4 ? 1 : 2;
      for (std::size_t p = pos; p < end; p += stride) finder.insert(p);
      pos = end;
      literal_start = pos;
    } else {
      finder.insert(pos);
      ++pos;
    }
  }
  // Terminal literals-only sequence (always present, possibly empty).
  emit_sequence(out, input.subspan(literal_start, pos - literal_start), 0, 0);
}

void Lz4StyleCodec::decompress_payload(ByteSpan payload,
                                       std::size_t original_size,
                                       Bytes& out) const {
  std::size_t pos = 0;
  while (pos < payload.size()) {
    const auto token = static_cast<std::uint8_t>(payload[pos++]);
    const std::size_t lit_len = read_length(payload, pos, token >> 4);
    if (pos + lit_len > payload.size()) {
      throw CodecError("truncated nlz4 literals");
    }
    out.insert(out.end(), payload.begin() + pos, payload.begin() + pos + lit_len);
    pos += lit_len;
    if (pos >= payload.size()) break;  // terminal sequence has no match
    if (pos + 2 > payload.size()) throw CodecError("truncated nlz4 offset");
    const std::uint32_t distance =
        static_cast<std::uint8_t>(payload[pos]) |
        (static_cast<std::uint32_t>(static_cast<std::uint8_t>(payload[pos + 1]))
         << 8);
    pos += 2;
    if (distance == 0 || distance > out.size()) {
      throw CodecError("invalid nlz4 match distance");
    }
    const std::size_t match_len =
        read_length(payload, pos, token & 0xF) + kMinMatch;
    if (out.size() + match_len > original_size) {
      throw CodecError("nlz4 match overflows declared size");
    }
    // Byte-by-byte copy: overlapping matches (distance < length) replicate.
    std::size_t src = out.size() - distance;
    for (std::size_t k = 0; k < match_len; ++k) {
      out.push_back(out[src + k]);
    }
  }
}

}  // namespace ndpcr::compress
