#include "compress/lz4_style.hpp"

#include <algorithm>
#include <cstring>

#include "compress/kernels.hpp"
#include "compress/matcher.hpp"
#include "compress/scratch.hpp"

namespace ndpcr::compress {
namespace {

constexpr std::uint32_t kMinMatch = 4;
constexpr std::uint32_t kWindow = 0xFFFF;  // 16-bit offsets

// Acceleration ramp: after 2^kSkipTrigger consecutive misses the probe
// stride becomes 2, after another 2^kSkipTrigger it becomes 3, and so on
// (the LZ4 fast-path heuristic).
constexpr int kSkipTrigger = 4;

void write_length(Bytes& out, std::size_t len) {
  // 255-block continuation, as in LZ4.
  while (len >= 255) {
    out.push_back(std::byte{255});
    len -= 255;
  }
  out.push_back(static_cast<std::byte>(len));
}

void emit_sequence(Bytes& out, ByteSpan literals, std::uint32_t match_len,
                   std::uint32_t distance) {
  const std::size_t lit_len = literals.size();
  const std::size_t match_code = match_len ? match_len - kMinMatch : 0;
  const std::uint8_t token =
      static_cast<std::uint8_t>(std::min<std::size_t>(lit_len, 15) << 4 |
                                std::min<std::size_t>(match_code, 15));
  out.push_back(static_cast<std::byte>(token));
  if (lit_len >= 15) write_length(out, lit_len - 15);
  out.insert(out.end(), literals.begin(), literals.end());
  if (match_len == 0) return;  // terminal literals-only sequence
  out.push_back(static_cast<std::byte>(distance & 0xFF));
  out.push_back(static_cast<std::byte>(distance >> 8));
  if (match_code >= 15) write_length(out, match_code - 15);
}

std::uint32_t chain_depth_for_level(int level) {
  switch (level) {
    case 1:
      return 1;
    case 2:
      return 4;
    case 3:
      return 8;
    default:
      return 16u << std::min(level - 4, 5);
  }
}

}  // namespace

Lz4StyleCodec::Lz4StyleCodec(int level, bool accelerate)
    : level_(level), accelerate_(accelerate) {
  if (level < 1 || level > 9) {
    throw CodecError("nlz4 level must be in [1, 9]");
  }
}

void Lz4StyleCodec::compress_payload(ByteSpan input, Bytes& out,
                                     CodecScratch& scratch) const {
  // Byte-oriented format: incompressible input expands slightly (token +
  // length bytes per sequence), so reserve a whisker over the input size.
  out.reserve(out.size() + input.size() + input.size() / 16 + 16);
  MatchFinder finder(input, kWindow, kMinMatch, /*max_match=*/65535,
                     chain_depth_for_level(level_), scratch.match_head,
                     scratch.match_prev);
  std::size_t pos = 0;
  std::size_t literal_start = 0;
  std::uint32_t search_tick = 1u << kSkipTrigger;
  while (pos < input.size()) {
    // The parse is greedy, so the probed position is always committed
    // (matched or emitted as a literal) - find_and_insert hashes once.
    const Match m = finder.find_and_insert(pos);
    if (m.length >= kMinMatch) {
      emit_sequence(out,
                    input.subspan(literal_start, pos - literal_start),
                    m.length, m.distance);
      // Insert the positions the match covers so later data can refer into
      // it (pos itself was inserted by find_and_insert). Cap insertions for
      // speed at low levels (LZ4-style skipping).
      const std::size_t end = pos + m.length;
      const std::size_t stride = level_ >= 4 ? 1 : 2;
      for (std::size_t p = pos + stride; p < end; p += stride) {
        finder.insert(p);
      }
      pos = end;
      literal_start = pos;
      search_tick = 1u << kSkipTrigger;
    } else {
      pos += accelerate_ ? (search_tick++ >> kSkipTrigger) : 1;
    }
  }
  // Terminal literals-only sequence (always present, possibly empty).
  // Acceleration can step pos past the end, so bound by the input size.
  emit_sequence(out, input.subspan(literal_start), 0, 0);
}

std::size_t Lz4StyleCodec::decompress_payload(ByteSpan payload, std::byte* dst,
                                              std::size_t original_size,
                                              CodecScratch&) const {
  // Pointer-based hot loop. The interior fast paths replace exact-length
  // copies (a memcpy call with a runtime size, dominated by call overhead
  // at typical 4-40 byte sequence sizes) with fixed-size block copies that
  // may overrun the logical length by up to 31 bytes. The guard conditions
  // keep every overrun inside the payload (reads) and inside bytes a later
  // sequence of this same decode overwrites (writes) - a block never
  // outruns the match distance, so the final buffer contents are
  // bit-identical to the careful path.
  const auto* in = reinterpret_cast<const std::uint8_t*>(payload.data());
  const std::uint8_t* const in_end = in + payload.size();
  std::byte* out = dst;
  std::byte* const out_end = dst + original_size;
  while (in < in_end) {
    const std::uint8_t token = *in++;
    std::size_t lit_len = token >> 4;
    if (lit_len == 15) {
      while (true) {
        if (in >= in_end) throw CodecError("truncated nlz4 length");
        const std::uint8_t b = *in++;
        lit_len += b;
        if (b != 255) break;
      }
    }
    if (lit_len <= 64 && lit_len + 32 <= static_cast<std::size_t>(in_end - in) &&
        lit_len + 64 <= static_cast<std::size_t>(out_end - out)) [[likely]] {
      // <= 64 literals (the common case): at most two fixed 32-byte copies.
      std::memcpy(out, in, 32);
      if (lit_len > 32) std::memcpy(out + 32, in + 32, 32);
    } else if (lit_len + 32 <= static_cast<std::size_t>(in_end - in) &&
               lit_len + 32 <= static_cast<std::size_t>(out_end - out)) {
      for (std::size_t o = 0; o < lit_len; o += 32) {
        std::memcpy(out + o, in + o, 32);
      }
    } else {
      if (lit_len > static_cast<std::size_t>(in_end - in)) {
        throw CodecError("truncated nlz4 literals");
      }
      if (lit_len > static_cast<std::size_t>(out_end - out)) {
        throw CodecError("nlz4 literals overflow declared size");
      }
      if (lit_len != 0) std::memcpy(out, in, lit_len);
    }
    out += lit_len;
    in += lit_len;
    if (in >= in_end) break;  // terminal sequence has no match
    if (in_end - in < 2) throw CodecError("truncated nlz4 offset");
    const std::uint32_t distance =
        in[0] | (static_cast<std::uint32_t>(in[1]) << 8);
    in += 2;
    if (distance == 0 ||
        distance > static_cast<std::size_t>(out - dst)) {
      throw CodecError("invalid nlz4 match distance");
    }
    std::size_t match_len = (token & 0xF) + kMinMatch;
    if (match_len == 15 + kMinMatch) {
      while (true) {
        if (in >= in_end) throw CodecError("truncated nlz4 length");
        const std::uint8_t b = *in++;
        match_len += b;
        if (b != 255) break;
      }
    }
    if (match_len > static_cast<std::size_t>(out_end - out)) {
      throw CodecError("nlz4 match overflows declared size");
    }
    // Interior matches use block copies (a block must not outrun the
    // overlap distance); short-distance and end-of-buffer matches take the
    // exact overlap-aware kernel.
    if (match_len + 32 <= static_cast<std::size_t>(out_end - out) &&
        distance >= 8) [[likely]] {
      const std::byte* src = out - distance;
      if (distance >= 32) {
        for (std::size_t o = 0; o < match_len; o += 32)
          std::memcpy(out + o, src + o, 32);
      } else {
        for (std::size_t o = 0; o < match_len; o += 8)
          std::memcpy(out + o, src + o, 8);
      }
    } else {
      copy_match(out, distance, match_len);
    }
    out += match_len;
  }
  return static_cast<std::size_t>(out - dst);
}

}  // namespace ndpcr::compress
