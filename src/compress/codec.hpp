#pragma once

// Codec interface for the ndpcr compression library.
//
// The paper's compression study (section 5) measures gzip, bzip2, xz and
// lz4 at several levels. This library provides from-scratch codecs in the
// same algorithm families so the study can be re-run end to end:
//
//   nlz4    - LZ77 with a byte-aligned token format (LZ4 family)
//   ngzip   - LZSS + canonical Huffman (DEFLATE family)
//   nbzip2  - BWT + MTF + zero-RLE + canonical Huffman (bzip2 family)
//   nxz     - large-window LZ77 + adaptive binary range coder (LZMA family)
//   rle     - byte run-length encoding (diagnostic baseline)
//   null    - memcpy (measures framing overhead; compression factor 0)
//
// Every compressed stream carries a small common frame (magic, codec id,
// level, original size, payload CRC32) so that decompression is
// self-describing and corruption is detected rather than propagated.

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace ndpcr::compress {

class CodecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Reusable workspace (see scratch.hpp). Forward-declared here because
// bitstream.hpp includes this header.
struct CodecScratch;

enum class CodecId : std::uint8_t {
  kNull = 0,
  kRle = 1,
  kLz4Style = 2,
  kDeflateStyle = 3,
  kBzipStyle = 4,
  kXzStyle = 5,
};

class Codec {
 public:
  virtual ~Codec() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual CodecId id() const = 0;
  [[nodiscard]] virtual int level() const = 0;

  // Compress `input` into a framed stream. Never fails (incompressible data
  // grows by the frame plus the codec's worst-case expansion). The scratch
  // overload reuses the workspace's tables and buffers; the plain overload
  // allocates a transient workspace.
  [[nodiscard]] Bytes compress(ByteSpan input) const;
  [[nodiscard]] Bytes compress(ByteSpan input, CodecScratch& scratch) const;

  // Decompress a framed stream produced by the same codec type. Throws
  // CodecError on malformed input, codec mismatch, or CRC failure.
  [[nodiscard]] Bytes decompress(ByteSpan framed) const;
  [[nodiscard]] Bytes decompress(ByteSpan framed, CodecScratch& scratch) const;

  // Decompress directly into a caller-owned window of exactly
  // `expected_size` bytes (the chunked parallel-decode path: each worker
  // decodes its chunk into its slice of one pre-sized output buffer).
  // Performs the same validation as decompress(), including the CRC check
  // over the written window, and additionally rejects streams whose
  // declared size differs from `expected_size`.
  void decompress_into(ByteSpan framed, std::byte* dst,
                       std::size_t expected_size, CodecScratch& scratch) const;

  // Compression factor as defined in the paper (section 5.1.2):
  //   1 - compressed_size / uncompressed_size
  // so larger is better and 0 means no reduction.
  static double compression_factor(std::size_t uncompressed,
                                   std::size_t compressed);

 protected:
  // Codec payload hooks implemented by each codec. decompress_payload
  // writes at most `original_size` bytes into `dst` and returns the number
  // written; the caller sized and validated `dst` and verifies the CRC.
  virtual void compress_payload(ByteSpan input, Bytes& out,
                                CodecScratch& scratch) const = 0;
  virtual std::size_t decompress_payload(ByteSpan payload, std::byte* dst,
                                         std::size_t original_size,
                                         CodecScratch& scratch) const = 0;
};

// Frame layout constants (little-endian):
//   [0]      magic 'N'
//   [1]      codec id
//   [2]      level
//   [3..10]  u64 original size
//   [11..14] u32 CRC32 of the original data
//   [15..]   codec payload
inline constexpr std::size_t kFrameHeaderSize = 15;

// Factory: construct a codec by id and level. Throws CodecError for an
// unknown id or an out-of-range level.
std::unique_ptr<Codec> make_codec(CodecId id, int level);

// Factory by name ("nlz4", "ngzip", "nbzip2", "nxz", "rle", "null").
std::unique_ptr<Codec> make_codec(const std::string& name, int level);

// The seven utility/level combinations of the paper's Table 2, in table
// order: ngzip(1), ngzip(6), nbzip2(1), nbzip2(9), nxz(1), nxz(6), nlz4(1).
struct CodecSpec {
  CodecId id;
  int level;
  std::string display_name;  // e.g. "ngzip(1)"
};
std::vector<CodecSpec> paper_codec_suite();

}  // namespace ndpcr::compress
