#pragma once

// nlz4: byte-aligned LZ77 in the LZ4 block format family.
//
// A sequence is [token][literal bytes][offset u16][length extensions]:
//   token high nibble = literal count (15 => continued in 255-blocks)
//   token low nibble  = match length - 4 (15 => continued in 255-blocks)
// Offsets are 16-bit little-endian (64 KiB window). The stream ends with a
// literals-only sequence (offset omitted), exactly as in LZ4.
//
// Levels: level 1 uses a single-probe hash table (LZ4's fast path); levels
// 2-9 walk hash chains with increasing depth (LZ4-HC flavored). The output
// format is identical across levels.

#include "compress/codec.hpp"

namespace ndpcr::compress {

class Lz4StyleCodec final : public Codec {
 public:
  // `accelerate` enables LZ4-style skip acceleration: after consecutive
  // match misses the probe stride grows, so incompressible regions are
  // skipped in large steps. This changes the compressed bytes (still a
  // valid stream, just a different parse), so it is opt-in and never used
  // by the registry - the default output stays bit-identical across
  // releases.
  explicit Lz4StyleCodec(int level, bool accelerate = false);

  [[nodiscard]] std::string name() const override { return "nlz4"; }
  [[nodiscard]] CodecId id() const override { return CodecId::kLz4Style; }
  [[nodiscard]] int level() const override { return level_; }

 protected:
  void compress_payload(ByteSpan input, Bytes& out,
                        CodecScratch& scratch) const override;
  std::size_t decompress_payload(ByteSpan payload, std::byte* dst,
                                 std::size_t original_size,
                                 CodecScratch& scratch) const override;

 private:
  int level_;
  bool accelerate_;
};

}  // namespace ndpcr::compress
