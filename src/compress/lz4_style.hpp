#pragma once

// nlz4: byte-aligned LZ77 in the LZ4 block format family.
//
// A sequence is [token][literal bytes][offset u16][length extensions]:
//   token high nibble = literal count (15 => continued in 255-blocks)
//   token low nibble  = match length - 4 (15 => continued in 255-blocks)
// Offsets are 16-bit little-endian (64 KiB window). The stream ends with a
// literals-only sequence (offset omitted), exactly as in LZ4.
//
// Levels: level 1 uses a single-probe hash table (LZ4's fast path); levels
// 2-9 walk hash chains with increasing depth (LZ4-HC flavored). The output
// format is identical across levels.

#include "compress/codec.hpp"

namespace ndpcr::compress {

class Lz4StyleCodec final : public Codec {
 public:
  explicit Lz4StyleCodec(int level);

  [[nodiscard]] std::string name() const override { return "nlz4"; }
  [[nodiscard]] CodecId id() const override { return CodecId::kLz4Style; }
  [[nodiscard]] int level() const override { return level_; }

 protected:
  void compress_payload(ByteSpan input, Bytes& out) const override;
  void decompress_payload(ByteSpan payload, std::size_t original_size,
                          Bytes& out) const override;

 private:
  int level_;
};

}  // namespace ndpcr::compress
