#pragma once

// The evaluation scenario (Table 4 parameters) and the C/R configurations
// compared in section 6.1.2.

#include <cstdint>
#include <string>

#include "sim/timeline.hpp"

namespace ndpcr::model {

// Machine/application parameters of Table 4, defaulting to the projected
// exascale system.
struct CrScenario {
  double mtti = 1800.0;              // 30 minutes
  double checkpoint_bytes = 112e9;   // 80% of 140 GB node memory
  double local_bw = 15e9;            // compute-local NVM, 15 GB/s
  double io_bw_per_node = 100e6;     // 10 TB/s / 100k nodes
  double local_interval = 150.0;     // checkpoint interval (to local)
  double host_compress_bw = 640e6;   // 64 cores x 10 MB/s
  double host_decompress_bw = 16e9;  // conservative vs 22.4 GB/s (sec 6.1.3)
  double ndp_compress_bw = 440.4e6;  // 4 NDP cores of ngzip(1)
};

enum class ConfigKind { kIoOnly, kLocalIoHost, kLocalIoNdp };

// One evaluated C/R configuration: strategy, whether the IO stream is
// compressed (and at what factor), and the probability that a failure is
// recoverable from locally-saved checkpoints.
struct CrConfig {
  ConfigKind kind = ConfigKind::kLocalIoHost;
  double compression_factor = 0.0;  // 0 = no compression
  double p_local_recovery = 0.85;

  // Paper-style label, e.g. "Local(80%) + I/O-Host (cf 73%)".
  [[nodiscard]] std::string label() const;
};

// Monte Carlo controls shared by evaluations.
struct SimOptions {
  double total_work = 300.0 * 3600;  // useful seconds per trial
  int trials = 3;
  std::uint64_t seed = 0x5EED;
};

}  // namespace ndpcr::model
