#pragma once

// Evaluator: turns a (scenario, configuration) pair into the paper's
// reported quantities - progress rate, overhead breakdown, and the
// locally-saved : IO-saved checkpoint ratio.
//
// For Local + I/O-Host the ratio is a free parameter with an interior
// optimum (Figure 4); the evaluator finds it empirically, as the paper
// does. For Local + I/O-NDP checkpoints drain to IO as fast as the
// pipeline allows, so the effective ratio is derived, not optimized
// (section 6.2). For I/O Only the checkpoint interval is Daly-optimal for
// the IO commit time.

#include <cstdint>
#include <vector>

#include "model/scenario.hpp"
#include "sim/timeline.hpp"

namespace ndpcr::model {

struct Evaluation {
  sim::TimelineResult result;
  std::uint32_t io_every = 0;    // locally-saved : IO-saved ratio in effect
  double interval = 0.0;         // compute interval used (s)

  [[nodiscard]] double progress_rate() const {
    return result.progress_rate();
  }
};

class Evaluator {
 public:
  Evaluator(const CrScenario& scenario, const SimOptions& options = {});

  // Full evaluation; runs the ratio optimization for host configurations.
  [[nodiscard]] Evaluation evaluate(const CrConfig& config) const;

  // Evaluation at an explicitly chosen ratio (used by the Figure 4 sweep).
  [[nodiscard]] Evaluation evaluate_at_ratio(const CrConfig& config,
                                             std::uint32_t io_every) const;

  // The empirical optimal ratio for a host configuration (Figure 5).
  [[nodiscard]] std::uint32_t optimal_io_every(const CrConfig& config) const;

  // The NDP pipeline's effective ratio: local checkpoints per completed IO
  // checkpoint, ceil(drain / local period) (section 6.2: the NDP saves to
  // IO "as frequently as possible").
  [[nodiscard]] std::uint32_t ndp_effective_ratio(
      const CrConfig& config) const;

  // Progress rate with an explicit local checkpoint interval (overriding
  // the scenario's). Used by the interval ablation.
  [[nodiscard]] double rate_at_interval(const CrConfig& config,
                                        std::uint32_t io_every,
                                        double interval) const;

  // The empirically optimal local checkpoint interval for a configuration
  // (deterministic batched bracket search on the simulated progress rate,
  // seeded at the Daly optimum for the local commit time; the batch of
  // candidate intervals per round evaluates concurrently on the engine).
  // The paper's Table 4 fixes 150 s; this quantifies how close that is.
  [[nodiscard]] double optimal_local_interval(const CrConfig& config,
                                              std::uint32_t io_every) const;

  // Translate to a raw simulator configuration (exposed for tests and the
  // ablation benches).
  [[nodiscard]] sim::TimelineConfig timeline_config(
      const CrConfig& config, std::uint32_t io_every) const;

  [[nodiscard]] const CrScenario& scenario() const { return scenario_; }
  [[nodiscard]] const SimOptions& options() const { return options_; }

 private:
  // Progress rates for a batch of candidate ratios / intervals, evaluated
  // concurrently on the engine (serial when already inside a pool task).
  // Each candidate runs its trials serially with the same fixed seeds the
  // serial path uses, so the returned rates are thread-count-invariant.
  [[nodiscard]] std::vector<double> rates_at_ratios(
      const CrConfig& config, const std::vector<std::uint32_t>& ratios) const;
  [[nodiscard]] std::vector<double> rates_at_intervals(
      const CrConfig& config, std::uint32_t io_every,
      const std::vector<double>& intervals) const;

  CrScenario scenario_;
  SimOptions options_;
};

}  // namespace ndpcr::model
