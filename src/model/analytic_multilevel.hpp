#pragma once

// First-order analytic model of multilevel C/R, used to cross-validate the
// Monte Carlo simulator and to explore parameter spaces cheaply.
//
// Renewal-reward approximation: in steady state the application pays the
// no-failure overhead (local commits, plus the IO commit every k-th cycle
// for host configurations) continuously, and each interrupt (rate 1/MTTI
// per wall second) additionally costs an expected restore plus the re-
// execution of the work lost since the recovery checkpoint. Failures that
// strike during restore or rerun are folded in to first order by pricing
// re-executed work at the loaded (overhead-inclusive) rate; deeper failure
// cascades are neglected, so the model slightly underestimates overhead at
// very low progress rates. The simulator is authoritative.

#include "model/scenario.hpp"
#include "sim/breakdown.hpp"

namespace ndpcr::model {

struct AnalyticInputs {
  double mtti = 1800.0;
  double local_interval = 150.0;  // tau: useful work per cycle
  double local_commit = 7.47;     // delta_L (0 for IO Only: fold into io)
  double io_commit = 0.0;         // blocking IO commit (host configs)
  double local_restore = 7.47;
  double io_restore = 1120.0;
  std::uint32_t io_every = 1;     // k; 0 = no IO level
  double p_local = 0.85;          // P(recover from local)
  // For NDP configs: expected lag (in completed local cycles) between the
  // newest local checkpoint and the newest checkpoint landed on IO.
  double ndp_lag_cycles = 0.0;
};

struct AnalyticResult {
  double wall_per_work = 1.0;  // expected wall seconds per useful second
  sim::Breakdown breakdown;    // per unit of useful work

  [[nodiscard]] double progress_rate() const { return 1.0 / wall_per_work; }
};

AnalyticResult analytic_multilevel(const AnalyticInputs& in);

}  // namespace ndpcr::model
