#include "model/analytic_multilevel.hpp"

#include <stdexcept>

namespace ndpcr::model {

AnalyticResult analytic_multilevel(const AnalyticInputs& in) {
  if (in.mtti <= 0 || in.local_interval <= 0) {
    throw std::invalid_argument("mtti and interval must be positive");
  }
  const double tau = in.local_interval;
  const double k = in.io_every > 0 ? static_cast<double>(in.io_every) : 0.0;

  // No-failure overhead per unit of useful work.
  const double io_commit_per_cycle = k > 0 ? in.io_commit / k : 0.0;
  const double cycle_wall = tau + in.local_commit + io_commit_per_cycle;
  const double base = cycle_wall / tau;  // loaded wall seconds per work sec

  // Where within a cycle a failure lands (uniform over wall time):
  // during compute it loses the offset; during the commits it loses a full
  // tau (the in-progress checkpoint hasn't committed).
  const double overhead_wall = in.local_commit + io_commit_per_cycle;
  const double loss_local = (tau * (tau / 2.0) + overhead_wall * tau) /
                            cycle_wall;
  // IO-level rollback: additionally the whole cycles since the last IO
  // checkpoint - (k-1)/2 on average for host configs, plus the NDP
  // pipeline lag for NDP configs.
  double loss_io = loss_local;
  if (k > 0) loss_io += tau * (k - 1.0) / 2.0;
  loss_io += tau * in.ndp_lag_cycles;

  const double p = in.p_local;
  const double failures_per_work = base / in.mtti;

  AnalyticResult out;
  auto& b = out.breakdown;
  b.compute = 1.0;
  b.ckpt_local = in.local_commit / tau;
  b.ckpt_io = io_commit_per_cycle / tau;
  b.restore_local = failures_per_work * p * in.local_restore;
  b.restore_io = failures_per_work * (1.0 - p) * in.io_restore;
  // Lost work is re-executed at the loaded rate (it pays checkpoint
  // overhead again while being redone).
  b.rerun_local = failures_per_work * p * loss_local * base;
  b.rerun_io = failures_per_work * (1.0 - p) * loss_io * base;

  out.wall_per_work = b.total();
  return out;
}

}  // namespace ndpcr::model
