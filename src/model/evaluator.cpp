#include "model/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analytic/daly.hpp"
#include "common/table.hpp"
#include "ndp/ndp.hpp"

namespace ndpcr::model {

std::string CrConfig::label() const {
  std::string s;
  switch (kind) {
    case ConfigKind::kIoOnly:
      s = "I/O Only";
      break;
    case ConfigKind::kLocalIoHost:
      s = "Local(" + fmt_fixed(p_local_recovery * 100.0, 0) + "%) + I/O-Host";
      break;
    case ConfigKind::kLocalIoNdp:
      s = "Local(" + fmt_fixed(p_local_recovery * 100.0, 0) + "%) + I/O-NDP";
      break;
  }
  if (compression_factor > 0.0) {
    s += " (cf " + fmt_fixed(compression_factor * 100.0, 0) + "%)";
  }
  return s;
}

Evaluator::Evaluator(const CrScenario& scenario, const SimOptions& options)
    : scenario_(scenario), options_(options) {
  if (scenario.mtti <= 0 || scenario.checkpoint_bytes <= 0 ||
      scenario.io_bw_per_node <= 0) {
    throw std::invalid_argument("scenario values must be positive");
  }
}

sim::TimelineConfig Evaluator::timeline_config(
    const CrConfig& config, std::uint32_t io_every) const {
  sim::TimelineConfig tc;
  tc.mtti = scenario_.mtti;
  tc.checkpoint_bytes = scenario_.checkpoint_bytes;
  tc.local_bw = scenario_.local_bw;
  tc.io_bw = scenario_.io_bw_per_node;
  tc.compression_factor = config.compression_factor;
  tc.host_compress_bw = scenario_.host_compress_bw;
  tc.host_decompress_bw = scenario_.host_decompress_bw;
  tc.ndp_compress_bw = scenario_.ndp_compress_bw;
  tc.p_local_recovery = config.p_local_recovery;
  tc.total_work = options_.total_work;
  tc.io_every = io_every;

  switch (config.kind) {
    case ConfigKind::kIoOnly: {
      tc.strategy = sim::Strategy::kIoOnly;
      // Daly-optimal interval for the (compressed) IO commit time.
      sim::TimelineSimulator probe(
          [&] {
            sim::TimelineConfig t = tc;
            t.strategy = sim::Strategy::kIoOnly;
            t.local_interval = 1.0;  // placeholder for construction
            return t;
          }(),
          0);
      const double delta = probe.host_io_commit_time();
      tc.local_interval =
          analytic::daly_optimal_interval(delta, scenario_.mtti);
      tc.io_every = 0;
      break;
    }
    case ConfigKind::kLocalIoHost:
      tc.strategy = sim::Strategy::kLocalIoHost;
      tc.local_interval = scenario_.local_interval;
      break;
    case ConfigKind::kLocalIoNdp:
      tc.strategy = sim::Strategy::kLocalIoNdp;
      tc.local_interval = scenario_.local_interval;
      tc.io_every = 0;  // the NDP drains as fast as it can
      break;
  }
  return tc;
}

double Evaluator::rate_at(const CrConfig& config,
                          std::uint32_t io_every) const {
  const auto tc = timeline_config(config, io_every);
  return sim::TimelineSimulator::run_trials(tc, options_.trials,
                                            options_.seed)
      .progress_rate();
}

double Evaluator::rate_at_interval(const CrConfig& config,
                                   std::uint32_t io_every,
                                   double interval) const {
  auto tc = timeline_config(config, io_every);
  tc.local_interval = interval;
  return sim::TimelineSimulator::run_trials(tc, options_.trials,
                                            options_.seed)
      .progress_rate();
}

double Evaluator::optimal_local_interval(const CrConfig& config,
                                         std::uint32_t io_every) const {
  // Seed with Daly's optimum for the local commit time, then golden-
  // section over a generous bracket. Common random numbers make the
  // objective smooth enough to search.
  const double local_commit = scenario_.checkpoint_bytes / scenario_.local_bw;
  const double seed_tau =
      analytic::daly_optimal_interval(local_commit, scenario_.mtti);
  double lo = seed_tau / 8.0;
  double hi = seed_tau * 8.0;
  const double phi = 0.6180339887498949;
  double a = hi - phi * (hi - lo);
  double b = lo + phi * (hi - lo);
  double fa = rate_at_interval(config, io_every, a);
  double fb = rate_at_interval(config, io_every, b);
  for (int iter = 0; iter < 40 && (hi - lo) > 1.0; ++iter) {
    if (fa > fb) {  // maximizing
      hi = b;
      b = a;
      fb = fa;
      a = hi - phi * (hi - lo);
      fa = rate_at_interval(config, io_every, a);
    } else {
      lo = a;
      a = b;
      fa = fb;
      b = lo + phi * (hi - lo);
      fb = rate_at_interval(config, io_every, b);
    }
  }
  return 0.5 * (lo + hi);
}

std::uint32_t Evaluator::ndp_effective_ratio(const CrConfig& config) const {
  const auto tc = timeline_config(config, 0);
  sim::TimelineSimulator sim(tc, 0);
  const double local_period =
      scenario_.local_interval + sim.local_commit_time();
  return static_cast<std::uint32_t>(
      std::max(1.0, std::ceil(sim.ndp_drain_time() / local_period)));
}

std::uint32_t Evaluator::optimal_io_every(const CrConfig& config) const {
  if (config.kind != ConfigKind::kLocalIoHost) {
    throw std::logic_error(
        "ratio optimization only applies to Local + I/O-Host");
  }
  // Coarse geometric sweep followed by a local refinement. Common random
  // numbers (fixed seed in rate_at) keep the comparison low-noise.
  std::uint32_t best_k = 1;
  double best_rate = -1.0;
  std::uint32_t k = 1;
  std::vector<std::uint32_t> grid;
  while (k <= 4096) {
    grid.push_back(k);
    k = std::max(k + 1, static_cast<std::uint32_t>(
                            std::lround(static_cast<double>(k) * 1.5)));
  }
  for (std::uint32_t candidate : grid) {
    const double rate = rate_at(config, candidate);
    if (rate > best_rate) {
      best_rate = rate;
      best_k = candidate;
    }
  }
  // Refine around the coarse winner.
  const auto lo = static_cast<std::uint32_t>(
      std::max<std::int64_t>(1, static_cast<std::int64_t>(best_k * 2) / 3));
  const std::uint32_t hi = best_k + std::max<std::uint32_t>(2, best_k / 2);
  const std::uint32_t stride = std::max<std::uint32_t>(1, (hi - lo) / 16);
  for (std::uint32_t candidate = lo; candidate <= hi; candidate += stride) {
    const double rate = rate_at(config, candidate);
    if (rate > best_rate) {
      best_rate = rate;
      best_k = candidate;
    }
  }
  return best_k;
}

Evaluation Evaluator::evaluate_at_ratio(const CrConfig& config,
                                        std::uint32_t io_every) const {
  const auto tc = timeline_config(config, io_every);
  Evaluation ev;
  ev.result = sim::TimelineSimulator::run_trials(tc, options_.trials,
                                                 options_.seed);
  ev.interval = tc.local_interval;
  switch (config.kind) {
    case ConfigKind::kIoOnly:
      ev.io_every = 1;
      break;
    case ConfigKind::kLocalIoHost:
      ev.io_every = io_every;
      break;
    case ConfigKind::kLocalIoNdp:
      ev.io_every = ndp_effective_ratio(config);
      break;
  }
  return ev;
}

Evaluation Evaluator::evaluate(const CrConfig& config) const {
  std::uint32_t ratio = 0;
  if (config.kind == ConfigKind::kLocalIoHost) {
    ratio = optimal_io_every(config);
  }
  return evaluate_at_ratio(config, ratio);
}

}  // namespace ndpcr::model
