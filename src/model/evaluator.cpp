#include "model/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analytic/daly.hpp"
#include "common/table.hpp"
#include "exec/task_pool.hpp"
#include "ndp/ndp.hpp"

namespace ndpcr::model {
namespace {

// The engine pool for a candidate batch: the global pool at top level,
// serial when this evaluation is itself a task of some pool (the engine
// rejects nested parallel_for).
exec::TaskPool* batch_pool() {
  return exec::TaskPool::in_worker() ? nullptr : &exec::global_pool();
}

}  // namespace

std::string CrConfig::label() const {
  std::string s;
  switch (kind) {
    case ConfigKind::kIoOnly:
      s = "I/O Only";
      break;
    case ConfigKind::kLocalIoHost:
      s = "Local(" + fmt_fixed(p_local_recovery * 100.0, 0) + "%) + I/O-Host";
      break;
    case ConfigKind::kLocalIoNdp:
      s = "Local(" + fmt_fixed(p_local_recovery * 100.0, 0) + "%) + I/O-NDP";
      break;
  }
  if (compression_factor > 0.0) {
    s += " (cf " + fmt_fixed(compression_factor * 100.0, 0) + "%)";
  }
  return s;
}

Evaluator::Evaluator(const CrScenario& scenario, const SimOptions& options)
    : scenario_(scenario), options_(options) {
  if (scenario.mtti <= 0 || scenario.checkpoint_bytes <= 0 ||
      scenario.io_bw_per_node <= 0) {
    throw std::invalid_argument("scenario values must be positive");
  }
}

sim::TimelineConfig Evaluator::timeline_config(
    const CrConfig& config, std::uint32_t io_every) const {
  sim::TimelineConfig tc;
  tc.mtti = scenario_.mtti;
  tc.checkpoint_bytes = scenario_.checkpoint_bytes;
  tc.local_bw = scenario_.local_bw;
  tc.io_bw = scenario_.io_bw_per_node;
  tc.compression_factor = config.compression_factor;
  tc.host_compress_bw = scenario_.host_compress_bw;
  tc.host_decompress_bw = scenario_.host_decompress_bw;
  tc.ndp_compress_bw = scenario_.ndp_compress_bw;
  tc.p_local_recovery = config.p_local_recovery;
  tc.total_work = options_.total_work;
  tc.io_every = io_every;

  switch (config.kind) {
    case ConfigKind::kIoOnly: {
      tc.strategy = sim::Strategy::kIoOnly;
      // Daly-optimal interval for the (compressed) IO commit time.
      sim::TimelineSimulator probe(
          [&] {
            sim::TimelineConfig t = tc;
            t.strategy = sim::Strategy::kIoOnly;
            t.local_interval = 1.0;  // placeholder for construction
            return t;
          }(),
          0);
      const double delta = probe.host_io_commit_time();
      tc.local_interval =
          analytic::daly_optimal_interval(delta, scenario_.mtti);
      tc.io_every = 0;
      break;
    }
    case ConfigKind::kLocalIoHost:
      tc.strategy = sim::Strategy::kLocalIoHost;
      tc.local_interval = scenario_.local_interval;
      break;
    case ConfigKind::kLocalIoNdp:
      tc.strategy = sim::Strategy::kLocalIoNdp;
      tc.local_interval = scenario_.local_interval;
      tc.io_every = 0;  // the NDP drains as fast as it can
      break;
  }
  return tc;
}

double Evaluator::rate_at_interval(const CrConfig& config,
                                   std::uint32_t io_every,
                                   double interval) const {
  auto tc = timeline_config(config, io_every);
  tc.local_interval = interval;
  return sim::TimelineSimulator::run_trials(tc, options_.trials,
                                            options_.seed)
      .progress_rate();
}

std::vector<double> Evaluator::rates_at_ratios(
    const CrConfig& config, const std::vector<std::uint32_t>& ratios) const {
  exec::TaskPool* pool = batch_pool();
  auto one = [&](std::size_t i) {
    const auto tc = timeline_config(config, ratios[i]);
    return sim::TimelineSimulator::run_trials(tc, options_.trials,
                                              options_.seed, nullptr)
        .progress_rate();
  };
  if (pool == nullptr) {
    std::vector<double> rates(ratios.size());
    for (std::size_t i = 0; i < ratios.size(); ++i) rates[i] = one(i);
    return rates;
  }
  return pool->parallel_map(ratios.size(), one);
}

std::vector<double> Evaluator::rates_at_intervals(
    const CrConfig& config, std::uint32_t io_every,
    const std::vector<double>& intervals) const {
  exec::TaskPool* pool = batch_pool();
  auto one = [&](std::size_t i) {
    auto tc = timeline_config(config, io_every);
    tc.local_interval = intervals[i];
    return sim::TimelineSimulator::run_trials(tc, options_.trials,
                                              options_.seed, nullptr)
        .progress_rate();
  };
  if (pool == nullptr) {
    std::vector<double> rates(intervals.size());
    for (std::size_t i = 0; i < intervals.size(); ++i) rates[i] = one(i);
    return rates;
  }
  return pool->parallel_map(intervals.size(), one);
}

double Evaluator::optimal_local_interval(const CrConfig& config,
                                         std::uint32_t io_every) const {
  // Seed with Daly's optimum for the local commit time, then shrink a
  // generous bracket around the best of a fixed grid of interior points,
  // batch by batch. Each batch evaluates concurrently on the engine;
  // because the candidate grid depends only on the bracket (never on the
  // schedule) and ties break toward the lower interval, the result is
  // identical for any thread count. Common random numbers (fixed seeds in
  // the rate evaluations) keep the objective smooth enough to search.
  const double local_commit = scenario_.checkpoint_bytes / scenario_.local_bw;
  const double seed_tau =
      analytic::daly_optimal_interval(local_commit, scenario_.mtti);
  double lo = seed_tau / 8.0;
  double hi = seed_tau * 8.0;
  constexpr int kPointsPerRound = 5;
  for (int round = 0; round < 12 && (hi - lo) > 1.0; ++round) {
    std::vector<double> points(kPointsPerRound);
    for (int i = 0; i < kPointsPerRound; ++i) {
      points[i] = lo + (hi - lo) * (i + 1) / (kPointsPerRound + 1);
    }
    const std::vector<double> rates =
        rates_at_intervals(config, io_every, points);
    std::size_t best = 0;
    for (std::size_t i = 1; i < rates.size(); ++i) {
      if (rates[i] > rates[best]) best = i;
    }
    // Narrow to the neighbours of the winner (the bracket endpoints stand
    // in at the edges), keeping the maximizer inside the new bracket.
    const double new_lo = best == 0 ? lo : points[best - 1];
    const double new_hi =
        best + 1 == rates.size() ? hi : points[best + 1];
    lo = new_lo;
    hi = new_hi;
  }
  return 0.5 * (lo + hi);
}

std::uint32_t Evaluator::ndp_effective_ratio(const CrConfig& config) const {
  const auto tc = timeline_config(config, 0);
  sim::TimelineSimulator sim(tc, 0);
  const double local_period =
      scenario_.local_interval + sim.local_commit_time();
  return static_cast<std::uint32_t>(
      std::max(1.0, std::ceil(sim.ndp_drain_time() / local_period)));
}

std::uint32_t Evaluator::optimal_io_every(const CrConfig& config) const {
  if (config.kind != ConfigKind::kLocalIoHost) {
    throw std::logic_error(
        "ratio optimization only applies to Local + I/O-Host");
  }
  // Coarse geometric sweep followed by a local refinement, each stage a
  // concurrent candidate batch on the engine. Common random numbers
  // (fixed seeds in the rate evaluations) keep the comparison low-noise,
  // and the index-ordered strict-> fold reproduces the serial sweep's
  // first-winner tie-breaking exactly.
  std::uint32_t best_k = 1;
  double best_rate = -1.0;
  std::uint32_t k = 1;
  std::vector<std::uint32_t> grid;
  while (k <= 4096) {
    grid.push_back(k);
    k = std::max(k + 1, static_cast<std::uint32_t>(
                            std::lround(static_cast<double>(k) * 1.5)));
  }
  const std::vector<double> coarse = rates_at_ratios(config, grid);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (coarse[i] > best_rate) {
      best_rate = coarse[i];
      best_k = grid[i];
    }
  }
  // Refine around the coarse winner.
  const auto lo = static_cast<std::uint32_t>(
      std::max<std::int64_t>(1, static_cast<std::int64_t>(best_k * 2) / 3));
  const std::uint32_t hi = best_k + std::max<std::uint32_t>(2, best_k / 2);
  const std::uint32_t stride = std::max<std::uint32_t>(1, (hi - lo) / 16);
  std::vector<std::uint32_t> fine;
  for (std::uint32_t candidate = lo; candidate <= hi; candidate += stride) {
    fine.push_back(candidate);
  }
  const std::vector<double> refined = rates_at_ratios(config, fine);
  for (std::size_t i = 0; i < fine.size(); ++i) {
    if (refined[i] > best_rate) {
      best_rate = refined[i];
      best_k = fine[i];
    }
  }
  return best_k;
}

Evaluation Evaluator::evaluate_at_ratio(const CrConfig& config,
                                        std::uint32_t io_every) const {
  const auto tc = timeline_config(config, io_every);
  Evaluation ev;
  ev.result = sim::TimelineSimulator::run_trials(tc, options_.trials,
                                                 options_.seed);
  ev.interval = tc.local_interval;
  switch (config.kind) {
    case ConfigKind::kIoOnly:
      ev.io_every = 1;
      break;
    case ConfigKind::kLocalIoHost:
      ev.io_every = io_every;
      break;
    case ConfigKind::kLocalIoNdp:
      ev.io_every = ndp_effective_ratio(config);
      break;
  }
  return ev;
}

Evaluation Evaluator::evaluate(const CrConfig& config) const {
  std::uint32_t ratio = 0;
  if (config.kind == ConfigKind::kLocalIoHost) {
    ratio = optimal_io_every(config);
  }
  return evaluate_at_ratio(config, ratio);
}

}  // namespace ndpcr::model
