#include "exec/task_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace ndpcr::exec {
namespace {

// Set while a thread is executing inside any TaskPool batch (workers for
// their lifetime, the submitting thread only while it participates).
thread_local bool tl_in_worker = false;

}  // namespace

unsigned default_thread_count() {
  if (const char* env = std::getenv("NDPCR_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n >= 1) return static_cast<unsigned>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

struct TaskPool::Impl {
  // Per-batch state. All fields are written by the submitting thread under
  // `m` while no worker is active; workers snapshot them under `m` when
  // they join a batch, so no unlocked write/read pair exists.
  const std::function<void(std::size_t)>* job = nullptr;
  std::size_t job_size = 0;
  std::size_t job_grain = 1;
  std::atomic<std::size_t> next{0};
  std::uint64_t generation = 0;

  std::mutex m;
  std::condition_variable cv_work;   // workers wait for a new generation
  std::condition_variable cv_done;   // submitter waits for active == 0
  unsigned active = 0;
  bool stop = false;

  std::mutex error_m;
  std::exception_ptr error;

  std::vector<std::thread> workers;
  unsigned thread_count = 1;

  void run_indices(const std::function<void(std::size_t)>& fn, std::size_t n,
                   std::size_t grain) {
    const bool outer = tl_in_worker;
    tl_in_worker = true;
    bool aborted = false;
    while (!aborted) {
      // One atomic claim per block of `grain` indices; indices inside a
      // block run in ascending order, so per-index-slot callers see the
      // same results as grain == 1.
      const std::size_t base = next.fetch_add(grain, std::memory_order_relaxed);
      if (base >= n) break;
      const std::size_t end = std::min(base + grain, n);
      for (std::size_t i = base; i < end; ++i) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lk(error_m);
          if (!error) error = std::current_exception();
          // Cut the batch short: unclaimed indices are abandoned.
          next.store(n, std::memory_order_relaxed);
          aborted = true;
          break;
        }
      }
    }
    tl_in_worker = outer;
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(m);
    for (;;) {
      cv_work.wait(lk, [&] { return stop || generation != seen; });
      if (stop) return;
      seen = generation;
      // Snapshot the batch under the lock; the submitter only mutates
      // job/job_size when no worker is active.
      const auto* fn = job;
      const std::size_t n = job_size;
      const std::size_t grain = job_grain;
      if (fn == nullptr) continue;  // batch already fully retired
      ++active;
      lk.unlock();
      run_indices(*fn, n, grain);
      lk.lock();
      if (--active == 0) cv_done.notify_all();
    }
  }
};

TaskPool::TaskPool(unsigned threads) : impl_(std::make_unique<Impl>()) {
  impl_->thread_count = threads == 0 ? default_thread_count() : threads;
  for (unsigned t = 1; t < impl_->thread_count; ++t) {
    impl_->workers.emplace_back([impl = impl_.get()] { impl->worker_loop(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lk(impl_->m);
    impl_->stop = true;
  }
  impl_->cv_work.notify_all();
  for (auto& w : impl_->workers) w.join();
}

unsigned TaskPool::thread_count() const { return impl_->thread_count; }

bool TaskPool::in_worker() { return tl_in_worker; }

void TaskPool::parallel_for(std::size_t n,
                            const std::function<void(std::size_t)>& body) {
  parallel_for(n, body, 1);
}

void TaskPool::parallel_for(std::size_t n,
                            const std::function<void(std::size_t)>& body,
                            std::size_t grain) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (in_worker()) {
    throw std::logic_error(
        "TaskPool: nested parallel_for from inside a task is rejected; "
        "use the serial path (see TaskPool::in_worker)");
  }
  const std::size_t tasks = (n + grain - 1) / grain;
  if (impl_->workers.empty() || tasks == 1) {
    // Serial fast path: same index order, same exception behaviour (the
    // first throw aborts the remainder), no pool machinery involved.
    impl_->error = nullptr;
    impl_->next.store(0, std::memory_order_relaxed);
    impl_->run_indices(body, n, grain);
    if (impl_->error) std::rethrow_exception(impl_->error);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(impl_->m);
    impl_->job = &body;
    impl_->job_size = n;
    impl_->job_grain = grain;
    impl_->next.store(0, std::memory_order_relaxed);
    impl_->error = nullptr;
    ++impl_->generation;
  }
  // The submitting thread takes one task itself, so only tasks - 1 helpers
  // can possibly find work: waking more just burns wakeups (and on an
  // oversubscribed host, context switches) on threads that will claim
  // nothing. Unwoken workers stay parked; their generation check catches
  // them up on whichever future batch wakes them.
  if (tasks - 1 >= impl_->workers.size()) {
    impl_->cv_work.notify_all();
  } else {
    for (std::size_t w = 0; w < tasks - 1; ++w) impl_->cv_work.notify_one();
  }
  impl_->run_indices(body, n, grain);  // the submitting thread pulls its weight
  {
    std::unique_lock<std::mutex> lk(impl_->m);
    impl_->cv_done.wait(lk, [&] { return impl_->active == 0; });
    impl_->job = nullptr;  // late wakers see a retired batch and skip it
  }
  if (impl_->error) std::rethrow_exception(impl_->error);
}

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<TaskPool> g_pool;

}  // namespace

TaskPool& global_pool() {
  std::lock_guard<std::mutex> lk(g_pool_mutex);
  if (!g_pool) g_pool = std::make_unique<TaskPool>();
  return *g_pool;
}

void set_global_threads(unsigned threads) {
  std::lock_guard<std::mutex> lk(g_pool_mutex);
  g_pool = std::make_unique<TaskPool>(threads);
}

unsigned global_thread_count() { return global_pool().thread_count(); }

std::uint64_t sub_seed(std::uint64_t base, std::uint64_t index) {
  // splitmix64 over base + index * golden-gamma: the same finalizer the
  // Rng seeding uses, so sub-streams are as independent as reseeds.
  std::uint64_t z = base + (index + 1) * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t sub_seed(std::uint64_t base, std::uint64_t index,
                       std::uint64_t index2) {
  return sub_seed(sub_seed(base, index), index2);
}

}  // namespace ndpcr::exec
