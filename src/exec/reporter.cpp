#include "exec/reporter.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "common/crc32.hpp"
#include "common/json.hpp"
#include "common/table.hpp"

namespace ndpcr::exec {
namespace {

bool needs_csv_quoting(const std::string& cell) {
  return cell.find_first_of(",\"\n") != std::string::npos;
}

std::string csv_cell(const std::string& cell) {
  if (!needs_csv_quoting(cell)) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

// One escaping implementation for the whole tree (common/json.hpp): the
// local copy used to pass a possibly-negative char to %x and skipped the
// \b/\f/\r shorthands.
std::string json_string(const std::string& s) { return json_escape(s); }

void append_csv_row(std::ostringstream& out,
                    const std::vector<std::string>& cells) {
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c) out << ',';
    out << csv_cell(cells[c]);
  }
  out << '\n';
}

}  // namespace

Reporter::Reporter(RunMeta meta) : meta_(std::move(meta)) {}

void Reporter::add_section(std::string name, std::vector<std::string> header) {
  sections_.push_back({std::move(name), std::move(header), {}});
}

void Reporter::add_row(std::vector<std::string> cells) {
  if (sections_.empty()) {
    throw std::logic_error("Reporter::add_row before any add_section");
  }
  sections_.back().rows.push_back(std::move(cells));
}

void Reporter::set_wall_seconds(double seconds) { wall_seconds_ = seconds; }

std::string Reporter::config_hash() const {
  const std::uint32_t crc =
      Crc32::compute(meta_.config.data(), meta_.config.size());
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

std::string Reporter::ascii() const {
  std::ostringstream out;
  for (std::size_t s = 0; s < sections_.size(); ++s) {
    if (s) out << '\n';
    out << sections_[s].name << "\n\n";
    TextTable table(sections_[s].header);
    for (const auto& row : sections_[s].rows) table.add_row(row);
    out << table.str();
  }
  return out.str();
}

std::string Reporter::csv() const {
  std::ostringstream out;
  out << "# bench=" << meta_.bench << " seed=" << meta_.seed
      << " trials=" << meta_.trials << " threads=" << meta_.threads
      << " config=" << config_hash() << " wall_s=" << fmt_fixed(wall_seconds_, 3)
      << '\n';
  for (const auto& section : sections_) {
    out << "# section: " << section.name << '\n';
    append_csv_row(out, section.header);
    for (const auto& row : section.rows) append_csv_row(out, row);
  }
  return out.str();
}

std::string Reporter::json() const {
  std::ostringstream out;
  out << "{\"meta\":{\"bench\":" << json_string(meta_.bench)
      << ",\"seed\":" << meta_.seed << ",\"trials\":" << meta_.trials
      << ",\"threads\":" << meta_.threads
      << ",\"config\":" << json_string(config_hash())
      << ",\"wall_s\":" << fmt_fixed(wall_seconds_, 3) << "},\"sections\":[";
  for (std::size_t s = 0; s < sections_.size(); ++s) {
    if (s) out << ',';
    const auto& section = sections_[s];
    out << "{\"name\":" << json_string(section.name) << ",\"header\":[";
    for (std::size_t c = 0; c < section.header.size(); ++c) {
      if (c) out << ',';
      out << json_string(section.header[c]);
    }
    out << "],\"rows\":[";
    for (std::size_t r = 0; r < section.rows.size(); ++r) {
      if (r) out << ',';
      out << '[';
      for (std::size_t c = 0; c < section.rows[r].size(); ++c) {
        if (c) out << ',';
        out << json_string(section.rows[r][c]);
      }
      out << ']';
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

void Reporter::write(const std::string& path) const {
  const bool as_json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  const std::string payload = as_json ? json() : csv();
  if (path == "-") {
    std::fwrite(payload.data(), 1, payload.size(), stdout);
    return;
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw std::runtime_error("Reporter: cannot open " + path);
  const std::size_t written = std::fwrite(payload.data(), 1, payload.size(), f);
  const int close_rc = std::fclose(f);
  if (written != payload.size() || close_rc != 0) {
    throw std::runtime_error("Reporter: short write to " + path);
  }
}

}  // namespace ndpcr::exec
