#pragma once

// TaskPool: the shared parallel execution engine (docs/ENGINE.md).
//
// A deliberately work-stealing-free fork-join pool: `parallel_for(n, body)`
// hands out indices 0..n-1 from a single atomic counter and blocks until
// all of them ran. Scheduling order is nondeterministic, but results are
// not allowed to depend on it - the engine's contract is that every task
// owns its index (its own RNG sub-seed, its own output slot) and callers
// reduce the per-index results in index order. Under that contract the
// aggregate is bit-identical for any thread count, including the serial
// fallback, which is what the `engine` test label asserts.
//
// Exceptions thrown by a task are captured; the first one (by completion
// order) is rethrown from parallel_for after the batch drains. Nested use
// - calling parallel_for from inside a task of any TaskPool - is rejected
// with std::logic_error: nesting would deadlock a bounded pool, and every
// layer that may run under the pool (e.g. TimelineSimulator::run_trials
// inside the Evaluator's ratio search) must choose serial execution
// explicitly via the in_worker() query instead.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace ndpcr::exec {

// Thread count used when a TaskPool is built with `threads == 0`: the
// NDPCR_THREADS environment variable if set (>= 1), otherwise
// std::thread::hardware_concurrency(). Always >= 1.
unsigned default_thread_count();

class TaskPool {
 public:
  // A pool of `threads` executors (0 = default_thread_count()). The
  // calling thread participates in every batch, so `threads == 1` spawns
  // no workers at all and parallel_for degenerates to a plain loop.
  explicit TaskPool(unsigned threads = 0);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  [[nodiscard]] unsigned thread_count() const;

  // Run body(i) for every i in [0, n). Blocks until every index ran (or
  // the batch was cut short by an exception, which is rethrown here).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  // Same contract, but executors claim indices in blocks of `grain`
  // (clamped to >= 1). Within a block indices run in ascending order, so
  // a caller that already owns per-index slots sees identical results -
  // grain changes only how much work one atomic claim amortizes. A batch
  // of ceil(n/grain) == 1 task runs inline on the calling thread, and
  // only min(workers, tasks - 1) sleepers are woken, so oversubscribed
  // hosts stop paying a full notify_all storm for a handful of tiny
  // tasks.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                    std::size_t grain);

  // parallel_for that collects fn(i) into a vector, index-ordered. The
  // result type must be default-constructible; reduce the vector in index
  // order to keep aggregates thread-count-invariant.
  template <typename Fn>
  auto parallel_map(std::size_t n, Fn&& fn)
      -> std::vector<decltype(fn(std::size_t{}))> {
    std::vector<decltype(fn(std::size_t{}))> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  // True when the calling thread is a worker of any TaskPool. Layers that
  // both offer parallelism and run under someone else's parallel_for use
  // this to fall back to their serial path.
  static bool in_worker();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// The process-wide pool used by default-parallel entry points
// (TimelineSimulator::run_trials, the Evaluator optimizers, the study and
// cluster drivers). Built lazily with default_thread_count() threads.
TaskPool& global_pool();

// Rebuild the global pool with an explicit thread count (0 = default).
// Must not be called while a parallel batch is in flight; the bench
// harnesses call it once while parsing --threads.
void set_global_threads(unsigned threads);

// Thread count the global pool currently has (without forcing its
// construction parameters to change): convenience for run metadata.
unsigned global_thread_count();

// SplitMix64-derived sub-seed: statistically independent streams for
// (base, 0), (base, 1), ... even when base seeds are small consecutive
// integers. Used for per-replicate seeding where no serial-compatibility
// constraint pins the scheme (run_trials keeps its historical `seed + t`
// per-trial seeds so parallel results stay bit-identical to the serial
// path that predates the engine).
std::uint64_t sub_seed(std::uint64_t base, std::uint64_t index);

// Two-level sub-seed: independent streams for (base, index, index2)
// triples. The service layer (src/svc) derives every tenant's workload,
// schedule and fault streams this way so one seed fans out to thousands
// of tenants without correlated streams.
std::uint64_t sub_seed(std::uint64_t base, std::uint64_t index,
                       std::uint64_t index2);

}  // namespace ndpcr::exec
