#pragma once

// Reporter: structured experiment output for the figure/table harnesses.
//
// Every bench table used to exist only as fixed-width ASCII on stdout;
// the Reporter keeps that rendering and additionally serializes the same
// sections as CSV or JSON rows, stamped with the run metadata that makes
// a figure reproducible: seed, trial count, thread count, a hash of the
// configuration string, and the wall time of the run. Downstream tooling
// (plot scripts, regression diffing) consumes the structured form; humans
// keep reading the ASCII tables.

#include <cstdint>
#include <string>
#include <vector>

namespace ndpcr::exec {

struct RunMeta {
  std::string bench;          // harness name, e.g. "fig4_ratio_sweep"
  std::uint64_t seed = 0;
  int trials = 0;
  unsigned threads = 1;
  std::string config;         // free-form config summary; hashed into the id
};

class Reporter {
 public:
  struct Section {
    std::string name;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
  };

  explicit Reporter(RunMeta meta);

  // Start a named table section; subsequent add_row calls append to it.
  void add_section(std::string name, std::vector<std::string> header);
  void add_row(std::vector<std::string> cells);

  void set_wall_seconds(double seconds);

  [[nodiscard]] const RunMeta& meta() const { return meta_; }
  [[nodiscard]] const std::vector<Section>& sections() const {
    return sections_;
  }

  // CRC32 of meta.config, eight hex digits: a compact fingerprint that
  // changes whenever a harness runs with different parameters.
  [[nodiscard]] std::string config_hash() const;

  // The classic fixed-width tables, one per section, titled by name.
  [[nodiscard]] std::string ascii() const;

  // All sections in one CSV stream: `# key=value` metadata comments, then
  // per section a `# section: <name>` comment, the header row, and the
  // data rows. Cells containing separators are quoted per RFC 4180.
  [[nodiscard]] std::string csv() const;

  // {"meta": {...}, "sections": [{"name", "header", "rows"}, ...]}
  [[nodiscard]] std::string json() const;

  // Write the structured form to `path`: "-" means stdout, a ".json"
  // suffix selects JSON, anything else CSV. Throws std::runtime_error on
  // IO failure.
  void write(const std::string& path) const;

 private:
  RunMeta meta_;
  double wall_seconds_ = 0.0;
  std::vector<Section> sections_;
};

}  // namespace ndpcr::exec
