#pragma once

// The checkpoint compression study of section 5: run every codec of the
// suite over checkpoints captured from the seven mini-app proxies, and
// report compression factor and speed per (app, codec) pair - our Table 2.
//
// The paper's measured Table 2 numbers (gzip/bzip2/xz/lz4 on a 2013 i7)
// are also provided as constants: the downstream figures are generated
// both from our measured study (end-to-end reproduction) and from the
// paper's constants (faithful reproduction of the model outputs).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "compress/codec.hpp"

namespace ndpcr::study {

struct Measurement {
  std::string app;
  std::string codec;              // display name, e.g. "ngzip(1)"
  std::size_t input_bytes = 0;
  std::size_t compressed_bytes = 0;
  double factor = 0.0;            // 1 - compressed/input
  double compress_bw = 0.0;       // bytes/s, single thread
  double decompress_bw = 0.0;     // bytes/s, single thread
};

struct StudyConfig {
  // Checkpoint volume per app. The paper collected 0.8-52 GB per app; the
  // study is linear in this, so benchmarks use a few MB per app and tests
  // less.
  std::size_t bytes_per_app = 8ull << 20;
  // Three checkpoints at ~25/50/75% of a short run, as in section 5.1.1.
  int checkpoints_per_app = 3;
  int steps_between_checkpoints = 2;
  std::uint64_t seed = 42;
  std::vector<compress::CodecSpec> codecs = compress::paper_codec_suite();
  std::vector<std::string> apps;  // empty = all seven
};

struct StudyResults {
  std::vector<Measurement> rows;  // app-major, codec-minor order

  [[nodiscard]] const Measurement* find(const std::string& app,
                                        const std::string& codec) const;
  // Unweighted average factor / compress bandwidth across apps for one
  // codec (the paper's "Average" row).
  [[nodiscard]] double average_factor(const std::string& codec) const;
  [[nodiscard]] double average_compress_bw(const std::string& codec) const;
};

StudyResults run_compression_study(const StudyConfig& config = {});

// ---------------------------------------------------------------------------
// Paper constants (Table 2 of the paper, measured with the real utilities).

struct PaperTable2Row {
  const char* app;          // mini-app name (our proxy naming)
  double data_gb;           // total checkpoint data collected
  double factor[7];         // compression factor per codec, in suite order
  double speed_mbps[7];     // single-thread speed, MB/s
};

// Rows in Table 2 order: comd, hpccg, minife, minimd, minismac, miniaero,
// phpccg. Codec order matches compress::paper_codec_suite():
// gzip(1), gzip(6), bzip2(1), bzip2(9), xz(1), xz(6), lz4(1).
const std::vector<PaperTable2Row>& paper_table2();

// The "Average" row of Table 2.
double paper_average_factor(std::size_t codec_index);
double paper_average_speed_mbps(std::size_t codec_index);

// gzip(1) compression factor per app (used by Figure 6) - column 1 of
// Table 2. Throws std::out_of_range for an unknown app.
double paper_gzip1_factor(const std::string& app);

}  // namespace ndpcr::study
