#include "study/compression_study.hpp"

#include <chrono>
#include <stdexcept>

#include "exec/task_pool.hpp"
#include "workloads/miniapp.hpp"

namespace ndpcr::study {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

const Measurement* StudyResults::find(const std::string& app,
                                      const std::string& codec) const {
  for (const auto& m : rows) {
    if (m.app == app && m.codec == codec) return &m;
  }
  return nullptr;
}

double StudyResults::average_factor(const std::string& codec) const {
  double sum = 0.0;
  int n = 0;
  for (const auto& m : rows) {
    if (m.codec == codec) {
      sum += m.factor;
      ++n;
    }
  }
  if (n == 0) throw std::out_of_range("unknown codec: " + codec);
  return sum / n;
}

double StudyResults::average_compress_bw(const std::string& codec) const {
  double sum = 0.0;
  int n = 0;
  for (const auto& m : rows) {
    if (m.codec == codec) {
      sum += m.compress_bw;
      ++n;
    }
  }
  if (n == 0) throw std::out_of_range("unknown codec: " + codec);
  return sum / n;
}

namespace {

// One (app, codec) cell of the study grid: compress and round-trip every
// image of the app through the codec, timing both directions.
Measurement measure_cell(const std::string& app_name,
                         const compress::CodecSpec& spec,
                         const std::vector<Bytes>& images) {
  const auto codec = compress::make_codec(spec.id, spec.level);
  Measurement m;
  m.app = app_name;
  m.codec = spec.display_name;
  double compress_seconds = 0.0;
  double decompress_seconds = 0.0;
  for (const auto& image : images) {
    m.input_bytes += image.size();
    const auto t0 = std::chrono::steady_clock::now();
    const Bytes packed = codec->compress(image);
    compress_seconds += seconds_since(t0);
    m.compressed_bytes += packed.size();
    const auto t1 = std::chrono::steady_clock::now();
    const Bytes restored = codec->decompress(packed);
    decompress_seconds += seconds_since(t1);
    if (restored != image) {
      throw std::runtime_error("codec round-trip failure in study");
    }
  }
  m.factor = compress::Codec::compression_factor(m.input_bytes,
                                                 m.compressed_bytes);
  m.compress_bw =
      compress_seconds > 0.0
          ? static_cast<double>(m.input_bytes) / compress_seconds
          : 0.0;
  m.decompress_bw =
      decompress_seconds > 0.0
          ? static_cast<double>(m.input_bytes) / decompress_seconds
          : 0.0;
  return m;
}

}  // namespace

StudyResults run_compression_study(const StudyConfig& config) {
  const auto& apps =
      config.apps.empty() ? workloads::miniapp_names() : config.apps;
  exec::TaskPool* pool =
      exec::TaskPool::in_worker() ? nullptr : &exec::global_pool();

  // Stage 1: capture each app's checkpoints at several points of a short
  // run (the paper takes three, at 25/50/75% of execution). Each app is
  // seeded independently, so apps generate concurrently; image content is
  // a function of (app, bytes, seed) alone.
  auto generate = [&](std::size_t a) {
    auto app = workloads::make_miniapp(apps[a], config.bytes_per_app,
                                       config.seed);
    std::vector<Bytes> images;
    for (int c = 0; c < config.checkpoints_per_app; ++c) {
      for (int s = 0; s < config.steps_between_checkpoints; ++s) {
        app->step();
      }
      images.push_back(app->checkpoint());
    }
    return images;
  };
  std::vector<std::vector<Bytes>> per_app_images;
  if (pool == nullptr) {
    per_app_images.reserve(apps.size());
    for (std::size_t a = 0; a < apps.size(); ++a) {
      per_app_images.push_back(generate(a));
    }
  } else {
    per_app_images = pool->parallel_map(apps.size(), generate);
  }

  // Stage 2: the app x codec grid, one cell per task. Rows land at
  // app-major / codec-minor indices regardless of schedule; compression
  // factors are deterministic, while the measured bandwidths reflect
  // wall time and (like any timing) vary with machine load.
  const std::size_t n_codecs = config.codecs.size();
  StudyResults results;
  results.rows.resize(apps.size() * n_codecs);
  auto fill_cell = [&](std::size_t i) {
    const std::size_t a = i / n_codecs;
    const std::size_t c = i % n_codecs;
    results.rows[i] =
        measure_cell(apps[a], config.codecs[c], per_app_images[a]);
  };
  if (pool == nullptr || n_codecs == 0) {
    for (std::size_t i = 0; i < results.rows.size(); ++i) fill_cell(i);
  } else {
    pool->parallel_for(results.rows.size(), fill_cell);
  }
  return results;
}

// ---------------------------------------------------------------------------

const std::vector<PaperTable2Row>& paper_table2() {
  // Transcribed from Table 2 of the paper. Codec order:
  // gzip(1), gzip(6), bzip2(1), bzip2(9), xz(1), xz(6), lz4(1).
  static const std::vector<PaperTable2Row> rows = {
      {"comd", 25.07,
       {0.842, 0.844, 0.851, 0.850, 0.860, 0.862, 0.828},
       {153.7, 92.3, 32.5, 30.4, 23.5, 8.2, 658.3}},
      {"hpccg", 45.92,
       {0.884, 0.923, 0.924, 0.936, 0.969, 0.987, 0.816},
       {150.7, 61.6, 5.9, 4.6, 47.5, 7.4, 447.8}},
      {"minife", 52.31,
       {0.715, 0.776, 0.807, 0.823, 0.876, 0.911, 0.548},
       {84.5, 24.1, 10.7, 10.1, 18.3, 1.6, 253.9}},
      {"minimd", 23.94,
       {0.570, 0.584, 0.591, 0.595, 0.634, 0.679, 0.470},
       {52.2, 27.7, 10.0, 9.2, 8.0, 2.5, 345.3}},
      {"minismac", 28.11,
       {0.350, 0.355, 0.314, 0.324, 0.475, 0.488, 0.241},
       {37.3, 24.4, 6.9, 6.0, 5.1, 2.6, 342.7}},
      {"miniaero", 0.78,
       {0.843, 0.857, 0.866, 0.871, 0.881, 0.928, 0.805},
       {138.5, 61.2, 12.0, 8.2, 28.4, 4.3, 567.9}},
      {"phpccg", 46.18,
       {0.891, 0.891, 0.931, 0.940, 0.947, 0.973, 0.824},
       {154.0, 63.2, 6.8, 4.8, 45.9, 7.0, 477.7}},
  };
  return rows;
}

double paper_average_factor(std::size_t codec_index) {
  if (codec_index >= 7) throw std::out_of_range("codec index");
  double sum = 0.0;
  for (const auto& row : paper_table2()) sum += row.factor[codec_index];
  return sum / static_cast<double>(paper_table2().size());
}

double paper_average_speed_mbps(std::size_t codec_index) {
  if (codec_index >= 7) throw std::out_of_range("codec index");
  double sum = 0.0;
  for (const auto& row : paper_table2()) sum += row.speed_mbps[codec_index];
  return sum / static_cast<double>(paper_table2().size());
}

double paper_gzip1_factor(const std::string& app) {
  for (const auto& row : paper_table2()) {
    if (app == row.app) return row.factor[0];
  }
  throw std::out_of_range("unknown mini-app: " + app);
}

}  // namespace ndpcr::study
