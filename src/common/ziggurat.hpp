#pragma once

// Ziggurat sampler for the unit exponential (Marsaglia & Tsang 2000).
//
// Rng::exponential() pays a std::log1p per draw (~16 ns); the failure
// simulator draws one exponential per event, so at 100k+ nodes the log
// dominates the whole event loop. The ziggurat replaces it with one
// 64-bit draw, a table lookup and a compare on the fast path (~3 ns),
// falling back to the exact log only in the tail and wedge cases (~1.5%
// of draws). The returned distribution is exactly Exp(1) - the ziggurat
// is a rejection method, not an approximation.
//
// Determinism: tables are derived once from closed form, draws consume
// the Rng stream in a fixed pattern, and every arithmetic step is plain
// IEEE multiply/compare, so a (seed, call-sequence) pair yields the same
// stream everywhere the repo's Rng does. Note the stream *differs* from
// Rng::exponential for the same seed: callers choose one sampler per
// context and stay with it (docs/SIM.md).

#include <cmath>
#include <cstdint>

#include "common/rng.hpp"

namespace ndpcr {

namespace detail {

struct ZigguratExpTables {
  // 256 layers: x_[i] is the right edge of layer i (descending, x_[256]
  // = 0), y_[i] = exp(-x_[i]) (ascending, y_[256] = 1). Layer 0 is the
  // base strip + tail. cs_[i] is the chord slope of exp(-x) across
  // layer i, for the wedge test's bound pre-checks.
  double x_[257];
  double y_[257];
  double cs_[256];

  ZigguratExpTables() {
    constexpr double r = 7.69711747013104972;      // tail cut
    constexpr double v = 0.0039496598225815571993;  // per-layer area
    x_[0] = v * std::exp(r);
    x_[1] = r;
    x_[256] = 0.0;
    for (int i = 2; i < 256; ++i) {
      x_[i] = -std::log(std::exp(-x_[i - 1]) + v / x_[i - 1]);
    }
    for (int i = 0; i < 257; ++i) y_[i] = std::exp(-x_[i]);
    cs_[0] = 0.0;
    for (int i = 1; i < 256; ++i) {
      cs_[i] = (y_[i + 1] - y_[i]) / (x_[i + 1] - x_[i]);
    }
  }
};

// Wedge acceptance for a candidate `val` in layer i's wedge: accept iff
// y_[i] + u2 * (y_[i+1] - y_[i]) < exp(-val) (layer i spans
// [y_[i], y_[i+1]] vertically; y_ ascends with i). exp(-x) is convex,
// so its chord across the layer bounds it from above (quick reject) and
// its tangent at x_[i] from below (quick accept); the bounds settle
// ~98.6% of wedge candidates, leaving std::exp for ~0.03% of all draws.
// Shared by ziggurat_exp and BatchRng's scalar continuation so both
// streams make bit-identical decisions.
inline bool wedge_accept(const ZigguratExpTables& t, int i, double u2,
                         double val) {
  const double w = t.y_[i] + u2 * (t.y_[i + 1] - t.y_[i]);
  const double dv = val - t.x_[i];
  if (w >= t.y_[i] + dv * t.cs_[i]) return false;  // at/above the chord
  if (w < t.y_[i] * (1.0 - dv)) return true;       // below the tangent
  return w < std::exp(-val);
}

inline const ZigguratExpTables& ziggurat_exp_tables() {
  static const ZigguratExpTables tables;
  return tables;
}

}  // namespace detail

// One Exp(1) variate. Layer index comes from the draw's low 8 bits, the
// uniform from its (disjoint) top 53 bits, so the fast path costs a
// single next_u64().
inline double ziggurat_exp(Rng& rng) {
  const auto& t = detail::ziggurat_exp_tables();
  for (;;) {
    const std::uint64_t u = rng.next_u64();
    const int i = static_cast<int>(u & 255u);
    const double ux = static_cast<double>(u >> 11) * 0x1.0p-53;
    const double val = ux * t.x_[i];
    if (val < t.x_[i + 1]) return val;  // strictly inside the layer
    if (i == 0) {
      // Tail beyond r: exact inverse-CDF of the conditional tail.
      double uu = rng.next_double();
      while (uu <= 0.0) uu = rng.next_double();
      return 7.69711747013104972 - std::log(uu);
    }
    // Wedge: accept against the true density between the layer edges.
    const double u2 = rng.next_double();
    if (detail::wedge_accept(t, i, u2, val)) return val;
  }
}

// Exp(mean) via the unit sampler.
inline double ziggurat_exp(Rng& rng, double mean) {
  return mean * ziggurat_exp(rng);
}

}  // namespace ndpcr
