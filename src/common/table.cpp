#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace ndpcr {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << "  ";
      out << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) out << "  ";
    out << std::string(width[c], '-');
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string fmt_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string fmt_percent(double fraction, int decimals) {
  return fmt_fixed(fraction * 100.0, decimals) + "%";
}

std::string fmt_si_bytes(double bytes) {
  const char* suffix = "B";
  double v = bytes;
  if (std::abs(v) >= 1e15) {
    v /= 1e15;
    suffix = "PB";
  } else if (std::abs(v) >= 1e12) {
    v /= 1e12;
    suffix = "TB";
  } else if (std::abs(v) >= 1e9) {
    v /= 1e9;
    suffix = "GB";
  } else if (std::abs(v) >= 1e6) {
    v /= 1e6;
    suffix = "MB";
  } else if (std::abs(v) >= 1e3) {
    v /= 1e3;
    suffix = "KB";
  }
  std::ostringstream out;
  out << fmt_fixed(v, v == std::floor(v) && std::abs(v) < 1000 ? 0 : 2) << ' '
      << suffix;
  return out.str();
}

}  // namespace ndpcr
