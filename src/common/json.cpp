#include "common/json.hpp"

#include <cctype>
#include <cstddef>

namespace ndpcr {
namespace {

// Recursive-descent structural validator. `pos` always points at the
// next unread byte; every helper returns false on the first violation.
struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 256;

  bool eof() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool string() {
    if (eof() || peek() != '"') return false;
    ++pos;
    while (!eof()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (eof()) return false;
        const char esc = text[pos++];
        switch (esc) {
          case '"': case '\\': case '/': case 'b': case 'f':
          case 'n': case 'r': case 't':
            break;
          case 'u':
            for (int i = 0; i < 4; ++i) {
              if (eof() || !std::isxdigit(
                               static_cast<unsigned char>(text[pos]))) {
                return false;
              }
              ++pos;
            }
            break;
          default:
            return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return false;
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    return true;
  }

  bool number() {
    if (!eof() && peek() == '-') ++pos;
    if (!digits()) return false;
    if (!eof() && peek() == '.') {
      ++pos;
      if (!digits()) return false;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos;
      if (!digits()) return false;
    }
    return true;
  }

  bool value() {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    if (eof()) return false;
    bool ok = false;
    switch (peek()) {
      case '{': ok = object(); break;
      case '[': ok = array(); break;
      case '"': ok = string(); break;
      case 't': ok = literal("true"); break;
      case 'f': ok = literal("false"); break;
      case 'n': ok = literal("null"); break;
      default: ok = number(); break;
    }
    --depth;
    return ok;
  }

  bool object() {
    ++pos;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (eof() || peek() != ':') return false;
      ++pos;
      if (!value()) return false;
      skip_ws();
      if (eof()) return false;
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == '}') {
        ++pos;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos;
      return true;
    }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (eof()) return false;
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == ']') {
        ++pos;
        return true;
      }
      return false;
    }
  }
};

}  // namespace

bool json_valid(std::string_view text) {
  Parser p{text};
  if (!p.value()) return false;
  p.skip_ws();
  return p.eof();
}

}  // namespace ndpcr
