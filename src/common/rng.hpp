#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace ndpcr {

// xoshiro256** by Blackman & Vigna: fast, high-quality, and — unlike
// std::mt19937 — guaranteed to produce the same stream on every platform,
// which keeps figures bit-reproducible. Seeded through splitmix64 so that
// small consecutive seeds give independent streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Exponentially distributed with the given mean (i.e. rate 1/mean). Used
  // for interrupt inter-arrival times, per the paper's assumption that
  // interrupts are exponentially distributed.
  double exponential(double mean) {
    double u = next_double();
    // Guard against log(0); next_double() < 1 so 1-u > 0.
    return -mean * std::log1p(-u);
  }

  // Weibull-distributed with the given shape and *mean* (not scale). Shape
  // 1 reduces to the exponential; shape < 1 models the over-dispersed
  // failure inter-arrivals Schroeder & Gibson observed on petascale
  // machines. The scale is derived from the mean via Gamma(1 + 1/shape).
  double weibull_by_mean(double shape, double mean) {
    const double scale = mean / std::tgamma(1.0 + 1.0 / shape);
    double u = next_double();
    while (u <= 0.0) u = next_double();
    return scale * std::pow(-std::log(u), 1.0 / shape);
  }

  // Standard normal via Box–Muller (no cached spare; simplicity over speed).
  double normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = next_double();
    double u2 = next_double();
    while (u1 <= std::numeric_limits<double>::min()) u1 = next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * r * std::cos(6.28318530717958647692 * u2);
  }

  // UniformRandomBitGenerator interface, so Rng works with std::shuffle.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next_u64(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace ndpcr
