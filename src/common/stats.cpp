#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace ndpcr {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (p <= 0.0) return samples.front();
  if (p >= 100.0) return samples.back();
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) return samples.back();
  return samples[lo] + frac * (samples[lo + 1] - samples[lo]);
}

}  // namespace ndpcr
