#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ndpcr {

// Minimal fixed-width text-table printer used by the benchmark harnesses to
// emit paper-style tables ("the same rows/series the paper reports").
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  // Render with column widths sized to content, a header underline, and two
  // spaces between columns.
  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Numeric formatting helpers for table cells.
std::string fmt_fixed(double value, int decimals);
std::string fmt_percent(double fraction, int decimals = 1);  // 0.51 -> "51.0%"
std::string fmt_si_bytes(double bytes);                      // 1.2e11 -> "120 GB"

}  // namespace ndpcr
