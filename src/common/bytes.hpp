#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace ndpcr {

// Byte-buffer aliases used across the compression and checkpoint layers.
using Bytes = std::vector<std::byte>;
using ByteSpan = std::span<const std::byte>;
using MutableByteSpan = std::span<std::byte>;

inline Bytes to_bytes(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::byte*>(data);
  return Bytes(p, p + size);
}

// Little-endian scalar (de)serialization helpers for on-"disk" formats.
template <typename T>
void append_le(Bytes& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  unsigned char raw[sizeof(T)];
  std::memcpy(raw, &value, sizeof(T));
  for (unsigned char c : raw) out.push_back(static_cast<std::byte>(c));
}

template <typename T>
T read_le(ByteSpan data, std::size_t offset) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  std::memcpy(&value, data.data() + offset, sizeof(T));
  return value;
}

}  // namespace ndpcr
