#pragma once

// Table rows for the 7-component C/R overhead breakdown (Figure 4/7
// style). Shared by the bench harnesses, the CLI and the tests; formerly
// duplicated in bench/bench_util.hpp. Lives next to common/table because
// it is pure formatting; sim/breakdown.hpp is a header-only value type,
// so including it adds no library dependency.

#include <string>
#include <vector>

#include "common/table.hpp"
#include "sim/breakdown.hpp"

namespace ndpcr::table {

inline std::vector<std::string> breakdown_header(const char* first_col) {
  return {first_col,      "Progress", "Compute",  "CkptLocal", "CkptIO",
          "RestoreLocal", "RestoreIO", "RerunLocal", "RerunIO"};
}

// One row of a Figure 4/7-style table: every component as a percentage of
// total execution time.
inline std::vector<std::string> breakdown_row(const std::string& label,
                                              const sim::Breakdown& b) {
  const double t = b.total();
  auto pct = [&](double x) { return fmt_percent(t > 0 ? x / t : 0.0, 1); };
  return {label,
          fmt_percent(b.progress_rate(), 1),
          pct(b.compute),
          pct(b.ckpt_local),
          pct(b.ckpt_io),
          pct(b.restore_local),
          pct(b.restore_io),
          pct(b.rerun_local),
          pct(b.rerun_io)};
}

// Normalized-to-compute variant (Figure 4a / Figure 7 left).
inline std::vector<std::string> normalized_row(const std::string& label,
                                               const sim::Breakdown& b) {
  const double c = b.compute > 0 ? b.compute : 1.0;
  auto norm = [&](double x) { return fmt_fixed(x / c, 3); };
  return {label,
          fmt_fixed(b.total() / c, 3),
          norm(b.compute),
          norm(b.ckpt_local),
          norm(b.ckpt_io),
          norm(b.restore_local),
          norm(b.restore_io),
          norm(b.rerun_local),
          norm(b.rerun_io)};
}

inline std::vector<std::string> normalized_header(const char* first_col) {
  return {first_col,      "Total/Compute", "Compute",  "CkptLocal",
          "CkptIO",       "RestoreLocal",  "RestoreIO", "RerunLocal",
          "RerunIO"};
}

}  // namespace ndpcr::table
