#include "common/crc32.hpp"

#include <array>

namespace ndpcr {
namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;  // reflected IEEE polynomial

// Slicing-by-8 tables: kTables[0] is the classic byte-at-a-time table and
// kTables[k][b] is the CRC of byte b followed by k zero bytes, so eight
// input bytes fold into the state per iteration instead of one. Same
// polynomial, same result, ~3-4x the throughput of the byte loop (the
// figure bench/micro_datapath tracks).
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    t[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[k][i] = t[0][t[k - 1][i] & 0xFFu] ^ (t[k - 1][i] >> 8);
    }
  }
  return t;
}

constexpr auto kTables = make_tables();

// Portable little-endian 32-bit load (compiles to one mov on LE targets).
inline std::uint32_t load_le32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

void Crc32::update(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = state_;
  while (size >= 8) {
    const std::uint32_t lo = c ^ load_le32(p);
    const std::uint32_t hi = load_le32(p + 4);
    c = kTables[7][lo & 0xFFu] ^ kTables[6][(lo >> 8) & 0xFFu] ^
        kTables[5][(lo >> 16) & 0xFFu] ^ kTables[4][lo >> 24] ^
        kTables[3][hi & 0xFFu] ^ kTables[2][(hi >> 8) & 0xFFu] ^
        kTables[1][(hi >> 16) & 0xFFu] ^ kTables[0][hi >> 24];
    p += 8;
    size -= 8;
  }
  for (std::size_t i = 0; i < size; ++i) {
    c = kTables[0][(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  state_ = c;
}

void Crc32::update(std::span<const std::byte> data) {
  update(data.data(), data.size());
}

std::uint32_t Crc32::compute(std::span<const std::byte> data) {
  Crc32 crc;
  crc.update(data);
  return crc.value();
}

std::uint32_t Crc32::compute(const void* data, std::size_t size) {
  Crc32 crc;
  crc.update(data, size);
  return crc.value();
}

}  // namespace ndpcr
