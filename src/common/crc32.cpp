#include "common/crc32.hpp"

#include <array>

namespace ndpcr {
namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;  // reflected IEEE polynomial

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

void Crc32::update(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = state_;
  for (std::size_t i = 0; i < size; ++i) {
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  state_ = c;
}

void Crc32::update(std::span<const std::byte> data) {
  update(data.data(), data.size());
}

std::uint32_t Crc32::compute(std::span<const std::byte> data) {
  Crc32 crc;
  crc.update(data);
  return crc.value();
}

std::uint32_t Crc32::compute(const void* data, std::size_t size) {
  Crc32 crc;
  crc.update(data, size);
  return crc.value();
}

}  // namespace ndpcr
