#include "common/crc32.hpp"

#include <array>

#if defined(__x86_64__)
#include <cpuid.h>
#include <immintrin.h>
#endif

namespace ndpcr {
namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;  // reflected IEEE polynomial

// Slicing-by-8 tables: kTables[0] is the classic byte-at-a-time table and
// kTables[k][b] is the CRC of byte b followed by k zero bytes, so eight
// input bytes fold into the state per iteration instead of one. Same
// polynomial, same result, ~3-4x the throughput of the byte loop (the
// figure bench/micro_datapath tracks).
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    t[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[k][i] = t[0][t[k - 1][i] & 0xFFu] ^ (t[k - 1][i] >> 8);
    }
  }
  return t;
}

constexpr auto kTables = make_tables();

// Portable little-endian 32-bit load (compiles to one mov on LE targets).
inline std::uint32_t load_le32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

// Slicing-by-8 core, shared by the portable path and the PCLMUL finish.
std::uint32_t table_update(std::uint32_t c, const unsigned char* p,
                           std::size_t size) {
  while (size >= 8) {
    const std::uint32_t lo = c ^ load_le32(p);
    const std::uint32_t hi = load_le32(p + 4);
    c = kTables[7][lo & 0xFFu] ^ kTables[6][(lo >> 8) & 0xFFu] ^
        kTables[5][(lo >> 16) & 0xFFu] ^ kTables[4][lo >> 24] ^
        kTables[3][hi & 0xFFu] ^ kTables[2][(hi >> 8) & 0xFFu] ^
        kTables[1][(hi >> 16) & 0xFFu] ^ kTables[0][hi >> 24];
    p += 8;
    size -= 8;
  }
  for (std::size_t i = 0; i < size; ++i) {
    c = kTables[0][(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c;
}

#if defined(__x86_64__)

bool detect_pclmul() {
  unsigned eax = 0;
  unsigned ebx = 0;
  unsigned ecx = 0;
  unsigned edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  return (ecx & bit_PCLMUL) != 0;
}

const bool kHasPclmul = detect_pclmul();

// Only streams long enough to enter the 64-byte fold loop take the SIMD
// path; short updates stay on the table kernel.
constexpr std::size_t kClmulThreshold = 64;

// Carry-less-multiply folding (the Intel CRC folding scheme, reflected
// form). A 16-byte register folded forward by N bytes stays CRC-equivalent
// to the original bytes: fold(A, B) = A.lo * K_hi ^ A.hi * K_lo ^ B is a
// 16-byte value with the same CRC as the byte string A || B, for the
// distance-matched constants x^(8N+64) mod P and x^(8N+32) mod P. The main
// loop folds four independent accumulators across 64 bytes per step, then
// collapses them 16 bytes apart. Instead of a Barrett reduction, the final
// 16 folded bytes are simply run through the table kernel by the caller -
// CRC-equivalence means any correct CRC of (folded || tail) is the answer.
//
// Folds whole 16-byte blocks of [p, p + size) into folded[16], absorbing
// `state` into the leading bytes, and returns the byte count consumed
// (a multiple of 16, >= 64). The caller restarts from state 0 over
// folded || the unconsumed tail.
__attribute__((target("pclmul"))) inline __m128i clmul_load(
    const unsigned char* q) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(q));
}

__attribute__((target("pclmul"))) inline __m128i clmul_fold_step(
    __m128i acc, __m128i k, __m128i next) {
  return _mm_xor_si128(_mm_xor_si128(_mm_clmulepi64_si128(acc, k, 0x00),
                                     _mm_clmulepi64_si128(acc, k, 0x11)),
                       next);
}

__attribute__((target("pclmul")))
std::size_t clmul_fold(std::uint32_t state, const unsigned char* p,
                       std::size_t size, unsigned char* folded) {
  const auto load = clmul_load;
  // x^(512+64) mod P and x^(512+32) mod P: fold across 64 bytes.
  const __m128i k512 = _mm_set_epi64x(0x1c6e41596, 0x154442bd4);
  // x^(128+64) mod P and x^(128+32) mod P: fold across 16 bytes.
  const __m128i k128 = _mm_set_epi64x(0x0ccaa009e, 0x1751997d0);
  const auto fold = clmul_fold_step;

  const std::size_t consumed = size & ~std::size_t{15};
  __m128i x0 = _mm_xor_si128(load(p), _mm_cvtsi32_si128(
                                          static_cast<int>(state)));
  __m128i x1 = load(p + 16);
  __m128i x2 = load(p + 32);
  __m128i x3 = load(p + 48);
  p += 64;
  size -= 64;
  while (size >= 64) {
    x0 = fold(x0, k512, load(p));
    x1 = fold(x1, k512, load(p + 16));
    x2 = fold(x2, k512, load(p + 32));
    x3 = fold(x3, k512, load(p + 48));
    p += 64;
    size -= 64;
  }
  __m128i acc = fold(x0, k128, x1);
  acc = fold(acc, k128, x2);
  acc = fold(acc, k128, x3);
  while (size >= 16) {
    acc = fold(acc, k128, load(p));
    p += 16;
    size -= 16;
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(folded), acc);
  return consumed;
}

// 512-bit variant: VPCLMULQDQ applies the same per-128-bit-lane fold to
// four lanes at once, so one zmm register IS the scalar path's x0..x3 and
// the 64-byte loop body shrinks to two carry-less multiplies and two XORs.
// Requires AVX-512F + VPCLMULQDQ plus OS zmm state support (XCR0).
__attribute__((target("xsave"))) bool detect_vpclmul() {
  unsigned eax = 0;
  unsigned ebx = 0;
  unsigned ecx = 0;
  unsigned edx = 0;
  if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return false;
  const bool has_vpclmul = (ecx & (1u << 10)) != 0;
  const bool has_avx512f = (ebx & (1u << 16)) != 0;
  if (!has_vpclmul || !has_avx512f) return false;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  if ((ecx & bit_OSXSAVE) == 0) return false;
  // XMM, YMM and the three ZMM state components must all be OS-enabled.
  return (__builtin_ia32_xgetbv(0) & 0xE6) == 0xE6;
}

const bool kHasVpclmul = detect_vpclmul();

// The zmm path needs one full 64-byte block up front; below this size the
// 128-bit folder (or the plain table kernel) wins anyway.
constexpr std::size_t kVpclmulThreshold = 256;

__attribute__((target("avx512f,vpclmulqdq,pclmul")))
std::size_t vpclmul_fold(std::uint32_t state, const unsigned char* p,
                         std::size_t size, unsigned char* folded) {
  const __m512i k512v =
      _mm512_broadcast_i32x4(_mm_set_epi64x(0x1c6e41596, 0x154442bd4));
  const __m128i k128 = _mm_set_epi64x(0x0ccaa009e, 0x1751997d0);
  const auto fold = clmul_fold_step;

  const std::size_t consumed = size & ~std::size_t{15};
  __m512i acc = _mm512_xor_si512(
      _mm512_loadu_si512(p),
      _mm512_zextsi128_si512(_mm_cvtsi32_si128(static_cast<int>(state))));
  p += 64;
  size -= 64;
  while (size >= 64) {
    acc = _mm512_ternarylogic_epi64(
        _mm512_clmulepi64_epi128(acc, k512v, 0x00),
        _mm512_clmulepi64_epi128(acc, k512v, 0x11),
        _mm512_loadu_si512(p), 0x96);  // three-way XOR
    p += 64;
    size -= 64;
  }
  __m128i a = fold(_mm512_extracti32x4_epi32(acc, 0), k128,
                   _mm512_extracti32x4_epi32(acc, 1));
  a = fold(a, k128, _mm512_extracti32x4_epi32(acc, 2));
  a = fold(a, k128, _mm512_extracti32x4_epi32(acc, 3));
  while (size >= 16) {
    a = fold(a, k128, clmul_load(p));
    p += 16;
    size -= 16;
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(folded), a);
  return consumed;
}

#endif  // defined(__x86_64__)

}  // namespace

void Crc32::update(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = state_;
#if defined(__x86_64__)
  if (size >= kClmulThreshold && kHasPclmul) {
    unsigned char folded[16];
    const std::size_t consumed =
        (size >= kVpclmulThreshold && kHasVpclmul)
            ? vpclmul_fold(c, p, size, folded)
            : clmul_fold(c, p, size, folded);
    // The folded bytes stand in for the consumed prefix (the incoming
    // state was absorbed into the first block), so continue from state 0.
    c = table_update(0, folded, sizeof(folded));
    p += consumed;
    size -= consumed;
  }
#endif
  state_ = table_update(c, p, size);
}

void Crc32::update(std::span<const std::byte> data) {
  update(data.data(), data.size());
}

std::uint32_t Crc32::compute(std::span<const std::byte> data) {
  Crc32 crc;
  crc.update(data);
  return crc.value();
}

std::uint32_t Crc32::compute(const void* data, std::size_t size) {
  Crc32 crc;
  crc.update(data, size);
  return crc.value();
}

}  // namespace ndpcr
