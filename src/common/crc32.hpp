#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ndpcr {

// CRC-32 (IEEE 802.3 polynomial, reflected), the same checksum family used
// by gzip. Used to protect checkpoint images against corruption in the
// storage models and the on-disk format.
class Crc32 {
 public:
  // Incremental interface: feed chunks, then read value().
  void update(std::span<const std::byte> data);
  void update(const void* data, std::size_t size);

  [[nodiscard]] std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

  void reset() { state_ = 0xFFFFFFFFu; }

  // One-shot convenience.
  static std::uint32_t compute(std::span<const std::byte> data);
  static std::uint32_t compute(const void* data, std::size_t size);

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace ndpcr
