#pragma once

// BatchRng: bulk random sampling for the hot simulation loops - batches
// of exponential inter-arrival gaps (prefix-summed into absolute event
// times) and bounded uniform picks.
//
// The stream is defined as EIGHT interleaved xoshiro256** lanes (lane =
// index mod 8, each lane splitmix-seeded), with the ziggurat accept test
// per draw and a shared scalar Rng for the rare rejection continuations.
// That definition is what makes the implementation swappable: the
// AVX-512 path evaluates all eight lanes in vector registers, and the
// portable path emulates the same lanes - same integer ops, same IEEE
// multiply/add order (the prefix sum uses a fixed shift-1/2/4 tree in
// both) - so a (seed, call-sequence) pair yields bit-identical output on
// every host. Runtime dispatch picks the vector kernels when the CPU has
// AVX-512F/DQ; vectorized() reports which path is live, and the common
// test suite pins the two paths against each other.
//
// The stream differs from common/rng.hpp's Rng and from ziggurat_exp for
// the same seed - like the engines of docs/SIM.md, callers choose one
// sampler per context and stay with it.

#include <cstddef>
#include <cstdint>

#include "common/rng.hpp"

namespace ndpcr {

class BatchRng {
 public:
  static constexpr std::size_t kLanes = 8;

  explicit BatchRng(std::uint64_t seed);

  // Testing/bench hook: pin the implementation path (use_vector = false
  // forces the portable lane emulation even on AVX-512 hosts). The
  // common test suite uses this to assert both paths emit bit-identical
  // streams; production callers use the one-argument form.
  BatchRng(std::uint64_t seed, bool use_vector);

  // times[i] = carry + sum of the first i+1 Exp(mean) gaps; carry
  // advances to times[count-1]. The prefix association is the fixed
  // shift-1/2/4 tree within each 8-lane block, identical on both paths.
  void fill_exp_times(double* times, std::size_t count, double mean,
                      double& carry);

  // out[i] uniform in [0, bound) via the 53-bit double method
  // (floor(u53 * 2^-53 * bound), clamped); bound must be in [1, 2^32).
  void fill_below(std::uint32_t* out, std::size_t count,
                  std::uint32_t bound);

  // True when the AVX-512 kernels are active on this host.
  [[nodiscard]] static bool vectorized();

 private:
  // Two independent 8-lane xoshiro256** states (gaps, picks), kept as
  // plain arrays so this header stays ISA-free: state_[word][lane].
  alignas(64) std::uint64_t gap_state_[4][kLanes];
  alignas(64) std::uint64_t pick_state_[4][kLanes];
  Rng tail_;     // scalar stream for ziggurat rejection continuations
  bool vector_;  // resolved implementation path for this instance
};

}  // namespace ndpcr
