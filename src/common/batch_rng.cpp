#include "common/batch_rng.hpp"

#include <cmath>

#include "common/ziggurat.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define NDPCR_BATCH_RNG_X86 1
#endif

// This translation unit is compiled with -ffp-contract=off (see
// src/common/CMakeLists.txt): the portable path must perform the exact
// multiply/add sequence the AVX-512 kernels perform, and a fused
// multiply-add would silently change the rounding of the gap values.

namespace ndpcr {
namespace {

constexpr double kInv53 = 0x1.0p-53;
constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ull;

// splitmix64 expansion, one independent stream per (stream, lane).
void seed_lanes(std::uint64_t seed, std::uint64_t stream,
                std::uint64_t state[4][BatchRng::kLanes]) {
  for (std::size_t lane = 0; lane < BatchRng::kLanes; ++lane) {
    std::uint64_t x =
        seed + kGolden * (stream * BatchRng::kLanes + lane + 1);
    for (int word = 0; word < 4; ++word) {
      x += kGolden;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      state[word][lane] = z ^ (z >> 31);
    }
  }
}

inline std::uint64_t rotl64(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// One xoshiro256** step of a single lane of the interleaved state.
inline std::uint64_t lane_next(std::uint64_t state[4][BatchRng::kLanes],
                               std::size_t lane) {
  std::uint64_t s0 = state[0][lane], s1 = state[1][lane];
  std::uint64_t s2 = state[2][lane], s3 = state[3][lane];
  const std::uint64_t result = rotl64(s1 * 5, 7) * 9;
  const std::uint64_t t = s1 << 17;
  s2 ^= s0;
  s3 ^= s1;
  s1 ^= s2;
  s0 ^= s3;
  s2 ^= t;
  s3 = rotl64(s3, 45);
  state[0][lane] = s0;
  state[1][lane] = s1;
  state[2][lane] = s2;
  state[3][lane] = s3;
  return result;
}

// Full ziggurat walk from an already-drawn first candidate `u`;
// continuation draws (wedge tests, tail) come from `tail`. The fast
// accept is the same (ux * 2^-53) * x_i < x_{i+1} sequence the vector
// kernel evaluates.
double zig_from(std::uint64_t u, Rng& tail) {
  const auto& t = detail::ziggurat_exp_tables();
  for (;;) {
    const int i = static_cast<int>(u & 255u);
    const double ux = static_cast<double>(u >> 11) * kInv53;
    const double val = ux * t.x_[i];
    if (val < t.x_[i + 1]) return val;
    if (i == 0) {
      double uu = tail.next_double();
      while (uu <= 0.0) uu = tail.next_double();
      return 7.69711747013104972 - std::log(uu);
    }
    const double u2 = tail.next_double();
    if (detail::wedge_accept(t, i, u2, val)) return val;
    u = tail.next_u64();
  }
}

// Fixed shift-1/2/4 prefix tree over one 8-lane block, then the carry.
// Both paths use exactly this association.
inline void prefix8(const double g[BatchRng::kLanes],
                    double out[BatchRng::kLanes], double& carry) {
  double a[BatchRng::kLanes], b[BatchRng::kLanes];
  for (std::size_t i = 0; i < 8; ++i) a[i] = i >= 1 ? g[i] + g[i - 1] : g[i];
  for (std::size_t i = 0; i < 8; ++i) b[i] = i >= 2 ? a[i] + a[i - 2] : a[i];
  for (std::size_t i = 0; i < 8; ++i) {
    out[i] = (i >= 4 ? b[i] + b[i - 4] : b[i]) + carry;
  }
  carry = out[7];
}

// ---- portable path ----------------------------------------------------

void exp_block_scalar(std::uint64_t state[4][BatchRng::kLanes], Rng& tail,
                      double mean, double out[BatchRng::kLanes],
                      double& carry) {
  double gaps[BatchRng::kLanes];
  for (std::size_t lane = 0; lane < BatchRng::kLanes; ++lane) {
    gaps[lane] = zig_from(lane_next(state, lane), tail) * mean;
  }
  prefix8(gaps, out, carry);
}

void below_block_scalar(std::uint64_t state[4][BatchRng::kLanes],
                        std::uint32_t bound,
                        std::uint32_t out[BatchRng::kLanes]) {
  for (std::size_t lane = 0; lane < BatchRng::kLanes; ++lane) {
    const std::uint64_t u = lane_next(state, lane);
    const double ux = static_cast<double>(u >> 11) * kInv53;
    auto v = static_cast<std::uint64_t>(ux * static_cast<double>(bound));
    if (v >= bound) v = bound - 1;
    out[lane] = static_cast<std::uint32_t>(v);
  }
}

// ---- AVX-512 path -----------------------------------------------------

#if NDPCR_BATCH_RNG_X86

__attribute__((target("avx512f,avx512dq"))) void exp_fill_avx512(
    std::uint64_t state[4][BatchRng::kLanes], Rng& tail, double* times,
    std::size_t blocks, double mean, double& carry) {
  const auto& t = detail::ziggurat_exp_tables();
  alignas(64) static thread_local double xs[256];
  static thread_local bool xs_ready = false;
  if (!xs_ready) {
    for (int i = 0; i < 256; ++i) xs[i] = t.x_[i + 1];
    xs_ready = true;
  }
  __m512i s0 = _mm512_load_epi64(state[0]);
  __m512i s1 = _mm512_load_epi64(state[1]);
  __m512i s2 = _mm512_load_epi64(state[2]);
  __m512i s3 = _mm512_load_epi64(state[3]);
  const __m512d scale = _mm512_set1_pd(kInv53);
  const __m512d vmean = _mm512_set1_pd(mean);
  // Carry stays in a register between blocks (broadcast of lane 7) - a
  // store/reload of times[blk*8+7] would put a store-forward on every
  // block's critical path.
  __m512d vcarry = _mm512_set1_pd(carry);
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    // xoshiro256** step, all 8 lanes; *5 and *9 as shift-adds (vpmullq
    // is microcoded on Skylake-SP).
    __m512i r = _mm512_add_epi64(s1, _mm512_slli_epi64(s1, 2));
    r = _mm512_rolv_epi64(r, _mm512_set1_epi64(7));
    r = _mm512_add_epi64(r, _mm512_slli_epi64(r, 3));
    const __m512i tw = _mm512_slli_epi64(s1, 17);
    s2 = _mm512_xor_si512(s2, s0);
    s3 = _mm512_xor_si512(s3, s1);
    s1 = _mm512_xor_si512(s1, s2);
    s0 = _mm512_xor_si512(s0, s3);
    s2 = _mm512_xor_si512(s2, tw);
    s3 = _mm512_rolv_epi64(s3, _mm512_set1_epi64(45));

    const __m512i idx = _mm512_and_epi64(r, _mm512_set1_epi64(255));
    const __m512d xi = _mm512_i64gather_pd(idx, t.x_, 8);
    const __m512d xi1 = _mm512_i64gather_pd(idx, xs, 8);
    const __m512d ux =
        _mm512_mul_pd(_mm512_cvtepu64_pd(_mm512_srli_epi64(r, 11)), scale);
    const __m512d val = _mm512_mul_pd(ux, xi);
    const __mmask8 ok = _mm512_cmp_pd_mask(val, xi1, _CMP_LT_OQ);
    __m512d g = _mm512_mul_pd(val, vmean);
    if (ok != 0xFF) {
      // Rare (~2%): finish the rejected lanes' walks in lane order.
      alignas(64) std::uint64_t us[8];
      alignas(64) double gs[8];
      _mm512_store_epi64(us, r);
      _mm512_store_pd(gs, g);
      for (std::size_t lane = 0; lane < 8; ++lane) {
        if ((ok >> lane) & 1) continue;
        gs[lane] = zig_from(us[lane], tail) * mean;
      }
      g = _mm512_load_pd(gs);
    }
    __m512d a = _mm512_add_pd(g, _mm512_maskz_expand_pd(0xFE, g));
    a = _mm512_add_pd(a, _mm512_maskz_expand_pd(0xFC, a));
    a = _mm512_add_pd(a, _mm512_maskz_expand_pd(0xF0, a));
    a = _mm512_add_pd(a, vcarry);
    _mm512_storeu_pd(times + blk * 8, a);
    vcarry = _mm512_permutexvar_pd(_mm512_set1_epi64(7), a);
  }
  if (blocks > 0) carry = times[blocks * 8 - 1];
  _mm512_store_epi64(state[0], s0);
  _mm512_store_epi64(state[1], s1);
  _mm512_store_epi64(state[2], s2);
  _mm512_store_epi64(state[3], s3);
}

__attribute__((target("avx512f,avx512dq"))) void below_fill_avx512(
    std::uint64_t state[4][BatchRng::kLanes], std::uint32_t bound,
    std::uint32_t* out, std::size_t blocks) {
  __m512i s0 = _mm512_load_epi64(state[0]);
  __m512i s1 = _mm512_load_epi64(state[1]);
  __m512i s2 = _mm512_load_epi64(state[2]);
  __m512i s3 = _mm512_load_epi64(state[3]);
  const __m512d scale = _mm512_set1_pd(kInv53);
  const __m512d vbound = _mm512_set1_pd(static_cast<double>(bound));
  const __m512i vmax = _mm512_set1_epi64(bound - 1);
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    __m512i r = _mm512_add_epi64(s1, _mm512_slli_epi64(s1, 2));
    r = _mm512_rolv_epi64(r, _mm512_set1_epi64(7));
    r = _mm512_add_epi64(r, _mm512_slli_epi64(r, 3));
    const __m512i tw = _mm512_slli_epi64(s1, 17);
    s2 = _mm512_xor_si512(s2, s0);
    s3 = _mm512_xor_si512(s3, s1);
    s1 = _mm512_xor_si512(s1, s2);
    s0 = _mm512_xor_si512(s0, s3);
    s2 = _mm512_xor_si512(s2, tw);
    s3 = _mm512_rolv_epi64(s3, _mm512_set1_epi64(45));

    const __m512d ux =
        _mm512_mul_pd(_mm512_cvtepu64_pd(_mm512_srli_epi64(r, 11)), scale);
    __m512i v = _mm512_cvttpd_epi64(_mm512_mul_pd(ux, vbound));
    v = _mm512_min_epu64(v, vmax);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + blk * 8),
                        _mm512_cvtepi64_epi32(v));
  }
  _mm512_store_epi64(state[0], s0);
  _mm512_store_epi64(state[1], s1);
  _mm512_store_epi64(state[2], s2);
  _mm512_store_epi64(state[3], s3);
}

#endif  // NDPCR_BATCH_RNG_X86

}  // namespace

BatchRng::BatchRng(std::uint64_t seed) : BatchRng(seed, vectorized()) {}

BatchRng::BatchRng(std::uint64_t seed, bool use_vector)
    : tail_(seed ^ kGolden), vector_(use_vector && vectorized()) {
  seed_lanes(seed, 0, gap_state_);
  seed_lanes(seed, 1, pick_state_);
}

bool BatchRng::vectorized() {
#if NDPCR_BATCH_RNG_X86
  static const bool ok = __builtin_cpu_supports("avx512f") &&
                         __builtin_cpu_supports("avx512dq");
  return ok;
#else
  return false;
#endif
}

void BatchRng::fill_exp_times(double* times, std::size_t count, double mean,
                              double& carry) {
  const std::size_t blocks = count / kLanes;
#if NDPCR_BATCH_RNG_X86
  if (vector_) {
    exp_fill_avx512(gap_state_, tail_, times, blocks, mean, carry);
  } else
#endif
  {
    for (std::size_t blk = 0; blk < blocks; ++blk) {
      exp_block_scalar(gap_state_, tail_, mean, times + blk * kLanes, carry);
    }
  }
  const std::size_t rest = count - blocks * kLanes;
  if (rest > 0) {
    // One full lane step, first `rest` values kept - identical stream
    // whether or not the tail of a request is a whole block.
    double block[kLanes];
    double c = carry;
    exp_block_scalar(gap_state_, tail_, mean, block, c);
    for (std::size_t i = 0; i < rest; ++i) times[blocks * kLanes + i] = block[i];
    carry = block[rest - 1];
  }
}

void BatchRng::fill_below(std::uint32_t* out, std::size_t count,
                          std::uint32_t bound) {
  const std::size_t blocks = count / kLanes;
#if NDPCR_BATCH_RNG_X86
  if (vector_) {
    below_fill_avx512(pick_state_, bound, out, blocks);
  } else
#endif
  {
    for (std::size_t blk = 0; blk < blocks; ++blk) {
      below_block_scalar(pick_state_, bound, out + blk * kLanes);
    }
  }
  const std::size_t rest = count - blocks * kLanes;
  if (rest > 0) {
    std::uint32_t block[kLanes];
    below_block_scalar(pick_state_, bound, block);
    for (std::size_t i = 0; i < rest; ++i) out[blocks * kLanes + i] = block[i];
  }
}

}  // namespace ndpcr
