#pragma once

#include <cstddef>
#include <vector>

namespace ndpcr {

// Streaming mean/variance accumulator (Welford). Used to aggregate Monte
// Carlo trials so callers can report a confidence band along with the mean.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // sample variance (n-1)
  [[nodiscard]] double stddev() const;
  // Half-width of an approximate 95% confidence interval on the mean.
  [[nodiscard]] double ci95_halfwidth() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile over a copy of the samples; p in [0, 100]. Linear
// interpolation between closest ranks. Returns 0 for empty input.
double percentile(std::vector<double> samples, double p);

}  // namespace ndpcr
