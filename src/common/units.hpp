#pragma once

// Unit helpers for the ndpcr library.
//
// All model quantities are carried as doubles in SI-ish base units:
//   - time in seconds
//   - data sizes in bytes
//   - bandwidths / rates in bytes per second
// The helpers below make call sites read like the paper ("112 GB", "100
// MB/s", "30 minutes") while keeping arithmetic trivial. Decimal prefixes
// are used throughout because the paper's storage/bandwidth figures are
// decimal (GB, MB/s).

namespace ndpcr::units {

inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;
inline constexpr double kTB = 1e12;
inline constexpr double kPB = 1e15;

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

constexpr double bytes_from_gb(double gb) { return gb * kGB; }
constexpr double bytes_from_mb(double mb) { return mb * kMB; }
constexpr double bytes_from_tb(double tb) { return tb * kTB; }
constexpr double bytes_from_pb(double pb) { return pb * kPB; }

constexpr double gb(double bytes) { return bytes / kGB; }
constexpr double mb(double bytes) { return bytes / kMB; }
constexpr double tb(double bytes) { return bytes / kTB; }
constexpr double pb(double bytes) { return bytes / kPB; }

// Bandwidths.
constexpr double mbps(double megabytes_per_second) {
  return megabytes_per_second * kMB;
}
constexpr double gbps(double gigabytes_per_second) {
  return gigabytes_per_second * kGB;
}
constexpr double tbps(double terabytes_per_second) {
  return terabytes_per_second * kTB;
}

// Times.
inline constexpr double kMinute = 60.0;
inline constexpr double kHour = 3600.0;
inline constexpr double kDay = 86400.0;
inline constexpr double kYear = 365.25 * kDay;

constexpr double minutes(double m) { return m * kMinute; }
constexpr double hours(double h) { return h * kHour; }
constexpr double days(double d) { return d * kDay; }
constexpr double years(double y) { return y * kYear; }

constexpr double to_minutes(double seconds) { return seconds / kMinute; }
constexpr double to_hours(double seconds) { return seconds / kHour; }

}  // namespace ndpcr::units
