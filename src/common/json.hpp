#pragma once

// Minimal JSON output helpers shared by every serializer in the tree
// (exec::Reporter, the obs trace/metrics exporters). One escaping
// implementation, so a quote or control character in a bench name, a
// span label or a config string can never produce an unparseable file.

#include <cstdio>
#include <string>
#include <string_view>

namespace ndpcr {

// RFC 8259 string escaping: quotes, backslashes and every control
// character (U+0000..U+001F) are escaped; everything else passes through
// byte-for-byte (the tree emits UTF-8 or ASCII only).
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

// Validating parser (structure only, nothing is materialized): true iff
// `text` is one complete JSON value. Used by the trace tooling - and by
// chaos_soak - to reject an unparseable export before anyone ships it to
// Perfetto.
bool json_valid(std::string_view text);

}  // namespace ndpcr
