#pragma once

// Typed store errors for the checkpoint data path. Stores used to throw
// on any problem; the fault-injection layer (src/faults) needs consumers
// to distinguish a transient PFS hiccup (retry with backoff) from a
// permanent device outage (degrade the level and move on), so put/get
// return these result types instead.

#include <optional>
#include <string>
#include <utility>

namespace ndpcr::ckpt {

enum class StoreErrorKind {
  kNotFound,   // no entry under that key (not a device fault)
  kTransient,  // retryable I/O error (timeout, dropped request)
  kPermanent,  // device outage / unrecoverable I/O error
};

struct StoreError {
  StoreErrorKind kind = StoreErrorKind::kNotFound;
  std::string detail;

  [[nodiscard]] bool transient() const {
    return kind == StoreErrorKind::kTransient;
  }
  [[nodiscard]] bool permanent() const {
    return kind == StoreErrorKind::kPermanent;
  }
  [[nodiscard]] bool not_found() const {
    return kind == StoreErrorKind::kNotFound;
  }
};

// Outcome of a mutating store operation (put/erase).
class StoreStatus {
 public:
  StoreStatus() = default;  // success
  StoreStatus(StoreError error) : error_(std::move(error)) {}

  static StoreStatus success() { return {}; }
  static StoreStatus failure(StoreErrorKind kind, std::string detail) {
    return StoreStatus(StoreError{kind, std::move(detail)});
  }

  [[nodiscard]] bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }
  // Precondition: !ok().
  [[nodiscard]] const StoreError& error() const { return *error_; }

 private:
  std::optional<StoreError> error_;
};

// Outcome of a value-returning store operation (get). Deliberately
// optional-like (has_value / * / -> / value) so healthy-path call sites
// read the same as before the error typing.
template <typename T>
class StoreResult {
 public:
  StoreResult(T value) : value_(std::move(value)) {}
  StoreResult(StoreError error) : error_(std::move(error)) {}

  static StoreResult not_found() {
    return StoreResult(StoreError{StoreErrorKind::kNotFound, ""});
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  [[nodiscard]] bool has_value() const { return ok(); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] T& operator*() & { return *value_; }
  [[nodiscard]] const T& operator*() const& { return *value_; }
  [[nodiscard]] T* operator->() { return &*value_; }
  [[nodiscard]] const T* operator->() const { return &*value_; }
  [[nodiscard]] T& value() & { return value_.value(); }
  [[nodiscard]] const T& value() const& { return value_.value(); }
  [[nodiscard]] T&& value() && { return std::move(value_).value(); }

  // Precondition: !ok().
  [[nodiscard]] const StoreError& error() const { return *error_; }

 private:
  std::optional<T> value_;
  std::optional<StoreError> error_;
};

}  // namespace ndpcr::ckpt
