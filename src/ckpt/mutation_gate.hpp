#pragma once

// Durable-mutation gate: the crash-anywhere hook of docs/EQUIVALENCE.md.
//
// Every store that holds state a restart could recover from (KvStore,
// NvmStore, FileStore) consults an optional MutationGate immediately
// before applying a mutation. The gate sees the mutation's coordinates
// (operation kind, rank, key, size) and decides what the device does:
//
//   pass    - apply normally (also how a recording gate enumerates the
//             durable-mutation sites of a run as numbered crash points)
//   drop    - apply nothing, but report success: the process died before
//             the bytes reached the device, and a dead process cannot
//             observe the error
//   torn    - a put applies only its first `keep_bytes` bytes and reports
//             success: the write was in flight when the process died
//
// Dropping reports success on purpose. A crash is not an IO error - the
// self-healing retry path must not resurrect writes the simulated death
// already discarded - so the commit path runs to completion believing its
// writes landed, exactly like a buffered write lost in a real crash. The
// verify-readback layer may notice (and burn its retries against more
// dropped writes); that is the honest post-mortem behaviour.
//
// The gate is consulted in the *base* store implementations, so the
// fault-injection decorators (faults::FaultyKvStore and friends) compose:
// a seeded fault schedule and an armed crash point can both apply to the
// same operation.

#include <cstdint>
#include <functional>

namespace ndpcr::ckpt {

// What kind of durable mutation is about to happen. kPointer is
// FileStore's latest-pointer metadata update - a distinct crash site from
// the data-file write it follows.
enum class MutationOp : std::uint8_t { kPut, kErase, kPointer };

const char* to_string(MutationOp op);

// Coordinates of one durable mutation, as the gate sees them. `rank` and
// `key` identify the entry ((rank, checkpoint id) for KvStore/FileStore;
// NvmStore passes rank 0 and its checkpoint id - the device itself is
// identified by which gate was installed). `size` is the payload size for
// puts, 0 for erases.
struct MutationSite {
  MutationOp op = MutationOp::kPut;
  std::uint32_t rank = 0;
  std::uint64_t key = 0;
  std::size_t size = 0;
};

struct MutationDecision {
  bool drop = false;            // store nothing, report success
  std::size_t keep_bytes = 0;   // with torn: bytes of the prefix to keep
  bool torn = false;            // puts only: apply a truncated prefix
};

// One gate per device. Stores call it single-threaded per device (each
// NVM/partner device is owned by one task per phase; the IO store is
// serial), so implementations may keep per-device counters unsynchronized.
using MutationGate = std::function<MutationDecision(const MutationSite&)>;

}  // namespace ndpcr::ckpt
