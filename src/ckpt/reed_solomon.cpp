#include "ckpt/reed_solomon.hpp"

#include <array>
#include <stdexcept>

namespace ndpcr::ckpt {
namespace gf256 {
namespace {

// log/exp tables for the 0x11D field, generator 2.
struct Tables {
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 512> exp{};

  Tables() {
    std::uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[i] = static_cast<std::uint8_t>(x);
      log[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11D;
    }
    for (int i = 255; i < 512; ++i) exp[i] = exp[i - 255];
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = tables();
  return t.exp[t.log[a] + t.log[b]];
}

std::uint8_t inv(std::uint8_t a) {
  if (a == 0) throw std::domain_error("GF(256) inverse of zero");
  const auto& t = tables();
  return t.exp[255 - t.log[a]];
}

}  // namespace gf256

ReedSolomon::ReedSolomon(int data_shards, int parity_shards)
    : k_(data_shards), m_(parity_shards) {
  if (k_ < 1 || m_ < 1 || k_ + m_ > 255) {
    throw std::invalid_argument(
        "Reed-Solomon needs 1 <= k, 1 <= m, k + m <= 255");
  }
  // Vandermonde (k+m) x k: V[i][j] = i^j, guaranteed to have every k-row
  // subset invertible. Reduce the top k x k block to the identity by
  // column operations to make the code systematic.
  const int rows = k_ + m_;
  Matrix v(rows, std::vector<std::uint8_t>(k_));
  for (int i = 0; i < rows; ++i) {
    std::uint8_t value = 1;
    for (int j = 0; j < k_; ++j) {
      v[i][j] = value;
      value = gf256::mul(value, static_cast<std::uint8_t>(i));
    }
  }
  // generator = V * inverse(top k x k of V).
  Matrix top(v.begin(), v.begin() + k_);
  const Matrix top_inv = invert(std::move(top));
  generator_.assign(rows, std::vector<std::uint8_t>(k_, 0));
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < k_; ++j) {
      std::uint8_t acc = 0;
      for (int x = 0; x < k_; ++x) {
        acc = gf256::add(acc, gf256::mul(v[i][x], top_inv[x][j]));
      }
      generator_[i][j] = acc;
    }
  }
}

ReedSolomon::Matrix ReedSolomon::invert(Matrix m) {
  const std::size_t n = m.size();
  // Augment with the identity.
  for (std::size_t r = 0; r < n; ++r) {
    m[r].resize(2 * n, 0);
    m[r][n + r] = 1;
  }
  for (std::size_t col = 0; col < n; ++col) {
    // Pivot.
    std::size_t pivot = col;
    while (pivot < n && m[pivot][col] == 0) ++pivot;
    if (pivot == n) {
      throw std::invalid_argument("singular matrix in GF(256) inversion");
    }
    std::swap(m[col], m[pivot]);
    const std::uint8_t scale = gf256::inv(m[col][col]);
    for (auto& cell : m[col]) cell = gf256::mul(cell, scale);
    for (std::size_t row = 0; row < n; ++row) {
      if (row == col || m[row][col] == 0) continue;
      const std::uint8_t factor = m[row][col];
      for (std::size_t c = 0; c < 2 * n; ++c) {
        m[row][c] = gf256::add(m[row][c], gf256::mul(factor, m[col][c]));
      }
    }
  }
  Matrix out(n);
  for (std::size_t r = 0; r < n; ++r) {
    out[r].assign(m[r].begin() + n, m[r].end());
  }
  return out;
}

std::vector<Bytes> ReedSolomon::encode(
    const std::vector<Bytes>& data) const {
  if (static_cast<int>(data.size()) != k_) {
    throw std::invalid_argument("encode expects exactly k data shards");
  }
  const std::size_t len = data.front().size();
  for (const auto& shard : data) {
    if (shard.size() != len) {
      throw std::invalid_argument("data shards must be equal length");
    }
  }
  std::vector<Bytes> parity(m_, Bytes(len, std::byte{0}));
  for (int p = 0; p < m_; ++p) {
    const auto& row = generator_[k_ + p];
    for (int j = 0; j < k_; ++j) {
      const std::uint8_t coeff = row[j];
      if (coeff == 0) continue;
      const Bytes& src = data[j];
      Bytes& dst = parity[p];
      for (std::size_t i = 0; i < len; ++i) {
        dst[i] = static_cast<std::byte>(gf256::add(
            static_cast<std::uint8_t>(dst[i]),
            gf256::mul(coeff, static_cast<std::uint8_t>(src[i]))));
      }
    }
  }
  return parity;
}

std::vector<Bytes> ReedSolomon::reconstruct(
    const std::vector<std::optional<Bytes>>& shards) const {
  if (static_cast<int>(shards.size()) != k_ + m_) {
    throw std::invalid_argument("reconstruct expects k + m shard slots");
  }
  // Collect the first k survivors and their generator rows.
  std::vector<int> present;
  std::size_t len = 0;
  for (int i = 0; i < k_ + m_ && static_cast<int>(present.size()) < k_;
       ++i) {
    if (shards[i].has_value()) {
      if (!present.empty() && shards[i]->size() != len) {
        throw std::invalid_argument("shards must be equal length");
      }
      len = shards[i]->size();
      present.push_back(i);
    }
  }
  if (static_cast<int>(present.size()) < k_) {
    throw std::invalid_argument("too few shards to reconstruct");
  }

  Matrix sub(k_, std::vector<std::uint8_t>(k_));
  for (int r = 0; r < k_; ++r) sub[r] = generator_[present[r]];
  const Matrix decode = invert(std::move(sub));

  std::vector<Bytes> data(k_);
  for (int j = 0; j < k_; ++j) {
    // Shortcut: a surviving data shard is its own reconstruction.
    if (shards[j].has_value()) {
      data[j] = *shards[j];
      continue;
    }
    Bytes out(len, std::byte{0});
    for (int r = 0; r < k_; ++r) {
      const std::uint8_t coeff = decode[j][r];
      if (coeff == 0) continue;
      const Bytes& src = *shards[present[r]];
      for (std::size_t i = 0; i < len; ++i) {
        out[i] = static_cast<std::byte>(gf256::add(
            static_cast<std::uint8_t>(out[i]),
            gf256::mul(coeff, static_cast<std::uint8_t>(src[i]))));
      }
    }
    data[j] = std::move(out);
  }
  return data;
}

}  // namespace ndpcr::ckpt
