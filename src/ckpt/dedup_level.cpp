#include "ckpt/dedup_level.hpp"

#include "common/crc32.hpp"

namespace ndpcr::ckpt {
namespace {

constexpr std::uint32_t kRecipeMagic = 0x4E445243;  // "NDRC"
// magic(4) image_size(8) count(4), then per block key(8) size(4) crc(4).
constexpr std::size_t kRecipeHeader = 4 + 8 + 4;
constexpr std::size_t kRefBytes = 8 + 4 + 4;

std::uint32_t crc_of(ByteSpan block) {
  Crc32 crc;
  crc.update(block);
  return crc.value();
}

}  // namespace

DedupIndex::DedupIndex(delta::CdcParams cdc) : cdc_(cdc) {
  // Validate eagerly (cdc_boundaries would throw on first use otherwise).
  (void)delta::cdc_boundaries(ByteSpan(), cdc_);
}

DedupIndex::Plan DedupIndex::plan(ByteSpan image) const {
  Plan plan;
  plan.raw_bytes = image.size();
  const std::vector<std::size_t> bounds = delta::cdc_boundaries(image, cdc_);
  plan.refs.reserve(bounds.size());

  // Blocks this plan itself introduces: later duplicates within the same
  // image must resolve against them, and a key probed past a collision
  // here must stay probed for the rest of the plan.
  std::map<std::uint64_t, Entry> pending;

  std::size_t start = 0;
  for (const std::size_t end : bounds) {
    const ByteSpan block = image.subspan(start, end - start);
    start = end;
    BlockRef ref;
    ref.size = static_cast<std::uint32_t>(block.size());
    ref.crc = crc_of(block);
    ref.key = delta::block_hash(block);
    // Identity is (key, size, crc); a slot holding a different identity
    // is a hash collision, probed past deterministically.
    for (;; ++ref.key) {
      const auto it = blocks_.find(ref.key);
      if (it != blocks_.end()) {
        if (it->second.size == ref.size && it->second.crc == ref.crc) {
          plan.dup_bytes += block.size();
          break;
        }
        continue;  // collision with an admitted block
      }
      const auto pit = pending.find(ref.key);
      if (pit != pending.end()) {
        if (pit->second.size == ref.size && pit->second.crc == ref.crc) {
          plan.dup_bytes += block.size();
          break;
        }
        continue;  // collision with a block staged by this very plan
      }
      pending.emplace(ref.key, Entry{ref.size, ref.crc, 1});
      plan.new_blocks.emplace_back(ref.key,
                                   Bytes(block.begin(), block.end()));
      plan.new_bytes += block.size();
      break;
    }
    plan.refs.push_back(ref);
  }

  plan.recipe.reserve(kRecipeHeader + plan.refs.size() * kRefBytes);
  append_le<std::uint32_t>(plan.recipe, kRecipeMagic);
  append_le<std::uint64_t>(plan.recipe, image.size());
  append_le<std::uint32_t>(plan.recipe,
                           static_cast<std::uint32_t>(plan.refs.size()));
  for (const BlockRef& ref : plan.refs) {
    append_le<std::uint64_t>(plan.recipe, ref.key);
    append_le<std::uint32_t>(plan.recipe, ref.size);
    append_le<std::uint32_t>(plan.recipe, ref.crc);
  }
  return plan;
}

void DedupIndex::admit_refs(const std::vector<BlockRef>& refs,
                            std::size_t image_size, std::uint32_t rank,
                            std::uint64_t id) {
  // Release-before-charge: a replayed admit (a commit retried across a
  // simulated crash) must land exactly once, so any previous recording
  // under this (rank, id) gives back its refcounts before the new ones
  // are charged. The order matters - charging first would let a replay
  // free shared blocks its own re-charge still needs if release ran
  // between, and doubles the transient footprint.
  if (recipes_.count(std::make_pair(rank, id)) > 0) {
    (void)release(rank, id);
  }
  for (const BlockRef& ref : refs) {
    auto [it, inserted] =
        blocks_.try_emplace(ref.key, Entry{ref.size, ref.crc, 0});
    if (inserted) stored_bytes_ += ref.size;
    ++it->second.refs;
  }
  logical_bytes_ += image_size;
  recipes_.emplace(std::make_pair(rank, id), refs);
}

void DedupIndex::admit(const Plan& plan, std::uint32_t rank,
                       std::uint64_t id) {
  admit_refs(plan.refs, plan.raw_bytes, rank, id);
}

void DedupIndex::restore(const std::vector<BlockRef>& refs,
                         std::size_t image_size, std::uint32_t rank,
                         std::uint64_t id) {
  admit_refs(refs, image_size, rank, id);
}

std::vector<std::uint64_t> DedupIndex::release(std::uint32_t rank,
                                               std::uint64_t id) {
  std::vector<std::uint64_t> freed;
  const auto it = recipes_.find(std::make_pair(rank, id));
  if (it == recipes_.end()) return freed;
  for (const BlockRef& ref : it->second) {
    auto block = blocks_.find(ref.key);
    if (block == blocks_.end()) continue;
    logical_bytes_ -= ref.size;
    if (--block->second.refs == 0) {
      stored_bytes_ -= block->second.size;
      blocks_.erase(block);
      freed.push_back(ref.key);
    }
  }
  recipes_.erase(it);
  return freed;
}

bool DedupIndex::is_recipe(ByteSpan raw) {
  return raw.size() >= 4 && read_le<std::uint32_t>(raw, 0) == kRecipeMagic;
}

std::optional<DedupIndex::ParsedRecipe> DedupIndex::parse_recipe(
    ByteSpan recipe) {
  if (recipe.size() < kRecipeHeader || !is_recipe(recipe)) {
    return std::nullopt;
  }
  ParsedRecipe parsed;
  parsed.image_size = read_le<std::uint64_t>(recipe, 4);
  const auto count = read_le<std::uint32_t>(recipe, 12);
  if (recipe.size() != kRecipeHeader + std::size_t{count} * kRefBytes) {
    return std::nullopt;
  }
  parsed.refs.reserve(count);
  std::size_t pos = kRecipeHeader;
  std::size_t total = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    BlockRef ref;
    ref.key = read_le<std::uint64_t>(recipe, pos);
    ref.size = read_le<std::uint32_t>(recipe, pos + 8);
    ref.crc = read_le<std::uint32_t>(recipe, pos + 12);
    pos += kRefBytes;
    total += ref.size;
    parsed.refs.push_back(ref);
  }
  if (total != parsed.image_size) return std::nullopt;
  return parsed;
}

std::optional<Bytes> DedupIndex::assemble(
    ByteSpan recipe,
    const std::function<std::optional<Bytes>(const BlockRef&)>& fetch) {
  const auto parsed = parse_recipe(recipe);
  if (!parsed) return std::nullopt;
  Bytes out;
  out.reserve(parsed->image_size);
  for (const BlockRef& ref : parsed->refs) {
    const std::optional<Bytes> block = fetch(ref);
    if (!block || block->size() != ref.size ||
        crc_of(ByteSpan(*block)) != ref.crc) {
      return std::nullopt;
    }
    out.insert(out.end(), block->begin(), block->end());
  }
  if (out.size() != parsed->image_size) return std::nullopt;
  return out;
}

}  // namespace ndpcr::ckpt
