#pragma once

// Node-local NVM checkpoint store, per section 4.2: "The NVM capacity is
// organized as a circular buffer where each checkpoint is written in a
// FIFO manner", with locking so the NDP can pin a checkpoint while it
// drains it to global I/O ("it locks the checkpoint to prevent it being
// over-written by a future checkpoint writing operation").
//
// Section 4.3's two-partition layout (uncompressed / compressed circular
// buffers) is realized by instantiating two NvmStores over the device's
// capacity split.
//
// Optional block dedup (docs/DELTA.md): with a nonzero dedup block size,
// capacity accounting charges each checkpoint only for the fixed-size
// blocks no resident checkpoint already holds - consecutive checkpoints of
// the same rank share most of their bytes, so the same NVM budget retains
// a longer history. Entries stay materialized (get() still returns a
// stable span of the full image); the dedup models the device's space
// accounting, and `used_bytes() <= logical_bytes()` exposes the savings.

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <utility>

#include "ckpt/mutation_gate.hpp"
#include "common/bytes.hpp"

namespace ndpcr::ckpt {

class NvmStore {
 public:
  // `dedup_block_bytes` of 0 disables dedup accounting (every checkpoint
  // is charged its full size, the classic circular buffer).
  explicit NvmStore(std::size_t capacity_bytes,
                    std::size_t dedup_block_bytes = 0);

  // Append a checkpoint. Evicts the oldest *unlocked* checkpoints (FIFO)
  // until the new one fits. Returns false (and stores nothing) if it
  // cannot fit even after evicting everything evictable - locked entries
  // are never evicted. Ids must be strictly increasing.
  bool put(std::uint64_t checkpoint_id, Bytes data);

  // Access a stored checkpoint. The span is valid until the entry is
  // evicted or erased.
  [[nodiscard]] std::optional<ByteSpan> get(std::uint64_t checkpoint_id) const;

  [[nodiscard]] bool contains(std::uint64_t checkpoint_id) const;

  // Newest stored id, if any.
  [[nodiscard]] std::optional<std::uint64_t> newest_id() const;

  // Pin / unpin against FIFO eviction. Throws std::out_of_range for an
  // unknown id. Locks nest (each lock() needs an unlock()).
  void lock(std::uint64_t checkpoint_id);
  void unlock(std::uint64_t checkpoint_id);
  [[nodiscard]] bool is_locked(std::uint64_t checkpoint_id) const;

  // Explicitly drop a checkpoint (e.g. after it is safely on global I/O).
  // No-op for unknown ids; throws std::logic_error if locked.
  void erase(std::uint64_t checkpoint_id);

  // Simulated whole-device loss (node failure): clears everything.
  void clear();

  // Durable-mutation gate (docs/EQUIVALENCE.md), consulted before every
  // put/erase - before even the id-monotonicity check, so a dead device
  // silently swallows the retries of a write whose torn tail survived.
  void set_mutation_gate(MutationGate gate) { gate_ = std::move(gate); }

  // Flip one byte of a stored checkpoint in place (deterministic position
  // from `salt`; same primitive as KvStore::corrupt_entry). Returns false
  // for an unknown id or an empty entry. Fault-injection hook only.
  bool corrupt_entry(std::uint64_t checkpoint_id, std::uint64_t salt);

  [[nodiscard]] std::size_t capacity_bytes() const { return capacity_; }
  [[nodiscard]] std::size_t used_bytes() const { return used_; }
  // Sum of resident checkpoint sizes (== used_bytes() without dedup).
  [[nodiscard]] std::size_t logical_bytes() const { return logical_; }
  [[nodiscard]] std::size_t dedup_saved_bytes() const {
    return logical_ - used_;
  }
  [[nodiscard]] std::size_t dedup_block_bytes() const {
    return dedup_block_;
  }
  [[nodiscard]] std::size_t count() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t eviction_count() const { return evictions_; }

 private:
  struct Entry {
    std::uint64_t id;
    Bytes data;
    int lock_count = 0;
    std::size_t charged = 0;  // capacity bytes this entry accounts for
    std::vector<std::uint64_t> block_keys;  // dedup refs (empty w/o dedup)
  };
  struct BlockInfo {
    std::uint32_t size = 0;
    std::size_t refs = 0;
  };

  // Capacity this data would cost against the *current* block pool, plus
  // the probed key list (intra-image duplicates count once).
  std::size_t unique_cost(ByteSpan data,
                          std::vector<std::uint64_t>* keys_out) const;
  void admit_blocks(const Entry& entry);
  void release_entry(const Entry& entry);

  std::size_t capacity_;
  std::size_t dedup_block_;
  MutationGate gate_;
  std::size_t used_ = 0;
  std::size_t logical_ = 0;
  std::uint64_t evictions_ = 0;
  std::deque<Entry> entries_;  // FIFO order, oldest first
  // Content-addressed block refcounts; identity is (hash, size) with
  // linear key probing on collisions.
  std::map<std::uint64_t, BlockInfo> blocks_;
};

}  // namespace ndpcr::ckpt
