#pragma once

// Node-local NVM checkpoint store, per section 4.2: "The NVM capacity is
// organized as a circular buffer where each checkpoint is written in a
// FIFO manner", with locking so the NDP can pin a checkpoint while it
// drains it to global I/O ("it locks the checkpoint to prevent it being
// over-written by a future checkpoint writing operation").
//
// Section 4.3's two-partition layout (uncompressed / compressed circular
// buffers) is realized by instantiating two NvmStores over the device's
// capacity split.

#include <cstdint>
#include <deque>
#include <optional>

#include "common/bytes.hpp"

namespace ndpcr::ckpt {

class NvmStore {
 public:
  explicit NvmStore(std::size_t capacity_bytes);

  // Append a checkpoint. Evicts the oldest *unlocked* checkpoints (FIFO)
  // until the new one fits. Returns false (and stores nothing) if it
  // cannot fit even after evicting everything evictable - locked entries
  // are never evicted. Ids must be strictly increasing.
  bool put(std::uint64_t checkpoint_id, Bytes data);

  // Access a stored checkpoint. The span is valid until the entry is
  // evicted or erased.
  [[nodiscard]] std::optional<ByteSpan> get(std::uint64_t checkpoint_id) const;

  [[nodiscard]] bool contains(std::uint64_t checkpoint_id) const;

  // Newest stored id, if any.
  [[nodiscard]] std::optional<std::uint64_t> newest_id() const;

  // Pin / unpin against FIFO eviction. Throws std::out_of_range for an
  // unknown id. Locks nest (each lock() needs an unlock()).
  void lock(std::uint64_t checkpoint_id);
  void unlock(std::uint64_t checkpoint_id);
  [[nodiscard]] bool is_locked(std::uint64_t checkpoint_id) const;

  // Explicitly drop a checkpoint (e.g. after it is safely on global I/O).
  // No-op for unknown ids; throws std::logic_error if locked.
  void erase(std::uint64_t checkpoint_id);

  // Simulated whole-device loss (node failure): clears everything.
  void clear();

  // Flip one byte of a stored checkpoint in place (deterministic position
  // from `salt`; same primitive as KvStore::corrupt_entry). Returns false
  // for an unknown id or an empty entry. Fault-injection hook only.
  bool corrupt_entry(std::uint64_t checkpoint_id, std::uint64_t salt);

  [[nodiscard]] std::size_t capacity_bytes() const { return capacity_; }
  [[nodiscard]] std::size_t used_bytes() const { return used_; }
  [[nodiscard]] std::size_t count() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t eviction_count() const { return evictions_; }

 private:
  struct Entry {
    std::uint64_t id;
    Bytes data;
    int lock_count = 0;
  };

  std::size_t capacity_;
  std::size_t used_ = 0;
  std::uint64_t evictions_ = 0;
  std::deque<Entry> entries_;  // FIFO order, oldest first
};

}  // namespace ndpcr::ckpt
