#include "ckpt/region.hpp"

#include <cstring>

#include "delta/delta.hpp"

namespace ndpcr::ckpt {
namespace {

constexpr std::uint32_t kDeltaMagic = 0x4E445244;  // "NDRD"

// Order-sensitive FNV-style fold of per-region content hashes: the digest
// a delta payload pins its base with.
std::uint64_t fold_digest(std::uint64_t h, std::uint64_t region_hash) {
  h ^= region_hash;
  h *= 0x100000001b3ull;
  return h;
}

constexpr std::uint64_t kDigestSeed = 0xcbf29ce484222325ull;

// One parsed region record of a full payload (count + per-region
// name/size/bytes), shared by restore parsing and apply_delta.
struct ParsedRegion {
  std::string_view name;
  std::size_t size = 0;
  ByteSpan bytes;
};

std::vector<ParsedRegion> parse_full_payload(ByteSpan payload) {
  std::size_t pos = 0;
  auto need = [&](std::size_t n) {
    if (pos + n > payload.size()) {
      throw ImageError("truncated region payload");
    }
  };
  need(4);
  const auto count = read_le<std::uint32_t>(payload, pos);
  pos += 4;
  std::vector<ParsedRegion> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ParsedRegion r;
    need(4);
    const auto name_len = read_le<std::uint32_t>(payload, pos);
    pos += 4;
    need(name_len);
    r.name = std::string_view(
        reinterpret_cast<const char*>(payload.data() + pos), name_len);
    pos += name_len;
    need(8);
    r.size = read_le<std::uint64_t>(payload, pos);
    pos += 8;
    need(r.size);
    r.bytes = payload.subspan(pos, r.size);
    pos += r.size;
    out.push_back(r);
  }
  if (pos != payload.size()) {
    throw ImageError("trailing bytes in region payload");
  }
  return out;
}

}  // namespace

void RegionRegistry::register_region(std::string name, void* data,
                                     std::size_t size) {
  register_region_impl(std::move(name), data, size, nullptr);
}

void RegionRegistry::register_region_impl(std::string name, void* data,
                                          std::size_t size,
                                          std::function<LiveExtent()> live) {
  for (const auto& r : regions_) {
    if (r.name == name) {
      throw ImageError("duplicate region name: " + name);
    }
  }
  Region region;
  region.name = std::move(name);
  region.data = data;
  region.size = size;
  region.live = std::move(live);
  regions_.push_back(std::move(region));
}

void* RegionRegistry::current_extent(const Region& region) {
  if (!region.live) return region.data;
  const LiveExtent extent = region.live();
  if (extent.size != region.size) {
    throw ImageError("region '" + region.name +
                     "' resized since registration (" +
                     std::to_string(region.size) + " -> " +
                     std::to_string(extent.size) + " bytes)");
  }
  return extent.data;
}

void RegionRegistry::mark_dirty(std::string_view name) {
  for (auto& r : regions_) {
    if (r.name == name) {
      r.dirty = true;
      return;
    }
  }
  throw ImageError("mark_dirty: unknown region '" + std::string(name) + "'");
}

std::uint64_t RegionRegistry::base_digest() const {
  std::uint64_t h = kDigestSeed;
  for (const auto& r : regions_) h = fold_digest(h, r.content_hash);
  return h;
}

Bytes RegionRegistry::capture() {
  Bytes out;
  out.reserve(total_bytes() + 64 * regions_.size());
  append_le<std::uint32_t>(out, static_cast<std::uint32_t>(regions_.size()));
  for (auto& r : regions_) {
    const void* data = current_extent(r);
    append_le<std::uint32_t>(out, static_cast<std::uint32_t>(r.name.size()));
    for (char c : r.name) out.push_back(static_cast<std::byte>(c));
    append_le<std::uint64_t>(out, r.size);
    const std::size_t offset = out.size();
    out.resize(offset + r.size);
    std::memcpy(out.data() + offset, data, r.size);
    r.content_hash = delta::block_hash(ByteSpan(out).subspan(offset, r.size));
    r.dirty = false;
  }
  has_base_ = true;
  return out;
}

Bytes RegionRegistry::capture_delta(DeltaCaptureStats* stats) {
  if (!has_base_) {
    throw ImageError("capture_delta before any full capture");
  }
  DeltaCaptureStats local;
  local.regions_total = regions_.size();

  // Decide dirtiness first, against the *pre-capture* hashes: the digest
  // must describe the base this delta applies to.
  const std::uint64_t digest = base_digest();
  std::vector<const void*> data(regions_.size());
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    Region& r = regions_[i];
    data[i] = current_extent(r);
    if (!r.dirty && tracking_ == DirtyTracking::kHashSweep) {
      const std::uint64_t now = delta::block_hash(
          ByteSpan(static_cast<const std::byte*>(data[i]), r.size));
      if (now != r.content_hash) r.dirty = true;
    }
  }

  Bytes out;
  append_le<std::uint32_t>(out, kDeltaMagic);
  append_le<std::uint32_t>(out, static_cast<std::uint32_t>(regions_.size()));
  append_le<std::uint64_t>(out, digest);
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    Region& r = regions_[i];
    append_le<std::uint32_t>(out, static_cast<std::uint32_t>(r.name.size()));
    for (char c : r.name) out.push_back(static_cast<std::byte>(c));
    append_le<std::uint64_t>(out, r.size);
    out.push_back(static_cast<std::byte>(r.dirty ? 1 : 0));
    if (r.dirty) {
      const std::size_t offset = out.size();
      out.resize(offset + r.size);
      std::memcpy(out.data() + offset, data[i], r.size);
      r.content_hash =
          delta::block_hash(ByteSpan(out).subspan(offset, r.size));
      r.dirty = false;
      ++local.regions_included;
      local.included_bytes += r.size;
    } else {
      local.skipped_bytes += r.size;
    }
  }
  if (stats != nullptr) *stats = local;
  return out;
}

bool RegionRegistry::is_delta_payload(ByteSpan payload) {
  return payload.size() >= 4 &&
         read_le<std::uint32_t>(payload, 0) == kDeltaMagic;
}

Bytes RegionRegistry::apply_delta(ByteSpan base_payload,
                                  ByteSpan delta_payload) {
  const std::vector<ParsedRegion> base = parse_full_payload(base_payload);

  std::size_t pos = 0;
  auto need = [&](std::size_t n) {
    if (pos + n > delta_payload.size()) {
      throw ImageError("truncated region delta payload");
    }
  };
  need(16);
  if (read_le<std::uint32_t>(delta_payload, 0) != kDeltaMagic) {
    throw ImageError("not a region delta payload");
  }
  const auto count = read_le<std::uint32_t>(delta_payload, 4);
  const auto digest = read_le<std::uint64_t>(delta_payload, 8);
  pos = 16;
  if (count != base.size()) {
    throw ImageError("region count mismatch between base and delta");
  }
  std::uint64_t base_hash = kDigestSeed;
  for (const auto& r : base) {
    base_hash = fold_digest(base_hash, delta::block_hash(r.bytes));
  }
  if (base_hash != digest) {
    throw ImageError("region delta applied against the wrong base");
  }

  Bytes out;
  out.reserve(base_payload.size());
  append_le<std::uint32_t>(out, count);
  for (std::uint32_t i = 0; i < count; ++i) {
    need(4);
    const auto name_len = read_le<std::uint32_t>(delta_payload, pos);
    pos += 4;
    need(name_len);
    const std::string_view name(
        reinterpret_cast<const char*>(delta_payload.data() + pos), name_len);
    pos += name_len;
    need(8);
    const auto size = read_le<std::uint64_t>(delta_payload, pos);
    pos += 8;
    need(1);
    const bool present = delta_payload[pos] != std::byte{0};
    pos += 1;
    if (name != base[i].name || size != base[i].size) {
      throw ImageError("region layout mismatch between base and delta");
    }
    append_le<std::uint32_t>(out, name_len);
    for (char c : name) out.push_back(static_cast<std::byte>(c));
    append_le<std::uint64_t>(out, size);
    if (present) {
      need(size);
      out.insert(out.end(), delta_payload.begin() + pos,
                 delta_payload.begin() + pos + size);
      pos += size;
    } else {
      out.insert(out.end(), base[i].bytes.begin(), base[i].bytes.end());
    }
  }
  if (pos != delta_payload.size()) {
    throw ImageError("trailing bytes in region delta payload");
  }
  return out;
}

void RegionRegistry::restore(ByteSpan payload) const {
  std::size_t pos = 0;
  auto need = [&](std::size_t n) {
    if (pos + n > payload.size()) {
      throw ImageError("truncated region payload");
    }
  };
  need(4);
  const auto count = read_le<std::uint32_t>(payload, pos);
  pos += 4;
  if (count != regions_.size()) {
    throw ImageError("region count mismatch on restore");
  }
  for (const auto& r : regions_) {
    void* data = current_extent(r);
    need(4);
    const auto name_len = read_le<std::uint32_t>(payload, pos);
    pos += 4;
    need(name_len);
    if (name_len != r.name.size() ||
        std::memcmp(payload.data() + pos, r.name.data(), name_len) != 0) {
      throw ImageError("region name mismatch on restore");
    }
    pos += name_len;
    need(8);
    const auto size = read_le<std::uint64_t>(payload, pos);
    pos += 8;
    if (size != r.size) {
      throw ImageError("region size mismatch on restore");
    }
    need(size);
    std::memcpy(data, payload.data() + pos, size);
    pos += size;
  }
  if (pos != payload.size()) {
    throw ImageError("trailing bytes in region payload");
  }
}

std::size_t RegionRegistry::total_bytes() const {
  std::size_t total = 0;
  for (const auto& r : regions_) total += r.size;
  return total;
}

}  // namespace ndpcr::ckpt
