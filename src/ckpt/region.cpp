#include "ckpt/region.hpp"

#include <cstring>

namespace ndpcr::ckpt {

void RegionRegistry::register_region(std::string name, void* data,
                                     std::size_t size) {
  for (const auto& r : regions_) {
    if (r.name == name) {
      throw ImageError("duplicate region name: " + name);
    }
  }
  regions_.push_back({std::move(name), data, size});
}

Bytes RegionRegistry::capture() const {
  Bytes out;
  out.reserve(total_bytes() + 64 * regions_.size());
  append_le<std::uint32_t>(out, static_cast<std::uint32_t>(regions_.size()));
  for (const auto& r : regions_) {
    append_le<std::uint32_t>(out, static_cast<std::uint32_t>(r.name.size()));
    for (char c : r.name) out.push_back(static_cast<std::byte>(c));
    append_le<std::uint64_t>(out, r.size);
    const std::size_t offset = out.size();
    out.resize(offset + r.size);
    std::memcpy(out.data() + offset, r.data, r.size);
  }
  return out;
}

void RegionRegistry::restore(ByteSpan payload) const {
  std::size_t pos = 0;
  auto need = [&](std::size_t n) {
    if (pos + n > payload.size()) {
      throw ImageError("truncated region payload");
    }
  };
  need(4);
  const auto count = read_le<std::uint32_t>(payload, pos);
  pos += 4;
  if (count != regions_.size()) {
    throw ImageError("region count mismatch on restore");
  }
  for (const auto& r : regions_) {
    need(4);
    const auto name_len = read_le<std::uint32_t>(payload, pos);
    pos += 4;
    need(name_len);
    if (name_len != r.name.size() ||
        std::memcmp(payload.data() + pos, r.name.data(), name_len) != 0) {
      throw ImageError("region name mismatch on restore");
    }
    pos += name_len;
    need(8);
    const auto size = read_le<std::uint64_t>(payload, pos);
    pos += 8;
    if (size != r.size) {
      throw ImageError("region size mismatch on restore");
    }
    need(size);
    std::memcpy(r.data, payload.data() + pos, size);
    pos += size;
  }
  if (pos != payload.size()) {
    throw ImageError("trailing bytes in region payload");
  }
}

std::size_t RegionRegistry::total_bytes() const {
  std::size_t total = 0;
  for (const auto& r : regions_) total += r.size;
  return total;
}

}  // namespace ndpcr::ckpt
