#pragma once

// Checkpoint image format: the BLCR-like "process context file" of section
// 4.2.1. An image wraps an opaque payload with metadata (application id,
// rank, checkpoint id, step) and a CRC32 so stores and transports can
// validate integrity end to end.

#include <cstdint>
#include <stdexcept>

#include "common/bytes.hpp"

namespace ndpcr::ckpt {

class ImageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// What an image's payload is: a self-contained snapshot, or a delta
// stream that must be applied to the payload of the checkpoint named by
// `base_id` (docs/DELTA.md). Recovery walks base_id links back to a full
// anchor and replays forward.
enum class PayloadKind : std::uint32_t { kFull = 0, kDelta = 1 };

const char* to_string(PayloadKind kind);

// The metadata BLCR attaches to each checkpoint (section 4.2.1): "the
// process ID of the parent application process, the MPI process ID, and a
// unique checkpoint ID".
struct CheckpointMeta {
  std::uint64_t app_id = 0;         // parent application id
  std::uint32_t rank = 0;           // MPI process id
  std::uint64_t checkpoint_id = 0;  // unique, monotonically increasing
  std::uint64_t step = 0;           // application step at capture
  PayloadKind kind = PayloadKind::kFull;
  std::uint64_t base_id = 0;        // delta reference; 0 for full images
};

class CheckpointImage {
 public:
  // Serialize metadata + payload into a framed image.
  static Bytes build(const CheckpointMeta& meta, ByteSpan payload);

  // Parse and validate a framed image. Throws ImageError on bad magic,
  // truncation, or CRC mismatch.
  static CheckpointImage parse(ByteSpan raw);

  // Cheap metadata-only parse (header fields, no CRC validation of the
  // payload). Throws on bad magic/truncation.
  static CheckpointMeta peek_meta(ByteSpan raw);

  // The exact framed size implied by the header. Lets callers trim
  // padding (e.g. XOR-group parity rebuilds pad images to a common
  // length). Throws on bad magic/truncation.
  static std::size_t framed_size(ByteSpan raw);

  [[nodiscard]] const CheckpointMeta& meta() const { return meta_; }
  [[nodiscard]] ByteSpan payload() const { return payload_; }

 private:
  CheckpointMeta meta_;
  Bytes payload_;
};

}  // namespace ndpcr::ckpt
