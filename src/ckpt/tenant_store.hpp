#pragma once

// Multi-tenant sharing seam for KvStores (docs/SERVICE.md). The service
// layer multiplexes many tenant sessions over one shared IO (and partner)
// device; each session's MultilevelManager keeps addressing ranks 0..N-1
// while the shared store sees every tenant in a disjoint rank namespace.
//
// TenantStoreView is a forwarding decorator: rank r of tenant t maps to
// rank t * kTenantRankStride + r of the shared store. Nothing is copied
// and no state lives in the view, so a tenant's writes are visible to a
// later view with the same tenant id (restart after a simulated process
// death) and invisible to every other tenant.
//
// StoreQuota meters a tenant's traffic through the seam. Budgets are
// lifetime write budgets (bytes moved and operations issued, not bytes
// resident): a facility grants each tenant so much IO, and when the grant
// is exhausted further *writes* are denied with a typed permanent
// StoreError - the manager's self-healing path then degrades that
// tenant's IO level and commits continue on the surviving levels. Reads
// are metered but never denied: a tenant over budget can always restart
// from what it already paid to store.

#include <cstdint>

#include "ckpt/stores.hpp"

namespace ndpcr::ckpt {

// Rank-namespace stride between tenants on a shared store. Managers
// address ranks far below this, so views can never collide.
inline constexpr std::uint32_t kTenantRankStride = 1u << 16;

// Stride between sub-slots inside one tenant's window. A tenant may hold
// several views of distinct roles over the same shared device (one per
// partner host space); each role gets its own 256-rank sub-namespace.
inline constexpr std::uint32_t kTenantSubSlotStride = 256;

struct StoreQuota {
  std::uint64_t byte_budget = 0;  // lifetime put bytes; 0 = unmetered
  std::uint64_t op_budget = 0;    // lifetime put+get ops; 0 = unmetered

  std::uint64_t bytes_charged = 0;
  std::uint64_t ops_charged = 0;
  std::uint64_t write_denials = 0;

  // Would a write of `bytes` exceed a budget? (Preview; charges nothing.)
  [[nodiscard]] bool would_deny(std::size_t bytes) const {
    return (byte_budget != 0 && bytes_charged + bytes > byte_budget) ||
           (op_budget != 0 && ops_charged + 1 > op_budget);
  }

  // Charge a write, or count the denial and return false.
  bool charge_write(std::size_t bytes) {
    if (would_deny(bytes)) {
      ++write_denials;
      return false;
    }
    bytes_charged += bytes;
    ++ops_charged;
    return true;
  }

  // Reads are charged against the op budget but never denied.
  void charge_read() { ++ops_charged; }

  // Fully spent: no byte (or op) of the grant remains. Weaker than
  // would_deny - a write can be denied for size while headroom remains.
  [[nodiscard]] bool exhausted() const {
    return (byte_budget != 0 && bytes_charged >= byte_budget) ||
           (op_budget != 0 && ops_charged >= op_budget);
  }
};

// A tenant's window onto a shared store: rank-offset forwarding plus
// quota enforcement. The view holds no entries of its own (the base
// class's map stays empty); every virtual operation forwards to `base`.
// Lifetime: the view borrows `base` and `quota` - the service owns both
// and keeps them alive for as long as any session exists.
//
// The base class's non-virtual observers (used_bytes, count,
// corrupt_entry) see the view's own empty map, not the shared device -
// callers that need device-level numbers must ask the shared store
// directly.
class TenantStoreView final : public KvStore {
 public:
  // `sub_slot` separates same-device roles within the tenant's window
  // (partner host spaces); rank_count must stay below
  // kTenantSubSlotStride.
  TenantStoreView(KvStore& base, std::uint32_t tenant_id,
                  std::uint32_t rank_count, StoreQuota* quota = nullptr,
                  std::uint32_t sub_slot = 0)
      : base_(base),
        offset_(tenant_id * kTenantRankStride +
                sub_slot * kTenantSubSlotStride),
        rank_count_(rank_count),
        quota_(quota) {}

  StoreStatus put(std::uint32_t rank, std::uint64_t checkpoint_id,
                  Bytes data) override;
  [[nodiscard]] StoreResult<Bytes> get(
      std::uint32_t rank, std::uint64_t checkpoint_id) const override;
  [[nodiscard]] bool contains(std::uint32_t rank,
                              std::uint64_t checkpoint_id) const override;
  [[nodiscard]] std::optional<std::uint64_t> newest_id(
      std::uint32_t rank) const override;
  [[nodiscard]] std::vector<std::uint64_t> list(
      std::uint32_t rank) const override;
  void erase(std::uint32_t rank, std::uint64_t checkpoint_id) override;
  // Clears only this tenant's namespace (all rank_count ranks), never the
  // neighbors'.
  void clear() override;

  [[nodiscard]] std::uint32_t rank_offset() const { return offset_; }

 private:
  KvStore& base_;
  std::uint32_t offset_;
  std::uint32_t rank_count_;
  StoreQuota* quota_;
};

}  // namespace ndpcr::ckpt
