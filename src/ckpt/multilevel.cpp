#include "ckpt/multilevel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "exec/task_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ndpcr::ckpt {
namespace {

double backoff_for(const RetryPolicy& policy, std::uint32_t attempt) {
  // Virtual delay charged before retry `attempt` (1-based).
  return policy.backoff_seconds *
         std::pow(policy.backoff_multiplier,
                  static_cast<double>(attempt - 1));
}

// Close out one level's share of a commit: a fully verified level heals a
// degraded state (counted as a repair); any abandoned write degrades it.
void settle_level(LevelHealth& health, bool level_ok) {
  const bool was_degraded = health.degraded();
  if (level_ok) {
    if (was_degraded) {
      health.state = LevelState::kHealthy;
      ++health.repairs;
    }
  } else {
    health.state = LevelState::kDegraded;
  }
  if (health.degraded()) ++health.degraded_commits;
}

// Fold one task's private health delta into the level's counters. Always
// called in index order after the batch barrier, so every counter - the
// floating-point backoff sum included - is reduced in one fixed order and
// the totals are bit-identical at any thread count.
void merge_level(LevelHealth& into, const LevelHealth& delta) {
  into.puts += delta.puts;
  into.put_retries += delta.put_retries;
  into.put_failures += delta.put_failures;
  into.verify_failures += delta.verify_failures;
  into.quarantined += delta.quarantined;
  into.read_retries += delta.read_retries;
  into.backoff_seconds += delta.backoff_seconds;
}

// Parse + CRC-check raw image bytes; the image iff they are rank/id's
// checkpoint. Pure - safe from any task.
std::optional<CheckpointImage> parse_image(std::uint32_t rank,
                                           std::uint64_t id, ByteSpan raw) {
  try {
    CheckpointImage image = CheckpointImage::parse(raw);
    if (image.meta().rank != rank || image.meta().checkpoint_id != id) {
      return std::nullopt;
    }
    return image;
  } catch (const ImageError&) {
    return std::nullopt;
  }
}

// Recovery walks levels fastest to slowest; a chain is charged the
// deepest level any of its links came from.
RecoveryLevel deeper(RecoveryLevel a, RecoveryLevel b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

// Bound on delta links walked before recovery declares a chain cyclic or
// corrupt (base_id must strictly decrease, so this only trips on damage).
constexpr std::size_t kMaxChainLinks = 4096;

}  // namespace

const char* to_string(RecoveryLevel level) {
  switch (level) {
    case RecoveryLevel::kLocal:
      return "local";
    case RecoveryLevel::kPartner:
      return "partner";
    case RecoveryLevel::kIo:
      return "io";
  }
  return "?";
}

const char* to_string(LevelState state) {
  switch (state) {
    case LevelState::kHealthy:
      return "healthy";
    case LevelState::kDegraded:
      return "degraded";
  }
  return "?";
}

void record_health(obs::MetricsRegistry& metrics, const HealthReport& report,
                   std::string_view prefix) {
  const auto level = [&](const char* name, const LevelHealth& h) {
    const std::string base = std::string(prefix) + "." + name + ".";
    metrics.counter(base + "puts").add(h.puts);
    metrics.counter(base + "put_retries").add(h.put_retries);
    metrics.counter(base + "put_failures").add(h.put_failures);
    metrics.counter(base + "verify_failures").add(h.verify_failures);
    metrics.counter(base + "quarantined").add(h.quarantined);
    metrics.counter(base + "read_retries").add(h.read_retries);
    metrics.counter(base + "degraded_commits").add(h.degraded_commits);
    metrics.counter(base + "repairs").add(h.repairs);
    metrics.gauge(base + "backoff_seconds").set(h.backoff_seconds);
    metrics.gauge(base + "degraded").set(h.degraded() ? 1.0 : 0.0);
  };
  level("local", report.local);
  level("partner", report.partner);
  level("io", report.io);
  const std::string base = std::string(prefix) + ".";
  metrics.counter(base + "commits").add(report.commits);
  metrics.counter(base + "degraded_commits").add(report.degraded_commits);
}

void record_data_path(obs::MetricsRegistry& metrics,
                      const DataPathStats& stats, std::string_view prefix) {
  const std::string base = std::string(prefix) + ".";
  metrics.counter(base + "commits_full").add(stats.commits_full);
  metrics.counter(base + "commits_delta").add(stats.commits_delta);
  metrics.counter(base + "payload_bytes_in").add(stats.payload_bytes_in);
  metrics.counter(base + "delta_input_bytes").add(stats.delta_input_bytes);
  metrics.counter(base + "delta_encoded_bytes")
      .add(stats.delta_encoded_bytes);
  metrics.counter(base + "local_bytes_written")
      .add(stats.local_bytes_written);
  metrics.counter(base + "partner_bytes_written")
      .add(stats.partner_bytes_written);
  metrics.counter(base + "io_logical_bytes").add(stats.io_logical_bytes);
  metrics.counter(base + "io_bytes_written").add(stats.io_bytes_written);
  metrics.counter(base + "dedup_new_bytes").add(stats.dedup_new_bytes);
  metrics.counter(base + "dedup_dup_bytes").add(stats.dedup_dup_bytes);
  metrics.counter(base + "chain_links").add(stats.chain_links);
  metrics.counter(base + "chain_replays").add(stats.chain_replays);
  metrics.gauge(base + "delta_factor").set(stats.delta_factor());
  metrics.gauge(base + "dedup_hit_rate").set(stats.dedup_hit_rate());
}

void record_pipeline(obs::MetricsRegistry& metrics,
                     const PipelineStats& stats, std::string_view prefix) {
  const std::string base = std::string(prefix) + ".";
  metrics.counter(base + "jobs").add(stats.jobs);
  metrics.counter(base + "inline_jobs").add(stats.inline_jobs);
  metrics.counter(base + "flushes").add(stats.flushes);
  // Wall-clock observations (scheduling-dependent): gauges, and excluded
  // from fingerprints the way wall-time trace events are.
  metrics.gauge(base + "queue_peak")
      .set(static_cast<double>(stats.queue_peak));
  metrics.gauge(base + "enqueue_stalls")
      .set(static_cast<double>(stats.enqueue_stalls));
}

MultilevelManager::MultilevelManager(const MultilevelConfig& config)
    : config_(config),
      trace_(config.trace ? config.trace : &obs::Tracer::null()) {
  if (config.node_count == 0) {
    throw std::invalid_argument("node_count must be positive");
  }
  if (config.retry.max_attempts == 0) {
    throw std::invalid_argument("retry.max_attempts must be positive");
  }
  if (config.partner_scheme == PartnerScheme::kXorGroup) {
    if (config.xor_group_size == 0 ||
        (config.node_count > 1 &&
         config.xor_group_size >= config.node_count)) {
      // The parity host is the node after the group; a group spanning the
      // whole machine would host its own parity and tolerate nothing.
      throw std::invalid_argument(
          "xor_group_size must be in [1, node_count)");
    }
  }
  unsigned codec_threads = config.io_threads;
  if (codec_threads == 0) {
    codec_threads = config.pool ? config.pool->thread_count()
                                : exec::default_thread_count();
  }
  if (config.io_codec != compress::CodecId::kNull) {
    io_codec_.emplace(config.io_codec, config.io_codec_level,
                      config.io_chunk_bytes, codec_threads);
    io_codec_->warm(codec_threads);
  } else if (config.io_codec_adaptive) {
    // Online selection (docs/PERF.md): one pre-built codec per candidate,
    // so the per-commit probe choice costs a table lookup, never a codec
    // allocation. A static io_codec overrides adaptive entirely.
    adaptive_codecs_.reserve(compress::kCodecCandidates);
    for (std::size_t c = 0; c < compress::kCodecCandidates; ++c) {
      const compress::CodecChoice choice = compress::codec_candidate(c);
      adaptive_codecs_.push_back(std::make_unique<compress::ChunkedCodec>(
          choice.id, choice.level, config.io_chunk_bytes, codec_threads,
          choice.accelerate));
      adaptive_codecs_.back()->warm(codec_threads);
    }
  }
  if (config.delta.enabled) {
    if (config.delta.block_bytes == 0) {
      throw std::invalid_argument("delta.block_bytes must be positive");
    }
    delta_codec_.emplace(config.delta.block_bytes);
    prev_payload_.resize(config.node_count);
    delta_scratch_.warm(config.node_count);
  }
  if (config.delta.io_dedup) {
    io_dedup_.emplace(config.delta.cdc);  // throws on bad CDC parameters
  }
  local_.reserve(config.node_count);
  for (std::uint32_t n = 0; n < config.node_count; ++n) {
    if (config_.nvm_factory) {
      local_.push_back(config_.nvm_factory(n));
      if (!local_.back()) {
        throw std::invalid_argument("nvm_factory returned null");
      }
    } else {
      local_.push_back(std::make_shared<NvmStore>(
          config.nvm_capacity_bytes, config.delta.nvm_dedup_block_bytes));
    }
  }
  local_write_ops_.assign(config.node_count, 0);
  auto make_store = [&](StoreLevel level,
                        std::uint32_t host) -> std::unique_ptr<KvStore> {
    if (config_.store_factory) return config_.store_factory(level, host);
    return std::make_unique<KvStore>();
  };
  partner_space_.reserve(config.node_count);
  for (std::uint32_t n = 0; n < config.node_count; ++n) {
    partner_space_.push_back(make_store(StoreLevel::kPartner, n));
  }
  io_ = make_store(StoreLevel::kIo, 0);
  if (config.adopt_existing) adopt_existing_state();
  if (trace_->enabled()) {
    trace_->set_track_name(0, "ckpt.manager");
    for (std::uint32_t n = 0; n < config.node_count; ++n) {
      trace_->set_track_name(1 + n, "rank " + std::to_string(n));
    }
  }
}

void MultilevelManager::adopt_existing_state() {
  // Restart over surviving stores (docs/EQUIVALENCE.md): find the newest
  // checkpoint id any level still holds for any rank, so new commits
  // continue the id sequence instead of colliding with a previous life's
  // entries. Every key space the commit path writes under is scanned:
  // local NVM per rank, partner spaces (keyed by rank for copies, by the
  // group's first rank for parity - both in [0, node_count)), and the IO
  // store.
  std::uint64_t newest = 0;
  for (std::uint32_t rank = 0; rank < config_.node_count; ++rank) {
    if (const auto id = local_[rank]->newest_id()) {
      newest = std::max(newest, *id);
    }
    for (std::uint32_t host = 0; host < config_.node_count; ++host) {
      if (const auto id = partner_space_[host]->newest_id(rank)) {
        newest = std::max(newest, *id);
      }
    }
    if (const auto id = io_->newest_id(rank)) {
      newest = std::max(newest, *id);
    }
  }
  next_id_ = newest + 1;
  // Rebuild the dedup bookkeeping from the recipes that survived: without
  // this, the first post-restart commit would re-plan every block as new
  // (wasted IO) and a later release could never free shared blocks. The
  // block space itself (kDedupBlockRank) needs no scan - blocks a
  // surviving recipe does not reference are garbage, not state.
  if (!io_dedup_) return;
  for (std::uint32_t rank = 0; rank < config_.node_count; ++rank) {
    for (const std::uint64_t id : io_->list(rank)) {
      const StoreResult<Bytes> raw = io_->get(rank, id);
      if (!raw.ok()) continue;
      const auto parsed = DedupIndex::parse_recipe(ByteSpan(*raw));
      if (!parsed) continue;  // plain framed image, or torn: not a recipe
      io_dedup_->restore(parsed->refs, parsed->image_size, rank, id);
    }
  }
}

std::uint32_t MultilevelManager::group_first(std::uint32_t rank) const {
  return rank - rank % config_.xor_group_size;
}

std::uint32_t MultilevelManager::parity_host(std::uint32_t rank) const {
  const std::uint32_t last = std::min(
      group_first(rank) + config_.xor_group_size - 1,
      config_.node_count - 1);
  return (last + 1) % config_.node_count;
}

namespace {

// Minimum bytes of estimated work one pool task should amortize. Below
// this, the fix for the committed-bench regressions applies: claims are
// batched (TaskPool grain) and tiny batches run inline - waking a pool
// for a few hundred KiB of memcpy/CRC costs more than the work
// (BENCH_datapath.json's null-codec 2-thread dip and the 8-thread
// recover collapse were exactly this overhead).
constexpr std::size_t kMinTaskBytes = 2ull << 20;

std::size_t grain_for(std::size_t n, std::size_t work_bytes) {
  if (n == 0 || work_bytes == 0) return 1;
  const std::size_t per_index = work_bytes / n;
  if (per_index >= kMinTaskBytes) return 1;
  if (per_index == 0) return n;
  return std::min(n, (kMinTaskBytes + per_index - 1) / per_index);
}

}  // namespace

void MultilevelManager::for_tasks(
    std::size_t n, const std::function<void(std::size_t)>& body,
    std::size_t work_bytes) const {
  if (exec::TaskPool::in_worker()) {
    // Already running as someone's task (the chaos suite executes whole
    // replicates on the pool): nested parallel_for is rejected, and the
    // per-index-slot structure makes inline execution bit-identical.
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  exec::TaskPool& pool =
      config_.pool ? *config_.pool : exec::global_pool();
  pool.parallel_for(n, body, grain_for(n, work_bytes));
}

bool MultilevelManager::checked_put(KvStore& store, LevelHealth& health,
                                    std::uint32_t rank, std::uint64_t id,
                                    const Bytes& data, bool probe,
                                    TraceCtx tc) {
  const RetryPolicy& policy = config_.retry;
  const std::uint32_t attempts = probe ? 1 : policy.max_attempts;
  for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
    ++health.puts;
    if (attempt > 0) {
      ++health.put_retries;
      health.backoff_seconds += backoff_for(policy, attempt);
      if (tc.buf) {
        tc.buf->instant("put_retry", tc.level, tc.track,
                        {obs::u64("rank", rank), obs::u64("id", id),
                         obs::u64("attempt", attempt)});
      }
    }
    // One attempt of the shared write-verify-quarantine primitive (the
    // same stage the NDP agent's drain runs; docs/PERF.md).
    const PutOutcome out =
        verified_put_once(store, rank, id, data, config_.verify_writes);
    if (out.ok) return true;
    if (!out.accepted) {
      if (out.put_permanent) break;  // outage: retries are futile
      continue;                      // transient: back off, retry
    }
    ++health.verify_failures;
    if (tc.buf) {
      tc.buf->instant("verify_fail", tc.level, tc.track,
                      {obs::u64("rank", rank), obs::u64("id", id)});
    }
    if (out.quarantined) {
      ++health.quarantined;
      if (tc.buf) {
        tc.buf->instant("quarantine", tc.level, tc.track,
                        {obs::u64("rank", rank), obs::u64("id", id)});
      }
    }
    // A transient readback *error* leaves the entry in place - it may be
    // intact - but unverified counts as failed, so the loop rewrites it.
  }
  ++health.put_failures;
  if (tc.buf) {
    tc.buf->instant("put_failed", tc.level, tc.track,
                    {obs::u64("rank", rank), obs::u64("id", id)});
  }
  return false;
}

std::optional<Bytes> MultilevelManager::checked_get(const KvStore& store,
                                                    LevelHealth& health,
                                                    std::uint32_t rank,
                                                    std::uint64_t id,
                                                    TraceCtx tc) const {
  const RetryPolicy& policy = config_.retry;
  for (std::uint32_t attempt = 0; attempt < policy.max_attempts; ++attempt) {
    StoreResult<Bytes> got = store.get(rank, id);
    if (got.ok()) return std::move(*got);
    if (!got.error().transient()) return std::nullopt;
    if (attempt + 1 < policy.max_attempts) {
      ++health.read_retries;
      health.backoff_seconds += backoff_for(policy, attempt + 1);
      if (tc.buf) {
        tc.buf->instant("read_retry", tc.level, tc.track,
                        {obs::u64("rank", rank), obs::u64("id", id),
                         obs::u64("attempt", attempt + 1)});
      }
    }
  }
  return std::nullopt;
}

bool MultilevelManager::commit_local_rank(std::uint32_t rank,
                                          std::uint64_t id,
                                          const Bytes& image,
                                          LevelHealth& health,
                                          TraceCtx tc) {
  const RetryPolicy& policy = config_.retry;
  for (std::uint32_t attempt = 0; attempt < policy.max_attempts; ++attempt) {
    ++health.puts;
    if (attempt > 0) {
      ++health.put_retries;
      health.backoff_seconds += backoff_for(policy, attempt);
      if (tc.buf) {
        tc.buf->instant("put_retry", tc.level, tc.track,
                        {obs::u64("rank", rank), obs::u64("id", id),
                         obs::u64("attempt", attempt)});
      }
    }
    Bytes staged = image;
    if (config_.local_write_hook) {
      config_.local_write_hook(rank, local_write_ops_[rank]++, staged);
    }
    if (!local_[rank]->put(id, std::move(staged))) {
      // Capacity exhaustion is a configuration error, not a device fault.
      throw std::logic_error("local NVM cannot accept checkpoint " +
                             std::to_string(id));
    }
    if (!config_.verify_writes) return true;
    const auto readback = local_[rank]->get(id);
    if (readback && readback->size() == image.size() &&
        std::equal(readback->begin(), readback->end(), image.begin())) {
      return true;
    }
    ++health.verify_failures;
    local_[rank]->erase(id);
    ++health.quarantined;
    if (tc.buf) {
      tc.buf->instant("verify_fail", tc.level, tc.track,
                      {obs::u64("rank", rank), obs::u64("id", id)});
      tc.buf->instant("quarantine", tc.level, tc.track,
                      {obs::u64("rank", rank), obs::u64("id", id)});
    }
  }
  // Local write never verified: the rank simply has no local copy of this
  // id; partner/io still cover it.
  ++health.put_failures;
  if (tc.buf) {
    tc.buf->instant("put_failed", tc.level, tc.track,
                    {obs::u64("rank", rank), obs::u64("id", id)});
  }
  return false;
}

void MultilevelManager::commit_local(std::uint64_t id,
                                     const std::vector<Bytes>& images) {
  obs::TraceBuffer* rb = trace_->root();
  obs::TraceBuffer::Span phase;
  if (rb) phase = rb->span("local", "ckpt.local", 0, {obs::u64("id", id)});
  const bool was_degraded = health_.local.degraded();
  // Each rank owns its NVM device, its write-op counter and a private
  // health delta, so the write + verify fan-out is embarrassingly
  // parallel; deltas merge in rank order after the barrier.
  std::vector<LevelHealth> deltas(config_.node_count);
  std::vector<char> ok(config_.node_count, 1);
  std::vector<obs::TraceBuffer> tbs = trace_->task_buffers(config_.node_count);
  std::size_t image_bytes = 0;
  for (const Bytes& image : images) image_bytes += image.size();
  for_tasks(config_.node_count, [&](std::size_t rank) {
    TraceCtx tc;
    if (!tbs.empty()) {
      tc = {&tbs[rank], 1 + static_cast<std::uint32_t>(rank), "ckpt.local"};
    }
    obs::TraceBuffer::Span write;
    if (tc.buf) {
      write = tc.buf->span("nvm_write", "ckpt.local", tc.track,
                           {obs::u64("rank", rank),
                            obs::u64("bytes", images[rank].size())});
    }
    ok[rank] = commit_local_rank(static_cast<std::uint32_t>(rank), id,
                                 images[rank], deltas[rank], tc)
                   ? 1
                   : 0;
  }, image_bytes);
  trace_->splice(tbs);
  for (std::uint32_t rank = 0; rank < config_.node_count; ++rank) {
    merge_level(health_.local, deltas[rank]);
    if (ok[rank]) {
      data_stats_.local_bytes_written += images[rank].size();
    } else {
      health_.local.state = LevelState::kDegraded;
    }
  }
  if (rb && !was_degraded && health_.local.degraded()) {
    rb->instant("level_degraded", "ckpt.local", 0, {obs::u64("id", id)});
  }
}

void MultilevelManager::commit_partner(std::uint64_t id,
                                       const std::vector<Bytes>& images) {
  LevelHealth& health = health_.partner;
  obs::TraceBuffer* rb = trace_->root();
  obs::TraceBuffer::Span phase;
  if (rb) {
    phase = rb->span("partner", "ckpt.partner", 0,
                     {obs::u64("id", id),
                      obs::str("scheme",
                               config_.partner_scheme == PartnerScheme::kCopy
                                   ? "copy"
                                   : "xor")});
  }
  const bool was_degraded = health.degraded();
  bool level_ok = true;
  if (health.degraded()) {
    if (rb) rb->instant("probe", "ckpt.partner", 0, {obs::u64("id", id)});
    // Probe mode: single-attempt writes that stop at the first failure.
    // Stays serial - the early break has no parallel equivalent, and a
    // down level is not worth fanning out for.
    if (config_.partner_scheme == PartnerScheme::kCopy) {
      for (std::uint32_t rank = 0; rank < config_.node_count; ++rank) {
        if (!checked_put(*partner_space_[partner_of(rank)], health, rank,
                         id, images[rank], true,
                         {rb, 0, "ckpt.partner"})) {
          level_ok = false;
          break;  // still down: one failed probe is proof enough
        }
        data_stats_.partner_bytes_written += images[rank].size();
      }
    } else {
      for (std::uint32_t first = 0; first < config_.node_count;
           first += config_.xor_group_size) {
        const std::uint32_t last = std::min(
            first + config_.xor_group_size, config_.node_count);
        std::size_t width = 0;
        for (std::uint32_t r = first; r < last; ++r) {
          width = std::max(width, images[r].size());
        }
        std::vector<Bytes> padded;
        padded.reserve(last - first);
        for (std::uint32_t r = first; r < last; ++r) {
          Bytes p = images[r];
          p.resize(width, std::byte{0});
          padded.push_back(std::move(p));
        }
        const Bytes parity = xor_parity(padded);
        const std::size_t parity_size = parity.size();
        if (!checked_put(*partner_space_[parity_host(first)], health, first,
                         id, parity, true, {rb, 0, "ckpt.partner"})) {
          level_ok = false;
          break;
        }
        data_stats_.partner_bytes_written += parity_size;
      }
    }
  } else if (config_.partner_scheme == PartnerScheme::kCopy) {
    // partner_of is a bijection, so every task writes a distinct store:
    // the whole exchange fans out, health deltas merged after the barrier.
    std::vector<LevelHealth> deltas(config_.node_count);
    std::vector<char> ok(config_.node_count, 1);
    std::vector<obs::TraceBuffer> tbs =
        trace_->task_buffers(config_.node_count);
    std::size_t image_bytes = 0;
    for (const Bytes& image : images) image_bytes += image.size();
    for_tasks(config_.node_count, [&](std::size_t rank) {
      TraceCtx tc;
      if (!tbs.empty()) {
        tc = {&tbs[rank], 1 + static_cast<std::uint32_t>(rank),
              "ckpt.partner"};
      }
      obs::TraceBuffer::Span put;
      if (tc.buf) {
        put = tc.buf->span("partner_put", "ckpt.partner", tc.track,
                           {obs::u64("rank", rank),
                            obs::u64("bytes", images[rank].size())});
      }
      ok[rank] = checked_put(*partner_space_[partner_of(
                                 static_cast<std::uint32_t>(rank))],
                             deltas[rank], static_cast<std::uint32_t>(rank),
                             id, images[rank], false, tc)
                     ? 1
                     : 0;
    }, image_bytes);
    trace_->splice(tbs);
    for (std::uint32_t rank = 0; rank < config_.node_count; ++rank) {
      merge_level(health, deltas[rank]);
      if (ok[rank]) {
        data_stats_.partner_bytes_written += images[rank].size();
      } else {
        level_ok = false;
      }
    }
  } else {
    // XOR groups: one parity buffer per group, padded to the group's
    // longest image, hosted off-group. Parity hosts are distinct across
    // groups, so groups encode and write concurrently.
    const std::size_t groups =
        (config_.node_count + config_.xor_group_size - 1) /
        config_.xor_group_size;
    std::vector<LevelHealth> deltas(groups);
    std::vector<char> ok(groups, 1);
    std::vector<std::size_t> parity_bytes(groups, 0);
    std::vector<obs::TraceBuffer> tbs = trace_->task_buffers(groups);
    std::size_t image_bytes = 0;
    for (const Bytes& image : images) image_bytes += image.size();
    for_tasks(groups, [&](std::size_t g) {
      const auto first =
          static_cast<std::uint32_t>(g * config_.xor_group_size);
      const std::uint32_t last = std::min(
          first + config_.xor_group_size, config_.node_count);
      TraceCtx tc;
      if (!tbs.empty()) tc = {&tbs[g], 1 + first, "ckpt.partner"};
      std::size_t width = 0;
      for (std::uint32_t r = first; r < last; ++r) {
        width = std::max(width, images[r].size());
      }
      obs::TraceBuffer::Span encode;
      if (tc.buf) {
        encode = tc.buf->span("xor_encode", "ckpt.partner", tc.track,
                              {obs::u64("group", g),
                               obs::u64("width", width)});
      }
      std::vector<Bytes> padded;
      padded.reserve(last - first);
      for (std::uint32_t r = first; r < last; ++r) {
        Bytes p = images[r];
        p.resize(width, std::byte{0});
        padded.push_back(std::move(p));
      }
      Bytes parity = xor_parity(padded);
      parity_bytes[g] = parity.size();
      encode.close();
      obs::TraceBuffer::Span put;
      if (tc.buf) {
        put = tc.buf->span("parity_put", "ckpt.partner", tc.track,
                           {obs::u64("group", g),
                            obs::u64("bytes", parity.size())});
      }
      ok[g] = checked_put(*partner_space_[parity_host(first)], deltas[g],
                          first, id, parity, false, tc)
                  ? 1
                  : 0;
    }, image_bytes);
    trace_->splice(tbs);
    for (std::size_t g = 0; g < groups; ++g) {
      merge_level(health, deltas[g]);
      if (ok[g]) {
        data_stats_.partner_bytes_written += parity_bytes[g];
      } else {
        level_ok = false;
      }
    }
  }
  settle_level(health, level_ok);
  if (rb) {
    if (!was_degraded && health.degraded()) {
      rb->instant("level_degraded", "ckpt.partner", 0, {obs::u64("id", id)});
    } else if (was_degraded && !health.degraded()) {
      rb->instant("level_healed", "ckpt.partner", 0, {obs::u64("id", id)});
    }
  }
}

const compress::ChunkedCodec* MultilevelManager::codec_for(
    const compress::CodecChoice& choice) const {
  if (io_codec_) return &*io_codec_;  // static codec overrides adaptive
  for (const auto& codec : adaptive_codecs_) {
    if (codec->id() == choice.id && codec->level() == choice.level) {
      return codec.get();
    }
  }
  return nullptr;  // adaptive off: store raw
}

std::optional<Bytes> MultilevelManager::decode_io_stream(Bytes stored) const {
  const auto header = compress::ChunkedCodec::peek(ByteSpan(stored));
  if (!header) return stored;  // raw (null-codec) image bytes
  // Streams are self-describing: the container header names the codec
  // the writer chose (adaptive selection, or another life's static
  // config), so recovery never needs this manager's codec to match.
  try {
    if (io_codec_ && io_codec_->id() == header->id &&
        io_codec_->level() == header->level) {
      return io_codec_->decompress(ByteSpan(stored));
    }
    for (const auto& codec : adaptive_codecs_) {
      if (codec->id() == header->id && codec->level() == header->level) {
        return codec->decompress(ByteSpan(stored));
      }
    }
    // Unfamiliar (older-config) stream: a transient decoder with the
    // manager's chunk geometry. make_codec validates id/level.
    const compress::ChunkedCodec codec(header->id, header->level,
                                       config_.io_chunk_bytes, 1);
    return codec.decompress(ByteSpan(stored));
  } catch (const compress::CodecError&) {
    return std::nullopt;
  }
}

void MultilevelManager::commit_io(std::uint64_t id,
                                  const std::vector<Bytes>& images,
                                  AsyncStageWriter* writer,
                                  IoPending& pending) {
  LevelHealth& health = health_.io;
  obs::TraceBuffer* rb = trace_->root();
  obs::TraceBuffer::Span phase;
  if (rb) phase = rb->span("io", "ckpt.io", 0, {obs::u64("id", id)});
  for (std::uint32_t rank = 0; rank < config_.node_count; ++rank) {
    data_stats_.io_logical_bytes += images[rank].size();
  }
  const bool was_degraded = health.degraded();
  bool level_ok = true;
  if (io_dedup_) {
    // Dedup path: each image becomes a recipe plus the content-addressed
    // blocks no prior image already stored. Serial in rank order (one
    // shared fault-scheduled device), and the index is only updated after
    // every block and the recipe are durably in place - a failed put
    // leaves the index describing exactly what the store holds.
    const bool probe = health.degraded();
    if (probe && rb) rb->instant("probe", "ckpt.io", 0, {obs::u64("id", id)});
    for (std::uint32_t rank = 0; rank < config_.node_count; ++rank) {
      const DedupIndex::Plan plan = io_dedup_->plan(images[rank]);
      bool rank_ok = true;
      std::size_t rank_bytes = 0;
      for (const auto& [key, block] : plan.new_blocks) {
        const Bytes stored =
            io_codec_ ? io_codec_->compress(block) : block;
        if (!checked_put(*io_, health, kDedupBlockRank, key, stored, probe,
                         {rb, 0, "ckpt.io"})) {
          rank_ok = false;
          break;
        }
        rank_bytes += stored.size();
      }
      if (rank_ok) {
        // Recipes stay uncompressed: they are tiny and must be readable
        // before any codec state is known.
        rank_ok = checked_put(*io_, health, rank, id, plan.recipe, probe,
                              {rb, 0, "ckpt.io"});
      }
      if (rank_ok) {
        io_dedup_->admit(plan, rank, id);
        data_stats_.io_bytes_written += rank_bytes + plan.recipe.size();
        data_stats_.dedup_new_bytes += plan.new_bytes;
        data_stats_.dedup_dup_bytes += plan.dup_bytes;
        if (rb) {
          rb->instant("io_dedup_put", "ckpt.io", 0,
                      {obs::u64("rank", rank),
                       obs::u64("new_bytes", plan.new_bytes),
                       obs::u64("dup_bytes", plan.dup_bytes)});
        }
      } else {
        level_ok = false;
        if (probe) break;
      }
    }
    settle_level(health, level_ok);
    if (rb) {
      if (!was_degraded && health.degraded()) {
        rb->instant("level_degraded", "ckpt.io", 0, {obs::u64("id", id)});
      } else if (was_degraded && !health.degraded()) {
        rb->instant("level_healed", "ckpt.io", 0, {obs::u64("id", id)});
      }
    }
    return;
  }
  if (health.degraded()) {
    // Probe mode: serial, compress-as-you-go, stop at the first failure.
    if (rb) rb->instant("probe", "ckpt.io", 0, {obs::u64("id", id)});
    for (std::uint32_t rank = 0; rank < config_.node_count; ++rank) {
      const compress::ChunkedCodec* codec =
          io_codec_ ? &*io_codec_
                    : (config_.io_codec_adaptive
                           ? codec_for(compress::choose_codec(
                                 ByteSpan(images[rank])))
                           : nullptr);
      const Bytes packed =
          codec ? codec->compress(images[rank]) : images[rank];
      if (!checked_put(*io_, health, rank, id, packed, true,
                       {rb, 0, "ckpt.io"})) {
        level_ok = false;
        break;
      }
      data_stats_.io_bytes_written += packed.size();
    }
    settle_level(health, level_ok);
    if (rb) {
      if (!was_degraded && health.degraded()) {
        rb->instant("level_degraded", "ckpt.io", 0, {obs::u64("id", id)});
      } else if (was_degraded && !health.degraded()) {
        rb->instant("level_healed", "ckpt.io", 0, {obs::u64("id", id)});
      }
    }
    return;
  }
  // Healthy path: rank-granular pipeline. Rank r's chunks compress on the
  // task pool (intra-image parallelism: one big rank no longer serializes
  // the batch behind a flat (rank, chunk) fan-out), then its put is handed
  // to the async writer, so rank r's level write overlaps rank r+1's
  // compression - and, because finish_commit_io runs after commit_local,
  // the whole IO write train overlaps the local-NVM fan-out. The writer
  // runs jobs strictly in submission (rank) order on one thread, so the
  // shared fault-scheduled IO device sees the exact op sequence the serial
  // path issued. Each job fills only its rank's IoPending slots; health
  // deltas and trace buffers merge in rank order in finish_commit_io.
  pending.active = true;
  pending.was_degraded = was_degraded;
  pending.deltas.assign(config_.node_count, LevelHealth{});
  pending.ok.assign(config_.node_count, 0);
  pending.bytes.assign(config_.node_count, 0);
  pending.tbs = trace_->task_buffers(config_.node_count);
  for (std::uint32_t rank = 0; rank < config_.node_count; ++rank) {
    const compress::ChunkedCodec* codec = io_codec_ ? &*io_codec_ : nullptr;
    if (!codec && config_.io_codec_adaptive) {
      // Online selection: probe this rank's bytes and pick the candidate
      // codec. The stream records the choice in its container header, so
      // recovery is self-describing (decode_io_stream).
      compress::ProbeStats ps;
      const compress::CodecChoice choice =
          compress::choose_codec(ByteSpan(images[rank]), &ps);
      codec = codec_for(choice);
      if (rb) {
        rb->instant("codec_choice", "ckpt.io", 0,
                    {obs::u64("rank", rank),
                     obs::u64("codec", static_cast<std::uint64_t>(choice.id)),
                     obs::u64("accel", choice.accelerate ? 1 : 0),
                     obs::u64("entropy_millibits",
                              static_cast<std::uint64_t>(
                                  ps.entropy_bits * 1000.0)),
                     obs::u64("match_permille",
                              static_cast<std::uint64_t>(
                                  ps.match_fraction * 1000.0))});
      }
    }
    Bytes packed;
    const Bytes* borrowed = nullptr;
    if (codec) {
      const std::size_t n = codec->chunk_count(images[rank].size());
      std::vector<Bytes> chunks(n);
      obs::TraceBuffer::Span cspan;
      if (rb) {
        cspan = rb->span("io_compress", "ckpt.io", 0,
                         {obs::u64("id", id), obs::u64("rank", rank),
                          obs::u64("chunks", n)});
      }
      std::vector<obs::TraceBuffer> ctbs = trace_->task_buffers(n);
      for_tasks(
          n,
          [&](std::size_t c) {
            chunks[c] = codec->compress_chunk(images[rank], c);
            if (!ctbs.empty()) {
              ctbs[c].instant("compress_chunk", "ckpt.io", 1 + rank,
                              {obs::u64("rank", rank), obs::u64("chunk", c),
                               obs::u64("out_bytes", chunks[c].size())});
            }
          },
          images[rank].size());
      trace_->splice(ctbs);
      packed = codec->assemble(images[rank].size(), chunks, 0, n);
    } else {
      // Null codec: the job borrows the caller's image - `images` outlives
      // the flush barrier in commit() - instead of copying half a rank.
      borrowed = &images[rank];
    }
    auto job = [this, &pending, rank, id, owned = std::move(packed),
                borrowed]() {
      const Bytes& data = borrowed ? *borrowed : owned;
      TraceCtx tc;
      if (!pending.tbs.empty()) tc = {&pending.tbs[rank], 1 + rank, "ckpt.io"};
      if (tc.buf) {
        tc.buf->instant("io_put", "ckpt.io", tc.track,
                        {obs::u64("rank", rank),
                         obs::u64("bytes", data.size())});
      }
      if (checked_put(*io_, pending.deltas[rank], rank, id, data, false,
                      tc)) {
        pending.ok[rank] = 1;
        pending.bytes[rank] = data.size();
      }
    };
    if (writer) {
      writer->submit(std::move(job));
    } else {
      ++pipeline_stats_.jobs;
      ++pipeline_stats_.inline_jobs;
      job();
    }
  }
}

void MultilevelManager::finish_commit_io(std::uint64_t id, IoPending& pending) {
  if (!pending.active) return;
  pending.active = false;
  LevelHealth& health = health_.io;
  obs::TraceBuffer* rb = trace_->root();
  obs::TraceBuffer::Span phase;
  if (rb) phase = rb->span("io_settle", "ckpt.io", 0, {obs::u64("id", id)});
  trace_->splice(pending.tbs);
  bool level_ok = true;
  for (std::uint32_t rank = 0; rank < config_.node_count; ++rank) {
    merge_level(health, pending.deltas[rank]);
    if (pending.ok[rank]) {
      data_stats_.io_bytes_written += pending.bytes[rank];
    } else {
      level_ok = false;
    }
  }
  settle_level(health, level_ok);
  if (rb) {
    if (!pending.was_degraded && health.degraded()) {
      rb->instant("level_degraded", "ckpt.io", 0, {obs::u64("id", id)});
    } else if (pending.was_degraded && !health.degraded()) {
      rb->instant("level_healed", "ckpt.io", 0, {obs::u64("id", id)});
    }
  }
}

std::uint64_t MultilevelManager::commit(
    const std::vector<ByteSpan>& payloads) {
  if (payloads.size() != config_.node_count) {
    throw std::invalid_argument("one payload per rank required");
  }
  const std::uint64_t id = next_id_++;
  const bool to_partner =
      config_.partner_every > 0 && id % config_.partner_every == 0;
  const bool to_io = config_.io_every > 0 && id % config_.io_every == 0;
  // Delta commits encode against the previous committed checkpoint; a
  // full anchor is forced for the first commit and whenever the chain
  // reaches its configured length.
  const bool as_delta = delta_codec_.has_value() &&
                        config_.delta.chain_length > 0 && have_prev_ &&
                        links_since_full_ < config_.delta.chain_length;

  obs::TraceBuffer* rb = trace_->root();
  obs::TraceBuffer::Span commit_span;
  if (rb) {
    commit_span = rb->span("commit", "ckpt", 0,
                           {obs::u64("id", id),
                            obs::u64("partner", to_partner ? 1 : 0),
                            obs::u64("io", to_io ? 1 : 0),
                            obs::str("kind", as_delta ? "delta" : "full")});
  }

  // Serialize + CRC every rank's image in parallel (pure per-rank work:
  // each task owns its index's image slot, delta stats slot and a pooled
  // encoder scratch, so the fan-out is allocation-light and the stats
  // fold below runs serially in rank order).
  std::vector<Bytes> images(config_.node_count);
  std::vector<delta::DeltaStats> dstats(
      as_delta ? config_.node_count : 0);
  std::size_t payload_bytes = 0;
  for (const ByteSpan& p : payloads) payload_bytes += p.size();
  {
    obs::TraceBuffer::Span build;
    if (rb) {
      build = rb->span("image_build", "ckpt", 0,
                       {obs::u64("id", id),
                        obs::str("kind", as_delta ? "delta" : "full")});
    }
    std::vector<obs::TraceBuffer> tbs =
        trace_->task_buffers(config_.node_count);
    for_tasks(config_.node_count, [&](std::size_t rank) {
      CheckpointMeta meta;
      meta.app_id = config_.app_id;
      meta.rank = static_cast<std::uint32_t>(rank);
      meta.checkpoint_id = id;
      if (as_delta) {
        meta.kind = PayloadKind::kDelta;
        meta.base_id = id - 1;
        auto scratch = delta_scratch_.acquire();
        const Bytes stream = delta_codec_->encode(
            ByteSpan(prev_payload_[rank]), payloads[rank], *scratch,
            &dstats[rank]);
        images[rank] = CheckpointImage::build(meta, stream);
      } else {
        images[rank] = CheckpointImage::build(meta, payloads[rank]);
      }
      if (!tbs.empty()) {
        tbs[rank].instant("image", "ckpt",
                          1 + static_cast<std::uint32_t>(rank),
                          {obs::u64("rank", rank),
                           obs::u64("bytes", images[rank].size())});
      }
    }, payload_bytes);
    trace_->splice(tbs);
  }

  // Data-path accounting, serial in rank order.
  if (as_delta) {
    ++data_stats_.commits_delta;
  } else {
    ++data_stats_.commits_full;
  }
  for (std::uint32_t rank = 0; rank < config_.node_count; ++rank) {
    data_stats_.payload_bytes_in += payloads[rank].size();
    if (as_delta) {
      data_stats_.delta_input_bytes += dstats[rank].input_bytes;
      data_stats_.delta_encoded_bytes += dstats[rank].encoded_bytes;
    }
  }

  ++health_.commits;
  if (to_partner && config_.node_count > 1) commit_partner(id, images);
  // Pipelined IO (docs/PERF.md): the healthy compressed path submits its
  // per-rank puts to a double-buffered writer thread, so level writes
  // overlap both the next rank's compression (inside commit_io) and the
  // whole local-NVM fan-out (finish_commit_io runs after commit_local).
  // The writer is skipped - puts run inline, bit-identically - for the
  // dedup/degraded serial paths, when the config disables it, and inside
  // pool workers (the chaos suite runs replicates as tasks; no nested
  // thread churn).
  IoPending io_pending;
  std::optional<AsyncStageWriter> io_writer;
  if (to_io) {
    const bool pipelined = !io_dedup_ && !health_.io.degraded() &&
                           config_.io_writer_depth > 0 &&
                           !exec::TaskPool::in_worker();
    if (pipelined) io_writer.emplace(config_.io_writer_depth);
    commit_io(id, images, io_writer ? &*io_writer : nullptr, io_pending);
  }
  commit_local(id, images);
  if (io_pending.active) {
    // Commit point: no health settle, no trace splice, and no return to
    // the caller until every submitted IO write has landed.
    if (io_writer) io_writer->flush();
    finish_commit_io(id, io_pending);
  }
  if (io_writer) pipeline_stats_.merge(io_writer->stats());
  if (health_.any_degraded()) {
    ++health_.degraded_commits;
    if (rb) rb->instant("commit_degraded", "ckpt", 0, {obs::u64("id", id)});
  }

  // This commit's payloads become the next delta's reference (a copy: the
  // caller's spans die with the call). Per-rank copies are independent,
  // so the refresh fans out too.
  if (delta_codec_) {
    for_tasks(config_.node_count, [&](std::size_t rank) {
      prev_payload_[rank].assign(payloads[rank].begin(),
                                 payloads[rank].end());
    }, payload_bytes);
    have_prev_ = true;
    links_since_full_ = as_delta ? links_since_full_ + 1 : 0;
    if (rb) {
      rb->instant("chain_state", "ckpt", 0,
                  {obs::u64("id", id),
                   obs::u64("links_since_full", links_since_full_)});
    }
  }
  return id;
}

std::optional<Bytes> MultilevelManager::try_xor_rebuild(
    std::uint32_t rank, std::uint64_t id) const {
  const std::uint32_t first = group_first(rank);
  const std::uint32_t last =
      std::min(first + config_.xor_group_size, config_.node_count);
  const auto parity = checked_get(*partner_space_[parity_host(rank)],
                                  health_.partner, first, id,
                                  {trace_->root(), 0, "ckpt.partner"});
  if (!parity) return std::nullopt;

  // Survivors' local images, padded to the parity width.
  std::vector<Bytes> survivors;
  for (std::uint32_t r = first; r < last; ++r) {
    if (r == rank) continue;
    const auto span = local_[r]->get(id);
    if (!span || span->size() > parity->size()) return std::nullopt;
    Bytes padded(span->begin(), span->end());
    padded.resize(parity->size(), std::byte{0});
    survivors.push_back(std::move(padded));
  }
  Bytes rebuilt = xor_rebuild(*parity, survivors);
  // Trim the padding back to the image's true framed size.
  try {
    const std::size_t size = CheckpointImage::framed_size(rebuilt);
    if (size > rebuilt.size()) return std::nullopt;
    rebuilt.resize(size);
  } catch (const ImageError&) {
    return std::nullopt;
  }
  return rebuilt;
}

void MultilevelManager::fail_node(std::uint32_t rank) {
  local_.at(rank)->clear();
  partner_space_.at(rank)->clear();
}

bool MultilevelManager::corrupt_local(std::uint32_t rank) {
  auto& store = *local_.at(rank);
  const auto id = store.newest_id();
  if (!id) return false;
  return store.corrupt_entry(*id, *id * 131 + rank);
}

bool MultilevelManager::corrupt_partner(std::uint32_t rank) {
  if (config_.node_count < 2) return false;
  // Copy scheme: the rank's full copy on its partner node. XOR scheme:
  // the group parity on the parity host (keyed by the group's first
  // rank).
  KvStore* store = nullptr;
  std::uint32_t key = rank;
  if (config_.partner_scheme == PartnerScheme::kCopy) {
    store = partner_space_.at(partner_of(rank)).get();
  } else {
    store = partner_space_.at(parity_host(rank)).get();
    key = group_first(rank);
  }
  const auto id = store->newest_id(key);
  if (!id) return false;
  return store->corrupt_entry(key, *id, *id * 137 + rank);
}

bool MultilevelManager::corrupt_io(std::uint32_t rank) {
  const auto id = io_->newest_id(rank);
  if (!id) return false;
  return io_->corrupt_entry(rank, *id, *id * 139 + rank);
}

std::optional<CheckpointImage> MultilevelManager::fetch_local(
    std::uint32_t rank, std::uint64_t id) const {
  const auto span = local_[rank]->get(id);
  if (!span) return std::nullopt;
  return parse_image(rank, id, *span);
}

std::optional<Bytes> MultilevelManager::fetch_io_raw(
    std::uint32_t rank, std::uint64_t id) const {
  obs::TraceBuffer* rb = trace_->root();
  const auto stored =
      checked_get(*io_, health_.io, rank, id, {rb, 0, "ckpt.io"});
  if (!stored) return std::nullopt;
  if (DedupIndex::is_recipe(*stored)) {
    // Recipe: reassemble from the content-addressed block space. Checked
    // even when dedup is off in this manager's config - the store may
    // hold recipes written before a restart reconfigured it.
    return DedupIndex::assemble(
        *stored, [&](const DedupIndex::BlockRef& ref) -> std::optional<Bytes> {
          auto block = checked_get(*io_, health_.io, kDedupBlockRank,
                                   ref.key, {rb, 0, "ckpt.io"});
          if (!block) return std::nullopt;
          // Raw blocks are arbitrary app bytes, so no container sniffing
          // with a null codec; with one set, peek also tolerates blocks a
          // previous life compressed differently.
          if (!io_codec_) return block;
          return decode_io_stream(std::move(*block));
        });
  }
  // Whole streams are self-describing (container header, or raw NDCI
  // image bytes); decode_io_stream dispatches on the recorded codec.
  return decode_io_stream(std::move(*stored));
}

std::optional<CheckpointImage> MultilevelManager::try_remote_rank(
    std::uint32_t rank, std::uint64_t id, RecoveryLevel& level_out) const {
  obs::TraceBuffer* rb = trace_->root();
  if (config_.node_count > 1) {
    if (config_.partner_scheme == PartnerScheme::kCopy) {
      if (const auto copy = checked_get(*partner_space_[partner_of(rank)],
                                        health_.partner, rank, id,
                                        {rb, 0, "ckpt.partner"})) {
        if (auto image = parse_image(rank, id, *copy)) {
          level_out = RecoveryLevel::kPartner;
          return image;
        }
      }
    } else if (const auto rebuilt = try_xor_rebuild(rank, id)) {
      if (auto image = parse_image(rank, id, *rebuilt)) {
        level_out = RecoveryLevel::kPartner;
        return image;
      }
    }
  }
  if (const auto raw = fetch_io_raw(rank, id)) {
    if (auto image = parse_image(rank, id, *raw)) {
      level_out = RecoveryLevel::kIo;
      return image;
    }
  }
  return std::nullopt;
}

std::optional<Bytes> MultilevelManager::resolve_payload(
    std::uint32_t rank, std::uint64_t id, bool local_only,
    RecoveryLevel& level_out, std::size_t& links_out) const {
  level_out = RecoveryLevel::kLocal;
  links_out = 0;
  // Walk base_id links back to the full anchor, collecting delta streams
  // newest-first. Every link is fetched independently (local first, then
  // partner/io unless `local_only`), so a single damaged link only fails
  // this id - the caller then tries an older checkpoint.
  std::vector<Bytes> links;
  Bytes base;
  RecoveryLevel deepest = RecoveryLevel::kLocal;
  std::uint64_t cur = id;
  for (;;) {
    if (links.size() >= kMaxChainLinks) return std::nullopt;
    RecoveryLevel level = RecoveryLevel::kLocal;
    std::optional<CheckpointImage> image = fetch_local(rank, cur);
    if (!image && !local_only) image = try_remote_rank(rank, cur, level);
    if (!image) return std::nullopt;
    deepest = deeper(deepest, level);
    if (image->meta().kind == PayloadKind::kFull) {
      base.assign(image->payload().begin(), image->payload().end());
      break;
    }
    // A delta must reference a strictly earlier checkpoint; anything else
    // is damage (peek'd headers are CRC-covered, but stay defensive).
    const std::uint64_t base_id = image->meta().base_id;
    if (base_id == 0 || base_id >= cur) return std::nullopt;
    links.emplace_back(image->payload().begin(), image->payload().end());
    cur = base_id;
  }
  // Replay forward, oldest link first. Each stream carries its block size
  // and its reference digest, so a chain spliced against the wrong base
  // throws instead of reconstructing garbage.
  try {
    for (std::size_t i = links.size(); i-- > 0;) {
      const delta::DeltaCodec codec(
          delta::DeltaCodec::stream_block_size(links[i]));
      base = codec.decode(ByteSpan(base), ByteSpan(links[i]));
    }
  } catch (const delta::DeltaError&) {
    return std::nullopt;
  }
  level_out = deepest;
  links_out = links.size();
  return base;
}

std::optional<MultilevelManager::Recovery> MultilevelManager::recover()
    const {
  obs::TraceBuffer* rb = trace_->root();
  obs::TraceBuffer::Span recover_span;
  if (rb) recover_span = rb->span("recover", "ckpt", 0);
  for (std::uint64_t id = next_id_; id-- > 1;) {
    Recovery result;
    result.checkpoint_id = id;
    result.payloads.resize(config_.node_count);
    result.levels.resize(config_.node_count, RecoveryLevel::kLocal);

    obs::TraceBuffer::Span try_span;
    if (rb) {
      try_span = rb->span("try_checkpoint", "ckpt", 0, {obs::u64("id", id)});
    }

    // Phase 1: every rank resolves its payload - full image or whole
    // delta chain - from its own NVM in parallel. Pure local reads, no
    // fault-scheduled store operations, so the fan-out cannot perturb a
    // replay; chain stats come back through per-rank slots and fold
    // serially below.
    std::vector<std::optional<Bytes>> payload(config_.node_count);
    std::vector<std::size_t> links(config_.node_count, 0);
    std::vector<RecoveryLevel> levels(config_.node_count,
                                      RecoveryLevel::kLocal);
    std::size_t local_bytes = 0;
    for (std::uint32_t r = 0; r < config_.node_count; ++r) {
      if (const auto span = local_[r]->get(id)) local_bytes += span->size();
    }
    {
      std::vector<obs::TraceBuffer> tbs =
          trace_->task_buffers(config_.node_count);
      for_tasks(config_.node_count, [&](std::size_t rank) {
        RecoveryLevel level = RecoveryLevel::kLocal;
        payload[rank] =
            resolve_payload(static_cast<std::uint32_t>(rank), id,
                            /*local_only=*/true, level, links[rank]);
        if (!tbs.empty()) {
          tbs[rank].instant("local_probe", "ckpt.local",
                            1 + static_cast<std::uint32_t>(rank),
                            {obs::u64("rank", rank),
                             obs::u64("hit", payload[rank] ? 1 : 0),
                             obs::u64("links", links[rank])});
        }
      }, local_bytes);
      trace_->splice(tbs);
    }

    // Phase 2: ranks that missed locally fall back remote. Store reads
    // stay serial in rank order - partner/IO are shared fault-scheduled
    // devices whose op sequence is part of the deterministic replay - but
    // a directly-usable IO stream's decompress + parse (pure CPU work) is
    // handed to a decode stage, so rank r's decode overlaps rank r+1's
    // reads (the committed 8-thread recover collapse was this serialized;
    // docs/PERF.md). Delta heads, recipes and any damage fall back to the
    // fully-serial chain walk after the stage drains.
    bool ok = true;
    enum class Pend : unsigned char { kDone, kStaged, kFallback };
    std::vector<Pend> pend(config_.node_count, Pend::kDone);
    std::vector<Bytes> staged_raw(config_.node_count);
    std::vector<std::optional<Bytes>> staged_out(config_.node_count);
    std::vector<obs::TraceBuffer> dtbs =
        trace_->task_buffers(config_.node_count);
    {
      AsyncStageWriter decode_stage(
          (exec::TaskPool::in_worker() || config_.io_writer_depth == 0)
              ? 0
              : config_.io_writer_depth);
      for (std::uint32_t rank = 0; rank < config_.node_count; ++rank) {
        if (payload[rank]) continue;
        // Serial remote head fetch: partner copy / XOR rebuild first.
        std::optional<CheckpointImage> head;
        if (config_.node_count > 1) {
          if (config_.partner_scheme == PartnerScheme::kCopy) {
            if (const auto copy =
                    checked_get(*partner_space_[partner_of(rank)],
                                health_.partner, rank, id,
                                {rb, 0, "ckpt.partner"})) {
              head = parse_image(rank, id, *copy);
            }
          } else if (const auto rebuilt = try_xor_rebuild(rank, id)) {
            head = parse_image(rank, id, *rebuilt);
          }
        }
        if (head) {
          if (head->meta().kind == PayloadKind::kFull) {
            payload[rank] = Bytes(head->payload().begin(),
                                  head->payload().end());
            levels[rank] = RecoveryLevel::kPartner;
          } else {
            pend[rank] = Pend::kFallback;  // delta head: chain walk
          }
          continue;
        }
        const auto raw =
            checked_get(*io_, health_.io, rank, id, {rb, 0, "ckpt.io"});
        if (!raw) {
          // Nothing remote. A local delta head could still anchor a
          // mixed-level chain; otherwise this id is unrecoverable and -
          // exactly like the serial path - the sweep stops here.
          if (fetch_local(rank, id)) {
            pend[rank] = Pend::kFallback;
            continue;
          }
          if (rb) {
            rb->instant("rank_unrecoverable", "ckpt", 0,
                        {obs::u64("rank", rank), obs::u64("id", id)});
          }
          ok = false;
          break;
        }
        if (DedupIndex::is_recipe(*raw)) {
          pend[rank] = Pend::kFallback;  // block fetches must stay serial
          continue;
        }
        pend[rank] = Pend::kStaged;
        staged_raw[rank] = std::move(*raw);
        decode_stage.submit([this, rank, id, &staged_raw, &staged_out,
                             &dtbs]() {
          std::optional<Bytes> decoded =
              decode_io_stream(std::move(staged_raw[rank]));
          if (!dtbs.empty()) {
            dtbs[rank].instant(
                "io_decode", "ckpt.io", 1 + rank,
                {obs::u64("rank", rank),
                 obs::u64("bytes", decoded ? decoded->size() : 0)});
          }
          if (!decoded) return;
          if (const auto image = parse_image(rank, id, ByteSpan(*decoded))) {
            if (image->meta().kind == PayloadKind::kFull) {
              staged_out[rank] = Bytes(image->payload().begin(),
                                       image->payload().end());
            }
          }
        });
      }
      decode_stage.flush();
      pipeline_stats_.merge(decode_stage.stats());
    }
    trace_->splice(dtbs);
    if (ok) {
      for (std::uint32_t rank = 0; rank < config_.node_count; ++rank) {
        if (pend[rank] == Pend::kStaged) {
          if (staged_out[rank]) {
            payload[rank] = std::move(staged_out[rank]);
            levels[rank] = RecoveryLevel::kIo;
          } else {
            pend[rank] = Pend::kFallback;  // delta head or damage
          }
        }
      }
      // Whatever the fast paths could not settle walks the full serial
      // chain resolution, rank order, exactly as before.
      for (std::uint32_t rank = 0; rank < config_.node_count; ++rank) {
        if (payload[rank]) continue;
        payload[rank] = resolve_payload(rank, id, /*local_only=*/false,
                                        levels[rank], links[rank]);
        if (!payload[rank]) {
          if (rb) {
            rb->instant("rank_unrecoverable", "ckpt", 0,
                        {obs::u64("rank", rank), obs::u64("id", id)});
          }
          ok = false;
          break;
        }
      }
    }
    if (ok) {
      for (std::uint32_t rank = 0; rank < config_.node_count; ++rank) {
        data_stats_.chain_links += links[rank];
        if (links[rank] > 0) ++data_stats_.chain_replays;
        if (rb && levels[rank] != RecoveryLevel::kLocal) {
          rb->instant("rank_recovered", "ckpt", 0,
                      {obs::u64("rank", rank), obs::u64("id", id),
                       obs::str("level", to_string(levels[rank]))});
        }
        result.payloads[rank] = std::move(*payload[rank]);
        result.levels[rank] = levels[rank];
      }
    }
    if (ok) {
      if (rb) {
        rb->instant("recovered", "ckpt", 0, {obs::u64("id", id)});
      }
      return result;
    }
  }
  if (rb) rb->instant("recovery_exhausted", "ckpt", 0);
  return std::nullopt;
}

const NvmStore& MultilevelManager::local_store(std::uint32_t rank) const {
  return *local_.at(rank);
}

NvmStore& MultilevelManager::local_store(std::uint32_t rank) {
  return *local_.at(rank);
}

}  // namespace ndpcr::ckpt
