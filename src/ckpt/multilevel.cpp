#include "ckpt/multilevel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ndpcr::ckpt {
namespace {

double backoff_for(const RetryPolicy& policy, std::uint32_t attempt) {
  // Virtual delay charged before retry `attempt` (1-based).
  return policy.backoff_seconds *
         std::pow(policy.backoff_multiplier,
                  static_cast<double>(attempt - 1));
}

// Close out one level's share of a commit: a fully verified level heals a
// degraded state (counted as a repair); any abandoned write degrades it.
void settle_level(LevelHealth& health, bool level_ok) {
  const bool was_degraded = health.degraded();
  if (level_ok) {
    if (was_degraded) {
      health.state = LevelState::kHealthy;
      ++health.repairs;
    }
  } else {
    health.state = LevelState::kDegraded;
  }
  if (health.degraded()) ++health.degraded_commits;
}

}  // namespace

const char* to_string(RecoveryLevel level) {
  switch (level) {
    case RecoveryLevel::kLocal:
      return "local";
    case RecoveryLevel::kPartner:
      return "partner";
    case RecoveryLevel::kIo:
      return "io";
  }
  return "?";
}

const char* to_string(LevelState state) {
  switch (state) {
    case LevelState::kHealthy:
      return "healthy";
    case LevelState::kDegraded:
      return "degraded";
  }
  return "?";
}

MultilevelManager::MultilevelManager(const MultilevelConfig& config)
    : config_(config) {
  if (config.node_count == 0) {
    throw std::invalid_argument("node_count must be positive");
  }
  if (config.retry.max_attempts == 0) {
    throw std::invalid_argument("retry.max_attempts must be positive");
  }
  if (config.partner_scheme == PartnerScheme::kXorGroup) {
    if (config.xor_group_size == 0 ||
        (config.node_count > 1 &&
         config.xor_group_size >= config.node_count)) {
      // The parity host is the node after the group; a group spanning the
      // whole machine would host its own parity and tolerate nothing.
      throw std::invalid_argument(
          "xor_group_size must be in [1, node_count)");
    }
  }
  if (config.io_codec != compress::CodecId::kNull) {
    io_codec_ = compress::make_codec(config.io_codec, config.io_codec_level);
  }
  local_.reserve(config.node_count);
  for (std::uint32_t n = 0; n < config.node_count; ++n) {
    local_.emplace_back(config.nvm_capacity_bytes);
  }
  auto make_store = [&](StoreLevel level,
                        std::uint32_t host) -> std::unique_ptr<KvStore> {
    if (config_.store_factory) return config_.store_factory(level, host);
    return std::make_unique<KvStore>();
  };
  partner_space_.reserve(config.node_count);
  for (std::uint32_t n = 0; n < config.node_count; ++n) {
    partner_space_.push_back(make_store(StoreLevel::kPartner, n));
  }
  io_ = make_store(StoreLevel::kIo, 0);
}

std::uint32_t MultilevelManager::group_first(std::uint32_t rank) const {
  return rank - rank % config_.xor_group_size;
}

std::uint32_t MultilevelManager::parity_host(std::uint32_t rank) const {
  const std::uint32_t last = std::min(
      group_first(rank) + config_.xor_group_size - 1,
      config_.node_count - 1);
  return (last + 1) % config_.node_count;
}

bool MultilevelManager::checked_put(KvStore& store, LevelHealth& health,
                                    std::uint32_t rank, std::uint64_t id,
                                    const Bytes& data, bool probe) {
  const RetryPolicy& policy = config_.retry;
  const std::uint32_t attempts = probe ? 1 : policy.max_attempts;
  for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
    ++health.puts;
    if (attempt > 0) {
      ++health.put_retries;
      health.backoff_seconds += backoff_for(policy, attempt);
    }
    const StoreStatus status = store.put(rank, id, Bytes(data));
    if (!status.ok()) {
      if (status.error().permanent()) break;  // outage: retries are futile
      continue;                               // transient: back off, retry
    }
    if (!config_.verify_writes) return true;
    StoreResult<Bytes> readback = store.get(rank, id);
    if (readback.ok() && *readback == data) return true;
    ++health.verify_failures;
    if (readback.ok()) {
      // Torn or bit-flipped write landed under a valid key: quarantine it
      // so no reader can mistake it for the real entry, then rewrite.
      store.erase(rank, id);
      ++health.quarantined;
    }
    // A transient readback *error* leaves the entry in place - it may be
    // intact - but unverified counts as failed, so the loop rewrites it.
  }
  ++health.put_failures;
  return false;
}

std::optional<Bytes> MultilevelManager::checked_get(const KvStore& store,
                                                    LevelHealth& health,
                                                    std::uint32_t rank,
                                                    std::uint64_t id) const {
  const RetryPolicy& policy = config_.retry;
  for (std::uint32_t attempt = 0; attempt < policy.max_attempts; ++attempt) {
    StoreResult<Bytes> got = store.get(rank, id);
    if (got.ok()) return std::move(*got);
    if (!got.error().transient()) return std::nullopt;
    if (attempt + 1 < policy.max_attempts) {
      ++health.read_retries;
      health.backoff_seconds += backoff_for(policy, attempt + 1);
    }
  }
  return std::nullopt;
}

void MultilevelManager::commit_local(std::uint32_t rank, std::uint64_t id,
                                     const Bytes& image) {
  LevelHealth& health = health_.local;
  const RetryPolicy& policy = config_.retry;
  for (std::uint32_t attempt = 0; attempt < policy.max_attempts; ++attempt) {
    ++health.puts;
    if (attempt > 0) {
      ++health.put_retries;
      health.backoff_seconds += backoff_for(policy, attempt);
    }
    Bytes staged = image;
    if (config_.local_write_hook) {
      config_.local_write_hook(rank, local_write_ops_++, staged);
    }
    if (!local_[rank].put(id, std::move(staged))) {
      // Capacity exhaustion is a configuration error, not a device fault.
      throw std::logic_error("local NVM cannot accept checkpoint " +
                             std::to_string(id));
    }
    if (!config_.verify_writes) return;
    const auto readback = local_[rank].get(id);
    if (readback && readback->size() == image.size() &&
        std::equal(readback->begin(), readback->end(), image.begin())) {
      return;
    }
    ++health.verify_failures;
    local_[rank].erase(id);
    ++health.quarantined;
  }
  // Local write never verified: the rank simply has no local copy of this
  // id; partner/io still cover it.
  ++health.put_failures;
  health.state = LevelState::kDegraded;
}

void MultilevelManager::commit_partner(std::uint64_t id,
                                       const std::vector<Bytes>& images) {
  LevelHealth& health = health_.partner;
  const bool probe = health.degraded();
  bool level_ok = true;
  if (config_.partner_scheme == PartnerScheme::kCopy) {
    for (std::uint32_t rank = 0; rank < config_.node_count; ++rank) {
      if (!checked_put(*partner_space_[partner_of(rank)], health, rank, id,
                       images[rank], probe)) {
        level_ok = false;
        if (probe) break;  // still down: one failed probe is proof enough
      }
    }
  } else {
    // XOR groups: one parity buffer per group, padded to the group's
    // longest image, hosted off-group.
    for (std::uint32_t first = 0; first < config_.node_count;
         first += config_.xor_group_size) {
      const std::uint32_t last = std::min(
          first + config_.xor_group_size, config_.node_count);
      std::size_t width = 0;
      for (std::uint32_t r = first; r < last; ++r) {
        width = std::max(width, images[r].size());
      }
      std::vector<Bytes> padded;
      padded.reserve(last - first);
      for (std::uint32_t r = first; r < last; ++r) {
        Bytes p = images[r];
        p.resize(width, std::byte{0});
        padded.push_back(std::move(p));
      }
      if (!checked_put(*partner_space_[parity_host(first)], health, first,
                       id, xor_parity(padded), probe)) {
        level_ok = false;
        if (probe) break;
      }
    }
  }
  settle_level(health, level_ok);
}

void MultilevelManager::commit_io(std::uint64_t id,
                                  const std::vector<Bytes>& images) {
  LevelHealth& health = health_.io;
  const bool probe = health.degraded();
  bool level_ok = true;
  for (std::uint32_t rank = 0; rank < config_.node_count; ++rank) {
    const Bytes packed =
        io_codec_ ? io_codec_->compress(images[rank]) : images[rank];
    if (!checked_put(*io_, health, rank, id, packed, probe)) {
      level_ok = false;
      if (probe) break;
    }
  }
  settle_level(health, level_ok);
}

std::uint64_t MultilevelManager::commit(
    const std::vector<ByteSpan>& payloads) {
  if (payloads.size() != config_.node_count) {
    throw std::invalid_argument("one payload per rank required");
  }
  const std::uint64_t id = next_id_++;
  const bool to_partner =
      config_.partner_every > 0 && id % config_.partner_every == 0;
  const bool to_io = config_.io_every > 0 && id % config_.io_every == 0;

  std::vector<Bytes> images(config_.node_count);
  for (std::uint32_t rank = 0; rank < config_.node_count; ++rank) {
    CheckpointMeta meta;
    meta.app_id = config_.app_id;
    meta.rank = rank;
    meta.checkpoint_id = id;
    images[rank] = CheckpointImage::build(meta, payloads[rank]);
  }

  ++health_.commits;
  if (to_partner && config_.node_count > 1) commit_partner(id, images);
  if (to_io) commit_io(id, images);
  for (std::uint32_t rank = 0; rank < config_.node_count; ++rank) {
    commit_local(rank, id, images[rank]);
  }
  if (health_.any_degraded()) ++health_.degraded_commits;
  return id;
}

std::optional<Bytes> MultilevelManager::try_xor_rebuild(
    std::uint32_t rank, std::uint64_t id) const {
  const std::uint32_t first = group_first(rank);
  const std::uint32_t last =
      std::min(first + config_.xor_group_size, config_.node_count);
  const auto parity = checked_get(*partner_space_[parity_host(rank)],
                                  health_.partner, first, id);
  if (!parity) return std::nullopt;

  // Survivors' local images, padded to the parity width.
  std::vector<Bytes> survivors;
  for (std::uint32_t r = first; r < last; ++r) {
    if (r == rank) continue;
    const auto span = local_[r].get(id);
    if (!span || span->size() > parity->size()) return std::nullopt;
    Bytes padded(span->begin(), span->end());
    padded.resize(parity->size(), std::byte{0});
    survivors.push_back(std::move(padded));
  }
  Bytes rebuilt = xor_rebuild(*parity, survivors);
  // Trim the padding back to the image's true framed size.
  try {
    const std::size_t size = CheckpointImage::framed_size(rebuilt);
    if (size > rebuilt.size()) return std::nullopt;
    rebuilt.resize(size);
  } catch (const ImageError&) {
    return std::nullopt;
  }
  return rebuilt;
}

void MultilevelManager::fail_node(std::uint32_t rank) {
  local_.at(rank).clear();
  partner_space_.at(rank)->clear();
}

bool MultilevelManager::corrupt_local(std::uint32_t rank) {
  auto& store = local_.at(rank);
  const auto id = store.newest_id();
  if (!id) return false;
  return store.corrupt_entry(*id, *id * 131 + rank);
}

bool MultilevelManager::corrupt_partner(std::uint32_t rank) {
  if (config_.node_count < 2) return false;
  // Copy scheme: the rank's full copy on its partner node. XOR scheme:
  // the group parity on the parity host (keyed by the group's first
  // rank).
  KvStore* store = nullptr;
  std::uint32_t key = rank;
  if (config_.partner_scheme == PartnerScheme::kCopy) {
    store = partner_space_.at(partner_of(rank)).get();
  } else {
    store = partner_space_.at(parity_host(rank)).get();
    key = group_first(rank);
  }
  const auto id = store->newest_id(key);
  if (!id) return false;
  return store->corrupt_entry(key, *id, *id * 137 + rank);
}

bool MultilevelManager::corrupt_io(std::uint32_t rank) {
  const auto id = io_->newest_id(rank);
  if (!id) return false;
  return io_->corrupt_entry(rank, *id, *id * 139 + rank);
}

std::optional<Bytes> MultilevelManager::try_recover_rank(
    std::uint32_t rank, std::uint64_t id, RecoveryLevel& level_out) const {
  auto validate = [&](ByteSpan raw) -> std::optional<Bytes> {
    try {
      CheckpointImage image = CheckpointImage::parse(raw);
      if (image.meta().rank != rank || image.meta().checkpoint_id != id) {
        return std::nullopt;
      }
      return Bytes(image.payload().begin(), image.payload().end());
    } catch (const ImageError&) {
      return std::nullopt;
    }
  };

  if (const auto span = local_[rank].get(id)) {
    if (auto payload = validate(*span)) {
      level_out = RecoveryLevel::kLocal;
      return payload;
    }
  }
  if (config_.node_count > 1) {
    if (config_.partner_scheme == PartnerScheme::kCopy) {
      if (const auto copy = checked_get(*partner_space_[partner_of(rank)],
                                        health_.partner, rank, id)) {
        if (auto payload = validate(*copy)) {
          level_out = RecoveryLevel::kPartner;
          return payload;
        }
      }
    } else if (auto rebuilt = try_xor_rebuild(rank, id)) {
      if (auto payload = validate(*rebuilt)) {
        level_out = RecoveryLevel::kPartner;
        return payload;
      }
    }
  }
  if (const auto stored = checked_get(*io_, health_.io, rank, id)) {
    std::optional<Bytes> raw;
    if (io_codec_) {
      try {
        raw = io_codec_->decompress(*stored);
      } catch (const compress::CodecError&) {
        raw = std::nullopt;
      }
    } else {
      raw = *stored;
    }
    if (raw) {
      if (auto payload = validate(*raw)) {
        level_out = RecoveryLevel::kIo;
        return payload;
      }
    }
  }
  return std::nullopt;
}

std::optional<MultilevelManager::Recovery> MultilevelManager::recover()
    const {
  for (std::uint64_t id = next_id_; id-- > 1;) {
    Recovery result;
    result.checkpoint_id = id;
    result.payloads.resize(config_.node_count);
    result.levels.resize(config_.node_count, RecoveryLevel::kLocal);
    bool ok = true;
    for (std::uint32_t rank = 0; rank < config_.node_count && ok; ++rank) {
      RecoveryLevel level = RecoveryLevel::kLocal;
      auto payload = try_recover_rank(rank, id, level);
      if (!payload) {
        ok = false;
        break;
      }
      result.payloads[rank] = std::move(*payload);
      result.levels[rank] = level;
    }
    if (ok) return result;
  }
  return std::nullopt;
}

const NvmStore& MultilevelManager::local_store(std::uint32_t rank) const {
  return local_.at(rank);
}

NvmStore& MultilevelManager::local_store(std::uint32_t rank) {
  return local_.at(rank);
}

}  // namespace ndpcr::ckpt
