#include "ckpt/multilevel.hpp"

#include <algorithm>
#include <stdexcept>

namespace ndpcr::ckpt {

const char* to_string(RecoveryLevel level) {
  switch (level) {
    case RecoveryLevel::kLocal:
      return "local";
    case RecoveryLevel::kPartner:
      return "partner";
    case RecoveryLevel::kIo:
      return "io";
  }
  return "?";
}

MultilevelManager::MultilevelManager(const MultilevelConfig& config)
    : config_(config) {
  if (config.node_count == 0) {
    throw std::invalid_argument("node_count must be positive");
  }
  if (config.partner_scheme == PartnerScheme::kXorGroup) {
    if (config.xor_group_size == 0 ||
        (config.node_count > 1 &&
         config.xor_group_size >= config.node_count)) {
      // The parity host is the node after the group; a group spanning the
      // whole machine would host its own parity and tolerate nothing.
      throw std::invalid_argument(
          "xor_group_size must be in [1, node_count)");
    }
  }
  if (config.io_codec != compress::CodecId::kNull) {
    io_codec_ = compress::make_codec(config.io_codec, config.io_codec_level);
  }
  local_.reserve(config.node_count);
  for (std::uint32_t n = 0; n < config.node_count; ++n) {
    local_.emplace_back(config.nvm_capacity_bytes);
  }
  partner_space_.resize(config.node_count);
}

std::uint32_t MultilevelManager::group_first(std::uint32_t rank) const {
  return rank - rank % config_.xor_group_size;
}

std::uint32_t MultilevelManager::parity_host(std::uint32_t rank) const {
  const std::uint32_t last = std::min(
      group_first(rank) + config_.xor_group_size - 1,
      config_.node_count - 1);
  return (last + 1) % config_.node_count;
}

std::uint64_t MultilevelManager::commit(
    const std::vector<ByteSpan>& payloads) {
  if (payloads.size() != config_.node_count) {
    throw std::invalid_argument("one payload per rank required");
  }
  const std::uint64_t id = next_id_++;
  const bool to_partner =
      config_.partner_every > 0 && id % config_.partner_every == 0;
  const bool to_io = config_.io_every > 0 && id % config_.io_every == 0;

  std::vector<Bytes> images(config_.node_count);
  for (std::uint32_t rank = 0; rank < config_.node_count; ++rank) {
    CheckpointMeta meta;
    meta.app_id = config_.app_id;
    meta.rank = rank;
    meta.checkpoint_id = id;
    images[rank] = CheckpointImage::build(meta, payloads[rank]);
  }

  if (to_partner && config_.node_count > 1) {
    if (config_.partner_scheme == PartnerScheme::kCopy) {
      for (std::uint32_t rank = 0; rank < config_.node_count; ++rank) {
        partner_space_[partner_of(rank)].put(rank, id, images[rank]);
      }
    } else {
      // XOR groups: one parity buffer per group, padded to the group's
      // longest image, hosted off-group.
      for (std::uint32_t first = 0; first < config_.node_count;
           first += config_.xor_group_size) {
        const std::uint32_t last = std::min(
            first + config_.xor_group_size, config_.node_count);
        std::size_t width = 0;
        for (std::uint32_t r = first; r < last; ++r) {
          width = std::max(width, images[r].size());
        }
        std::vector<Bytes> padded;
        padded.reserve(last - first);
        for (std::uint32_t r = first; r < last; ++r) {
          Bytes p = images[r];
          p.resize(width, std::byte{0});
          padded.push_back(std::move(p));
        }
        partner_space_[parity_host(first)].put(first, id,
                                               xor_parity(padded));
      }
    }
  }

  for (std::uint32_t rank = 0; rank < config_.node_count; ++rank) {
    if (to_io) {
      if (io_codec_) {
        io_.put(rank, id, io_codec_->compress(images[rank]));
      } else {
        io_.put(rank, id, images[rank]);
      }
    }
    if (!local_[rank].put(id, std::move(images[rank]))) {
      throw std::logic_error("local NVM cannot accept checkpoint " +
                             std::to_string(id));
    }
  }
  return id;
}

std::optional<Bytes> MultilevelManager::try_xor_rebuild(
    std::uint32_t rank, std::uint64_t id) const {
  const std::uint32_t first = group_first(rank);
  const std::uint32_t last =
      std::min(first + config_.xor_group_size, config_.node_count);
  const auto parity =
      partner_space_[parity_host(rank)].get(first, id);
  if (!parity) return std::nullopt;

  // Survivors' local images, padded to the parity width.
  std::vector<Bytes> survivors;
  for (std::uint32_t r = first; r < last; ++r) {
    if (r == rank) continue;
    const auto span = local_[r].get(id);
    if (!span || span->size() > parity->size()) return std::nullopt;
    Bytes padded(span->begin(), span->end());
    padded.resize(parity->size(), std::byte{0});
    survivors.push_back(std::move(padded));
  }
  Bytes rebuilt = xor_rebuild(Bytes(parity->begin(), parity->end()),
                              survivors);
  // Trim the padding back to the image's true framed size.
  try {
    const std::size_t size = CheckpointImage::framed_size(rebuilt);
    if (size > rebuilt.size()) return std::nullopt;
    rebuilt.resize(size);
  } catch (const ImageError&) {
    return std::nullopt;
  }
  return rebuilt;
}

void MultilevelManager::fail_node(std::uint32_t rank) {
  local_.at(rank).clear();
  partner_space_.at(rank).clear();
}

void MultilevelManager::corrupt_local(std::uint32_t rank) {
  auto& store = local_.at(rank);
  const auto id = store.newest_id();
  if (!id) return;
  const auto span = store.get(*id);
  // Flip a payload byte in place (const_cast is confined to this fault
  // injector; NvmStore hands out read-only views by design).
  auto* data = const_cast<std::byte*>(span->data());
  data[span->size() - 1] ^= std::byte{0x01};
}

std::optional<Bytes> MultilevelManager::try_recover_rank(
    std::uint32_t rank, std::uint64_t id, RecoveryLevel& level_out) const {
  auto validate = [&](ByteSpan raw) -> std::optional<Bytes> {
    try {
      CheckpointImage image = CheckpointImage::parse(raw);
      if (image.meta().rank != rank || image.meta().checkpoint_id != id) {
        return std::nullopt;
      }
      return Bytes(image.payload().begin(), image.payload().end());
    } catch (const ImageError&) {
      return std::nullopt;
    }
  };

  if (const auto span = local_[rank].get(id)) {
    if (auto payload = validate(*span)) {
      level_out = RecoveryLevel::kLocal;
      return payload;
    }
  }
  if (config_.node_count > 1) {
    if (config_.partner_scheme == PartnerScheme::kCopy) {
      if (const auto span = partner_space_[partner_of(rank)].get(rank, id)) {
        if (auto payload = validate(*span)) {
          level_out = RecoveryLevel::kPartner;
          return payload;
        }
      }
    } else if (auto rebuilt = try_xor_rebuild(rank, id)) {
      if (auto payload = validate(*rebuilt)) {
        level_out = RecoveryLevel::kPartner;
        return payload;
      }
    }
  }
  if (const auto span = io_.get(rank, id)) {
    std::optional<Bytes> raw;
    if (io_codec_) {
      try {
        raw = io_codec_->decompress(*span);
      } catch (const compress::CodecError&) {
        raw = std::nullopt;
      }
    } else {
      raw = Bytes(span->begin(), span->end());
    }
    if (raw) {
      if (auto payload = validate(*raw)) {
        level_out = RecoveryLevel::kIo;
        return payload;
      }
    }
  }
  return std::nullopt;
}

std::optional<MultilevelManager::Recovery> MultilevelManager::recover()
    const {
  for (std::uint64_t id = next_id_; id-- > 1;) {
    Recovery result;
    result.checkpoint_id = id;
    result.payloads.resize(config_.node_count);
    result.levels.resize(config_.node_count, RecoveryLevel::kLocal);
    bool ok = true;
    for (std::uint32_t rank = 0; rank < config_.node_count && ok; ++rank) {
      RecoveryLevel level = RecoveryLevel::kLocal;
      auto payload = try_recover_rank(rank, id, level);
      if (!payload) {
        ok = false;
        break;
      }
      result.payloads[rank] = std::move(*payload);
      result.levels[rank] = level;
    }
    if (ok) return result;
  }
  return std::nullopt;
}

const NvmStore& MultilevelManager::local_store(std::uint32_t rank) const {
  return local_.at(rank);
}

NvmStore& MultilevelManager::local_store(std::uint32_t rank) {
  return local_.at(rank);
}

}  // namespace ndpcr::ckpt
