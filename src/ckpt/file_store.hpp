#pragma once

// Durable checkpoint storage on a real filesystem, in the BLCR layout the
// paper describes (section 4.2.1: per-process context files in a folder,
// tracked by metadata). The directory structure is
//
//   <root>/rank-<r>/ckpt-<id>.ndcr
//
// Files are written through a temporary name and renamed into place, so a
// crash mid-write never leaves a truncated file under a valid name.

#include <cstdint>
#include <filesystem>
#include <optional>
#include <vector>

#include "common/bytes.hpp"

namespace ndpcr::ckpt {

class FileStore {
 public:
  // Creates the root directory (and parents) if missing. Throws
  // std::filesystem::filesystem_error on IO failure.
  explicit FileStore(std::filesystem::path root);

  void put(std::uint32_t rank, std::uint64_t checkpoint_id, ByteSpan data);
  [[nodiscard]] std::optional<Bytes> get(std::uint32_t rank,
                                         std::uint64_t checkpoint_id) const;
  [[nodiscard]] bool contains(std::uint32_t rank,
                              std::uint64_t checkpoint_id) const;
  [[nodiscard]] std::optional<std::uint64_t> newest_id(
      std::uint32_t rank) const;
  // Checkpoint ids present for a rank, ascending.
  [[nodiscard]] std::vector<std::uint64_t> list(std::uint32_t rank) const;
  void erase(std::uint32_t rank, std::uint64_t checkpoint_id);

  [[nodiscard]] const std::filesystem::path& root() const { return root_; }

 private:
  [[nodiscard]] std::filesystem::path rank_dir(std::uint32_t rank) const;
  [[nodiscard]] std::filesystem::path file_path(
      std::uint32_t rank, std::uint64_t checkpoint_id) const;

  std::filesystem::path root_;
};

}  // namespace ndpcr::ckpt
