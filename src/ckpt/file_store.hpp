#pragma once

// Durable checkpoint storage on a real filesystem, in the BLCR layout the
// paper describes (section 4.2.1: per-process context files in a folder,
// tracked by metadata). The directory structure is
//
//   <root>/rank-<r>/ckpt-<id>.ndcr
//
// Durability: data is written to a temporary name, fsync'd, renamed into
// place, and the parent directory is fsync'd - so a crash at any point
// leaves either the old state or the complete new file under the valid
// name, never a torn one.
//
// Methods are virtual so the fault-injection layer (faults::FaultyFileStore)
// can decorate the same interface with seeded IO errors.

#include <cstdint>
#include <filesystem>
#include <optional>
#include <vector>

#include "ckpt/store_error.hpp"
#include "common/bytes.hpp"

namespace ndpcr::ckpt {

class FileStore {
 public:
  // Creates the root directory (and parents) if missing. Throws
  // std::filesystem::filesystem_error on IO failure.
  explicit FileStore(std::filesystem::path root);
  virtual ~FileStore() = default;

  FileStore(const FileStore&) = delete;
  FileStore& operator=(const FileStore&) = delete;

  // Atomically replace the checkpoint file. IO failures are reported (not
  // thrown), classified transient (EINTR/EAGAIN/EIO) or permanent.
  virtual StoreStatus put(std::uint32_t rank, std::uint64_t checkpoint_id,
                          ByteSpan data);
  [[nodiscard]] virtual StoreResult<Bytes> get(
      std::uint32_t rank, std::uint64_t checkpoint_id) const;
  [[nodiscard]] virtual bool contains(std::uint32_t rank,
                                      std::uint64_t checkpoint_id) const;
  [[nodiscard]] virtual std::optional<std::uint64_t> newest_id(
      std::uint32_t rank) const;
  // Checkpoint ids present for a rank, ascending. Stray files that do not
  // match ckpt-<digits>.ndcr exactly are skipped, never an error.
  [[nodiscard]] virtual std::vector<std::uint64_t> list(
      std::uint32_t rank) const;
  virtual void erase(std::uint32_t rank, std::uint64_t checkpoint_id);

  [[nodiscard]] const std::filesystem::path& root() const { return root_; }

 private:
  [[nodiscard]] std::filesystem::path rank_dir(std::uint32_t rank) const;
  [[nodiscard]] std::filesystem::path file_path(
      std::uint32_t rank, std::uint64_t checkpoint_id) const;

  std::filesystem::path root_;
};

}  // namespace ndpcr::ckpt
