#pragma once

// Durable checkpoint storage on a real filesystem, in the BLCR layout the
// paper describes (section 4.2.1: per-process context files in a folder,
// tracked by metadata). The directory structure is
//
//   <root>/rank-<r>/ckpt-<id>.ndcr
//   <root>/rank-<r>/latest          (latest-pointer metadata)
//
// Durability: data is written to a temporary name, fsync'd, renamed into
// place, and the parent directory is fsync'd - so a crash at any point
// leaves either the old state or the complete new file under the valid
// name, never a torn one.
//
// The latest pointer is the checkpoint's commit point: it is updated with
// the same write-temp + fsync + rename discipline *after* the data file
// is durable, names the newest published checkpoint id, and carries a
// CRC. A crash between the data rename and the pointer update leaves the
// previous pointer in place - the new file exists but is not yet
// published, and newest_id() keeps answering with the previous
// checkpoint. A torn or corrupt pointer (a non-atomic foreign writer) is
// detected by size/magic/CRC validation and newest_id() falls back to
// scanning the directory, so the pointer can lose freshness but never
// correctness (docs/EQUIVALENCE.md).
//
// Methods are virtual so the fault-injection layer (faults::FaultyFileStore)
// can decorate the same interface with seeded IO errors. The base put()
// additionally consults an optional MutationGate (crash-point injection;
// the data write and the pointer update are distinct crash sites).

#include <cstdint>
#include <filesystem>
#include <optional>
#include <utility>
#include <vector>

#include "ckpt/mutation_gate.hpp"
#include "ckpt/store_error.hpp"
#include "common/bytes.hpp"

namespace ndpcr::ckpt {

class FileStore {
 public:
  // Creates the root directory (and parents) if missing. Throws
  // std::filesystem::filesystem_error on IO failure.
  explicit FileStore(std::filesystem::path root);
  virtual ~FileStore() = default;

  FileStore(const FileStore&) = delete;
  FileStore& operator=(const FileStore&) = delete;

  // Atomically replace the checkpoint file. IO failures are reported (not
  // thrown), classified transient (EINTR/EAGAIN/EIO) or permanent.
  virtual StoreStatus put(std::uint32_t rank, std::uint64_t checkpoint_id,
                          ByteSpan data);
  [[nodiscard]] virtual StoreResult<Bytes> get(
      std::uint32_t rank, std::uint64_t checkpoint_id) const;
  [[nodiscard]] virtual bool contains(std::uint32_t rank,
                                      std::uint64_t checkpoint_id) const;
  [[nodiscard]] virtual std::optional<std::uint64_t> newest_id(
      std::uint32_t rank) const;
  // Checkpoint ids present for a rank, ascending. Stray files that do not
  // match ckpt-<digits>.ndcr exactly are skipped, never an error.
  [[nodiscard]] virtual std::vector<std::uint64_t> list(
      std::uint32_t rank) const;
  virtual void erase(std::uint32_t rank, std::uint64_t checkpoint_id);

  [[nodiscard]] const std::filesystem::path& root() const { return root_; }

  // The validated latest-pointer value, if the pointer file exists, parses
  // (size/magic/CRC) and references a checkpoint file that is present.
  // nullopt means torn/stale/absent - callers fall back to list().
  [[nodiscard]] std::optional<std::uint64_t> latest_pointer(
      std::uint32_t rank) const;

  // Crash-point injection hook (docs/EQUIVALENCE.md).
  void set_mutation_gate(MutationGate gate) { gate_ = std::move(gate); }

 private:
  [[nodiscard]] std::filesystem::path rank_dir(std::uint32_t rank) const;
  [[nodiscard]] std::filesystem::path file_path(
      std::uint32_t rank, std::uint64_t checkpoint_id) const;
  [[nodiscard]] std::filesystem::path latest_path(std::uint32_t rank) const;
  // Atomically publish `checkpoint_id` as the rank's latest (write-temp +
  // fsync + rename). Consults the gate under MutationOp::kPointer.
  void write_latest(std::uint32_t rank, std::uint64_t checkpoint_id);
  // Re-derive the pointer from the directory after an erase.
  void refresh_latest(std::uint32_t rank);

  std::filesystem::path root_;
  MutationGate gate_;
};

}  // namespace ndpcr::ckpt
