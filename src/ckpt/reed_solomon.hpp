#pragma once

// Systematic Reed-Solomon erasure coding over GF(2^8) for partner-level
// checkpoint redundancy. The paper's partner level stores full copies
// (tolerates 1 loss at 100% overhead); SCR-class systems use XOR groups
// (1 loss at 1/k overhead) or Reed-Solomon (m losses at m/k overhead).
// This module provides the general scheme: k data shards + m parity
// shards, any k of the k+m suffice to rebuild.
//
// Construction: a Vandermonde matrix over GF(256) reduced to systematic
// form (identity on top), as in classic RAID-6/Backblaze-style coders.
// Decoding inverts the submatrix of surviving rows.

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"

namespace ndpcr::ckpt {

// GF(2^8) arithmetic with the 0x11D polynomial (table driven).
namespace gf256 {
std::uint8_t mul(std::uint8_t a, std::uint8_t b);
std::uint8_t inv(std::uint8_t a);  // a != 0
inline std::uint8_t add(std::uint8_t a, std::uint8_t b) { return a ^ b; }
}  // namespace gf256

class ReedSolomon {
 public:
  // data_shards >= 1, parity_shards >= 1, data + parity <= 255.
  ReedSolomon(int data_shards, int parity_shards);

  [[nodiscard]] int data_shards() const { return k_; }
  [[nodiscard]] int parity_shards() const { return m_; }

  // Compute the parity shards for equal-length data shards.
  [[nodiscard]] std::vector<Bytes> encode(
      const std::vector<Bytes>& data) const;

  // Rebuild the data shards from any k survivors. `shards` has k+m
  // entries (data first, then parity); nullopt marks a loss. Throws
  // std::invalid_argument if fewer than k survive or lengths mismatch.
  [[nodiscard]] std::vector<Bytes> reconstruct(
      const std::vector<std::optional<Bytes>>& shards) const;

 private:
  using Matrix = std::vector<std::vector<std::uint8_t>>;

  static Matrix invert(Matrix m);  // Gaussian elimination in GF(256)

  int k_;
  int m_;
  Matrix generator_;  // (k+m) x k, systematic (top k rows = identity)
};

}  // namespace ndpcr::ckpt
