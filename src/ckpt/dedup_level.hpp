#pragma once

// Content-defined block dedup for the IO level (docs/DELTA.md). Instead
// of one opaque blob per (rank, checkpoint), the manager stores each
// image as a small *recipe* plus content-addressed blocks shared across
// ranks and commits: halo regions, constant tables and slowly-varying
// state are shipped to the parallel file system once, not node_count
// times per checkpoint.
//
// Chunking is content-defined (delta::cdc_boundaries), so an insertion
// early in an image shifts boundaries with the data and downstream blocks
// still dedup. Block identity is (content hash, size, CRC32) - the index
// never stores bytes, the device does - with linear key probing on hash
// collisions. The index is bookkeeping only: planning which blocks a new
// image needs is separated from admitting them (refcounts move only after
// the device writes verified), so a failed put never corrupts the index.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "delta/delta.hpp"

namespace ndpcr::ckpt {

// Reserved store rank for dedup block entries: blocks live in the same
// (possibly fault-scheduled) KvStore as the recipes, keyed (kDedupBlockRank,
// block key), so chaos schedules exercise them like any other IO write.
inline constexpr std::uint32_t kDedupBlockRank = 0xFFFFFFFFu;

class DedupIndex {
 public:
  explicit DedupIndex(delta::CdcParams cdc);

  struct BlockRef {
    std::uint64_t key = 0;   // content hash, probed past collisions
    std::uint32_t size = 0;  // raw block bytes
    std::uint32_t crc = 0;   // CRC32 of the raw block bytes
  };

  // What storing one image through the index means: the recipe bytes to
  // put under (rank, id), and the blocks the device does not hold yet.
  struct Plan {
    Bytes recipe;
    std::vector<BlockRef> refs;  // every block of the image, in order
    std::vector<std::pair<std::uint64_t, Bytes>> new_blocks;
    std::size_t raw_bytes = 0;
    std::size_t new_bytes = 0;  // bytes in new_blocks (pre-compression)
    std::size_t dup_bytes = 0;  // bytes resolved against existing blocks
  };

  // Chunk `image` and resolve each block against the index. Pure lookup:
  // the index is not modified until admit().
  [[nodiscard]] Plan plan(ByteSpan image) const;

  // Commit a plan after its device writes verified: refcount existing
  // blocks, insert the new ones, record the recipe's key list.
  void admit(const Plan& plan, std::uint32_t rank, std::uint64_t id);

  // Drop an image's references; returns the keys whose refcount reached
  // zero (the caller erases those device entries).
  std::vector<std::uint64_t> release(std::uint32_t rank, std::uint64_t id);

  // Rebuild one image's bookkeeping from a recipe that survived on the
  // device (MultilevelConfig::adopt_existing): refcount its blocks and
  // record it under (rank, id), exactly as admit() would have. Idempotent
  // under replay - re-restoring (or re-admitting) the same (rank, id)
  // releases the previous recording first, so refcounts are never
  // double-charged.
  void restore(const std::vector<BlockRef>& refs, std::size_t image_size,
               std::uint32_t rank, std::uint64_t id);

  // Decode a recipe's block list + image size. nullopt when the bytes are
  // not a structurally valid recipe.
  struct ParsedRecipe {
    std::size_t image_size = 0;
    std::vector<BlockRef> refs;
  };
  [[nodiscard]] static std::optional<ParsedRecipe> parse_recipe(
      ByteSpan recipe);

  [[nodiscard]] std::size_t unique_blocks() const { return blocks_.size(); }
  [[nodiscard]] std::size_t stored_bytes() const { return stored_bytes_; }
  [[nodiscard]] std::size_t logical_bytes() const { return logical_bytes_; }

  // Parse a recipe and reassemble the image it describes. `fetch` returns
  // the raw (decompressed) block bytes for a key, or nullopt when the
  // device lost it. Returns nullopt on any missing block, size or CRC
  // mismatch - an unreadable image, never a silently wrong one.
  [[nodiscard]] static std::optional<Bytes> assemble(
      ByteSpan recipe,
      const std::function<std::optional<Bytes>(const BlockRef&)>& fetch);

  // Whether stored bytes are a dedup recipe (vs a plain framed image).
  [[nodiscard]] static bool is_recipe(ByteSpan raw);

 private:
  struct Entry {
    std::uint32_t size = 0;
    std::uint32_t crc = 0;
    std::size_t refs = 0;
  };

  // Shared by admit() and restore(): charge refcounts for `refs` and
  // record the recipe, replacing (and releasing) any previous recording
  // under the same (rank, id).
  void admit_refs(const std::vector<BlockRef>& refs, std::size_t image_size,
                  std::uint32_t rank, std::uint64_t id);

  delta::CdcParams cdc_;
  std::size_t stored_bytes_ = 0;   // unique block bytes admitted
  std::size_t logical_bytes_ = 0;  // image bytes represented
  std::map<std::uint64_t, Entry> blocks_;
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::vector<BlockRef>>
      recipes_;
};

}  // namespace ndpcr::ckpt
