#include "ckpt/file_store.hpp"

#include <algorithm>
#include <fstream>
#include <system_error>

namespace ndpcr::ckpt {
namespace {

constexpr const char* kPrefix = "ckpt-";
constexpr const char* kSuffix = ".ndcr";

}  // namespace

FileStore::FileStore(std::filesystem::path root) : root_(std::move(root)) {
  std::filesystem::create_directories(root_);
}

std::filesystem::path FileStore::rank_dir(std::uint32_t rank) const {
  return root_ / ("rank-" + std::to_string(rank));
}

std::filesystem::path FileStore::file_path(
    std::uint32_t rank, std::uint64_t checkpoint_id) const {
  return rank_dir(rank) /
         (kPrefix + std::to_string(checkpoint_id) + kSuffix);
}

void FileStore::put(std::uint32_t rank, std::uint64_t checkpoint_id,
                    ByteSpan data) {
  const auto dir = rank_dir(rank);
  std::filesystem::create_directories(dir);
  const auto target = file_path(rank, checkpoint_id);
  const auto tmp = target.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::filesystem::filesystem_error(
          "cannot open checkpoint file for writing", tmp,
          std::make_error_code(std::errc::io_error));
    }
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    if (!out) {
      throw std::filesystem::filesystem_error(
          "short write to checkpoint file", tmp,
          std::make_error_code(std::errc::io_error));
    }
  }
  std::filesystem::rename(tmp, target);
}

std::optional<Bytes> FileStore::get(std::uint32_t rank,
                                    std::uint64_t checkpoint_id) const {
  const auto path = file_path(rank, checkpoint_id);
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) return std::nullopt;
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  Bytes data(size);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(size));
  if (static_cast<std::uint64_t>(in.gcount()) != size) return std::nullopt;
  return data;
}

bool FileStore::contains(std::uint32_t rank,
                         std::uint64_t checkpoint_id) const {
  std::error_code ec;
  return std::filesystem::exists(file_path(rank, checkpoint_id), ec) && !ec;
}

std::vector<std::uint64_t> FileStore::list(std::uint32_t rank) const {
  std::vector<std::uint64_t> ids;
  std::error_code ec;
  std::filesystem::directory_iterator it(rank_dir(rank), ec);
  if (ec) return ids;
  for (const auto& entry : it) {
    const auto name = entry.path().filename().string();
    if (name.rfind(kPrefix, 0) != 0 || !name.ends_with(kSuffix)) continue;
    const auto digits = name.substr(
        std::string(kPrefix).size(),
        name.size() - std::string(kPrefix).size() -
            std::string(kSuffix).size());
    try {
      ids.push_back(std::stoull(digits));
    } catch (const std::exception&) {
      // Foreign file in the directory: ignore.
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::optional<std::uint64_t> FileStore::newest_id(std::uint32_t rank) const {
  const auto ids = list(rank);
  if (ids.empty()) return std::nullopt;
  return ids.back();
}

void FileStore::erase(std::uint32_t rank, std::uint64_t checkpoint_id) {
  std::error_code ec;
  std::filesystem::remove(file_path(rank, checkpoint_id), ec);
}

}  // namespace ndpcr::ckpt
