#include "ckpt/file_store.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <fstream>
#include <system_error>

#include "common/crc32.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define NDPCR_HAVE_FSYNC 1
#endif

namespace ndpcr::ckpt {
namespace {

constexpr const char* kPrefix = "ckpt-";
constexpr const char* kSuffix = ".ndcr";
constexpr const char* kLatestName = "latest";

// Latest-pointer wire format: magic(4) id(8) crc32-of-magic+id(4).
constexpr std::uint32_t kLatestMagic = 0x4E444C50;  // "NDLP"
constexpr std::size_t kLatestBytes = 4 + 8 + 4;

StoreErrorKind classify_errno(int err) {
  switch (err) {
    case EINTR:
    case EAGAIN:
    case EIO:
      return StoreErrorKind::kTransient;
    default:
      return StoreErrorKind::kPermanent;
  }
}

StoreStatus errno_failure(const char* what, int err) {
  return StoreStatus::failure(
      classify_errno(err),
      std::string(what) + ": " + std::strerror(err));
}

#ifdef NDPCR_HAVE_FSYNC
// fsync a path opened read-only (used for directories after rename).
bool fsync_path(const std::filesystem::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}
#endif

}  // namespace

FileStore::FileStore(std::filesystem::path root) : root_(std::move(root)) {
  std::filesystem::create_directories(root_);
}

std::filesystem::path FileStore::rank_dir(std::uint32_t rank) const {
  return root_ / ("rank-" + std::to_string(rank));
}

std::filesystem::path FileStore::file_path(
    std::uint32_t rank, std::uint64_t checkpoint_id) const {
  return rank_dir(rank) /
         (kPrefix + std::to_string(checkpoint_id) + kSuffix);
}

std::filesystem::path FileStore::latest_path(std::uint32_t rank) const {
  return rank_dir(rank) / kLatestName;
}

namespace {

// Write-temp + fsync + rename + directory fsync: the atomic-replace
// discipline shared by checkpoint data files and the latest pointer.
StoreStatus atomic_replace(const std::filesystem::path& dir,
                           const std::filesystem::path& target,
                           ByteSpan data) {
  const auto tmp = target.string() + ".tmp";
#ifdef NDPCR_HAVE_FSYNC
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return errno_failure("open", errno);
  const char* cursor = reinterpret_cast<const char*>(data.data());
  std::size_t remaining = data.size();
  while (remaining > 0) {
    const ssize_t n = ::write(fd, cursor, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return errno_failure("write", err);
    }
    cursor += n;
    remaining -= static_cast<std::size_t>(n);
  }
  // The data must be on the device before the rename publishes the name;
  // otherwise a crash could leave a complete-looking but empty file.
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return errno_failure("fsync", err);
  }
  if (::close(fd) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return errno_failure("close", err);
  }
#else
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return StoreStatus::failure(StoreErrorKind::kPermanent,
                                  "cannot open " + tmp);
    }
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    if (!out) {
      return StoreStatus::failure(StoreErrorKind::kTransient,
                                  "short write to " + tmp);
    }
  }
#endif
  std::error_code ec;
  std::filesystem::rename(tmp, target, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return StoreStatus::failure(StoreErrorKind::kPermanent,
                                "rename: " + ec.message());
  }
#ifdef NDPCR_HAVE_FSYNC
  // Make the rename itself durable: sync the directory entry.
  fsync_path(dir);
#endif
  return StoreStatus::success();
}

}  // namespace

StoreStatus FileStore::put(std::uint32_t rank, std::uint64_t checkpoint_id,
                           ByteSpan data) {
  MutationDecision gated;
  if (gate_) {
    gated = gate_({MutationOp::kPut, rank, checkpoint_id, data.size()});
    if (gated.drop) return StoreStatus::success();
  }
  const auto dir = rank_dir(rank);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return StoreStatus::failure(StoreErrorKind::kPermanent,
                                "create_directories: " + ec.message());
  }
  const ByteSpan effective =
      gated.torn && gated.keep_bytes < data.size()
          ? data.subspan(0, gated.keep_bytes)
          : data;
  const StoreStatus wrote =
      atomic_replace(dir, file_path(rank, checkpoint_id), effective);
  if (!wrote.ok()) return wrote;
  // Publish only after the data file is durable: the pointer update is
  // the commit point, and its own crash site.
  write_latest(rank, checkpoint_id);
  return StoreStatus::success();
}

void FileStore::write_latest(std::uint32_t rank,
                             std::uint64_t checkpoint_id) {
  // The pointer only advances: a put of an older id (out-of-order
  // backfill) does not move "latest" backwards past a newer published
  // checkpoint.
  if (const auto current = latest_pointer(rank);
      current && *current >= checkpoint_id) {
    return;
  }
  if (gate_) {
    const MutationDecision d =
        gate_({MutationOp::kPointer, rank, checkpoint_id, kLatestBytes});
    if (d.drop) return;  // died before publishing: previous pointer wins
  }
  Bytes record;
  record.reserve(kLatestBytes);
  append_le<std::uint32_t>(record, kLatestMagic);
  append_le<std::uint64_t>(record, checkpoint_id);
  Crc32 crc;
  crc.update(ByteSpan(record));
  append_le<std::uint32_t>(record, crc.value());
  // Pointer-update failures are not reported: the pointer is an
  // accelerator with a scan fallback, and put() already succeeded.
  (void)atomic_replace(rank_dir(rank), latest_path(rank), ByteSpan(record));
}

std::optional<std::uint64_t> FileStore::latest_pointer(
    std::uint32_t rank) const {
  std::ifstream in(latest_path(rank), std::ios::binary);
  if (!in) return std::nullopt;
  Bytes record(kLatestBytes);
  in.read(reinterpret_cast<char*>(record.data()),
          static_cast<std::streamsize>(kLatestBytes));
  // A short, oversized, or bit-damaged pointer is torn: detected here and
  // ignored, never trusted.
  if (static_cast<std::size_t>(in.gcount()) != kLatestBytes ||
      in.peek() != std::ifstream::traits_type::eof()) {
    return std::nullopt;
  }
  if (read_le<std::uint32_t>(ByteSpan(record), 0) != kLatestMagic) {
    return std::nullopt;
  }
  Crc32 crc;
  crc.update(ByteSpan(record).subspan(0, kLatestBytes - 4));
  if (read_le<std::uint32_t>(ByteSpan(record), kLatestBytes - 4) !=
      crc.value()) {
    return std::nullopt;
  }
  const auto id = read_le<std::uint64_t>(ByteSpan(record), 4);
  if (!contains(rank, id)) return std::nullopt;  // stale: file was erased
  return id;
}

void FileStore::refresh_latest(std::uint32_t rank) {
  const auto ids = list(rank);
  if (ids.empty()) {
    std::error_code ec;
    std::filesystem::remove(latest_path(rank), ec);
    return;
  }
  write_latest(rank, ids.back());
}

StoreResult<Bytes> FileStore::get(std::uint32_t rank,
                                  std::uint64_t checkpoint_id) const {
  const auto path = file_path(rank, checkpoint_id);
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) return StoreResult<Bytes>::not_found();
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return StoreError(StoreErrorKind::kTransient,
                      "cannot open " + path.string());
  }
  Bytes data(size);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(size));
  if (static_cast<std::uint64_t>(in.gcount()) != size) {
    return StoreError(StoreErrorKind::kTransient,
                      "short read from " + path.string());
  }
  return data;
}

bool FileStore::contains(std::uint32_t rank,
                         std::uint64_t checkpoint_id) const {
  std::error_code ec;
  return std::filesystem::exists(file_path(rank, checkpoint_id), ec) && !ec;
}

std::vector<std::uint64_t> FileStore::list(std::uint32_t rank) const {
  std::vector<std::uint64_t> ids;
  std::error_code ec;
  std::filesystem::directory_iterator it(rank_dir(rank), ec);
  if (ec) return ids;
  const std::size_t prefix_len = std::string(kPrefix).size();
  const std::size_t suffix_len = std::string(kSuffix).size();
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    const auto name = entry.path().filename().string();
    if (name.size() <= prefix_len + suffix_len ||
        name.rfind(kPrefix, 0) != 0 || !name.ends_with(kSuffix)) {
      continue;
    }
    const auto digits =
        name.substr(prefix_len, name.size() - prefix_len - suffix_len);
    // Strict all-digits parse: "ckpt-12abc.ndcr" is a foreign file, not
    // checkpoint 12.
    if (!std::all_of(digits.begin(), digits.end(), [](unsigned char c) {
          return std::isdigit(c) != 0;
        })) {
      continue;
    }
    std::uint64_t id = 0;
    const auto [ptr, err] = std::from_chars(
        digits.data(), digits.data() + digits.size(), id);
    if (err != std::errc{} || ptr != digits.data() + digits.size()) continue;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::optional<std::uint64_t> FileStore::newest_id(std::uint32_t rank) const {
  // The pointer is the commit point: a data file newer than a *valid*
  // pointer was never published (crash between rename and pointer
  // update), so the pointer answer wins. Only a missing or torn pointer
  // falls back to the directory scan.
  if (const auto published = latest_pointer(rank)) return published;
  const auto ids = list(rank);
  if (ids.empty()) return std::nullopt;
  return ids.back();
}

void FileStore::erase(std::uint32_t rank, std::uint64_t checkpoint_id) {
  if (gate_) {
    const MutationDecision d =
        gate_({MutationOp::kErase, rank, checkpoint_id, 0});
    if (d.drop) return;
  }
  std::error_code ec;
  std::filesystem::remove(file_path(rank, checkpoint_id), ec);
  refresh_latest(rank);
}

}  // namespace ndpcr::ckpt
