#pragma once

// The write side of the pipelined commit path (docs/PERF.md).
//
// Two pieces:
//
//   verified_put_once - ONE attempt of the write-verify-quarantine
//     protocol every durable write in the repo follows: put, read back,
//     compare, erase a torn entry that landed under a valid key. Both
//     retry harnesses - MultilevelManager::checked_put's bounded
//     retry/backoff loop and NdpAgent's virtual-time drain retry - wrap
//     this one primitive, so the store-facing op sequence of an attempt
//     is identical wherever a checkpoint lands.
//
//   AsyncStageWriter - a single background executor running submitted
//     closures strictly in submission (FIFO) order, with a bounded
//     handoff queue (depth 2 = double buffering: one job in flight, one
//     staged). The commit path submits its per-rank IO puts here so
//     level writes overlap the next rank's serialization/compression;
//     recover submits pure decompress jobs so decode overlaps the next
//     rank's store reads.
//
// Determinism contract: the writer adds concurrency, never reordering.
// Jobs run in submission order on one thread, so a store driven only
// through the writer sees the exact op sequence the serial path issued -
// fault schedules and crash-point cutoffs, which are pure functions of
// each device's own op index, replay unchanged. Results (health deltas,
// trace buffers, output slots) are indexed by submission order and
// merged by the caller after flush(), behind the queue mutex's
// happens-before. flush() is the commit point: the caller does not
// advance any latest-pointer semantics until every submitted write has
// landed.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

#include "ckpt/stores.hpp"

namespace ndpcr::ckpt {

// Outcome of one write-verify attempt (see verified_put_once).
struct PutOutcome {
  bool ok = false;        // durably in place and read back equal
  bool accepted = false;  // the store's put itself succeeded
  bool put_permanent = false;   // put failed with a permanent error
  bool verify_failed = false;   // readback missing/mismatched/erred
  bool read_error_permanent = false;  // the readback error was permanent
  bool quarantined = false;     // a mismatched entry was erased
};

// One attempt: put `data` under (rank, id), then - when `verify` - read
// it back and compare, erasing (quarantining) an entry that reads back
// different. Never throws; the caller's retry policy interprets the
// outcome flags.
PutOutcome verified_put_once(KvStore& store, std::uint32_t rank,
                             std::uint64_t id, const Bytes& data,
                             bool verify);

// Counters for the async stage. Purely observational: queue depth and
// stall counts depend on wall-clock scheduling, so - like wall-time
// trace events - they are excluded from every determinism fingerprint
// (docs/OBSERVABILITY.md). `jobs`/`inline_jobs` are deterministic.
struct PipelineStats {
  std::uint64_t jobs = 0;            // closures accepted (queued + inline)
  std::uint64_t inline_jobs = 0;     // ran synchronously (depth 0)
  std::uint64_t enqueue_stalls = 0;  // submits that waited on a full queue
  std::uint64_t queue_peak = 0;      // deepest staged+in-flight observed
  std::uint64_t flushes = 0;

  void merge(const PipelineStats& o) {
    jobs += o.jobs;
    inline_jobs += o.inline_jobs;
    enqueue_stalls += o.enqueue_stalls;
    queue_peak = queue_peak > o.queue_peak ? queue_peak : o.queue_peak;
    flushes += o.flushes;
  }
};

class AsyncStageWriter {
 public:
  // `depth` bounds the handoff queue (staged jobs; one more may be in
  // flight). 0 disables the background thread entirely: submit() runs
  // the job inline, which is the bit-identical serial reference the
  // writer-on/off equivalence test pins. The thread starts lazily on
  // the first queued submit.
  explicit AsyncStageWriter(std::size_t depth = 2);
  ~AsyncStageWriter();  // flushes (exceptions swallowed) and joins

  AsyncStageWriter(const AsyncStageWriter&) = delete;
  AsyncStageWriter& operator=(const AsyncStageWriter&) = delete;

  // Enqueue a job; blocks while `depth` jobs are already staged. Jobs
  // run in submission order. submit/flush are single-caller: only the
  // thread that owns the writer may call them.
  void submit(std::function<void()> job);

  // Barrier: returns once every submitted job ran. Rethrows the first
  // job exception (later jobs still ran - they are independent).
  void flush();

  // Stable only after flush() (or before any submit).
  [[nodiscard]] const PipelineStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t depth() const { return depth_; }

 private:
  void loop();

  std::size_t depth_;
  std::mutex m_;
  std::condition_variable cv_submit_;  // worker waits for work
  std::condition_variable cv_drain_;   // submitter waits for space / flush
  std::deque<std::function<void()>> queue_;
  bool busy_ = false;
  bool stop_ = false;
  std::exception_ptr error_;
  PipelineStats stats_;
  std::thread thread_;
};

}  // namespace ndpcr::ckpt
