#include "ckpt/tenant_store.hpp"

#include <utility>

namespace ndpcr::ckpt {

StoreStatus TenantStoreView::put(std::uint32_t rank,
                                 std::uint64_t checkpoint_id, Bytes data) {
  if (quota_ != nullptr && !quota_->charge_write(data.size())) {
    return StoreStatus::failure(StoreErrorKind::kPermanent,
                                "tenant IO quota exhausted");
  }
  return base_.put(offset_ + rank, checkpoint_id, std::move(data));
}

StoreResult<Bytes> TenantStoreView::get(std::uint32_t rank,
                                        std::uint64_t checkpoint_id) const {
  if (quota_ != nullptr) quota_->charge_read();
  return base_.get(offset_ + rank, checkpoint_id);
}

bool TenantStoreView::contains(std::uint32_t rank,
                               std::uint64_t checkpoint_id) const {
  return base_.contains(offset_ + rank, checkpoint_id);
}

std::optional<std::uint64_t> TenantStoreView::newest_id(
    std::uint32_t rank) const {
  return base_.newest_id(offset_ + rank);
}

std::vector<std::uint64_t> TenantStoreView::list(std::uint32_t rank) const {
  return base_.list(offset_ + rank);
}

void TenantStoreView::erase(std::uint32_t rank,
                            std::uint64_t checkpoint_id) {
  base_.erase(offset_ + rank, checkpoint_id);
}

void TenantStoreView::clear() {
  for (std::uint32_t rank = 0; rank < rank_count_; ++rank) {
    for (const std::uint64_t id : base_.list(offset_ + rank)) {
      base_.erase(offset_ + rank, id);
    }
  }
}

}  // namespace ndpcr::ckpt
