#pragma once

// Region registration: the application-facing capture API. An application
// registers the memory regions that constitute its restartable state (the
// moral equivalent of BLCR walking a process's address space); capture()
// snapshots them into an image payload and restore() copies a payload back.

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/image.hpp"
#include "common/bytes.hpp"

namespace ndpcr::ckpt {

class RegionRegistry {
 public:
  // Register a region. The pointer must stay valid (and the size fixed)
  // for the registry's lifetime. Names must be unique; they are recorded
  // in the payload and validated on restore.
  void register_region(std::string name, void* data, std::size_t size);

  template <typename T>
  void register_vector(std::string name, std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    register_region(std::move(name), v.data(), v.size() * sizeof(T));
  }

  // Snapshot all regions into a payload (capture is what happens while the
  // application is paused at a coordinated checkpoint).
  [[nodiscard]] Bytes capture() const;

  // Copy a captured payload back into the registered regions. Throws
  // ImageError if the payload does not match the registered layout.
  void restore(ByteSpan payload) const;

  [[nodiscard]] std::size_t total_bytes() const;
  [[nodiscard]] std::size_t region_count() const { return regions_.size(); }

 private:
  struct Region {
    std::string name;
    void* data;
    std::size_t size;
  };
  std::vector<Region> regions_;
};

}  // namespace ndpcr::ckpt
