#pragma once

// Region registration: the application-facing capture API. An application
// registers the memory regions that constitute its restartable state (the
// moral equivalent of BLCR walking a process's address space); capture()
// snapshots them into an image payload and restore() copies a payload back.
//
// Incremental capture (docs/DELTA.md): each region carries a dirty flag
// and a content hash of its last captured state. Applications that know
// what they touched call mark_dirty(); the hash-sweep tracking mode (the
// default) additionally rehashes every unmarked region with
// delta::block_hash, so a forgotten mark costs a hash pass, never a lost
// update. capture_delta() serializes only the dirty regions; apply_delta()
// folds such a payload into the previous full payload, verifying a digest
// of the base so a delta can never be applied against the wrong snapshot.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "ckpt/image.hpp"
#include "common/bytes.hpp"

namespace ndpcr::ckpt {

// How capture_delta() decides which regions changed.
enum class DirtyTracking {
  kExplicit,   // trust mark_dirty() alone
  kHashSweep,  // mark_dirty() plus a content-hash sweep of unmarked regions
};

struct DeltaCaptureStats {
  std::size_t regions_total = 0;
  std::size_t regions_included = 0;
  std::size_t included_bytes = 0;  // region bytes serialized
  std::size_t skipped_bytes = 0;   // region bytes elided as clean
};

class RegionRegistry {
 public:
  // Register a region. The pointer must stay valid (and the size fixed)
  // for the registry's lifetime; capture()/restore() throw ImageError if
  // a live-size check (available for register_vector targets) detects a
  // resize. Names must be unique; they are recorded in the payload and
  // validated on restore.
  void register_region(std::string name, void* data, std::size_t size);

  // Vector registration keeps a live handle to the vector, so capture and
  // restore follow reallocations and *detect* resizes (a resized target
  // throws instead of silently reading stale extents).
  template <typename T>
  void register_vector(std::string name, std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<T>* live = &v;
    register_region_impl(std::move(name), v.data(), v.size() * sizeof(T),
                         [live]() -> LiveExtent {
                           return {live->data(), live->size() * sizeof(T)};
                         });
  }

  // Snapshot all regions into a payload. Refreshes every region's content
  // hash and clears the dirty flags: this payload is the new delta base.
  [[nodiscard]] Bytes capture();

  // Serialize only the regions considered dirty under the tracking mode
  // (all regions count as dirty before the first capture). The payload
  // embeds a digest of the base state so apply_delta() can verify it is
  // folded into the right full payload. Clears the included regions'
  // dirty flags and advances their hashes.
  [[nodiscard]] Bytes capture_delta(DeltaCaptureStats* stats = nullptr);

  // Fold a capture_delta() payload into the previous full payload,
  // producing the new full payload. Throws ImageError on layout or digest
  // mismatch (wrong base, reordered or resized regions).
  [[nodiscard]] static Bytes apply_delta(ByteSpan base_payload,
                                         ByteSpan delta_payload);

  // Whether a payload came from capture() (full) or capture_delta().
  [[nodiscard]] static bool is_delta_payload(ByteSpan payload);

  // Copy a captured payload back into the registered regions. Throws
  // ImageError if the payload does not match the registered layout.
  void restore(ByteSpan payload) const;

  // Declare a region changed since the last capture. Throws ImageError
  // for unknown names.
  void mark_dirty(std::string_view name);

  void set_tracking(DirtyTracking mode) { tracking_ = mode; }
  [[nodiscard]] DirtyTracking tracking() const { return tracking_; }

  [[nodiscard]] std::size_t total_bytes() const;
  [[nodiscard]] std::size_t region_count() const { return regions_.size(); }

 private:
  struct LiveExtent {
    void* data;
    std::size_t size;
  };
  struct Region {
    std::string name;
    void* data;
    std::size_t size;
    // Null for raw registrations; vector registrations use it to follow
    // reallocations and detect resizes.
    std::function<LiveExtent()> live;
    bool dirty = true;            // everything is dirty until captured
    std::uint64_t content_hash = 0;  // hash of the last captured state
  };

  void register_region_impl(std::string name, void* data, std::size_t size,
                            std::function<LiveExtent()> live);
  // The region's current data pointer (following the live handle when one
  // exists); throws ImageError if the live size differs from the
  // registered size.
  static void* current_extent(const Region& region);
  // Order-sensitive fold of the regions' content hashes: the delta
  // payload's base digest.
  [[nodiscard]] std::uint64_t base_digest() const;

  std::vector<Region> regions_;
  DirtyTracking tracking_ = DirtyTracking::kHashSweep;
  bool has_base_ = false;  // capture() has established a delta base
};

}  // namespace ndpcr::ckpt
