#pragma once

// Multilevel checkpoint/restart coordinator (the SCR-like substrate of
// sections 3.4-3.5): coordinated checkpoints across N simulated nodes,
// three levels of storage, and recovery that walks levels from fastest to
// slowest.
//
//   local   - the node's own NVM circular buffer (every checkpoint)
//   partner - a full copy in the next node's partner space (every
//             `partner_every`-th checkpoint)
//   io      - the parallel file system (every `io_every`-th checkpoint),
//             optionally compressed (section 3.5 compresses only the
//             IO-level stream)
//
// This is a functional model - it moves real bytes and validates CRCs - so
// the examples and the cluster simulator can exercise true data-path
// behaviour (corruption detection, partner rebuild, level fallback).
//
// The data path is self-healing (docs/FAULTS.md): store writes go through
// bounded retry with exponential backoff (virtual - counted, never slept),
// every write is verified by readback, corrupted entries are quarantined,
// and a level whose device stays down is marked degraded while commits
// keep succeeding on the surviving levels. A degraded level is re-probed
// on every commit and heals without a restart once its store recovers.
// All of it is observable through the HealthReport.
//
// The data path is parallel (docs/PERF.md): commit fans per-rank work
// (serialize + CRC, partner exchange, XOR encode, chunked IO compression,
// local NVM write + verify) across an exec::TaskPool, and recover
// validates every rank's local copy in parallel before falling back.
// Results are bit-identical at any thread count: each task owns its index
// and its own health-counter delta, deltas are merged in index order after
// the barrier, and operations against shared fault-scheduled stores (the
// IO device) stay serial so fault replays are schedule-independent. When
// commit/recover are themselves called from inside a pool worker (the
// chaos suite runs whole replicates as tasks) everything runs inline.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "ckpt/dedup_level.hpp"
#include "ckpt/image.hpp"
#include "ckpt/nvm_store.hpp"
#include "ckpt/store_writer.hpp"
#include "ckpt/stores.hpp"
#include "compress/chunked.hpp"
#include "compress/codec.hpp"
#include "compress/probe.hpp"
#include "delta/delta.hpp"
#include "obs/trace.hpp"

namespace ndpcr::exec {
class TaskPool;
}  // namespace ndpcr::exec

namespace ndpcr::obs {
class MetricsRegistry;
}  // namespace ndpcr::obs

namespace ndpcr::ckpt {

enum class RecoveryLevel { kLocal, kPartner, kIo };

const char* to_string(RecoveryLevel level);

// Partner-level redundancy scheme (SCR's levels): full copies tolerate
// the loss of a node at 100% space overhead; XOR groups tolerate one loss
// per group at 1/group_size overhead (rebuild needs the surviving group
// members' local copies plus the parity).
enum class PartnerScheme { kCopy, kXorGroup };

// Which remote store a MultilevelConfig::store_factory call is building.
enum class StoreLevel { kPartner, kIo };

// Bounded-retry policy for store operations. Backoff is virtual time:
// accounted in the HealthReport, never slept, so fault schedules replay
// bit-identically at any speed.
struct RetryPolicy {
  std::uint32_t max_attempts = 4;   // total tries per store operation
  double backoff_seconds = 0.01;    // virtual delay before the 1st retry
  double backoff_multiplier = 2.0;  // exponential growth per retry
};

enum class LevelState { kHealthy, kDegraded };

const char* to_string(LevelState state);

// Per-level health counters. All counters are monotone; `state` moves
// healthy -> degraded when a store operation exhausts its retries (or
// hits a permanent error) and back only when a later commit's probe
// succeeds (counted in `repairs`).
struct LevelHealth {
  LevelState state = LevelState::kHealthy;
  std::uint64_t puts = 0;             // put attempts issued
  std::uint64_t put_retries = 0;      // attempts after the first
  std::uint64_t put_failures = 0;     // operations abandoned
  std::uint64_t verify_failures = 0;  // readback mismatched what we wrote
  std::uint64_t quarantined = 0;      // corrupt entries erased
  std::uint64_t read_retries = 0;     // transient read errors retried
  std::uint64_t degraded_commits = 0; // commits made while degraded
  std::uint64_t repairs = 0;          // degraded -> healthy transitions
  double backoff_seconds = 0.0;       // virtual backoff accumulated

  [[nodiscard]] bool degraded() const {
    return state == LevelState::kDegraded;
  }
};

// Health of the whole multilevel data path; consumed by the cluster
// simulator, the chaos harness and `ndpcr --faults`.
struct HealthReport {
  LevelHealth local;
  LevelHealth partner;
  LevelHealth io;
  std::uint64_t commits = 0;
  std::uint64_t degraded_commits = 0;  // commits with any level degraded

  [[nodiscard]] bool any_degraded() const {
    return local.degraded() || partner.degraded() || io.degraded();
  }
};

// Incremental-checkpointing policy for the commit path (docs/DELTA.md).
// With `enabled`, commits after the first write delta images against the
// previous committed checkpoint's payload; every `chain_length`-th link
// forces a full image so recovery chains stay bounded. Dedup layers
// content-addressed block stores under the IO level (CDC recipes) and the
// local NVM (fixed-block capacity accounting).
struct DeltaPolicy {
  bool enabled = false;
  // Maximum delta links between full anchors (0 behaves like disabled:
  // every commit is a full).
  std::uint32_t chain_length = 7;
  std::size_t block_bytes = 4096;  // DeltaCodec block size
  // CDC block dedup across ranks/commits at the IO level: images become
  // recipes + content-addressed blocks in the same KvStore.
  bool io_dedup = false;
  delta::CdcParams cdc;
  // Fixed-block dedup accounting inside each local NVM store (0 = off).
  std::size_t nvm_dedup_block_bytes = 0;
};

// Byte-movement accounting for the commit/recover data path: what the
// delta and dedup layers save is visible here (and through
// record_data_path) rather than inferred from device sizes. All counters
// are accumulated serially in rank order, so they are bit-identical at
// any pool size.
struct DataPathStats {
  std::uint64_t commits_full = 0;
  std::uint64_t commits_delta = 0;
  std::uint64_t payload_bytes_in = 0;      // raw payload bytes offered
  std::uint64_t delta_input_bytes = 0;     // payload bytes delta-encoded
  std::uint64_t delta_encoded_bytes = 0;   // delta streams produced
  std::uint64_t local_bytes_written = 0;   // image bytes into local NVM
  std::uint64_t partner_bytes_written = 0; // image/parity bytes to partners
  std::uint64_t io_logical_bytes = 0;      // framed image bytes bound for IO
  std::uint64_t io_bytes_written = 0;      // bytes actually put to IO
  std::uint64_t dedup_new_bytes = 0;       // block bytes new to the IO store
  std::uint64_t dedup_dup_bytes = 0;       // block bytes resolved as dups
  std::uint64_t chain_links = 0;           // delta links walked in recover
  std::uint64_t chain_replays = 0;         // chains replayed to a payload

  // 1 - encoded/input over the payloads that were delta-encoded.
  [[nodiscard]] double delta_factor() const {
    return delta_input_bytes == 0
               ? 0.0
               : 1.0 - static_cast<double>(delta_encoded_bytes) /
                           static_cast<double>(delta_input_bytes);
  }
  [[nodiscard]] double dedup_hit_rate() const {
    const std::uint64_t total = dedup_new_bytes + dedup_dup_bytes;
    return total == 0
               ? 0.0
               : static_cast<double>(dedup_dup_bytes) /
                     static_cast<double>(total);
  }
};

struct MultilevelConfig {
  std::uint64_t app_id = 1;
  std::uint32_t node_count = 1;
  std::size_t nvm_capacity_bytes = 64ull << 20;
  std::uint32_t partner_every = 1;  // 0 disables the partner level
  std::uint32_t io_every = 0;       // 0 disables the IO level
  PartnerScheme partner_scheme = PartnerScheme::kCopy;
  std::uint32_t xor_group_size = 4; // ranks per parity group
  // Codec for IO-level checkpoints; null means store uncompressed. The
  // stream is a ChunkedCodec container so chunk compression parallelizes;
  // `io_chunk_bytes` fixes the format (and therefore the stored bytes),
  // `io_threads` only the execution (0 = the pool's thread count, <= 1
  // compresses inline when used outside commit()).
  compress::CodecId io_codec = compress::CodecId::kNull;
  int io_codec_level = 0;
  std::size_t io_chunk_bytes = 1ull << 20;
  unsigned io_threads = 0;

  // Online per-region codec selection (docs/PERF.md): probe every rank's
  // image at commit time (compress::choose_codec) and pick accel-nlz4
  // for incompressible arrays, ngzip for repetitive/structured bytes,
  // plain nlz4 in between. The choice rides in the ChunkedCodec
  // container header, so recovery is self-describing (any mix of codecs
  // across ranks/checkpoints decodes). The static io_codec above is the
  // override: adaptive only engages when io_codec is kNull - configuring
  // a real codec pins every write to it. Dedup block streams always use
  // the static codec (one block is shared by many images; its coding
  // must not depend on which image wrote it first).
  bool io_codec_adaptive = false;

  // Handoff-queue depth of the async IO writer (the pipelined commit
  // path): level writes run on a dedicated writer thread, in rank order,
  // overlapping the next rank's compression and the local-NVM fan-out.
  // 2 = double buffering. 0 runs every IO write synchronously on the
  // committing thread - bit-identical results either way (the writer
  // preserves the store's op order; health/trace merge in rank order),
  // which the writer-on/off chaos test pins.
  std::size_t io_writer_depth = 2;

  // Execution engine for the parallel data path (null = the process-wide
  // exec::global_pool()). Thread count is an execution detail: committed
  // bytes, checkpoint ids and HealthReport counters are bit-identical at
  // any size, and commit/recover fall back to inline execution when
  // called from inside a pool worker.
  exec::TaskPool* pool = nullptr;

  // Factory for the remote stores (one partner space per hosting node,
  // one IO store; `host` is the hosting rank for partner spaces, 0 for
  // IO). Null builds plain KvStores; the fault layer installs
  // FaultyKvStore decorators here, and the crash simulator forwarding
  // views over stores that outlive the manager (docs/EQUIVALENCE.md).
  std::function<std::unique_ptr<KvStore>(StoreLevel level,
                                         std::uint32_t host)>
      store_factory;

  // Factory for the per-rank local NVM devices. Null builds fresh stores
  // from nvm_capacity_bytes / delta.nvm_dedup_block_bytes. The crash
  // simulator hands the *same* NvmStore objects to the dying manager and
  // the restart manager, so local state survives a simulated process
  // death the way a real NVDIMM survives one.
  std::function<std::shared_ptr<NvmStore>(std::uint32_t rank)> nvm_factory;

  // Restart mode: the stores the factories hand over may already hold a
  // previous life's checkpoints. The constructor inventories every level
  // for the newest surviving id so new commits continue the id sequence
  // instead of colliding with it, and rebuilds the IO dedup index from
  // the recipes still on the device. Without this flag a manager built
  // over surviving stores starts at id 1: recover() finds nothing (its
  // scan starts below every stored id) and the first commit collides
  // with checkpoint 1's leftovers - the crash-consistency bug the
  // equivalence sweep exposed, pinned by MultilevelDelta.AdoptExisting*.
  bool adopt_existing = false;

  // Invoked on the image bytes just before each local NVM write (op_index
  // counts the rank's local writes, monotonically). The fault layer uses
  // it to model torn or bit-flipped NVM writes; commit's verify readback
  // catches and retries them. May be called from pool workers - one rank
  // per task - so implementations that share state must synchronize.
  std::function<void(std::uint32_t rank, std::uint64_t op_index,
                     Bytes& image)>
      local_write_hook;

  // Incremental checkpointing + dedup (docs/DELTA.md). Off by default:
  // every commit is a self-contained full image.
  DeltaPolicy delta;

  RetryPolicy retry;
  bool verify_writes = true;  // readback + compare after every put

  // Optional tracer (docs/OBSERVABILITY.md). Null disables tracing; the
  // manager then binds obs::Tracer::null() and every emission site costs
  // one branch. Commit/recover emit a span tree on the logical clock:
  // commit > image_build / partner / io / local, with retry, quarantine,
  // degrade and heal instants. Parallel phases record into per-task
  // buffers merged in task-index order, so the trace fingerprint is as
  // thread-invariant as the HealthReport.
  obs::Tracer* trace = nullptr;
};

// Fold a HealthReport into metric counters/gauges under `prefix` (e.g.
// "ckpt"), one entry per LevelHealth field per level - the bridge from
// the self-healing path to a --metrics snapshot.
void record_health(obs::MetricsRegistry& metrics, const HealthReport& report,
                   std::string_view prefix);

// Likewise for the data-path accounting: counters plus the derived
// delta_factor / dedup_hit_rate gauges under `prefix` (e.g. "ckpt.data").
void record_data_path(obs::MetricsRegistry& metrics,
                      const DataPathStats& stats, std::string_view prefix);

// Pipeline-stage accounting (docs/OBSERVABILITY.md): job counts plus the
// queue-depth/stall gauges of the async writer under `prefix` (e.g.
// "ckpt.pipeline"). Queue depth and stalls are wall-clock observations -
// never fold them into a determinism fingerprint.
void record_pipeline(obs::MetricsRegistry& metrics,
                     const PipelineStats& stats, std::string_view prefix);

// Where a store operation's trace events land: the buffer is either the
// tracer's root (serial phases) or the task's private buffer (parallel
// phases), null when tracing is off. `level` becomes the event category.
struct TraceCtx {
  obs::TraceBuffer* buf = nullptr;
  std::uint32_t track = 0;
  const char* level = "";
};

class MultilevelManager {
 public:
  explicit MultilevelManager(const MultilevelConfig& config);

  // Coordinated commit of one checkpoint across all ranks. `payloads[r]`
  // is rank r's state. Returns the checkpoint id. Store failures never
  // throw: they are retried, then degrade the level (see HealthReport).
  // Throws std::logic_error only if a local NVM cannot accept the
  // checkpoint (capacity exhausted by locked entries).
  std::uint64_t commit(const std::vector<ByteSpan>& payloads);

  // Simulate loss of a node: its NVM contents and the partner copies it
  // was holding for its neighbor are gone.
  void fail_node(std::uint32_t rank);

  // Silent-corruption test hooks, all routed through the same primitive
  // the fault injector uses (corrupt_in_place): flip a byte of the rank's
  // newest entry at that level. Return false if no entry exists.
  bool corrupt_local(std::uint32_t rank);
  bool corrupt_partner(std::uint32_t rank);
  bool corrupt_io(std::uint32_t rank);

  struct Recovery {
    std::uint64_t checkpoint_id = 0;
    std::vector<Bytes> payloads;         // one per rank
    std::vector<RecoveryLevel> levels;   // where each rank recovered from
  };

  // Recover the application: the newest checkpoint id restorable by every
  // rank, walking local -> partner -> io per rank. Returns nullopt if no
  // common checkpoint survives. Transient store read errors are retried
  // (counted in the HealthReport); anything unreadable or corrupt is
  // treated as missing, never returned.
  [[nodiscard]] std::optional<Recovery> recover() const;

  // Introspection used by tests and the cluster simulator.
  [[nodiscard]] const NvmStore& local_store(std::uint32_t rank) const;
  [[nodiscard]] NvmStore& local_store(std::uint32_t rank);
  [[nodiscard]] const KvStore& io_store() const { return *io_; }
  [[nodiscard]] const HealthReport& health() const { return health_; }
  [[nodiscard]] const DataPathStats& data_path() const { return data_stats_; }
  // Async-stage counters (observational; see record_pipeline).
  [[nodiscard]] const PipelineStats& pipeline() const {
    return pipeline_stats_;
  }
  [[nodiscard]] std::uint64_t last_checkpoint_id() const { return next_id_ - 1; }
  [[nodiscard]] std::uint32_t partner_of(std::uint32_t rank) const {
    return (rank + 1) % config_.node_count;
  }

  // XOR-group topology: the parity for the group containing `rank` is
  // hosted by the node after the group's last member.
  [[nodiscard]] std::uint32_t group_first(std::uint32_t rank) const;
  [[nodiscard]] std::uint32_t parity_host(std::uint32_t rank) const;

 private:
  // Constructor helper for config.adopt_existing: inventory every level
  // for surviving checkpoint ids (so next_id_ continues the sequence) and
  // rebuild the IO dedup index from the recipes still on the device.
  void adopt_existing_state();
  // Run body(i) for i in [0, n) on the configured pool, or inline when
  // already inside a pool worker (nested parallel_for is rejected).
  // `work_bytes` estimates the batch's total work: when per-index work
  // is tiny, indices are claimed in blocks (TaskPool grain) so pool
  // handoff overhead cannot dominate - small batches degrade all the way
  // to one inline task. 0 keeps one index per claim. Grain never changes
  // results: per-index slots are reduced in index order regardless.
  void for_tasks(std::size_t n, const std::function<void(std::size_t)>& body,
                 std::size_t work_bytes = 0) const;
  // Parse + CRC-check + dedup-assemble one rank's image from the remote
  // levels (partner copy / XOR rebuild, then IO). Serial: touches shared
  // fault-scheduled stores.
  [[nodiscard]] std::optional<CheckpointImage> try_remote_rank(
      std::uint32_t rank, std::uint64_t id, RecoveryLevel& level_out) const;
  [[nodiscard]] std::optional<Bytes> try_xor_rebuild(std::uint32_t rank,
                                                     std::uint64_t id) const;
  // Read one rank/id image from the local NVM only. Pure (no shared-store
  // ops, no health counters): safe from any task.
  [[nodiscard]] std::optional<CheckpointImage> fetch_local(
      std::uint32_t rank, std::uint64_t id) const;
  // Resolve rank/id to a full payload, walking delta chains back to their
  // anchor and replaying forward (docs/DELTA.md). `local_only` restricts
  // every link to the local NVM (the parallel phase-1 probe); otherwise
  // each link falls back local -> partner -> io. `level_out` reports the
  // deepest level any link came from, `links_out` the delta links walked
  // (0 for a directly-full image). Chain stats go through `links_out`, not
  // data_stats_, so the parallel phase-1 probes stay race-free.
  [[nodiscard]] std::optional<Bytes> resolve_payload(
      std::uint32_t rank, std::uint64_t id, bool local_only,
      RecoveryLevel& level_out, std::size_t& links_out) const;
  // Raw IO-level image bytes for rank/id: checked_get plus dedup recipe
  // assembly and chunked decompression, but no CRC/meta validation yet.
  [[nodiscard]] std::optional<Bytes> fetch_io_raw(std::uint32_t rank,
                                                  std::uint64_t id) const;
  // Read through a remote store with bounded retry on transient errors.
  [[nodiscard]] std::optional<Bytes> checked_get(const KvStore& store,
                                                 LevelHealth& health,
                                                 std::uint32_t rank,
                                                 std::uint64_t id,
                                                 TraceCtx tc = TraceCtx()) const;
  // Write + verify readback + retry/backoff. Returns true once the entry
  // is durably in place and matches `data`. `probe` limits the operation
  // to a single attempt (used while the level is already degraded).
  // Accounting goes to `health`, which in the parallel batches is the
  // task's private delta, not the shared report.
  bool checked_put(KvStore& store, LevelHealth& health, std::uint32_t rank,
                   std::uint64_t id, const Bytes& data, bool probe,
                   TraceCtx tc = TraceCtx());
  bool commit_local_rank(std::uint32_t rank, std::uint64_t id,
                         const Bytes& image, LevelHealth& health,
                         TraceCtx tc = TraceCtx());
  void commit_local(std::uint64_t id, const std::vector<Bytes>& images);
  void commit_partner(std::uint64_t id, const std::vector<Bytes>& images);
  // In-flight state of the pipelined IO level: per-rank health deltas,
  // outcomes and trace buffers the writer jobs fill in, merged - in rank
  // order - by finish_commit_io after the writer flushes.
  struct IoPending {
    bool active = false;  // writer jobs submitted; finish_commit_io owed
    bool was_degraded = false;
    std::vector<LevelHealth> deltas;
    std::vector<char> ok;
    std::vector<std::size_t> bytes;  // stored bytes per rank (if ok)
    std::vector<obs::TraceBuffer> tbs;
  };
  // Serialize/compress rank images and hand their puts to `writer` (null
  // = run each put synchronously in place). The healthy compressed path
  // pipelines: rank r's store write overlaps rank r+1's chunk
  // compression. Dedup and degraded-probe paths stay serial and settle
  // the level themselves (pending.active stays false).
  void commit_io(std::uint64_t id, const std::vector<Bytes>& images,
                 AsyncStageWriter* writer, IoPending& pending);
  // Barrier half: merge writer-job results in rank order and settle the
  // level. Runs after commit_local, so IO writes overlap the local
  // fan-out; the caller flushed `writer` first.
  void finish_commit_io(std::uint64_t id, IoPending& pending);
  // The ChunkedCodec a rank's IO stream uses: the adaptive candidate for
  // `choice`, or io_codec_ when adaptive is off (nullptr = store raw).
  [[nodiscard]] const compress::ChunkedCodec* codec_for(
      const compress::CodecChoice& choice) const;
  // Decode a stored IO stream by its own container header (adaptive
  // streams are self-describing; raw/legacy bytes pass through). By
  // value so the raw passthrough moves instead of copying. Nullopt on
  // damage.
  [[nodiscard]] std::optional<Bytes> decode_io_stream(Bytes stored) const;

  MultilevelConfig config_;
  // Chunked container codec for the IO level; empty when uncompressed.
  std::optional<compress::ChunkedCodec> io_codec_;
  // Adaptive candidates (config_.io_codec_adaptive), indexed like
  // compress::codec_candidate. Built once so per-commit selection never
  // allocates codec tables; all share io_chunk_bytes, so any of them can
  // validate any adaptive stream's chunk geometry on decode.
  std::vector<std::unique_ptr<compress::ChunkedCodec>> adaptive_codecs_;
  // Delta-chain state: the previous committed checkpoint's full payloads
  // (the encode reference), the links since the last full anchor, and the
  // pooled encoder scratch for the per-rank fan-out.
  std::optional<delta::DeltaCodec> delta_codec_;
  mutable delta::DeltaScratchPool delta_scratch_;
  std::vector<Bytes> prev_payload_;
  bool have_prev_ = false;
  std::uint32_t links_since_full_ = 0;
  // IO-level block dedup bookkeeping (config_.delta.io_dedup).
  std::optional<DedupIndex> io_dedup_;
  // shared_ptr: with a nvm_factory the devices outlive the manager (the
  // crash simulator re-attaches them to the restart manager).
  std::vector<std::shared_ptr<NvmStore>> local_;
  // partner_space_[n] holds copies for rank (n + N - 1) % N.
  std::vector<std::unique_ptr<KvStore>> partner_space_;
  std::unique_ptr<KvStore> io_;
  std::uint64_t next_id_ = 1;
  // Per-rank local write-op counters (fault-hook op indices must not
  // depend on the order ranks drain from the pool).
  std::vector<std::uint64_t> local_write_ops_;
  // Mutable: recover() is logically const but counts its read retries.
  mutable HealthReport health_;
  // Mutable: recover() counts chain links walked and replays completed.
  mutable DataPathStats data_stats_;
  // Async-stage accounting, folded after every flush. Mutable: recover's
  // decode stage contributes too. Observational only - never part of a
  // fingerprint (queue depth is wall-clock scheduling).
  mutable PipelineStats pipeline_stats_;
  // Never null: config.trace or the shared disabled Tracer::null().
  obs::Tracer* trace_;
};

}  // namespace ndpcr::ckpt
