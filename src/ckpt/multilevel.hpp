#pragma once

// Multilevel checkpoint/restart coordinator (the SCR-like substrate of
// sections 3.4-3.5): coordinated checkpoints across N simulated nodes,
// three levels of storage, and recovery that walks levels from fastest to
// slowest.
//
//   local   - the node's own NVM circular buffer (every checkpoint)
//   partner - a full copy in the next node's partner space (every
//             `partner_every`-th checkpoint)
//   io      - the parallel file system (every `io_every`-th checkpoint),
//             optionally compressed (section 3.5 compresses only the
//             IO-level stream)
//
// This is a functional model - it moves real bytes and validates CRCs - so
// the examples and the cluster simulator can exercise true data-path
// behaviour (corruption detection, partner rebuild, level fallback).

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "ckpt/image.hpp"
#include "ckpt/nvm_store.hpp"
#include "ckpt/stores.hpp"
#include "compress/codec.hpp"

namespace ndpcr::ckpt {

enum class RecoveryLevel { kLocal, kPartner, kIo };

const char* to_string(RecoveryLevel level);

// Partner-level redundancy scheme (SCR's levels): full copies tolerate
// the loss of a node at 100% space overhead; XOR groups tolerate one loss
// per group at 1/group_size overhead (rebuild needs the surviving group
// members' local copies plus the parity).
enum class PartnerScheme { kCopy, kXorGroup };

struct MultilevelConfig {
  std::uint64_t app_id = 1;
  std::uint32_t node_count = 1;
  std::size_t nvm_capacity_bytes = 64ull << 20;
  std::uint32_t partner_every = 1;  // 0 disables the partner level
  std::uint32_t io_every = 0;       // 0 disables the IO level
  PartnerScheme partner_scheme = PartnerScheme::kCopy;
  std::uint32_t xor_group_size = 4; // ranks per parity group
  // Codec for IO-level checkpoints; null means store uncompressed.
  compress::CodecId io_codec = compress::CodecId::kNull;
  int io_codec_level = 0;
};

class MultilevelManager {
 public:
  explicit MultilevelManager(const MultilevelConfig& config);

  // Coordinated commit of one checkpoint across all ranks. `payloads[r]`
  // is rank r's state. Returns the checkpoint id. Throws std::logic_error
  // if a local NVM cannot accept the checkpoint (capacity exhausted by
  // locked entries).
  std::uint64_t commit(const std::vector<ByteSpan>& payloads);

  // Simulate loss of a node: its NVM contents and the partner copies it
  // was holding for its neighbor are gone.
  void fail_node(std::uint32_t rank);

  // Simulate silent corruption of a rank's newest local checkpoint (tests
  // use this to verify CRC-driven fallback to the next level).
  void corrupt_local(std::uint32_t rank);

  struct Recovery {
    std::uint64_t checkpoint_id = 0;
    std::vector<Bytes> payloads;         // one per rank
    std::vector<RecoveryLevel> levels;   // where each rank recovered from
  };

  // Recover the application: the newest checkpoint id restorable by every
  // rank, walking local -> partner -> io per rank. Returns nullopt if no
  // common checkpoint survives.
  [[nodiscard]] std::optional<Recovery> recover() const;

  // Introspection used by tests and the cluster simulator.
  [[nodiscard]] const NvmStore& local_store(std::uint32_t rank) const;
  [[nodiscard]] NvmStore& local_store(std::uint32_t rank);
  [[nodiscard]] const KvStore& io_store() const { return io_; }
  [[nodiscard]] std::uint64_t last_checkpoint_id() const { return next_id_ - 1; }
  [[nodiscard]] std::uint32_t partner_of(std::uint32_t rank) const {
    return (rank + 1) % config_.node_count;
  }

  // XOR-group topology: the parity for the group containing `rank` is
  // hosted by the node after the group's last member.
  [[nodiscard]] std::uint32_t group_first(std::uint32_t rank) const;
  [[nodiscard]] std::uint32_t parity_host(std::uint32_t rank) const;

 private:
  [[nodiscard]] std::optional<Bytes> try_recover_rank(
      std::uint32_t rank, std::uint64_t id, RecoveryLevel& level_out) const;
  [[nodiscard]] std::optional<Bytes> try_xor_rebuild(std::uint32_t rank,
                                                     std::uint64_t id) const;

  MultilevelConfig config_;
  std::unique_ptr<compress::Codec> io_codec_;  // null when uncompressed
  std::vector<NvmStore> local_;
  std::vector<KvStore> partner_space_;  // partner_space_[n] holds copies
                                        // for rank (n + N - 1) % N
  KvStore io_;
  std::uint64_t next_id_ = 1;
};

}  // namespace ndpcr::ckpt
