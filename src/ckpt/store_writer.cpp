#include "ckpt/store_writer.hpp"

#include <algorithm>
#include <utility>

namespace ndpcr::ckpt {

PutOutcome verified_put_once(KvStore& store, std::uint32_t rank,
                             std::uint64_t id, const Bytes& data,
                             bool verify) {
  PutOutcome out;
  const StoreStatus status = store.put(rank, id, Bytes(data));
  if (!status.ok()) {
    out.put_permanent = status.error().permanent();
    return out;
  }
  out.accepted = true;
  if (!verify) {
    out.ok = true;
    return out;
  }
  const StoreResult<Bytes> readback = store.get(rank, id);
  if (readback.ok() && *readback == data) {
    out.ok = true;
    return out;
  }
  out.verify_failed = true;
  if (readback.ok()) {
    // Torn or bit-flipped write landed under a valid key: quarantine it
    // so no reader can mistake it for the real entry.
    store.erase(rank, id);
    out.quarantined = true;
  } else {
    // A readback *error* leaves the entry in place - it may be intact -
    // but unverified counts as failed; the caller decides whether a
    // rewrite is worth it.
    out.read_error_permanent = readback.error().permanent();
  }
  return out;
}

AsyncStageWriter::AsyncStageWriter(std::size_t depth) : depth_(depth) {}

AsyncStageWriter::~AsyncStageWriter() {
  if (thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(m_);
      stop_ = true;
    }
    cv_submit_.notify_one();
    thread_.join();
  }
}

void AsyncStageWriter::submit(std::function<void()> job) {
  ++stats_.jobs;
  if (depth_ == 0) {
    ++stats_.inline_jobs;
    job();
    return;
  }
  std::unique_lock<std::mutex> lk(m_);
  if (!thread_.joinable()) {
    thread_ = std::thread([this] { loop(); });
  }
  if (queue_.size() >= depth_) {
    ++stats_.enqueue_stalls;
    cv_drain_.wait(lk, [&] { return queue_.size() < depth_; });
  }
  queue_.push_back(std::move(job));
  stats_.queue_peak = std::max<std::uint64_t>(
      stats_.queue_peak, queue_.size() + (busy_ ? 1 : 0));
  lk.unlock();
  cv_submit_.notify_one();
}

void AsyncStageWriter::flush() {
  ++stats_.flushes;
  if (depth_ == 0 || !thread_.joinable()) {
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
    return;
  }
  std::unique_lock<std::mutex> lk(m_);
  cv_drain_.wait(lk, [&] { return queue_.empty() && !busy_; });
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    lk.unlock();
    std::rethrow_exception(e);
  }
}

void AsyncStageWriter::loop() {
  std::unique_lock<std::mutex> lk(m_);
  for (;;) {
    cv_submit_.wait(lk, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop with nothing staged
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    busy_ = true;
    lk.unlock();
    cv_drain_.notify_all();  // space freed: a stalled submit can proceed
    try {
      job();
    } catch (...) {
      std::lock_guard<std::mutex> elk(m_);
      if (!error_) error_ = std::current_exception();
    }
    lk.lock();
    busy_ = false;
    if (queue_.empty()) cv_drain_.notify_all();  // flush barrier
  }
}

}  // namespace ndpcr::ckpt
