#include "ckpt/image.hpp"

#include "common/crc32.hpp"

namespace ndpcr::ckpt {
namespace {

constexpr std::uint32_t kMagic = 0x4E444349;  // "NDCI"
// magic(4) app_id(8) rank(4) ckpt_id(8) step(8) kind(4) base_id(8)
// payload_size(8) crc(4)
constexpr std::size_t kHeaderSize = 4 + 8 + 4 + 8 + 8 + 4 + 8 + 8 + 4;
// The CRC covers everything before the CRC field plus the payload, so a
// flip anywhere in the image - metadata included - fails validation.
constexpr std::size_t kCrcOffset = kHeaderSize - 4;

std::uint32_t image_crc(ByteSpan header_prefix, ByteSpan payload) {
  Crc32 crc;
  crc.update(header_prefix);
  crc.update(payload);
  return crc.value();
}

}  // namespace

const char* to_string(PayloadKind kind) {
  switch (kind) {
    case PayloadKind::kFull:
      return "full";
    case PayloadKind::kDelta:
      return "delta";
  }
  return "?";
}

Bytes CheckpointImage::build(const CheckpointMeta& meta, ByteSpan payload) {
  Bytes out;
  out.reserve(kHeaderSize + payload.size());
  append_le<std::uint32_t>(out, kMagic);
  append_le<std::uint64_t>(out, meta.app_id);
  append_le<std::uint32_t>(out, meta.rank);
  append_le<std::uint64_t>(out, meta.checkpoint_id);
  append_le<std::uint64_t>(out, meta.step);
  append_le<std::uint32_t>(out, static_cast<std::uint32_t>(meta.kind));
  append_le<std::uint64_t>(out, meta.base_id);
  append_le<std::uint64_t>(out, payload.size());
  append_le<std::uint32_t>(out, image_crc(ByteSpan(out), payload));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

CheckpointMeta CheckpointImage::peek_meta(ByteSpan raw) {
  if (raw.size() < kHeaderSize) {
    throw ImageError("checkpoint image truncated");
  }
  if (read_le<std::uint32_t>(raw, 0) != kMagic) {
    throw ImageError("not a checkpoint image");
  }
  CheckpointMeta meta;
  meta.app_id = read_le<std::uint64_t>(raw, 4);
  meta.rank = read_le<std::uint32_t>(raw, 12);
  meta.checkpoint_id = read_le<std::uint64_t>(raw, 16);
  meta.step = read_le<std::uint64_t>(raw, 24);
  const auto kind = read_le<std::uint32_t>(raw, 32);
  if (kind > static_cast<std::uint32_t>(PayloadKind::kDelta)) {
    throw ImageError("unknown checkpoint payload kind");
  }
  meta.kind = static_cast<PayloadKind>(kind);
  meta.base_id = read_le<std::uint64_t>(raw, 36);
  return meta;
}

std::size_t CheckpointImage::framed_size(ByteSpan raw) {
  (void)peek_meta(raw);  // validates magic and header presence
  return kHeaderSize + read_le<std::uint64_t>(raw, 44);
}

CheckpointImage CheckpointImage::parse(ByteSpan raw) {
  CheckpointImage image;
  image.meta_ = peek_meta(raw);
  const auto payload_size = read_le<std::uint64_t>(raw, 44);
  const auto expected_crc = read_le<std::uint32_t>(raw, 52);
  if (raw.size() != kHeaderSize + payload_size) {
    throw ImageError("checkpoint image size mismatch");
  }
  const ByteSpan payload = raw.subspan(kHeaderSize);
  if (image_crc(raw.subspan(0, kCrcOffset), payload) != expected_crc) {
    throw ImageError("checkpoint image CRC mismatch");
  }
  image.payload_.assign(payload.begin(), payload.end());
  return image;
}

}  // namespace ndpcr::ckpt
