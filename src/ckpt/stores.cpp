#include "ckpt/stores.hpp"

#include <stdexcept>

namespace ndpcr::ckpt {

const char* to_string(MutationOp op) {
  switch (op) {
    case MutationOp::kPut:
      return "put";
    case MutationOp::kErase:
      return "erase";
    case MutationOp::kPointer:
      return "pointer";
  }
  return "?";
}

StoreStatus KvStore::put(std::uint32_t rank, std::uint64_t checkpoint_id,
                         Bytes data) {
  if (gate_) {
    const MutationDecision d =
        gate_({MutationOp::kPut, rank, checkpoint_id, data.size()});
    if (d.drop) return StoreStatus::success();
    if (d.torn && d.keep_bytes < data.size()) data.resize(d.keep_bytes);
  }
  const auto key = std::make_pair(rank, checkpoint_id);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    used_ -= it->second.size();
    it->second = std::move(data);
    used_ += it->second.size();
  } else {
    used_ += data.size();
    entries_.emplace(key, std::move(data));
  }
  return StoreStatus::success();
}

StoreResult<Bytes> KvStore::get(std::uint32_t rank,
                                std::uint64_t checkpoint_id) const {
  auto it = entries_.find(std::make_pair(rank, checkpoint_id));
  if (it == entries_.end()) return StoreResult<Bytes>::not_found();
  return Bytes(it->second);
}

bool KvStore::contains(std::uint32_t rank,
                       std::uint64_t checkpoint_id) const {
  return entries_.count(std::make_pair(rank, checkpoint_id)) > 0;
}

std::optional<std::uint64_t> KvStore::newest_id(std::uint32_t rank) const {
  // Entries for a rank are contiguous in the map; the last one before the
  // next rank's range is the newest.
  auto it = entries_.lower_bound(std::make_pair(rank + 1, std::uint64_t{0}));
  if (it == entries_.begin()) return std::nullopt;
  --it;
  if (it->first.first != rank) return std::nullopt;
  return it->first.second;
}

std::vector<std::uint64_t> KvStore::list(std::uint32_t rank) const {
  std::vector<std::uint64_t> ids;
  for (auto it = entries_.lower_bound(std::make_pair(rank, std::uint64_t{0}));
       it != entries_.end() && it->first.first == rank; ++it) {
    ids.push_back(it->first.second);
  }
  return ids;
}

void KvStore::erase(std::uint32_t rank, std::uint64_t checkpoint_id) {
  if (gate_) {
    const MutationDecision d =
        gate_({MutationOp::kErase, rank, checkpoint_id, 0});
    if (d.drop) return;
  }
  auto it = entries_.find(std::make_pair(rank, checkpoint_id));
  if (it == entries_.end()) return;
  used_ -= it->second.size();
  entries_.erase(it);
}

void KvStore::clear() {
  entries_.clear();
  used_ = 0;
}

bool KvStore::corrupt_entry(std::uint32_t rank, std::uint64_t checkpoint_id,
                            std::uint64_t salt) {
  auto it = entries_.find(std::make_pair(rank, checkpoint_id));
  if (it == entries_.end() || it->second.empty()) return false;
  corrupt_in_place(MutableByteSpan(it->second), salt);
  return true;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

void corrupt_in_place(MutableByteSpan data, std::uint64_t salt) {
  if (data.empty()) return;
  const std::uint64_t h = splitmix64(salt);
  const std::size_t index = h % data.size();
  const auto mask = static_cast<std::byte>(1u << ((h >> 32) % 8));
  data[index] ^= mask;
}

Bytes xor_parity(const std::vector<Bytes>& buffers) {
  if (buffers.empty()) {
    throw std::invalid_argument("xor_parity needs at least one buffer");
  }
  const std::size_t size = buffers.front().size();
  Bytes parity(size, std::byte{0});
  for (const auto& buf : buffers) {
    if (buf.size() != size) {
      throw std::invalid_argument("xor_parity buffers must be equal length");
    }
    for (std::size_t i = 0; i < size; ++i) parity[i] ^= buf[i];
  }
  return parity;
}

Bytes xor_rebuild(const Bytes& parity, const std::vector<Bytes>& survivors) {
  Bytes rebuilt = parity;
  for (const auto& buf : survivors) {
    if (buf.size() != rebuilt.size()) {
      throw std::invalid_argument("xor_rebuild buffers must be equal length");
    }
    for (std::size_t i = 0; i < rebuilt.size(); ++i) rebuilt[i] ^= buf[i];
  }
  return rebuilt;
}

}  // namespace ndpcr::ckpt
