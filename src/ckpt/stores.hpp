#pragma once

// Partner- and IO-level storage for multilevel checkpointing, plus XOR
// parity helpers for SCR-style partner groups.

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "ckpt/mutation_gate.hpp"
#include "ckpt/store_error.hpp"
#include "common/bytes.hpp"

namespace ndpcr::ckpt {

// Simple keyed checkpoint store. Models a rank's slice of the parallel
// file system (IO-level) or the partner space a node donates to its
// neighbor (partner-level). Keys are (rank, checkpoint id).
//
// The mutating/reading entry points are virtual so the fault-injection
// layer (faults::FaultyKvStore) can decorate them with seeded transient
// errors, torn writes and silent corruption; the plain store never fails
// and never loses data. get() hands out an owning copy - earlier
// revisions returned a span into the map that dangled after erase() or
// clear(), which the chaos harness trips constantly.
class KvStore {
 public:
  KvStore() = default;
  virtual ~KvStore() = default;
  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  virtual StoreStatus put(std::uint32_t rank, std::uint64_t checkpoint_id,
                          Bytes data);
  [[nodiscard]] virtual StoreResult<Bytes> get(
      std::uint32_t rank, std::uint64_t checkpoint_id) const;
  [[nodiscard]] virtual bool contains(std::uint32_t rank,
                                      std::uint64_t checkpoint_id) const;
  // Newest id stored for a rank, if any.
  [[nodiscard]] virtual std::optional<std::uint64_t> newest_id(
      std::uint32_t rank) const;
  // Checkpoint ids present for a rank, ascending. Used by the restart
  // path (MultilevelConfig::adopt_existing) to inventory surviving state.
  [[nodiscard]] virtual std::vector<std::uint64_t> list(
      std::uint32_t rank) const;
  virtual void erase(std::uint32_t rank, std::uint64_t checkpoint_id);
  virtual void clear();

  // Install (or clear, with nullptr) the durable-mutation gate consulted
  // before every put/erase (docs/EQUIVALENCE.md). Lives in the base class
  // so fault decorators that forward to KvStore::put stay gated.
  void set_mutation_gate(MutationGate gate) { gate_ = std::move(gate); }

  // Flip one byte of a stored entry in place (deterministic position and
  // mask from `salt`). This is the single corruption primitive shared by
  // the MultilevelManager test hooks and the fault injector. Returns
  // false for an unknown key or an empty entry.
  bool corrupt_entry(std::uint32_t rank, std::uint64_t checkpoint_id,
                     std::uint64_t salt);

  [[nodiscard]] std::size_t used_bytes() const { return used_; }
  [[nodiscard]] std::size_t count() const { return entries_.size(); }

 private:
  std::map<std::pair<std::uint32_t, std::uint64_t>, Bytes> entries_;
  std::size_t used_ = 0;
  MutationGate gate_;
};

// Deterministically flip one byte of `data` (position and bit chosen from
// `salt` via splitmix64). No-op on an empty span. The shared primitive
// behind every silent-corruption path: KvStore::corrupt_entry,
// NvmStore::corrupt_entry, and the FaultPlan's bit-flip injection.
void corrupt_in_place(MutableByteSpan data, std::uint64_t salt);

// SplitMix64 mixing step - the deterministic hash behind corrupt_in_place
// and the fault plan's per-operation decisions.
std::uint64_t splitmix64(std::uint64_t x);

// XOR parity across equal-length buffers (SCR's XOR partner scheme). All
// buffers must have the same size; with k data buffers, any single missing
// buffer can be rebuilt from the other k-1 plus the parity.
Bytes xor_parity(const std::vector<Bytes>& buffers);

// Rebuild one missing buffer from the parity and the surviving buffers.
Bytes xor_rebuild(const Bytes& parity, const std::vector<Bytes>& survivors);

}  // namespace ndpcr::ckpt
