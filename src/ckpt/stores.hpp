#pragma once

// Partner- and IO-level storage for multilevel checkpointing, plus XOR
// parity helpers for SCR-style partner groups.

#include <cstdint>
#include <map>
#include <optional>

#include "common/bytes.hpp"

namespace ndpcr::ckpt {

// Simple keyed checkpoint store. Models a rank's slice of the parallel
// file system (IO-level) or the partner space a node donates to its
// neighbor (partner-level). Keys are (rank, checkpoint id).
class KvStore {
 public:
  void put(std::uint32_t rank, std::uint64_t checkpoint_id, Bytes data);
  [[nodiscard]] std::optional<ByteSpan> get(std::uint32_t rank,
                                            std::uint64_t checkpoint_id) const;
  [[nodiscard]] bool contains(std::uint32_t rank,
                              std::uint64_t checkpoint_id) const;
  // Newest id stored for a rank, if any.
  [[nodiscard]] std::optional<std::uint64_t> newest_id(
      std::uint32_t rank) const;
  void erase(std::uint32_t rank, std::uint64_t checkpoint_id);
  void clear();

  [[nodiscard]] std::size_t used_bytes() const { return used_; }
  [[nodiscard]] std::size_t count() const { return entries_.size(); }

 private:
  std::map<std::pair<std::uint32_t, std::uint64_t>, Bytes> entries_;
  std::size_t used_ = 0;
};

// XOR parity across equal-length buffers (SCR's XOR partner scheme). All
// buffers must have the same size; with k data buffers, any single missing
// buffer can be rebuilt from the other k-1 plus the parity.
Bytes xor_parity(const std::vector<Bytes>& buffers);

// Rebuild one missing buffer from the parity and the surviving buffers.
Bytes xor_rebuild(const Bytes& parity, const std::vector<Bytes>& survivors);

}  // namespace ndpcr::ckpt
