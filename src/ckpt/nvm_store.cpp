#include "ckpt/nvm_store.hpp"

#include <algorithm>
#include <stdexcept>

#include "ckpt/stores.hpp"

namespace ndpcr::ckpt {

NvmStore::NvmStore(std::size_t capacity_bytes) : capacity_(capacity_bytes) {}

bool NvmStore::put(std::uint64_t checkpoint_id, Bytes data) {
  if (!entries_.empty() && checkpoint_id <= entries_.back().id) {
    throw std::logic_error("checkpoint ids must be strictly increasing");
  }
  if (data.size() > capacity_) return false;

  // Evict oldest unlocked entries until the new checkpoint fits. Locked
  // entries block eviction of everything behind them too - a circular
  // buffer cannot reclaim around a pinned region - which matches the
  // paper's description of the NDP pausing new local writes if it falls
  // too far behind.
  while (used_ + data.size() > capacity_) {
    if (entries_.empty() || entries_.front().lock_count > 0) {
      return false;
    }
    used_ -= entries_.front().data.size();
    entries_.pop_front();
    ++evictions_;
  }
  used_ += data.size();
  entries_.push_back(Entry{checkpoint_id, std::move(data), 0});
  return true;
}

std::optional<ByteSpan> NvmStore::get(std::uint64_t checkpoint_id) const {
  for (const auto& e : entries_) {
    if (e.id == checkpoint_id) return ByteSpan(e.data);
  }
  return std::nullopt;
}

bool NvmStore::contains(std::uint64_t checkpoint_id) const {
  return get(checkpoint_id).has_value();
}

std::optional<std::uint64_t> NvmStore::newest_id() const {
  if (entries_.empty()) return std::nullopt;
  return entries_.back().id;
}

void NvmStore::lock(std::uint64_t checkpoint_id) {
  for (auto& e : entries_) {
    if (e.id == checkpoint_id) {
      ++e.lock_count;
      return;
    }
  }
  throw std::out_of_range("lock: unknown checkpoint id");
}

void NvmStore::unlock(std::uint64_t checkpoint_id) {
  for (auto& e : entries_) {
    if (e.id == checkpoint_id) {
      if (e.lock_count == 0) {
        throw std::logic_error("unlock: checkpoint is not locked");
      }
      --e.lock_count;
      return;
    }
  }
  throw std::out_of_range("unlock: unknown checkpoint id");
}

bool NvmStore::is_locked(std::uint64_t checkpoint_id) const {
  for (const auto& e : entries_) {
    if (e.id == checkpoint_id) return e.lock_count > 0;
  }
  return false;
}

void NvmStore::erase(std::uint64_t checkpoint_id) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const Entry& e) { return e.id == checkpoint_id; });
  if (it == entries_.end()) return;
  if (it->lock_count > 0) {
    throw std::logic_error("erase: checkpoint is locked");
  }
  used_ -= it->data.size();
  entries_.erase(it);
}

void NvmStore::clear() {
  entries_.clear();
  used_ = 0;
}

bool NvmStore::corrupt_entry(std::uint64_t checkpoint_id,
                             std::uint64_t salt) {
  for (auto& e : entries_) {
    if (e.id == checkpoint_id) {
      if (e.data.empty()) return false;
      corrupt_in_place(MutableByteSpan(e.data), salt);
      return true;
    }
  }
  return false;
}

}  // namespace ndpcr::ckpt
